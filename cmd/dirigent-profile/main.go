// Command dirigent-profile runs Dirigent's offline execution profiler
// (§4.1) for a foreground benchmark on the simulated machine and writes the
// profile as JSON.
//
// Usage:
//
//	dirigent-profile -bench ferret [-period 5ms] [-o ferret.profile.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"dirigent/internal/core"
	"dirigent/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "foreground benchmark to profile (required); one of: bodytrack, ferret, fluidanimate, raytrace, streamcluster")
	period := flag.Duration("period", core.DefaultSamplePeriod, "sampling period ΔT")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *bench == "" {
		fmt.Fprintln(os.Stderr, "dirigent-profile: -bench is required")
		flag.Usage()
		os.Exit(2)
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	profile, err := core.ProfileBenchmark(b, core.ProfilerOptions{SamplePeriod: *period})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if _, err := profile.WriteTo(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "profiled %s: %d segments, %.3fs standalone, %.3g instructions\n",
		profile.Benchmark, len(profile.Segments),
		profile.TotalDuration().Seconds(), profile.TotalProgress())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirigent-profile:", err)
	os.Exit(1)
}

// Command dirigent-sim runs one workload mix under one of the five
// evaluated configurations and reports per-execution times and summary
// statistics.
//
// Usage:
//
//	dirigent-sim -fg ferret -bg rs,rs,rs,rs,rs -config Dirigent -executions 60
//	dirigent-sim -fg streamcluster,streamcluster -bg lbm+namd,lbm+namd,lbm+namd,lbm+namd -config DirigentFreq
//	dirigent-sim -fg ferret -bg rs,rs,rs,rs,rs -policies all
//
// -policies switches the comparison axis from the five system
// configurations to the registered QoS policies (dirigent, rtgang,
// cordlike), each run under the full runtime.
//
// The deadline defaults to the paper's rule (µ+0.3σ of a Baseline pass run
// first); pass -target to override with an explicit per-execution latency
// target in seconds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
	"dirigent/internal/telemetry"
)

func main() {
	fg := flag.String("fg", "ferret", "comma-separated FG benchmarks")
	bg := flag.String("bg", "rs,rs,rs,rs,rs", "comma-separated BG specs (a single name or a+b rotate pair)")
	cfgName := flag.String("config", "Dirigent", "configuration: Baseline, StaticFreq, StaticBoth, DirigentFreq, Dirigent")
	pols := flag.String("policies", "", "compare QoS policies instead of configurations: comma-separated registry names, or \"all\"")
	executions := flag.Int("executions", 60, "FG executions per run")
	trace := flag.String("trace", "", "write a JSONL telemetry trace of every run to this file")
	traceQuanta := flag.Bool("trace-quanta", false, "include per-quantum machine events in the trace (large)")
	verbose := flag.Bool("v", false, "print every execution time")
	flag.Parse()

	mix := experiment.Mix{
		Name: strings.ReplaceAll(*fg+" "+*bg, ",", " "),
		FG:   splitList(*fg),
		BG:   splitList(*bg),
	}
	if err := mix.Validate(); err != nil {
		fatal(err)
	}
	want, err := config.ByName(config.Name(*cfgName))
	if err != nil {
		fatal(err)
	}

	r := experiment.NewRunner()
	r.Executions = *executions
	var closeTrace func()
	if *trace != "" {
		sink, done, err := openTrace(*trace, *traceQuanta)
		if err != nil {
			fatal(err)
		}
		r.Recorder = sink
		closeTrace = done
	}
	if *pols != "" {
		names := splitList(*pols)
		if len(names) == 1 && names[0] == "all" {
			names = nil // PolicySweep defaults to every registered policy
		}
		res, err := r.PolicySweep([]experiment.Mix{mix}, names)
		if err != nil {
			fatal(err)
		}
		if closeTrace != nil {
			closeTrace()
		}
		pmr := res.Mixes[0]
		fmt.Printf("mix %s, deadline(s): %v\n\n", mix.Name, pmr.Deadlines)
		for _, p := range res.Policies {
			run := pmr.ByPolicy[p]
			fmt.Printf("  %-13s FG success %.3f  rel BG throughput %.3f",
				p, run.MeanSuccessRate(), pmr.RelBGThroughput(p))
			if run.FGWays > 0 {
				fmt.Printf("  FG ways %d", run.FGWays)
			}
			fmt.Println()
			for _, s := range run.Streams {
				fmt.Printf("    %-14s %s  success %.3f\n", s.Bench, s.Summary, s.SuccessRate)
			}
		}
		return
	}

	res, err := r.RunMix(mix)
	if err != nil {
		fatal(err)
	}
	if closeTrace != nil {
		closeTrace()
	}

	fmt.Printf("mix %s, deadline(s): %v\n\n", mix.Name, res.Deadlines)
	for _, c := range config.Names() {
		run := res.ByConfig[c]
		marker := " "
		if c == want.Name {
			marker = "*"
		}
		fmt.Printf("%s %-13s FG success %.3f  rel BG throughput %.3f  rel std %.3f",
			marker, c, run.MeanSuccessRate(), res.RelBGThroughput(c), res.RelStd(c))
		if run.FGWays > 0 {
			fmt.Printf("  FG ways %d", run.FGWays)
		}
		if run.StaticBGLevel >= 0 {
			fmt.Printf("  BG level %d", run.StaticBGLevel)
		}
		fmt.Println()
		for _, s := range run.Streams {
			fmt.Printf("    %-14s %s  success %.3f\n", s.Bench, s.Summary, s.SuccessRate)
		}
	}

	if *verbose {
		run := res.ByConfig[want.Name]
		fmt.Printf("\nper-execution times under %s:\n", want.Name)
		for i, s := range run.Streams {
			fmt.Printf("  stream %d (%s):", i, s.Bench)
			for _, d := range s.Durations {
				fmt.Printf(" %.3f", d)
			}
			fmt.Println()
		}
	}
}

// openTrace opens path for JSONL telemetry and returns the sink plus a
// closer that flushes, reports the event count, and fails hard on write
// errors (a silently truncated trace is worse than none).
func openTrace(path string, quanta bool) (*telemetry.JSONL, func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	sink := telemetry.NewJSONL(bw)
	if quanta {
		sink.Include(telemetry.KindQuantumStep)
	}
	done := func() {
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := sink.Err(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dirigent-sim: wrote %d events to %s\n", sink.Events(), path)
	}
	return sink, done, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirigent-sim:", err)
	os.Exit(1)
}

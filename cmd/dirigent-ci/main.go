// Command dirigent-ci is the perf/QoS regression gate. It runs the
// internal/benchreg probe suite — wall-clock micro-benchmarks of the
// simulator's hot path and telemetry sinks, plus seed-deterministic
// predictor-accuracy and controller-QoS probes — and either records the
// results as a versioned baseline or checks them against the committed one.
//
// Usage:
//
//	dirigent-ci -record              # write BENCH_<n+1>.json
//	dirigent-ci -check               # gate against the latest BENCH_<n>.json
//	dirigent-ci -check -perf warn    # cloud CI: perf drifts warn, QoS still fails
//	dirigent-ci -selftest            # prove the gate catches an injected slowdown
//	dirigent-ci -scenarios           # run the declarative scenario suite (scenarios/)
//	dirigent-ci -skipahead           # gate the skip-ahead engine's end-to-end speedup
//
// Exit status: 0 when the gate passes (warnings allowed), 1 on failure or
// error, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dirigent/internal/analysis"
	"dirigent/internal/benchreg"
	"dirigent/internal/load"
	"dirigent/internal/scenario"
)

func main() {
	var (
		record    = flag.Bool("record", false, "run the suite and write the next BENCH_<n>.json baseline")
		check     = flag.Bool("check", false, "run the suite and gate it against the latest baseline")
		selftest  = flag.Bool("selftest", false, "validate the gate end-to-end (injected slowdown must fail)")
		scenarios = flag.Bool("scenarios", false, "run the declarative scenario suite and gate on its goals")
		skipahead = flag.Bool("skipahead", false, "measure the skip-ahead step engine's end-to-end speedup and gate on -min-speedup")

		dir         = flag.String("dir", ".", "directory holding BENCH_<n>.json baselines")
		baseline    = flag.String("baseline", "", "explicit baseline file for -check (default: latest in -dir)")
		out         = flag.String("out", "", "explicit output file for -record (default: next BENCH_<n>.json in -dir)")
		scenarioDir = flag.String("scenario-dir", "scenarios", "directory holding *.json scenario specs for -scenarios")

		perfMode = flag.String("perf", "fail", "perf-metric gating: fail, warn (cloud CI), or off")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		mdOut    = flag.Bool("markdown", false, "emit the report as a Markdown table")
		quick    = flag.Bool("quick", false, "use the reduced probe sizes (smoke runs; not for recorded baselines)")

		samples    = flag.Int("samples", 0, "override perf sample count (min-of-N)")
		executions = flag.Int("executions", 0, "override QoS probe execution count")
		minSpeedup = flag.Float64("min-speedup", 2.0, "hard floor for -skipahead: fail when the measured speedup is below this")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*record, *check, *selftest, *scenarios, *skipahead} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "dirigent-ci: exactly one of -record, -check, -selftest, -scenarios, -skipahead is required")
		flag.Usage()
		os.Exit(2)
	}
	mode, err := benchreg.ParsePerfMode(*perfMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dirigent-ci:", err)
		os.Exit(2)
	}

	opts := benchreg.DefaultOptions()
	if *quick {
		opts = benchreg.QuickOptions()
	}
	if *samples > 0 {
		opts.PerfSamples = *samples
	}
	if *executions > 0 {
		opts.Executions = *executions
	}

	switch {
	case *selftest:
		if err := benchreg.SelfTest(logf); err != nil {
			fatal(err)
		}
		fmt.Println("dirigent-ci: selftest ok — the gate catches injected machine.Step slowdowns")
		logf("running scenario-gate selftest")
		if err := scenario.SelfTest(); err != nil {
			fatal(err)
		}
		fmt.Println("dirigent-ci: selftest ok — the scenario gate reports injected goal violations")
		logf("running static-analysis selftest")
		if err := analysis.SelfTest(filepath.Join("internal", "analysis", "testdata")); err != nil {
			fatal(err)
		}
		fmt.Println("dirigent-ci: selftest ok — every lint analyzer catches its seeded fixture violation")
		logf("running load-generator selftest")
		if err := load.SelfTest(logf); err != nil {
			fatal(err)
		}
		fmt.Println("dirigent-ci: selftest ok — the load gates catch nondeterministic traces and dropped events")

	case *skipahead:
		logf("measuring skip-ahead speedup (compat vs batched engine, %d QoS executions)", opts.Executions)
		start := time.Now()
		speedup, err := benchreg.SkipaheadSpeedup(opts)
		if err != nil {
			fatal(err)
		}
		logf("measured in %v", time.Since(start).Round(time.Millisecond))
		fmt.Printf("dirigent-ci: skip-ahead end-to-end speedup %.2fx (floor %.2fx)\n", speedup, *minSpeedup)
		if speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "dirigent-ci: FAIL — skip-ahead speedup %.2fx is below the %.2fx floor\n", speedup, *minSpeedup)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "dirigent-ci: skip-ahead gate passed")

	case *scenarios:
		specs, err := scenario.LoadDir(*scenarioDir)
		if err != nil {
			fatal(err)
		}
		logf("running %d scenarios from %s", len(specs), *scenarioDir)
		start := time.Now()
		sr, err := scenario.RunSuite(specs)
		if err != nil {
			fatal(err)
		}
		logf("suite done in %v", time.Since(start).Round(time.Millisecond))
		switch {
		case *jsonOut:
			s, err := scenario.RenderJSON(sr)
			if err != nil {
				fatal(err)
			}
			fmt.Print(s)
		case *mdOut:
			fmt.Print(scenario.RenderMarkdown(sr))
		default:
			fmt.Print(scenario.RenderText(sr))
		}
		if !sr.Pass {
			fmt.Fprintf(os.Stderr, "dirigent-ci: FAIL — scenario goal violation(s): %v\n", sr.Failed())
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "dirigent-ci: scenario suite passed")

	case *record:
		path := *out
		if path == "" {
			path, err = benchreg.NextPath(*dir)
			if err != nil {
				fatal(err)
			}
		}
		logf("running probe suite (%d perf samples, %d QoS executions)", opts.PerfSamples, opts.Executions)
		start := time.Now()
		b, err := benchreg.Run(opts)
		if err != nil {
			fatal(err)
		}
		b.RecordedAt = time.Now().UTC().Format(time.RFC3339)
		if err := b.Save(path); err != nil {
			fatal(err)
		}
		logf("suite done in %v", time.Since(start).Round(time.Millisecond))
		fmt.Printf("dirigent-ci: recorded %d metrics to %s\n", len(b.Metrics), path)

	case *check:
		path := *baseline
		if path == "" {
			path, err = benchreg.LatestPath(*dir)
			if err != nil {
				fatal(err)
			}
		}
		base, err := benchreg.Load(path)
		if err != nil {
			fatal(err)
		}
		logf("running probe suite (%d perf samples, %d QoS executions)", opts.PerfSamples, opts.Executions)
		start := time.Now()
		cur, err := benchreg.Run(opts)
		if err != nil {
			fatal(err)
		}
		logf("suite done in %v", time.Since(start).Round(time.Millisecond))
		rep := benchreg.Compare(base, cur, mode)
		rep.BaselinePath = path
		switch {
		case *jsonOut:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fatal(err)
			}
		case *mdOut:
			fmt.Print(rep.Markdown())
		default:
			fmt.Print(rep.Text())
		}
		if !rep.OK() {
			fmt.Fprintf(os.Stderr, "dirigent-ci: FAIL — %d regression(s); if the change is intentional, refresh the baseline with -record\n", rep.Fails)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "dirigent-ci: gate passed")
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dirigent-ci: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirigent-ci:", err)
	os.Exit(1)
}

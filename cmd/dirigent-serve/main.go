// Command dirigent-serve hosts the multi-tenant QoS control service: many
// independent Dirigent simulations behind the internal/server JSON API,
// each tenant driven by its own worker goroutine, with live telemetry
// streaming (JSONL or SSE) and graceful shutdown.
//
// Usage:
//
//	dirigent-serve                       # serve on :8080
//	dirigent-serve -addr 127.0.0.1:9000  # custom listen address
//	dirigent-serve -max-tenants 64      # cap hosted simulations
//	dirigent-serve -selfcheck            # in-process API smoke test, then exit
//
// The -selfcheck mode is what scripts/ci.sh runs: it starts the server on a
// loopback port, creates a tenant, drives it to completion, checks the
// stats and result endpoints, and shuts down cleanly. Exit status 0 on
// success, 1 on failure.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dirigent/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxTenants = flag.Int("max-tenants", 0, "max concurrent tenants (0 = default 256)")
		selfcheck  = flag.Bool("selfcheck", false, "run an in-process API smoke test and exit")
	)
	flag.Parse()

	srv := server.New(server.Config{MaxTenants: *maxTenants})

	if *selfcheck {
		if err := runSelfcheck(srv); err != nil {
			fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("selfcheck OK")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Println("dirigent-serve listening on", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Println("shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Stop accepting requests, then drain tenant workers and subscriber
	// streams.
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "http shutdown:", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "tenant drain:", err)
		os.Exit(1)
	}
}

// runSelfcheck exercises the API end to end against a loopback listener:
// create a tenant, wait for it to finish, check stats and result, delete,
// and shut the server down.
func runSelfcheck(srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()

	req := server.CreateTenantRequest{
		Name:       "selfcheck",
		Mix:        server.MixSpec{Name: "selfcheck ferret pca", FG: []string{"ferret"}, BG: []string{"pca", "pca"}},
		Config:     "Baseline",
		Executions: 8,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var created struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&created)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		return fmt.Errorf("create tenant: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			State      string `json:"state"`
			Error      string `json:"error"`
			Executions int    `json:"executions"`
		}
		if err := getJSON(base+"/v1/tenants/"+created.ID, &st); err != nil {
			return err
		}
		if st.State == "done" {
			if st.Executions == 0 {
				return errors.New("done with zero executions")
			}
			break
		}
		if st.State == "failed" {
			return fmt.Errorf("tenant failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return errors.New("tenant did not finish in time")
		}
		time.Sleep(50 * time.Millisecond)
	}

	var result struct {
		Streams []struct {
			Mean float64 `json:"Mean"`
		}
	}
	if err := getJSON(base+"/v1/tenants/"+created.ID+"/result", &result); err != nil {
		return err
	}

	del, err := http.NewRequest(http.MethodDelete, base+"/v1/tenants/"+created.ID, nil)
	if err != nil {
		return err
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		return err
	}
	_ = dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete tenant: status %d", dresp.StatusCode)
	}

	if err := checkPolicyTenant(base); err != nil {
		return fmt.Errorf("policy tenant: %w", err)
	}
	return getJSON(base+"/v1/healthz", &struct{}{})
}

// checkPolicyTenant exercises the policy engine through the API: a bogus
// policy name must 400 with the valid values listed, and a tenant under a
// non-default policy must run to completion reporting that policy in its
// stats.
func checkPolicyTenant(base string) error {
	bad := server.CreateTenantRequest{
		Mix:       server.MixSpec{Name: "bad policy", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:    "DirigentFreq",
		Policy:    "nope",
		TargetsNS: []int64{int64(time.Second)},
	}
	body, _ := json.Marshal(bad)
	resp, err := http.Post(base+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&apiErr)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("bogus policy: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(apiErr.Error, "rtgang") {
		return fmt.Errorf("bogus policy error %q should list valid policies", apiErr.Error)
	}

	req := server.CreateTenantRequest{
		Name:       "selfcheck-rtgang",
		Mix:        server.MixSpec{Name: "selfcheck ferret pca rtgang", FG: []string{"ferret"}, BG: []string{"pca", "pca"}},
		Config:     "DirigentFreq",
		Policy:     "rtgang",
		TargetsNS:  []int64{int64(2 * time.Second)},
		Executions: 8,
	}
	body, _ = json.Marshal(req)
	resp, err = http.Post(base+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var created struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&created)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		return fmt.Errorf("create: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Policy string `json:"policy"`
		}
		if err := getJSON(base+"/v1/tenants/"+created.ID, &st); err != nil {
			return err
		}
		if st.Policy != "rtgang" {
			return fmt.Errorf("stats policy %q, want rtgang", st.Policy)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			return fmt.Errorf("tenant failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return errors.New("tenant did not finish in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	del, err := http.NewRequest(http.MethodDelete, base+"/v1/tenants/"+created.ID, nil)
	if err != nil {
		return err
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		return err
	}
	_ = dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete: status %d", dresp.StatusCode)
	}
	return nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Command dirigent-load is the trace-driven open-loop load generator for
// dirigent-serve. It synthesizes tenant-churn arrival traces from a
// declarative load spec (seeded, byte-for-byte reproducible), records and
// replays them as JSONL, and drives the server's JSON API with
// create/retarget/evict churn, reporting per-tenant QoS-success and
// API-latency distributions.
//
// Usage:
//
//	dirigent-load -spec loadspecs/smoke.json -seed 42 -trace-out t.jsonl   # synthesize only
//	dirigent-load -spec loadspecs/smoke.json -inproc -speed 4              # synthesize + replay in-process
//	dirigent-load -spec loadspecs/smoke.json -trace-in t.jsonl -target http://host:8080
//	dirigent-load -spec loadspecs/smoke.json -check-determinism            # gate: two syntheses byte-equal
//
// Synthesis is deterministic: the same spec and seed produce the identical
// trace, which is what -check-determinism gates in CI. Replay is wall-clock
// and therefore reported, never gated — except its structural invariants:
// the process exits 1 if any tenant leaks past the post-replay drain, and
// (under -fail-on-drops) if the open-loop driver had to drop events.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dirigent/internal/load"
	"dirigent/internal/server"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "load spec JSON (required)")
		seed       = flag.Uint64("seed", 0, "synthesis seed (0 = the spec's seed)")
		duration   = flag.Float64("duration", 0, "override spec duration_s for synthesis")
		traceOut   = flag.String("trace-out", "", "write the synthesized trace JSONL here")
		traceIn    = flag.String("trace-in", "", "replay this recorded trace instead of synthesizing")
		target     = flag.String("target", "", "dirigent-serve base URL to replay against")
		inproc     = flag.Bool("inproc", false, "replay against an in-process server")
		maxTenants = flag.Int("max-tenants", 0, "in-process server tenant cap (0 = default)")
		speed      = flag.Float64("speed", 1, "time compression: trace second t fires at wall t/speed")
		maxInFlt   = flag.Int("max-inflight", 0, "max concurrent API ops (0 = DIRIGENT_MAX_PARALLEL machinery)")
		lateMS     = flag.Float64("late-budget-ms", 0, "drop ops this late in ms (0 = 2000, negative disables)")
		report     = flag.String("report", "text", "report format: text, json, markdown")
		checkDet   = flag.Bool("check-determinism", false, "synthesize twice and fail unless byte-identical")
		failDrops  = flag.Bool("fail-on-drops", false, "exit 1 if the replay dropped events")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()
	if err := run(*specPath, *seed, *duration, *traceOut, *traceIn, *target,
		*inproc, *maxTenants, *speed, *maxInFlt, *lateMS, *report,
		*checkDet, *failDrops, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "dirigent-load:", err)
		os.Exit(1)
	}
}

func run(specPath string, seed uint64, duration float64, traceOut, traceIn, target string,
	inproc bool, maxTenants int, speed float64, maxInFlight int, lateMS float64,
	report string, checkDet, failDrops, quiet bool) error {
	switch report {
	case "text", "json", "markdown":
	default:
		return fmt.Errorf("unknown -report %q (valid: text, json, markdown)", report)
	}
	if specPath == "" {
		return errors.New("-spec is required")
	}
	if target != "" && inproc {
		return errors.New("-target and -inproc are mutually exclusive")
	}
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	spec, err := load.LoadSpec(specPath)
	if err != nil {
		return err
	}
	if duration > 0 {
		spec.DurationS = duration
	}

	if checkDet {
		if err := load.CheckDeterminism(spec, seed); err != nil {
			return err
		}
		logf("determinism check OK: spec %s seed %d synthesizes byte-identically", spec.Name, seed)
	}

	// Obtain the trace: replay input, or fresh synthesis.
	var tr *load.Trace
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		tr, err = load.ReadTrace(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		logf("read trace %s: %d events (spec %s, seed %d)", traceIn, len(tr.Events), tr.Spec, tr.Seed)
	} else {
		tr, err = load.Synthesize(spec, seed)
		if err != nil {
			return err
		}
		creates, retargets, evicts := tr.Counts()
		logf("synthesized %d events (%d creates, %d retargets, %d evicts, %d suppressed)",
			len(tr.Events), creates, retargets, evicts, tr.Suppressed)
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		werr := tr.Write(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		logf("wrote trace to %s", traceOut)
	}

	if target == "" && !inproc {
		return nil // synthesis-only invocation
	}

	base := target
	if inproc {
		var shutdown func() error
		base, shutdown, err = load.StartLocal(server.Config{MaxTenants: maxTenants})
		if err != nil {
			return err
		}
		defer func() {
			if err := shutdown(); err != nil {
				fmt.Fprintln(os.Stderr, "dirigent-load: shutdown:", err)
			}
		}()
		logf("in-process server at %s", base)
	}

	rep, err := load.Replay(tr, spec, load.Options{
		BaseURL:     base,
		Speed:       speed,
		MaxInFlight: maxInFlight,
		LateBudget:  load.LateBudget(lateMS),
		Logf:        logf,
	})
	if err != nil {
		return err
	}

	switch report {
	case "json":
		s, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Print(s)
	case "markdown":
		fmt.Print(rep.Markdown())
	default:
		fmt.Print(rep.Text())
	}

	if rep.Leaked > 0 {
		return fmt.Errorf("%d tenants leaked past the drain: %v", rep.Leaked, rep.LeakedIDs)
	}
	if failDrops && rep.DroppedTotal > 0 {
		return fmt.Errorf("replay dropped %d events (-fail-on-drops)", rep.DroppedTotal)
	}
	return nil
}

// Command dirigent-bench regenerates the paper's tables and figures. Each
// -figN flag reproduces the corresponding figure of the evaluation section;
// -all runs the full set (the output recorded in EXPERIMENTS.md).
//
// Usage:
//
//	dirigent-bench -all
//	dirigent-bench -fig9a -fig10 -executions 60
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dirigent/internal/experiment"
	"dirigent/internal/telemetry"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table1   = flag.Bool("table1", false, "Table 1: benchmark catalog")
		fig4     = flag.Bool("fig4", false, "Fig. 4: FG workload overview")
		fig5     = flag.Bool("fig5", false, "Fig. 5: BG workload overview")
		fig6     = flag.Bool("fig6", false, "Fig. 6: prediction trace (raytrace+rs)")
		fig7     = flag.Bool("fig7", false, "Fig. 7: prediction accuracy, all 35 mixes")
		fig8     = flag.Bool("fig8", false, "Fig. 8: partition sweep (streamcluster+pca)")
		fig9a    = flag.Bool("fig9a", false, "Fig. 9a: single-BG mixes")
		fig9b    = flag.Bool("fig9b", false, "Fig. 9b: rotate-BG mixes")
		fig9c    = flag.Bool("fig9c", false, "Fig. 9c: multi-FG mixes")
		fig11    = flag.Bool("fig11", false, "Fig. 11: execution-time PDFs (ferret+rs)")
		fig12    = flag.Bool("fig12", false, "Fig. 12: BG frequency distribution (ferret+rs)")
		fig15    = flag.Bool("fig15", false, "Fig. 15: FG/BG tradeoff sweep (raytrace+bwaves)")
		headline = flag.Bool("headline", false, "headline numbers over all single-FG mixes")
		resil    = flag.Bool("resilience", false, "resilience sweep: QoS under injected faults (ferret+rs); not part of -all")
		policies = flag.Bool("policies", false, "policy sweep: QoS vs BG throughput per QoS policy (dirigent, rtgang, cordlike); not part of -all")

		executions = flag.Int("executions", 60, "FG executions per run")
		predExecs  = flag.Int("pred-executions", 50, "executions per prediction probe")
		short      = flag.Bool("short", false, "shrink -resilience to a CI smoke (one intensity, fewer executions)")
		trace      = flag.String("trace", "", "write a JSONL telemetry trace of every run to this file")
	)
	flag.Parse()
	if *all {
		*table1, *fig4, *fig5, *fig6, *fig7, *fig8 = true, true, true, true, true, true
		*fig9a, *fig9b, *fig9c, *fig11, *fig12, *fig15, *headline = true, true, true, true, true, true, true
	}
	if !(*table1 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *fig9a || *fig9b || *fig9c ||
		*fig11 || *fig12 || *fig15 || *headline || *resil || *policies) {
		flag.Usage()
		os.Exit(2)
	}

	r := experiment.NewRunner()
	r.Executions = *executions
	if *trace != "" {
		f, err := os.Create(*trace)
		check(err)
		bw := bufio.NewWriterSize(f, 1<<20)
		sink := telemetry.NewJSONL(bw)
		r.Recorder = sink
		closeTrace = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if err := sink.Err(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "dirigent-bench: wrote %d events to %s\n", sink.Events(), *trace)
			return nil
		}
	}
	//lint:ignore walltime harness progress reporting; the wall clock never feeds results
	start := time.Now()

	// Mix results are shared between Fig. 9a/10/11/12/headline; compute
	// lazily and cache.
	var singleBG, rotateBG, multiFG []*experiment.MixResult
	needSingle := func() []*experiment.MixResult {
		if singleBG == nil {
			singleBG = mustMixes(r, experiment.SingleBGMixes())
		}
		return singleBG
	}
	needRotate := func() []*experiment.MixResult {
		if rotateBG == nil {
			rotateBG = mustMixes(r, experiment.RotateBGMixes())
		}
		return rotateBG
	}
	needMulti := func() []*experiment.MixResult {
		if multiFG == nil {
			multiFG = mustMixes(r, experiment.MultiFGMixes())
		}
		return multiFG
	}

	if *table1 {
		fmt.Println(experiment.Table1())
	}
	if *fig4 {
		rows, err := r.FGOverview()
		check(err)
		fmt.Println(experiment.RenderFGOverview(rows))
	}
	if *fig5 {
		rows, err := r.BGOverview()
		check(err)
		fmt.Println(experiment.RenderBGOverview(rows))
	}
	if *fig6 {
		mix := experiment.Mix{Name: "raytrace rs", FG: []string{"raytrace"}, BG: five("rs")}
		res, err := r.PredictionProbe(mix, *predExecs, 3)
		check(err)
		fmt.Println(experiment.RenderPredictionTrace(res))
	}
	if *fig7 {
		results, err := r.PredictionAccuracy(*predExecs/2, 3)
		check(err)
		fmt.Println(experiment.RenderPredictionAccuracy(results))
	}
	if *fig8 {
		mix := experiment.Mix{Name: "streamcluster pca", FG: []string{"streamcluster"}, BG: five("pca")}
		res, err := r.PartitionSweep(mix, 2, 18)
		check(err)
		fmt.Println(experiment.RenderPartitionSweep(res))
	}
	if *fig9a {
		res := needSingle()
		fmt.Println(experiment.RenderComparison("Fig. 9a: Single BG Workload Mixes", res))
		rows, err := experiment.Summarize(res)
		check(err)
		fmt.Println(experiment.RenderSummary("(partial Fig. 10 over single-BG mixes)", rows))
	}
	if *fig9b {
		res := needRotate()
		fmt.Println(experiment.RenderComparison("Fig. 9b: Rotate BG Workload Mixes", res))
	}
	if *fig9a && *fig9b {
		combined := append(append([]*experiment.MixResult{}, needSingle()...), needRotate()...)
		rows, err := experiment.Summarize(combined)
		check(err)
		fmt.Println(experiment.RenderSummary("Fig. 10: Summary of All Single FG Workload Mixes", rows))
	}
	if *fig9c {
		res := needMulti()
		fmt.Println(experiment.RenderComparison("Fig. 9c: Multiple FGs Workload Mixes", res))
		rows, err := experiment.Summarize(res)
		check(err)
		fmt.Println(experiment.RenderSummary("Fig. 13: Summary of All Multiple FG Workload Mixes", rows))
		fmt.Println(experiment.RenderNormalizedStd(res))
	}
	if *fig11 || *fig12 {
		// The paper's detailed mix: ferret FG with five RS BG tasks.
		var ferretRS *experiment.MixResult
		for _, mr := range needSingle() {
			if mr.Mix.Name == "ferret rs" {
				ferretRS = mr
			}
		}
		if *fig11 {
			curves, err := experiment.PDFCurves(ferretRS, 14)
			check(err)
			fmt.Println(experiment.RenderPDFCurves(ferretRS.Mix, curves))
		}
		if *fig12 {
			rows, err := experiment.FreqDistribution(ferretRS)
			check(err)
			fmt.Println(experiment.RenderFreqDistribution(ferretRS.Mix, rows))
		}
	}
	if *fig15 {
		mix := experiment.Mix{Name: "raytrace bwaves", FG: []string{"raytrace"}, BG: five("bwaves")}
		factors := []float64{1.00, 1.03, 1.06, 1.09, 1.12, 1.15, 1.18}
		pts, standalone, err := r.TradeoffSweep(mix, factors)
		check(err)
		fmt.Println(experiment.RenderTradeoff(mix, standalone, pts))
	}
	if *headline {
		combined := append(append([]*experiment.MixResult{}, needSingle()...), needRotate()...)
		h, err := experiment.ComputeHeadline(combined)
		check(err)
		fmt.Println(h.Render())
	}
	if *resil {
		mix := experiment.Mix{Name: "ferret rs", FG: []string{"ferret"}, BG: five("rs")}
		opts := experiment.ResilienceOptions{}
		if *short {
			// CI smoke: one moderate intensity and a shortened run keep this
			// under a minute while still exercising every fault hook end to
			// end.
			opts.Intensities = []float64{0.3}
			r.Executions = min(r.Executions, 30)
			r.ConvergenceWarmup = min(r.ConvergenceWarmup, 10)
		}
		res, err := r.ResilienceSweep(mix, opts)
		check(err)
		fmt.Println(experiment.RenderResilience(res))
	}
	if *policies {
		mixes := []experiment.Mix{
			{Name: "ferret rs", FG: []string{"ferret"}, BG: five("rs")},
			{Name: "bodytrack pca", FG: []string{"bodytrack"}, BG: five("pca")},
		}
		if *short {
			// CI smoke: one mix, shorter runs — every policy still goes
			// through the full engine end to end.
			mixes = mixes[:1]
			r.Executions = min(r.Executions, 20)
			r.ConvergenceWarmup = min(r.ConvergenceWarmup, 10)
		}
		res, err := r.PolicySweep(mixes, nil)
		check(err)
		fmt.Println(experiment.RenderPolicySweep("Policy sweep: QoS policies under the full runtime", res))
	}

	check(flushTrace())
	fmt.Fprintf(os.Stderr, "dirigent-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func five(name string) []string {
	return []string{name, name, name, name, name}
}

func mustMixes(r *experiment.Runner, mixes []experiment.Mix) []*experiment.MixResult {
	res, err := r.RunMixes(mixes)
	check(err)
	return res
}

// closeTrace flushes and closes the -trace writer; nil when tracing is off.
// It is package-level so the error path can drain the events recorded so
// far — a partial trace of a failed figure run is exactly what one wants
// for debugging it.
var closeTrace func() error

// flushTrace runs closeTrace at most once.
func flushTrace() error {
	if closeTrace == nil {
		return nil
	}
	ct := closeTrace
	closeTrace = nil
	return ct()
}

func check(err error) {
	if err != nil {
		if terr := flushTrace(); terr != nil {
			fmt.Fprintln(os.Stderr, "dirigent-bench: trace:", terr)
		}
		fmt.Fprintln(os.Stderr, "dirigent-bench:", err)
		os.Exit(1)
	}
}

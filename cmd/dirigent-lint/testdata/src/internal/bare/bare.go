package bare

// V is a fixture value.
var V = 1

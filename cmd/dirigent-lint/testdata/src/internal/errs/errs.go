// Package errs violates the error-style checks for the CLI golden test.
package errs

import (
	"errors"
	"fmt"
)

// Static should be errors.New.
func Static() error {
	return fmt.Errorf("no verbs here")
}

// Punct ends its error string with punctuation.
func Punct() error {
	return errors.New("bad style.")
}

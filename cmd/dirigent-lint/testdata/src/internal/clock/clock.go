// Package clock violates the walltime ban for the CLI golden test.
package clock

import "time"

// Now reads the wall clock in a deterministic package.
func Now() time.Time {
	return time.Now()
}

// Honored is suppressed by its directive.
func Honored() time.Time {
	//lint:ignore walltime golden-test fixture: sanctioned read
	return time.Now()
}

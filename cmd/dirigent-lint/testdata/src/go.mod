module lintcli

go 1.22

module lintclean

go 1.22

// Package tidy is a fully clean fixture package.
package tidy

import "errors"

// ErrTidy is a well-formed sentinel.
var ErrTidy = errors.New("tidy sentinel")

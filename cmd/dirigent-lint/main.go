// Command dirigent-lint is the repo's lint gate. The CI image has no
// third-party linters, so the staticcheck-style checks we rely on are
// implemented here on the standard library's go/ast:
//
//   - pkgdoc: every package under internal/ carries a "// Package <name>"
//     doc comment.
//   - errorsnew: fmt.Errorf with a constant format string and no verbs
//     should be errors.New (staticcheck's S1028 family).
//   - errstyle: error strings must not end in punctuation or a newline
//     (staticcheck ST1005) — they get wrapped and joined.
//   - walltime: the simulator is seed-deterministic; time.Now and the
//     global math/rand source are banned from internal/ packages except
//     the wall-clock benchmark harness (internal/benchreg).
//
// Usage:
//
//	dirigent-lint [-root dir]
//
// Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// walltimeAllowed lists internal packages that may read the wall clock:
// benchreg measures real elapsed time by design.
var walltimeAllowed = map[string]bool{
	"internal/benchreg": true,
}

type finding struct {
	pos   token.Position
	check string
	msg   string
}

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "dirigent-lint: unexpected arguments; use -root to point at the module")
		os.Exit(2)
	}

	files, err := goFiles(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dirigent-lint:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	var findings []finding
	pkgHasDoc := map[string]bool{} // internal/<pkg> dir -> doc comment seen
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dirigent-lint:", err)
			os.Exit(2)
		}
		rel, _ := filepath.Rel(*root, path)
		rel = filepath.ToSlash(rel)
		dir := filepath.ToSlash(filepath.Dir(rel))
		internal := strings.HasPrefix(dir, "internal/")
		test := strings.HasSuffix(rel, "_test.go")

		if internal && !test {
			if _, seen := pkgHasDoc[dir]; !seen {
				pkgHasDoc[dir] = false
			}
			if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package "+f.Name.Name+" ") {
				pkgHasDoc[dir] = true
			}
		}
		if test {
			continue // style checks cover shipped code only
		}
		findings = append(findings, lintFile(fset, f, dir, internal)...)
	}

	var dirs []string
	for d, ok := range pkgHasDoc {
		if !ok {
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		findings = append(findings, finding{
			pos:   token.Position{Filename: d},
			check: "pkgdoc",
			msg:   fmt.Sprintf("package %s has no %q doc comment", d, "// Package "+filepath.Base(d)+" ..."),
		})
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.check, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dirigent-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("dirigent-lint: clean")
}

// goFiles walks root for .go files, skipping hidden and vendor-ish
// directories.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func lintFile(fset *token.FileSet, f *ast.File, dir string, internal bool) []finding {
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, fn := calleeName(call)
		switch {
		case pkg == "fmt" && fn == "Errorf":
			if lit, s := constString(call.Args[0]); lit != nil {
				if len(call.Args) == 1 && !strings.Contains(s, "%") {
					out = append(out, finding{fset.Position(call.Pos()), "errorsnew",
						"fmt.Errorf with no format verbs; use errors.New"})
				}
				out = append(out, checkErrString(fset, lit, s)...)
			}
		case pkg == "errors" && fn == "New":
			if lit, s := constString(call.Args[0]); lit != nil {
				out = append(out, checkErrString(fset, lit, s)...)
			}
		case pkg == "time" && fn == "Now":
			if internal && !walltimeAllowed[dir] {
				out = append(out, finding{fset.Position(call.Pos()), "walltime",
					"time.Now in a seed-deterministic package; derive time from the simulation clock"})
			}
		case pkg == "rand" && (fn == "Int" || fn == "Intn" || fn == "Float64" || fn == "Int63" || fn == "Uint64" || fn == "Shuffle" || fn == "Perm"):
			if internal && !walltimeAllowed[dir] {
				out = append(out, finding{fset.Position(call.Pos()), "walltime",
					"global math/rand source in a seed-deterministic package; use a seeded *rand.Rand"})
			}
		}
		return true
	})
	return out
}

// calleeName unpacks pkg.Fn(...) calls; method calls on locals return "".
func calleeName(call *ast.CallExpr) (pkg, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil { // id.Obj != nil means a local variable, not a package
		return "", ""
	}
	return id.Name, sel.Sel.Name
}

// constString returns the literal and decoded value when the expression is
// a plain string literal.
func constString(e ast.Expr) (*ast.BasicLit, string) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil, ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil, ""
	}
	return lit, s
}

// checkErrString enforces ST1005: error strings are joined into larger
// messages, so they must not end with punctuation or a newline.
func checkErrString(fset *token.FileSet, lit *ast.BasicLit, s string) []finding {
	if s == "" {
		return nil
	}
	if strings.HasSuffix(s, "\n") || strings.ContainsAny(s[len(s)-1:], ".!?") {
		return []finding{{fset.Position(lit.Pos()), "errstyle",
			"error string ends with punctuation or a newline"}}
	}
	return nil
}

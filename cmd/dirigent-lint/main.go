// Command dirigent-lint is the repo's static-analysis gate, a thin CLI
// over internal/analysis: a stdlib-only driver that type-checks every
// package in the module and runs nine type-aware analyzers —
//
//   - pkgdoc: internal packages carry a "// Package <name>" doc comment
//   - errorsnew: fmt.Errorf with no verbs should be errors.New
//   - errstyle: error strings must not end in punctuation or a newline
//   - walltime: no time.Now / global math/rand (or imports of wall-clock
//     tainted packages) in seed-deterministic packages
//   - maprange: map iteration in deterministic packages goes through
//     sorted keys
//   - nondetsched: no goroutines, selects or sync.Map in deterministic
//     packages outside the fan-out allowlist
//   - errcheck: no silently discarded error returns
//   - floateq: no ==/!= on floats outside approved comparators
//   - copylocks: sync types are not passed or assigned by value
//
// Deliberate exceptions are annotated in source with
// "//lint:ignore <check> <reason>".
//
// Usage:
//
//	dirigent-lint [-root dir] [-checks a,b,...] [-json|-md]
//	dirigent-lint -list
//	dirigent-lint -selftest
//
// Exit status: 0 when clean, 1 when findings exist (or the selftest
// fails), 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dirigent/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dirigent-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root     = fs.String("root", ".", "module root to analyze")
		checks   = fs.String("checks", "", "comma-separated analyzer subset (default: all)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
		mdOut    = fs.Bool("md", false, "emit the report as Markdown (CI step summaries)")
		list     = fs.Bool("list", false, "list the registered analyzers and exit")
		selftest = fs.Bool("selftest", false, "run the analyzer selftest over internal/analysis/testdata")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "dirigent-lint: unexpected arguments; use -root to point at the module")
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *selftest {
		if err := analysis.SelfTest(filepath.Join(*root, "internal", "analysis", "testdata")); err != nil {
			fmt.Fprintln(stderr, "dirigent-lint:", err)
			return 1
		}
		fmt.Fprintln(stdout, "dirigent-lint: selftest ok — every analyzer fires on its seeded fixture violation and stays quiet elsewhere")
		return 0
	}

	selected, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "dirigent-lint:", err)
		return 2
	}
	res, err := analysis.Run(analysis.Options{Root: *root, Checks: selected})
	if err != nil {
		fmt.Fprintln(stderr, "dirigent-lint:", err)
		return 2
	}

	switch {
	case *jsonOut:
		s, err := analysis.RenderJSON(res)
		if err != nil {
			fmt.Fprintln(stderr, "dirigent-lint:", err)
			return 2
		}
		fmt.Fprint(stdout, s)
	case *mdOut:
		fmt.Fprint(stdout, analysis.RenderMarkdown(res))
	default:
		fmt.Fprint(stdout, analysis.RenderText(res))
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stderr, "dirigent-lint: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dirigent/internal/analysis"
)

// runCLI invokes run() capturing both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestGolden pins the text reporter byte-for-byte over the dirty fixture
// module: one finding per seeded violation, the suppressed one absent,
// exit status 1.
func TestGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-root", "testdata/src")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if stdout != string(want) {
		t.Errorf("output mismatch:\n--- got\n%s--- want\n%s", stdout, want)
	}
	if !strings.Contains(stderr, "4 finding(s)") {
		t.Errorf("stderr summary = %q", stderr)
	}
}

// TestCleanModule exits 0 with the clean banner.
func TestCleanModule(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-root", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "clean") {
		t.Errorf("stdout = %q, want clean banner", stdout)
	}
}

// TestJSONOutput must parse and carry the same findings as the golden
// run.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", "testdata/src", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var res analysis.Result
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(res.Findings) != 4 || res.Suppressed != 1 {
		t.Errorf("findings = %d (want 4), suppressed = %d (want 1)", len(res.Findings), res.Suppressed)
	}
}

// TestMarkdownOutput renders the step-summary table.
func TestMarkdownOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", "testdata/src", "-md")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "| Position | Check | Message |") || !strings.Contains(stdout, "walltime") {
		t.Errorf("markdown output missing table:\n%s", stdout)
	}
}

// TestChecksFlag filters the registry; an unknown name is a usage error
// (exit 2).
func TestChecksFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, "-root", "testdata/src", "-checks", "pkgdoc")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "walltime") || !strings.Contains(stdout, "pkgdoc") {
		t.Errorf("-checks pkgdoc output:\n%s", stdout)
	}
	if code, _, stderr := runCLI(t, "-checks", "bogus"); code != 2 || !strings.Contains(stderr, "unknown check") {
		t.Errorf("unknown check: exit %d, stderr %q", code, stderr)
	}
}

// TestList names all nine analyzers.
func TestList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range analysis.Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
	if n := len(analysis.Names()); n != 9 {
		t.Errorf("registry has %d analyzers, want 9", n)
	}
}

// TestUsageErrors: stray arguments exit 2.
func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCLI(t, "stray"); code != 2 || !strings.Contains(stderr, "unexpected arguments") {
		t.Errorf("stray argument: exit %d, stderr %q", code, stderr)
	}
}

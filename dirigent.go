// Package dirigent is a faithful, simulation-backed reproduction of
// "Dirigent: Enforcing QoS for Latency-Critical Tasks on Shared Multicore
// Systems" (Zhu & Erez, ASPLOS 2016).
//
// It provides:
//
//   - A deterministic interval simulator of the paper's evaluation platform
//     — a 6-core machine with per-core DVFS, a CAT-style way-partitioned
//     15 MB LLC with cache-inertia dynamics, and a bandwidth-contended
//     memory system (NewMachine, DefaultMachineConfig).
//   - Phase-structured synthetic workload models standing in for the
//     paper's PARSEC foreground and SPEC/MLPack background benchmarks
//     (FGBenchmarks, BGBenchmarks, BenchmarkByName).
//   - The Dirigent system itself: the offline profiler (ProfileBenchmark),
//     the Eq. 1/Eq. 2 execution-time predictor (NewPredictor), the fine
//     time scale DVFS/pause controller and coarse time scale partition
//     controller, and the runtime that assembles them (NewRuntime).
//   - The evaluation harness that regenerates every table and figure of
//     the paper (NewRunner and the Fig* helpers in this package).
//
// Quick start (see examples/quickstart for the runnable version):
//
//	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
//	colo, _ := dirigent.NewColocation(m, fgBenchmarks, bgSpecs, opts)
//	profile, _ := dirigent.ProfileBenchmark(fg, dirigent.ProfilerOptions{})
//	rt, _ := dirigent.NewRuntime(colo, []*dirigent.Profile{profile},
//	    dirigent.RuntimeConfig{Targets: []time.Duration{target}})
//	rt.RunExecutions(100, limit)
package dirigent

import (
	"io"

	"dirigent/internal/cache"
	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/experiment"
	"dirigent/internal/machine"
	"dirigent/internal/mem"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// --- Simulated platform ---

// Machine is the simulated multicore system (cores + DVFS + LLC + memory +
// performance counters).
type Machine = machine.Machine

// MachineConfig describes a machine.
type MachineConfig = machine.Config

// CacheConfig describes the LLC geometry.
type CacheConfig = cache.Config

// MemoryConfig describes the memory system.
type MemoryConfig = mem.Config

// LLC is the way-partitioned last-level cache.
type LLC = cache.LLC

// ClassID identifies an LLC partition class (a CAT CLOS).
type ClassID = cache.ClassID

// Time is an instant on the simulated timeline.
type Time = sim.Time

// CoreSet describes one homogeneous group of cores inside a heterogeneous
// machine configuration (count, frequency/IPC scaling, memory socket).
type CoreSet = machine.CoreSet

// DefaultMachineConfig mirrors the paper's Xeon E5-2618L v3 platform.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// MachineClassNames lists the registered machine classes (sorted).
func MachineClassNames() []string { return machine.ClassNames() }

// MachineClassConfig returns the configuration of a registered machine
// class ("" selects the default class, the paper's Xeon).
func MachineClassConfig(name string) (MachineConfig, error) { return machine.ClassConfig(name) }

// NewMachine builds a machine; it panics on an invalid configuration (use
// machine configs derived from DefaultMachineConfig).
func NewMachine(cfg MachineConfig) *Machine { return machine.MustNew(cfg) }

// --- Workloads ---

// Benchmark is a phase-structured synthetic workload model.
type Benchmark = workload.Benchmark

// BenchPhase is one phase of a benchmark.
type BenchPhase = workload.Phase

// Program is a running instance of a benchmark.
type Program = workload.Program

// FGBenchmarks returns the five foreground benchmarks (Table 1).
func FGBenchmarks() []*Benchmark { return workload.FG() }

// BGBenchmarks returns the three standalone background benchmarks.
func BGBenchmarks() []*Benchmark { return workload.SingleBG() }

// RotateBenchmarks returns the four rotate-pair background benchmarks.
func RotateBenchmarks() []*Benchmark { return workload.RotateBenchmarks() }

// BenchmarkByName returns a fresh copy of the named catalog benchmark.
func BenchmarkByName(name string) (*Benchmark, error) { return workload.ByName(name) }

// --- Collocation ---

// Colocation places FG streams and BG workers on a machine.
type Colocation = sched.Colocation

// ColocationOptions configures a collocation.
type ColocationOptions = sched.Options

// BGSpec describes one background worker (plain benchmark or rotate pair).
type BGSpec = sched.BGSpec

// FGStream is a foreground benchmark running as a stream of executions.
type FGStream = sched.FGStream

// Execution records one completed foreground execution.
type Execution = sched.Execution

// NewColocation places fg benchmarks and bg workers on a machine.
func NewColocation(m *Machine, fg []*Benchmark, bg []BGSpec, opts ColocationOptions) (*Colocation, error) {
	return sched.New(m, fg, bg, opts)
}

// --- The Dirigent system ---

// Profile is the offline profiling record of an FG benchmark (§4.1).
type Profile = core.Profile

// ProfilerOptions configures offline profiling.
type ProfilerOptions = core.ProfilerOptions

// Predictor is the Eq. 1/Eq. 2 execution-time predictor (§4.2).
type Predictor = core.Predictor

// Runtime is the assembled Dirigent runtime (§4).
type Runtime = core.Runtime

// RuntimeConfig configures a runtime.
type RuntimeConfig = core.RuntimeConfig

// FineConfig configures the fine time scale controller (§4.3).
type FineConfig = core.FineConfig

// CoarseConfig configures the coarse time scale controller (§4.3).
type CoarseConfig = core.CoarseConfig

// ProfileBenchmark runs the offline profiler for an FG benchmark.
func ProfileBenchmark(b *Benchmark, opts ProfilerOptions) (*Profile, error) {
	return core.ProfileBenchmark(b, opts)
}

// OnlineProfileOptions configures in-place profiling.
type OnlineProfileOptions = core.OnlineProfileOptions

// ProfileOnline profiles an FG stream in place by pausing the collocation's
// background tasks (the paper's §7 online-profiling extension).
func ProfileOnline(colo *Colocation, stream int, opts OnlineProfileOptions) (*Profile, error) {
	return core.ProfileOnline(colo, stream, opts)
}

// NewPredictor builds a predictor over a profile; weight 0 means the
// paper's 0.2.
func NewPredictor(profile *Profile, weight float64) (*Predictor, error) {
	return core.NewPredictor(profile, weight)
}

// NewRuntime assembles Dirigent over a collocation.
func NewRuntime(colo *Colocation, profiles []*Profile, cfg RuntimeConfig) (*Runtime, error) {
	return core.NewRuntime(colo, profiles, cfg)
}

// --- Telemetry ---

// Recorder is the typed event bus every subsystem reports through: the
// machine, both controllers, the predictor, the scheduler, and the
// evaluation harness emit structured events onto one Recorder. Recording is
// strictly observational — results are byte-identical with or without one
// attached. Set RuntimeConfig.Recorder (or Runner.Recorder) to receive the
// stream.
type Recorder = telemetry.Recorder

// Event is one telemetry record; EventKind discriminates which field groups
// are meaningful.
type Event = telemetry.Event

// EventKind identifies the type of a telemetry event.
type EventKind = telemetry.Kind

// FineStats are the fine-controller counters aggregated from the event
// stream (RunResult.Fine).
type FineStats = telemetry.FineStats

// Aggregator folds an event stream into the cross-run statistics the
// evaluation reports.
type Aggregator = telemetry.Aggregator

// JSONLRecorder writes one JSON object per event, newline-delimited.
type JSONLRecorder = telemetry.JSONL

// NopRecorder returns the shared zero-cost no-op recorder.
func NopRecorder() Recorder { return telemetry.Nop() }

// NewAggregator returns an empty in-memory aggregating sink.
func NewAggregator() *Aggregator { return telemetry.NewAggregator() }

// NewJSONLRecorder returns a JSONL trace sink writing to w. Per-quantum
// machine events are excluded by default; opt in with
// Include(QuantumStepEvent).
func NewJSONLRecorder(w io.Writer) *JSONLRecorder { return telemetry.NewJSONL(w) }

// TeeRecorders fans one event stream out to several sinks.
func TeeRecorders(sinks ...Recorder) Recorder { return telemetry.Tee(sinks...) }

// WithRunLabel stamps every event recorded through r with a run label.
func WithRunLabel(r Recorder, run string) Recorder { return telemetry.WithRun(r, run) }

// The event kinds (see the telemetry package docs for per-kind fields).
const (
	MachineStartEvent      = telemetry.KindMachineStart
	QuantumStepEvent       = telemetry.KindQuantumStep
	DVFSTransitionEvent    = telemetry.KindDVFSTransition
	PartitionMoveEvent     = telemetry.KindPartitionMove
	TaskLaunchEvent        = telemetry.KindTaskLaunch
	TaskKillEvent          = telemetry.KindTaskKill
	TaskPauseEvent         = telemetry.KindTaskPause
	TaskResumeEvent        = telemetry.KindTaskResume
	TaskSwitchEvent        = telemetry.KindTaskSwitch
	SegmentPenaltyEvent    = telemetry.KindSegmentPenalty
	ExecutionCompleteEvent = telemetry.KindExecutionComplete
	FineDecisionEvent      = telemetry.KindFineDecision
	FineActionEvent        = telemetry.KindFineAction
	CoarseDecisionEvent    = telemetry.KindCoarseDecision
)

// --- Evaluation harness ---

// ConfigName identifies one of the five evaluated configurations.
type ConfigName = config.Name

// The five configurations of §5.4.
const (
	Baseline     = config.Baseline
	StaticFreq   = config.StaticFreq
	StaticBoth   = config.StaticBoth
	DirigentFreq = config.DirigentFreq
	Dirigent     = config.Dirigent
)

// Mix is one workload combination of the evaluation.
type Mix = experiment.Mix

// Runner executes mixes under the five configurations.
type Runner = experiment.Runner

// MixResult bundles a mix's runs across configurations.
type MixResult = experiment.MixResult

// RunResult is one mix under one configuration.
type RunResult = experiment.RunResult

// NewRunner returns an evaluation runner with the paper's defaults.
func NewRunner() *Runner { return experiment.NewRunner() }

// SingleBGMixes returns the 15 single-BG mixes (Fig. 9a).
func SingleBGMixes() []Mix { return experiment.SingleBGMixes() }

// RotateBGMixes returns the 20 rotate-BG mixes (Fig. 9b).
func RotateBGMixes() []Mix { return experiment.RotateBGMixes() }

// MultiFGMixes returns the 15 multi-FG mixes (Fig. 9c).
func MultiFGMixes() []Mix { return experiment.MultiFGMixes() }

// AllSingleFGMixes returns the 35 single-FG mixes (Fig. 7/10).
func AllSingleFGMixes() []Mix { return experiment.AllSingleFGMixes() }

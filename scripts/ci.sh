#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
#
#   scripts/ci.sh             # full: gofmt + vet + dirigent-lint + build + tests
#                             # + race detector
#                             # + the shrunk fault-injection (resilience) smoke
#                             # + the policy-sweep smoke (every QoS policy end to end)
#                             # + the dirigent-serve API smoke (-selfcheck)
#                             # + the load-generator smoke (seeded 5 s open-loop
#                             #   churn: trace determinism, zero drops, zero leaks)
#   scripts/ci.sh -short      # same legs, but skip the long end-to-end tests
#   scripts/ci.sh -bench      # additionally run the perf/QoS regression gate
#                             # (dirigent-ci -check against the latest BENCH_<n>.json)
#                             # and the skip-ahead speedup gate (dirigent-ci
#                             # -skipahead, hard fail below 2x)
#   scripts/ci.sh -scenarios  # additionally run the declarative scenario suite
#                             # (dirigent-ci -scenarios against scenarios/*.json)
#
# -short, -bench and -scenarios combine. Each leg reports its elapsed
# seconds so slow legs are visible in CI logs. The race leg covers internal
# packages only: the root package and cmd/ are thin facades over them and
# are already exercised race-free by the plain test leg. The lint leg
# (cmd/dirigent-lint) subsumes the old package-comment grep and adds the
# staticcheck-style checks the CI image cannot install; its -selftest leg
# proves every analyzer still fires on the seeded fixture violations before
# a clean repo run is trusted.
set -eu
cd "$(dirname "$0")/.."

short=""
bench=false
scenarios=false
for arg in "$@"; do
	case "$arg" in
	-short) short="-short" ;;
	-bench) bench=true ;;
	-scenarios) scenarios=true ;;
	*)
		echo "ci: unknown argument: $arg (want -short, -bench and/or -scenarios)" >&2
		exit 2
		;;
	esac
done

# leg <label> <cmd...>: run one check, echoing its label and elapsed seconds.
leg() {
	_label="$1"
	shift
	echo "== $_label"
	_t0=$(date +%s)
	"$@"
	echo "-- $_label: $(($(date +%s) - _t0))s"
}

gofmt_clean() {
	_fmt=$(gofmt -l .)
	if [ -n "$_fmt" ]; then
		echo "ci: files need gofmt:" >&2
		echo "$_fmt" >&2
		exit 1
	fi
}

run_tests() { go test $short ./...; }
run_race() { go test -race $short ./internal/...; }
run_resilience() { go run ./cmd/dirigent-bench -resilience -short >/dev/null; }
run_policies() { go run ./cmd/dirigent-bench -policies -short >/dev/null; }
run_serve() { go run ./cmd/dirigent-serve -selfcheck >/dev/null; }
# Seeded 5 s churn replayed in-process at 4x: -check-determinism gates the
# byte-identical synthesis, -fail-on-drops plus the built-in leak check gate
# the structural replay invariants. Latencies are reported, never gated.
run_load() {
	go run ./cmd/dirigent-load -spec loadspecs/smoke.json -seed 42 \
		-check-determinism -inproc -speed 4 -fail-on-drops -quiet >/dev/null
}

leg "gofmt -l" gofmt_clean
leg "go vet ./..." go vet ./...
leg "dirigent-lint -selftest" go run ./cmd/dirigent-lint -selftest
leg "dirigent-lint" go run ./cmd/dirigent-lint
leg "go build ./..." go build ./...
leg "go test ./... $short" run_tests
leg "go test -race ./internal/... $short" run_race
leg "dirigent-bench -resilience -short (fault-injection smoke)" run_resilience
leg "dirigent-bench -policies -short (policy-sweep smoke)" run_policies
leg "dirigent-serve -selfcheck (server API smoke)" run_serve
leg "dirigent-load (load-generator smoke)" run_load

if $bench; then
	leg "dirigent-ci -check" go run ./cmd/dirigent-ci -check
	# The speedup is a ratio of two runs on this same machine, so unlike the
	# wall-clock metrics it needs no recorded baseline to gate hard.
	leg "dirigent-ci -skipahead" go run ./cmd/dirigent-ci -skipahead
fi

if $scenarios; then
	leg "dirigent-ci -scenarios" go run ./cmd/dirigent-ci -scenarios
fi

echo "ci: all checks passed"

#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
#
#   scripts/ci.sh          # full: gofmt + vet + build + tests + race detector
#                          # + package-comment check for internal/*
#                          # + the shrunk fault-injection (resilience) smoke
#                          # + the policy-sweep smoke (every QoS policy end to end)
#                          # + the dirigent-serve API smoke (-selfcheck)
#   scripts/ci.sh -short   # same legs, but skip the long end-to-end tests
#   scripts/ci.sh -bench   # additionally run the perf/QoS regression gate
#                          # (dirigent-ci -check against the latest BENCH_<n>.json)
#
# -short and -bench combine. The race leg covers internal packages only: the
# root package and cmd/ are thin facades over them and are already exercised
# race-free by the plain test leg.
set -eu
cd "$(dirname "$0")/.."

short=""
bench=false
for arg in "$@"; do
	case "$arg" in
	-short) short="-short" ;;
	-bench) bench=true ;;
	*)
		echo "ci: unknown argument: $arg (want -short and/or -bench)" >&2
		exit 2
		;;
	esac
done

echo "== gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "ci: files need gofmt:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./... $short"
go test $short ./...

echo "== go test -race ./internal/... $short"
go test -race $short ./internal/...

echo "== package comments for internal/*"
missing=""
for d in internal/*/; do
	# Every internal package must carry a doc comment in the conventional
	# "// Package <name> ..." form in at least one non-test file.
	name=$(basename "$d")
	if ! grep -ls "^// Package $name " "$d"*.go >/dev/null 2>&1; then
		missing="$missing ./${d%/}"
	fi
done
if [ -n "$missing" ]; then
	echo "ci: internal packages missing a package comment:$missing" >&2
	exit 1
fi

echo "== dirigent-bench -resilience -short (fault-injection smoke)"
go run ./cmd/dirigent-bench -resilience -short >/dev/null

echo "== dirigent-bench -policies -short (policy-sweep smoke)"
go run ./cmd/dirigent-bench -policies -short >/dev/null

echo "== dirigent-serve -selfcheck (server API smoke)"
go run ./cmd/dirigent-serve -selfcheck >/dev/null

if $bench; then
	echo "== dirigent-ci -check"
	go run ./cmd/dirigent-ci -check
fi

echo "ci: all checks passed"

#!/usr/bin/env sh
# Tier-1 verification: everything a change must pass before merging.
#
#   scripts/ci.sh          # full: vet + build + tests + race detector
#   scripts/ci.sh -short   # skip the long end-to-end runs (passed to go test)
#
# The race leg covers internal packages only: the root package and cmd/ are
# thin facades over them and are already exercised race-free by the plain
# test leg.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./... $*"
go test "$@" ./...

echo "== go test -race ./internal/... $*"
go test -race "$@" ./internal/...

echo "ci: all checks passed"

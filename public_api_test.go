package dirigent_test

import (
	"bytes"
	"testing"
	"time"

	"dirigent"
)

// TestPublicAPIEndToEnd drives the full public surface the README
// advertises: catalog lookup, machine construction, partition classes,
// collocation, offline profiling, runtime, and the evaluation runner types.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end public API test")
	}
	fg, err := dirigent.BenchmarkByName("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	bg, err := dirigent.BenchmarkByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirigent.FGBenchmarks()) != 5 || len(dirigent.BGBenchmarks()) != 3 || len(dirigent.RotateBenchmarks()) != 4 {
		t.Fatal("catalog accessors wrong")
	}

	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	fgClass := m.LLC().DefineClass()
	bgClass := m.LLC().DefineClass()
	if err := m.LLC().SetPartition(map[dirigent.ClassID]int{0: 0, fgClass: 4, bgClass: 16}); err != nil {
		t.Fatal(err)
	}

	specs := make([]dirigent.BGSpec, 5)
	for i := range specs {
		specs[i] = dirigent.BGSpec{Bench: bg}
	}
	colo, err := dirigent.NewColocation(m, []*dirigent.Benchmark{fg}, specs,
		dirigent.ColocationOptions{Seed: 99, FGClass: fgClass, BGClass: bgClass})
	if err != nil {
		t.Fatal(err)
	}

	profile, err := dirigent.ProfileBenchmark(fg, dirigent.ProfilerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := dirigent.NewPredictor(profile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Segments() < 40 {
		t.Errorf("Segments = %d", pred.Segments())
	}

	// Telemetry through the facade: an aggregator plus a labelled JSONL
	// trace, teed onto the runtime's bus.
	var traceBuf bytes.Buffer
	agg := dirigent.NewAggregator()
	rec := dirigent.TeeRecorders(agg, dirigent.WithRunLabel(dirigent.NewJSONLRecorder(&traceBuf), "api"))
	rt, err := dirigent.NewRuntime(colo, []*dirigent.Profile{profile}, dirigent.RuntimeConfig{
		Targets:            []time.Duration{650 * time.Millisecond},
		EnablePartitioning: true,
		Recorder:           rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunExecutions(8, dirigent.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if colo.FG()[0].Completed() < 8 {
		t.Error("executions not recorded")
	}
	if rt.Coarse() == nil || rt.Coarse().FGWays() < 2 {
		t.Error("coarse controller missing")
	}
	if agg.Executions() < 8 || agg.Fine().Decisions == 0 {
		t.Error("telemetry aggregator saw no activity")
	}
	if agg.FGWays() != rt.Coarse().FGWays() {
		t.Errorf("aggregated FGWays %d != controller %d", agg.FGWays(), rt.Coarse().FGWays())
	}
	if traceBuf.Len() == 0 {
		t.Error("JSONL trace is empty")
	}
	if dirigent.NopRecorder().Enabled(dirigent.QuantumStepEvent) {
		t.Error("nop recorder must report every kind disabled")
	}

	// Online profiling through the facade.
	online, err := dirigent.ProfileOnline(colo, 0, dirigent.OnlineProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if online.Benchmark != fg.Name {
		t.Errorf("online profile benchmark = %s", online.Benchmark)
	}

	// Evaluation-harness types are reachable.
	if got := len(dirigent.AllSingleFGMixes()); got != 35 {
		t.Errorf("AllSingleFGMixes = %d", got)
	}
	if got := len(dirigent.MultiFGMixes()); got != 15 {
		t.Errorf("MultiFGMixes = %d", got)
	}
	names := []dirigent.ConfigName{dirigent.Baseline, dirigent.StaticFreq, dirigent.StaticBoth,
		dirigent.DirigentFreq, dirigent.Dirigent}
	if len(names) != 5 {
		t.Error("config name constants missing")
	}
	r := dirigent.NewRunner()
	if r.Executions <= 0 {
		t.Error("runner defaults missing")
	}
}

module dirigent

go 1.22

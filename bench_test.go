// Package dirigent_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out and micro-benchmarks of the hot paths.
//
// Figure benches print their rendered tables once (on the first iteration)
// and report the figure's headline quantities via b.ReportMetric, so the
// bench output doubles as the experimental record (EXPERIMENTS.md).
package dirigent_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/experiment"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/workload"
)

// benchRunner is shared across figure benches so offline profiles and mix
// results are computed once per `go test` process.
var (
	benchRunnerOnce sync.Once
	benchRunnerInst *experiment.Runner

	mixResultsMu   sync.Mutex
	mixResultsByID = map[string][]*experiment.MixResult{}
)

func benchRunner() *experiment.Runner {
	benchRunnerOnce.Do(func() {
		r := experiment.NewRunner()
		r.Executions = 45 // enough for stable statistics, small enough for CI
		benchRunnerInst = r
	})
	return benchRunnerInst
}

// mixResults caches full five-configuration sweeps keyed by set name.
func mixResults(b *testing.B, key string, mixes []experiment.Mix) []*experiment.MixResult {
	b.Helper()
	mixResultsMu.Lock()
	defer mixResultsMu.Unlock()
	if res, ok := mixResultsByID[key]; ok {
		return res
	}
	res, err := benchRunner().RunMixes(mixes)
	if err != nil {
		b.Fatal(err)
	}
	mixResultsByID[key] = res
	return res
}

func five(name string) []string { return []string{name, name, name, name, name} }

// ----------------------------------------------------------------- Table 1

func BenchmarkTable1Catalog(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Table1()
	}
	b.StopTimer()
	fmt.Println(out)
}

// ------------------------------------------------------------------ Fig. 4

func BenchmarkFig4FGOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchRunner().FGOverview()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderFGOverview(rows))
			var worstSlowdown float64
			for _, r := range rows {
				if s := r.ContendSec / r.AloneSec; s > worstSlowdown {
					worstSlowdown = s
				}
			}
			b.ReportMetric(worstSlowdown, "worst-slowdown-x")
		}
	}
}

// ------------------------------------------------------------------ Fig. 5

func BenchmarkFig5BGOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchRunner().BGOverview()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderBGOverview(rows))
			b.ReportMetric(rows[len(rows)-1].TotalMPKFGI/rows[0].TotalMPKFGI, "intrusiveness-span-x")
		}
	}
}

// ------------------------------------------------------------------ Fig. 6

func BenchmarkFig6PredictionTrace(b *testing.B) {
	mix := experiment.Mix{Name: "raytrace rs", FG: []string{"raytrace"}, BG: five("rs")}
	for i := 0; i < b.N; i++ {
		res, err := benchRunner().PredictionProbe(mix, 50, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderPredictionTrace(res))
			b.ReportMetric(res.MeanError*100, "mean-error-%")
		}
	}
}

// ------------------------------------------------------------------ Fig. 7

func BenchmarkFig7PredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := benchRunner().PredictionAccuracy(25, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderPredictionAccuracy(results))
			sum := 0.0
			for _, r := range results {
				sum += r.MeanError
			}
			b.ReportMetric(sum/float64(len(results))*100, "avg-error-%")
		}
	}
}

// ------------------------------------------------------------------ Fig. 8

func BenchmarkFig8PartitionSweep(b *testing.B) {
	mix := experiment.Mix{Name: "streamcluster pca", FG: []string{"streamcluster"}, BG: five("pca")}
	for i := 0; i < b.N; i++ {
		res, err := benchRunner().PartitionSweep(mix, 2, 18)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderPartitionSweep(res))
			b.ReportMetric(float64(res.Knee), "knee-ways")
			b.ReportMetric(float64(res.DirigentWays), "dirigent-ways")
			b.ReportMetric(float64(res.DirigentExecutions), "convergence-executions")
		}
	}
}

// --------------------------------------------------------- Fig. 9a/9b/9c

func benchComparison(b *testing.B, key, title string, mixes []experiment.Mix) []*experiment.MixResult {
	b.Helper()
	var results []*experiment.MixResult
	for i := 0; i < b.N; i++ {
		results = mixResults(b, key, mixes)
		if i == 0 {
			fmt.Println(experiment.RenderComparison(title, results))
			rows, err := experiment.Summarize(results)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range rows {
				if row.Config == config.Dirigent {
					b.ReportMetric(row.FGRatio, "dirigent-fg-ratio")
					b.ReportMetric(row.BGThroughput, "dirigent-bg-throughput")
				}
			}
		}
	}
	return results
}

func BenchmarkFig9aSingleBG(b *testing.B) {
	benchComparison(b, "single", "Fig. 9a: Single BG Workload Mixes", experiment.SingleBGMixes())
}

func BenchmarkFig9bRotateBG(b *testing.B) {
	benchComparison(b, "rotate", "Fig. 9b: Rotate BG Workload Mixes", experiment.RotateBGMixes())
}

func BenchmarkFig9cMultiFG(b *testing.B) {
	benchComparison(b, "multi", "Fig. 9c: Multiple FGs Workload Mixes", experiment.MultiFGMixes())
}

// ----------------------------------------------------------------- Fig. 10

func BenchmarkFig10SummarySingleFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		combined := append(append([]*experiment.MixResult{},
			mixResults(b, "single", experiment.SingleBGMixes())...),
			mixResults(b, "rotate", experiment.RotateBGMixes())...)
		rows, err := experiment.Summarize(combined)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderSummary("Fig. 10: Summary of All Single FG Workload Mixes", rows))
			for _, row := range rows {
				b.ReportMetric(row.FGRatio, string(row.Config)+"-fg")
			}
		}
	}
}

// ----------------------------------------------------------------- Fig. 11

func BenchmarkFig11PDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := mixResults(b, "single", experiment.SingleBGMixes())
		var ferretRS *experiment.MixResult
		for _, mr := range results {
			if mr.Mix.Name == "ferret rs" {
				ferretRS = mr
			}
		}
		curves, err := experiment.PDFCurves(ferretRS, 14)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderPDFCurves(ferretRS.Mix, curves))
		}
	}
}

// ----------------------------------------------------------------- Fig. 12

func BenchmarkFig12FreqDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := mixResults(b, "single", experiment.SingleBGMixes())
		var ferretRS *experiment.MixResult
		for _, mr := range results {
			if mr.Mix.Name == "ferret rs" {
				ferretRS = mr
			}
		}
		rows, err := experiment.FreqDistribution(ferretRS)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderFreqDistribution(ferretRS.Mix, rows))
		}
	}
}

// ----------------------------------------------------------------- Fig. 13

func BenchmarkFig13SummaryMultiFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Summarize(mixResults(b, "multi", experiment.MultiFGMixes()))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderSummary("Fig. 13: Summary of All Multiple FG Workload Mixes", rows))
		}
	}
}

// ----------------------------------------------------------------- Fig. 14

func BenchmarkFig14NormalizedStd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := mixResults(b, "multi", experiment.MultiFGMixes())
		if i == 0 {
			fmt.Println(experiment.RenderNormalizedStd(results))
		}
	}
}

// ----------------------------------------------------------------- Fig. 15

func BenchmarkFig15Tradeoff(b *testing.B) {
	mix := experiment.Mix{Name: "raytrace bwaves", FG: []string{"raytrace"}, BG: five("bwaves")}
	factors := []float64{1.00, 1.03, 1.06, 1.09, 1.12, 1.15, 1.18}
	for i := 0; i < b.N; i++ {
		pts, standalone, err := benchRunner().TradeoffSweep(mix, factors)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiment.RenderTradeoff(mix, standalone, pts))
			b.ReportMetric(pts[len(pts)-1].BGThroughput, "bg-at-loosest-target")
		}
	}
}

// ---------------------------------------------------------------- Headline

func BenchmarkHeadlineNumbers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		combined := append(append([]*experiment.MixResult{},
			mixResults(b, "single", experiment.SingleBGMixes())...),
			mixResults(b, "rotate", experiment.RotateBGMixes())...)
		h, err := experiment.ComputeHeadline(combined)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(h.Render())
			b.ReportMetric(h.DirigentFGSuccess*100, "dirigent-fg-success-%")
			b.ReportMetric(h.DirigentBGLoss*100, "dirigent-bg-loss-%")
			b.ReportMetric(h.DirigentStdReduction*100, "dirigent-std-reduction-%")
		}
	}
}

// --------------------------------------------------------------- Ablations

// BenchmarkAblationEMAWeight reproduces the paper's sensitivity claim
// (§4.2): the predictor is robust to EMA weights in 0.1–0.3.
func BenchmarkAblationEMAWeight(b *testing.B) {
	for _, w := range []float64{0.1, 0.2, 0.3} {
		b.Run(fmt.Sprintf("w=%.1f", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := predictorAccuracyWithOptions(b, w, core.DefaultSamplePeriod)
				if i == 0 {
					b.ReportMetric(err*100, "mean-error-%")
				}
			}
		})
	}
}

// BenchmarkAblationSamplingPeriod reproduces §4.2's sampling-period
// sensitivity: even ~40 segments per execution predict well.
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	for _, p := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := predictorAccuracyWithOptions(b, core.DefaultEMAWeight, p)
				if i == 0 {
					b.ReportMetric(err*100, "mean-error-%")
				}
			}
		})
	}
}

// predictorAccuracyWithOptions measures midpoint prediction error for
// ferret against 5 bwaves with custom predictor parameters.
func predictorAccuracyWithOptions(b *testing.B, weight float64, period time.Duration) float64 {
	b.Helper()
	prof, err := core.ProfileBenchmark(workload.MustByName("ferret"),
		core.ProfilerOptions{SamplePeriod: period})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.MustNew(machine.DefaultConfig())
	specs := make([]sched.BGSpec, 5)
	for i := range specs {
		specs[i] = sched.BGSpec{Bench: workload.MustByName("bwaves")}
	}
	colo, err := sched.New(m, []*workload.Benchmark{workload.MustByName("ferret")}, specs, sched.Options{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	pred, err := core.NewPredictor(prof, weight)
	if err != nil {
		b.Fatal(err)
	}
	pred.BeginExecution(0)
	fgTask := colo.FG()[0].Task
	instrAtStart := 0.0
	mid := pred.Segments() / 2

	type pt struct {
		pred, actual float64
		have         bool
	}
	var pts []pt
	var cur pt
	colo.OnComplete(func(stream int, e sched.Execution) {
		if err := pred.FinishExecution(e.End); err != nil {
			b.Fatal(err)
		}
		cur.actual = e.Duration.Seconds()
		pts = append(pts, cur)
		cur = pt{}
		pred.BeginExecution(e.End)
		instrAtStart = m.Counters().Task(fgTask).Instructions
	})
	tick := sim.MustTicker(period)
	for len(pts) < 25 && m.Now() < sim.Time(3*time.Minute) {
		colo.Step()
		if !tick.Fire(m.Now()) {
			continue
		}
		if err := pred.Observe(m.Now(), m.Counters().Task(fgTask).Instructions-instrAtStart); err != nil {
			b.Fatal(err)
		}
		if !cur.have && pred.SegmentIndex() >= mid {
			d, err := pred.PredictDuration(m.Now())
			if err != nil {
				b.Fatal(err)
			}
			cur.pred = d.Seconds()
			cur.have = true
		}
	}
	sum, n := 0.0, 0
	for i, p := range pts {
		if i < 3 || !p.have {
			continue
		}
		e := (p.pred - p.actual) / p.actual
		if e < 0 {
			e = -e
		}
		sum += e
		n++
	}
	if n == 0 {
		b.Fatal("no predictions")
	}
	return sum / float64(n)
}

// ---------------------------------------------------------- Microbenchmarks

// BenchmarkMachineStep measures the simulator's per-quantum cost with a
// fully loaded 6-core machine (the figure of merit for sweep wall time).
func BenchmarkMachineStep(b *testing.B) {
	m := machine.MustNew(machine.DefaultConfig())
	names := []string{"ferret", "bwaves", "rs", "lbm", "pca", "namd"}
	for c, n := range names {
		if _, err := m.Launch(n, workload.MustProgram(workload.MustByName(n)), c, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkPredictorObserve measures the runtime's per-sample cost — the
// real system budgets <100 µs per invocation (§4.2); the simulated
// predictor must be far below that to keep sweeps fast.
func BenchmarkPredictorObserve(b *testing.B) {
	prof := &core.Profile{Benchmark: "synthetic", SamplePeriod: 5 * time.Millisecond}
	for i := 0; i < 200; i++ {
		prof.Segments = append(prof.Segments, core.Segment{Progress: 1e7, Duration: 5 * time.Millisecond})
	}
	pred := core.MustPredictor(prof, 0.2)
	pred.BeginExecution(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i%200) * sim.Time(5*time.Millisecond)
		if i%200 == 0 {
			pred.BeginExecution(now)
		}
		_ = pred.Observe(now, float64(i%200)*1e7)
		if _, err := pred.Predict(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLLCApply measures the cache model's per-quantum cost.
func BenchmarkLLCApply(b *testing.B) {
	llc := cache.MustNew(cache.DefaultConfig())
	traffic := make([]cache.Traffic, 6)
	for i := range traffic {
		if err := llc.Register(i, 0); err != nil {
			b.Fatal(err)
		}
		traffic[i] = cache.Traffic{Task: i, Accesses: 5000, MissRate: 0.4, WSS: 8 << 20}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Apply(250*time.Microsecond, traffic)
	}
}

// BenchmarkProfiler measures the offline profiling cost for the fastest FG
// benchmark.
func BenchmarkProfiler(b *testing.B) {
	bench := workload.MustByName("fluidanimate")
	for i := 0; i < b.N; i++ {
		if _, err := core.ProfileBenchmark(bench, core.ProfilerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Quickstart: collocate one latency-critical task with five batch tasks,
// first with no management, then under Dirigent, and compare.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"dirigent"
)

func main() {
	// The latency-critical foreground task and the batch background task.
	fg, err := dirigent.BenchmarkByName("streamcluster")
	if err != nil {
		log.Fatal(err)
	}
	bg, err := dirigent.BenchmarkByName("pca")
	if err != nil {
		log.Fatal(err)
	}
	bgSpecs := make([]dirigent.BGSpec, 5)
	for i := range bgSpecs {
		bgSpecs[i] = dirigent.BGSpec{Bench: bg}
	}

	// ---- Pass 1: free contention (no management). ----
	base := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	baseColo, err := dirigent.NewColocation(base, []*dirigent.Benchmark{fg}, bgSpecs,
		dirigent.ColocationOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := baseColo.RunExecutions(40, dirigent.Time(10*time.Minute)); err != nil {
		log.Fatal(err)
	}
	baseDurs := baseColo.FG()[0].Durations()[5:]
	mean, std := meanStd(baseDurs)
	// The paper's deadline rule: µ + 0.3σ of the unmanaged run.
	deadline := time.Duration((mean + 0.3*std) * float64(time.Second))
	fmt.Printf("unmanaged: mean %.3fs, std %.4fs -> deadline %.3fs, success %.0f%%\n",
		mean, std, deadline.Seconds(), 100*successRate(baseDurs, deadline))

	// ---- Pass 2: the same mix under Dirigent. ----
	// Offline step: profile the FG benchmark running alone (§4.1).
	profile, err := dirigent.ProfileBenchmark(fg, dirigent.ProfilerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	// Dirigent's coarse controller needs separate LLC partition classes for
	// FG and BG tasks (Intel CAT classes of service on the real machine).
	fgClass := m.LLC().DefineClass()
	bgClass := m.LLC().DefineClass()
	if err := m.LLC().SetPartition(map[dirigent.ClassID]int{0: 0, fgClass: 2, bgClass: 18}); err != nil {
		log.Fatal(err)
	}
	colo, err := dirigent.NewColocation(m, []*dirigent.Benchmark{fg}, bgSpecs,
		dirigent.ColocationOptions{Seed: 42, FGClass: fgClass, BGClass: bgClass})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := dirigent.NewRuntime(colo, []*dirigent.Profile{profile}, dirigent.RuntimeConfig{
		Targets:            []time.Duration{deadline},
		EnablePartitioning: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Run past the coarse controller's convergence, then measure.
	if err := rt.RunExecutions(75, dirigent.Time(20*time.Minute)); err != nil {
		log.Fatal(err)
	}
	durs := colo.FG()[0].Durations()[35:]
	dMean, dStd := meanStd(durs)
	fmt.Printf("dirigent:  mean %.3fs, std %.4fs -> success %.0f%% (partition: %d ways)\n",
		dMean, dStd, 100*successRate(durs, deadline), rt.Coarse().FGWays())

	// Background throughput comparison (instructions per simulated second).
	baseBG := baseColo.BGInstructions() / time.Duration(baseColo.Machine().Now()).Seconds()
	dirBG := colo.BGInstructions() / time.Duration(colo.Machine().Now()).Seconds()
	fmt.Printf("background throughput: %.0f%% of unmanaged\n", 100*dirBG/baseBG)
	fmt.Printf("std reduction: %.0f%%\n", 100*(1-dStd/std))
}

// meanStd returns the mean and population standard deviation, matching the
// evaluation harness's estimators.
func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

func successRate(xs []float64, deadline time.Duration) float64 {
	ok := 0
	for _, x := range xs {
		if x <= deadline.Seconds() {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}

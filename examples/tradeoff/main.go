// Tradeoff sweep: the paper's Fig. 15 experiment as a library example.
//
// Dirigent exposes a precise dial between foreground latency targets and
// background throughput: as the target stretches from the standalone
// execution time toward (and past) the unmanaged mean, the runtime converts
// the growing slack into batch throughput while still meeting the target.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"dirigent"
)

func main() {
	r := dirigent.NewRunner()
	r.Executions = 40

	mix := dirigent.Mix{
		Name: "raytrace bwaves",
		FG:   []string{"raytrace"},
		BG:   []string{"bwaves", "bwaves", "bwaves", "bwaves", "bwaves"},
	}
	factors := []float64{1.00, 1.04, 1.08, 1.12, 1.16}
	pts, standalone, err := r.TradeoffSweep(mix, factors)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mix %s, standalone FG time %.3fs\n\n", mix.Name, standalone)
	fmt.Printf("%8s %14s %14s %10s\n", "target", "FG mean (norm)", "BG throughput", "success")
	for _, p := range pts {
		fmt.Printf("%7.2fx %14.3f %14.3f %9.0f%%\n",
			p.TargetFactor, p.FGMeanNorm, p.BGThroughput, p.SuccessRate*100)
	}
	fmt.Println("\nReading the table: a 1.00x target leaves no room for collocation —")
	fmt.Println("background tasks must be suppressed. As the target loosens, Dirigent")
	fmt.Println("lets the foreground slow toward (but not past) the target and hands")
	fmt.Println("the freed resources to the background tasks (the paper's Fig. 15).")
}

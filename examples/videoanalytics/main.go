// Video analytics offload: the paper's motivating scenario (§1, §2.1).
//
// A cloud node receives a stream of computationally-intensive recognition
// tasks offloaded from user devices — each frame batch must complete within
// an SLA, but finishing faster than the SLA has no value. The operator
// backfills the node with batch analytics jobs to recover the wasted
// capacity. This example shows the tradeoff directly: the recognition
// stream (modelled by the bodytrack benchmark) keeps its SLA under Dirigent
// while the analytics batch (PCA) retains most of its unmanaged throughput.
//
// Run with:
//
//	go run ./examples/videoanalytics
package main

import (
	"fmt"
	"log"
	"time"

	"dirigent"
)

const (
	frames   = 60
	slaSlack = 1.10 // SLA = 110% of the standalone frame time
)

func main() {
	recognition, err := dirigent.BenchmarkByName("bodytrack")
	if err != nil {
		log.Fatal(err)
	}
	analytics, err := dirigent.BenchmarkByName("pca")
	if err != nil {
		log.Fatal(err)
	}

	// Measure the standalone frame time to derive the SLA.
	alone := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	aloneColo, err := dirigent.NewColocation(alone, []*dirigent.Benchmark{recognition}, nil,
		dirigent.ColocationOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := aloneColo.RunExecutions(10, dirigent.Time(time.Minute)); err != nil {
		log.Fatal(err)
	}
	standalone := mean(aloneColo.FG()[0].Durations()[2:])
	sla := time.Duration(standalone * slaSlack * float64(time.Second))
	fmt.Printf("standalone frame time %.3fs -> SLA %.3fs (%.0f%% slack)\n",
		standalone, sla.Seconds(), (slaSlack-1)*100)

	bgSpecs := make([]dirigent.BGSpec, 5)
	for i := range bgSpecs {
		bgSpecs[i] = dirigent.BGSpec{Bench: analytics}
	}

	// Unmanaged collocation: how many frames blow the SLA?
	report("unmanaged", run(recognition, bgSpecs, sla, false), sla)

	// Dirigent-managed collocation.
	report("dirigent ", run(recognition, bgSpecs, sla, true), sla)
}

type outcome struct {
	frameTimes []float64
	bgRate     float64
}

func run(fg *dirigent.Benchmark, bg []dirigent.BGSpec, sla time.Duration, managed bool) outcome {
	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	opts := dirigent.ColocationOptions{Seed: 7}
	if managed {
		fgClass := m.LLC().DefineClass()
		bgClass := m.LLC().DefineClass()
		if err := m.LLC().SetPartition(map[dirigent.ClassID]int{0: 0, fgClass: 2, bgClass: 18}); err != nil {
			log.Fatal(err)
		}
		opts.FGClass, opts.BGClass = fgClass, bgClass
	}
	colo, err := dirigent.NewColocation(m, []*dirigent.Benchmark{fg}, bg, opts)
	if err != nil {
		log.Fatal(err)
	}
	warm := 5
	if managed {
		profile, err := dirigent.ProfileBenchmark(fg, dirigent.ProfilerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rt, err := dirigent.NewRuntime(colo, []*dirigent.Profile{profile}, dirigent.RuntimeConfig{
			Targets:            []time.Duration{sla},
			EnablePartitioning: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		warm = 35 // cover coarse-controller convergence
		if err := rt.RunExecutions(frames+warm, dirigent.Time(20*time.Minute)); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := colo.RunExecutions(frames+warm, dirigent.Time(20*time.Minute)); err != nil {
			log.Fatal(err)
		}
	}
	return outcome{
		frameTimes: colo.FG()[0].Durations()[warm:],
		bgRate:     colo.BGInstructions() / time.Duration(colo.Machine().Now()).Seconds(),
	}
}

func report(name string, o outcome, sla time.Duration) {
	late := 0
	worst := 0.0
	for _, t := range o.frameTimes {
		if t > sla.Seconds() {
			late++
		}
		if t > worst {
			worst = t
		}
	}
	fmt.Printf("%s: %3d/%d frames within SLA, worst %.3fs, analytics throughput %.3g instr/s\n",
		name, len(o.frameTimes)-late, len(o.frameTimes), worst, o.bgRate)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Multi-tenant node: two concurrent latency-critical services share a node
// with rotating batch jobs (§5.4's multiple-FG scenario, Fig. 9c).
//
// Two FG streams (fluidanimate and raytrace) run alongside four rotate-BG
// workers that randomly switch between lbm and namd each time a foreground
// task completes — the paper's model of collocated-job context switches.
// The example compares the unmanaged baseline, a static-throttling policy,
// and full Dirigent.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"dirigent"
)

const executions = 50

func main() {
	fgs := []*dirigent.Benchmark{
		mustBench("fluidanimate"),
		mustBench("raytrace"),
	}
	pair := dirigent.BGSpec{Pair: [2]*dirigent.Benchmark{mustBench("lbm"), mustBench("namd")}}
	bgs := []dirigent.BGSpec{pair, pair, pair, pair}

	// Baseline pass defines the per-service deadlines (µ + 0.3σ).
	base := runBaseline(fgs, bgs)
	deadlines := make([]time.Duration, len(fgs))
	for i, durs := range base.durations {
		m, s := meanStd(durs)
		deadlines[i] = time.Duration((m + 0.3*s) * float64(time.Second))
		fmt.Printf("%-14s baseline mean %.3fs std %.4fs -> deadline %.3fs (success %.0f%%)\n",
			fgs[i].Name, m, s, deadlines[i].Seconds(), 100*success(durs, deadlines[i]))
	}

	// Static policy: BG cores pinned to the slowest frequency.
	static := runStatic(fgs, bgs)
	for i, durs := range static.durations {
		fmt.Printf("%-14s static-throttle success %.0f%%\n", fgs[i].Name, 100*success(durs, deadlines[i]))
	}
	fmt.Printf("static batch throughput: %.0f%% of baseline\n", 100*static.bgRate/base.bgRate)

	// Full Dirigent with per-service targets.
	dir := runDirigent(fgs, bgs, deadlines)
	for i, durs := range dir.durations {
		fmt.Printf("%-14s dirigent success %.0f%%\n", fgs[i].Name, 100*success(durs, deadlines[i]))
	}
	fmt.Printf("dirigent batch throughput: %.0f%% of baseline\n", 100*dir.bgRate/base.bgRate)
}

type result struct {
	durations [][]float64
	bgRate    float64
}

func runBaseline(fgs []*dirigent.Benchmark, bgs []dirigent.BGSpec) result {
	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	colo, err := dirigent.NewColocation(m, fgs, bgs, dirigent.ColocationOptions{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	if err := colo.RunExecutions(executions+5, dirigent.Time(20*time.Minute)); err != nil {
		log.Fatal(err)
	}
	return collect(colo, 5)
}

func runStatic(fgs []*dirigent.Benchmark, bgs []dirigent.BGSpec) result {
	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	colo, err := dirigent.NewColocation(m, fgs, bgs, dirigent.ColocationOptions{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range colo.BG() {
		if err := m.SetFreqLevel(w.Core, 0); err != nil { // 1.2 GHz
			log.Fatal(err)
		}
	}
	if err := colo.RunExecutions(executions+5, dirigent.Time(20*time.Minute)); err != nil {
		log.Fatal(err)
	}
	return collect(colo, 5)
}

func runDirigent(fgs []*dirigent.Benchmark, bgs []dirigent.BGSpec, targets []time.Duration) result {
	m := dirigent.NewMachine(dirigent.DefaultMachineConfig())
	fgClass := m.LLC().DefineClass()
	bgClass := m.LLC().DefineClass()
	if err := m.LLC().SetPartition(map[dirigent.ClassID]int{0: 0, fgClass: 2, bgClass: 18}); err != nil {
		log.Fatal(err)
	}
	colo, err := dirigent.NewColocation(m, fgs, bgs,
		dirigent.ColocationOptions{Seed: 17, FGClass: fgClass, BGClass: bgClass})
	if err != nil {
		log.Fatal(err)
	}
	profiles := make([]*dirigent.Profile, len(fgs))
	for i, b := range fgs {
		p, err := dirigent.ProfileBenchmark(b, dirigent.ProfilerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		profiles[i] = p
	}
	rt, err := dirigent.NewRuntime(colo, profiles, dirigent.RuntimeConfig{
		Targets:            targets,
		EnablePartitioning: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.RunExecutions(executions+35, dirigent.Time(30*time.Minute)); err != nil {
		log.Fatal(err)
	}
	return collect(colo, 35)
}

func collect(colo *dirigent.Colocation, warm int) result {
	var r result
	for _, f := range colo.FG() {
		r.durations = append(r.durations, f.Durations()[warm:])
	}
	r.bgRate = colo.BGInstructions() / time.Duration(colo.Machine().Now()).Seconds()
	return r
}

func mustBench(name string) *dirigent.Benchmark {
	b, err := dirigent.BenchmarkByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

func success(xs []float64, deadline time.Duration) float64 {
	ok := 0
	for _, x := range xs {
		if x <= deadline.Seconds() {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}

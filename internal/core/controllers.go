package core

import (
	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
)

// The fine and coarse controllers were extracted into internal/policy when
// the runtime grew its pluggable policy engine — they are the Dirigent
// policy's two halves. These aliases keep the original core-level names
// working for the facade, the experiment harness, and existing callers;
// new code should import internal/policy directly.

// FineController implements the fine time scale policy (§4.3).
type FineController = policy.FineController

// FineConfig configures the fine time scale controller.
type FineConfig = policy.FineConfig

// FineWindow is the fine controller's decision window (heuristic-3 input).
type FineWindow = policy.FineWindow

// FGStatus is the fine controller's per-stream input at a decision point.
type FGStatus = policy.FGStatus

// CoarseController implements the coarse time scale QoS control (§4.3).
type CoarseController = policy.CoarseController

// CoarseConfig configures the coarse time scale controller.
type CoarseConfig = policy.CoarseConfig

// Re-exported §4.3 controller defaults.
const (
	DefaultAheadMargin      = policy.DefaultAheadMargin
	DefaultBehindMargin     = policy.DefaultBehindMargin
	DefaultPauseMargin      = policy.DefaultPauseMargin
	DefaultDecisionSegments = policy.DefaultDecisionSegments
	DefaultSpeedupHoldoff   = policy.DefaultSpeedupHoldoff
	DefaultCorrThreshold    = policy.DefaultCorrThreshold
	DefaultHistory          = policy.DefaultHistory
	DefaultAdjustEvery      = policy.DefaultAdjustEvery
	DefaultSuppressedFrac   = policy.DefaultSuppressedFrac
)

// DefaultGrades returns the five equi-spaced DVFS grades (§5.1).
func DefaultGrades() []int { return policy.DefaultGrades() }

// NewFineController validates inputs and builds the fine controller.
func NewFineController(m *machine.Machine, fgTasks, fgCores, bgTasks, bgCores []int, cfg FineConfig) (*FineController, error) {
	return policy.NewFineController(m, fgTasks, fgCores, bgTasks, bgCores, cfg)
}

// NewCoarseController builds the coarse controller and applies the initial
// partition.
func NewCoarseController(llc *cache.LLC, fgClass, bgClass cache.ClassID, cfg CoarseConfig) (*CoarseController, error) {
	return policy.NewCoarseController(llc, fgClass, bgClass, cfg)
}

package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dirigent/internal/workload"
)

func testProfile(t *testing.T, bench string) *Profile {
	t.Helper()
	p, err := ProfileBenchmark(workload.MustByName(bench), ProfilerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileBenchmarkValidation(t *testing.T) {
	if _, err := ProfileBenchmark(nil, ProfilerOptions{}); err == nil {
		t.Error("nil benchmark should error")
	}
	if _, err := ProfileBenchmark(workload.MustByName("bwaves"), ProfilerOptions{}); err == nil {
		t.Error("BG benchmark should error")
	}
	if _, err := ProfileBenchmark(workload.MustByName("ferret"), ProfilerOptions{SamplePeriod: time.Nanosecond}); err == nil {
		t.Error("sample period below quantum should error")
	}
}

func TestProfileBenchmarkShape(t *testing.T) {
	p := testProfile(t, "ferret")
	if p.Benchmark != "ferret" {
		t.Errorf("Benchmark = %s", p.Benchmark)
	}
	if p.SamplePeriod != DefaultSamplePeriod {
		t.Errorf("SamplePeriod = %v", p.SamplePeriod)
	}
	// Paper: ΔT=5ms provides "100 or more segments in all the FG
	// applications we test". ferret standalone ≈ 1.2 s → ~240 segments.
	if len(p.Segments) < 100 {
		t.Errorf("segments = %d, want >= 100", len(p.Segments))
	}
	// Total progress ≈ instruction budget.
	want := workload.MustByName("ferret").TotalInstructions()
	got := p.TotalProgress()
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("TotalProgress = %g, want ~%g", got, want)
	}
	// Total duration ≈ standalone execution time (0.85–1.55 s band).
	d := p.TotalDuration().Seconds()
	if d < 0.85 || d > 1.55 {
		t.Errorf("TotalDuration = %.3fs", d)
	}
	// All but the final segment should last exactly ΔT (the simulator's
	// timers are exact; the paper's ΔT_i differ only through timer error).
	for i, s := range p.Segments[:len(p.Segments)-1] {
		if s.Duration != DefaultSamplePeriod {
			t.Errorf("segment %d duration = %v", i, s.Duration)
			break
		}
	}
	// Progress must differ between segments (the paper's Fig. 3a point:
	// instruction mix varies), i.e. not all segments identical.
	first := p.Segments[0].Progress
	varies := false
	for _, s := range p.Segments {
		if s.Progress != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("segment progress should vary across phases")
	}
}

func TestProfileValidate(t *testing.T) {
	good := &Profile{
		Benchmark:    "x",
		SamplePeriod: time.Millisecond,
		Segments:     []Segment{{Progress: 10, Duration: time.Millisecond}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Profile{
		{SamplePeriod: time.Millisecond, Segments: good.Segments},
		{Benchmark: "x", Segments: good.Segments},
		{Benchmark: "x", SamplePeriod: time.Millisecond},
		{Benchmark: "x", SamplePeriod: time.Millisecond, Segments: []Segment{{Progress: 0, Duration: time.Millisecond}}},
		{Benchmark: "x", SamplePeriod: time.Millisecond, Segments: []Segment{{Progress: 1, Duration: 0}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := testProfile(t, "fluidanimate")
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Benchmark != p.Benchmark || q.SamplePeriod != p.SamplePeriod || len(q.Segments) != len(p.Segments) {
		t.Errorf("round trip mismatch: %v vs %v", q, p)
	}
	for i := range p.Segments {
		if p.Segments[i] != q.Segments[i] {
			t.Fatalf("segment %d mismatch", i)
		}
	}
	if _, err := ReadProfile(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should error")
	}
	if _, err := ReadProfile(strings.NewReader(`{"benchmark":"", "sample_period":1}`)); err == nil {
		t.Error("invalid profile should fail validation on read")
	}
}

func TestProfileDeterminism(t *testing.T) {
	a := testProfile(t, "raytrace")
	b := testProfile(t, "raytrace")
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("profiles differ at segment %d", i)
		}
	}
}

func TestStaleProfile(t *testing.T) {
	src := syntheticProfile(10, 100)
	for i := range src.Segments {
		// Distinct durations so a rotation is observable.
		src.Segments[i].Duration = time.Duration(i+1) * time.Millisecond
	}

	// Identities: scale 0/1 and rephase 0 copy the profile exactly.
	for _, id := range []*Profile{StaleProfile(src, 0, 0), StaleProfile(src, 1, 0)} {
		if id.Benchmark != src.Benchmark || id.SamplePeriod != src.SamplePeriod {
			t.Fatal("metadata not preserved")
		}
		for i := range src.Segments {
			if id.Segments[i] != src.Segments[i] {
				t.Fatalf("identity distorted segment %d", i)
			}
		}
	}

	scaled := StaleProfile(src, 0.5, 0)
	for i := range scaled.Segments {
		if want := src.Segments[i].Duration / 2; scaled.Segments[i].Duration != want {
			t.Errorf("segment %d duration = %v, want %v", i, scaled.Segments[i].Duration, want)
		}
		if scaled.Segments[i].Progress != src.Segments[i].Progress {
			t.Errorf("segment %d progress changed under scaling", i)
		}
	}

	rotated := StaleProfile(src, 0, 0.3) // shift = 3 of 10
	for i := range rotated.Segments {
		if want := src.Segments[(i+3)%10]; rotated.Segments[i] != want {
			t.Errorf("segment %d = %+v, want %+v", i, rotated.Segments[i], want)
		}
	}
	if rotated.TotalProgress() != src.TotalProgress() || rotated.TotalDuration() != src.TotalDuration() {
		t.Error("rotation must preserve totals")
	}

	// Distortion never mutates the source.
	if src.Segments[0].Duration != time.Millisecond {
		t.Error("StaleProfile mutated its input")
	}
	if err := StaleProfile(src, 0.001, 0.7).Validate(); err != nil {
		t.Errorf("extreme but positive distortion must stay valid: %v", err)
	}
}

package core

import (
	"math"
	"testing"
	"time"

	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/workload"
)

// accuracyResult summarizes a midpoint-prediction probe.
type accuracyResult struct {
	meanErr float64
	n       int
}

// probePredictionAccuracy profiles fg offline, then runs fg against 5
// copies of bg in the baseline configuration (no resource management),
// observing progress every ΔT and recording the midpoint prediction of each
// execution; it returns the mean |predicted−actual|/actual, Eq. 3.
func probePredictionAccuracy(t *testing.T, fg, bg string, executions int) (accuracyResult, error) {
	t.Helper()
	profile, err := ProfileBenchmark(workload.MustByName(fg), ProfilerOptions{})
	if err != nil {
		return accuracyResult{}, err
	}
	m := machine.MustNew(machine.DefaultConfig())
	specs := make([]sched.BGSpec, 5)
	for i := range specs {
		specs[i] = sched.BGSpec{Bench: workload.MustByName(bg)}
	}
	colo, err := sched.New(m, []*workload.Benchmark{workload.MustByName(fg)}, specs, sched.Options{Seed: 11})
	if err != nil {
		return accuracyResult{}, err
	}
	pred := MustPredictor(profile, DefaultEMAWeight)
	pred.BeginExecution(0)
	instrAtStart := 0.0
	fgTask := colo.FG()[0].Task

	type execRecord struct {
		midPrediction time.Duration
		actual        time.Duration
		havePred      bool
	}
	var recs []execRecord
	var cur execRecord

	mid := pred.Segments() / 2
	tick := sim.MustTicker(DefaultSamplePeriod)
	colo.OnComplete(func(stream int, e sched.Execution) {
		if err := pred.FinishExecution(e.End); err != nil {
			t.Fatalf("finish: %v", err)
		}
		cur.actual = e.Duration
		recs = append(recs, cur)
		cur = execRecord{}
		pred.BeginExecution(e.End)
		instrAtStart = m.Counters().Task(fgTask).Instructions
	})

	limit := sim.Time(time.Duration(executions) * 30 * time.Second)
	for len(recs) < executions && m.Now() < limit {
		colo.Step()
		if !tick.Fire(m.Now()) {
			continue
		}
		progress := m.Counters().Task(fgTask).Instructions - instrAtStart
		if err := pred.Observe(m.Now(), progress); err != nil {
			t.Fatalf("observe: %v", err)
		}
		if !cur.havePred && pred.SegmentIndex() >= mid {
			d, err := pred.PredictDuration(m.Now())
			if err != nil {
				t.Fatalf("predict: %v", err)
			}
			cur.midPrediction = d
			cur.havePred = true
		}
	}

	// Eq. 3 over executions that got a midpoint prediction, skipping the
	// first few training executions.
	skip := 3
	sum, n := 0.0, 0
	for i, r := range recs {
		if i < skip || !r.havePred || r.actual <= 0 {
			continue
		}
		sum += math.Abs(float64(r.midPrediction-r.actual)) / float64(r.actual)
		n++
	}
	if n == 0 {
		t.Fatal("no predictions recorded")
	}
	return accuracyResult{meanErr: sum / float64(n), n: n}, nil
}

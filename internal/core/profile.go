// Package core implements Dirigent itself — the paper's contribution: an
// offline execution profiler (§4.1), an online execution-time predictor
// (§4.2, Eq. 1 and Eq. 2), a fine time scale controller driving per-core
// DVFS and task pausing, a coarse time scale controller driving LLC way
// partitioning (§4.3), and the runtime that assembles them.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/workload"
)

// DefaultSamplePeriod is the paper's ΔT: 5 ms, chosen to balance overhead
// and prediction granularity (§4.2).
const DefaultSamplePeriod = 5 * time.Millisecond

// Segment is one profiled sampling interval: the progress (retired
// instructions) the FG task made in one ΔT while running alone.
type Segment struct {
	// Progress is instructions retired during the segment.
	Progress float64 `json:"progress"`
	// Duration is the measured segment length. Nominally ΔT; the final
	// segment of an execution is usually shorter. The paper notes ΔT_i "can
	// be slightly different than ΔT in the real implementation" and
	// accounts for it — so do we.
	Duration time.Duration `json:"duration"`
}

// Profile is the offline profiling record for one FG benchmark: a series of
// (time, progress) pairs at ΔT granularity (§4.1, Fig. 3a).
type Profile struct {
	// Benchmark names the profiled FG benchmark.
	Benchmark string `json:"benchmark"`
	// SamplePeriod is ΔT.
	SamplePeriod time.Duration `json:"sample_period"`
	// Segments holds per-segment progress, in execution order.
	Segments []Segment `json:"segments"`
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Benchmark == "" {
		return errors.New("core: profile has no benchmark name")
	}
	if p.SamplePeriod <= 0 {
		return fmt.Errorf("core: profile sample period %v must be positive", p.SamplePeriod)
	}
	if len(p.Segments) == 0 {
		return errors.New("core: profile has no segments")
	}
	for i, s := range p.Segments {
		if s.Progress <= 0 {
			return fmt.Errorf("core: segment %d progress %g must be positive", i, s.Progress)
		}
		if s.Duration <= 0 {
			return fmt.Errorf("core: segment %d duration %v must be positive", i, s.Duration)
		}
	}
	return nil
}

// TotalProgress returns the summed progress over all segments (≈ the
// benchmark's instruction budget).
func (p *Profile) TotalProgress() float64 {
	sum := 0.0
	for _, s := range p.Segments {
		sum += s.Progress
	}
	return sum
}

// TotalDuration returns the standalone execution time recorded in the
// profile.
func (p *Profile) TotalDuration() time.Duration {
	var sum time.Duration
	for _, s := range p.Segments {
		sum += s.Duration
	}
	return sum
}

// WriteTo serializes the profile as JSON.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// ReadProfile deserializes a JSON profile and validates it.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// StaleProfile returns a copy of p degraded as a stale profiling record
// (the fault model's profile-staleness class; fault.Plan.ProfileScale /
// ProfileRephase name these knobs).
//
// scale multiplies every segment duration (progress untouched, so the
// milestones still match the task's real instruction budget): scale < 1
// models an optimistic record taken on a faster configuration or before the
// working set grew. rephase rotates the segment sequence by that fraction of
// the execution, modelling phase misalignment — the program's behavior
// changed shape since profiling, which the predictor's per-execution EMAs
// cannot average away. scale ≤ 0 or 1 and rephase ≤ 0 are identities.
func StaleProfile(p *Profile, scale, rephase float64) *Profile {
	out := &Profile{
		Benchmark:    p.Benchmark,
		SamplePeriod: p.SamplePeriod,
		Segments:     append([]Segment(nil), p.Segments...),
	}
	if scale > 0 && scale != 1 {
		for i := range out.Segments {
			out.Segments[i].Duration = time.Duration(float64(out.Segments[i].Duration) * scale)
			if out.Segments[i].Duration <= 0 {
				out.Segments[i].Duration = 1
			}
		}
	}
	if n := len(out.Segments); rephase > 0 && n > 1 {
		shift := int(rephase*float64(n)) % n
		if shift > 0 {
			rotated := make([]Segment, 0, n)
			rotated = append(rotated, out.Segments[shift:]...)
			rotated = append(rotated, out.Segments[:shift]...)
			out.Segments = rotated
		}
	}
	return out
}

// ProfilerOptions configures offline profiling.
type ProfilerOptions struct {
	// SamplePeriod is ΔT (default 5 ms).
	SamplePeriod time.Duration
	// MachineConfig is the platform to profile on; zero value means the
	// default machine.
	MachineConfig machine.Config
	// WarmupExecutions are discarded executions before the recorded one, so
	// the profile reflects steady-state cache contents (the paper profiles
	// "a stable profiling record"). Default 1.
	WarmupExecutions int
}

func (o ProfilerOptions) withDefaults() ProfilerOptions {
	if o.SamplePeriod == 0 {
		o.SamplePeriod = DefaultSamplePeriod
	}
	if o.MachineConfig.Cores == 0 {
		o.MachineConfig = machine.DefaultConfig()
	}
	if o.WarmupExecutions == 0 {
		o.WarmupExecutions = 1
	}
	return o
}

// ProfileBenchmark runs the FG benchmark alone on a fresh simulated machine
// and records its progress every ΔT (§4.1). This is the offline step of
// Dirigent; its output feeds the online predictor.
func ProfileBenchmark(b *workload.Benchmark, opts ProfilerOptions) (*Profile, error) {
	if b == nil {
		return nil, errors.New("core: nil benchmark")
	}
	if b.Kind != workload.Foreground {
		return nil, fmt.Errorf("core: %s is not a foreground benchmark", b.Name)
	}
	opts = opts.withDefaults()
	if opts.SamplePeriod < opts.MachineConfig.Quantum {
		return nil, fmt.Errorf("core: sample period %v finer than machine quantum %v",
			opts.SamplePeriod, opts.MachineConfig.Quantum)
	}

	m, err := machine.New(opts.MachineConfig)
	if err != nil {
		return nil, err
	}
	prog, err := workload.NewProgram(b)
	if err != nil {
		return nil, err
	}
	task, err := m.Launch(b.Name, prog, 0, cache.ClassID(0))
	if err != nil {
		return nil, err
	}

	// Warmup executions: run to completion, discard.
	completions := 0
	limit := sim.Time(10 * time.Minute)
	for completions < opts.WarmupExecutions {
		if m.Now() > limit {
			return nil, fmt.Errorf("core: profiling warmup did not complete within %v", time.Duration(limit))
		}
		for _, c := range m.Step() {
			if c.Task == task {
				completions++
			}
		}
	}

	// Recorded execution: sample the instruction counter every ΔT until the
	// next completion.
	profile := &Profile{Benchmark: b.Name, SamplePeriod: opts.SamplePeriod}
	ticker := sim.MustTicker(opts.SamplePeriod)
	ticker.Reset(m.Now())
	segStartTime := m.Now()
	segStartInstr := m.Counters().Task(task).Instructions
	done := false
	for !done {
		if m.Now() > limit {
			return nil, fmt.Errorf("core: profiled execution did not complete within %v", time.Duration(limit))
		}
		for _, c := range m.Step() {
			if c.Task == task {
				done = true
			}
		}
		now := m.Now()
		if done {
			// Final (usually partial) segment.
			instr := m.Counters().Task(task).Instructions
			if prog := instr - segStartInstr; prog > 0 {
				profile.Segments = append(profile.Segments, Segment{
					Progress: prog,
					Duration: time.Duration(now - segStartTime),
				})
			}
			break
		}
		if ticker.Fire(now) {
			instr := m.Counters().Task(task).Instructions
			profile.Segments = append(profile.Segments, Segment{
				Progress: instr - segStartInstr,
				Duration: time.Duration(now - segStartTime),
			})
			segStartTime = now
			segStartInstr = instr
		}
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return profile, nil
}

package core

import (
	"testing"
	"time"

	"dirigent/internal/sim"
)

func TestProfileOnlineValidation(t *testing.T) {
	if _, err := ProfileOnline(nil, 0, OnlineProfileOptions{}); err == nil {
		t.Error("nil colocation should error")
	}
	colo := buildColo(t, []string{"fluidanimate"}, "rs", false, 31)
	if _, err := ProfileOnline(colo, -1, OnlineProfileOptions{}); err == nil {
		t.Error("negative stream should error")
	}
	if _, err := ProfileOnline(colo, 1, OnlineProfileOptions{}); err == nil {
		t.Error("out-of-range stream should error")
	}
	if _, err := ProfileOnline(colo, 0, OnlineProfileOptions{SamplePeriod: time.Nanosecond}); err == nil {
		t.Error("sample period below quantum should error")
	}
}

func TestProfileOnlineMatchesOffline(t *testing.T) {
	// Online profiling (BG paused) must produce essentially the offline
	// profile: same benchmark, same segment granularity, near-identical
	// total duration — the isolation is equivalent.
	offline := profileFor(t, "fluidanimate")
	colo := buildColo(t, []string{"fluidanimate"}, "rs", false, 31)
	// Let contention run a while first, as a real system would.
	colo.Run(sim.Time(2 * time.Second))
	online, err := ProfileOnline(colo, 0, OnlineProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if online.Benchmark != "fluidanimate" {
		t.Errorf("Benchmark = %s", online.Benchmark)
	}
	offDur := offline.TotalDuration().Seconds()
	onDur := online.TotalDuration().Seconds()
	if onDur < offDur*0.93 || onDur > offDur*1.07 {
		t.Errorf("online duration %.3fs vs offline %.3fs — isolation not equivalent", onDur, offDur)
	}
	offProg := offline.TotalProgress()
	onProg := online.TotalProgress()
	if onProg < offProg*0.99 || onProg > offProg*1.01 {
		t.Errorf("online progress %g vs offline %g", onProg, offProg)
	}
	// All BG tasks resumed afterwards.
	for _, w := range colo.BG() {
		if p, _ := colo.Machine().Paused(w.Task); p {
			t.Error("BG task left paused after online profiling")
		}
	}
}

func TestProfileOnlineDrivesPredictor(t *testing.T) {
	// An online profile must be usable by a runtime end-to-end.
	colo := buildColo(t, []string{"fluidanimate"}, "namd", false, 33)
	colo.Run(sim.Time(time.Second))
	profile, err := ProfileOnline(colo, 0, OnlineProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(colo, []*Profile{profile}, RuntimeConfig{
		Targets: []time.Duration{700 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := colo.FG()[0].Completed()
	if err := rt.RunExecutions(start+10, sim.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if rt.Invocations() == 0 {
		t.Error("runtime never sampled")
	}
}

func TestProfileOnlineRestoresPreexistingPauses(t *testing.T) {
	colo := buildColo(t, []string{"fluidanimate"}, "rs", false, 35)
	// Pause one BG task before profiling; it must remain paused after.
	pre := colo.BG()[2].Task
	if err := colo.Machine().Pause(pre); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileOnline(colo, 0, OnlineProfileOptions{}); err != nil {
		t.Fatal(err)
	}
	if p, _ := colo.Machine().Paused(pre); !p {
		t.Error("pre-existing pause should be preserved")
	}
	for _, w := range colo.BG() {
		if w.Task == pre {
			continue
		}
		if p, _ := colo.Machine().Paused(w.Task); p {
			t.Error("profiler-paused task should be resumed")
		}
	}
}

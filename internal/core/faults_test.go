package core

import (
	"errors"
	"testing"
	"time"

	"dirigent/internal/fault"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// buildFaultyColo is buildColo with a fault injector installed in the
// machine (and returned for count assertions).
func buildFaultyColo(t *testing.T, fg []string, bg string, plan fault.Plan, seed uint64) (*sched.Colocation, *fault.Injector) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	inj := fault.NewInjector(plan, seed, nil)
	cfg.Faults = inj
	m := machine.MustNew(cfg)
	var fgb []*workload.Benchmark
	for _, n := range fg {
		fgb = append(fgb, workload.MustByName(n))
	}
	specs := make([]sched.BGSpec, 6-len(fg))
	for i := range specs {
		specs[i] = sched.BGSpec{Bench: workload.MustByName(bg)}
	}
	colo, err := sched.New(m, fgb, specs, sched.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return colo, inj
}

// statusWithSlack builds an FGStatus with the given normalized slack
// (positive = ahead) against a 1 s target.
func statusWithSlack(slack float64) FGStatus {
	target := time.Second
	deadline := sim.Time(2 * time.Second)
	predicted := deadline - sim.Time(float64(target)*slack)
	return FGStatus{Predicted: predicted, Deadline: deadline, Target: target}
}

func TestFineControllerSurfacesDVFSFaults(t *testing.T) {
	colo, inj := buildFaultyColo(t, []string{"ferret"}, "bwaves", fault.Plan{DVFSFail: 1}, 41)
	m := colo.Machine()
	agg := telemetry.NewAggregator()
	fgTask := colo.FG()[0].Task
	var bgTasks, bgCores []int
	for _, w := range colo.BG() {
		bgTasks = append(bgTasks, w.Task)
		c, _ := m.TaskCore(w.Task)
		bgCores = append(bgCores, c)
	}
	fc, err := NewFineController(m, []int{fgTask}, []int{0}, bgTasks, bgCores, FineConfig{Recorder: agg})
	if err != nil {
		t.Fatal(err)
	}
	// FG starts at the top grade, so a behind decision throttles all five
	// BG cores; every request is dropped by the plan. The controller must
	// survive, count the failures, and emit them — not panic or mask them.
	if err := fc.Decide(0, []FGStatus{statusWithSlack(-0.06)}); err != nil {
		t.Fatal(err)
	}
	w := fc.Window()
	if w.ActuationFailures != 5 {
		t.Errorf("ActuationFailures = %d, want 5 (one per BG core)", w.ActuationFailures)
	}
	if inj.Count(fault.ClassDVFSFail) != 5 {
		t.Errorf("injected DVFS faults = %d, want 5", inj.Count(fault.ClassDVFSFail))
	}
	for _, c := range bgCores {
		if l, _ := m.FreqLevel(c); l != m.MaxFreqLevel() {
			t.Errorf("core %d moved to level %d despite dropped actuation", c, l)
		}
	}
	fc.ResetWindow()
	if fc.Window().ActuationFailures != 0 {
		t.Error("ResetWindow must clear actuation failures")
	}
}

func TestFineControllerSurfacesPauseFaults(t *testing.T) {
	colo, inj := buildFaultyColo(t, []string{"ferret"}, "bwaves", fault.Plan{PauseFail: 1}, 43)
	m := colo.Machine()
	fgTask := colo.FG()[0].Task
	var bgTasks, bgCores []int
	for _, w := range colo.BG() {
		bgTasks = append(bgTasks, w.Task)
		c, _ := m.TaskCore(w.Task)
		bgCores = append(bgCores, c)
	}
	fc, err := NewFineController(m, []int{fgTask}, []int{0}, bgTasks, bgCores, FineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive badly-behind decisions: BG throttles one grade per decision
	// until all cores sit at the bottom grade, then the controller reaches
	// for the pause — which the plan drops.
	colo.Step() // accumulate some LLC misses for the intrusiveness ranking
	for i := 0; i < len(DefaultGrades())+2; i++ {
		if err := fc.Decide(m.Now(), []FGStatus{statusWithSlack(-0.2)}); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Count(fault.ClassPauseFail) == 0 {
		t.Fatal("pause fault never drawn — pause path not reached")
	}
	if fc.Window().ActuationFailures == 0 {
		t.Error("dropped pause not surfaced in the window")
	}
	for _, task := range bgTasks {
		if p, _ := m.Paused(task); p {
			t.Error("task paused despite dropped actuation")
		}
	}
}

func TestProfileOnlineTimeoutTypedError(t *testing.T) {
	colo := buildColo(t, []string{"fluidanimate"}, "rs", false, 37)
	p, err := ProfileOnline(colo, 0, OnlineProfileOptions{Limit: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("a 20 ms limit cannot fit a warmup execution; want timeout")
	}
	if !errors.Is(err, ErrProfileTimeout) {
		t.Errorf("err = %v, want ErrProfileTimeout", err)
	}
	if p != nil {
		t.Error("timeout must not return a partial profile")
	}
	// The deferred restore runs on the error path too.
	for _, w := range colo.BG() {
		if paused, _ := colo.Machine().Paused(w.Task); paused {
			t.Error("BG task left paused after timed-out profiling")
		}
	}
}

func TestProfileOnlineRetriesDroppedResumes(t *testing.T) {
	colo, inj := buildFaultyColo(t, []string{"fluidanimate"}, "rs", fault.Plan{ResumeFail: 0.3}, 47)
	if _, err := ProfileOnline(colo, 0, OnlineProfileOptions{}); err != nil {
		t.Fatal(err)
	}
	if inj.Count(fault.ClassResumeFail) == 0 {
		t.Fatal("no resume fault drawn — the retry path was not exercised")
	}
	for _, w := range colo.BG() {
		if paused, _ := colo.Machine().Paused(w.Task); paused {
			t.Error("BG task left paused despite resume retries")
		}
	}
}

func TestRuntimeReprofilesOnChronicDrift(t *testing.T) {
	colo := buildColo(t, []string{"fluidanimate"}, "namd", false, 53)
	fresh := profileFor(t, "fluidanimate")
	stale := StaleProfile(fresh, 0.7, 0.5)
	agg := telemetry.NewAggregator()
	rt, err := NewRuntime(colo, []*Profile{stale}, RuntimeConfig{
		Targets:             []time.Duration{700 * time.Millisecond},
		Recorder:            agg,
		ReprofileAlphaDrift: 0.12,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := colo.FG()[0].Completed()
	if err := rt.RunExecutions(start+12, sim.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if rt.Reprofiles() < 1 {
		t.Fatal("chronic α drift from a stale profile never triggered a re-profile")
	}
	if rt.Reprofiles() > 2 {
		t.Errorf("Reprofiles = %d; an accurate rebuilt profile should not keep drifting", rt.Reprofiles())
	}
	if agg.Reprofiles() != rt.Reprofiles() {
		t.Errorf("telemetry reprofiles %d != runtime %d", agg.Reprofiles(), rt.Reprofiles())
	}
	// After recovery the predictor should track reality closely again.
	if err := rt.RunExecutions(start+16, sim.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dirigent/internal/fault"
	"dirigent/internal/policy"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// DefaultOverhead is the measured cost of one Dirigent invocation
// (predictor + throttler) on the paper's machine: under 100 µs (§4.2). The
// simulated runtime charges this to the BG core it is pinned to.
const DefaultOverhead = 100 * time.Microsecond

// RuntimeConfig configures a Dirigent runtime instance.
type RuntimeConfig struct {
	// SamplePeriod is ΔT (default 5 ms). Must be at least the machine
	// quantum.
	SamplePeriod time.Duration
	// DecisionSegments is the number of samples between control decisions
	// (default 5, §4.3).
	DecisionSegments int
	// EMAWeight is the predictor's moving-average weight (default 0.2).
	EMAWeight float64
	// Overhead is charged to the runtime's core per invocation (default
	// 100 µs; set negative to disable).
	Overhead time.Duration
	// Targets are the relative latency targets per FG stream; must match
	// the colocation's FG count.
	Targets []time.Duration
	// Policy optionally supplies the QoS policy the runtime drives. Nil
	// builds the default Dirigent policy from Fine, EnablePartitioning,
	// and Coarse below; the policy's capabilities are validated against
	// the colocation (LLC-partitioning policies need distinct FG/BG
	// classes).
	Policy policy.Policy
	// Fine configures the fine time scale controller (default Dirigent
	// policy only; ignored when Policy is set).
	Fine FineConfig
	// EnablePartitioning turns on the coarse time scale controller
	// (default Dirigent policy only). The colocation must then use
	// distinct FG and BG partition classes.
	EnablePartitioning bool
	// Coarse configures the coarse controller when enabled (default
	// Dirigent policy only).
	Coarse CoarseConfig
	// Recorder is the telemetry bus for the whole assembled system: the
	// runtime injects it into both controllers and the per-stream
	// predictors, and attaches it to the machine when the machine has no
	// recorder of its own. Nil disables telemetry. Recording is strictly
	// observational — results are byte-identical with or without it.
	Recorder telemetry.Recorder
	// Faults perturbs the runtime's own inputs: counter samples (dropout /
	// noise) and invocation ticks (dropped / late). Strictly opt-in; nil
	// leaves the control loop byte-identical. Share the same injector with
	// the machine so one seeded plan covers every hook.
	Faults *fault.Injector
	// ReprofileAlphaDrift enables chronic-profile-mismatch detection: when a
	// stream's per-execution rate-factor average drifts from 1 by more than
	// this for ReprofileAfter consecutive executions, the runtime pauses BG
	// and re-profiles the stream in place (ProfileOnline, §7). 0 disables.
	ReprofileAlphaDrift float64
	// ReprofileAfter is the consecutive-drifting-execution count that
	// triggers re-profiling (default 4 when detection is enabled).
	ReprofileAfter int
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.SamplePeriod == 0 {
		c.SamplePeriod = DefaultSamplePeriod
	}
	if c.DecisionSegments == 0 {
		c.DecisionSegments = DefaultDecisionSegments
	}
	if c.EMAWeight == 0 {
		c.EMAWeight = DefaultEMAWeight
	}
	if c.Overhead == 0 {
		c.Overhead = DefaultOverhead
	}
	if c.ReprofileAlphaDrift > 0 && c.ReprofileAfter == 0 {
		c.ReprofileAfter = 4
	}
	return c
}

// Runtime is the assembled Dirigent system running over a collocation: it
// samples FG progress every ΔT, predicts completion times, and drives the
// fine (DVFS/pause) and coarse (partition) controllers.
type Runtime struct {
	colo *sched.Colocation
	cfg  RuntimeConfig

	preds   []*Predictor
	targets []time.Duration

	pol policy.Policy

	ticker        *sim.Ticker
	sampleCounter int

	// instrAtStart[i] is stream i's cumulative instruction counter at the
	// start of its in-flight execution.
	instrAtStart []float64

	// lastProgress[i] is the progress value last delivered to stream i's
	// predictor — the reference point for per-sample deltas under counter
	// fault injection (allocated only when an injector is configured).
	lastProgress []float64
	// pendingTick is the due time of a tick postponed by an injected
	// scheduling delay (0 = none).
	pendingTick sim.Time

	// Chronic-profile-mismatch state (allocated only when detection is on).
	driftStreak      []int
	needReprofile    []bool
	lastDrift        []float64
	anyNeedReprofile bool
	// reprofiling suppresses onComplete while ProfileOnline drives the
	// collocation (its completions belong to the profiler).
	reprofiling bool
	reprofiles  int

	invocations int

	// compat mirrors the machine's CompatStepping flag: Run/RunExecutions
	// degrade to quantum-by-quantum stepping when the legacy engine is
	// selected.
	compat bool
}

// NewRuntime builds a Dirigent runtime over colo using one offline profile
// per FG stream (parallel slices).
func NewRuntime(colo *sched.Colocation, profiles []*Profile, cfg RuntimeConfig) (*Runtime, error) {
	if colo == nil {
		return nil, errors.New("core: nil colocation")
	}
	cfg = cfg.withDefaults()
	fgs := colo.FG()
	if len(profiles) != len(fgs) {
		return nil, fmt.Errorf("core: %d profiles for %d FG streams", len(profiles), len(fgs))
	}
	if len(cfg.Targets) != len(fgs) {
		return nil, fmt.Errorf("core: %d targets for %d FG streams", len(cfg.Targets), len(fgs))
	}
	for i, tgt := range cfg.Targets {
		if tgt <= 0 {
			return nil, fmt.Errorf("core: target %d (%v) must be positive", i, tgt)
		}
	}
	m := colo.Machine()
	if cfg.SamplePeriod < m.Config().Quantum {
		return nil, fmt.Errorf("core: sample period %v finer than machine quantum %v",
			cfg.SamplePeriod, m.Config().Quantum)
	}
	// One bus for every layer: machine (unless the caller attached its
	// own), the policy's controllers, and the predictors all emit through
	// cfg.Recorder. The policy's share of the bus is labelled with the
	// policy name so its decision/action events stay distinguishable when
	// several policies feed one stream.
	if cfg.Recorder != nil && telemetry.IsNop(m.Recorder()) {
		m.SetRecorder(cfg.Recorder)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.NewDirigent(policy.Options{
			Partitioning: cfg.EnablePartitioning,
			Fine:         cfg.Fine,
			Coarse:       cfg.Coarse,
		})
	}
	caps := pol.Capabilities()
	if caps.LLCWays && colo.FGClass() == colo.BGClass() {
		return nil, fmt.Errorf("core: partitioning enabled but FG and BG share class %d", colo.FGClass())
	}

	r := &Runtime{
		colo:         colo,
		cfg:          cfg,
		targets:      append([]time.Duration(nil), cfg.Targets...),
		ticker:       sim.MustTicker(cfg.SamplePeriod),
		instrAtStart: make([]float64, len(fgs)),
		compat:       m.Config().CompatStepping,
	}
	if cfg.Faults != nil {
		r.lastProgress = make([]float64, len(fgs))
	}
	if cfg.ReprofileAlphaDrift > 0 {
		r.driftStreak = make([]int, len(fgs))
		r.needReprofile = make([]bool, len(fgs))
		r.lastDrift = make([]float64, len(fgs))
	}
	var fgTasks, fgCores, fgStreams []int
	var bgTasks, bgCores []int
	streamProfiles := make([]policy.StreamProfile, len(fgs))
	for i, f := range fgs {
		if profiles[i] == nil {
			return nil, fmt.Errorf("core: nil profile for stream %d", i)
		}
		if profiles[i].Benchmark != f.Bench.Name {
			return nil, fmt.Errorf("core: profile %q does not match stream benchmark %q",
				profiles[i].Benchmark, f.Bench.Name)
		}
		pred, err := NewPredictor(profiles[i], cfg.EMAWeight)
		if err != nil {
			return nil, err
		}
		pred.SetRecorder(cfg.Recorder, i)
		pred.BeginExecution(m.Now())
		r.preds = append(r.preds, pred)
		r.instrAtStart[i] = m.Counters().Task(f.Task).Instructions
		streamProfiles[i] = policy.StreamProfile{
			Benchmark:          profiles[i].Benchmark,
			StandaloneDuration: profiles[i].TotalDuration(),
		}
		fgTasks = append(fgTasks, f.Task)
		fgCores = append(fgCores, f.Core)
		fgStreams = append(fgStreams, i)
	}
	for _, w := range colo.BG() {
		bgTasks = append(bgTasks, w.Task)
		bgCores = append(bgCores, w.Core)
	}

	binding := policy.Binding{
		Machine:   m,
		FGTasks:   fgTasks,
		FGCores:   fgCores,
		FGStreams: fgStreams,
		BGTasks:   bgTasks,
		BGCores:   bgCores,
		Targets:   r.targets,
		Profiles:  streamProfiles,
		Recorder:  telemetry.WithPolicy(telemetry.OrNop(cfg.Recorder), pol.Name()),
	}
	if caps.LLCWays {
		binding.LLC = m.LLC()
		binding.FGClass = colo.FGClass()
		binding.BGClass = colo.BGClass()
	}
	if err := pol.Init(binding); err != nil {
		return nil, err
	}
	r.pol = pol

	r.ticker.Reset(m.Now())
	colo.OnComplete(r.onComplete)
	return r, nil
}

// MustRuntime is NewRuntime that panics on error.
func MustRuntime(colo *sched.Colocation, profiles []*Profile, cfg RuntimeConfig) *Runtime {
	r, err := NewRuntime(colo, profiles, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Colocation returns the managed collocation.
func (r *Runtime) Colocation() *sched.Colocation { return r.colo }

// Predictors returns the per-stream predictors (for evaluation probes).
func (r *Runtime) Predictors() []*Predictor { return r.preds }

// Policy returns the QoS policy driving the runtime.
func (r *Runtime) Policy() policy.Policy { return r.pol }

// PolicyName returns the driving policy's registered name.
func (r *Runtime) PolicyName() string { return r.pol.Name() }

// Capabilities returns the driving policy's declared actuator set.
func (r *Runtime) Capabilities() policy.Capabilities { return r.pol.Capabilities() }

// Fine returns the Dirigent policy's fine controller (telemetry access),
// or nil when a different policy drives the runtime.
func (r *Runtime) Fine() *FineController {
	if d, ok := r.pol.(*policy.Dirigent); ok {
		return d.Fine()
	}
	return nil
}

// Coarse returns the Dirigent policy's coarse controller, or nil when
// partitioning is off or a different policy drives the runtime.
func (r *Runtime) Coarse() *CoarseController {
	if d, ok := r.pol.(*policy.Dirigent); ok {
		return d.Coarse()
	}
	return nil
}

// Targets returns the per-stream relative latency targets.
func (r *Runtime) Targets() []time.Duration {
	return append([]time.Duration(nil), r.targets...)
}

// SetTarget changes a stream's latency target (used by the tradeoff sweep,
// §5.5, and by served tenants retargeting deadlines mid-run).
func (r *Runtime) SetTarget(stream int, target time.Duration) error {
	if stream < 0 || stream >= len(r.targets) {
		return fmt.Errorf("core: stream %d out of range", stream)
	}
	if target <= 0 {
		return fmt.Errorf("core: target %v must be positive", target)
	}
	r.targets[stream] = target
	return nil
}

// AdmitStream admits a new FG stream mid-run: the benchmark is launched on
// a free core (sched.Colocation.AdmitFG), a predictor is built over the
// given offline profile, and the fine controller takes the new core under
// management. It returns the new stream's index. Admission changes
// subsequent machine state — results are reproducible only against the same
// admission schedule.
func (r *Runtime) AdmitStream(b *workload.Benchmark, profile *Profile, target time.Duration) (int, error) {
	if profile == nil {
		return 0, errors.New("core: nil profile")
	}
	if b == nil || profile.Benchmark != b.Name {
		return 0, fmt.Errorf("core: profile %q does not match admitted benchmark", profile.Benchmark)
	}
	if target <= 0 {
		return 0, fmt.Errorf("core: target %v must be positive", target)
	}
	pred, err := NewPredictor(profile, r.cfg.EMAWeight)
	if err != nil {
		return 0, err
	}
	stream, err := r.colo.AdmitFG(b)
	if err != nil {
		return 0, err
	}
	f := r.colo.FG()[stream]
	m := r.colo.Machine()
	if err := r.pol.AddFG(f.Task, f.Core, stream); err != nil {
		return 0, err
	}
	pred.SetRecorder(r.cfg.Recorder, stream)
	pred.BeginExecution(m.Now())
	r.preds = append(r.preds, pred)
	r.targets = append(r.targets, target)
	r.instrAtStart = append(r.instrAtStart, m.Counters().Task(f.Task).Instructions)
	if r.lastProgress != nil {
		r.lastProgress = append(r.lastProgress, 0)
	}
	if r.driftStreak != nil {
		r.driftStreak = append(r.driftStreak, 0)
		r.needReprofile = append(r.needReprofile, false)
		r.lastDrift = append(r.lastDrift, 0)
	}
	return stream, nil
}

// RemoveStream evicts an FG stream mid-run: the fine controller releases
// its core and the colocation kills its task. The stream index stays valid
// (marked removed) so prior telemetry and results keep their labels; the
// last active stream cannot be removed.
func (r *Runtime) RemoveStream(stream int) error {
	if stream < 0 || stream >= len(r.preds) {
		return fmt.Errorf("core: stream %d out of range", stream)
	}
	f := r.colo.FG()[stream]
	if f.Removed() {
		return fmt.Errorf("core: stream %d already removed", stream)
	}
	task := f.Task
	if err := r.colo.RemoveFG(stream); err != nil {
		return err
	}
	if err := r.pol.RemoveFG(task); err != nil {
		return err
	}
	if r.needReprofile != nil {
		r.needReprofile[stream] = false
	}
	return nil
}

// AdmitBG admits a new background worker mid-run and places it under fine
// control; it returns the worker's task ID (the handle RemoveBG takes).
func (r *Runtime) AdmitBG(spec sched.BGSpec) (int, error) {
	w, err := r.colo.AdmitBG(spec)
	if err != nil {
		return 0, err
	}
	if err := r.pol.AddBG(w.Task, w.Core); err != nil {
		return 0, err
	}
	return w.Task, nil
}

// RemoveBG evicts a background worker mid-run.
func (r *Runtime) RemoveBG(task int) error {
	if err := r.pol.RemoveBG(task); err != nil {
		return err
	}
	return r.colo.RemoveBG(task)
}

// Invocations returns how many runtime invocations (samples) have occurred.
func (r *Runtime) Invocations() int { return r.invocations }

// Reprofiles returns how many successful in-place re-profiling episodes the
// runtime has performed.
func (r *Runtime) Reprofiles() int { return r.reprofiles }

// onComplete handles an FG execution boundary: closes out the predictor,
// records the execution for the coarse controller, and opens the next
// execution.
func (r *Runtime) onComplete(stream int, e sched.Execution) {
	if r.colo.FG()[stream].Removed() {
		return
	}
	if r.reprofiling {
		// ProfileOnline is driving the collocation; its executions are
		// profiling material, not managed completions.
		return
	}
	pred := r.preds[stream]
	finished := false
	if pred.Started() {
		// FinishExecution resolves remaining milestones; errors indicate a
		// logic bug (time/progress monotonicity is guaranteed here).
		if err := pred.FinishExecution(e.End); err != nil {
			panic(fmt.Sprintf("core: finish execution: %v", err))
		}
		finished = true
	}
	r.pol.OnExecution(stream, policy.ExecutionSample{
		End:       e.End,
		Duration:  e.Duration,
		LLCMisses: e.LLCMisses,
		Missed:    e.Duration > r.targets[stream],
	})
	// Chronic profile mismatch: a healthy profile keeps the per-execution
	// rate-factor average near 1 (contention shows up as transient spikes
	// the controller counters, not a sustained offset). A drift persisting
	// across executions means the profile itself is wrong — schedule an
	// in-place re-profile.
	if thr := r.cfg.ReprofileAlphaDrift; thr > 0 && finished {
		drift := math.Abs(pred.AlphaMA() - 1)
		if drift > thr {
			r.driftStreak[stream]++
			if r.driftStreak[stream] >= r.cfg.ReprofileAfter && !r.needReprofile[stream] {
				r.driftStreak[stream] = 0
				r.needReprofile[stream] = true
				r.anyNeedReprofile = true
				r.lastDrift[stream] = drift
			}
		} else {
			r.driftStreak[stream] = 0
		}
	}
	pred.BeginExecution(e.End)
	f := r.colo.FG()[stream]
	r.instrAtStart[stream] = r.colo.Machine().Counters().Task(f.Task).Instructions
	if r.lastProgress != nil {
		r.lastProgress[stream] = 0
	}
}

// Step advances the collocation one quantum and runs the Dirigent sampling/
// control loop when ΔT elapses.
func (r *Runtime) Step() error {
	if r.anyNeedReprofile {
		r.runReprofiles()
	}
	r.colo.Step()
	m := r.colo.Machine()
	now := m.Now()
	fired := r.ticker.Fire(now)
	if fired {
		// A fired tick may be perturbed: dropped entirely (the runtime
		// process was descheduled past the whole ΔT) or postponed.
		r.pendingTick = 0
		if inj := r.cfg.Faults; inj != nil {
			drop, delay := inj.TickOutcome(now)
			if drop {
				return nil
			}
			if delay > 0 {
				r.pendingTick = now + sim.Time(delay)
				return nil
			}
		}
	} else if r.pendingTick != 0 && now >= r.pendingTick {
		// A postponed invocation lands now.
		r.pendingTick = 0
		fired = true
	}
	if !fired {
		return nil
	}
	r.invocations++

	// The runtime thread is pinned to a core shared with a BG task; each
	// invocation steals its overhead from that core (§4.2, §5.1).
	if r.cfg.Overhead > 0 {
		if err := m.ChargeOverhead(r.colo.RuntimeCore(), r.cfg.Overhead); err != nil {
			return err
		}
	}

	// Sample every FG stream's progress and update its predictor,
	// informing it of the core's current DVFS state so self-throttling is
	// not mistaken for interference.
	for i, f := range r.colo.FG() {
		if f.Removed() {
			continue
		}
		// The nominal clock is per-core: on heterogeneous classes a little
		// core's self-throttling is judged against its own top frequency,
		// not the big cores'.
		if f_cur, err := m.FreqGHz(f.Core); err == nil && f_cur > 0 {
			if nominal, err := m.CoreMaxFreqGHz(f.Core); err == nil {
				r.preds[i].SetFrequencyFactor(nominal / f_cur)
			}
		}
		progress := m.Counters().Task(f.Task).Instructions - r.instrAtStart[i]
		if inj := r.cfg.Faults; inj != nil {
			// Faults apply to the per-sample delta, the quantity a real
			// counter read delivers. A dropout skips the observation entirely
			// (the predictor bridges the gap at the next sample); noise
			// scales the delta, and the perturbed value becomes the next
			// sample's reference so errors do not compound systematically.
			delta := progress - r.lastProgress[i]
			pert, ok := inj.CounterRead(now, i, delta)
			if !ok {
				continue
			}
			progress = r.lastProgress[i] + pert
		}
		if r.lastProgress != nil {
			r.lastProgress[i] = progress
		}
		if err := r.preds[i].Observe(now, progress); err != nil {
			return fmt.Errorf("core: observe stream %d: %w", i, err)
		}
	}

	// Control decision every DecisionSegments samples.
	r.sampleCounter++
	if r.sampleCounter < r.cfg.DecisionSegments {
		return nil
	}
	r.sampleCounter = 0

	// The status slice is compacted to active streams, in stream order —
	// the same order the fine controller's managed task list keeps across
	// admissions and removals.
	fgs := r.colo.FG()
	status := make([]FGStatus, 0, len(r.preds))
	for i, pred := range r.preds {
		if fgs[i].Removed() {
			continue
		}
		predicted, err := pred.Predict(now)
		if err != nil {
			return fmt.Errorf("core: predict stream %d: %w", i, err)
		}
		status = append(status, FGStatus{
			Predicted: predicted,
			Deadline:  pred.ExecStart() + sim.Time(r.targets[i]),
			Target:    r.targets[i],
		})
	}
	return r.pol.Tick(now, status)
}

// Run advances until the given simulated time. On the skip-ahead engine the
// quanta between runtime invocations are batched: the machine only surfaces
// at "interesting" instants — the next sampler tick (or a postponed tick's
// landing), an FG completion (StepN stops there so onComplete fires at its
// exact quantum), or until itself — and the full per-quantum control-loop
// check runs only for those boundary quanta, where it runs verbatim.
func (r *Runtime) Run(until sim.Time) error {
	m := r.colo.Machine()
	for m.Now() < until {
		// Ordering matches the per-quantum loop: reprofile servicing happens
		// at the top of Step, so any state that schedules one (a completion
		// inside a batch) is serviced before further quanta advance.
		if r.compat || r.anyNeedReprofile {
			if err := r.Step(); err != nil {
				return err
			}
			continue
		}
		k := r.batchQuanta(until)
		if k <= 0 {
			// The next quantum is a boundary (tick due): full control path.
			if err := r.Step(); err != nil {
				return err
			}
			continue
		}
		r.colo.StepN(k)
	}
	return nil
}

// batchQuanta returns how many quanta can be skipped ahead from Now()
// without crossing an interesting instant: the sampler tick's due time, a
// postponed tick's landing, or the limit (ceil-aligned, like the
// per-quantum loop). The returned batch is "boring" by construction —
// ticker.Fire would have returned false after every quantum in it — so
// skipping those checks is behavior-identical. 0 means the very next
// quantum is a boundary and must run through Step.
func (r *Runtime) batchQuanta(limit sim.Time) int {
	m := r.colo.Machine()
	now := m.Now()
	q := sim.Time(m.Config().Quantum)
	due := r.ticker.NextDue()
	if r.pendingTick != 0 && r.pendingTick < due {
		due = r.pendingTick
	}
	k := 0
	if due > now {
		// Strictly before due: the quantum that reaches due fires the tick
		// and takes the full path.
		k = int((due - now - 1) / q)
	}
	if rem := int((limit - now + q - 1) / q); rem < k {
		k = rem
	}
	return k
}

// runReprofiles services pending re-profiling requests. Each one pauses BG
// and records a fresh profile in place (ProfileOnline); on success the
// stream's predictor is rebuilt over the new profile. Profiling failure is
// graceful: the stale profile is kept, the drift streak rebuilds, and a
// later request retries.
func (r *Runtime) runReprofiles() {
	r.anyNeedReprofile = false
	for i := range r.needReprofile {
		if r.needReprofile[i] {
			r.needReprofile[i] = false
			r.reprofileStream(i)
		}
	}
}

func (r *Runtime) reprofileStream(stream int) {
	m := r.colo.Machine()
	start := m.Now()
	r.reprofiling = true
	prof, err := ProfileOnline(r.colo, stream, OnlineProfileOptions{SamplePeriod: r.cfg.SamplePeriod})
	r.reprofiling = false
	now := m.Now()

	rec := telemetry.OrNop(r.cfg.Recorder)
	if rec.Enabled(telemetry.KindReprofile) {
		rec.Record(telemetry.Event{
			Kind: telemetry.KindReprofile, At: now,
			Stream: stream, Alpha: r.lastDrift[stream],
			Duration:   time.Duration(now - start),
			Suppressed: err != nil,
		})
	}

	if err == nil {
		if pred, perr := NewPredictor(prof, r.cfg.EMAWeight); perr == nil {
			pred.SetRecorder(r.cfg.Recorder, stream)
			r.preds[stream] = pred
			r.reprofiles++
		}
	}

	// Profiling advanced the clock with onComplete suppressed, so every
	// stream's in-flight bookkeeping is stale. Re-anchor all predictors at
	// the current instant: abandoning partially observed executions is a
	// bounded transient, while feeding multi-execution progress spans into
	// Observe would poison the penalty history.
	for j, f := range r.colo.FG() {
		if f.Removed() {
			continue
		}
		r.preds[j].BeginExecution(now)
		r.instrAtStart[j] = m.Counters().Task(f.Task).Instructions
		if r.lastProgress != nil {
			r.lastProgress[j] = 0
		}
	}
	r.ticker.Reset(now)
	r.sampleCounter = 0
	r.pendingTick = 0
}

// RunExecutions advances until every FG stream has completed at least n
// executions, with a simulated-time limit.
func (r *Runtime) RunExecutions(n int, limit sim.Time) error {
	for {
		minDone := -1
		for _, f := range r.colo.FG() {
			if f.Removed() {
				continue
			}
			if minDone < 0 || f.Completed() < minDone {
				minDone = f.Completed()
			}
		}
		if minDone >= n {
			return nil
		}
		if r.colo.Machine().Now() >= limit {
			return fmt.Errorf("core: only %d/%d executions within %v", minDone, n, time.Duration(limit))
		}
		// Batch the boring quanta between interesting instants; see Run. The
		// completion counts only change when a batch stops, so the checks
		// above observe exactly the states the per-quantum loop did.
		if r.compat || r.anyNeedReprofile {
			if err := r.Step(); err != nil {
				return err
			}
			continue
		}
		if k := r.batchQuanta(limit); k > 0 {
			r.colo.StepN(k)
		} else if err := r.Step(); err != nil {
			return err
		}
	}
}

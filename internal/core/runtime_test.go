package core

import (
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/stats"
	"dirigent/internal/workload"
)

// buildColo assembles a machine + colocation for runtime tests. When
// partitioned is true, FG and BG get distinct LLC classes.
func buildColo(t *testing.T, fg []string, bg string, partitioned bool, seed uint64) *sched.Colocation {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	m := machine.MustNew(cfg)
	opts := sched.Options{Seed: seed}
	if partitioned {
		fgClass := m.LLC().DefineClass()
		bgClass := m.LLC().DefineClass()
		if err := m.LLC().SetPartition(map[cache.ClassID]int{0: 0, fgClass: 10, bgClass: 10}); err != nil {
			t.Fatal(err)
		}
		opts.FGClass = fgClass
		opts.BGClass = bgClass
	}
	var fgb []*workload.Benchmark
	for _, n := range fg {
		fgb = append(fgb, workload.MustByName(n))
	}
	specs := make([]sched.BGSpec, 6-len(fg))
	for i := range specs {
		specs[i] = sched.BGSpec{Bench: workload.MustByName(bg)}
	}
	colo, err := sched.New(m, fgb, specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return colo
}

func profileFor(t *testing.T, name string) *Profile {
	t.Helper()
	p, err := ProfileBenchmark(workload.MustByName(name), ProfilerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRuntimeValidation(t *testing.T) {
	colo := buildColo(t, []string{"fluidanimate"}, "namd", false, 1)
	prof := profileFor(t, "fluidanimate")
	target := []time.Duration{600 * time.Millisecond}

	if _, err := NewRuntime(nil, []*Profile{prof}, RuntimeConfig{Targets: target}); err == nil {
		t.Error("nil colocation should error")
	}
	if _, err := NewRuntime(colo, nil, RuntimeConfig{Targets: target}); err == nil {
		t.Error("profile count mismatch should error")
	}
	if _, err := NewRuntime(colo, []*Profile{nil}, RuntimeConfig{Targets: target}); err == nil {
		t.Error("nil profile should error")
	}
	wrong := profileFor(t, "ferret")
	if _, err := NewRuntime(colo, []*Profile{wrong}, RuntimeConfig{Targets: target}); err == nil {
		t.Error("mismatched profile benchmark should error")
	}
	if _, err := NewRuntime(colo, []*Profile{prof}, RuntimeConfig{}); err == nil {
		t.Error("missing targets should error")
	}
	if _, err := NewRuntime(colo, []*Profile{prof}, RuntimeConfig{Targets: []time.Duration{-1}}); err == nil {
		t.Error("negative target should error")
	}
	if _, err := NewRuntime(colo, []*Profile{prof}, RuntimeConfig{Targets: target, SamplePeriod: time.Nanosecond}); err == nil {
		t.Error("sample period below quantum should error")
	}
	// Partitioning without distinct classes.
	if _, err := NewRuntime(colo, []*Profile{prof}, RuntimeConfig{Targets: target, EnablePartitioning: true}); err == nil {
		t.Error("partitioning with shared class should error")
	}
}

func TestRuntimeReducesVariance(t *testing.T) {
	// The headline claim (§5.4): Dirigent cuts execution-time variance
	// dramatically versus free-running contention, at modest BG cost.
	if testing.Short() {
		t.Skip("long end-to-end test")
	}
	const execs = 50
	fg, bgName := "bodytrack", "pca"

	// Baseline: free contention.
	base := buildColo(t, []string{fg}, bgName, false, 3)
	if err := base.RunExecutions(execs, sim.Time(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	baseDur := base.FG()[0].Durations()[5:]
	baseStats, _ := stats.Summarize(baseDur)
	baseBG := base.BGInstructions()
	target := time.Duration((baseStats.Mean + 0.3*baseStats.Std) * float64(time.Second))

	// Dirigent (full: fine + coarse).
	colo := buildColo(t, []string{fg}, bgName, true, 3)
	rt := MustRuntime(colo, []*Profile{profileFor(t, fg)}, RuntimeConfig{
		Targets:            []time.Duration{target},
		EnablePartitioning: true,
	})
	// Extra executions cover the coarse controller's partition convergence
	// (~32 executions, §5.3); statistics reflect converged behaviour.
	if err := rt.RunExecutions(execs+32, sim.Time(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	dirDur := colo.FG()[0].Durations()[37:]
	dirStats, _ := stats.Summarize(dirDur)

	// Variance reduction: paper reports 85% std reduction on average; we
	// require at least 50% on this single mix.
	if dirStats.Std > baseStats.Std*0.6 {
		t.Errorf("std: baseline %.4f, dirigent %.4f — want >=40%% reduction", baseStats.Std, dirStats.Std)
	}
	// Success rate ≥ 95% against the target.
	okCount := 0
	for _, d := range dirDur {
		if d <= target.Seconds() {
			okCount++
		}
	}
	if rate := float64(okCount) / float64(len(dirDur)); rate < 0.95 {
		t.Errorf("success rate = %.2f, want >= 0.95", rate)
	}
	// BG throughput: normalize by elapsed time (runs cover the same number
	// of FG executions, not the same wall time).
	baseRate := baseBG / float64(base.Machine().Now())
	dirRate := colo.BGInstructions() / float64(colo.Machine().Now())
	if ratio := dirRate / baseRate; ratio < 0.5 {
		t.Errorf("BG throughput ratio = %.2f, implausibly low", ratio)
	}
	if rt.Invocations() == 0 {
		t.Error("runtime never invoked")
	}
}

func TestRuntimeMeetsTightAndLooseTargets(t *testing.T) {
	// §5.5: Dirigent tracks the target across a range. A loose target lets
	// the FG run slower (mean stretches toward the target) while BG gains.
	if testing.Short() {
		t.Skip("long end-to-end test")
	}
	fg := "raytrace"
	prof := profileFor(t, fg)
	run := func(target time.Duration) (mean float64, bgRate float64) {
		colo := buildColo(t, []string{fg}, "bwaves", true, 5)
		rt := MustRuntime(colo, []*Profile{prof}, RuntimeConfig{
			Targets:            []time.Duration{target},
			EnablePartitioning: true,
		})
		if err := rt.RunExecutions(30, sim.Time(20*time.Minute)); err != nil {
			t.Fatal(err)
		}
		durs := colo.FG()[0].Durations()[5:]
		s, _ := stats.Summarize(durs)
		return s.Mean, colo.BGInstructions() / float64(colo.Machine().Now())
	}
	meanTight, bgTight := run(800 * time.Millisecond)
	meanLoose, bgLoose := run(1100 * time.Millisecond)
	if meanLoose <= meanTight {
		t.Errorf("loose target should stretch FG time: tight %.3f, loose %.3f", meanTight, meanLoose)
	}
	if bgLoose <= bgTight {
		t.Errorf("loose target should raise BG throughput: tight %.3g, loose %.3g", bgTight, bgLoose)
	}
}

func TestRuntimeSetTarget(t *testing.T) {
	colo := buildColo(t, []string{"fluidanimate"}, "namd", false, 1)
	rt := MustRuntime(colo, []*Profile{profileFor(t, "fluidanimate")}, RuntimeConfig{
		Targets: []time.Duration{600 * time.Millisecond},
	})
	if err := rt.SetTarget(0, 700*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.Targets()[0] != 700*time.Millisecond {
		t.Errorf("Targets = %v", rt.Targets())
	}
	if err := rt.SetTarget(1, time.Second); err == nil {
		t.Error("out-of-range stream should error")
	}
	if err := rt.SetTarget(0, 0); err == nil {
		t.Error("zero target should error")
	}
	if rt.Fine() == nil {
		t.Error("Fine accessor nil")
	}
	if rt.Coarse() != nil {
		t.Error("Coarse should be nil when partitioning disabled")
	}
	if rt.Colocation() != colo {
		t.Error("Colocation accessor wrong")
	}
	if len(rt.Predictors()) != 1 {
		t.Error("Predictors accessor wrong")
	}
}

func TestRuntimeChargesOverheadToBGCore(t *testing.T) {
	// With overhead enabled, the BG task sharing the runtime core retires
	// fewer instructions than without.
	run := func(overhead time.Duration) float64 {
		colo := buildColo(t, []string{"fluidanimate"}, "namd", false, 9)
		rt := MustRuntime(colo, []*Profile{profileFor(t, "fluidanimate")}, RuntimeConfig{
			Targets:  []time.Duration{time.Hour}, // never behind: no control actions
			Overhead: overhead,
		})
		if err := rt.Run(sim.Time(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		bgTask := colo.BG()[0].Task
		return colo.Machine().Counters().Task(bgTask).Instructions
	}
	with := run(DefaultOverhead)
	without := run(-1)
	if with >= without {
		t.Errorf("overhead should cost the runtime core's BG: with %.4g, without %.4g", with, without)
	}
	if with < without*0.95 {
		t.Errorf("100µs/5ms overhead should cost ~2%%: with %.4g, without %.4g", with, without)
	}
}

func TestRuntimeCoarseControllerEngages(t *testing.T) {
	if testing.Short() {
		t.Skip("long end-to-end test")
	}
	// streamcluster + pca is the paper's partition-hungry mix (§5.3): the
	// coarse controller must move the partition away from its start.
	colo := buildColo(t, []string{"streamcluster"}, "pca", true, 7)
	// A target between the 2-way and 5-way static means (Fig. 8) forces
	// the partition to grow from the minimal start.
	rt := MustRuntime(colo, []*Profile{profileFor(t, "streamcluster")}, RuntimeConfig{
		Targets:            []time.Duration{1680 * time.Millisecond},
		EnablePartitioning: true,
	})
	if err := rt.RunExecutions(40, sim.Time(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if rt.Coarse().Adjustments() == 0 {
		t.Error("coarse controller never adjusted the partition")
	}
	if rt.Coarse().FGWays() <= 2 {
		t.Errorf("FG ways = %d, expected growth from the minimal start", rt.Coarse().FGWays())
	}
}

func TestRuntimeMultiFG(t *testing.T) {
	if testing.Short() {
		t.Skip("long end-to-end test")
	}
	colo := buildColo(t, []string{"fluidanimate", "raytrace"}, "bwaves", true, 11)
	profs := []*Profile{profileFor(t, "fluidanimate"), profileFor(t, "raytrace")}
	rt := MustRuntime(colo, profs, RuntimeConfig{
		Targets:            []time.Duration{750 * time.Millisecond, 1000 * time.Millisecond},
		EnablePartitioning: true,
	})
	if err := rt.RunExecutions(25, sim.Time(20*time.Minute)); err != nil {
		t.Fatal(err)
	}
	for i, f := range colo.FG() {
		durs := f.Durations()[5:]
		ok := 0
		for _, d := range durs {
			if d <= rt.Targets()[i].Seconds() {
				ok++
			}
		}
		if rate := float64(ok) / float64(len(durs)); rate < 0.9 {
			t.Errorf("stream %d (%s) success rate = %.2f, want >= 0.9", i, f.Bench.Name, rate)
		}
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	run := func() (sim.Time, int) {
		colo := buildColo(t, []string{"fluidanimate"}, "rs", true, 21)
		rt := MustRuntime(colo, []*Profile{profileFor(t, "fluidanimate")}, RuntimeConfig{
			Targets:            []time.Duration{700 * time.Millisecond},
			EnablePartitioning: true,
		})
		if err := rt.RunExecutions(10, sim.Time(5*time.Minute)); err != nil {
			t.Fatal(err)
		}
		return colo.Machine().Now(), rt.Coarse().FGWays()
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Errorf("runtime not deterministic: (%v,%d) vs (%v,%d)", t1, w1, t2, w2)
	}
}

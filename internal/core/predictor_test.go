package core

import (
	"math"
	"testing"
	"time"

	"dirigent/internal/sim"
)

// syntheticProfile builds a profile of n segments, each with the given
// progress and a 5 ms duration.
func syntheticProfile(n int, progress float64) *Profile {
	p := &Profile{Benchmark: "synthetic", SamplePeriod: 5 * time.Millisecond}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, Segment{Progress: progress, Duration: 5 * time.Millisecond})
	}
	return p
}

func ms(x float64) sim.Time { return sim.Time(x * float64(time.Millisecond)) }

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, 0.2); err == nil {
		t.Error("nil profile should error")
	}
	if _, err := NewPredictor(&Profile{}, 0.2); err == nil {
		t.Error("invalid profile should error")
	}
	p := syntheticProfile(10, 100)
	if _, err := NewPredictor(p, -0.5); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewPredictor(p, 1.5); err == nil {
		t.Error("weight > 1 should error")
	}
	pred, err := NewPredictor(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Segments() != 10 {
		t.Errorf("Segments = %d", pred.Segments())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPredictor should panic on bad input")
		}
	}()
	MustPredictor(nil, 0.2)
}

func TestPredictorLifecycleErrors(t *testing.T) {
	pred := MustPredictor(syntheticProfile(4, 100), 0.2)
	if err := pred.Observe(0, 0); err == nil {
		t.Error("Observe before Begin should error")
	}
	if _, err := pred.Predict(0); err == nil {
		t.Error("Predict before Begin should error")
	}
	if err := pred.FinishExecution(0); err == nil {
		t.Error("Finish before Begin should error")
	}
	pred.BeginExecution(0)
	if !pred.Started() {
		t.Error("Started should be true")
	}
	if err := pred.Observe(ms(5), 100); err != nil {
		t.Fatal(err)
	}
	if err := pred.Observe(ms(4), 120); err == nil {
		t.Error("backwards time should error")
	}
	// Backwards progress (a glitched counter read) is tolerated as "no
	// progress this interval" and must not move the milestone state.
	if err := pred.Observe(ms(6), 50); err != nil {
		t.Errorf("backwards progress should be clamped, got %v", err)
	}
	if err := pred.Observe(ms(7), 120); err != nil {
		t.Errorf("recovery after clamped sample should succeed, got %v", err)
	}
}

func TestPredictorUncontendedMatchesProfile(t *testing.T) {
	// Feeding the profiled trajectory exactly must predict the profiled
	// completion time throughout.
	pred := MustPredictor(syntheticProfile(10, 100), 0.2)
	pred.BeginExecution(0)
	total := ms(50)
	for i := 1; i <= 5; i++ {
		if err := pred.Observe(ms(float64(5*i)), float64(100*i)); err != nil {
			t.Fatal(err)
		}
		got, err := pred.Predict(ms(float64(5 * i)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got-total)) > float64(100*time.Microsecond) {
			t.Errorf("at segment %d: Predict = %v, want %v", i, got, total)
		}
	}
}

func TestPredictorUniformSlowdown(t *testing.T) {
	// Task runs at half speed: every segment takes 10 ms instead of 5 ms.
	// After a few segments the α average approaches 2 and the prediction
	// approaches the true 100 ms completion.
	pred := MustPredictor(syntheticProfile(10, 100), 0.2)
	pred.BeginExecution(0)
	for i := 1; i <= 5; i++ {
		if err := pred.Observe(ms(float64(10*i)), float64(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pred.Predict(ms(50))
	if err != nil {
		t.Fatal(err)
	}
	// First execution: penalties unseeded; prediction = 50ms + 5 segments
	// scaled by the α EMA. The EMA starts at the carry-over seed 1.0 so it
	// lags below 2; the prediction must fall between the naive 75 ms and
	// the true 100 ms, much closer to 100.
	if got < ms(80) || got > ms(105) {
		t.Errorf("Predict = %v, want ≈100ms (between 80 and 105)", got)
	}
	if pred.AlphaMA() <= 1.4 || pred.AlphaMA() > 2.01 {
		t.Errorf("AlphaMA = %g, want approaching 2", pred.AlphaMA())
	}
}

func TestPredictorLearnsAcrossExecutions(t *testing.T) {
	// A persistent per-segment slowdown pattern: odd segments 2× slow.
	// After several executions the penalty EMAs encode the pattern and a
	// midpoint prediction is accurate even before the slow segments run.
	profile := syntheticProfile(10, 100)
	pred := MustPredictor(profile, 0.2)
	trueDur := func() float64 {
		d := 0.0
		for i := 0; i < 10; i++ {
			if i%2 == 1 {
				d += 10
			} else {
				d += 5
			}
		}
		return d // 75 ms
	}()

	var lastErr float64
	start := sim.Time(0)
	for exec := 0; exec < 8; exec++ {
		pred.BeginExecution(start)
		now := start
		progress := 0.0
		var midPrediction sim.Time
		for i := 0; i < 10; i++ {
			step := ms(5)
			if i%2 == 1 {
				step = ms(10)
			}
			now += step
			progress += 100
			if err := pred.Observe(now, progress); err != nil {
				t.Fatal(err)
			}
			if i == 4 {
				var err error
				midPrediction, err = pred.Predict(now)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := pred.FinishExecution(now); err != nil {
			t.Fatal(err)
		}
		actual := float64(now-start) / float64(time.Millisecond)
		if math.Abs(actual-trueDur) > 1e-6 {
			t.Fatalf("test harness bug: actual %g != %g", actual, trueDur)
		}
		lastErr = math.Abs(float64(midPrediction-start)/float64(time.Millisecond)-trueDur) / trueDur
		start = now
	}
	if lastErr > 0.02 {
		t.Errorf("midpoint prediction error after training = %.2f%%, want < 2%%", lastErr*100)
	}
	if !pred.PenaltySeeded(0) || !pred.PenaltySeeded(9) {
		t.Error("penalties should be seeded after full executions")
	}
	if pred.PenaltySeeded(-1) || pred.PenaltySeeded(99) {
		t.Error("out-of-range PenaltySeeded should be false")
	}
}

func TestPredictorMultipleMilestonesInOneSample(t *testing.T) {
	// A sparse observer (20 ms between samples over 5 ms segments) still
	// resolves all milestone crossings by interpolation.
	pred := MustPredictor(syntheticProfile(10, 100), 0.2)
	pred.BeginExecution(0)
	if err := pred.Observe(ms(20), 400); err != nil {
		t.Fatal(err)
	}
	if pred.SegmentIndex() != 4 {
		t.Errorf("SegmentIndex = %d, want 4", pred.SegmentIndex())
	}
	// Uniform rate → α = 1 per segment → prediction = profiled total.
	got, err := pred.Predict(ms(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-ms(50))) > float64(200*time.Microsecond) {
		t.Errorf("Predict = %v, want 50ms", got)
	}
}

func TestPredictorFinishResolvesTail(t *testing.T) {
	pred := MustPredictor(syntheticProfile(10, 100), 0.2)
	pred.BeginExecution(0)
	if err := pred.Observe(ms(25), 500); err != nil {
		t.Fatal(err)
	}
	if err := pred.FinishExecution(ms(55)); err != nil {
		t.Fatal(err)
	}
	if pred.Started() {
		t.Error("Started should be false after Finish")
	}
	for i := 0; i < 10; i++ {
		if !pred.PenaltySeeded(i) {
			t.Errorf("segment %d penalty not seeded after Finish", i)
		}
	}
	// Second execution's α MA is seeded from the first execution's final.
	pred.BeginExecution(ms(55))
	if pred.AlphaMA() == 1.0 {
		t.Error("α carry-over should differ from 1 after a slow execution")
	}
}

func TestPredictDurationAndExecStart(t *testing.T) {
	pred := MustPredictor(syntheticProfile(4, 100), 0.2)
	pred.BeginExecution(ms(100))
	if pred.ExecStart() != ms(100) {
		t.Errorf("ExecStart = %v", pred.ExecStart())
	}
	if err := pred.Observe(ms(105), 100); err != nil {
		t.Fatal(err)
	}
	d, err := pred.PredictDuration(ms(105))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(d-20*time.Millisecond)) > float64(200*time.Microsecond) {
		t.Errorf("PredictDuration = %v, want ~20ms", d)
	}
}

func TestPredictorPartialSegmentInterpolation(t *testing.T) {
	// Halfway through a segment at profiled speed, prediction should still
	// be the profiled total (smooth between milestones).
	pred := MustPredictor(syntheticProfile(10, 100), 0.2)
	pred.BeginExecution(0)
	if err := pred.Observe(ms(7.5), 150); err != nil {
		t.Fatal(err)
	}
	got, err := pred.Predict(ms(7.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-ms(50))) > float64(300*time.Microsecond) {
		t.Errorf("mid-segment Predict = %v, want 50ms", got)
	}
}

func TestPredictorAgainstRealMachineBaseline(t *testing.T) {
	// End-to-end accuracy check in the spirit of Fig. 6/7: profile ferret
	// offline, run it against 5 bwaves with no management, feed the
	// predictor every 5 ms, record the midpoint prediction for each
	// execution, compare against the actual completion.
	if testing.Short() {
		t.Skip("long accuracy test")
	}
	res, err := probePredictionAccuracy(t, "ferret", "bwaves", 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.meanErr > 0.06 {
		t.Errorf("mean midpoint prediction error = %.1f%%, want < 6%%", res.meanErr*100)
	}
}

package core

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/sched"
	"dirigent/internal/sim"
)

// ErrProfileTimeout marks an online-profiling run that hit its simulated
// time limit. Callers distinguish it from validation or machine errors with
// errors.Is; on timeout no partial profile is returned.
var ErrProfileTimeout = errors.New("online profiling time limit exceeded")

// OnlineProfileOptions configures in-place profiling.
type OnlineProfileOptions struct {
	// SamplePeriod is ΔT (default 5 ms).
	SamplePeriod time.Duration
	// WarmupExecutions run (still with BG paused) before the recorded one,
	// so the profile reflects the FG task's steady-state cache contents.
	// Default 1.
	WarmupExecutions int
	// Limit bounds the profiling in simulated time (default 10 minutes).
	Limit time.Duration
}

// ProfileOnline implements the paper's §7 extension: instead of profiling
// the FG benchmark offline on a dedicated machine, profile it in place by
// pausing every background task in the collocation, recording one (or more)
// isolated executions of the chosen FG stream, and resuming the background
// tasks afterwards. "Because of the short profiling duration it can be
// performed online, though it will require pausing all BG tasks while
// profiling."
//
// The collocation must not already be driven by a Dirigent runtime during
// profiling (the profiler needs the FG stream's completions for itself);
// build the runtime with the returned profile afterwards.
func ProfileOnline(colo *sched.Colocation, stream int, opts OnlineProfileOptions) (*Profile, error) {
	if colo == nil {
		return nil, errors.New("core: nil colocation")
	}
	fgs := colo.FG()
	if stream < 0 || stream >= len(fgs) {
		return nil, fmt.Errorf("core: stream %d out of range [0,%d)", stream, len(fgs))
	}
	if opts.SamplePeriod == 0 {
		opts.SamplePeriod = DefaultSamplePeriod
	}
	if opts.WarmupExecutions == 0 {
		opts.WarmupExecutions = 1
	}
	if opts.Limit == 0 {
		opts.Limit = 10 * time.Minute
	}
	m := colo.Machine()
	if opts.SamplePeriod < m.Config().Quantum {
		return nil, fmt.Errorf("core: sample period %v finer than machine quantum %v",
			opts.SamplePeriod, m.Config().Quantum)
	}

	// Pause every BG task (and remember which were already paused so their
	// state is restored exactly).
	var pausedByUs []int
	for _, w := range colo.BG() {
		p, err := m.Paused(w.Task)
		if err != nil {
			return nil, err
		}
		if p {
			continue
		}
		if err := m.Pause(w.Task); err != nil {
			return nil, err
		}
		pausedByUs = append(pausedByUs, w.Task)
	}
	defer func() {
		for _, t := range pausedByUs {
			// Under fault injection a resume request can be dropped; retry a
			// few times so profiling restores the collocation whenever the
			// fault is transient. A task still stuck paused afterwards is
			// resumed by the fine controller's next release decision.
			for attempt := 0; attempt < 4; attempt++ {
				if m.Resume(t) == nil {
					break
				}
			}
		}
	}()

	f := fgs[stream]
	task := f.Task
	deadline := m.Now() + sim.Time(opts.Limit)

	// Let the in-flight execution and the warmup executions drain. The
	// stream's completion counter tells us where we are.
	waitFor := f.Completed() + 1 + opts.WarmupExecutions
	for f.Completed() < waitFor {
		if m.Now() > deadline {
			return nil, fmt.Errorf("core: online profiling warmup did not complete within %v: %w", opts.Limit, ErrProfileTimeout)
		}
		colo.Step()
	}

	// Record the next execution.
	profile := &Profile{Benchmark: f.Bench.Name, SamplePeriod: opts.SamplePeriod}
	ticker := sim.MustTicker(opts.SamplePeriod)
	ticker.Reset(m.Now())
	segStartTime := m.Now()
	segStartInstr := m.Counters().Task(task).Instructions
	done := f.Completed() + 1
	for f.Completed() < done {
		if m.Now() > deadline {
			return nil, fmt.Errorf("core: online profiled execution did not complete within %v: %w", opts.Limit, ErrProfileTimeout)
		}
		colo.Step()
		now := m.Now()
		if f.Completed() >= done {
			instr := m.Counters().Task(task).Instructions
			if prog := instr - segStartInstr; prog > 0 {
				profile.Segments = append(profile.Segments, Segment{
					Progress: prog,
					Duration: time.Duration(now - segStartTime),
				})
			}
			break
		}
		if ticker.Fire(now) {
			instr := m.Counters().Task(task).Instructions
			profile.Segments = append(profile.Segments, Segment{
				Progress: instr - segStartInstr,
				Duration: time.Duration(now - segStartTime),
			})
			segStartTime = now
			segStartInstr = instr
		}
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return profile, nil
}

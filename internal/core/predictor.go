package core

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/sim"
	"dirigent/internal/stats"
	"dirigent/internal/telemetry"
)

// DefaultEMAWeight is the paper's exponential-moving-average weight (0.2,
// §4.2); sensitivity is low in 0.1–0.3.
const DefaultEMAWeight = 0.2

// maxAlphaObservation caps per-segment rate factors entering the penalty
// history. Fault-free runs see α well below it (typically ≤ 3–4 under heavy
// contention), so the clamp only fires on degenerate observations.
const maxAlphaObservation = 50

// Predictor implements Dirigent's execution-time predictor (§4.2).
//
// The profile divides an execution into N segments, each with a profiled
// progress amount and duration ΔT_i. Online, the predictor observes
// (time, progress) samples and detects when the task crosses each profiled
// progress milestone (interpolating the crossing time within the sampling
// interval). The measured traversal time of segment i against ΔT_i gives
// the rate factor and penalty of Eq. 1:
//
//	α_i = measured_i / ΔT_i    P_i = (α_i − 1)·ΔT_i
//
// Penalties are smoothed across executions with an EMA (P̄_i = w·P_i +
// (1−w)·P̄_i), and the expected completion time at a point where k segments
// have completed follows Eq. 2:
//
//	T_est = T + Σ_{i=k+1..N} ( MA·P̄_i + ΔT_i )
//
// where MA is "the expected penalty scaling factor for the remainder of the
// current execution" (§4.2): the moving average of how this execution's
// observed per-segment penalties compare to their historical averages,
// MA({P_i/P̄_i}). In steady contention the factor is 1 and the historical
// penalties apply unchanged; when the current execution runs under heavier
// or lighter interference than history, the factor scales the remaining
// penalties accordingly.
//
// Two refinements: the in-flight segment contributes only its remaining
// progress fraction, so predictions are smooth between milestones (Eq. 2 is
// recovered exactly at milestone crossings); and for segments whose penalty
// EMA has never been observed (the first execution), the penalty falls back
// to the raw rate factor, (MA({α})−1)·ΔT_i.
type Predictor struct {
	profile   *Profile
	emaWeight float64

	// milestones[i] is cumulative profiled progress through segment i.
	milestones []float64
	// penalties[i] is P̄_i, persisted across executions.
	penalties []*stats.EMA

	// Per-execution state.
	execStart  sim.Time
	idx        int // segments fully traversed in this execution
	segStart   sim.Time
	prevTime   sim.Time
	prevProg   float64
	alphaMA    *stats.EMA // rate factors α_i of this execution
	scaleMA    *stats.EMA // penalty scaling factors P_i/P̄_i of this execution
	alphaCarry float64    // final MAs of the previous execution seed the next
	scaleCarry float64
	started    bool

	// freqFactor is nominalFrequency/currentFrequency of the FG core
	// (≥ 1 when the controller has throttled the task). Measured segment
	// durations are normalized by it before entering Eq. 1, and
	// predictions are scaled back by it, so that self-inflicted DVFS
	// slowdown is never mistaken for interference — without this, the
	// controller's own throttling inflates the penalty history and
	// triggers spurious boost/throttle oscillation.
	freqFactor float64

	// rec receives a KindSegmentPenalty event per milestone crossing;
	// never nil. stream labels the events (-1 when standalone).
	rec    telemetry.Recorder
	stream int
}

// NewPredictor builds a predictor over a validated profile. weight is the
// EMA weight; pass 0 for the paper's default 0.2.
func NewPredictor(profile *Profile, weight float64) (*Predictor, error) {
	if profile == nil {
		return nil, errors.New("core: nil profile")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if weight == 0 {
		weight = DefaultEMAWeight
	}
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("core: EMA weight %g outside (0,1]", weight)
	}
	p := &Predictor{
		profile:    profile,
		emaWeight:  weight,
		milestones: make([]float64, len(profile.Segments)),
		penalties:  make([]*stats.EMA, len(profile.Segments)),
		alphaCarry: 1,
		scaleCarry: 1,
		freqFactor: 1,
		rec:        telemetry.Nop(),
		stream:     -1,
	}
	cum := 0.0
	for i, s := range profile.Segments {
		cum += s.Progress
		p.milestones[i] = cum
		p.penalties[i] = stats.MustEMA(weight)
	}
	return p, nil
}

// MustPredictor is NewPredictor that panics on error.
func MustPredictor(profile *Profile, weight float64) *Predictor {
	p, err := NewPredictor(profile, weight)
	if err != nil {
		panic(err)
	}
	return p
}

// Profile returns the underlying profile.
func (p *Predictor) Profile() *Profile { return p.profile }

// Segments returns the total segment count N.
func (p *Predictor) Segments() int { return len(p.profile.Segments) }

// SegmentIndex returns how many segments the current execution has fully
// traversed (the k of Eq. 2).
func (p *Predictor) SegmentIndex() int { return p.idx }

// BeginExecution resets per-execution state at the start of an execution.
// The α moving average is seeded with the previous execution's final value,
// which smooths predictions across executions (§4.2).
func (p *Predictor) BeginExecution(start sim.Time) {
	p.execStart = start
	p.idx = 0
	p.segStart = start
	p.prevTime = start
	p.prevProg = 0
	p.alphaMA = stats.MustEMA(p.emaWeight)
	p.alphaMA.Add(p.alphaCarry)
	p.scaleMA = stats.MustEMA(p.emaWeight)
	p.scaleMA.Add(p.scaleCarry)
	p.started = true
}

// Started reports whether BeginExecution has been called.
func (p *Predictor) Started() bool { return p.started }

// SetFrequencyFactor informs the predictor of the FG core's current DVFS
// state as nominal/current frequency (1 = nominal, >1 = throttled). The
// factor applies to observations from now on and to predictions. Invalid
// (non-positive) factors are ignored.
func (p *Predictor) SetFrequencyFactor(factor float64) {
	if factor > 0 {
		p.freqFactor = factor
	}
}

// FrequencyFactor returns the current compensation factor.
func (p *Predictor) FrequencyFactor() float64 { return p.freqFactor }

// SetRecorder attaches a telemetry recorder (nil clears it); stream labels
// the emitted segment events with the FG stream index.
func (p *Predictor) SetRecorder(rec telemetry.Recorder, stream int) {
	p.rec = telemetry.OrNop(rec)
	p.stream = stream
}

// Observe feeds a progress sample: progress is instructions retired since
// the start of the current execution, at simulated time now. Milestone
// crossings since the previous sample are resolved by linear interpolation.
func (p *Predictor) Observe(now sim.Time, progress float64) error {
	if !p.started {
		return errors.New("core: Observe before BeginExecution")
	}
	if now < p.prevTime {
		return fmt.Errorf("core: time went backwards: %v < %v", now, p.prevTime)
	}
	if progress < p.prevProg {
		// Counters on real hardware glitch: a noised or partially lost
		// sample can read below the previous one. Treat it as "no progress
		// this interval" rather than poisoning the milestone state — the
		// next clean sample re-synchronizes.
		progress = p.prevProg
	}
	for p.idx < len(p.milestones) && progress >= p.milestones[p.idx] {
		m := p.milestones[p.idx]
		// Interpolate the crossing time within (prevTime, now].
		cross := now
		if progress > p.prevProg {
			frac := (m - p.prevProg) / (progress - p.prevProg)
			cross = p.prevTime + sim.Time(float64(now-p.prevTime)*frac)
		}
		// Normalize out the task's own DVFS throttling: a segment traversed
		// at 1.6 GHz instead of the nominal 2.0 GHz is not suffering
		// interference, it is executing the controller's own decision.
		measured := time.Duration(float64(cross-p.segStart) / p.freqFactor)
		profiled := p.profile.Segments[p.idx].Duration
		alpha := float64(measured) / float64(profiled)
		penalty := float64(measured - profiled) // (α−1)·ΔT_i, Eq. 1
		if alpha > maxAlphaObservation {
			// A degenerate observation (sample gap spanning several
			// milestones, or a grossly stale profile) would otherwise inject
			// an absurd penalty into the EMA and take ~1/w executions to
			// wash out. Genuine contention keeps α in low single digits.
			alpha = maxAlphaObservation
			penalty = (maxAlphaObservation - 1) * float64(profiled)
		}
		// Penalty scaling factor: this execution's penalty relative to the
		// historical average for the segment, sampled only when history
		// carries a meaningful penalty (≥2% of the segment duration — the
		// ratio is numerically meaningless against a near-zero baseline).
		if hist := p.penalties[p.idx]; hist.Seeded() {
			if base := hist.Value(); base > 0.02*float64(profiled) {
				ratio := penalty / base
				if ratio < 0 {
					ratio = 0
				} else if ratio > 5 {
					ratio = 5
				}
				p.scaleMA.Add(ratio)
			}
		}
		p.penalties[p.idx].Add(penalty)
		p.alphaMA.Add(alpha)
		if p.rec.Enabled(telemetry.KindSegmentPenalty) {
			p.rec.Record(telemetry.Event{
				Kind: telemetry.KindSegmentPenalty, At: cross,
				Stream: p.stream, Segment: p.idx,
				Duration: measured, Penalty: time.Duration(penalty),
				Alpha: alpha,
			})
		}
		p.idx++
		p.segStart = cross
	}
	p.prevTime = now
	p.prevProg = progress
	return nil
}

// FinishExecution records the completion of the current execution at time
// end, resolving any milestones not yet crossed (the completion itself is
// the final milestone), and carries the α average into the next execution.
func (p *Predictor) FinishExecution(end sim.Time) error {
	if !p.started {
		return errors.New("core: FinishExecution before BeginExecution")
	}
	total := p.milestones[len(p.milestones)-1]
	if total < p.prevProg {
		// The task retired slightly more instructions than the profiled
		// total (profiling ran on a marginally different trajectory, and
		// counters include intra-quantum overshoot); the final milestone
		// was already crossed.
		total = p.prevProg
	}
	if err := p.Observe(end, total); err != nil {
		return err
	}
	p.alphaCarry = p.alphaMA.Value()
	p.scaleCarry = p.scaleMA.Value()
	p.started = false
	return nil
}

// Predict returns the estimated completion time of the current execution as
// of time now (Eq. 2 with the in-flight-segment refinement). It is valid at
// any point during an execution, including before the first milestone.
func (p *Predictor) Predict(now sim.Time) (sim.Time, error) {
	if !p.started {
		return 0, errors.New("core: Predict before BeginExecution")
	}
	scale := p.scaleMA.Value()
	alpha := p.alphaMA.Value()
	remaining := 0.0

	for i := p.idx; i < len(p.profile.Segments); i++ {
		seg := p.profile.Segments[i]
		var pen float64
		if p.penalties[i].Seeded() {
			pen = scale * p.penalties[i].Value()
		} else {
			// First execution: no penalty history; scale the profiled
			// duration by the observed rate factor.
			pen = (alpha - 1) * float64(seg.Duration)
		}
		segTime := float64(seg.Duration) + pen
		if segTime < 0 {
			// A negative penalty larger than the segment itself cannot
			// happen physically; clamp defensively.
			segTime = 0
		}
		if i == p.idx {
			// In-flight segment: only its remaining fraction.
			lo := 0.0
			if i > 0 {
				lo = p.milestones[i-1]
			}
			span := p.milestones[i] - lo
			fracDone := 0.0
			if span > 0 {
				fracDone = (p.prevProg - lo) / span
			}
			if fracDone < 0 {
				fracDone = 0
			} else if fracDone > 1 {
				fracDone = 1
			}
			segTime *= 1 - fracDone
			// Time already spent inside the segment is in `now`; the
			// remaining-fraction estimate replaces the rest.
		}
		remaining += segTime
	}
	// The remaining work executes at the core's current frequency.
	return now + sim.Time(remaining*p.freqFactor), nil
}

// PredictDuration returns the estimated total execution time (completion −
// execution start).
func (p *Predictor) PredictDuration(now sim.Time) (time.Duration, error) {
	t, err := p.Predict(now)
	if err != nil {
		return 0, err
	}
	return time.Duration(t - p.execStart), nil
}

// ExecStart returns the start time of the current execution.
func (p *Predictor) ExecStart() sim.Time { return p.execStart }

// AlphaMA returns the current within-execution rate-factor moving average.
func (p *Predictor) AlphaMA() float64 {
	if p.alphaMA == nil {
		return 1
	}
	return p.alphaMA.Value()
}

// PenaltySeeded reports whether segment i has penalty history (mainly for
// tests and introspection).
func (p *Predictor) PenaltySeeded(i int) bool {
	if i < 0 || i >= len(p.penalties) {
		return false
	}
	return p.penalties[i].Seeded()
}

package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a spec file into dir and returns its path.
func writeSpec(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validSpec = `{
  "name": "ferret-vs-rs",
  "machine_class": "xeon-e5",
  "mix": {"fg": ["ferret"], "bg": ["rs"]},
  "policy": "dirigent",
  "executions": 10,
  "goals": {"min_qos_success": 0.5}
}`

func TestLoadValidSpec(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "a.json", validSpec)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "ferret-vs-rs" || s.MachineClass != "xeon-e5" || s.Policy != "dirigent" {
		t.Fatalf("spec fields wrong: %+v", s)
	}
	if s.File() != path {
		t.Fatalf("File() = %q, want %q", s.File(), path)
	}
	if got := s.mix().Seed(); got == 0 {
		t.Fatal("mix seed should derive from the scenario name")
	}
}

func TestLoadRejectsUnknownField(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "typo.json", `{
  "name": "typo",
  "machine_class": "xeon-e5",
  "mix": {"fg": ["ferret"]},
  "policy": "dirigent",
  "goals": {"min_qos_sucess": 0.5}
}`)
	_, err := Load(path)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the file: %v", err)
	}
	if !strings.Contains(err.Error(), "min_qos_sucess") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestLoadRejectsMissingMachineClass(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "noclass.json", `{
  "name": "noclass",
  "mix": {"fg": ["ferret"]},
  "policy": "dirigent",
  "goals": {"min_qos_success": 0.5}
}`)
	_, err := Load(path)
	if err == nil {
		t.Fatal("missing machine_class accepted")
	}
	if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), "machine_class") {
		t.Fatalf("error should name the file and the missing field: %v", err)
	}
	// The error should help: it lists the valid classes.
	if !strings.Contains(err.Error(), "xeon-e5") {
		t.Fatalf("error should list valid classes: %v", err)
	}
}

func TestLoadRejectsInvalidGoals(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		file  string
		goals string
		want  string
	}{
		{"nogoals.json", `{}`, "at least one"},
		{"range.json", `{"min_qos_success": 1.5}`, "outside [0,1]"},
		{"negbg.json", `{"min_bg_throughput": -0.1}`, "outside [0,1]"},
		{"negtail.json", `{"max_tail_latency_s": -1}`, "must not be negative"},
	}
	for _, c := range cases {
		path := writeSpec(t, dir, c.file, `{
  "name": "goals-`+c.file+`",
  "machine_class": "xeon-e5",
  "mix": {"fg": ["ferret"]},
  "policy": "dirigent",
  "goals": `+c.goals+`
}`)
		_, err := Load(path)
		if err == nil {
			t.Errorf("%s: invalid goals accepted", c.file)
			continue
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error does not name the file: %v", c.file, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.file, err, c.want)
		}
	}
}

func TestLoadRejectsBadMixAndPolicy(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		file, body, want string
	}{
		{"nofg.json", `{
  "name": "nofg", "machine_class": "xeon-e5",
  "mix": {"bg": ["rs"]}, "policy": "dirigent",
  "goals": {"min_qos_success": 0.5}
}`, "fg stream"},
		{"badpolicy.json", `{
  "name": "badpolicy", "machine_class": "xeon-e5",
  "mix": {"fg": ["ferret"]}, "policy": "yolo",
  "goals": {"min_qos_success": 0.5}
}`, "unknown policy"},
		{"toomany.json", `{
  "name": "toomany", "machine_class": "quad-low",
  "mix": {"fg": ["ferret", "bodytrack", "raytrace"], "bg": ["rs", "pca"]},
  "policy": "dirigent",
  "goals": {"min_qos_success": 0.5}
}`, "cores"},
		{"badbench.json", `{
  "name": "badbench", "machine_class": "xeon-e5",
  "mix": {"fg": ["frobnicate"]}, "policy": "dirigent",
  "goals": {"min_qos_success": 0.5}
}`, "frobnicate"},
		{"warmup.json", `{
  "name": "warmup", "machine_class": "xeon-e5",
  "mix": {"fg": ["ferret"]}, "policy": "dirigent",
  "executions": 5, "warmup": 5,
  "goals": {"min_qos_success": 0.5}
}`, "warmup"},
	}
	for _, c := range cases {
		path := writeSpec(t, dir, c.file, c.body)
		_, err := Load(path)
		if err == nil {
			t.Errorf("%s: invalid spec accepted", c.file)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.file, err, c.want)
		}
	}
}

func TestLoadDirRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "one.json", validSpec)
	dupPath := writeSpec(t, dir, "two.json", validSpec)
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
	if !strings.Contains(err.Error(), dupPath) || !strings.Contains(err.Error(), "one.json") {
		t.Fatalf("duplicate error should name both files: %v", err)
	}
	if !strings.Contains(err.Error(), "ferret-vs-rs") {
		t.Fatalf("duplicate error should name the colliding scenario: %v", err)
	}
}

func TestLoadDirEmptyAndOrder(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty suite dir accepted")
	}
	dir := t.TempDir()
	writeSpec(t, dir, "b.json", strings.Replace(validSpec, "ferret-vs-rs", "beta", 1))
	writeSpec(t, dir, "a.json", strings.Replace(validSpec, "ferret-vs-rs", "alpha", 1))
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "alpha" || specs[1].Name != "beta" {
		t.Fatalf("suite order not stable by file name: %+v", specs)
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "trail.json", validSpec+`{"name": "second"}`)
	if _, err := Load(path); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestShippedSuiteLoads(t *testing.T) {
	specs, err := LoadDir("../../scenarios")
	if err != nil {
		t.Fatalf("shipped scenario suite does not load: %v", err)
	}
	if len(specs) < 8 {
		t.Fatalf("shipped suite has %d scenarios, want >= 8", len(specs))
	}
	classes := map[string]bool{}
	for _, s := range specs {
		classes[s.MachineClass] = true
	}
	if len(classes) < 3 {
		t.Fatalf("shipped suite covers %d machine classes, want >= 3", len(classes))
	}
}

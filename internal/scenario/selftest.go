package scenario

import "fmt"

// selfTestSpec is a deliberately small scenario used by SelfTest: short
// runs on the default class under the dirigent policy.
func selfTestSpec(goals GoalSpec) Spec {
	return Spec{
		Name:         "selftest-ferret-rs",
		Description:  "injected-failure selftest scenario",
		MachineClass: "xeon-e5",
		Mix:          MixSpec{FG: []string{"ferret"}, BG: []string{"rs"}},
		Policy:       "dirigent",
		Executions:   10,
		Warmup:       2,
		Goals:        goals,
	}
}

// SelfTest proves the scenario gate can fail: it runs a small scenario
// twice — once with sane goals that must pass, once with an impossible
// tail-latency goal (1 µs) that must be reported as a violation. An error
// means the gate is broken: either a healthy scenario fails or an injected
// violation goes undetected.
func SelfTest() error {
	ok, err := RunSpec(selfTestSpec(GoalSpec{MinQoSSuccess: 0.5}))
	if err != nil {
		return fmt.Errorf("scenario selftest: healthy run: %w", err)
	}
	if !ok.Pass {
		return fmt.Errorf("scenario selftest: healthy scenario failed its goals: %+v", ok.Goals)
	}
	bad, err := RunSpec(selfTestSpec(GoalSpec{MaxTailLatencyS: 1e-6}))
	if err != nil {
		return fmt.Errorf("scenario selftest: injected-failure run: %w", err)
	}
	if bad.Pass {
		return fmt.Errorf("scenario selftest: impossible tail-latency goal (1e-6s) not detected (measured %gs)", bad.TailLatencyS)
	}
	return nil
}

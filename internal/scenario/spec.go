// Package scenario loads declarative QoS scenarios — machine class +
// workload mix + policy + fault plan + pass goals — from JSON files and
// runs them as a deterministic regression suite. A scenario is the
// DataDog-workload-checks shape applied to this reproduction: "on machine
// class X, mix M under policy P must keep QoS success above A, background
// throughput above B, and tail latency below C". The suite is a CI gate
// (dirigent-ci -scenarios): adding a scenario file is adding a regression
// check.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dirigent/internal/experiment"
	"dirigent/internal/fault"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
)

// Default run lengths: long enough for the controllers to reach steady
// state, short enough that a full suite stays a CI-sized job.
const (
	DefaultExecutions        = 30
	DefaultWarmup            = 2
	DefaultConvergenceWarmup = 10
)

// MixSpec names the workload mix: foreground benchmark streams and
// background specs (a background entry may be a rotate pair "a+b").
type MixSpec struct {
	FG []string `json:"fg"`
	BG []string `json:"bg"`
}

// FaultSpec is the JSON form of a deterministic fault plan
// (internal/fault.Plan); latencies are spelled in explicit units so specs
// stay readable.
type FaultSpec struct {
	CounterDropout float64 `json:"counter_dropout"`
	CounterNoise   float64 `json:"counter_noise"`
	TickDrop       float64 `json:"tick_drop"`
	TickLate       float64 `json:"tick_late"`
	TickLatencyMs  float64 `json:"tick_latency_ms"`
	DVFSFail       float64 `json:"dvfs_fail"`
	DVFSLate       float64 `json:"dvfs_late"`
	DVFSLatencyUs  float64 `json:"dvfs_latency_us"`
	PauseFail      float64 `json:"pause_fail"`
	ResumeFail     float64 `json:"resume_fail"`
	ProfileScale   float64 `json:"profile_scale"`
	ProfileRephase float64 `json:"profile_rephase"`
}

// Plan converts the spec to the fault engine's plan.
func (f *FaultSpec) Plan() fault.Plan {
	if f == nil {
		return fault.Plan{}
	}
	return fault.Plan{
		CounterDropout: f.CounterDropout,
		CounterNoise:   f.CounterNoise,
		TickDrop:       f.TickDrop,
		TickLate:       f.TickLate,
		TickLatency:    time.Duration(f.TickLatencyMs * float64(time.Millisecond)),
		DVFSFail:       f.DVFSFail,
		DVFSLate:       f.DVFSLate,
		DVFSLatency:    time.Duration(f.DVFSLatencyUs * float64(time.Microsecond)),
		PauseFail:      f.PauseFail,
		ResumeFail:     f.ResumeFail,
		ProfileScale:   f.ProfileScale,
		ProfileRephase: f.ProfileRephase,
	}
}

// GoalSpec is a scenario's pass criteria. Zero-valued goals are unset; at
// least one must be set.
type GoalSpec struct {
	// MinQoSSuccess is the floor on the worst per-stream QoS success rate.
	MinQoSSuccess float64 `json:"min_qos_success"`
	// MinBGThroughput is the floor on background throughput relative to
	// the Baseline pass.
	MinBGThroughput float64 `json:"min_bg_throughput"`
	// MaxTailLatencyS is the ceiling on the worst per-stream P95 execution
	// latency, in seconds.
	MaxTailLatencyS float64 `json:"max_tail_latency_s"`
}

func (g GoalSpec) unset() bool {
	return g.MinQoSSuccess == 0 && g.MinBGThroughput == 0 && g.MaxTailLatencyS == 0
}

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario (unique within a suite) and seeds its
	// runs, so a renamed scenario is a different deterministic experiment.
	Name        string `json:"name"`
	Description string `json:"description"`
	// MachineClass picks the hardware (machine.ClassNames); required.
	MachineClass string  `json:"machine_class"`
	Mix          MixSpec `json:"mix"`
	// Policy is the QoS policy under test (internal/policy registry name).
	Policy string `json:"policy"`
	// Executions/Warmup/ConvergenceWarmup override the suite defaults when
	// positive.
	Executions        int `json:"executions"`
	Warmup            int `json:"warmup"`
	ConvergenceWarmup int `json:"convergence_warmup"`
	// Faults optionally injects a deterministic fault plan into the policy
	// run (the Baseline pass is always clean).
	Faults *FaultSpec `json:"faults,omitempty"`
	Goals  GoalSpec   `json:"goals"`

	// file is the path the spec was loaded from, for error messages and
	// reports ("" for in-memory specs).
	file string
}

// File returns the path the spec was loaded from ("" for in-memory specs).
func (s Spec) File() string { return s.file }

// Mix assembles the experiment mix. The mix carries the scenario name, so
// the run seed is derived from it deterministically.
func (s Spec) mix() experiment.Mix {
	return experiment.Mix{Name: s.Name, FG: s.Mix.FG, BG: s.Mix.BG}
}

// Validate checks a single spec in isolation; suite-level checks
// (duplicate names) live in LoadDir.
func (s Spec) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: missing name")
	}
	if strings.TrimSpace(s.Name) != s.Name || strings.ContainsAny(s.Name, " \t\n") {
		return fmt.Errorf("scenario %q: name must not contain whitespace", s.Name)
	}
	if s.MachineClass == "" {
		return fmt.Errorf("scenario %q: missing machine_class (valid: %v)", s.Name, machine.ClassNames())
	}
	mcfg, err := machine.ClassConfig(s.MachineClass)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if len(s.Mix.FG) == 0 {
		return fmt.Errorf("scenario %q: mix needs at least one fg stream", s.Name)
	}
	if err := s.mix().Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if need := len(s.Mix.FG) + len(s.Mix.BG); need > mcfg.Cores {
		return fmt.Errorf("scenario %q: mix needs %d cores, class %s has %d",
			s.Name, need, s.MachineClass, mcfg.Cores)
	}
	if s.Policy == "" || !policy.Valid(s.Policy) {
		return fmt.Errorf("scenario %q: unknown policy %q (valid: %s)",
			s.Name, s.Policy, strings.Join(policy.Names(), ", "))
	}
	if s.Executions < 0 || s.Warmup < 0 || s.ConvergenceWarmup < 0 {
		return fmt.Errorf("scenario %q: executions/warmup counts must not be negative", s.Name)
	}
	if s.Executions > 0 && s.Warmup >= s.Executions {
		return fmt.Errorf("scenario %q: warmup %d must be below executions %d", s.Name, s.Warmup, s.Executions)
	}
	g := s.Goals
	if g.unset() {
		return fmt.Errorf("scenario %q: goals must set at least one of min_qos_success, min_bg_throughput, max_tail_latency_s", s.Name)
	}
	if g.MinQoSSuccess < 0 || g.MinQoSSuccess > 1 {
		return fmt.Errorf("scenario %q: min_qos_success %g outside [0,1]", s.Name, g.MinQoSSuccess)
	}
	if g.MinBGThroughput < 0 || g.MinBGThroughput > 1 {
		return fmt.Errorf("scenario %q: min_bg_throughput %g outside [0,1]", s.Name, g.MinBGThroughput)
	}
	if g.MaxTailLatencyS < 0 {
		return fmt.Errorf("scenario %q: max_tail_latency_s %g must not be negative", s.Name, g.MaxTailLatencyS)
	}
	return nil
}

// Load parses and validates one scenario file. Unknown fields are rejected
// — a typoed goal name must fail loudly, not silently gate nothing.
func Load(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	// Trailing garbage after the JSON object is as much a mistake as an
	// unknown field.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: %s: trailing data after spec object", path)
	}
	s.file = path
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadDir loads every *.json spec in dir (sorted by file name for a stable
// suite order) and rejects duplicate scenario names across files.
func LoadDir(dir string) ([]Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	sort.Strings(paths)
	specs := make([]Spec, 0, len(paths))
	byName := map[string]string{}
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("scenario: %s: duplicate scenario name %q (already defined in %s)", p, s.Name, prev)
		}
		byName[s.Name] = p
		specs = append(specs, s)
	}
	return specs, nil
}

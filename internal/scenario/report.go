package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderText renders the suite result as an aligned terminal table.
func RenderText(sr *SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-12s %-9s %-8s %8s %8s %9s  goals\n",
		"scenario", "class", "policy", "outcome", "qos", "bg-tput", "tail-p95")
	for _, r := range sr.Results {
		outcome := "pass"
		if !r.Pass {
			outcome = "FAIL"
		}
		fmt.Fprintf(&b, "%-34s %-12s %-9s %-8s %8.3f %8.3f %8.4fs  %s\n",
			r.Name, r.MachineClass, r.Policy, outcome,
			r.QoSSuccess, r.BGThroughput, r.TailLatencyS, goalSummary(r))
	}
	if sr.Pass {
		fmt.Fprintf(&b, "%d scenarios, all goals met\n", len(sr.Results))
	} else {
		fmt.Fprintf(&b, "%d scenarios, FAILED: %s\n", len(sr.Results), strings.Join(sr.Failed(), ", "))
	}
	return b.String()
}

// RenderMarkdown renders the suite result as a GitHub-flavoured table (for
// $GITHUB_STEP_SUMMARY).
func RenderMarkdown(sr *SuiteResult) string {
	var b strings.Builder
	b.WriteString("## Scenario suite\n\n")
	b.WriteString("| scenario | class | policy | outcome | QoS success | BG throughput | tail P95 | goals |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range sr.Results {
		outcome := "✅ pass"
		if !r.Pass {
			outcome = "❌ fail"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %.3f | %.4fs | %s |\n",
			r.Name, r.MachineClass, r.Policy, outcome,
			r.QoSSuccess, r.BGThroughput, r.TailLatencyS, goalSummary(r))
	}
	if sr.Pass {
		fmt.Fprintf(&b, "\n**%d scenarios, all goals met.**\n", len(sr.Results))
	} else {
		fmt.Fprintf(&b, "\n**%d scenarios; failed: %s.**\n", len(sr.Results), strings.Join(sr.Failed(), ", "))
	}
	return b.String()
}

// RenderJSON renders the suite result as indented JSON.
func RenderJSON(sr *SuiteResult) (string, error) {
	out, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return "", fmt.Errorf("scenario: encode report: %w", err)
	}
	return string(out) + "\n", nil
}

// goalSummary compresses a scenario's goal results into one cell:
// "min_qos_success 0.933>=0.90 ok; ...".
func goalSummary(r Result) string {
	parts := make([]string, 0, len(r.Goals))
	for _, g := range r.Goals {
		state := "ok"
		if !g.Pass {
			state = "VIOLATED"
		}
		parts = append(parts, fmt.Sprintf("%s %.3f%s%.3f %s", g.Name, g.Value, g.Op, g.Threshold, state))
	}
	return strings.Join(parts, "; ")
}

package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// smallSpec is a cheap in-memory scenario for run tests.
func smallSpec() Spec {
	return Spec{
		Name:         "run-test-ferret-rs",
		MachineClass: "xeon-e5",
		Mix:          MixSpec{FG: []string{"ferret"}, BG: []string{"rs"}},
		Policy:       "dirigent",
		Executions:   8,
		Warmup:       2,
		Goals:        GoalSpec{MinQoSSuccess: 0.1, MinBGThroughput: 0.05},
	}
}

func TestRunSpecSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	res, err := RunSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "run-test-ferret-rs" || res.MachineClass != "xeon-e5" || res.Policy != "dirigent" {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if res.QoSSuccess < 0 || res.QoSSuccess > 1 {
		t.Fatalf("QoS success %v outside [0,1]", res.QoSSuccess)
	}
	if res.BGThroughput <= 0 {
		t.Fatalf("BG throughput %v, want positive", res.BGThroughput)
	}
	if res.TailLatencyS <= 0 {
		t.Fatalf("tail latency %v, want positive", res.TailLatencyS)
	}
	if len(res.Goals) != 2 {
		t.Fatalf("goals evaluated = %d, want 2 (unset goal must not appear)", len(res.Goals))
	}
	if res.Mix != "ferret | rs" {
		t.Fatalf("mix label = %q", res.Mix)
	}
}

// TestRunSuiteDeterministic runs the same two-scenario suite twice and
// demands bit-identical results — the property that makes the suite a
// regression gate rather than a flaky benchmark.
func TestRunSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	second := smallSpec()
	second.Name = "run-test-bodytrack-pca"
	second.Mix = MixSpec{FG: []string{"bodytrack"}, BG: []string{"pca"}}
	second.Policy = "rtgang"
	specs := []Spec{smallSpec(), second}

	a, err := RunSuite(specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("suite not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.Results[0].Name != specs[0].Name || a.Results[1].Name != specs[1].Name {
		t.Fatal("results not in spec order")
	}
	ja, err := RenderJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := RenderJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatal("JSON report not byte-identical across runs")
	}
}

func TestGoalDirections(t *testing.T) {
	if g := goal("min_qos_success", 0.9, 0.8, ">="); !g.Pass {
		t.Fatal("0.9 >= 0.8 should pass")
	}
	if g := goal("min_qos_success", 0.7, 0.8, ">="); g.Pass {
		t.Fatal("0.7 >= 0.8 should fail")
	}
	if g := goal("max_tail_latency_s", 0.1, 0.2, "<="); !g.Pass {
		t.Fatal("0.1 <= 0.2 should pass")
	}
	if g := goal("max_tail_latency_s", 0.3, 0.2, "<="); g.Pass {
		t.Fatal("0.3 <= 0.2 should fail")
	}
}

func TestRenderers(t *testing.T) {
	sr := &SuiteResult{
		Results: []Result{{
			Name: "demo", MachineClass: "xeon-e5", Policy: "dirigent",
			Mix: "ferret | rs", QoSSuccess: 0.95, BGThroughput: 0.42, TailLatencyS: 0.31,
			Goals: []GoalResult{
				{Name: "min_qos_success", Value: 0.95, Threshold: 0.9, Op: ">=", Pass: true},
				{Name: "max_tail_latency_s", Value: 0.31, Threshold: 0.2, Op: "<=", Pass: false},
			},
		}},
	}
	text := RenderText(sr)
	if !strings.Contains(text, "demo") || !strings.Contains(text, "FAILED") {
		t.Fatalf("text report wrong:\n%s", text)
	}
	if !strings.Contains(text, "VIOLATED") {
		t.Fatalf("text report should flag the violated goal:\n%s", text)
	}
	md := RenderMarkdown(sr)
	if !strings.Contains(md, "| demo |") || !strings.Contains(md, "❌") {
		t.Fatalf("markdown report wrong:\n%s", md)
	}
	sr.Pass = true
	sr.Results[0].Pass = true
	sr.Results[0].Goals[1].Pass = true
	if !strings.Contains(RenderText(sr), "all goals met") {
		t.Fatal("passing text report should say so")
	}
	if !strings.Contains(RenderMarkdown(sr), "✅") {
		t.Fatal("passing markdown report should use the pass marker")
	}
}

func TestSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	if err := SelfTest(); err != nil {
		t.Fatal(err)
	}
}

package scenario

import (
	"fmt"
	"sync"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
	"dirigent/internal/sim"
)

// GoalResult is one evaluated goal: the measured value against its
// threshold.
type GoalResult struct {
	// Name is the goal's spec key (min_qos_success, min_bg_throughput,
	// max_tail_latency_s).
	Name string `json:"name"`
	// Value is the measured quantity.
	Value float64 `json:"value"`
	// Threshold is the spec's bound and Op its direction (">=" or "<=").
	Threshold float64 `json:"threshold"`
	Op        string  `json:"op"`
	Pass      bool    `json:"pass"`
}

// Result is one scenario's outcome. Every field is seed-deterministic:
// the same specs produce a byte-identical report.
type Result struct {
	Name         string `json:"name"`
	MachineClass string `json:"machine_class"`
	Policy       string `json:"policy"`
	// Mix is the human-readable mix ("fg | bg").
	Mix string `json:"mix"`
	// QoSSuccess is the worst per-stream success rate; BGThroughput is
	// relative to the Baseline pass; TailLatencyS is the worst per-stream
	// P95 execution latency. All reported even when un-goaled.
	QoSSuccess   float64      `json:"qos_success"`
	BGThroughput float64      `json:"bg_throughput"`
	TailLatencyS float64      `json:"tail_latency_s"`
	Goals        []GoalResult `json:"goals"`
	Pass         bool         `json:"pass"`
}

// SuiteResult is the whole suite's outcome, in spec order.
type SuiteResult struct {
	Results []Result `json:"results"`
	Pass    bool     `json:"pass"`
}

// Failed returns the names of failing scenarios.
func (sr *SuiteResult) Failed() []string {
	var out []string
	for _, r := range sr.Results {
		if !r.Pass {
			out = append(out, r.Name)
		}
	}
	return out
}

// RunSpec executes one scenario: a clean Baseline pass on the scenario's
// machine class defines per-stream deadlines (µ + 0.3σ, the paper's §5.4
// rule) and the throughput denominator, then the policy under test runs
// under the full-runtime configuration (with the spec's fault plan, if
// any) and the goals are evaluated on that run.
func RunSpec(spec Spec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	r := experiment.NewRunner()
	r.MachineClass = spec.MachineClass
	r.Executions = DefaultExecutions
	if spec.Executions > 0 {
		r.Executions = spec.Executions
	}
	r.Warmup = DefaultWarmup
	if spec.Warmup > 0 {
		r.Warmup = spec.Warmup
	}
	r.ConvergenceWarmup = DefaultConvergenceWarmup
	if spec.ConvergenceWarmup > 0 {
		r.ConvergenceWarmup = spec.ConvergenceWarmup
	}
	mix := spec.mix()

	run := func(p experiment.RunParams) (*experiment.RunResult, error) {
		s, err := r.StartSession(mix, p)
		if err != nil {
			return nil, err
		}
		if err := s.RunExecutions(s.Goal(), sim.Time(r.TimeLimit)); err != nil {
			return nil, err
		}
		return s.Collect()
	}

	base, err := run(experiment.RunParams{
		Config: config.Baseline, BGLevel: -1, Executions: r.Executions,
	})
	if err != nil {
		return Result{}, fmt.Errorf("scenario %q: baseline: %w", spec.Name, err)
	}

	// The paper's deadline rule over the Baseline pass.
	deadlines := make([]float64, len(base.Streams))
	targets := make([]time.Duration, len(base.Streams))
	for i, s := range base.Streams {
		deadlines[i] = s.Summary.Mean + experiment.DeadlineSigma*s.Summary.Std
		targets[i] = time.Duration(deadlines[i] * float64(time.Second))
	}

	managed, err := run(experiment.RunParams{
		Config:      config.Dirigent,
		Policy:      spec.Policy,
		Targets:     targets,
		Deadlines:   deadlines,
		BGLevel:     -1,
		Executions:  r.Executions,
		ExtraWarmup: r.ConvergenceWarmup,
		Faults:      spec.Faults.Plan(),
	})
	if err != nil {
		return Result{}, fmt.Errorf("scenario %q: policy %s: %w", spec.Name, spec.Policy, err)
	}

	res := Result{
		Name:         spec.Name,
		MachineClass: spec.MachineClass,
		Policy:       spec.Policy,
		Mix:          mixLabel(spec.Mix),
		QoSSuccess:   managed.MinSuccessRate(),
		TailLatencyS: maxTailLatency(managed),
		Pass:         true,
	}
	if base.BGInstrRate > 0 {
		res.BGThroughput = managed.BGInstrRate / base.BGInstrRate
	}

	g := spec.Goals
	if g.MinQoSSuccess > 0 {
		res.Goals = append(res.Goals, goal("min_qos_success", res.QoSSuccess, g.MinQoSSuccess, ">="))
	}
	if g.MinBGThroughput > 0 {
		res.Goals = append(res.Goals, goal("min_bg_throughput", res.BGThroughput, g.MinBGThroughput, ">="))
	}
	if g.MaxTailLatencyS > 0 {
		res.Goals = append(res.Goals, goal("max_tail_latency_s", res.TailLatencyS, g.MaxTailLatencyS, "<="))
	}
	for _, gr := range res.Goals {
		if !gr.Pass {
			res.Pass = false
		}
	}
	return res, nil
}

func goal(name string, value, threshold float64, op string) GoalResult {
	pass := value >= threshold
	if op == "<=" {
		pass = value <= threshold
	}
	return GoalResult{Name: name, Value: value, Threshold: threshold, Op: op, Pass: pass}
}

func maxTailLatency(rr *experiment.RunResult) float64 {
	worst := 0.0
	for _, s := range rr.Streams {
		if s.Summary.P95 > worst {
			worst = s.Summary.P95
		}
	}
	return worst
}

func mixLabel(m MixSpec) string {
	label := ""
	for i, f := range m.FG {
		if i > 0 {
			label += ","
		}
		label += f
	}
	label += " | "
	for i, b := range m.BG {
		if i > 0 {
			label += ","
		}
		label += b
	}
	return label
}

// RunSuite executes every spec concurrently (bounded by
// experiment.MaxParallel, the shared DIRIGENT_MAX_PARALLEL machinery) and
// returns results in spec order. The first run error aborts the suite — an
// unrunnable scenario is a broken gate, not a failed goal.
func RunSuite(specs []Spec) (*SuiteResult, error) {
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, experiment.MaxParallel())
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunSpec(specs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", specs[i].Name, err)
		}
	}
	sr := &SuiteResult{Results: results, Pass: true}
	for _, r := range results {
		if !r.Pass {
			sr.Pass = false
		}
	}
	return sr, nil
}

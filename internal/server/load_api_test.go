package server

import (
	"net/http"
	"strings"
	"testing"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
)

// The load generator's eviction path snapshots QoS mid-run; ?partial=1 must
// answer while the tenant is still running, and the plain result endpoint
// must keep refusing.
func TestPartialResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tenant simulation")
	}
	r := experiment.NewRunner()
	r.Executions = 6
	r.Warmup = 1
	srv := New(Config{Runner: r})
	ts, client := testClient(t, srv)

	req := CreateTenantRequest{
		Mix:        MixSpec{Name: "partial ferret pca", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:     string(config.Baseline),
		Executions: 6,
		DeadlinesS: []float64{1.5},
	}
	var created createTenantResponse
	if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	id := created.ID

	// The worker steps in the background; both snapshot shapes must hold
	// whether we catch it running or already done.
	var st TenantStats
	doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id, nil, &st)
	var partial experiment.RunResult
	code, raw := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id+"/result?partial=1", nil, &partial)
	if code != http.StatusOK {
		t.Fatalf("partial result while %s: %d %s", st.State, code, raw)
	}
	if len(partial.Streams) == 0 {
		t.Errorf("partial result has no streams: %s", raw)
	}
	if st.State == StateRunning {
		code, _ := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id+"/result", nil, nil)
		// The worker may finish between the stats snapshot and this call, in
		// which case 200 is correct; only a 200 while still running is a bug.
		doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id, nil, &st)
		if code != http.StatusConflict && st.State == StateRunning {
			t.Errorf("non-partial result while running: %d, want 409", code)
		}
	}

	// Once done, partial must return the same payload as the final result.
	waitDone(t, client, ts.URL, id)
	var fin, finPartial experiment.RunResult
	if code, raw := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id+"/result", &struct{}{}, &fin); code != http.StatusOK {
		t.Fatalf("final result: %d %s", code, raw)
	}
	if code, raw := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+id+"/result?partial=1", nil, &finPartial); code != http.StatusOK {
		t.Fatalf("final partial result: %d %s", code, raw)
	}
	if len(fin.Streams) != len(finPartial.Streams) {
		t.Errorf("final vs partial stream counts differ: %d vs %d", len(fin.Streams), len(finPartial.Streams))
	}
}

func TestCreateMachineClass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tenant simulation")
	}
	srv := New(Config{})
	ts, client := testClient(t, srv)

	// Unknown class: 400 naming the valid ones.
	bad := CreateTenantRequest{
		Mix:          MixSpec{Name: "mc ferret", FG: []string{"ferret"}},
		Config:       string(config.Baseline),
		MachineClass: "cray-1",
	}
	code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", bad, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, "quad-low") {
		t.Fatalf("bad class: %d %s", code, raw)
	}

	// Valid class: the tenant runs on it (quad-low has 4 cores, so a mix
	// that fits the default 6-core class but needs 5 cores must fail at
	// session assembly — proof the per-class runner is actually used).
	tooWide := CreateTenantRequest{
		Mix:          MixSpec{Name: "mc wide", FG: []string{"ferret"}, BG: []string{"pca", "pca", "pca", "pca"}},
		Config:       string(config.Baseline),
		MachineClass: "quad-low",
	}
	if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", tooWide, nil); code != http.StatusBadRequest {
		t.Fatalf("over-wide mix on quad-low: %d %s (want 400)", code, raw)
	}

	good := CreateTenantRequest{
		Mix:          MixSpec{Name: "mc ferret pca", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:       string(config.Baseline),
		MachineClass: "quad-low",
		Executions:   4,
		DeadlinesS:   []float64{1.5},
	}
	var created createTenantResponse
	if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", good, &created); code != http.StatusCreated {
		t.Fatalf("create on quad-low: %d %s", code, raw)
	}
	st := waitDone(t, client, ts.URL, created.ID)
	if st.State != StateDone {
		t.Fatalf("quad-low tenant ended %s (%s)", st.State, st.Error)
	}
}

package server

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/experiment"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// TenantState is a tenant's lifecycle phase.
type TenantState string

const (
	// StateRunning: the worker is stepping the simulation.
	StateRunning TenantState = "running"
	// StateDone: the run reached its execution goal; the result is ready.
	StateDone TenantState = "done"
	// StateFailed: the run errored or hit its simulated-time limit.
	StateFailed TenantState = "failed"
)

// Errors surfaced by tenant command dispatch.
var (
	// ErrTenantGone: the tenant's worker has exited (deleted or shut down).
	ErrTenantGone = errors.New("server: tenant gone")
	// ErrBusy: the worker did not accept the command within the timeout.
	ErrBusy = errors.New("server: tenant busy")
)

// TenantStats is the stats snapshot the API returns. Every quantity is
// derived on the tenant's own worker goroutine — run statistics come from
// the session's telemetry.Aggregator, the same stream subscribers see.
type TenantStats struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Mix    string `json:"mix"`
	Config string `json:"config"`
	// Policy is the QoS policy driving the tenant's runtime ("" for
	// non-runtime configurations).
	Policy string      `json:"policy,omitempty"`
	State  TenantState `json:"state"`
	Error  string      `json:"error,omitempty"`

	// Completed is the minimum completed-execution count across active FG
	// streams; Goal is the provisioned count (executions + extra warmup).
	Completed int `json:"completed"`
	Goal      int `json:"goal"`
	// Executions counts KindExecutionComplete events across all streams.
	Executions int `json:"executions"`
	// SimElapsed is the simulated nanoseconds the tenant has run.
	SimElapsed time.Duration `json:"sim_elapsed_ns"`

	// ActiveFG / ActiveBG are the live task counts after admissions and
	// evictions.
	ActiveFG int `json:"active_fg"`
	ActiveBG int `json:"active_bg"`
	// TargetsNS are the current per-stream latency targets (runtime
	// configurations only; evicted streams keep their last target).
	TargetsNS []int64 `json:"targets_ns,omitempty"`

	// Invocations counts Dirigent runtime samples; FGWays is the current
	// partition; Fine the cumulative fine-controller counters.
	Invocations int                 `json:"invocations,omitempty"`
	FGWays      int                 `json:"fg_ways,omitempty"`
	Fine        telemetry.FineStats `json:"fine"`
	Faults      int                 `json:"faults,omitempty"`
	Reprofiles  int                 `json:"reprofiles,omitempty"`

	// Subscribers and DroppedEvents describe live telemetry streaming:
	// DroppedEvents counts events lost to subscriber backpressure.
	Subscribers   int   `json:"subscribers"`
	DroppedEvents int64 `json:"dropped_events"`
}

// cmd is one control operation dispatched to the worker goroutine. The
// closure runs between step batches, so it may touch the session, runtime,
// and aggregator without synchronization.
type cmd struct {
	fn    func() (any, error)
	reply chan cmdReply
}

type cmdReply struct {
	v   any
	err error
}

// Tenant is one hosted simulation: a session plus the worker goroutine that
// owns it. All session access happens on the worker; handlers communicate
// through do().
type Tenant struct {
	id    string
	name  string
	sess  *experiment.Session
	bcast *broadcaster
	goal  int
	limit sim.Time

	cmds   chan cmd
	stop   chan struct{}
	ended  chan struct{} // closed when the run reaches done/failed
	exited chan struct{} // closed when the worker goroutine returns

	cmdTimeout time.Duration

	// Worker-owned state; handlers read it via commands only.
	state  TenantState
	errMsg string
	result *experiment.RunResult
}

// newTenant wraps an assembled session. The caller starts the worker.
func newTenant(id, name string, sess *experiment.Session, bcast *broadcaster, limit sim.Time, cmdTimeout time.Duration) *Tenant {
	return &Tenant{
		id: id, name: name, sess: sess, bcast: bcast,
		goal: sess.Goal(), limit: limit,
		cmds:   make(chan cmd),
		stop:   make(chan struct{}),
		ended:  make(chan struct{}),
		exited: make(chan struct{}),

		cmdTimeout: cmdTimeout,
		state:      StateRunning,
	}
}

// do runs fn on the worker goroutine and returns its result. It fails with
// ErrBusy if the worker does not accept the command within the tenant's
// command timeout, and ErrTenantGone once the worker has exited.
func (t *Tenant) do(fn func() (any, error)) (any, error) {
	c := cmd{fn: fn, reply: make(chan cmdReply, 1)}
	timer := time.NewTimer(t.cmdTimeout)
	defer timer.Stop()
	select {
	case t.cmds <- c:
	case <-t.exited:
		return nil, ErrTenantGone
	case <-timer.C:
		return nil, ErrBusy
	}
	select {
	case r := <-c.reply:
		return r.v, r.err
	case <-t.exited:
		return nil, ErrTenantGone
	}
}

// run is the worker loop: step the simulation in short batches, applying
// queued control commands at batch boundaries. After the run ends the
// worker keeps serving commands (stats, result) until the tenant is
// stopped.
func (t *Tenant) run() {
	defer close(t.exited)
	// stepBatch bounds command latency: at most this many quanta pass
	// before queued control operations land.
	const stepBatch = 256
	for {
		select {
		case <-t.stop:
			t.end()
			return
		case c := <-t.cmds:
			v, err := c.fn()
			c.reply <- cmdReply{v: v, err: err}
			continue
		default:
		}
		if t.state != StateRunning {
			// Run over: block on control traffic only.
			select {
			case <-t.stop:
				t.end()
				return
			case c := <-t.cmds:
				v, err := c.fn()
				c.reply <- cmdReply{v: v, err: err}
			}
			continue
		}
		for i := 0; i < stepBatch && t.state == StateRunning; i++ {
			if err := t.sess.Step(); err != nil {
				t.state = StateFailed
				t.errMsg = err.Error()
				break
			}
			if t.sess.Completed() >= t.goal {
				t.state = StateDone
				break
			}
			if t.sess.Now() >= t.limit {
				t.state = StateFailed
				t.errMsg = fmt.Sprintf("time limit: %d/%d executions within %v",
					t.sess.Completed(), t.goal, time.Duration(t.limit))
				break
			}
		}
		if t.state != StateRunning {
			if t.state == StateDone {
				rr, err := t.sess.Collect()
				if err != nil {
					t.state = StateFailed
					t.errMsg = err.Error()
				} else {
					t.result = rr
				}
			}
			t.end()
		}
	}
}

// end marks the run finished and terminates subscriber streams. Idempotent.
func (t *Tenant) end() {
	select {
	case <-t.ended:
	default:
		close(t.ended)
	}
	t.bcast.closeAll()
}

// stats builds the snapshot; worker goroutine only.
func (t *Tenant) stats() TenantStats {
	sess := t.sess
	agg := sess.Aggregator()
	st := TenantStats{
		ID: t.id, Name: t.name,
		Mix:    sess.Mix().Name,
		Config: string(sess.Config()),
		Policy: sess.Policy(),
		State:  t.state, Error: t.errMsg,
		Completed:  sess.Completed(),
		Goal:       t.goal,
		Executions: agg.Executions(),
		SimElapsed: time.Duration(sess.Now()),
		Fine:       agg.Fine(),
		FGWays:     agg.FGWays(),
		Faults:     agg.Faults(),
		Reprofiles: agg.Reprofiles(),

		Subscribers:   t.bcast.Subscribers(),
		DroppedEvents: t.bcast.Dropped(),
	}
	for _, f := range sess.Colocation().FG() {
		if !f.Removed() {
			st.ActiveFG++
		}
	}
	st.ActiveBG = len(sess.Colocation().BG())
	if rt := sess.Runtime(); rt != nil {
		st.Invocations = rt.Invocations()
		for _, tgt := range rt.Targets() {
			st.TargetsNS = append(st.TargetsNS, int64(tgt))
		}
	}
	return st
}

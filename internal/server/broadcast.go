package server

import (
	"sync"
	"sync/atomic"

	"dirigent/internal/telemetry"
)

// broadcaster fans one tenant's telemetry stream out to live subscribers.
// It implements telemetry.Recorder and is teed into the tenant's session
// bus, so subscribers see exactly the events a JSONL trace would.
//
// Record is called from the tenant's worker goroutine — the simulation hot
// path — so delivery is strictly non-blocking: each subscriber has a
// bounded channel, and an event that does not fit is dropped and counted
// (per subscriber and in total) instead of stalling the run. Recording is
// observational; dropping affects only what a subscriber sees, never the
// simulation.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	nAll     atomic.Int32
	nQuantum atomic.Int32
	dropped  atomic.Int64
}

// subscriber is one live telemetry consumer.
type subscriber struct {
	ch chan telemetry.Event
	// quantum opts into KindQuantumStep events (one per 250 µs of simulated
	// time; excluded by default, exactly like JSONL traces).
	quantum bool
	dropped atomic.Int64
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: map[*subscriber]struct{}{}}
}

// Enabled gates event construction on the hot path: with no subscribers the
// tenant's bus skips broadcast work entirely.
func (b *broadcaster) Enabled(k telemetry.Kind) bool {
	if k == telemetry.KindQuantumStep {
		return b.nQuantum.Load() > 0
	}
	return b.nAll.Load() > 0
}

// Record delivers ev to every subscriber whose buffer has room.
func (b *broadcaster) Record(ev telemetry.Event) {
	if b.nAll.Load() == 0 {
		return
	}
	b.mu.Lock()
	for s := range b.subs {
		if ev.Kind == telemetry.KindQuantumStep && !s.quantum {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// subscribe registers a new consumer with the given buffer size. On a
// broadcaster that has already been closed (the tenant's run ended) the
// subscriber's channel is returned pre-closed, so a late consumer sees a
// clean empty stream.
func (b *broadcaster) subscribe(buffer int, quantum bool) *subscriber {
	s := &subscriber{ch: make(chan telemetry.Event, buffer), quantum: quantum}
	b.mu.Lock()
	if b.closed {
		close(s.ch)
		b.mu.Unlock()
		return s
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	b.nAll.Add(1)
	if quantum {
		b.nQuantum.Add(1)
	}
	return s
}

// unsubscribe removes a consumer and closes its channel. Idempotent, and
// safe against a concurrent closeAll.
func (b *broadcaster) unsubscribe(s *subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[s]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.subs, s)
	close(s.ch)
	b.mu.Unlock()
	b.nAll.Add(-1)
	if s.quantum {
		b.nQuantum.Add(-1)
	}
}

// closeAll ends every subscriber's stream (the run completed or the tenant
// is being removed). Consumers drain their remaining buffered events and
// see the channel close. Idempotent.
func (b *broadcaster) closeAll() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
		b.nAll.Add(-1)
		if s.quantum {
			b.nQuantum.Add(-1)
		}
	}
	b.mu.Unlock()
}

// Subscribers returns the current live-consumer count.
func (b *broadcaster) Subscribers() int { return int(b.nAll.Load()) }

// Dropped returns the total events dropped across all subscribers.
func (b *broadcaster) Dropped() int64 { return b.dropped.Load() }

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
)

func testClient(t *testing.T, srv *Server) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts, ts.Client()
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode, string(bytes.TrimSpace(raw))
}

// waitDone polls stats until the tenant leaves StateRunning.
func waitDone(t *testing.T, client *http.Client, base, id string) TenantStats {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st TenantStats
		code, raw := doJSON(t, client, "GET", base+"/v1/tenants/"+id, nil, &st)
		if code != http.StatusOK {
			t.Fatalf("stats %s: %d %s", id, code, raw)
		}
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s still running: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServedDeterminism is the core acceptance test: a tenant created over
// the API with the batch run's exact parameters must produce a RunResult
// byte-identical to the same mix/config driven directly through
// experiment.Runner. The server and the batch runner share one session
// construction and stepping path, so any divergence is a regression.
func TestServedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full served run")
	}
	r := experiment.NewRunner()
	r.Executions = 8
	r.Warmup = 2
	r.ConvergenceWarmup = 10
	mix := experiment.Mix{Name: "served bodytrack pca", FG: []string{"bodytrack"}, BG: []string{"pca", "pca", "pca"}}

	mr, err := r.RunConfigs(mix, config.Dirigent)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(mr.ByConfig[config.Dirigent])
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Runner: r})
	ts, client := testClient(t, srv)

	// Re-encode the batch run's derived parameters exactly: targets as
	// integer nanoseconds (the duration truncation the batch runner applied)
	// and deadlines as float64 seconds (JSON round-trips them exactly).
	req := CreateTenantRequest{
		Name:        "determinism",
		Mix:         MixSpec{Name: mix.Name, FG: mix.FG, BG: mix.BG},
		Config:      string(config.Dirigent),
		Executions:  r.Executions,
		ExtraWarmup: r.ConvergenceWarmup,
		DeadlinesS:  mr.Deadlines,
	}
	for _, d := range mr.Deadlines {
		req.TargetsNS = append(req.TargetsNS, int64(time.Duration(d*float64(time.Second))))
	}
	var created createTenantResponse
	code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}

	st := waitDone(t, client, ts.URL, created.ID)
	if st.State != StateDone {
		t.Fatalf("tenant state = %s (%s)", st.State, st.Error)
	}
	if st.Executions == 0 || st.SimElapsed == 0 {
		t.Errorf("empty stats snapshot: %+v", st)
	}

	code, got := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+created.ID+"/result", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, got)
	}
	if got != string(want) {
		t.Errorf("served RunResult differs from batch run\nserved: %.200s...\nbatch:  %.200s...", got, want)
	}
}

// TestServeLoad64Tenants drives 64 concurrent tenants, each with a live
// JSONL subscriber, and requires every run to finish with zero events
// dropped to backpressure under the default subscriber buffer.
func TestServeLoad64Tenants(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	r := experiment.NewRunner()
	r.Warmup = 1
	srv := New(Config{Runner: r})
	ts, client := testClient(t, srv)

	const tenants = 64
	fgs := []string{"bodytrack", "ferret", "fluidanimate", "raytrace", "streamcluster"}
	ids := make([]string, tenants)
	for i := 0; i < tenants; i++ {
		req := CreateTenantRequest{
			Mix: MixSpec{
				Name: fmt.Sprintf("load-%02d", i),
				FG:   []string{fgs[i%len(fgs)]},
				BG:   []string{"pca"},
			},
			Config:     string(config.Baseline),
			Executions: 2,
		}
		var created createTenantResponse
		code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created)
		if code != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, code, raw)
		}
		ids[i] = created.ID
	}
	if got := srv.Tenants(); got != tenants {
		t.Fatalf("Tenants() = %d, want %d", got, tenants)
	}

	// One draining JSONL subscriber per tenant.
	var wg sync.WaitGroup
	tails := make([]string, tenants)
	errs := make([]error, tenants)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, err := client.Get(ts.URL + "/v1/tenants/" + id + "/events")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				errs[i] = fmt.Errorf("content-type %q", ct)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if line != "" {
					tails[i] = line
				}
			}
			errs[i] = sc.Err()
		}(i, id)
	}
	wg.Wait()

	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("subscriber %s: %v", id, errs[i])
		}
		if !strings.Contains(tails[i], `"stream_end"`) || !strings.Contains(tails[i], `"dropped":0`) {
			t.Errorf("tenant %s: want clean stream_end tail, got %q", id, tails[i])
		}
		st := waitDone(t, client, ts.URL, id)
		if st.State != StateDone {
			t.Errorf("tenant %s: state %s (%s)", id, st.State, st.Error)
		}
		if st.DroppedEvents != 0 {
			t.Errorf("tenant %s: dropped %d events", id, st.DroppedEvents)
		}
		if st.Executions == 0 {
			t.Errorf("tenant %s: no executions recorded", id)
		}
	}

	// List shows all tenants, in ID order.
	var list []TenantStats
	code, raw := doJSON(t, client, "GET", ts.URL+"/v1/tenants", nil, &list)
	if code != http.StatusOK || len(list) != tenants {
		t.Fatalf("list: %d %d tenants %s", code, len(list), raw)
	}
	for i := 1; i < len(list); i++ {
		if !tenantLess(list[i-1].ID, list[i].ID) {
			t.Errorf("list order: %s before %s", list[i-1].ID, list[i].ID)
		}
	}
}

// TestTenantControlPlane exercises mid-run control: retargeting a stream,
// admitting and evicting BG and FG tasks, and deleting the tenant.
func TestTenantControlPlane(t *testing.T) {
	r := experiment.NewRunner()
	r.Warmup = 2
	srv := New(Config{Runner: r})
	ts, client := testClient(t, srv)

	req := CreateTenantRequest{
		Mix:        MixSpec{Name: "ctl ferret bwaves", FG: []string{"ferret"}, BG: []string{"bwaves"}},
		Config:     string(config.DirigentFreq),
		TargetsNS:  []int64{int64(2 * time.Second)},
		Executions: 100_000, // stays running while we poke it (cleanup stops it)
	}
	var created createTenantResponse
	code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	id := created.ID
	base := ts.URL + "/v1/tenants/" + id

	// Result is unavailable while running.
	if code, raw := doJSON(t, client, "GET", base+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("result while running: %d %s", code, raw)
	}

	// Retarget stream 0.
	code, raw = doJSON(t, client, "POST", base+"/targets",
		retargetRequest{Stream: 0, TargetNS: int64(1500 * time.Millisecond)}, nil)
	if code != http.StatusOK {
		t.Fatalf("retarget: %d %s", code, raw)
	}
	var st TenantStats
	doJSON(t, client, "GET", base, nil, &st)
	if len(st.TargetsNS) != 1 || st.TargetsNS[0] != int64(1500*time.Millisecond) {
		t.Fatalf("targets after retarget = %v", st.TargetsNS)
	}

	// Admit a BG worker, then evict it.
	var bg admitBGResponse
	code, raw = doJSON(t, client, "POST", base+"/bg", admitBGRequest{Spec: "pca"}, &bg)
	if code != http.StatusCreated {
		t.Fatalf("admit bg: %d %s", code, raw)
	}
	doJSON(t, client, "GET", base, nil, &st)
	if st.ActiveBG != 2 {
		t.Fatalf("ActiveBG = %d, want 2", st.ActiveBG)
	}
	if code, raw := doJSON(t, client, "DELETE", fmt.Sprintf("%s/bg/%d", base, bg.Task), nil, nil); code != http.StatusOK {
		t.Fatalf("remove bg: %d %s", code, raw)
	}

	// Admit a second FG stream with its own target, then evict it.
	var fg admitFGResponse
	code, raw = doJSON(t, client, "POST", base+"/fg",
		admitFGRequest{Bench: "bodytrack", TargetNS: int64(2 * time.Second)}, &fg)
	if code != http.StatusCreated {
		t.Fatalf("admit fg: %d %s", code, raw)
	}
	if fg.Stream != 1 {
		t.Errorf("admitted stream = %d, want 1", fg.Stream)
	}
	doJSON(t, client, "GET", base, nil, &st)
	if st.ActiveFG != 2 || len(st.TargetsNS) != 2 {
		t.Fatalf("after FG admit: ActiveFG=%d targets=%v", st.ActiveFG, st.TargetsNS)
	}
	if code, raw := doJSON(t, client, "DELETE", fmt.Sprintf("%s/fg/%d", base, fg.Stream), nil, nil); code != http.StatusOK {
		t.Fatalf("remove fg: %d %s", code, raw)
	}
	// Evicting the last remaining stream is refused.
	if code, _ := doJSON(t, client, "DELETE", base+"/fg/0", nil, nil); code != http.StatusConflict {
		t.Fatalf("remove last fg: %d, want 409", code)
	}
	doJSON(t, client, "GET", base, nil, &st)
	if st.ActiveFG != 1 || st.State != StateRunning {
		t.Fatalf("after FG evict: %+v", st)
	}

	// Delete stops the worker; the tenant is gone afterwards.
	if code, raw := doJSON(t, client, "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, raw)
	}
	if code, _ := doJSON(t, client, "GET", base, nil, nil); code != http.StatusNotFound {
		t.Fatalf("stats after delete: %d, want 404", code)
	}
}

func TestCreateValidation(t *testing.T) {
	r := experiment.NewRunner()
	srv := New(Config{Runner: r, MaxTenants: 1})
	ts, client := testClient(t, srv)

	cases := []struct {
		name string
		req  CreateTenantRequest
	}{
		{"unknown config", CreateTenantRequest{
			Mix: MixSpec{Name: "x", FG: []string{"ferret"}}, Config: "Turbo"}},
		{"missing targets", CreateTenantRequest{
			Mix: MixSpec{Name: "x", FG: []string{"ferret"}}, Config: string(config.Dirigent)}},
		{"unknown bench", CreateTenantRequest{
			Mix: MixSpec{Name: "x", FG: []string{"nope"}}, Config: string(config.Baseline)}},
		{"no FG", CreateTenantRequest{
			Mix: MixSpec{Name: "x", BG: []string{"pca"}}, Config: string(config.Baseline)}},
	}
	for _, c := range cases {
		if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", c.req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: code %d %s", c.name, code, raw)
		}
	}
	if got := srv.Tenants(); got != 0 {
		t.Fatalf("rejected creates leaked %d tenant slots", got)
	}

	ok := CreateTenantRequest{
		Mix:        MixSpec{Name: "v ferret pca", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:     string(config.Baseline),
		Executions: 500,
	}
	var created createTenantResponse
	if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", ok, &created); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	// Tenant limit.
	ok.Mix.Name = "v2 ferret pca"
	if code, _ := doJSON(t, client, "POST", ts.URL+"/v1/tenants", ok, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create: %d, want 503", code)
	}
	if code, _ := doJSON(t, client, "GET", ts.URL+"/v1/tenants/t999", nil, nil); code != http.StatusNotFound {
		t.Fatal("unknown tenant should 404")
	}
}

// TestShutdownDrains verifies graceful shutdown: running workers stop,
// subscriber streams end, and new tenants are refused.
func TestShutdownDrains(t *testing.T) {
	r := experiment.NewRunner()
	srv := New(Config{Runner: r})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	req := CreateTenantRequest{
		Mix:        MixSpec{Name: "shutdown ferret pca", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:     string(config.Baseline),
		Executions: 100_000, // never finishes on its own
	}
	var created createTenantResponse
	if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}

	// A live subscriber must see its stream end at shutdown.
	streamDone := make(chan error, 1)
	resp, err := client.Get(ts.URL + "/v1/tenants/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		streamDone <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Errorf("subscriber stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber stream did not end at shutdown")
	}
	if code, _ := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown: %d, want 503", code)
	}
	if got := srv.Tenants(); got != 0 {
		t.Fatalf("tenants after shutdown: %d", got)
	}
}

// TestPolicyTenants exercises the policy engine over the API: bad policy
// names 400 with the valid set listed, and a tenant under each registered
// policy runs to completion with the policy label in its stats and its
// streamed telemetry.
func TestPolicyTenants(t *testing.T) {
	r := experiment.NewRunner()
	srv := New(Config{Runner: r})
	ts, client := testClient(t, srv)

	bad := CreateTenantRequest{
		Mix:       MixSpec{Name: "x", FG: []string{"ferret"}, BG: []string{"pca"}},
		Config:    string(config.DirigentFreq),
		Policy:    "nope",
		TargetsNS: []int64{int64(time.Second)},
	}
	code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", bad, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bogus policy: %d %s, want 400", code, raw)
	}
	for _, name := range []string{"dirigent", "rtgang", "cordlike"} {
		if !strings.Contains(raw, name) {
			t.Errorf("400 body %q should list policy %q", raw, name)
		}
	}
	if got := srv.Tenants(); got != 0 {
		t.Fatalf("rejected creates leaked %d tenant slots", got)
	}

	for _, name := range []string{"dirigent", "rtgang", "cordlike"} {
		req := CreateTenantRequest{
			Mix:        MixSpec{Name: "p " + name, FG: []string{"ferret"}, BG: []string{"pca", "pca"}},
			Config:     string(config.Dirigent),
			Policy:     name,
			TargetsNS:  []int64{int64(2 * time.Second)},
			Executions: 6,
		}
		var created createTenantResponse
		if code, raw := doJSON(t, client, "POST", ts.URL+"/v1/tenants", req, &created); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name, code, raw)
		}
		st := waitDone(t, client, ts.URL, created.ID)
		if st.State != StateDone {
			t.Fatalf("%s: state %s (%s)", name, st.State, st.Error)
		}
		if st.Policy != name {
			t.Errorf("%s: stats policy %q", name, st.Policy)
		}
		// The run's decision events must carry the policy label through the
		// JSONL trace framing subscribers use.
		var result experiment.RunResult
		if code, raw := doJSON(t, client, "GET", ts.URL+"/v1/tenants/"+created.ID+"/result", nil, &result); code != http.StatusOK {
			t.Fatalf("%s result: %d %s", name, code, raw)
		}
		if result.Policy != name {
			t.Errorf("%s: result policy %q", name, result.Policy)
		}
		if result.Fine.Decisions == 0 {
			t.Errorf("%s: no fine decisions recorded", name)
		}
	}
}

// Package server hosts many independent tenant simulations behind a JSON
// HTTP admission API — the Dirigent runtime (§4 of the paper) exposed as a
// long-running multi-tenant control service instead of a batch CLI.
//
// Each tenant owns a full per-run stack (machine → sched.Colocation →
// core.Runtime, assembled by experiment.StartSession) driven by a dedicated
// worker goroutine. All control operations — admitting and evicting FG and
// BG tasks, retargeting deadlines via core.Runtime.SetTarget, stats
// snapshots, result collection — are serialized onto that goroutine through
// a command channel, so the simulation itself stays single-threaded and a
// tenant created with a fixed seed produces a RunResult byte-identical to
// the same run driven directly through experiment.Runner.
//
// Live telemetry streams to any number of subscribers per tenant: the
// tenant's event bus is teed into a broadcaster whose per-subscriber
// bounded channels provide backpressure — a slow consumer drops events
// (counted and surfaced as a metric) rather than stalling the simulation.
// Subscribers choose JSONL (the exact trace encoding of
// internal/telemetry) or SSE framing.
//
// The API surface (all under /v1):
//
//	POST   /v1/tenants               create a tenant (mix, config, machine class, targets, seed, fault plan)
//	GET    /v1/tenants               list tenant stats
//	GET    /v1/tenants/{id}          one tenant's stats
//	DELETE /v1/tenants/{id}          stop and remove a tenant
//	GET    /v1/tenants/{id}/result   final RunResult (?partial=1 snapshots mid-run)
//	POST   /v1/tenants/{id}/targets  retarget one stream's deadline mid-run
//	POST   /v1/tenants/{id}/fg       admit a foreground stream mid-run
//	DELETE /v1/tenants/{id}/fg/{stream}  evict a foreground stream
//	POST   /v1/tenants/{id}/bg       admit a background worker mid-run
//	DELETE /v1/tenants/{id}/bg/{task}    evict a background worker
//	GET    /v1/tenants/{id}/events   live telemetry (JSONL, or SSE via Accept/format)
//	GET    /v1/healthz               liveness + tenant count
//
// Status-code contract: 400 rejects malformed or invalid requests (unknown
// config, policy, or machine class; wrong target count); 404 an unknown
// tenant; 409 an operation the simulation state refuses (e.g. retargeting
// a configuration with no runtime); and 503 means "not now" — the tenant
// limit is reached, the server is shutting down, or a worker's command
// queue timed out. Load generators treat 503 as shed-or-retry-later; it is
// capacity, not client misbehavior, which is why the tenant limit does not
// answer 429.
//
// cmd/dirigent-serve wires the server to an address with request limits and
// graceful shutdown (drain tenant workers, flush subscriber streams).
package server

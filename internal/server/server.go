package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
	"dirigent/internal/fault"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// Config tunes the service's limits. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// MaxTenants caps concurrently hosted tenants (default 256).
	MaxTenants int
	// MaxBodyBytes caps request body size (default 1 MiB).
	MaxBodyBytes int64
	// CommandTimeout bounds how long a control request waits for a tenant's
	// worker to accept it before failing with 503 (default 10 s).
	CommandTimeout time.Duration
	// SubscriberBuffer is the per-subscriber event buffer; a consumer that
	// falls further behind drops events (default 4096).
	SubscriberBuffer int
	// Runner executes tenant sessions. Its Warmup/TimeLimit defaults apply
	// to every tenant; its profile cache is shared across them (single-
	// flight, so concurrent tenants admitting the same benchmark profile it
	// once). Default: experiment.NewRunner().
	Runner *experiment.Runner
}

func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CommandTimeout <= 0 {
		c.CommandTimeout = 10 * time.Second
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 4096
	}
	if c.Runner == nil {
		c.Runner = experiment.NewRunner()
	}
	return c
}

// Server is the multi-tenant QoS control service. Create with New, mount
// via Handler (or ServeHTTP), and stop with Shutdown.
type Server struct {
	cfg    Config
	runner *experiment.Runner
	mux    *http.ServeMux

	mu      sync.Mutex
	tenants map[string]*Tenant
	nextID  int
	closed  bool

	// classRunners lazily clones the base runner per non-default machine
	// class (a runner's profile cache is class-keyed, but its MachineClass
	// field is not per-tenant state, so each class needs its own runner).
	classMu      sync.Mutex
	classRunners map[string]*experiment.Runner
}

// New builds a server ready to serve requests.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		runner:       cfg.Runner,
		mux:          http.NewServeMux(),
		tenants:      map[string]*Tenant{},
		classRunners: map[string]*experiment.Runner{},
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreate)
	s.mux.HandleFunc("GET /v1/tenants", s.handleList)
	s.mux.HandleFunc("GET /v1/tenants/{id}", s.handleStats)
	s.mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/tenants/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/tenants/{id}/targets", s.handleRetarget)
	s.mux.HandleFunc("POST /v1/tenants/{id}/fg", s.handleAdmitFG)
	s.mux.HandleFunc("DELETE /v1/tenants/{id}/fg/{stream}", s.handleRemoveFG)
	s.mux.HandleFunc("POST /v1/tenants/{id}/bg", s.handleAdmitBG)
	s.mux.HandleFunc("DELETE /v1/tenants/{id}/bg/{task}", s.handleRemoveBG)
	s.mux.HandleFunc("GET /v1/tenants/{id}/events", s.handleEvents)
	return s
}

// Handler returns the HTTP handler (request-size limiting included).
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown gracefully stops the service: no new tenants are admitted, every
// tenant worker is drained, and all subscriber streams are terminated. It
// returns early with ctx's error if the context expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	all := make([]*Tenant, 0, len(s.tenants))
	for id, t := range s.tenants {
		all = append(all, t)
		delete(s.tenants, id)
	}
	s.mu.Unlock()
	for _, t := range all {
		close(t.stop)
	}
	for _, t := range all {
		select {
		case <-t.exited:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Tenants returns the current tenant count.
func (s *Server) Tenants() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// ---- request/response types -------------------------------------------

// MixSpec names a workload mix in API requests.
type MixSpec struct {
	Name string   `json:"name"`
	FG   []string `json:"fg"`
	BG   []string `json:"bg"`
}

// CreateTenantRequest creates one hosted simulation.
type CreateTenantRequest struct {
	// Name is an optional human label (the server assigns the ID).
	Name string `json:"name,omitempty"`
	// Mix is the workload; Config one of the five configuration names.
	Mix    MixSpec `json:"mix"`
	Config string  `json:"config"`
	// Policy names the QoS policy driving the runtime (a registered
	// internal/policy name: dirigent, rtgang, cordlike). Empty defaults to
	// dirigent. Only meaningful for runtime configurations.
	Policy string `json:"policy,omitempty"`
	// MachineClass selects the simulated hardware (machine.ClassNames).
	// Empty means the server runner's class (the xeon-e5 default).
	MachineClass string `json:"machine_class,omitempty"`
	// TargetsNS are per-FG-stream latency targets in nanoseconds; required
	// for runtime configurations (DirigentFreq, Dirigent).
	TargetsNS []int64 `json:"targets_ns,omitempty"`
	// DeadlinesS optionally overrides success-rate deadlines in seconds
	// (defaults to the targets).
	DeadlinesS []float64 `json:"deadlines_s,omitempty"`
	// Executions / ExtraWarmup size the run (0 uses the server defaults).
	Executions  int `json:"executions,omitempty"`
	ExtraWarmup int `json:"extra_warmup,omitempty"`
	// FGWays statically partitions the LLC; BGLevel statically pins BG
	// frequency (omitted = unpinned).
	FGWays  int  `json:"fg_ways,omitempty"`
	BGLevel *int `json:"bg_level,omitempty"`
	// Seed overrides the mix-derived deterministic seed (0 keeps it).
	Seed uint64 `json:"seed,omitempty"`
	// TimeLimitMS bounds the run in simulated milliseconds (0 uses the
	// server runner's default).
	TimeLimitMS float64 `json:"time_limit_ms,omitempty"`
	// Faults is an optional deterministic fault-injection plan.
	Faults *fault.Plan `json:"faults,omitempty"`
}

type createTenantResponse struct {
	ID string `json:"id"`
}

type retargetRequest struct {
	Stream   int   `json:"stream"`
	TargetNS int64 `json:"target_ns"`
}

type admitFGRequest struct {
	Bench    string `json:"bench"`
	TargetNS int64  `json:"target_ns"`
}

type admitFGResponse struct {
	Stream int `json:"stream"`
}

type admitBGRequest struct {
	// Spec is a BG worker spec: a benchmark name, or "a+b" for a rotate
	// pair — the same syntax experiment mixes use.
	Spec string `json:"spec"`
}

type admitBGResponse struct {
	Task int `json:"task"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": s.Tenants()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	mix := experiment.Mix{Name: req.Mix.Name, FG: req.Mix.FG, BG: req.Mix.BG}
	cfg, err := config.ByName(config.Name(req.Config))
	if err != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("%s (valid: %s)", err, joinConfigNames()))
		return
	}
	if req.Policy != "" && !policy.Valid(req.Policy) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("unknown policy %q (valid: %s)", req.Policy, strings.Join(policy.Names(), ", ")))
		return
	}
	if req.MachineClass != "" {
		// machine.ClassConfig's error already lists the valid classes.
		if _, err := machine.ClassConfig(req.MachineClass); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	runner := s.runnerFor(req.MachineClass)
	if cfg.UseRuntime && len(req.TargetsNS) != len(mix.FG) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("configuration %s needs %d targets_ns, got %d", cfg.Name, len(mix.FG), len(req.TargetsNS)))
		return
	}
	params := experiment.RunParams{
		Config:      cfg.Name,
		Policy:      req.Policy,
		Deadlines:   req.DeadlinesS,
		Executions:  req.Executions,
		ExtraWarmup: req.ExtraWarmup,
		FGWays:      req.FGWays,
		BGLevel:     -1,
		Seed:        req.Seed,
	}
	if req.BGLevel != nil {
		params.BGLevel = *req.BGLevel
	}
	for _, ns := range req.TargetsNS {
		params.Targets = append(params.Targets, time.Duration(ns))
	}
	if req.Faults != nil {
		params.Faults = *req.Faults
	}
	limit := sim.Time(runner.TimeLimit)
	if req.TimeLimitMS > 0 {
		limit = sim.Time(req.TimeLimitMS * float64(time.Millisecond))
	}

	// Reserve the slot before assembling the session: assembly profiles
	// benchmarks on first use, and racing past MaxTenants during that
	// window would defeat the limit.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		// 503, not 429: the limit is server capacity, not client rate — a
		// well-behaved load generator should shed or retry-later, exactly
		// as it would during shutdown. (Earlier releases answered 429.)
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("tenant limit reached (%d)", s.cfg.MaxTenants))
		return
	}
	s.nextID++
	id := "t" + strconv.Itoa(s.nextID)
	s.tenants[id] = nil // placeholder holds the slot
	s.mu.Unlock()

	bcast := newBroadcaster()
	params.Extra = bcast
	sess, err := runner.StartSession(mix, params)
	if err != nil {
		s.mu.Lock()
		delete(s.tenants, id)
		s.mu.Unlock()
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t := newTenant(id, req.Name, sess, bcast, limit, s.cfg.CommandTimeout)
	s.mu.Lock()
	if s.closed {
		delete(s.tenants, id)
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	s.tenants[id] = t
	s.mu.Unlock()
	go t.run()
	writeJSON(w, http.StatusCreated, createTenantResponse{ID: id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	all := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			all = append(all, t)
		}
	}
	s.mu.Unlock()
	out := make([]TenantStats, 0, len(all))
	for _, t := range all {
		v, err := t.do(func() (any, error) { return t.stats(), nil })
		if err != nil {
			continue // deleted while listing
		}
		out = append(out, v.(TenantStats))
	}
	// Map iteration above is unordered; present tenants stably by ID.
	sortStats(out)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	v, err := t.do(func() (any, error) { return t.stats(), nil })
	if err != nil {
		writeCmdErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok && t != nil {
		delete(s.tenants, id)
	}
	s.mu.Unlock()
	if !ok || t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	close(t.stop)
	<-t.exited
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	// ?partial=1 collects whatever statistics exist right now instead of
	// refusing mid-run — the snapshot a load generator takes before it
	// evicts a tenant. Collection is read-only and runs on the worker
	// goroutine, so it cannot race the simulation.
	partial := r.URL.Query().Get("partial") == "1" || r.URL.Query().Get("partial") == "true"
	v, err := t.do(func() (any, error) {
		if partial && (t.state == StateRunning || t.result == nil) {
			return t.sess.Collect()
		}
		if t.state == StateRunning {
			return nil, fmt.Errorf("tenant %s still running (%d/%d executions)", t.id, t.sess.Completed(), t.goal)
		}
		if t.result == nil {
			return nil, fmt.Errorf("tenant %s failed: %s", t.id, t.errMsg)
		}
		return t.result, nil
	})
	if err != nil {
		if errors.Is(err, ErrTenantGone) || errors.Is(err, ErrBusy) {
			writeCmdErr(w, err)
			return
		}
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleRetarget(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req retargetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	_, err := t.do(func() (any, error) {
		rt := t.sess.Runtime()
		if rt == nil {
			return nil, fmt.Errorf("configuration %s has no runtime to retarget", t.sess.Config())
		}
		return nil, rt.SetTarget(req.Stream, time.Duration(req.TargetNS))
	})
	if err != nil {
		writeDoErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream": req.Stream, "target_ns": req.TargetNS})
}

func (s *Server) handleAdmitFG(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req admitFGRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	b, err := workload.ByName(req.Bench)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Profile outside the worker: the runner cache is single-flight and
	// shared, so a cold profile stalls this request, not the simulation.
	profile, err := s.runner.Profile(req.Bench)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := t.do(func() (any, error) {
		rt := t.sess.Runtime()
		if rt == nil {
			return nil, fmt.Errorf("configuration %s cannot admit FG streams (no runtime)", t.sess.Config())
		}
		return rt.AdmitStream(b, profile, time.Duration(req.TargetNS))
	})
	if err != nil {
		writeDoErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, admitFGResponse{Stream: v.(int)})
}

func (s *Server) handleRemoveFG(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	stream, err := strconv.Atoi(r.PathValue("stream"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad stream index: %w", err))
		return
	}
	_, err = t.do(func() (any, error) {
		if rt := t.sess.Runtime(); rt != nil {
			return nil, rt.RemoveStream(stream)
		}
		return nil, t.sess.Colocation().RemoveFG(stream)
	})
	if err != nil {
		writeDoErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed_stream": stream})
}

func (s *Server) handleAdmitBG(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req admitBGRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := parseBGSpec(req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := t.do(func() (any, error) {
		if rt := t.sess.Runtime(); rt != nil {
			return rt.AdmitBG(spec)
		}
		worker, err := t.sess.Colocation().AdmitBG(spec)
		if err != nil {
			return nil, err
		}
		return worker.Task, nil
	})
	if err != nil {
		writeDoErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, admitBGResponse{Task: v.(int)})
}

func (s *Server) handleRemoveBG(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	task, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad task id: %w", err))
		return
	}
	_, err = t.do(func() (any, error) {
		if rt := t.sess.Runtime(); rt != nil {
			return nil, rt.RemoveBG(task)
		}
		return nil, t.sess.Colocation().RemoveBG(task)
	})
	if err != nil {
		writeDoErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed_task": task})
}

// handleEvents streams the tenant's live telemetry. Default framing is
// JSONL — each line exactly the internal/telemetry trace encoding; SSE
// framing when the client asks for text/event-stream (Accept header or
// ?format=sse). The stream ends when the run completes, the tenant is
// deleted, or the client disconnects; a final frame reports how many events
// this subscriber dropped to backpressure.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	sse := q.Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	buffer := s.cfg.SubscriberBuffer
	if v := q.Get("buffer"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 1<<20 {
			buffer = n
		}
	}
	quantum := q.Get("quantum") == "1" || q.Get("quantum") == "true"

	sub := t.bcast.subscribe(buffer, quantum)
	defer t.bcast.unsubscribe(sub)

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	buf := make([]byte, 0, 256)
	writeEv := func(ev telemetry.Event) bool {
		buf = buf[:0]
		if sse {
			buf = append(buf, "data: "...)
			line := telemetry.AppendJSON(nil, ev)
			buf = append(buf, line[:len(line)-1]...) // strip trailing \n
			buf = append(buf, '\n', '\n')
		} else {
			buf = telemetry.AppendJSON(buf, ev)
		}
		if _, err := w.Write(buf); err != nil {
			return false
		}
		flush()
		return true
	}

	ctx := r.Context()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Stream over: surface this subscriber's backpressure loss.
				tail := fmt.Sprintf(`{"kind":"stream_end","dropped":%d}`, sub.dropped.Load())
				if sse {
					fmt.Fprintf(w, "event: end\ndata: %s\n\n", tail)
				} else {
					fmt.Fprintln(w, tail)
				}
				flush()
				return
			}
			if !writeEv(ev) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// ---- helpers -----------------------------------------------------------

// runnerFor returns the runner for a tenant's machine class: the shared
// base runner for the empty/default class, otherwise a per-class clone of
// its sizing knobs created on first use. Clones share nothing but the
// configuration — each keeps its own profile cache, which is fine because
// profiles are class-specific anyway.
func (s *Server) runnerFor(class string) *experiment.Runner {
	if class == "" || class == s.runner.MachineClass ||
		(class == machine.DefaultClass && s.runner.MachineClass == "") {
		return s.runner
	}
	s.classMu.Lock()
	defer s.classMu.Unlock()
	r, ok := s.classRunners[class]
	if !ok {
		r = experiment.NewRunner()
		r.Executions = s.runner.Executions
		r.Warmup = s.runner.Warmup
		r.CalibExecutions = s.runner.CalibExecutions
		r.ConvergenceWarmup = s.runner.ConvergenceWarmup
		r.TimeLimit = s.runner.TimeLimit
		r.CompatStepping = s.runner.CompatStepping
		r.Recorder = s.runner.Recorder
		r.MachineClass = class
		s.classRunners[class] = r
	}
	return r
}

// tenant resolves {id} and writes a 404 when absent.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.tenants[id]
	s.mu.Unlock()
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return nil, false
	}
	return t, true
}

// joinConfigNames lists the valid configuration names for 400 messages.
func joinConfigNames() string {
	names := config.Names()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return strings.Join(out, ", ")
}

// parseBGSpec parses the "name" / "a+b" worker syntax shared with
// experiment mixes.
func parseBGSpec(s string) (sched.BGSpec, error) {
	if a, b, ok := strings.Cut(s, "+"); ok {
		ba, err := workload.ByName(a)
		if err != nil {
			return sched.BGSpec{}, err
		}
		bb, err := workload.ByName(b)
		if err != nil {
			return sched.BGSpec{}, err
		}
		return sched.BGSpec{Pair: [2]*workload.Benchmark{ba, bb}}, nil
	}
	b, err := workload.ByName(s)
	if err != nil {
		return sched.BGSpec{}, err
	}
	return sched.BGSpec{Bench: b}, nil
}

func sortStats(xs []TenantStats) {
	// IDs are "t<n>"; numeric order reads naturally in listings.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && tenantLess(xs[j].ID, xs[j-1].ID); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func tenantLess(a, b string) bool {
	na, ea := strconv.Atoi(strings.TrimPrefix(a, "t"))
	nb, eb := strconv.Atoi(strings.TrimPrefix(b, "t"))
	if ea == nil && eb == nil {
		return na < nb
	}
	return a < b
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Write errors mean the client went away; nothing useful to do.
	_, _ = w.Write(b)
	_, _ = w.Write([]byte{'\n'})
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeCmdErr maps dispatch failures (worker gone / busy).
func writeCmdErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrTenantGone):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBusy):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// writeDoErr maps control-operation failures: dispatch errors keep their
// transport status, everything else is a client-level 409 (the operation
// was understood but the simulation state refuses it).
func writeDoErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrTenantGone) || errors.Is(err, ErrBusy) {
		writeCmdErr(w, err)
		return
	}
	writeErr(w, http.StatusConflict, err)
}

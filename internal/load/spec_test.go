package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validSpecJSON is a fully populated spec exercising every optional field.
const validSpecJSON = `{
  "name": "smoke",
  "description": "test spec",
  "seed": 7,
  "duration_s": 5,
  "arrival": {"model": "bursty", "rate_per_s": 2, "burst_factor": 3, "on_s": 1, "off_s": 1},
  "lifetime": {"mean_s": 2, "min_s": 0.5},
  "retarget_rate_per_s": 0.5,
  "max_live": 8,
  "tenants": [
    {"name": "rt", "weight": 2, "mix": {"fg": ["ferret"], "bg": ["pca"]}, "target_ms": [1500]},
    {"name": "base", "config": "Baseline", "machine_class": "quad-low",
     "mix": {"fg": ["bodytrack"]}, "target_ms": [2000], "executions": 4}
  ]
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpecValid(t *testing.T) {
	path := writeSpec(t, validSpecJSON)
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" || s.Seed != 7 || s.MaxLive != 8 || len(s.Tenants) != 2 {
		t.Errorf("unexpected spec: %+v", s)
	}
	if s.File() != path {
		t.Errorf("File() = %q, want %q", s.File(), path)
	}
	if got := s.Template("base"); got == nil || got.ConfigName() != "Baseline" {
		t.Errorf("Template(base) = %+v", got)
	}
	if got := s.Template("rt"); got == nil || got.ConfigName() != DefaultConfig ||
		got.ExecutionGoal() != DefaultExecutions {
		t.Errorf("rt defaults not applied: %+v", got)
	}
	if s.Template("nope") != nil {
		t.Error("Template(nope) should be nil")
	}
}

// Unknown fields must be rejected so a typoed knob fails loudly instead of
// silently generating the wrong load.
func TestLoadSpecUnknownField(t *testing.T) {
	path := writeSpec(t, strings.Replace(validSpecJSON, `"max_live"`, `"maxlive"`, 1))
	_, err := LoadSpec(path)
	if err == nil || !strings.Contains(err.Error(), "maxlive") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
}

func TestLoadSpecBadValues(t *testing.T) {
	cases := []struct {
		name, old, new, want string
	}{
		{"negative rate", `"rate_per_s": 2`, `"rate_per_s": -2`, "rate_per_s"},
		{"zero duration", `"duration_s": 5`, `"duration_s": 0`, "duration_s"},
		{"bad model", `"model": "bursty"`, `"model": "linear"`, "unknown model"},
		{"burst below one", `"burst_factor": 3`, `"burst_factor": 0.5`, "burst_factor"},
		{"zero lifetime", `"mean_s": 2`, `"mean_s": 0`, "mean_s"},
		{"negative retarget", `"retarget_rate_per_s": 0.5`, `"retarget_rate_per_s": -1`, "retarget_rate_per_s"},
		{"bad class", `"machine_class": "quad-low"`, `"machine_class": "cray-1"`, "cray-1"},
		{"bad config", `"config": "Baseline"`, `"config": "Turbo"`, "Turbo"},
		{"bad target count", `"target_ms": [2000]`, `"target_ms": [2000, 1]`, "target_ms"},
		{"negative weight", `"weight": 2`, `"weight": -2`, "weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeSpec(t, strings.Replace(validSpecJSON, tc.old, tc.new, 1))
			_, err := LoadSpec(path)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got: %v", tc.want, err)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the offending file: %v", err)
			}
		})
	}
}

func TestLoadSpecDuplicateTemplate(t *testing.T) {
	path := writeSpec(t, strings.Replace(validSpecJSON, `"name": "base"`, `"name": "rt"`, 1))
	_, err := LoadSpec(path)
	if err == nil || !strings.Contains(err.Error(), `duplicate tenant template "rt"`) {
		t.Fatalf("duplicate template not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

func TestLoadSpecTrailingData(t *testing.T) {
	path := writeSpec(t, validSpecJSON+"\n{\"extra\": true}")
	_, err := LoadSpec(path)
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file not reported")
	}
}

// A mix that cannot fit its machine class must be rejected at load time,
// not discovered as a burst of 400s mid-replay.
func TestLoadSpecMixOverflowsClass(t *testing.T) {
	body := strings.Replace(validSpecJSON,
		`"mix": {"fg": ["bodytrack"]}`,
		`"mix": {"fg": ["bodytrack"], "bg": ["pca", "pca", "pca", "pca"]}`, 1)
	path := writeSpec(t, body)
	_, err := LoadSpec(path)
	if err == nil || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("oversized mix not rejected: %v", err)
	}
}

package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dirigent/internal/experiment"
	"dirigent/internal/server"
)

// Options tunes a replay.
type Options struct {
	// BaseURL is the dirigent-serve endpoint (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Client overrides the HTTP client (default: 30 s total timeout).
	Client *http.Client
	// Speed compresses trace time: an event at trace second t fires at
	// wall second t/Speed (default 1, real time).
	Speed float64
	// MaxInFlight bounds concurrent API operations; it defaults to the
	// shared sweep fan-out width, experiment.MaxParallel (the
	// DIRIGENT_MAX_PARALLEL machinery).
	MaxInFlight int
	// LateBudget is the open-loop drop deadline: an operation that cannot
	// start (queueing included) within this much wall time of its
	// scheduled firing is dropped and counted, not executed late.
	// 0 means the 2 s default; negative disables dropping.
	LateBudget time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

const defaultLateBudget = 2 * time.Second

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Speed <= 0 {
		o.Speed = 1
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = experiment.MaxParallel()
	}
	if o.LateBudget == 0 {
		o.LateBudget = defaultLateBudget
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// liveTenant tracks one trace tenant through the replay. The tail channel
// chains the tenant's operations FIFO: each dispatched op waits for its
// predecessor's channel, so a retarget never races its tenant's create or
// overtakes its evict, while distinct tenants proceed concurrently.
// Fields id/failed/evicted are written only by the op that owns the chain
// position and read by successors after the channel close, which orders
// the accesses.
type liveTenant struct {
	tail    chan struct{}
	id      string
	failed  bool // create dropped or rejected; successors drop themselves
	evicted bool
}

// Replay drives the trace against a dirigent-serve endpoint and returns
// the aggregated report. The spec supplies the tenant templates the
// trace's create events reference. Replay is open-loop: events fire at
// their scheduled (speed-compressed) times regardless of how the server
// keeps up; pressure shows up as API tail latency and, past LateBudget,
// as dropped events. After the last event the driver waits for in-flight
// operations, force-evicts any tenant the trace left behind, and
// reconciles against GET /v1/tenants — tenants the server still holds
// after that are reported as leaked.
func Replay(tr *Trace, s Spec, o Options) (*Report, error) {
	if o.BaseURL == "" {
		return nil, errors.New("load: replay needs a base URL")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Op == OpCreate && s.Template(ev.Template) == nil {
			return nil, fmt.Errorf("load: trace event %d references unknown template %q (spec %s)",
				ev.Seq, ev.Template, s.Name)
		}
	}
	o = o.withDefaults()

	d := &driver{opts: o, rec: newRecorder()}
	sem := make(chan struct{}, o.MaxInFlight)
	var wg sync.WaitGroup
	tenants := map[string]*liveTenant{}
	var order []*liveTenant

	creates, retargets, evicts := tr.Counts()
	o.Logf("replaying %d events (%d creates, %d retargets, %d evicts) at %gx against %s",
		len(tr.Events), creates, retargets, evicts, o.Speed, o.BaseURL)

	start := time.Now()
	for i := range tr.Events {
		ev := tr.Events[i]
		due := start.Add(time.Duration(float64(ev.AtUS) * float64(time.Microsecond) / o.Speed))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		lt := tenants[ev.Tenant]
		if ev.Op == OpCreate {
			done := make(chan struct{})
			close(done)
			lt = &liveTenant{tail: done}
			tenants[ev.Tenant] = lt
			order = append(order, lt)
		} else if lt == nil {
			// A recorded trace may reference tenants created before the
			// recording started; nothing to drive them against.
			d.rec.drop(ev.Op)
			continue
		}
		prev := lt.tail
		done := make(chan struct{})
		lt.tail = done
		wg.Add(1)
		go func(ev Event, lt *liveTenant) {
			defer wg.Done()
			defer close(done)
			<-prev
			sem <- struct{}{}
			defer func() { <-sem }()
			if o.LateBudget >= 0 && time.Since(due) > o.LateBudget {
				d.rec.drop(ev.Op)
				if ev.Op == OpCreate {
					lt.failed = true
				}
				return
			}
			if ev.Op != OpCreate && lt.failed {
				d.rec.drop(ev.Op)
				return
			}
			switch ev.Op {
			case OpCreate:
				d.create(ev, s.Template(ev.Template), lt)
			case OpRetarget:
				d.retarget(ev, lt)
			case OpEvict:
				d.evict(lt)
			}
		}(ev, lt)
	}
	wg.Wait()

	// Drain: the trace schedules an evict for every synthesized tenant,
	// but a dropped or failed evict — or a foreign trace — can leave
	// tenants behind; delete them so leak accounting reflects the server,
	// not the schedule.
	drained := 0
	for _, lt := range order {
		if lt.id != "" && !lt.evicted {
			if d.deleteTenant(lt.id) == nil {
				drained++
			}
		}
	}

	leaked, err := d.listTenants()
	if err != nil {
		return nil, fmt.Errorf("load: reconcile tenants: %w", err)
	}

	rep := d.rec.report()
	rep.Spec = tr.Spec
	rep.Seed = tr.Seed
	rep.TraceEvents = len(tr.Events)
	rep.Creates, rep.Retargets, rep.Evicts = creates, retargets, evicts
	rep.Suppressed = tr.Suppressed
	rep.Speed = o.Speed
	rep.MaxInFlight = o.MaxInFlight
	rep.WallS = time.Since(start).Seconds()
	rep.DrainEvicted = drained
	rep.Leaked = len(leaked)
	rep.LeakedIDs = leaked
	return rep, nil
}

// driver bundles the HTTP plumbing of one replay.
type driver struct {
	opts Options
	rec  *recorder
}

func (d *driver) create(ev Event, tmpl *TenantTemplate, lt *liveTenant) {
	req := server.CreateTenantRequest{
		Name: ev.Tenant,
		// The mix name doubles as the tenant's deterministic seed source,
		// so distinct tenants run distinct (but reproducible) simulations.
		Mix:          server.MixSpec{Name: ev.Tenant, FG: tmpl.Mix.FG, BG: tmpl.Mix.BG},
		Config:       tmpl.ConfigName(),
		Policy:       tmpl.Policy,
		MachineClass: tmpl.MachineClass,
		Executions:   tmpl.ExecutionGoal(),
	}
	for _, ms := range tmpl.TargetMS {
		req.TargetsNS = append(req.TargetsNS, int64(ms*float64(time.Millisecond)))
		// Explicit deadlines make QoS success-rate accounting work for
		// non-runtime configurations (Baseline templates) too.
		req.DeadlinesS = append(req.DeadlinesS, ms/1000)
	}
	var resp struct {
		ID string `json:"id"`
	}
	err := d.call(OpCreate, http.MethodPost, "/v1/tenants", req, &resp)
	if err != nil || resp.ID == "" {
		if err == nil {
			err = fmt.Errorf("create %s: empty tenant id", ev.Tenant)
		}
		d.rec.fail(OpCreate, err)
		lt.failed = true
		return
	}
	lt.id = resp.ID
}

func (d *driver) retarget(ev Event, lt *liveTenant) {
	body := map[string]any{"stream": ev.Stream, "target_ns": ev.TargetUS * 1000}
	if err := d.call(OpRetarget, http.MethodPost, "/v1/tenants/"+lt.id+"/targets", body, nil); err != nil {
		d.rec.fail(OpRetarget, err)
	}
}

// evict snapshots the tenant's QoS mid-run (partial result) and deletes
// it. The snapshot is best-effort — a tenant evicted before its first
// completed execution has no per-stream statistics yet.
func (d *driver) evict(lt *liveTenant) {
	var result struct {
		Streams []struct {
			SuccessRate float64 `json:"SuccessRate"`
		} `json:"Streams"`
	}
	if err := d.call(opResult, http.MethodGet, "/v1/tenants/"+lt.id+"/result?partial=1", nil, &result); err != nil {
		d.rec.fail(opResult, err)
	} else if len(result.Streams) > 0 {
		sum := 0.0
		for _, st := range result.Streams {
			sum += st.SuccessRate
		}
		d.rec.qosSample(sum / float64(len(result.Streams)))
	}
	if err := d.call(OpEvict, http.MethodDelete, "/v1/tenants/"+lt.id, nil, nil); err != nil {
		d.rec.fail(OpEvict, err)
		return
	}
	lt.evicted = true
}

// call performs one API operation, recording its wall latency under op.
func (d *driver) call(op Op, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, d.opts.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := d.opts.Client.Do(req)
	if err != nil {
		return err
	}
	d.rec.latency(op, time.Since(start))
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, apiErr.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// deleteTenant is the drain-phase eviction (latency recorded under evict).
func (d *driver) deleteTenant(id string) error {
	return d.call(OpEvict, http.MethodDelete, "/v1/tenants/"+id, nil, nil)
}

// listTenants returns the IDs the server still holds.
func (d *driver) listTenants() ([]string, error) {
	var stats []struct {
		ID string `json:"id"`
	}
	if err := d.call(opResult, http.MethodGet, "/v1/tenants", nil, &stats); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(stats))
	for _, st := range stats {
		ids = append(ids, st.ID)
	}
	return ids, nil
}

package load

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"dirigent/internal/stats"
)

// reportOps is the fixed operation order reports aggregate and render in:
// the three trace operations plus the driver's QoS-snapshot fetch.
var reportOps = [...]Op{OpCreate, OpRetarget, opResult, OpEvict}

func opIndex(op Op) int {
	for i, o := range reportOps {
		if o == op {
			return i
		}
	}
	return len(reportOps) - 1
}

// recorder accumulates per-operation latencies, drops and failures plus
// per-tenant QoS samples during a replay. All methods are safe for
// concurrent use by the dispatch goroutines.
type recorder struct {
	mu         sync.Mutex
	latMS      [len(reportOps)][]float64
	dropped    [len(reportOps)]int
	failed     [len(reportOps)]int
	failSample string
	qos        []float64
}

func newRecorder() *recorder { return &recorder{} }

func (r *recorder) latency(op Op, d time.Duration) {
	i := opIndex(op)
	r.mu.Lock()
	r.latMS[i] = append(r.latMS[i], float64(d)/float64(time.Millisecond))
	r.mu.Unlock()
}

func (r *recorder) drop(op Op) {
	i := opIndex(op)
	r.mu.Lock()
	r.dropped[i]++
	r.mu.Unlock()
}

func (r *recorder) fail(op Op, err error) {
	i := opIndex(op)
	r.mu.Lock()
	r.failed[i]++
	if r.failSample == "" {
		r.failSample = err.Error()
	}
	r.mu.Unlock()
}

func (r *recorder) qosSample(v float64) {
	r.mu.Lock()
	r.qos = append(r.qos, v)
	r.mu.Unlock()
}

// OpStats is the per-operation slice of a report: call count, drop/fail
// counts, and the wall-latency distribution in milliseconds.
type OpStats struct {
	Op      Op      `json:"op"`
	N       int     `json:"n"`
	Dropped int     `json:"dropped"`
	Failed  int     `json:"failed"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Dist summarizes the per-tenant QoS-success samples collected at
// eviction time (mean per-stream success rate of each tenant's partial
// result).
type Dist struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// Report is the outcome of one replay.
type Report struct {
	Spec        string  `json:"spec"`
	Seed        uint64  `json:"seed"`
	TraceEvents int     `json:"trace_events"`
	Creates     int     `json:"creates"`
	Retargets   int     `json:"retargets"`
	Evicts      int     `json:"evicts"`
	Suppressed  int     `json:"suppressed"`
	Speed       float64 `json:"speed"`
	MaxInFlight int     `json:"max_inflight"`
	WallS       float64 `json:"wall_s"`

	// DroppedTotal counts events the open-loop driver abandoned because
	// they could not start within the late budget (or depended on a
	// dropped create); FailedTotal counts operations the server rejected.
	DroppedTotal int    `json:"dropped_total"`
	FailedTotal  int    `json:"failed_total"`
	FailSample   string `json:"fail_sample,omitempty"`

	// DrainEvicted counts tenants the post-trace drain had to delete;
	// Leaked counts tenants the server still held after the drain — the
	// structural invariant a healthy replay keeps at zero.
	DrainEvicted int      `json:"drain_evicted"`
	Leaked       int      `json:"leaked"`
	LeakedIDs    []string `json:"leaked_ids,omitempty"`

	API []OpStats `json:"api"`
	QoS *Dist     `json:"qos,omitempty"`
}

// report folds the recorder into a Report (trace-level fields are filled
// by the caller).
func (r *recorder) report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{FailSample: r.failSample}
	for i, op := range reportOps {
		os := OpStats{Op: op, N: len(r.latMS[i]), Dropped: r.dropped[i], Failed: r.failed[i]}
		if os.N > 0 {
			sum, err := stats.Summarize(r.latMS[i])
			if err == nil {
				os.MeanMS, os.P50MS, os.P95MS, os.P99MS, os.MaxMS =
					sum.Mean, sum.P50, sum.P95, sum.P99, sum.Max
			}
		}
		rep.DroppedTotal += os.Dropped
		rep.FailedTotal += os.Failed
		rep.API = append(rep.API, os)
	}
	if len(r.qos) > 0 {
		sum, err := stats.Summarize(r.qos)
		if err == nil {
			rep.QoS = &Dist{
				N: sum.N, Mean: sum.Mean, Min: sum.Min,
				P50: sum.P50, P95: sum.P95, P99: sum.P99,
			}
		}
	}
	return rep
}

// OpStat returns the named operation's row, or nil.
func (r *Report) OpStat(op Op) *OpStats {
	for i := range r.API {
		if r.API[i].Op == op {
			return &r.API[i]
		}
	}
	return nil
}

// Text renders the report for terminals.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load replay: spec %s seed %d\n", r.Spec, r.Seed)
	fmt.Fprintf(&b, "  trace: %d events (%d creates, %d retargets, %d evicts), %d suppressed by max_live\n",
		r.TraceEvents, r.Creates, r.Retargets, r.Evicts, r.Suppressed)
	fmt.Fprintf(&b, "  drive: %.1fs wall at %gx, %d max in-flight\n", r.WallS, r.Speed, r.MaxInFlight)
	fmt.Fprintf(&b, "  dropped %d, failed %d, drained %d, leaked %d\n",
		r.DroppedTotal, r.FailedTotal, r.DrainEvicted, r.Leaked)
	if r.FailSample != "" {
		fmt.Fprintf(&b, "  first failure: %s\n", r.FailSample)
	}
	fmt.Fprintf(&b, "  %-9s %6s %7s %7s %9s %9s %9s %9s\n",
		"api op", "n", "dropped", "failed", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, os := range r.API {
		if os.N == 0 && os.Dropped == 0 && os.Failed == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-9s %6d %7d %7d %9.2f %9.2f %9.2f %9.2f\n",
			os.Op, os.N, os.Dropped, os.Failed, os.P50MS, os.P95MS, os.P99MS, os.MaxMS)
	}
	if r.QoS != nil {
		fmt.Fprintf(&b, "  qos success (per tenant, n=%d): mean %.3f min %.3f p50 %.3f p95 %.3f p99 %.3f\n",
			r.QoS.N, r.QoS.Mean, r.QoS.Min, r.QoS.P50, r.QoS.P95, r.QoS.P99)
	} else {
		b.WriteString("  qos success: no samples (no tenant completed an execution before eviction)\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("load: encode report: %w", err)
	}
	return string(b) + "\n", nil
}

// Markdown renders the report as a table pair for CI job summaries.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Load replay — %s (seed %d)\n\n", r.Spec, r.Seed)
	fmt.Fprintf(&b, "%d events (%d creates / %d retargets / %d evicts), %.1fs wall at %gx — dropped %d, failed %d, leaked %d\n\n",
		r.TraceEvents, r.Creates, r.Retargets, r.Evicts, r.WallS, r.Speed,
		r.DroppedTotal, r.FailedTotal, r.Leaked)
	b.WriteString("| op | n | dropped | failed | p50 ms | p95 ms | p99 ms |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, os := range r.API {
		if os.N == 0 && os.Dropped == 0 && os.Failed == 0 {
			continue
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.2f | %.2f | %.2f |\n",
			os.Op, os.N, os.Dropped, os.Failed, os.P50MS, os.P95MS, os.P99MS)
	}
	if r.QoS != nil {
		fmt.Fprintf(&b, "\nQoS success per tenant (n=%d): mean %.3f, p50 %.3f, p95 %.3f, p99 %.3f\n",
			r.QoS.N, r.QoS.Mean, r.QoS.P50, r.QoS.P95, r.QoS.P99)
	}
	return b.String()
}

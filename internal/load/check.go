package load

import (
	"bytes"
	"fmt"
	"time"
)

// CheckDeterminism synthesizes the spec twice and fails unless the JSONL
// encodings are byte-identical — the property CI gates. It also checks that
// a different seed produces a different trace, so a pass is never vacuous.
func CheckDeterminism(s Spec, seed uint64) error {
	a, err := Synthesize(s, seed)
	if err != nil {
		return err
	}
	b, err := Synthesize(s, seed)
	if err != nil {
		return err
	}
	ab, bb := a.Encode(), b.Encode()
	if !bytes.Equal(ab, bb) {
		return fmt.Errorf("load: spec %s is not deterministic: two syntheses with the same seed differ (%d vs %d bytes)",
			s.Name, len(ab), len(bb))
	}
	effective := seed
	if effective == 0 {
		effective = s.Seed
	}
	c, err := Synthesize(s, effective+1)
	if err != nil {
		return err
	}
	if bytes.Equal(ab, c.Encode()) {
		return fmt.Errorf("load: spec %s: a different seed produced an identical trace — the determinism check is vacuous", s.Name)
	}
	return nil
}

// LateBudget converts a CLI milliseconds value to the Options.LateBudget
// convention: 0 keeps the default, negative disables dropping.
func LateBudget(ms float64) time.Duration {
	if ms < 0 {
		return -1
	}
	return time.Duration(ms * float64(time.Millisecond))
}

package load

import (
	"fmt"
	"math"
	"sort"

	"dirigent/internal/sim"
)

// Synthesize generates a churn trace from the spec under the given seed
// (0 uses the spec's own seed). The same spec and seed always produce the
// identical trace — every draw comes from split sim.Rand streams in a
// fixed order, timestamps are integer microseconds, and the max_live
// admission sweep is a pure function of the drawn schedule.
//
// Per arrival the generator draws, in order: the arrival time (thinned
// non-homogeneous Poisson), the template (weighted), the lifetime
// (exponential, clamped to lifetime.min_s and to the trace horizon), and —
// for runtime-configuration templates — the retarget schedule (exponential
// inter-arrivals; per retarget a stream index and a target factor in
// [0.8, 1.2) of the template's base target).
func Synthesize(s Spec, seed uint64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = s.Seed
	}
	root := sim.NewRand(seed)
	// Independent streams per draw kind: adding retargets to a spec must
	// not shift its arrival schedule.
	arrivalRng := root.Split()
	pickRng := root.Split()
	lifeRng := root.Split()
	retargetRng := root.Split()

	durUS := int64(s.DurationS * 1e6)
	peak := s.Arrival.peak()
	totalWeight := 0.0
	for _, t := range s.Tenants {
		totalWeight += t.weight()
	}

	type pending struct {
		events  []Event // create, retargets…, evict (tenant-local order)
		atUS    int64
		evictUS int64
	}
	var arrivals []pending
	n := 0
	for t := expDraw(arrivalRng, peak); t < s.DurationS; t += expDraw(arrivalRng, peak) {
		// Lewis–Shedler thinning: accept a peak-rate candidate with
		// probability rate(t)/peak.
		if arrivalRng.Float64() >= s.Arrival.rateAt(t)/peak {
			continue
		}
		tmpl := pickTemplate(s.Tenants, totalWeight, pickRng)
		atUS := int64(t * 1e6)
		life := expDraw(lifeRng, 1/s.Lifetime.MeanS)
		if life < s.Lifetime.MinS {
			life = s.Lifetime.MinS
		}
		evictUS := atUS + int64(life*1e6)
		if evictUS > durUS {
			evictUS = durUS
		}
		name := fmt.Sprintf("%s-%d", tmpl.Name, n)
		n++
		p := pending{atUS: atUS, evictUS: evictUS}
		p.events = append(p.events, Event{
			AtUS: atUS, Op: OpCreate, Tenant: name, Template: tmpl.Name,
		})
		if s.RetargetRatePerS > 0 && tmpl.useRuntime() {
			for rt := t + expDraw(retargetRng, s.RetargetRatePerS); ; rt += expDraw(retargetRng, s.RetargetRatePerS) {
				rtUS := int64(rt * 1e6)
				if rtUS >= evictUS {
					break
				}
				stream := retargetRng.Intn(len(tmpl.Mix.FG))
				factor := 0.8 + 0.4*retargetRng.Float64()
				p.events = append(p.events, Event{
					AtUS: rtUS, Op: OpRetarget, Tenant: name,
					Stream:   stream,
					TargetUS: int64(tmpl.TargetMS[stream] * 1000 * factor),
				})
			}
		}
		p.events = append(p.events, Event{AtUS: evictUS, Op: OpEvict, Tenant: name})
		arrivals = append(arrivals, p)
	}

	// Admission sweep: enforce max_live over the drawn schedule. Arrivals
	// are already time-ordered; a min-heap of evict times tracks the live
	// set. An eviction at exactly a candidate's arrival time frees its
	// slot first, matching the replay's tie-break (earlier-seq first).
	tr := &Trace{Spec: s.Name, Seed: seed, DurationUS: durUS}
	var evictHeap []int64
	for _, p := range arrivals {
		for len(evictHeap) > 0 && evictHeap[0] <= p.atUS {
			heapPop(&evictHeap)
		}
		if s.MaxLive > 0 && len(evictHeap) >= s.MaxLive {
			tr.Suppressed++
			continue
		}
		heapPush(&evictHeap, p.evictUS)
		tr.Events = append(tr.Events, p.events...)
	}

	// Global time order with emission order as the tie-break, so a
	// tenant's own events keep their causal order at equal timestamps.
	sort.SliceStable(tr.Events, func(i, j int) bool {
		return tr.Events[i].AtUS < tr.Events[j].AtUS
	})
	for i := range tr.Events {
		tr.Events[i].Seq = i
	}
	return tr, nil
}

// expDraw samples an exponential inter-arrival gap (seconds) at the given
// rate. Log1p(-u) keeps the draw finite for u near 1.
func expDraw(r *sim.Rand, rate float64) float64 {
	return -math.Log1p(-r.Float64()) / rate
}

// pickTemplate draws a template proportional to weight.
func pickTemplate(ts []TenantTemplate, total float64, r *sim.Rand) *TenantTemplate {
	u := r.Float64() * total
	for i := range ts {
		u -= ts[i].weight()
		if u < 0 {
			return &ts[i]
		}
	}
	return &ts[len(ts)-1] // float round-off: the last template absorbs it
}

// heapPush / heapPop maintain a slice-backed min-heap of evict times.
func heapPush(h *[]int64, v int64) {
	*h = append(*h, v)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func heapPop(h *[]int64) int64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && s[l] < s[small] {
			small = l
		}
		if r < len(s) && s[r] < s[small] {
			small = r
		}
		if small == i {
			break
		}
		s[small], s[i] = s[i], s[small]
		i = small
	}
	return top
}

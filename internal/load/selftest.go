package load

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"dirigent/internal/server"
)

// selfTestSpec is a tiny but fully featured spec: bursty arrivals, two
// weighted templates across configurations, retargets, and a max_live cap
// tight enough to exercise suppression.
func selfTestSpec() Spec {
	return Spec{
		Name:             "load-selftest",
		Seed:             1905,
		DurationS:        3,
		Arrival:          ArrivalSpec{Model: ModelBursty, RatePerS: 4, BurstFactor: 2, OnS: 0.5, OffS: 0.5},
		Lifetime:         LifetimeSpec{MeanS: 1, MinS: 0.1},
		RetargetRatePerS: 1,
		MaxLive:          6,
		Tenants: []TenantTemplate{
			{
				Name: "rt", Weight: 3,
				Mix:        MixSpec{FG: []string{"ferret"}, BG: []string{"pca"}},
				TargetMS:   []float64{1500},
				Executions: 6,
			},
			{
				Name: "base", Weight: 1, Config: "Baseline",
				Mix:        MixSpec{FG: []string{"ferret"}, BG: []string{"pca"}},
				TargetMS:   []float64{1500},
				Executions: 6,
			},
		},
	}
}

// SelfTest proves the load gates can fail before CI trusts them green:
//
//  1. Trace determinism — the same spec and seed must serialize to
//     byte-identical JSONL twice, and a different seed must produce a
//     different trace (so the byte comparison is not vacuously true).
//  2. The zero-drop gate — a replay strangled to one in-flight operation
//     with a zero late budget must report dropped events.
//  3. A sane replay — default settings against an in-process server must
//     finish with zero drops and zero leaked tenants.
func SelfTest(logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	spec := selfTestSpec()

	logf("load selftest: trace determinism")
	tr1, err := Synthesize(spec, 0)
	if err != nil {
		return fmt.Errorf("load: selftest synthesize: %w", err)
	}
	tr2, err := Synthesize(spec, 0)
	if err != nil {
		return fmt.Errorf("load: selftest synthesize (repeat): %w", err)
	}
	if !bytes.Equal(tr1.Encode(), tr2.Encode()) {
		return errors.New("load: selftest: same seed produced different traces")
	}
	other, err := Synthesize(spec, spec.Seed+1)
	if err != nil {
		return fmt.Errorf("load: selftest synthesize (other seed): %w", err)
	}
	if bytes.Equal(tr1.Encode(), other.Encode()) {
		return errors.New("load: selftest: different seeds produced identical traces — the determinism check cannot fail")
	}
	if len(tr1.Events) == 0 {
		return errors.New("load: selftest: synthesized trace is empty")
	}

	base, stop, err := StartLocal(server.Config{})
	if err != nil {
		return err
	}
	defer func() { _ = stop() }()

	logf("load selftest: strangled replay must drop events")
	strangled, err := Replay(tr1, spec, Options{
		BaseURL:     base,
		Speed:       20,
		MaxInFlight: 1,
		LateBudget:  time.Nanosecond,
	})
	if err != nil {
		return fmt.Errorf("load: selftest strangled replay: %w", err)
	}
	if strangled.DroppedTotal == 0 {
		return errors.New("load: selftest: zero-late-budget replay dropped nothing — the zero-drop gate cannot fail")
	}
	if strangled.Leaked != 0 {
		return fmt.Errorf("load: selftest: strangled replay leaked %d tenants (drain must clean up even under drops)", strangled.Leaked)
	}

	logf("load selftest: sane replay must be clean")
	rep, err := Replay(tr1, spec, Options{BaseURL: base, Speed: 4})
	if err != nil {
		return fmt.Errorf("load: selftest replay: %w", err)
	}
	if rep.DroppedTotal != 0 || rep.FailedTotal != 0 {
		return fmt.Errorf("load: selftest: clean replay dropped %d / failed %d (first: %s)",
			rep.DroppedTotal, rep.FailedTotal, rep.FailSample)
	}
	if rep.Leaked != 0 {
		return fmt.Errorf("load: selftest: clean replay leaked %d tenants: %v", rep.Leaked, rep.LeakedIDs)
	}
	logf("load selftest: ok (%d events, create p95 %.1f ms)",
		rep.TraceEvents, rep.OpStat(OpCreate).P95MS)
	return nil
}

// Package load is the open-loop load generator for dirigent-serve: it
// synthesizes tenant-churn arrival traces from seeded stochastic models
// (Poisson, bursty ON/OFF, diurnal) or replays recorded JSONL traces, and
// drives the server's JSON API with create/retarget/evict events at the
// trace's pace — open-loop, so a slow server does not throttle the
// generator, it accumulates queueing delay that the report surfaces as
// tail latency and dropped events.
//
// The package splits into two halves with very different determinism
// contracts:
//
//   - Trace synthesis (Spec, Synthesize, Trace) is seed-deterministic:
//     the same spec and seed reproduce the identical trace byte for byte.
//     That property is tested and gated — a trace is a versionable
//     artifact, like a scenario file or a BENCH_<n>.json baseline.
//   - Replay (Replay, Report) is wall-clock by nature: it measures a real
//     server's API latency and QoS outcomes under churn. Latencies are
//     reported (p50/p95/p99 per operation) but never gated hard; the
//     gated replay properties are the structural ones — zero leaked
//     tenants after drain, zero dropped events in the CI smoke.
//
// cmd/dirigent-load is the CLI front end; internal/benchreg records a
// seeded short-run load probe on top of the same entry points.
package load

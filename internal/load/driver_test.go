package load

import (
	"strings"
	"testing"
	"time"

	"dirigent/internal/server"
)

// TestReplayChurn is the end-to-end satellite: synthesize a churn trace,
// replay it against an in-process dirigent-serve, and assert the structural
// invariants — zero leaked tenants after drain, zero drops at a sane pace,
// and QoS samples collected at eviction time.
func TestReplayChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full in-process server")
	}
	spec := selfTestSpec()
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, stop, err := StartLocal(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	rep, err := Replay(tr, spec, Options{BaseURL: base, Speed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaked != 0 {
		t.Errorf("leaked %d tenants: %v", rep.Leaked, rep.LeakedIDs)
	}
	if rep.DroppedTotal != 0 || rep.FailedTotal != 0 {
		t.Errorf("dropped %d / failed %d (first: %s)", rep.DroppedTotal, rep.FailedTotal, rep.FailSample)
	}
	creates, _, _ := tr.Counts()
	if cs := rep.OpStat(OpCreate); cs == nil || cs.N != creates {
		t.Errorf("create stats = %+v, want n=%d", cs, creates)
	}
	if rep.QoS == nil || rep.QoS.N == 0 {
		t.Error("no QoS samples collected at eviction")
	}
	for _, render := range []string{rep.Text(), rep.Markdown()} {
		if !strings.Contains(render, "create") {
			t.Errorf("report rendering lost the create row:\n%s", render)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("JSON rendering: %v", err)
	}
}

// A strangled replay (one op in flight, zero late budget) must shed load as
// drops — never block — and the drain must still leave the server empty.
func TestReplayStrangledStillDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full in-process server")
	}
	spec := selfTestSpec()
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, stop, err := StartLocal(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop() }()

	rep, err := Replay(tr, spec, Options{
		BaseURL:     base,
		Speed:       20,
		MaxInFlight: 1,
		LateBudget:  time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedTotal == 0 {
		t.Error("zero late budget dropped nothing")
	}
	if rep.Leaked != 0 {
		t.Errorf("leaked %d tenants under drops: %v", rep.Leaked, rep.LeakedIDs)
	}
}

func TestReplayValidation(t *testing.T) {
	spec := selfTestSpec()
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, spec, Options{}); err == nil {
		t.Error("missing base URL accepted")
	}
	// A trace referencing templates the spec lacks must fail before any
	// HTTP traffic.
	bad := spec
	bad.Tenants = spec.Tenants[1:]
	if _, err := Replay(tr, bad, Options{BaseURL: "http://127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "unknown template") {
		t.Errorf("foreign template not rejected: %v", err)
	}
}

// SelfTest is what dirigent-ci -selftest runs; it must pass here too.
func TestSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three replays")
	}
	if err := SelfTest(t.Logf); err != nil {
		t.Fatal(err)
	}
}

package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"dirigent/internal/server"
)

// StartLocal boots an in-process dirigent-serve on a loopback port and
// returns its base URL plus a shutdown function that drains the HTTP
// server and every tenant worker. It backs `dirigent-load -inproc`, the
// CI load smoke, and the benchreg load probe, so none of them need an
// externally managed server.
func StartLocal(cfg server.Config) (baseURL string, shutdown func() error, err error) {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("load: local server: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on shutdown; anything else means
		// the listener died and replay calls will surface it.
		_ = hs.Serve(ln)
	}()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("load: local http shutdown: %w", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("load: local tenant drain: %w", err)
		}
		return nil
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

package load

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// TraceFormat and TraceVersion stamp the JSONL header line so a replayed
// file is recognizably a dirigent-load trace of a readable vintage.
const (
	TraceFormat  = "dirigent-load"
	TraceVersion = 1
)

// Op is a trace event's operation.
type Op string

// The three churn operations a trace drives.
const (
	OpCreate   Op = "create"
	OpRetarget Op = "retarget"
	OpEvict    Op = "evict"
)

// opResult labels the driver's mid-eviction QoS snapshot in reports; it
// never appears in traces.
const opResult Op = "result"

// Event is one trace line. Field presence follows the operation: create
// carries the template, retarget carries stream and target_us (an absent
// stream means stream 0), evict carries neither.
type Event struct {
	// Seq is the event's position in the trace (0-based, contiguous).
	Seq int `json:"seq"`
	// AtUS is the event's offset from trace start in microseconds.
	AtUS int64 `json:"at_us"`
	Op   Op    `json:"op"`
	// Tenant is the trace-scoped tenant label (not the server-assigned ID).
	Tenant   string `json:"tenant"`
	Template string `json:"template,omitempty"`
	Stream   int    `json:"stream,omitempty"`
	TargetUS int64  `json:"target_us,omitempty"`
}

// header is the first JSONL line of a serialized trace.
type header struct {
	Trace      string `json:"trace"`
	Version    int    `json:"version"`
	Spec       string `json:"spec"`
	Seed       uint64 `json:"seed"`
	DurationUS int64  `json:"duration_us"`
	Suppressed int    `json:"suppressed"`
	Events     int    `json:"events"`
}

// Trace is a synthesized or recorded churn schedule: events sorted by
// time, each tenant's create preceding its retargets and evict.
type Trace struct {
	// Spec and Seed identify the synthesis inputs ("replay"/0 for traces
	// of unknown provenance).
	Spec string
	Seed uint64
	// DurationUS is the schedule horizon in microseconds; every event
	// fires at or before it.
	DurationUS int64
	// Suppressed counts arrivals dropped at synthesis time by the spec's
	// max_live cap.
	Suppressed int
	Events     []Event
}

// Counts returns the per-operation event totals.
func (t *Trace) Counts() (creates, retargets, evicts int) {
	for _, ev := range t.Events {
		switch ev.Op {
		case OpCreate:
			creates++
		case OpRetarget:
			retargets++
		case OpEvict:
			evicts++
		}
	}
	return
}

// Write serializes the trace as JSONL: one header line, then one line per
// event. The encoding is canonical — json.Marshal with fixed field order
// and integer microsecond timestamps — so identical traces serialize to
// identical bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := header{
		Trace: TraceFormat, Version: TraceVersion,
		Spec: t.Spec, Seed: t.Seed,
		DurationUS: t.DurationUS, Suppressed: t.Suppressed,
		Events: len(t.Events),
	}
	if err := writeLine(bw, h); err != nil {
		return err
	}
	for i := range t.Events {
		if err := writeLine(bw, t.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("load: encode trace line: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// Encode returns the trace's canonical JSONL bytes (Write into memory).
func (t *Trace) Encode() []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	_ = t.Write(&buf)
	return buf.Bytes()
}

// ReadTrace parses a JSONL trace, validating the header and the event
// stream's invariants: contiguous seq numbers (a gap means truncation or
// hand-editing), non-decreasing timestamps, and known operations.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("load: read trace: %w", err)
		}
		return nil, fmt.Errorf("load: trace is empty (missing %s header line)", TraceFormat)
	}
	var h header
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("load: trace header: %w", err)
	}
	if h.Trace != TraceFormat {
		return nil, fmt.Errorf("load: trace header names format %q, want %q", h.Trace, TraceFormat)
	}
	if h.Version != TraceVersion {
		return nil, fmt.Errorf("load: trace version %d, this tool reads %d", h.Version, TraceVersion)
	}
	tr := &Trace{
		Spec: h.Spec, Seed: h.Seed,
		DurationUS: h.DurationUS, Suppressed: h.Suppressed,
		Events: make([]Event, 0, h.Events),
	}
	var prevAt int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := strictUnmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("load: trace event %d: %w", len(tr.Events), err)
		}
		if ev.Seq != len(tr.Events) {
			return nil, fmt.Errorf("load: trace event seq %d at position %d (truncated or reordered trace)", ev.Seq, len(tr.Events))
		}
		switch ev.Op {
		case OpCreate, OpRetarget, OpEvict:
		default:
			return nil, fmt.Errorf("load: trace event %d: unknown op %q", ev.Seq, ev.Op)
		}
		if ev.Tenant == "" {
			return nil, fmt.Errorf("load: trace event %d: missing tenant", ev.Seq)
		}
		if ev.AtUS < prevAt {
			return nil, fmt.Errorf("load: trace event %d: at_us %d before predecessor %d", ev.Seq, ev.AtUS, prevAt)
		}
		prevAt = ev.AtUS
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: read trace: %w", err)
	}
	if h.Events != len(tr.Events) {
		return nil, fmt.Errorf("load: trace header declares %d events, file has %d (truncated?)", h.Events, len(tr.Events))
	}
	return tr, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

package load

import (
	"bytes"
	"testing"
)

// Determinism is the gated property: the same spec and seed must serialize
// to byte-identical JSONL every time, on every platform.
func TestSynthesizeDeterministic(t *testing.T) {
	spec := selfTestSpec()
	tr1, err := Synthesize(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Synthesize(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1.Encode(), tr2.Encode()) {
		t.Fatal("same seed produced different traces")
	}
	if len(tr1.Events) == 0 {
		t.Fatal("trace is empty")
	}
	other, err := Synthesize(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(tr1.Encode(), other.Encode()) {
		t.Fatal("different seeds produced identical traces — the comparison is vacuous")
	}
}

// Seed 0 falls back to the spec's own seed.
func TestSynthesizeDefaultSeed(t *testing.T) {
	spec := selfTestSpec()
	byZero, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := Synthesize(spec, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(byZero.Encode(), bySpec.Encode()) {
		t.Fatal("seed 0 did not fall back to the spec seed")
	}
}

// A written trace must read back equal, byte-for-byte after re-encoding.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Synthesize(selfTestSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr.Encode(), back.Encode()) {
		t.Fatal("trace changed across a write/read round trip")
	}
	if back.Spec != tr.Spec || back.Seed != tr.Seed || back.Suppressed != tr.Suppressed {
		t.Errorf("header fields lost: %+v vs %+v", back, tr)
	}
}

// A truncated trace must be rejected (the header carries the event count).
func TestReadTraceTruncated(t *testing.T) {
	tr, err := Synthesize(selfTestSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	full := tr.Encode()
	cut := bytes.TrimRight(full, "\n")
	cut = cut[:bytes.LastIndexByte(cut, '\n')+1]
	if _, err := ReadTrace(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestSynthesizeStructure(t *testing.T) {
	spec := selfTestSpec()
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	durUS := int64(spec.DurationS * 1e6)
	live := map[string]bool{}
	peak := 0
	var prev int64
	for i, ev := range tr.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.AtUS < prev {
			t.Fatalf("timestamps not monotone at seq %d: %d < %d", i, ev.AtUS, prev)
		}
		prev = ev.AtUS
		if ev.AtUS < 0 || ev.AtUS > durUS {
			t.Fatalf("event %d at %d outside [0, %d]", i, ev.AtUS, durUS)
		}
		switch ev.Op {
		case OpCreate:
			if live[ev.Tenant] {
				t.Fatalf("tenant %s created twice", ev.Tenant)
			}
			if spec.Template(ev.Template) == nil {
				t.Fatalf("create %s references unknown template %q", ev.Tenant, ev.Template)
			}
			live[ev.Tenant] = true
			if len(live) > peak {
				peak = len(live)
			}
		case OpRetarget:
			if !live[ev.Tenant] {
				t.Fatalf("retarget for non-live tenant %s", ev.Tenant)
			}
			if ev.TargetUS <= 0 {
				t.Fatalf("retarget %s with target %d", ev.Tenant, ev.TargetUS)
			}
		case OpEvict:
			if !live[ev.Tenant] {
				t.Fatalf("evict for non-live tenant %s", ev.Tenant)
			}
			delete(live, ev.Tenant)
		default:
			t.Fatalf("unknown op %q", ev.Op)
		}
	}
	// Every synthesized tenant is evicted within the trace.
	if len(live) != 0 {
		t.Errorf("%d tenants never evicted: %v", len(live), live)
	}
	if spec.MaxLive > 0 && peak > spec.MaxLive {
		t.Errorf("peak live %d exceeds max_live %d", peak, spec.MaxLive)
	}
	creates, _, evicts := tr.Counts()
	if creates == 0 || creates != evicts {
		t.Errorf("creates %d, evicts %d — want equal and nonzero", creates, evicts)
	}
}

// Tightening max_live must suppress arrivals (and count them) rather than
// silently over-admitting.
func TestSynthesizeMaxLive(t *testing.T) {
	spec := selfTestSpec()
	spec.MaxLive = 2
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	uncapped := selfTestSpec()
	uncapped.MaxLive = 0
	full, err := Synthesize(uncapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, _, _ := tr.Counts()
	all, _, _ := full.Counts()
	if capped >= all {
		t.Fatalf("max_live 2 admitted %d creates, uncapped admits %d", capped, all)
	}
	if tr.Suppressed != all-capped {
		t.Errorf("suppressed %d, want %d", tr.Suppressed, all-capped)
	}
}

// Retargets are only generated for runtime configurations; a spec with only
// Baseline templates must synthesize none.
func TestSynthesizeNoRetargetForBaseline(t *testing.T) {
	spec := selfTestSpec()
	for i := range spec.Tenants {
		spec.Tenants[i].Config = "Baseline"
	}
	tr, err := Synthesize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, retargets, _ := tr.Counts(); retargets != 0 {
		t.Fatalf("baseline-only spec synthesized %d retargets", retargets)
	}
}

func TestSynthesizeRejectsInvalidSpec(t *testing.T) {
	spec := selfTestSpec()
	spec.DurationS = -1
	if _, err := Synthesize(spec, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

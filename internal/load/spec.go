package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"

	"dirigent/internal/config"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
)

// Default sizing for fields a spec may omit.
const (
	// DefaultExecutions is the per-tenant FG execution goal when a template
	// does not set one: long enough for a QoS sample, short enough that a
	// finished tenant idles cheaply until its eviction arrives.
	DefaultExecutions = 12
	// DefaultConfig is the configuration a template runs under when it does
	// not name one.
	DefaultConfig = "DirigentFreq"
)

// Arrival models.
const (
	// ModelPoisson is a homogeneous Poisson process at rate_per_s.
	ModelPoisson = "poisson"
	// ModelBursty is an ON/OFF square wave: arrivals at
	// rate_per_s*burst_factor during ON windows (on_s seconds) and
	// rate_per_s/burst_factor during OFF windows (off_s seconds).
	ModelBursty = "bursty"
	// ModelDiurnal modulates rate_per_s with a raised cosine of period
	// period_s, dipping to trough*rate_per_s at the nadir.
	ModelDiurnal = "diurnal"
)

// MixSpec names a template's workload mix (the server MixSpec shape minus
// the name, which the generator derives per tenant).
type MixSpec struct {
	FG []string `json:"fg"`
	BG []string `json:"bg"`
}

// ArrivalSpec is the tenant-arrival process. rate_per_s is the base rate;
// the bursty and diurnal models modulate it (see the Model* constants).
type ArrivalSpec struct {
	Model       string  `json:"model"`
	RatePerS    float64 `json:"rate_per_s"`
	BurstFactor float64 `json:"burst_factor,omitempty"`
	OnS         float64 `json:"on_s,omitempty"`
	OffS        float64 `json:"off_s,omitempty"`
	PeriodS     float64 `json:"period_s,omitempty"`
	Trough      float64 `json:"trough,omitempty"`
}

// peak is the thinning envelope: the maximum instantaneous rate the model
// reaches, used as the candidate rate for Lewis-Shedler thinning.
func (a ArrivalSpec) peak() float64 {
	if a.Model == ModelBursty {
		return a.RatePerS * a.BurstFactor
	}
	return a.RatePerS
}

// rateAt is the instantaneous arrival rate at trace time t (seconds).
func (a ArrivalSpec) rateAt(t float64) float64 {
	switch a.Model {
	case ModelBursty:
		cycle := a.OnS + a.OffS
		if math.Mod(t, cycle) < a.OnS {
			return a.RatePerS * a.BurstFactor
		}
		return a.RatePerS / a.BurstFactor
	case ModelDiurnal:
		depth := a.Trough + (1-a.Trough)*0.5*(1-math.Cos(2*math.Pi*t/a.PeriodS))
		return a.RatePerS * depth
	default: // poisson
		return a.RatePerS
	}
}

// LifetimeSpec draws tenant lifetimes: exponential with mean mean_s,
// clamped up to min_s so a tenant always lives long enough to be worth
// creating.
type LifetimeSpec struct {
	MeanS float64 `json:"mean_s"`
	MinS  float64 `json:"min_s,omitempty"`
}

// TenantTemplate is one (machine class × mix × policy) sample the
// generator draws tenants from, weighted by Weight (default 1).
type TenantTemplate struct {
	Name string `json:"name"`
	// Weight is the template's relative draw probability (omitted = 1).
	Weight float64 `json:"weight,omitempty"`
	// MachineClass picks the tenant's hardware (machine.ClassNames);
	// omitted = the server default class.
	MachineClass string  `json:"machine_class,omitempty"`
	Mix          MixSpec `json:"mix"`
	// Config is the system configuration (omitted = DirigentFreq).
	Config string `json:"config,omitempty"`
	// Policy is the QoS policy for runtime configurations (omitted = the
	// configuration's default, i.e. dirigent).
	Policy string `json:"policy,omitempty"`
	// TargetMS are per-FG-stream latency targets in milliseconds; they
	// also become the success-rate deadlines.
	TargetMS []float64 `json:"target_ms"`
	// Executions is the per-tenant FG execution goal (omitted =
	// DefaultExecutions).
	Executions int `json:"executions,omitempty"`
}

// weight returns the template's draw weight with the default applied.
func (t TenantTemplate) weight() float64 {
	if t.Weight == 0 {
		return 1
	}
	return t.Weight
}

// ConfigName returns the template's configuration with the default applied.
func (t TenantTemplate) ConfigName() string {
	if t.Config == "" {
		return DefaultConfig
	}
	return t.Config
}

// ExecutionGoal returns the execution count with the default applied.
func (t TenantTemplate) ExecutionGoal() int {
	if t.Executions == 0 {
		return DefaultExecutions
	}
	return t.Executions
}

// useRuntime reports whether the template's configuration drives the
// Dirigent runtime (validated specs only).
func (t TenantTemplate) useRuntime() bool {
	cfg, err := config.ByName(config.Name(t.ConfigName()))
	return err == nil && cfg.UseRuntime
}

// Spec is one declarative load specification: an arrival process, a
// lifetime model, and a weighted set of tenant templates.
type Spec struct {
	// Name identifies the spec; it is stamped into synthesized traces.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the default synthesis seed (overridable per invocation).
	Seed uint64 `json:"seed,omitempty"`
	// DurationS is the trace length in seconds.
	DurationS float64      `json:"duration_s"`
	Arrival   ArrivalSpec  `json:"arrival"`
	Lifetime  LifetimeSpec `json:"lifetime"`
	// RetargetRatePerS is the per-tenant rate of deadline-retarget events
	// (runtime-configuration templates only; 0 disables).
	RetargetRatePerS float64 `json:"retarget_rate_per_s,omitempty"`
	// MaxLive caps concurrently live tenants; arrivals past the cap are
	// suppressed at synthesis time and counted in the trace header
	// (0 = unlimited).
	MaxLive int              `json:"max_live,omitempty"`
	Tenants []TenantTemplate `json:"tenants"`

	// file is the path the spec was loaded from, for error messages
	// ("" for in-memory specs).
	file string
}

// File returns the path the spec was loaded from ("" for in-memory specs).
func (s Spec) File() string { return s.file }

// where prefixes validation errors with the source file when known.
func (s Spec) where() string {
	if s.file == "" {
		return fmt.Sprintf("load spec %q", s.Name)
	}
	return fmt.Sprintf("load spec %q (%s)", s.Name, s.file)
}

// Template returns the named tenant template, or nil.
func (s Spec) Template(name string) *TenantTemplate {
	for i := range s.Tenants {
		if s.Tenants[i].Name == name {
			return &s.Tenants[i]
		}
	}
	return nil
}

// Validate checks the spec. Errors name the source file when the spec was
// loaded from one.
func (s Spec) Validate() error {
	if s.Name == "" {
		if s.file != "" {
			return fmt.Errorf("load spec %s: missing name", s.file)
		}
		return errors.New("load spec: missing name")
	}
	if strings.TrimSpace(s.Name) != s.Name || strings.ContainsAny(s.Name, " \t\n") {
		return fmt.Errorf("%s: name must not contain whitespace", s.where())
	}
	if s.DurationS <= 0 {
		return fmt.Errorf("%s: duration_s %g must be positive", s.where(), s.DurationS)
	}
	if err := s.Arrival.validate(); err != nil {
		return fmt.Errorf("%s: %w", s.where(), err)
	}
	if s.Lifetime.MeanS <= 0 {
		return fmt.Errorf("%s: lifetime.mean_s %g must be positive", s.where(), s.Lifetime.MeanS)
	}
	if s.Lifetime.MinS < 0 {
		return fmt.Errorf("%s: lifetime.min_s %g must not be negative", s.where(), s.Lifetime.MinS)
	}
	if s.RetargetRatePerS < 0 {
		return fmt.Errorf("%s: retarget_rate_per_s %g must not be negative", s.where(), s.RetargetRatePerS)
	}
	if s.MaxLive < 0 {
		return fmt.Errorf("%s: max_live %d must not be negative", s.where(), s.MaxLive)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("%s: needs at least one tenant template", s.where())
	}
	seen := map[string]bool{}
	for i, t := range s.Tenants {
		if err := s.validateTemplate(t); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("%s: duplicate tenant template %q (template %d)", s.where(), t.Name, i)
		}
		seen[t.Name] = true
	}
	return nil
}

func (a ArrivalSpec) validate() error {
	switch a.Model {
	case ModelPoisson:
	case ModelBursty:
		if a.BurstFactor < 1 {
			return fmt.Errorf("arrival: bursty burst_factor %g must be >= 1", a.BurstFactor)
		}
		if a.OnS <= 0 || a.OffS <= 0 {
			return fmt.Errorf("arrival: bursty on_s/off_s must be positive (got %g/%g)", a.OnS, a.OffS)
		}
	case ModelDiurnal:
		if a.PeriodS <= 0 {
			return fmt.Errorf("arrival: diurnal period_s %g must be positive", a.PeriodS)
		}
		if a.Trough < 0 || a.Trough > 1 {
			return fmt.Errorf("arrival: diurnal trough %g outside [0,1]", a.Trough)
		}
	default:
		return fmt.Errorf("arrival: unknown model %q (valid: %s, %s, %s)",
			a.Model, ModelPoisson, ModelBursty, ModelDiurnal)
	}
	if a.RatePerS <= 0 {
		return fmt.Errorf("arrival: rate_per_s %g must be positive", a.RatePerS)
	}
	return nil
}

func (s Spec) validateTemplate(t TenantTemplate) error {
	at := func(format string, args ...any) error {
		return fmt.Errorf("%s: template %q: %s", s.where(), t.Name, fmt.Sprintf(format, args...))
	}
	if t.Name == "" {
		return fmt.Errorf("%s: template with empty name", s.where())
	}
	if strings.ContainsAny(t.Name, " \t\n") {
		return at("name must not contain whitespace")
	}
	if t.Weight < 0 {
		return at("weight %g must not be negative", t.Weight)
	}
	class := t.MachineClass
	if class == "" {
		class = machine.DefaultClass
	}
	mcfg, err := machine.ClassConfig(class)
	if err != nil {
		return at("%v", err)
	}
	if len(t.Mix.FG) == 0 {
		return at("mix needs at least one fg stream")
	}
	if need := len(t.Mix.FG) + len(t.Mix.BG); need > mcfg.Cores {
		return at("mix needs %d cores, class %s has %d", need, class, mcfg.Cores)
	}
	if _, err := config.ByName(config.Name(t.ConfigName())); err != nil {
		return at("%v", err)
	}
	if t.Policy != "" && !policy.Valid(t.Policy) {
		return at("unknown policy %q (valid: %s)", t.Policy, strings.Join(policy.Names(), ", "))
	}
	if len(t.TargetMS) != len(t.Mix.FG) {
		return at("%d target_ms entries for %d fg streams", len(t.TargetMS), len(t.Mix.FG))
	}
	for i, ms := range t.TargetMS {
		if ms <= 0 {
			return at("target_ms[%d] %g must be positive", i, ms)
		}
	}
	if t.Executions < 0 {
		return at("executions %d must not be negative", t.Executions)
	}
	return nil
}

// LoadSpec parses and validates one load-spec file. Unknown fields and
// trailing data are rejected — a typoed rate must fail loudly, not
// silently generate the wrong load.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("load spec: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("load spec %s: %w", path, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("load spec %s: trailing data after spec object", path)
	}
	s.file = path
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Package config defines the five system configurations the paper
// evaluates (§5.4):
//
//   - Baseline: all cores at maximum frequency, free contention for the
//     shared LLC; no management at all. Highest BG throughput, poor FG
//     predictability.
//   - StaticFreq: FG cores at maximum frequency, BG cores statically at the
//     slowest speed (1.2 GHz); shared LLC.
//   - StaticBoth: the best static cache partition plus the best static BG
//     frequency — representative of coarse-grained prior schemes such as
//     Heracles in this scenario (the paper's reading, §5.4).
//   - DirigentFreq: Dirigent's fine time scale control only (DVFS +
//     pausing), no cache partitioning.
//   - Dirigent: the full system — fine time scale control plus coarse time
//     scale cache partitioning.
//
// The two static configurations are "semi-static": their parameters are
// tuned offline per workload mix, exactly as the paper tunes them (the best
// static partition is verified near-optimal against Dirigent's heuristic;
// the BG frequency is the best fixed choice). The experiment harness
// performs that offline calibration.
package config

import "fmt"

// Name identifies a configuration.
type Name string

// The five evaluated configurations.
const (
	Baseline     Name = "Baseline"
	StaticFreq   Name = "StaticFreq"
	StaticBoth   Name = "StaticBoth"
	DirigentFreq Name = "DirigentFreq"
	Dirigent     Name = "Dirigent"
)

// Config describes how a workload mix is to be run.
type Config struct {
	// Name is the configuration identity.
	Name Name
	// UseRuntime enables the Dirigent runtime (fine control).
	UseRuntime bool
	// RuntimePartitioning enables the coarse (partition) controller; only
	// meaningful with UseRuntime.
	RuntimePartitioning bool
	// StaticBGMinFreq pins BG cores to the lowest frequency level.
	StaticBGMinFreq bool
	// CalibratedStatic requests offline calibration of a static partition
	// and static BG frequency (StaticBoth).
	CalibratedStatic bool
	// Policy names the QoS policy driving the runtime (internal/policy
	// registry name); empty means the default Dirigent policy. Only
	// meaningful with UseRuntime.
	Policy string
	// Description is a one-line summary for reports.
	Description string
}

// ByName returns the named configuration.
func ByName(n Name) (Config, error) {
	for _, c := range All() {
		if c.Name == n {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("config: unknown configuration %q", n)
}

// MustByName is ByName that panics on an unknown name.
func MustByName(n Name) Config {
	c, err := ByName(n)
	if err != nil {
		panic(err)
	}
	return c
}

// All returns the five configurations in the paper's presentation order.
func All() []Config {
	return []Config{
		{
			Name:        Baseline,
			Description: "all cores at max frequency, free contention",
		},
		{
			Name:            StaticFreq,
			StaticBGMinFreq: true,
			Description:     "FG cores at max, BG cores statically at 1.2 GHz",
		},
		{
			Name:             StaticBoth,
			CalibratedStatic: true,
			Description:      "best static partition + best static BG frequency",
		},
		{
			Name:        DirigentFreq,
			UseRuntime:  true,
			Description: "Dirigent fine time scale control only (no partitioning)",
		},
		{
			Name:                Dirigent,
			UseRuntime:          true,
			RuntimePartitioning: true,
			Description:         "full Dirigent: fine control + coarse cache partitioning",
		},
	}
}

// Names returns the configuration names in order.
func Names() []Name {
	all := All()
	out := make([]Name, len(all))
	for i, c := range all {
		out[i] = c.Name
	}
	return out
}

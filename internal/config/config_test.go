package config

import "testing"

func TestAllFiveConfigs(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() = %d configs, want 5", len(all))
	}
	want := []Name{Baseline, StaticFreq, StaticBoth, DirigentFreq, Dirigent}
	for i, c := range all {
		if c.Name != want[i] {
			t.Errorf("config %d = %s, want %s", i, c.Name, want[i])
		}
		if c.Description == "" {
			t.Errorf("%s has no description", c.Name)
		}
	}
	if got := Names(); len(got) != 5 || got[0] != Baseline || got[4] != Dirigent {
		t.Errorf("Names = %v", got)
	}
}

func TestConfigSemantics(t *testing.T) {
	base := MustByName(Baseline)
	if base.UseRuntime || base.StaticBGMinFreq || base.CalibratedStatic {
		t.Errorf("Baseline should be unmanaged: %+v", base)
	}
	sf := MustByName(StaticFreq)
	if !sf.StaticBGMinFreq || sf.UseRuntime {
		t.Errorf("StaticFreq wrong: %+v", sf)
	}
	sb := MustByName(StaticBoth)
	if !sb.CalibratedStatic || sb.UseRuntime {
		t.Errorf("StaticBoth wrong: %+v", sb)
	}
	df := MustByName(DirigentFreq)
	if !df.UseRuntime || df.RuntimePartitioning {
		t.Errorf("DirigentFreq wrong: %+v", df)
	}
	d := MustByName(Dirigent)
	if !d.UseRuntime || !d.RuntimePartitioning {
		t.Errorf("Dirigent wrong: %+v", d)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic")
		}
	}()
	MustByName("nope")
}

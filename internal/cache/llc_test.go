package cache

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const quantum = 100 * time.Microsecond

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Bytes: 0, Ways: 20}); err == nil {
		t.Error("zero bytes should error")
	}
	if _, err := New(Config{Bytes: 1 << 20, Ways: 0}); err == nil {
		t.Error("zero ways should error")
	}
	l := MustNew(DefaultConfig())
	if l.Ways() != 20 {
		t.Errorf("Ways = %d", l.Ways())
	}
	if l.TotalBytes() != float64(15<<20) {
		t.Errorf("TotalBytes = %g", l.TotalBytes())
	}
	if got := l.WayBytes(); got != float64(15<<20)/20 {
		t.Errorf("WayBytes = %g", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestPartitionManagement(t *testing.T) {
	l := MustNew(DefaultConfig())
	fg := l.DefineClass()
	bg := l.DefineClass()
	if err := l.SetPartition(map[ClassID]int{0: 0, fg: 5, bg: 15}); err != nil {
		t.Fatal(err)
	}
	w, err := l.ClassWays(fg)
	if err != nil || w != 5 {
		t.Errorf("ClassWays(fg) = %d, %v", w, err)
	}
	b, err := l.ClassBytes(bg)
	if err != nil || b != 15*l.WayBytes() {
		t.Errorf("ClassBytes(bg) = %g, %v", b, err)
	}
	// Over-allocation rejected.
	if err := l.SetPartition(map[ClassID]int{fg: 21}); err == nil {
		t.Error("over-allocation should error")
	}
	// Negative rejected.
	if err := l.SetPartition(map[ClassID]int{fg: -1}); err == nil {
		t.Error("negative ways should error")
	}
	// Unknown class rejected.
	if err := l.SetPartition(map[ClassID]int{99: 1}); err == nil {
		t.Error("unknown class should error")
	}
	if _, err := l.ClassWays(99); err == nil {
		t.Error("ClassWays(unknown) should error")
	}
	if _, err := l.ClassBytes(99); err == nil {
		t.Error("ClassBytes(unknown) should error")
	}
	// Partial update keeps unmentioned classes.
	if err := l.SetPartition(map[ClassID]int{fg: 4}); err != nil {
		t.Fatal(err)
	}
	w, _ = l.ClassWays(bg)
	if w != 15 {
		t.Errorf("bg ways after partial update = %d, want 15", w)
	}
}

func TestPartitionPartialUpdateOverflow(t *testing.T) {
	l := MustNew(Config{Bytes: 1 << 20, Ways: 10})
	fg := l.DefineClass()
	if err := l.SetPartition(map[ClassID]int{0: 5, fg: 5}); err != nil {
		t.Fatal(err)
	}
	// Raising fg alone to 6 would total 11 > 10: must fail and leave state
	// unchanged.
	if err := l.SetPartition(map[ClassID]int{fg: 6}); err == nil {
		t.Fatal("overflow through partial update should error")
	}
	w, _ := l.ClassWays(fg)
	if w != 5 {
		t.Errorf("failed update mutated state: fg ways = %d", w)
	}
}

func TestRegisterUnregister(t *testing.T) {
	l := MustNew(DefaultConfig())
	if err := l.Register(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(1, ClassID(42)); err == nil {
		t.Error("register to unknown class should error")
	}
	if got := l.Occupancy(1); got != 0 {
		t.Errorf("initial occupancy = %g", got)
	}
	if got := l.Occupancy(999); got != 0 {
		t.Errorf("unknown task occupancy = %g", got)
	}
	l.Unregister(1)
	if got := l.Occupancy(1); got != 0 {
		t.Errorf("occupancy after unregister = %g", got)
	}
}

func TestHitRateGrowsWithOccupancy(t *testing.T) {
	l := MustNew(DefaultConfig())
	if err := l.Register(1, 0); err != nil {
		t.Fatal(err)
	}
	wss := 4.0 * (1 << 20)
	if hr := l.HitRate(1, wss, 0.9); hr != 0 {
		t.Errorf("cold hit rate = %g, want 0", hr)
	}
	// Warm the cache: sustained misses fill occupancy.
	prev := 0.0
	for i := 0; i < 2000; i++ {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 5000, MissRate: 1 - l.HitRate(1, wss, 0.9), WSS: wss}})
		hr := l.HitRate(1, wss, 0.9)
		if hr < prev-1e-9 {
			t.Fatalf("hit rate decreased while warming: %g -> %g", prev, hr)
		}
		prev = hr
	}
	if prev < 0.85 {
		t.Errorf("warmed hit rate = %g, want near locality 0.9", prev)
	}
	if prev > 0.9+1e-9 {
		t.Errorf("hit rate %g exceeds locality bound 0.9", prev)
	}
}

func TestHitRateClampsLocality(t *testing.T) {
	l := MustNew(DefaultConfig())
	_ = l.Register(1, 0)
	// Force occupancy via warming, then query with out-of-range locality.
	for i := 0; i < 500; i++ {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 10000, MissRate: 0.5, WSS: 1 << 20}})
	}
	if hr := l.HitRate(1, 1<<20, 1.5); hr > 1 {
		t.Errorf("hit rate with locality>1 = %g", hr)
	}
	if hr := l.HitRate(1, 1<<20, -0.5); hr != 0 {
		t.Errorf("hit rate with locality<0 = %g", hr)
	}
	if hr := l.HitRate(1, 0, 0.9); hr != 0 {
		t.Errorf("hit rate with zero wss = %g", hr)
	}
	if hr := l.HitRate(42, 1<<20, 0.9); hr != 0 {
		t.Errorf("hit rate of unknown task = %g", hr)
	}
}

func TestApplyReturnsMissCounts(t *testing.T) {
	l := MustNew(DefaultConfig())
	_ = l.Register(1, 0)
	misses := l.Apply(quantum, []Traffic{{Task: 1, Accesses: 1000, MissRate: 0.25, WSS: 1 << 20}})
	if got := misses[1]; got != 250 {
		t.Errorf("misses = %g, want 250", got)
	}
	// Unknown tasks are skipped silently.
	misses = l.Apply(quantum, []Traffic{{Task: 7, Accesses: 1000, MissRate: 1, WSS: 1 << 20}})
	if _, ok := misses[7]; ok {
		t.Error("unknown task should not appear in miss map")
	}
	// Miss rate clamping.
	misses = l.Apply(quantum, []Traffic{{Task: 1, Accesses: 100, MissRate: 2.0, WSS: 1 << 20}})
	if misses[1] != 100 {
		t.Errorf("clamped misses = %g, want 100", misses[1])
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Two tasks in disjoint classes must not steal each other's occupancy.
	l := MustNew(DefaultConfig())
	fg := l.DefineClass()
	bg := l.DefineClass()
	if err := l.SetPartition(map[ClassID]int{0: 0, fg: 10, bg: 10}); err != nil {
		t.Fatal(err)
	}
	_ = l.Register(1, fg)
	_ = l.Register(2, bg)
	wss1 := 4.0 * (1 << 20)
	wss2 := 64.0 * (1 << 20) // streaming giant
	for i := 0; i < 3000; i++ {
		l.Apply(quantum, []Traffic{
			{Task: 1, Accesses: 3000, MissRate: 1 - l.HitRate(1, wss1, 0.9), WSS: wss1},
			{Task: 2, Accesses: 20000, MissRate: 1 - l.HitRate(2, wss2, 0.6), WSS: wss2},
		})
	}
	// FG working set (4MB) fits in its 7.5MB partition: occupancy ~ wss.
	occ1 := l.Occupancy(1)
	if occ1 < 0.9*wss1 {
		t.Errorf("isolated FG occupancy = %g, want ~%g", occ1, wss1)
	}
	// BG must not exceed its own partition.
	occ2 := l.Occupancy(2)
	if occ2 > 10*l.WayBytes()*1.001 {
		t.Errorf("BG occupancy %g exceeds its partition %g", occ2, 10*l.WayBytes())
	}
}

func TestSharedClassContention(t *testing.T) {
	// In a shared class, a high-traffic task squeezes a low-traffic task.
	l := MustNew(DefaultConfig())
	_ = l.Register(1, 0)
	_ = l.Register(2, 0)
	wss1 := 8.0 * (1 << 20)
	wss2 := 64.0 * (1 << 20)
	// Warm task 1 alone first.
	for i := 0; i < 2000; i++ {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 3000, MissRate: 1 - l.HitRate(1, wss1, 0.9), WSS: wss1}})
	}
	occAlone := l.Occupancy(1)
	// Add aggressive streamer.
	for i := 0; i < 3000; i++ {
		l.Apply(quantum, []Traffic{
			{Task: 1, Accesses: 3000, MissRate: 1 - l.HitRate(1, wss1, 0.9), WSS: wss1},
			{Task: 2, Accesses: 30000, MissRate: 1 - l.HitRate(2, wss2, 0.5), WSS: wss2},
		})
	}
	occContended := l.Occupancy(1)
	if occContended >= occAlone {
		t.Errorf("contention should shrink occupancy: alone %g, contended %g", occAlone, occContended)
	}
}

func TestCacheInertia(t *testing.T) {
	// After a partition shrink, occupancy must drain gradually, not jump.
	l := MustNew(DefaultConfig())
	fg := l.DefineClass()
	bg := l.DefineClass()
	if err := l.SetPartition(map[ClassID]int{0: 0, fg: 15, bg: 5}); err != nil {
		t.Fatal(err)
	}
	_ = l.Register(1, fg)
	wss := 10.0 * (1 << 20)
	step := func() {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 3000, MissRate: 1 - l.HitRate(1, wss, 0.9), WSS: wss}})
	}
	for i := 0; i < 5000; i++ {
		step()
	}
	before := l.Occupancy(1)
	if before < 8*(1<<20) {
		t.Fatalf("warmup failed: occupancy %g", before)
	}
	// Shrink FG partition to 2 ways (1.5MB).
	if err := l.SetPartition(map[ClassID]int{fg: 2, bg: 18}); err != nil {
		t.Fatal(err)
	}
	step()
	after1 := l.Occupancy(1)
	if after1 < before*0.5 {
		t.Errorf("occupancy collapsed instantly: %g -> %g", before, after1)
	}
	// But it must eventually converge under the new cap.
	for i := 0; i < 20000; i++ {
		step()
	}
	final := l.Occupancy(1)
	if final > 2*l.WayBytes()*1.01 {
		t.Errorf("occupancy %g did not converge under new partition %g", final, 2*l.WayBytes())
	}
}

func TestZeroWayClassDrains(t *testing.T) {
	l := MustNew(DefaultConfig())
	cl := l.DefineClass() // zero ways
	_ = l.Register(1, cl)
	for i := 0; i < 100; i++ {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 1000, MissRate: 0.5, WSS: 1 << 20}})
	}
	if occ := l.Occupancy(1); occ > 1 {
		t.Errorf("zero-way class retained occupancy %g", occ)
	}
	if hr := l.HitRate(1, 1<<20, 0.9); hr > 0.01 {
		t.Errorf("zero-way class hit rate = %g", hr)
	}
}

func TestPausedTaskLosesOccupancyToActive(t *testing.T) {
	l := MustNew(DefaultConfig())
	_ = l.Register(1, 0)
	_ = l.Register(2, 0)
	wss := 8.0 * (1 << 20)
	for i := 0; i < 3000; i++ {
		l.Apply(quantum, []Traffic{{Task: 1, Accesses: 5000, MissRate: 1 - l.HitRate(1, wss, 0.9), WSS: wss}})
	}
	occ := l.Occupancy(1)
	// Task 1 pauses; task 2 streams.
	for i := 0; i < 3000; i++ {
		l.Apply(quantum, []Traffic{{Task: 2, Accesses: 30000, MissRate: 0.8, WSS: 64 << 20}})
	}
	if got := l.Occupancy(1); got >= occ*0.5 {
		t.Errorf("paused task kept %g of %g occupancy under pressure", got, occ)
	}
}

func TestOccupancyConservationProperty(t *testing.T) {
	// Property: total occupancy within a class never exceeds class capacity
	// by more than rounding, for random traffic patterns.
	f := func(seed uint64) bool {
		l := MustNew(Config{Bytes: 4 << 20, Ways: 8})
		_ = l.Register(1, 0)
		_ = l.Register(2, 0)
		_ = l.Register(3, 0)
		s := seed
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%1000) / 1000
		}
		for i := 0; i < 500; i++ {
			tr := []Traffic{
				{Task: 1, Accesses: 20000 * next(), MissRate: next(), WSS: 2 << 20},
				{Task: 2, Accesses: 20000 * next(), MissRate: next(), WSS: 8 << 20},
				{Task: 3, Accesses: 20000 * next(), MissRate: next(), WSS: 1 << 20},
			}
			l.Apply(quantum, tr)
			total := l.Occupancy(1) + l.Occupancy(2) + l.Occupancy(3)
			if total > l.TotalBytes()*1.01 {
				return false
			}
			if l.Occupancy(1) < 0 || l.Occupancy(2) < 0 || l.Occupancy(3) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumSplitsByTraffic(t *testing.T) {
	// Two identical tasks sharing a class converge to equal occupancy.
	l := MustNew(DefaultConfig())
	_ = l.Register(1, 0)
	_ = l.Register(2, 0)
	wss := 32.0 * (1 << 20)
	for i := 0; i < 10000; i++ {
		l.Apply(quantum, []Traffic{
			{Task: 1, Accesses: 10000, MissRate: 1 - l.HitRate(1, wss, 0.8), WSS: wss},
			{Task: 2, Accesses: 10000, MissRate: 1 - l.HitRate(2, wss, 0.8), WSS: wss},
		})
	}
	o1, o2 := l.Occupancy(1), l.Occupancy(2)
	if math.Abs(o1-o2)/math.Max(o1, o2) > 0.05 {
		t.Errorf("symmetric tasks diverged: %g vs %g", o1, o2)
	}
}

// TestApplyFastMatchesApply pins the skip-ahead variant of the occupancy
// update to the reference implementation bit for bit. Two caches replay the
// same history — shared and partitioned classes, a mid-run class move, a
// partition shrink to zero ways and back, tasks pausing in and out of the
// traffic slice, an unregistered task, and WSS-capped equilibria — one
// through Apply, one through ApplyFast (with handles resolved, and
// periodically left nil to cover the lookup fallback). Every task's
// occupancy must stay exactly equal the whole way, as must HitRate vs
// HitRateRef, because the machine's two step engines are only byte-identical
// if the subsystems they call are.
func TestApplyFastMatchesApply(t *testing.T) {
	ref := MustNew(DefaultConfig())
	fst := MustNew(DefaultConfig())
	newClasses := func(l *LLC) []ClassID {
		cs := []ClassID{0, l.DefineClass(), l.DefineClass()}
		if err := l.SetPartition(map[ClassID]int{0: 4, cs[1]: 10, cs[2]: 6}); err != nil {
			t.Fatal(err)
		}
		return cs
	}
	refC, fstC := newClasses(ref), newClasses(fst)

	const nTasks = 5
	classOf := []int{0, 1, 1, 2, 2} // index into the class slices, per task-1
	wss := []float64{2 << 20, 6 << 20, 24 << 20, 1 << 20, 12 << 20}
	loc := []float64{0.95, 0.9, 0.6, 0.99, 0.7}
	acc := []float64{3000, 5000, 20000, 800, 9000}
	refs := make([]*TaskRef, nTasks)
	for i := 0; i < nTasks; i++ {
		if err := ref.Register(i+1, refC[classOf[i]]); err != nil {
			t.Fatal(err)
		}
		if err := fst.Register(i+1, fstC[classOf[i]]); err != nil {
			t.Fatal(err)
		}
		refs[i] = fst.Ref(i + 1)
	}

	for step := 0; step < 4000; step++ {
		switch step {
		case 1500: // class move: handles must survive it
			if err := ref.Register(2, refC[2]); err != nil {
				t.Fatal(err)
			}
			if err := fst.Register(2, fstC[2]); err != nil {
				t.Fatal(err)
			}
		case 2500: // shrink a class to zero ways: fast-drain path
			if err := ref.SetPartition(map[ClassID]int{refC[2]: 0}); err != nil {
				t.Fatal(err)
			}
			if err := fst.SetPartition(map[ClassID]int{fstC[2]: 0}); err != nil {
				t.Fatal(err)
			}
		case 3000:
			if err := ref.SetPartition(map[ClassID]int{refC[2]: 6}); err != nil {
				t.Fatal(err)
			}
			if err := fst.SetPartition(map[ClassID]int{fstC[2]: 6}); err != nil {
				t.Fatal(err)
			}
		}
		var refTr, fstTr []Traffic
		for i := 0; i < nTasks; i++ {
			if (step+i)%7 == 0 { // periodic pauses exercise pass 3
				continue
			}
			hr := ref.HitRate(i+1, wss[i], loc[i])
			hf := fst.HitRateRef(refs[i], wss[i], loc[i])
			if hr != hf {
				t.Fatalf("step %d task %d: HitRate %g != HitRateRef %g", step, i+1, hr, hf)
			}
			refTr = append(refTr, Traffic{Task: i + 1, Accesses: acc[i], MissRate: 1 - hr, WSS: wss[i]})
			r := refs[i]
			if step%11 == 0 {
				r = nil // cover ApplyFast's lookup fallback
			}
			fstTr = append(fstTr, Traffic{Task: i + 1, Accesses: acc[i], MissRate: 1 - hf, WSS: wss[i], Ref: r})
		}
		if step%13 == 0 { // unregistered task: both variants must skip it
			refTr = append(refTr, Traffic{Task: 99, Accesses: 1000, MissRate: 0.5, WSS: 1 << 20})
			fstTr = append(fstTr, Traffic{Task: 99, Accesses: 1000, MissRate: 0.5, WSS: 1 << 20})
		}
		ref.Apply(quantum, refTr)
		fst.ApplyFast(quantum, fstTr)
		for i := 0; i < nTasks; i++ {
			if ro, fo := ref.Occupancy(i+1), fst.Occupancy(i+1); ro != fo {
				t.Fatalf("step %d task %d: occupancy diverged: Apply %g, ApplyFast %g", step, i+1, ro, fo)
			}
		}
	}
	for i := 0; i < nTasks; i++ {
		if ref.Occupancy(i+1) == 0 {
			t.Errorf("task %d never built occupancy — the comparison proved little", i+1)
		}
	}

	// Unregister through the fast path's dense mirror, then keep stepping:
	// the departed task must stay gone on both sides.
	ref.Unregister(3)
	fst.Unregister(3)
	for step := 0; step < 50; step++ {
		tr := []Traffic{{Task: 1, Accesses: acc[0], MissRate: 1 - ref.HitRate(1, wss[0], loc[0]), WSS: wss[0]}}
		ftr := []Traffic{{Task: 1, Accesses: acc[0], MissRate: 1 - fst.HitRateRef(refs[0], wss[0], loc[0]), WSS: wss[0], Ref: refs[0]}}
		ref.Apply(quantum, tr)
		fst.ApplyFast(quantum, ftr)
	}
	if fst.Occupancy(3) != ref.Occupancy(3) || fst.Occupancy(3) != 0 {
		t.Errorf("unregistered task occupancy: Apply %g, ApplyFast %g, want 0", ref.Occupancy(3), fst.Occupancy(3))
	}
	for i := range []int{0, 1} {
		if ro, fo := ref.Occupancy(i+1), fst.Occupancy(i+1); ro != fo {
			t.Errorf("post-unregister task %d occupancy diverged: %g vs %g", i+1, ro, fo)
		}
	}
}

// Package cache models the shared last-level cache (LLC) of the simulated
// machine, including Intel Cache Allocation Technology (CAT)-style way
// partitioning and the slow response of occupancy to partition changes that
// the paper calls *cache inertia* (§3.2, §4.3).
//
// The model is an occupancy model, the standard abstraction for LLC
// contention studies: each task owns some number of bytes of cache; its hit
// rate grows with the fraction of its working set that is resident; resident
// bytes drift toward an equilibrium determined by the task's insertion
// (miss) traffic relative to the other tasks sharing its partition class.
// The drift rate is insertion bandwidth over class capacity, so a 15 MB
// cache refilled at ~1 GB/s has a time constant of ~15 ms — orders of
// magnitude slower than DVFS, which is exactly why Dirigent uses
// partitioning only in its coarse time scale controller.
package cache

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// ClassID identifies a partition class (a CAT class of service, CLOS).
type ClassID int

// LLC is a way-partitioned last-level cache. It is not safe for concurrent
// use; the machine steps it from a single goroutine.
type LLC struct {
	totalBytes float64
	ways       int
	wayBytes   float64

	classWays map[ClassID]int
	nextClass ClassID

	tasks map[int]*taskState

	// scratch state reused across Apply calls: Apply runs every simulation
	// quantum, so it must not allocate.
	scratchMisses map[int]float64
	scratchFill   map[ClassID]float64
	scratchWeight map[ClassID]float64
	scratchActive map[int]bool

	// Dense state for ApplyFast, the skip-ahead engine's per-quantum update:
	// class IDs are handed out sequentially from 0, so per-class accumulators
	// index slices instead of maps. denseBytes caches each class's byte
	// capacity and is rebuilt lazily when a partition change marks it dirty.
	// stamp replaces the per-call active-task set: a task touched by the
	// current ApplyFast call carries the call's stamp.
	denseBytes []float64
	denseDirty bool
	denseFill  []float64
	denseWt    []float64
	stamp      uint64
	scratchSt  []*taskState
	scratchMs  []float64
	// taskArr mirrors the tasks map as a slice so ApplyFast's inactive-decay
	// pass iterates without map overhead. Order is immaterial: each entry
	// only updates its own state.
	taskArr []*taskState
}

type taskState struct {
	class     ClassID
	occupancy float64 // resident bytes
	stamp     uint64  // last ApplyFast call that saw traffic from this task
}

// TaskRef is a stable handle to one task's cache state, valid from Register
// (or Launch) until Unregister. The skip-ahead step engine resolves it once
// per task so the per-quantum hit-rate and occupancy updates skip the task
// map.
type TaskRef = taskState

// Config describes an LLC geometry.
type Config struct {
	// Bytes is the total capacity. The evaluation machine has a 15 MB L3.
	Bytes int64
	// Ways is the associativity exposed to partitioning. The evaluation
	// machine's CAT exposes 20 ways.
	Ways int
}

// DefaultConfig mirrors the paper's Xeon E5-2618L v3: 15 MB, 20 ways.
func DefaultConfig() Config {
	return Config{Bytes: 15 << 20, Ways: 20}
}

// New creates an LLC with a single default class (ID 0) owning every way.
func New(cfg Config) (*LLC, error) {
	if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", cfg.Bytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	l := &LLC{
		totalBytes:    float64(cfg.Bytes),
		ways:          cfg.Ways,
		wayBytes:      float64(cfg.Bytes) / float64(cfg.Ways),
		classWays:     map[ClassID]int{0: cfg.Ways},
		nextClass:     1,
		tasks:         map[int]*taskState{},
		scratchMisses: map[int]float64{},
		scratchFill:   map[ClassID]float64{},
		scratchWeight: map[ClassID]float64{},
		scratchActive: map[int]bool{},
		denseDirty:    true,
	}
	return l, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *LLC {
	l, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Ways returns the total number of partitionable ways.
func (l *LLC) Ways() int { return l.ways }

// TotalBytes returns the cache capacity in bytes.
func (l *LLC) TotalBytes() float64 { return l.totalBytes }

// WayBytes returns the capacity of a single way in bytes.
func (l *LLC) WayBytes() float64 { return l.wayBytes }

// DefineClass allocates a new partition class with zero ways. Ways must be
// assigned with SetPartition before tasks in the class can cache anything.
func (l *LLC) DefineClass() ClassID {
	id := l.nextClass
	l.nextClass++
	l.classWays[id] = 0
	l.denseDirty = true
	return id
}

// SetPartition assigns way counts to classes. Every class in the map must
// exist, counts must be non-negative, and the total must not exceed the
// cache's ways. Classes not mentioned keep their current allocation.
// Partition changes do NOT immediately move data: occupancy beyond the new
// allocation drains at the inertia rate as competing insertions evict it.
func (l *LLC) SetPartition(ways map[ClassID]int) error {
	next := make(map[ClassID]int, len(l.classWays))
	//lint:ignore maprange pure map-to-map copy; order cannot reach results
	for id, w := range l.classWays {
		next[id] = w
	}
	// Validate in sorted order so which error surfaces first is
	// deterministic when several classes are bad.
	ids := make([]ClassID, 0, len(ways))
	for id := range ways {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := ways[id]
		if _, ok := l.classWays[id]; !ok {
			return fmt.Errorf("cache: unknown class %d", id)
		}
		if w < 0 {
			return fmt.Errorf("cache: class %d way count %d is negative", id, w)
		}
		next[id] = w
	}
	total := 0
	//lint:ignore maprange commutative sum; order cannot reach results
	for _, w := range next {
		total += w
	}
	if total > l.ways {
		return fmt.Errorf("cache: partition uses %d ways, cache has %d", total, l.ways)
	}
	l.classWays = next
	l.denseDirty = true
	return nil
}

// ClassWays returns the current way allocation of a class.
func (l *LLC) ClassWays(id ClassID) (int, error) {
	w, ok := l.classWays[id]
	if !ok {
		return 0, fmt.Errorf("cache: unknown class %d", id)
	}
	return w, nil
}

// ClassBytes returns the byte capacity of a class's partition.
func (l *LLC) ClassBytes(id ClassID) (float64, error) {
	w, err := l.ClassWays(id)
	if err != nil {
		return 0, err
	}
	return float64(w) * l.wayBytes, nil
}

// Register adds task to a partition class with zero initial occupancy.
// Re-registering an existing task moves it to the new class, keeping its
// occupancy (data does not vanish when a task's CLOS changes; it drains or
// grows by the normal dynamics).
func (l *LLC) Register(task int, class ClassID) error {
	if _, ok := l.classWays[class]; !ok {
		return fmt.Errorf("cache: unknown class %d", class)
	}
	if st, ok := l.tasks[task]; ok {
		st.class = class
		return nil
	}
	st := &taskState{class: class}
	l.tasks[task] = st
	l.taskArr = append(l.taskArr, st)
	return nil
}

// Unregister removes a task; its occupancy is freed instantly (process
// teardown invalidates its lines for our purposes).
func (l *LLC) Unregister(task int) {
	st, ok := l.tasks[task]
	if !ok {
		return
	}
	delete(l.tasks, task)
	for i, s := range l.taskArr {
		if s == st {
			last := len(l.taskArr) - 1
			l.taskArr[i] = l.taskArr[last]
			l.taskArr[last] = nil
			l.taskArr = l.taskArr[:last]
			break
		}
	}
}

// Occupancy returns a task's resident bytes (0 for unknown tasks).
func (l *LLC) Occupancy(task int) float64 {
	if st, ok := l.tasks[task]; ok {
		return st.occupancy
	}
	return 0
}

// Ref resolves a task's state handle (nil for unknown tasks). The handle
// stays valid across Register-driven class moves — Register mutates the
// existing state in place — and dies at Unregister.
func (l *LLC) Ref(task int) *TaskRef {
	return l.tasks[task]
}

// reuseSkew is the exponent of the hit-rate vs resident-fraction curve.
// Reuse is skewed: the hottest lines are cached first (LRU keeps what is
// touched most), so a task holding 25% of its working set captures well
// over 25% of its potential hits. The concave curve (exponent < 1) is what
// produces the knee in partition-size sweeps (the paper's Fig. 8): early
// ways buy large miss reductions, later ways diminishing ones.
const reuseSkew = 0.5

// HitRate returns the probability that an access by task hits, given the
// task's working-set size in bytes and locality in [0,1]. Locality is the
// hit rate the task would see with its entire working set resident
// (compulsory and streaming misses cap it below 1); the skewed resident
// fraction scales it down. Unknown tasks miss always.
func (l *LLC) HitRate(task int, wss, locality float64) float64 {
	st, ok := l.tasks[task]
	if !ok || wss <= 0 {
		return 0
	}
	if locality < 0 {
		locality = 0
	} else if locality > 1 {
		locality = 1
	}
	resident := st.occupancy / wss
	if resident >= 1 {
		return locality
	}
	return locality * math.Pow(resident, reuseSkew)
}

// HitRateRef is HitRate through a resolved handle: identical curve and
// clamping, no task-map lookup. A nil handle misses always, like an unknown
// task.
func (l *LLC) HitRateRef(st *TaskRef, wss, locality float64) float64 {
	if st == nil || wss <= 0 {
		return 0
	}
	if locality < 0 {
		locality = 0
	} else if locality > 1 {
		locality = 1
	}
	resident := st.occupancy / wss
	if resident >= 1 {
		return locality
	}
	return locality * math.Pow(resident, reuseSkew)
}

// Traffic describes one task's cache activity during a quantum, produced by
// the machine's performance solver.
type Traffic struct {
	Task int
	// Accesses is the number of LLC accesses in the quantum.
	Accesses float64
	// MissRate is the per-access miss probability the solver computed (from
	// HitRate at the start of the quantum).
	MissRate float64
	// WSS is the task's current working-set size in bytes.
	WSS float64
	// Ref is the task's resolved state handle (see Ref). ApplyFast uses it to
	// skip the task-map lookup; a nil Ref falls back to lookup by Task. Apply
	// ignores it entirely.
	Ref *TaskRef
}

// Apply advances occupancy dynamics by dt given each task's traffic, and
// returns the miss count per task (misses = accesses × missRate — returned
// for the perf counter file so the counting logic lives in one place). The
// returned map is reused by the next Apply call; callers must copy values
// they want to keep.
//
// Dynamics, per partition class:
//
//	equilibrium_t = min(WSS_t, classBytes × weight_t / Σ weight)
//	occ_t ← occ_t + (equilibrium_t − occ_t) × min(1, fillRate×dt)
//
// where weight_t models LRU recency pressure: insertion traffic (misses ×
// line size) plus a discounted credit for hits — in LRU a hit promotes its
// line to MRU, so frequently-reused (high-hit-rate) tasks retain occupancy
// against streaming neighbours even though they insert little. A small
// floor keeps idle tasks from losing every line instantly. fillRate is
// class insertion bandwidth over class capacity — the inertia term.
// Occupancy above the class allocation (after a partition shrink) decays at
// the same rate.
func (l *LLC) Apply(dt time.Duration, traffic []Traffic) map[int]float64 {
	const weightFloor = float64(16 * LineSize) // idle tasks keep a sliver
	// hitRecencyWeight discounts hit traffic against insertion traffic in
	// the occupancy equilibrium: hits refresh recency (LRU) but repeated
	// touches to one line overcount uniqueness, hence < 1.
	const hitRecencyWeight = 0.5

	misses := l.scratchMisses
	fill := l.scratchFill
	weight := l.scratchWeight
	active := l.scratchActive
	clear(misses)
	clear(fill)
	clear(weight)
	clear(active)

	// Pass 1: per-task miss counts, per-class fill and weight totals.
	for _, tr := range traffic {
		st, ok := l.tasks[tr.Task]
		if !ok {
			continue
		}
		m := tr.Accesses * clamp01(tr.MissRate)
		misses[tr.Task] = m
		active[tr.Task] = true
		fill[st.class] += m * LineSize
		hits := (tr.Accesses - m) * LineSize
		weight[st.class] += m*LineSize + hitRecencyWeight*hits + weightFloor
	}

	dtSec := dt.Seconds()
	// Pass 2: move each active task toward its equilibrium share.
	for _, tr := range traffic {
		st, ok := l.tasks[tr.Task]
		if !ok {
			continue
		}
		capBytes := float64(l.classWays[st.class]) * l.wayBytes
		if capBytes <= 0 {
			// No ways: occupancy drains fast (fills bypass the class).
			st.occupancy *= math.Max(0, 1-4*dtSec/0.001)
			continue
		}
		// Convergence rate: class fill bandwidth over class capacity plus
		// a slow base drift so caches settle even with no traffic at all.
		rate := fill[st.class]/capBytes + 0.02*dtSec/0.005
		if rate > 1 {
			rate = 1
		}
		m := misses[tr.Task]
		w := m*LineSize + hitRecencyWeight*(tr.Accesses-m)*LineSize + weightFloor
		eq := capBytes * w / weight[st.class]
		if eq > tr.WSS && tr.WSS > 0 {
			eq = tr.WSS
		}
		st.occupancy += (eq - st.occupancy) * rate
		if st.occupancy < 0 {
			st.occupancy = 0
		}
	}

	// Pass 3: tasks with no traffic this quantum (paused) lose occupancy to
	// the active tasks in their class — only if the class had insertions.
	//lint:ignore maprange each iteration updates only its own task's state; order cannot reach results
	for id, st := range l.tasks {
		if active[id] {
			continue
		}
		capBytes := float64(l.classWays[st.class]) * l.wayBytes
		if capBytes <= 0 {
			st.occupancy = 0
			continue
		}
		rate := fill[st.class] / capBytes
		if rate > 1 {
			rate = 1
		}
		st.occupancy *= 1 - rate
	}

	return misses
}

// rebuildDense refreshes the per-class byte capacities and accumulator
// slices after a partition or class-set change. Class IDs are sequential
// from 0, so nextClass bounds the dense index space.
func (l *LLC) rebuildDense() {
	n := int(l.nextClass)
	if cap(l.denseBytes) < n {
		l.denseBytes = make([]float64, n)
		l.denseFill = make([]float64, n)
		l.denseWt = make([]float64, n)
	}
	l.denseBytes = l.denseBytes[:n]
	l.denseFill = l.denseFill[:n]
	l.denseWt = l.denseWt[:n]
	for id := ClassID(0); id < l.nextClass; id++ {
		// Same expression as Apply's capBytes, so the cached value is
		// bit-identical to recomputing it per task.
		l.denseBytes[id] = float64(l.classWays[id]) * l.wayBytes
	}
	l.denseDirty = false
}

// ApplyFast advances the same occupancy dynamics as Apply with the same
// floating-point expression forms in the same order — the two are pinned
// bit-identical by TestApplyFastMatchesApply — but replaces the per-call map
// churn with dense per-class accumulators, resolved task handles, and a call
// stamp standing in for the active-task set. It is the skip-ahead step
// engine's variant; it does not return per-task miss counts (the machine
// computes those itself) and requires each task to appear at most once in
// traffic.
func (l *LLC) ApplyFast(dt time.Duration, traffic []Traffic) {
	const weightFloor = float64(16 * LineSize)
	const hitRecencyWeight = 0.5

	if l.denseDirty {
		l.rebuildDense()
	}
	fill, weight := l.denseFill, l.denseWt
	for i := range fill {
		fill[i] = 0
		weight[i] = 0
	}
	l.stamp++
	stamp := l.stamp

	sts := l.scratchSt[:0]
	miss := l.scratchMs[:0]

	// Pass 1: per-task miss counts, per-class fill and weight totals. The
	// hits term is accumulated exactly as in Apply (its association differs
	// from pass 2's weight expression on purpose — Apply's forms are kept
	// verbatim).
	for i := range traffic {
		tr := &traffic[i]
		st := tr.Ref
		if st == nil {
			st = l.tasks[tr.Task]
		}
		sts = append(sts, st)
		if st == nil {
			miss = append(miss, 0)
			continue
		}
		m := tr.Accesses * clamp01(tr.MissRate)
		miss = append(miss, m)
		st.stamp = stamp
		fill[st.class] += m * LineSize
		hits := (tr.Accesses - m) * LineSize
		weight[st.class] += m*LineSize + hitRecencyWeight*hits + weightFloor
	}
	l.scratchSt, l.scratchMs = sts, miss

	dtSec := dt.Seconds()
	// Pass 2: move each active task toward its equilibrium share.
	for i := range traffic {
		st := sts[i]
		if st == nil {
			continue
		}
		tr := &traffic[i]
		capBytes := l.denseBytes[st.class]
		if capBytes <= 0 {
			// No ways: occupancy drains fast (fills bypass the class).
			st.occupancy *= math.Max(0, 1-4*dtSec/0.001)
			continue
		}
		// Convergence rate: class fill bandwidth over class capacity plus
		// a slow base drift so caches settle even with no traffic at all.
		rate := fill[st.class]/capBytes + 0.02*dtSec/0.005
		if rate > 1 {
			rate = 1
		}
		m := miss[i]
		w := m*LineSize + hitRecencyWeight*(tr.Accesses-m)*LineSize + weightFloor
		eq := capBytes * w / weight[st.class]
		if eq > tr.WSS && tr.WSS > 0 {
			eq = tr.WSS
		}
		st.occupancy += (eq - st.occupancy) * rate
		if st.occupancy < 0 {
			st.occupancy = 0
		}
	}

	// Pass 3: tasks with no traffic this quantum (paused) lose occupancy to
	// the active tasks in their class — only if the class had insertions.
	for _, st := range l.taskArr {
		if st.stamp == stamp {
			continue
		}
		capBytes := l.denseBytes[st.class]
		if capBytes <= 0 {
			st.occupancy = 0
			continue
		}
		rate := fill[st.class] / capBytes
		if rate > 1 {
			rate = 1
		}
		st.occupancy *= 1 - rate
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

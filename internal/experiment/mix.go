// Package experiment is the evaluation harness: it defines the paper's
// workload mixes (§5.1), runs them under the five configurations (§5.4),
// and regenerates every table and figure of the evaluation section.
package experiment

import (
	"fmt"
	"hash/fnv"
	"strings"

	"dirigent/internal/sched"
	"dirigent/internal/workload"
)

// Mix is one workload combination: foreground benchmark names (repeated
// names give concurrent copies) and background worker specs ("bwaves" for a
// plain worker, "lbm+namd" for a rotate pair). FG tasks occupy the first
// cores, BG workers the rest; FG+BG must equal the core count (6).
type Mix struct {
	// Name identifies the mix in reports, e.g. "ferret rs" or
	// "bodytrack x2 libquantum soplex".
	Name string
	// FG lists foreground benchmark names.
	FG []string
	// BG lists background worker specs.
	BG []string
}

// Validate resolves all benchmark names.
func (m Mix) Validate() error {
	if len(m.FG) == 0 {
		return fmt.Errorf("experiment: mix %q has no FG tasks", m.Name)
	}
	for _, n := range m.FG {
		b, err := workload.ByName(n)
		if err != nil {
			return err
		}
		if b.Kind != workload.Foreground {
			return fmt.Errorf("experiment: mix %q: %s is not a FG benchmark", m.Name, n)
		}
	}
	for _, s := range m.BG {
		if _, err := parseBGSpec(s); err != nil {
			return err
		}
	}
	return nil
}

// Seed derives a stable per-mix random seed so every configuration of a
// mix sees identical workload noise streams.
func (m Mix) Seed() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(m.Name))
	return h.Sum64()
}

// BGSpecs resolves the BG spec strings into scheduler specs.
func (m Mix) BGSpecs() ([]sched.BGSpec, error) {
	out := make([]sched.BGSpec, len(m.BG))
	for i, s := range m.BG {
		spec, err := parseBGSpec(s)
		if err != nil {
			return nil, err
		}
		out[i] = spec
	}
	return out, nil
}

// FGBenchmarks resolves the FG names.
func (m Mix) FGBenchmarks() ([]*workload.Benchmark, error) {
	out := make([]*workload.Benchmark, len(m.FG))
	for i, n := range m.FG {
		b, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func parseBGSpec(s string) (sched.BGSpec, error) {
	if a, b, ok := strings.Cut(s, "+"); ok {
		ba, err := workload.ByName(a)
		if err != nil {
			return sched.BGSpec{}, err
		}
		bb, err := workload.ByName(b)
		if err != nil {
			return sched.BGSpec{}, err
		}
		return sched.BGSpec{Pair: [2]*workload.Benchmark{ba, bb}}, nil
	}
	b, err := workload.ByName(s)
	if err != nil {
		return sched.BGSpec{}, err
	}
	if b.Kind != workload.Background {
		return sched.BGSpec{}, fmt.Errorf("experiment: %s is not a BG benchmark", s)
	}
	return sched.BGSpec{Bench: b}, nil
}

// repeat returns n copies of s.
func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// fgNames returns the catalog's FG benchmark names in Table 1 order.
func fgNames() []string {
	var out []string
	for _, b := range workload.FG() {
		out = append(out, b.Name)
	}
	return out
}

// SingleBGMixes returns the 15 mixes of Fig. 9a: each FG benchmark against
// five copies of each standalone BG benchmark (bwaves, pca, rs).
func SingleBGMixes() []Mix {
	var out []Mix
	for _, fg := range fgNames() {
		for _, bg := range []string{"bwaves", "pca", "rs"} {
			out = append(out, Mix{
				Name: fg + " " + bg,
				FG:   []string{fg},
				BG:   repeat(bg, 5),
			})
		}
	}
	return out
}

// RotateBGMixes returns the 20 mixes of Fig. 9b: each FG benchmark against
// five rotate workers of each pair.
func RotateBGMixes() []Mix {
	var out []Mix
	for _, fg := range fgNames() {
		for _, pair := range workload.RotatePairs() {
			spec := pair[0] + "+" + pair[1]
			out = append(out, Mix{
				Name: fg + " " + pair[0] + " " + pair[1],
				FG:   []string{fg},
				BG:   repeat(spec, 5),
			})
		}
	}
	return out
}

// MultiFGMixes returns the 15 mixes of Fig. 9c: five FG/BG pairings, each
// with 1, 2, and 3 concurrent copies of the FG task (total tasks always 6).
func MultiFGMixes() []Mix {
	pairs := []struct {
		fg string
		bg string
	}{
		{"bodytrack", "libquantum+soplex"},
		{"ferret", "bwaves"},
		{"fluidanimate", "lbm+soplex"},
		{"raytrace", "rs"},
		{"streamcluster", "lbm+namd"},
	}
	var out []Mix
	for _, p := range pairs {
		for n := 1; n <= 3; n++ {
			bgName := strings.ReplaceAll(p.bg, "+", " ")
			out = append(out, Mix{
				Name: fmt.Sprintf("%s x%d %s", p.fg, n, bgName),
				FG:   repeat(p.fg, n),
				BG:   repeat(p.bg, 6-n),
			})
		}
	}
	return out
}

// AllSingleFGMixes returns the 35 single-FG mixes (Fig. 7, Fig. 10).
func AllSingleFGMixes() []Mix {
	return append(SingleBGMixes(), RotateBGMixes()...)
}

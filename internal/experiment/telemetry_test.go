package experiment

import (
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// TestAggregatorMatchesGroundTruth runs a full Dirigent assembly (machine +
// colocation + runtime, partitioning on) with an aggregator attached and
// checks that every statistic reconstructed from the event stream equals the
// simulator's own accounting — the invariant that lets RunResult be
// populated purely from telemetry.
func TestAggregatorMatchesGroundTruth(t *testing.T) {
	r := smallRunner()
	mix := Mix{Name: "equiv", FG: []string{"ferret"}, BG: repeat("pca", 5)}

	mcfg := machine.DefaultConfig()
	mcfg.Seed = mix.Seed()
	m := machine.MustNew(mcfg)
	agg := telemetry.NewAggregator()
	m.SetRecorder(agg)

	fgClass := m.LLC().DefineClass()
	bgClass := m.LLC().DefineClass()
	initial := m.LLC().Ways() / 2
	if err := m.LLC().SetPartition(map[cache.ClassID]int{
		0: 0, fgClass: initial, bgClass: m.LLC().Ways() - initial,
	}); err != nil {
		t.Fatal(err)
	}

	fgb, err := mix.FGBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	specs, err := mix.BGSpecs()
	if err != nil {
		t.Fatal(err)
	}
	colo, err := sched.New(m, fgb, specs, sched.Options{
		Seed: mix.Seed(), FGClass: fgClass, BGClass: bgClass,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := r.Profile("ferret")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(colo, []*core.Profile{prof}, core.RuntimeConfig{
		Targets:            []time.Duration{500 * time.Millisecond},
		EnablePartitioning: true,
		Recorder:           agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunExecutions(40, sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}

	if !agg.Started() {
		t.Fatal("aggregator never saw machine start")
	}
	// Frequency residency replayed from quantum steps + DVFS transitions
	// must equal the machine's per-core accounting exactly, on every core.
	for c := 0; c < m.NumCores(); c++ {
		want, err := m.FreqResidency(c)
		if err != nil {
			t.Fatal(err)
		}
		got := agg.FreqResidency(c)
		if len(got) != len(want) {
			t.Fatalf("core %d: residency levels %d vs %d", c, len(got), len(want))
		}
		for l := range want {
			if got[l] != want[l] {
				t.Errorf("core %d level %d: aggregated %v != machine %v", c, l, got[l], want[l])
			}
		}
	}
	// Coarse-controller state reconstructed from partition events.
	if agg.FGWays() != rt.Coarse().FGWays() {
		t.Errorf("FGWays: aggregated %d != controller %d", agg.FGWays(), rt.Coarse().FGWays())
	}
	if agg.ConvergedAtExecution() != rt.Coarse().ConvergedAt() {
		t.Errorf("ConvergedAt: aggregated %d != controller %d",
			agg.ConvergedAtExecution(), rt.Coarse().ConvergedAt())
	}
	if agg.Executions() < 40 {
		t.Errorf("executions seen = %d, want >= 40", agg.Executions())
	}
	// Per-stream execution durations replayed from completion events must
	// equal the scheduler's own records — the invariant that lets collect()
	// derive QoS statistics from the event stream.
	for i, f := range colo.FG() {
		want := f.Durations()
		got := agg.StreamDurations(i)
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d aggregated durations vs %d scheduler records", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Seconds() != want[j] {
				t.Errorf("stream %d execution %d: aggregated %v != scheduler %v s", i, j, got[j], want[j])
			}
		}
	}
	if agg.Fine().Decisions == 0 {
		t.Error("no fine decisions aggregated")
	}
	if agg.Segments() == 0 {
		t.Error("no segment penalties aggregated")
	}
}

// TestRunMixDeterministicWithRecorder is the determinism contract: the same
// seed yields byte-identical results across runs, and attaching a trace
// recorder must not perturb the simulation at all.
func TestRunMixDeterministicWithRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("two full mix runs")
	}
	newRunner := func() *Runner {
		r := NewRunner()
		r.Executions = 12
		r.Warmup = 2
		r.CalibExecutions = 6
		r.ConvergenceWarmup = 10
		return r
	}
	mix := Mix{Name: "det", FG: []string{"bodytrack"}, BG: repeat("pca", 5)}

	run := func(rec telemetry.Recorder) []byte {
		r := newRunner()
		r.Recorder = rec
		res, err := r.RunMix(mix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain := run(nil)
	again := run(nil)
	if string(plain) != string(again) {
		t.Error("same seed must reproduce byte-identical results")
	}
	// Full-volume trace (quantum steps included) teed in: still identical.
	traced := run(telemetry.NewJSONL(io.Discard).Include(telemetry.KindQuantumStep))
	if string(plain) != string(traced) {
		t.Error("recording a trace must not change results")
	}
}

// TestProfileSingleFlight hammers the profile cache concurrently: every
// caller must get the same cached profile, and (under -race) no data race.
func TestProfileSingleFlight(t *testing.T) {
	r := smallRunner()
	const workers = 16
	profs := make([]*core.Profile, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			profs[i], errs[i] = r.Profile("ferret")
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if profs[i] == nil || profs[i] != profs[0] {
			t.Fatalf("worker %d got a different profile instance", i)
		}
	}
}

// TestRunnerRecorderLabelsRuns checks the harness stamps mix/config labels
// and emits a parseable stream through the user-provided sink.
func TestRunnerRecorderLabelsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full mix run")
	}
	r := smallRunner()
	r.Executions = 10
	r.CalibExecutions = 5
	r.ConvergenceWarmup = 8
	sink := &labelSink{runs: map[string]int{}}
	r.Recorder = sink
	mix := Mix{Name: "lbl", FG: []string{"bodytrack"}, BG: repeat("pca", 5)}
	if _, err := r.RunMix(mix); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range config.Names() {
		label := "lbl/" + string(cfg)
		if sink.runs[label] == 0 {
			t.Errorf("no events labelled %q (got %v)", label, sink.runs)
		}
	}
}

type labelSink struct {
	mu   sync.Mutex
	runs map[string]int
}

func (s *labelSink) Enabled(telemetry.Kind) bool { return true }

func (s *labelSink) Record(ev telemetry.Event) {
	s.mu.Lock()
	s.runs[ev.Run]++
	s.mu.Unlock()
}

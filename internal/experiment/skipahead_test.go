package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"dirigent/internal/telemetry"
)

// skipaheadRunner builds a runner with the stepping engine selected; the two
// engines must be observationally indistinguishable, so everything else is
// held identical.
func skipaheadRunner(compat bool) *Runner {
	r := NewRunner()
	r.Executions = 10
	r.Warmup = 2
	r.CalibExecutions = 5
	r.ConvergenceWarmup = 8
	r.CompatStepping = compat
	return r
}

// TestSkipaheadEquivalentFullRun is the end-to-end equivalence contract for
// the skip-ahead step engine: a full RunMix — every system configuration,
// runtime controllers, partitioning, the works — produces byte-identical
// results and a byte-identical full-volume event trace (quantum steps
// included) whether the machine steps one quantum at a time
// (CompatStepping) or batches boring quanta through StepN.
func TestSkipaheadEquivalentFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("two full mix runs")
	}
	mix := Mix{Name: "skipahead", FG: []string{"ferret"}, BG: repeat("rs", 5)}

	run := func(compat bool) ([]byte, []byte) {
		r := skipaheadRunner(compat)
		var trace bytes.Buffer
		r.Recorder = telemetry.NewJSONL(&trace).Include(telemetry.KindQuantumStep)
		res, err := r.RunMix(mix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b, trace.Bytes()
	}

	compatRes, compatTrace := run(true)
	fastRes, fastTrace := run(false)
	if !bytes.Equal(compatRes, fastRes) {
		t.Error("skip-ahead stepping changed RunMix results")
	}
	if !bytes.Equal(compatTrace, fastTrace) {
		t.Error("skip-ahead stepping changed the event stream")
	}
	if len(compatTrace) == 0 {
		t.Fatal("trace is empty — the comparison proved nothing")
	}
}

// TestSkipaheadEquivalentResilience extends the equivalence contract to
// fault plans: a resilience sweep (fault injection across every class, a
// stale-profile run, and the re-profiling recovery path) is identical under
// both engines. Faults land mid-run at seeded times, so this exercises
// skip-ahead batches being cut short by ticks, pending delays, and
// reprofile requests.
func TestSkipaheadEquivalentResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("two resilience sweeps")
	}
	mix := Mix{Name: "skipahead res", FG: []string{"ferret"}, BG: repeat("rs", 5)}
	opts := ResilienceOptions{Intensities: []float64{0.3}}

	run := func(compat bool) []byte {
		r := skipaheadRunner(compat)
		r.Executions = 12
		res, err := r.ResilienceSweep(mix, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	compat := run(true)
	fast := run(false)
	if !bytes.Equal(compat, fast) {
		t.Errorf("skip-ahead stepping changed the resilience sweep:\ncompat: %s\nfast:   %s",
			compat, fast)
	}
}

package experiment

import (
	"fmt"
	"strings"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/fault"
)

// This file is the resilience evaluation: QoS under injected faults
// (internal/fault). The question it answers is not whether Dirigent meets
// its targets on a clean machine — the QoS experiments cover that — but how
// gracefully the control loop degrades when its inputs lie: lost and noisy
// counter samples, missed runtime invocations, failed DVFS and pause
// actuation, and stale profiles. dirigent-bench -resilience renders it;
// internal/benchreg pins its key numbers.

// DefaultResilienceIntensities are the sweep's fault-intensity grid; 0.3 is
// the "moderate" point the regression probes pin, 0.9 the near-saturation
// point where holding FG success stops being possible by shedding BG
// throughput alone.
var DefaultResilienceIntensities = []float64{0.15, 0.3, 0.6, 0.9}

// Default staleness knobs for the profile-staleness scenario: the profile
// the runtime receives claims every segment runs 30% faster than reality
// (optimistic record) AND is rotated half out of phase. The EMA machinery
// self-corrects the distortion over a handful of executions; re-profiling
// short-circuits that window with one pause-the-world measurement, which
// is what the recovery scenario quantifies.
const (
	DefaultStaleScale   = 0.7
	DefaultStaleRephase = 0.5
	// DefaultReprofileDrift is the sustained |α−1| threshold handed to the
	// runtime in the recovery scenario, and DefaultReprofileAfter the
	// consecutive-drifting-execution streak that triggers the re-profile.
	DefaultReprofileDrift = 0.12
	DefaultReprofileAfter = 4
)

// resilienceClass maps a named fault class to a Plan at intensity x ∈ (0,1].
// Probabilistic classes scale linearly; counter noise maps intensity to a
// lognormal sigma (0.1·x keeps moderate intensity within realistic counter
// jitter).
type resilienceClass struct {
	name string
	plan func(x float64) fault.Plan
}

func resilienceClasses() []resilienceClass {
	return []resilienceClass{
		{"counter-dropout", func(x float64) fault.Plan { return fault.Plan{CounterDropout: x} }},
		{"counter-noise", func(x float64) fault.Plan { return fault.Plan{CounterNoise: 0.1 * x} }},
		{"tick", func(x float64) fault.Plan { return fault.Plan{TickDrop: 0.5 * x, TickLate: 0.5 * x} }},
		{"dvfs", func(x float64) fault.Plan { return fault.Plan{DVFSFail: 0.5 * x, DVFSLate: 0.5 * x} }},
		{"pause-resume", func(x float64) fault.Plan { return fault.Plan{PauseFail: x, ResumeFail: x} }},
	}
}

// DefaultResilienceTargetFactor sets the sweep's QoS point: the latency
// target as a multiple of the FG task's standalone mean (the Fig. 15 axis).
// The baseline-derived deadline the QoS experiments use leaves Dirigent so
// much headroom that every fault is absorbed invisibly; resilience is only
// a meaningful question at a tight target, where the controller is spending
// its actuators and a lost sample or dropped transition costs real slack.
// 1.09 sits just above the knee of the ferret+rs success curve: high
// enough that clean Dirigent passes, thin enough that degradation is
// visible — in steady state for the fault classes, and in the transient
// protocol for the staleness scenario.
const DefaultResilienceTargetFactor = 1.09

// ResilienceOptions configures the sweep.
type ResilienceOptions struct {
	// Intensities is the fault-intensity grid (default
	// DefaultResilienceIntensities).
	Intensities []float64
	// TargetFactor is the latency target as a multiple of standalone mean
	// execution time (default DefaultResilienceTargetFactor).
	TargetFactor float64
	// SkipStaleness skips the profile-staleness / recovery scenario.
	SkipStaleness bool
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if len(o.Intensities) == 0 {
		o.Intensities = append([]float64(nil), DefaultResilienceIntensities...)
	}
	if o.TargetFactor == 0 {
		o.TargetFactor = DefaultResilienceTargetFactor
	}
	return o
}

// ResiliencePoint is one (class, intensity) outcome under full Dirigent.
type ResiliencePoint struct {
	Intensity float64
	// Success is the worst per-stream FG completion rate.
	Success float64
	// BGRel is BG throughput relative to the clean baseline run.
	BGRel float64
	// Faults counts injected faults observed in the run.
	Faults int
}

// ResilienceClassResult is one fault class's intensity curve.
type ResilienceClassResult struct {
	Class  string
	Points []ResiliencePoint
}

// ResilienceResult is the full sweep outcome for one mix.
type ResilienceResult struct {
	Mix Mix
	// StandaloneSec is the FG task's standalone mean execution time;
	// TargetFactor × StandaloneSec is the deadline every run is judged
	// against.
	StandaloneSec float64
	TargetFactor  float64
	Deadlines     []float64
	// CleanSuccess is fault-free Dirigent's worst per-stream success rate —
	// the reference every fault point is measured against.
	CleanSuccess float64
	// Classes hold the per-class degradation curves.
	Classes []ResilienceClassResult
	// Profile-staleness scenario: success with a degraded profile
	// (StaleScale/StaleRephase) without and with re-profiling enabled.
	// The stale runs measure the adaptation transient (no convergence
	// warmup), so their reference is StaleCleanSuccess — fault-free
	// Dirigent under the same transient protocol — not CleanSuccess.
	StaleScale        float64
	StaleRephase      float64
	StaleCleanSuccess float64
	StaleSuccess      float64
	RecoveredSuccess  float64
	// Reprofiles counts the recovery run's successful re-profiling episodes.
	Reprofiles int
}

// MinSuccessAt returns the worst per-class success at one intensity of the
// grid (the regression probes pin the moderate point), or -1 when the
// intensity was not swept.
func (res *ResilienceResult) MinSuccessAt(intensity float64) float64 {
	min, found := 1.0, false
	for _, c := range res.Classes {
		for _, p := range c.Points {
			//lint:ignore floateq intensities are copied verbatim from the sweep plan, so exact match is the lookup key
			if p.Intensity == intensity {
				found = true
				if p.Success < min {
					min = p.Success
				}
			}
		}
	}
	if !found {
		return -1
	}
	return min
}

// ResilienceSweep measures QoS-vs-fault-intensity for one mix under full
// Dirigent. A clean baseline pass defines the deadlines (exactly like the
// QoS experiments), a clean Dirigent run defines the reference success rate,
// then each fault class is swept over the intensity grid on its own seeded
// streams. Finally the staleness scenario degrades the offline profile and
// measures recovery with the runtime's re-profiling enabled.
func (r *Runner) ResilienceSweep(mix Mix, opts ResilienceOptions) (*ResilienceResult, error) {
	opts = opts.withDefaults()
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if len(mix.FG) != 1 {
		return nil, fmt.Errorf("experiment: resilience sweep needs a single-FG mix, got %d FG streams", len(mix.FG))
	}

	// The QoS point: a tight target derived from standalone time (Fig. 15's
	// axis), not the loose baseline-derived deadline — see
	// DefaultResilienceTargetFactor.
	alone, err := r.runOne(Mix{Name: mix.FG[0] + " alone", FG: mix.FG[:1]},
		runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions / 2})
	if err != nil {
		return nil, fmt.Errorf("resilience standalone %s: %w", mix.Name, err)
	}
	standalone := alone.Streams[0].Summary.Mean
	deadlines := []float64{standalone * opts.TargetFactor}
	targets := []time.Duration{time.Duration(deadlines[0] * float64(time.Second))}

	// Baseline under contention: the BG throughput reference.
	base, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), deadlines: deadlines, bgLevel: -1, execs: r.Executions})
	if err != nil {
		return nil, fmt.Errorf("resilience baseline %s: %w", mix.Name, err)
	}

	dirigentSpec := func(plan fault.Plan, reprofileDrift float64) runSpec {
		spec := runSpec{
			cfg:            config.MustByName(config.Dirigent),
			targets:        targets,
			deadlines:      deadlines,
			bgLevel:        -1,
			execs:          r.Executions,
			extraWarmup:    r.ConvergenceWarmup,
			faults:         plan,
			reprofileDrift: reprofileDrift,
		}
		if plan.ProfileScale != 0 || plan.ProfileRephase != 0 {
			// The staleness scenario is about the adaptation transient: how
			// long the runtime mispredicts before its EMAs (or a re-profile)
			// absorb the distortion. The convergence warmup would discard
			// exactly that window, so the stale runs measure from the start.
			spec.extraWarmup = 0
		}
		return spec
	}

	classes := resilienceClasses()
	res := &ResilienceResult{
		Mix:           mix,
		StandaloneSec: standalone,
		TargetFactor:  opts.TargetFactor,
		Deadlines:     deadlines,
		StaleScale:    DefaultStaleScale,
		StaleRephase:  DefaultStaleRephase,
		Classes:       make([]ResilienceClassResult, len(classes)),
	}

	// Every remaining run is independent; fan out like RunMixes. Slot 0 is
	// the clean Dirigent reference, then one slot per (class, intensity),
	// then the two staleness runs.
	type job struct {
		spec  runSpec
		class int // -1: clean reference; -2: stale; -3: stale+reprofile; -4: clean transient reference
		point int
	}
	jobs := []job{{spec: dirigentSpec(fault.Plan{}, 0), class: -1}}
	for ci, c := range classes {
		res.Classes[ci].Class = c.name
		res.Classes[ci].Points = make([]ResiliencePoint, len(opts.Intensities))
		for pi, x := range opts.Intensities {
			jobs = append(jobs, job{spec: dirigentSpec(c.plan(x), 0), class: ci, point: pi})
		}
	}
	if !opts.SkipStaleness {
		stale := fault.Plan{ProfileScale: DefaultStaleScale, ProfileRephase: DefaultStaleRephase}
		cleanTransient := dirigentSpec(fault.Plan{}, 0)
		cleanTransient.extraWarmup = 0
		recover := dirigentSpec(stale, DefaultReprofileDrift)
		recover.reprofileAfter = DefaultReprofileAfter
		jobs = append(jobs,
			job{spec: cleanTransient, class: -4},
			job{spec: dirigentSpec(stale, 0), class: -2},
			job{spec: recover, class: -3},
		)
	}

	runs := make([]*RunResult, len(jobs))
	errs := make([]error, len(jobs))
	fanOut(len(jobs), func(i int) {
		runs[i], errs[i] = r.runOne(mix, jobs[i].spec)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("resilience %s (class %d): %w", mix.Name, jobs[i].class, err)
		}
	}

	for i, jb := range jobs {
		run := runs[i]
		bgRel := 0.0
		if base.BGInstrRate > 0 {
			bgRel = run.BGInstrRate / base.BGInstrRate
		}
		switch jb.class {
		case -1:
			res.CleanSuccess = run.MinSuccessRate()
		case -2:
			res.StaleSuccess = run.MinSuccessRate()
		case -3:
			res.RecoveredSuccess = run.MinSuccessRate()
			res.Reprofiles = run.Reprofiles
		case -4:
			res.StaleCleanSuccess = run.MinSuccessRate()
		default:
			res.Classes[jb.class].Points[jb.point] = ResiliencePoint{
				Intensity: opts.Intensities[jb.point],
				Success:   run.MinSuccessRate(),
				BGRel:     bgRel,
				Faults:    run.Faults,
			}
		}
	}
	return res, nil
}

// RenderResilience formats the sweep as the EXPERIMENTS.md table.
func RenderResilience(res *ResilienceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience: QoS under injected faults for %s\n", res.Mix.Name)
	fmt.Fprintf(&b, "target %.2fx standalone (%.3fs); fault-free Dirigent FG success %.0f%%\n",
		res.TargetFactor, res.StandaloneSec, res.CleanSuccess*100)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %8s\n", "class", "intensity", "success", "bg rel", "faults")
	for _, c := range res.Classes {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%-16s %10.2f %9.0f%% %10.2f %8d\n",
				c.Class, p.Intensity, p.Success*100, p.BGRel, p.Faults)
		}
	}
	fmt.Fprintf(&b, "stale profile (scale %.2f, rephase %.2f), transient protocol: clean %.0f%%, stale %.0f%% -> with re-profiling %.0f%% (%d reprofiles)\n",
		res.StaleScale, res.StaleRephase, res.StaleCleanSuccess*100, res.StaleSuccess*100, res.RecoveredSuccess*100, res.Reprofiles)
	return b.String()
}

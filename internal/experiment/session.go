package experiment

import (
	"fmt"
	"strings"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/fault"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// RunParams specifies one directly-parameterized run for StartSession: the
// caller supplies the configuration and (for runtime configurations) the
// per-stream latency targets instead of deriving them from a Baseline pass.
// This is the entry point long-running hosts (internal/server) use; the
// batch entry points (RunMix/RunConfigs) resolve the same parameters from
// the paper's methodology.
type RunParams struct {
	// Config names the system configuration to run under.
	Config config.Name
	// Policy names the QoS policy driving the runtime (internal/policy
	// registry name); empty keeps the configuration's policy, which is the
	// default Dirigent controllers for the stock configurations. Only
	// meaningful when the configuration uses the runtime.
	Policy string
	// Targets are per-FG-stream latency targets; required when the
	// configuration uses the Dirigent runtime.
	Targets []time.Duration
	// Deadlines are per-stream deadlines in seconds for success-rate
	// accounting; when empty for a runtime configuration they default to
	// Targets (in seconds).
	Deadlines []float64
	// Executions is the FG execution count driven per stream (0 uses the
	// runner's default).
	Executions int
	// ExtraWarmup extends the discarded prefix (coarse-controller
	// convergence; the batch harness uses Runner.ConvergenceWarmup for the
	// full Dirigent configuration).
	ExtraWarmup int
	// FGWays statically partitions the LLC (0 = none/runtime-managed).
	FGWays int
	// BGLevel statically pins BG cores to a frequency level (-1 = max).
	BGLevel int
	// Seed overrides the mix-derived deterministic seed (0 keeps
	// Mix.Seed(), making a session byte-identical to the batch runner).
	Seed uint64
	// Faults is an optional deterministic fault-injection plan.
	Faults fault.Plan
	// Extra is an additional telemetry sink teed into the run's bus (live
	// subscribers); strictly observational.
	Extra telemetry.Recorder
}

// Session is one in-flight run that the caller steps explicitly instead of
// running to completion in one call. It is exactly the run the batch
// harness performs — RunMix/RunConfigs assemble the same session and drive
// it with RunExecutions — so a session stepped by an external worker (the
// dirigent-serve tenant loop) produces a byte-identical RunResult for the
// same seed and parameters.
//
// A session is not safe for concurrent use: one goroutine must own Step,
// control operations (Runtime().SetTarget, admission hooks), and Collect.
type Session struct {
	runner *Runner
	mix    Mix
	spec   runSpec
	colo   *sched.Colocation
	rt     *core.Runtime
	agg    *telemetry.Aggregator
}

// StartSession validates params, assembles the machine/colocation/runtime
// stack for the mix, and returns the stepping handle. Nothing has executed
// yet — the first Step advances the first quantum.
func (r *Runner) StartSession(mix Mix, p RunParams) (*Session, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	cfg, err := config.ByName(p.Config)
	if err != nil {
		return nil, err
	}
	if p.Policy != "" {
		if !policy.Valid(p.Policy) {
			return nil, fmt.Errorf("experiment: unknown policy %q (valid: %s)",
				p.Policy, strings.Join(policy.Names(), ", "))
		}
		cfg.Policy = p.Policy
	}
	execs := p.Executions
	if execs <= 0 {
		execs = r.Executions
	}
	deadlines := p.Deadlines
	if len(deadlines) == 0 && cfg.UseRuntime {
		deadlines = make([]float64, len(p.Targets))
		for i, t := range p.Targets {
			deadlines[i] = t.Seconds()
		}
	}
	if len(deadlines) != 0 && len(deadlines) != len(mix.FG) {
		return nil, fmt.Errorf("experiment: %d deadlines for %d FG streams", len(deadlines), len(mix.FG))
	}
	bgLevel := p.BGLevel
	if cfg.StaticBGMinFreq {
		bgLevel = 0
	}
	spec := runSpec{
		cfg:         cfg,
		targets:     append([]time.Duration(nil), p.Targets...),
		deadlines:   deadlines,
		fgWays:      p.FGWays,
		bgLevel:     bgLevel,
		execs:       execs,
		extraWarmup: p.ExtraWarmup,
		seed:        p.Seed,
		faults:      p.Faults,
		extra:       p.Extra,
	}
	return r.startSession(mix, spec)
}

// startSession builds the full per-run stack for a resolved spec. This is
// the single construction path shared by the batch runner and served
// tenants; keep its operation order stable — seeded RNG draws happen during
// construction, so reordering would silently change every deterministic
// baseline.
func (r *Runner) startSession(mix Mix, spec runSpec) (*Session, error) {
	// Every run gets its own aggregator — RunResult is populated from the
	// same event stream an external sink would see. The user's sink (if
	// any) is teed in, labelled mix/config so parallel runs stay
	// attributable. Built before the machine because the fault injector
	// (wired into the machine config) emits through the same bus.
	seed := spec.seed
	if seed == 0 {
		seed = mix.Seed()
	}
	agg := telemetry.NewAggregator()
	rec := telemetry.Recorder(agg)
	if r.Recorder != nil || spec.extra != nil {
		var user telemetry.Recorder
		if r.Recorder != nil {
			user = telemetry.WithRun(r.Recorder, mix.Name+"/"+string(spec.cfg.Name))
		}
		rec = telemetry.Tee(agg, user, spec.extra)
	}

	// Resolve the runner's machine class ("" is the default xeon-e5, whose
	// config is exactly machine.DefaultConfig — byte-identical to the
	// pre-class construction path).
	mcfg, err := machine.ClassConfig(r.MachineClass)
	if err != nil {
		return nil, err
	}
	mcfg.Seed = seed
	mcfg.CompatStepping = r.CompatStepping
	var inj *fault.Injector
	if !spec.faults.IsZero() {
		// One injector per run, seeded from the mix so fault schedules
		// reproduce bit-for-bit; the machine and the runtime share it.
		inj = fault.NewInjector(spec.faults, seed, rec)
		mcfg.Faults = inj
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	m.SetRecorder(rec)

	opts := sched.Options{Seed: seed}
	// Resolve the driving policy up front: its declared capability set —
	// not a hard-wired config flag — decides whether the machine gets
	// partition classes. For the default Dirigent policy this resolves to
	// exactly the old RuntimePartitioning check, preserving seed-for-seed
	// machine construction order.
	var pol policy.Policy
	if spec.cfg.UseRuntime {
		pol, err = policy.New(spec.cfg.Policy, policy.Options{Partitioning: spec.cfg.RuntimePartitioning})
		if err != nil {
			return nil, err
		}
	}
	partitioned := spec.fgWays > 0 || (pol != nil && pol.Capabilities().LLCWays)
	var fgClass, bgClass cache.ClassID
	if partitioned {
		fgClass = m.LLC().DefineClass()
		bgClass = m.LLC().DefineClass()
		initial := spec.fgWays
		if initial == 0 {
			initial = m.LLC().Ways() / 2
		}
		if err := m.LLC().SetPartition(map[cache.ClassID]int{
			0: 0, fgClass: initial, bgClass: m.LLC().Ways() - initial,
		}); err != nil {
			return nil, err
		}
		opts.FGClass, opts.BGClass = fgClass, bgClass
	}

	fgb, err := mix.FGBenchmarks()
	if err != nil {
		return nil, err
	}
	specs, err := mix.BGSpecs()
	if err != nil {
		return nil, err
	}
	colo, err := sched.New(m, fgb, specs, opts)
	if err != nil {
		return nil, err
	}

	// Static BG frequency pinning.
	if spec.bgLevel >= 0 {
		for _, w := range colo.BG() {
			if err := m.SetFreqLevel(w.Core, spec.bgLevel); err != nil {
				return nil, err
			}
		}
	}

	var rt *core.Runtime
	if spec.cfg.UseRuntime {
		if len(spec.targets) != len(fgb) {
			return nil, fmt.Errorf("experiment: %d targets for %d FG streams", len(spec.targets), len(fgb))
		}
		profiles := make([]*core.Profile, len(fgb))
		for i, b := range fgb {
			p, err := r.Profile(b.Name)
			if err != nil {
				return nil, err
			}
			if s := spec.faults; (s.ProfileScale > 0 && s.ProfileScale != 1) || s.ProfileRephase > 0 {
				p = core.StaleProfile(p, s.ProfileScale, s.ProfileRephase)
			}
			profiles[i] = p
		}
		rt, err = core.NewRuntime(colo, profiles, core.RuntimeConfig{
			Targets:             spec.targets,
			Policy:              pol,
			EnablePartitioning:  spec.cfg.RuntimePartitioning,
			Recorder:            rec,
			Faults:              inj,
			ReprofileAlphaDrift: spec.reprofileDrift,
			ReprofileAfter:      spec.reprofileAfter,
		})
		if err != nil {
			return nil, err
		}
	}
	return &Session{runner: r, mix: mix, spec: spec, colo: colo, rt: rt, agg: agg}, nil
}

// Mix returns the session's workload mix.
func (s *Session) Mix() Mix { return s.mix }

// Config returns the configuration name the session runs under.
func (s *Session) Config() config.Name { return s.spec.cfg.Name }

// Colocation returns the session's task placement (admission hooks live
// there for non-runtime configurations).
func (s *Session) Colocation() *sched.Colocation { return s.colo }

// Runtime returns the Dirigent runtime, or nil for configurations that do
// not use it (Baseline and the static schemes).
func (s *Session) Runtime() *core.Runtime { return s.rt }

// Policy returns the registered name of the QoS policy driving the
// session's runtime, or "" for non-runtime configurations.
func (s *Session) Policy() string {
	if s.rt == nil {
		return ""
	}
	return s.rt.PolicyName()
}

// Aggregator returns the session's telemetry aggregator — the same stream
// every derived statistic comes from. Read it only from the goroutine that
// steps the session.
func (s *Session) Aggregator() *telemetry.Aggregator { return s.agg }

// Goal returns the per-stream execution count the session was provisioned
// for, including the extra convergence warmup.
func (s *Session) Goal() int { return s.spec.execs + s.spec.extraWarmup }

// Now returns the current simulated time.
func (s *Session) Now() sim.Time { return s.colo.Machine().Now() }

// Completed returns the minimum completed-execution count across active
// (non-removed) FG streams.
func (s *Session) Completed() int {
	minDone := -1
	for _, f := range s.colo.FG() {
		if f.Removed() {
			continue
		}
		if minDone < 0 || f.Completed() < minDone {
			minDone = f.Completed()
		}
	}
	if minDone < 0 {
		return 0
	}
	return minDone
}

// Step advances the session one machine quantum (plus any due control
// work).
func (s *Session) Step() error {
	if s.rt != nil {
		return s.rt.Step()
	}
	s.colo.Step()
	return nil
}

// RunExecutions steps until every active FG stream has completed at least n
// executions or the simulated-time limit is hit.
func (s *Session) RunExecutions(n int, limit sim.Time) error {
	if s.rt != nil {
		return s.rt.RunExecutions(n, limit)
	}
	return s.colo.RunExecutions(n, limit)
}

// Collect folds the session's event stream into a RunResult, exactly as the
// batch runner does at the end of a run. It may be called mid-run for a
// snapshot; per-stream statistics then cover completed executions only.
func (s *Session) Collect() (*RunResult, error) {
	return s.runner.collect(s.mix, s.spec, s.colo, s.rt, s.agg)
}

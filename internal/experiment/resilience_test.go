package experiment

import (
	"strings"
	"testing"
)

func TestRenderPredictionAccuracyEmpty(t *testing.T) {
	out := RenderPredictionAccuracy(nil)
	if !strings.Contains(out, "no results") {
		t.Errorf("empty render = %q, want a 'no results' line", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("empty render must not show NaN aggregates: %q", out)
	}
}

func TestResilienceSweepRejectsMultiFG(t *testing.T) {
	r := NewRunner()
	mix := Mix{Name: "two fg", FG: []string{"ferret", "raytrace"}, BG: []string{"rs", "rs", "rs", "rs"}}
	if _, err := r.ResilienceSweep(mix, ResilienceOptions{}); err == nil {
		t.Error("multi-FG mix should be rejected")
	}
}

func TestMinSuccessAtUnknownIntensity(t *testing.T) {
	res := &ResilienceResult{Classes: []ResilienceClassResult{
		{Class: "tick", Points: []ResiliencePoint{{Intensity: 0.3, Success: 0.9}}},
	}}
	if got := res.MinSuccessAt(0.5); got != -1 {
		t.Errorf("MinSuccessAt(unswept) = %v, want -1", got)
	}
	if got := res.MinSuccessAt(0.3); got != 0.9 {
		t.Errorf("MinSuccessAt(0.3) = %v, want 0.9", got)
	}
}

func TestResilienceSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	r := NewRunner()
	r.Executions = 16
	r.ConvergenceWarmup = 6
	mix := Mix{Name: "ferret rs", FG: []string{"ferret"}, BG: []string{"rs", "rs", "rs", "rs", "rs"}}
	res, err := r.ResilienceSweep(mix, ResilienceOptions{Intensities: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StandaloneSec <= 0 || res.TargetFactor != DefaultResilienceTargetFactor {
		t.Errorf("QoS point not derived: standalone %v factor %v", res.StandaloneSec, res.TargetFactor)
	}
	if res.CleanSuccess <= 0 {
		t.Error("clean reference has zero success — target derivation broken")
	}
	if len(res.Classes) == 0 {
		t.Fatal("no class curves")
	}
	for _, c := range res.Classes {
		if len(c.Points) != 1 {
			t.Fatalf("class %s has %d points, want 1", c.Class, len(c.Points))
		}
		if c.Points[0].Faults == 0 {
			t.Errorf("class %s injected no faults at intensity 0.3", c.Class)
		}
		if c.Points[0].Success < 0 || c.Points[0].Success > 1 {
			t.Errorf("class %s success %v out of range", c.Class, c.Points[0].Success)
		}
	}
	if res.Reprofiles < 1 {
		t.Error("recovery run never re-profiled")
	}
	// Determinism: the whole sweep is seeded by the mix, so a second run
	// reproduces it exactly.
	again, err := r.ResilienceSweep(mix, ResilienceOptions{Intensities: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if again.Classes[0].Points[0] != res.Classes[0].Points[0] ||
		again.CleanSuccess != res.CleanSuccess ||
		again.StaleSuccess != res.StaleSuccess ||
		again.RecoveredSuccess != res.RecoveredSuccess {
		t.Error("sweep is not seed-deterministic")
	}
	out := RenderResilience(res)
	for _, want := range []string{"Resilience", "counter-dropout", "stale profile", "re-profiling"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/stats"
	"dirigent/internal/workload"
)

// This file regenerates the paper's tables and figures. Each generator
// returns a data structure plus a Render method producing the textual form
// the dirigent-bench tool prints; EXPERIMENTS.md records the outputs.

// ---------------------------------------------------------------- Table 1

// Table1 renders the benchmark catalog in the paper's Table 1 layout.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: FG and BG Benchmarks\n")
	fmt.Fprintf(&b, "%-8s %-14s %s\n", "Type", "Name", "Phases (instr budget)")
	row := func(kind string, bench *workload.Benchmark) {
		names := make([]string, len(bench.Phases))
		for i, p := range bench.Phases {
			names[i] = p.Name
		}
		fmt.Fprintf(&b, "%-8s %-14s %s (%.2g)\n", kind, bench.Name, strings.Join(names, ", "), bench.TotalInstructions())
	}
	for _, bench := range workload.FG() {
		row("FG", bench)
	}
	for _, bench := range workload.SingleBG() {
		row("SingleBG", bench)
	}
	for _, bench := range workload.RotateBenchmarks() {
		row("RotateBG", bench)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 4

// FGOverviewRow is one bar group of Fig. 4.
type FGOverviewRow struct {
	Bench       string
	AloneSec    float64
	ContendSec  float64
	AloneMPKI   float64
	ContendMPKI float64
}

// FGOverview measures each FG benchmark alone and against five bwaves
// copies (Fig. 4's setup).
func (r *Runner) FGOverview() ([]FGOverviewRow, error) {
	var rows []FGOverviewRow
	for _, fg := range fgNames() {
		alone, err := r.runOne(Mix{Name: fg + " alone", FG: []string{fg}},
			runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions / 2})
		if err != nil {
			return nil, err
		}
		cont, err := r.runOne(Mix{Name: fg + " bwaves", FG: []string{fg}, BG: repeat("bwaves", 5)},
			runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions / 2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FGOverviewRow{
			Bench:       fg,
			AloneSec:    alone.Streams[0].Summary.Mean,
			ContendSec:  cont.Streams[0].Summary.Mean,
			AloneMPKI:   alone.Streams[0].MPKI,
			ContendMPKI: cont.Streams[0].MPKI,
		})
	}
	return rows, nil
}

// RenderFGOverview formats Fig. 4.
func RenderFGOverview(rows []FGOverviewRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: Overview of FG Workloads (exec time s, LLC MPKI; contended = +5x bwaves)\n")
	fmt.Fprintf(&b, "%-14s %10s %12s %10s %12s\n", "workload", "t(alone)", "t(contend)", "MPKI(al)", "MPKI(cont)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.3f %12.3f %10.2f %12.2f\n",
			r.Bench, r.AloneSec, r.ContendSec, r.AloneMPKI, r.ContendMPKI)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5

// BGOverviewRow is one bar of Fig. 5.
type BGOverviewRow struct {
	Workload    string
	TotalMPKFGI float64
	FGShare     float64
}

// BGOverview measures each BG workload's intrusiveness with ferret as the
// representative FG (Fig. 5's setup): total machine L3 misses per thousand
// FG instructions, and the FG's share of all misses.
func (r *Runner) BGOverview() ([]BGOverviewRow, error) {
	workloads := []string{"bwaves", "pca", "rs"}
	for _, p := range workload.RotatePairs() {
		workloads = append(workloads, p[0]+"+"+p[1])
	}
	var rows []BGOverviewRow
	for _, w := range workloads {
		mix := Mix{Name: "ferret " + w, FG: []string{"ferret"}, BG: repeat(w, 5)}
		run, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions / 2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BGOverviewRow{
			Workload:    strings.ReplaceAll(w, "+", " "),
			TotalMPKFGI: run.TotalMPKFGI(),
			FGShare:     run.FGMissShare(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TotalMPKFGI < rows[j].TotalMPKFGI })
	return rows, nil
}

// RenderBGOverview formats Fig. 5.
func RenderBGOverview(rows []BGOverviewRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5: Overview of BG Workloads (FG = ferret), ascending intrusiveness\n")
	fmt.Fprintf(&b, "%-20s %14s %14s\n", "BG workload", "total MPKFGI", "FG miss share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14.2f %14.2f\n", r.Workload, r.TotalMPKFGI, r.FGShare)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 6/7

// PredictionPoint is one execution of a prediction probe.
type PredictionPoint struct {
	// ActualSec and PredictedSec are the execution time and its midpoint
	// prediction.
	ActualSec    float64
	PredictedSec float64
}

// Error returns |predicted − actual| / actual (one term of Eq. 3).
func (p PredictionPoint) Error() float64 {
	if p.ActualSec <= 0 {
		return 0
	}
	return math.Abs(p.PredictedSec-p.ActualSec) / p.ActualSec
}

// PredictionProbeResult is the outcome of a predictor evaluation run.
type PredictionProbeResult struct {
	Mix Mix
	// Points are per-execution (actual, midpoint-prediction) pairs in
	// completion order, excluding training executions.
	Points []PredictionPoint
	// MeanError is Eq. 3 over Points.
	MeanError float64
	// NormalizedStd is std/mean of the actual execution times.
	NormalizedStd float64
}

// PredictionProbe runs a mix in the Baseline configuration (no resource
// management, §5.2) while feeding the first FG stream's progress to a
// Dirigent predictor every ΔT, recording the prediction made at the
// midpoint of each execution. The first `skip` executions are treated as
// training (the penalty EMAs need at least one pass) and excluded.
func (r *Runner) PredictionProbe(mix Mix, executions, skip int) (*PredictionProbeResult, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	profile, err := r.Profile(mix.FG[0])
	if err != nil {
		return nil, err
	}
	mcfg := machine.DefaultConfig()
	mcfg.Seed = mix.Seed()
	mcfg.CompatStepping = r.CompatStepping
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	fgb, err := mix.FGBenchmarks()
	if err != nil {
		return nil, err
	}
	specs, err := mix.BGSpecs()
	if err != nil {
		return nil, err
	}
	colo, err := sched.New(m, fgb, specs, sched.Options{Seed: mix.Seed()})
	if err != nil {
		return nil, err
	}

	pred, err := core.NewPredictor(profile, core.DefaultEMAWeight)
	if err != nil {
		return nil, err
	}
	pred.BeginExecution(0)
	fgTask := colo.FG()[0].Task
	instrAtStart := 0.0
	mid := pred.Segments() / 2

	var all []PredictionPoint
	var cur PredictionPoint
	havePred := false
	var probeErr error
	colo.OnComplete(func(stream int, e sched.Execution) {
		if stream != 0 || probeErr != nil {
			return
		}
		if err := pred.FinishExecution(e.End); err != nil {
			probeErr = err
			return
		}
		cur.ActualSec = e.Duration.Seconds()
		if havePred {
			all = append(all, cur)
		}
		cur, havePred = PredictionPoint{}, false
		pred.BeginExecution(e.End)
		instrAtStart = m.Counters().Task(fgTask).Instructions
	})

	tick := sim.MustTicker(core.DefaultSamplePeriod)
	limit := sim.Time(r.TimeLimit)
	q := sim.Time(mcfg.Quantum)
	for len(all) < executions && m.Now() < limit && probeErr == nil {
		if r.CompatStepping {
			colo.Step()
		} else {
			// Skip-ahead: the quanta strictly before the next sampler tick
			// cannot fire the ticker, so batch them in one StepN. StepN
			// early-stops on completions, so OnComplete still observes each
			// execution at its exact quantum boundary; the boundary quantum
			// itself runs through the single-Step path below.
			now := m.Now()
			k := 0
			if due := tick.NextDue(); due > now {
				k = int((due - now - 1) / q)
			}
			if rem := int((limit - now + q - 1) / q); rem < k {
				k = rem
			}
			if k > 0 {
				colo.StepN(k)
			} else {
				colo.Step()
			}
		}
		if !tick.Fire(m.Now()) {
			continue
		}
		progress := m.Counters().Task(fgTask).Instructions - instrAtStart
		if err := pred.Observe(m.Now(), progress); err != nil {
			return nil, err
		}
		if !havePred && pred.SegmentIndex() >= mid {
			d, err := pred.PredictDuration(m.Now())
			if err != nil {
				return nil, err
			}
			cur.PredictedSec = d.Seconds()
			havePred = true
		}
	}
	if probeErr != nil {
		return nil, probeErr
	}
	if len(all) <= skip {
		return nil, fmt.Errorf("experiment: prediction probe got only %d executions", len(all))
	}
	pts := all[skip:]
	res := &PredictionProbeResult{Mix: mix, Points: pts}
	var errSum float64
	actuals := make([]float64, len(pts))
	for i, p := range pts {
		errSum += p.Error()
		actuals[i] = p.ActualSec
	}
	res.MeanError = errSum / float64(len(pts))
	sum, err := stats.Summarize(actuals)
	if err != nil {
		return nil, err
	}
	res.NormalizedStd = sum.CV()
	return res, nil
}

// RenderPredictionTrace formats Fig. 6: a per-execution trace (cycles at
// the 2 GHz nominal clock, like the paper's y-axis).
func RenderPredictionTrace(res *PredictionProbeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: Prediction Trace for %s (midpoint predictions, %d consecutive executions)\n",
		res.Mix.Name, len(res.Points))
	fmt.Fprintf(&b, "%5s %14s %14s %8s\n", "exec", "actual(cyc)", "predict(cyc)", "error")
	for i, p := range res.Points {
		fmt.Fprintf(&b, "%5d %14.4g %14.4g %7.2f%%\n",
			i+1, p.ActualSec*2e9, p.PredictedSec*2e9, p.Error()*100)
	}
	fmt.Fprintf(&b, "mean error %.2f%%\n", res.MeanError*100)
	return b.String()
}

// PredictionAccuracy runs the predictor probe over all 35 single-FG mixes
// (Fig. 7) concurrently.
func (r *Runner) PredictionAccuracy(executions, skip int) ([]*PredictionProbeResult, error) {
	mixes := AllSingleFGMixes()
	out := make([]*PredictionProbeResult, len(mixes))
	errs := make([]error, len(mixes))
	fanOut(len(mixes), func(i int) {
		out[i], errs[i] = r.PredictionProbe(mixes[i], executions, skip)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", mixes[i].Name, err)
		}
	}
	return out, nil
}

// RenderPredictionAccuracy formats Fig. 7.
func RenderPredictionAccuracy(results []*PredictionProbeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: Prediction Accuracy for all FG-BG mixes\n")
	if len(results) == 0 {
		fmt.Fprintf(&b, "no results\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-34s %12s %14s\n", "mix", "avg error", "normalized std")
	var errSum float64
	for _, res := range results {
		fmt.Fprintf(&b, "%-34s %11.2f%% %13.2f%%\n", res.Mix.Name, res.MeanError*100, res.NormalizedStd*100)
		errSum += res.MeanError
	}
	fmt.Fprintf(&b, "overall average error %.2f%%\n", errSum/float64(len(results))*100)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 8

// PartitionSweepResult holds Fig. 8's exhaustive partition search plus the
// coarse controller's convergence on the same mix.
type PartitionSweepResult struct {
	Mix Mix
	// Ways and MeanSec are the sweep axes: static FG partition size vs mean
	// FG execution time.
	Ways    []int
	MeanSec []float64
	// Knee is the smallest way count achieving 95% of the total
	// improvement between the smallest and the best partition — the visual
	// knee of the Fig. 8 curve.
	Knee int
	// DirigentWays is where the coarse controller converged.
	DirigentWays int
	// DirigentExecutions is how many FG executions it took to reach the
	// final partition.
	DirigentExecutions int
}

// PartitionSweep performs the Fig. 8 experiment: an exhaustive static sweep
// of FG partition sizes for a mix (BG at full speed, no fine control), then
// a Dirigent run to see where the coarse heuristic converges.
func (r *Runner) PartitionSweep(mix Mix, minWays, maxWays int) (*PartitionSweepResult, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	res := &PartitionSweepResult{Mix: mix}
	best := math.Inf(1)
	for w := minWays; w <= maxWays; w++ {
		run, err := r.runOne(mix, runSpec{
			cfg:     config.MustByName(config.StaticBoth),
			fgWays:  w,
			bgLevel: -1,
			execs:   r.Executions / 2,
		})
		if err != nil {
			return nil, err
		}
		mean := run.Streams[0].Summary.Mean
		res.Ways = append(res.Ways, w)
		res.MeanSec = append(res.MeanSec, mean)
		if mean < best {
			best = mean
		}
	}
	worst := stats.Max(res.MeanSec)
	span := worst - best
	for i, m := range res.MeanSec {
		if span <= 0 || m <= best+0.05*span {
			res.Knee = res.Ways[i]
			break
		}
	}

	// Dirigent run: baseline first for the deadline, then full Dirigent.
	base, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions})
	if err != nil {
		return nil, err
	}
	targets := make([]time.Duration, len(base.Streams))
	deadlines := make([]float64, len(base.Streams))
	for i, s := range base.Streams {
		deadlines[i] = s.Summary.Mean + DeadlineSigma*s.Summary.Std
		targets[i] = time.Duration(deadlines[i] * float64(time.Second))
	}
	dir, err := r.runOne(mix, runSpec{
		cfg: config.MustByName(config.Dirigent), targets: targets, deadlines: deadlines,
		bgLevel: -1, execs: r.Executions,
	})
	if err != nil {
		return nil, err
	}
	res.DirigentWays = dir.FGWays
	res.DirigentExecutions = dir.ConvergedAtExecution
	return res, nil
}

// RenderPartitionSweep formats Fig. 8.
func RenderPartitionSweep(res *PartitionSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: Exhaustive Search on Partition Size (%s)\n", res.Mix.Name)
	fmt.Fprintf(&b, "%6s %12s %10s\n", "ways", "mean (s)", "vs best")
	best := stats.Min(res.MeanSec)
	for i, w := range res.Ways {
		fmt.Fprintf(&b, "%6d %12.3f %9.2f%%\n", w, res.MeanSec[i], (res.MeanSec[i]/best-1)*100)
	}
	fmt.Fprintf(&b, "knee at %d ways; Dirigent converged to %d ways after %d executions\n",
		res.Knee, res.DirigentWays, res.DirigentExecutions)
	return b.String()
}

// ---------------------------------------------------------- Fig. 9/10/13/14

// RenderComparison formats Fig. 9-style per-mix bars: FG success rate and
// relative BG throughput for every configuration.
func RenderComparison(title string, results []*MixResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-36s", "mix")
	for _, c := range config.Names() {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, "   (each cell: FG success / rel BG throughput)\n")
	for _, mr := range results {
		fmt.Fprintf(&b, "%-36s", mr.Mix.Name)
		for _, c := range config.Names() {
			run := mr.ByConfig[c]
			fmt.Fprintf(&b, "  %4.2f/%5.2f", run.MeanSuccessRate(), mr.RelBGThroughput(c))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// SummaryRow is one configuration's aggregate (Fig. 10/13).
type SummaryRow struct {
	Config config.Name
	// FGRatio is the arithmetic mean FG success rate.
	FGRatio float64
	// BGThroughput is the harmonic mean relative BG throughput.
	BGThroughput float64
	// RelStd is the arithmetic mean normalized standard deviation.
	RelStd float64
}

// Summarize aggregates mix results in the paper's way: arithmetic mean of
// FG success, harmonic mean of relative BG throughput (Fig. 10/13), and
// mean normalized std (Fig. 14 summary).
func Summarize(results []*MixResult) ([]SummaryRow, error) {
	var rows []SummaryRow
	for _, c := range config.Names() {
		var fg, relStd float64
		var bgs []float64
		for _, mr := range results {
			run := mr.ByConfig[c]
			if run == nil {
				return nil, fmt.Errorf("experiment: mix %s missing config %s", mr.Mix.Name, c)
			}
			fg += run.MeanSuccessRate()
			relStd += mr.RelStd(c)
			bgs = append(bgs, mr.RelBGThroughput(c))
		}
		n := float64(len(results))
		hm, err := stats.HarmonicMean(bgs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SummaryRow{
			Config:       c,
			FGRatio:      fg / n,
			BGThroughput: hm,
			RelStd:       relStd / n,
		})
	}
	return rows, nil
}

// RenderSummary formats Fig. 10/13.
func RenderSummary(title string, rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %14s %10s\n", "config", "FG ratio", "BG throughput", "rel std")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.3f %14.3f %10.3f\n", r.Config, r.FGRatio, r.BGThroughput, r.RelStd)
	}
	return b.String()
}

// RenderNormalizedStd formats Fig. 14: per-mix normalized std per config.
func RenderNormalizedStd(results []*MixResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14: Normalized Standard Deviation of Multiple FG Workload Mixes\n")
	fmt.Fprintf(&b, "%-36s", "mix")
	for _, c := range config.Names() {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, "\n")
	for _, mr := range results {
		fmt.Fprintf(&b, "%-36s", mr.Mix.Name)
		for _, c := range config.Names() {
			fmt.Fprintf(&b, " %12.2f", mr.RelStd(c))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 11

// PDFCurves builds execution-time probability density curves per
// configuration over a shared range (Fig. 11).
func PDFCurves(mr *MixResult, bins int) (map[config.Name]*stats.Histogram, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range config.Names() {
		run := mr.ByConfig[c]
		if run == nil || len(run.Streams) == 0 {
			return nil, fmt.Errorf("experiment: missing run for %s", c)
		}
		for _, d := range run.Streams[0].Durations {
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
	}
	if !(lo < hi) {
		hi = lo + 1e-3
	}
	out := map[config.Name]*stats.Histogram{}
	for _, c := range config.Names() {
		h, err := stats.NewHistogram(lo, hi+1e-9, bins)
		if err != nil {
			return nil, err
		}
		for _, d := range mr.ByConfig[c].Streams[0].Durations {
			h.Add(d)
		}
		out[c] = h
	}
	return out, nil
}

// RenderPDFCurves formats Fig. 11.
func RenderPDFCurves(mix Mix, curves map[config.Name]*stats.Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11: Execution Time Probability Density (%s)\n", mix.Name)
	// Pick the reference histogram (bin axis) in stable config order, not
	// map order, so the rendered axis is reproducible.
	var any *stats.Histogram
	for _, c := range config.Names() {
		if h, ok := curves[c]; ok {
			any = h
			break
		}
	}
	if any == nil {
		return ""
	}
	fmt.Fprintf(&b, "%12s", "t (s)")
	for _, c := range config.Names() {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, "\n")
	for i := range any.Counts {
		fmt.Fprintf(&b, "%12.3f", any.BinCenter(i))
		for _, c := range config.Names() {
			fmt.Fprintf(&b, " %12.2f", curves[c].PDF()[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 12

// FreqDistRow is the BG-core frequency residency distribution of one
// configuration, over the five Dirigent grades.
type FreqDistRow struct {
	Config config.Name
	// GHz are the grade frequencies; Fraction the time share at each.
	GHz      []float64
	Fraction []float64
}

// FreqDistribution extracts Fig. 12 from a mix result: the distribution of
// BG core frequencies under DirigentFreq and Dirigent.
func FreqDistribution(mr *MixResult) ([]FreqDistRow, error) {
	levels := machine.DefaultConfig().FreqLevelsGHz
	grades := core.DefaultGrades()
	var rows []FreqDistRow
	for _, c := range []config.Name{config.DirigentFreq, config.Dirigent} {
		run := mr.ByConfig[c]
		if run == nil {
			return nil, fmt.Errorf("experiment: missing run for %s", c)
		}
		var total time.Duration
		for _, d := range run.BGFreqResidency {
			total += d
		}
		row := FreqDistRow{Config: c}
		for _, g := range grades {
			row.GHz = append(row.GHz, levels[g])
			frac := 0.0
			if total > 0 {
				frac = float64(run.BGFreqResidency[g]) / float64(total)
			}
			row.Fraction = append(row.Fraction, frac)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFreqDistribution formats Fig. 12.
func RenderFreqDistribution(mix Mix, rows []FreqDistRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12: BG Core Frequency Distribution (%s)\n", mix.Name)
	fmt.Fprintf(&b, "%-14s", "config")
	for _, g := range rows[0].GHz {
		fmt.Fprintf(&b, " %8.1fGHz", g)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Config)
		for _, f := range r.Fraction {
			fmt.Fprintf(&b, " %11.2f", f)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 15

// TradeoffPoint is one target setting of the Fig. 15 sweep.
type TradeoffPoint struct {
	// TargetFactor is the deadline as a multiple of standalone mean time.
	TargetFactor float64
	// FGMeanNorm is mean FG execution time normalized to standalone.
	FGMeanNorm float64
	// FGStdNorm is FG std normalized to Baseline std.
	FGStdNorm float64
	// BGThroughput is relative to Baseline.
	BGThroughput float64
	// SuccessRate against the swept target.
	SuccessRate float64
}

// TradeoffSweep runs Fig. 15: full Dirigent on a mix with the latency
// target swept from the standalone mean upward, reporting how FG time
// stretches to the target and converts into BG throughput.
func (r *Runner) TradeoffSweep(mix Mix, factors []float64) ([]TradeoffPoint, float64, error) {
	if err := mix.Validate(); err != nil {
		return nil, 0, err
	}
	// Standalone mean.
	alone, err := r.runOne(Mix{Name: mix.FG[0] + " alone", FG: mix.FG[:1]},
		runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions / 2})
	if err != nil {
		return nil, 0, err
	}
	standalone := alone.Streams[0].Summary.Mean

	// Baseline for normalization.
	base, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions})
	if err != nil {
		return nil, 0, err
	}
	baseStd := base.Streams[0].Summary.Std
	baseBG := base.BGInstrRate

	var out []TradeoffPoint
	for _, f := range factors {
		target := standalone * f
		deadlines := []float64{target}
		targets := []time.Duration{time.Duration(target * float64(time.Second))}
		run, err := r.runOne(mix, runSpec{
			cfg: config.MustByName(config.Dirigent), targets: targets, deadlines: deadlines,
			bgLevel: -1, execs: r.Executions,
		})
		if err != nil {
			return nil, 0, err
		}
		pt := TradeoffPoint{
			TargetFactor: f,
			FGMeanNorm:   run.Streams[0].Summary.Mean / standalone,
			BGThroughput: run.BGInstrRate / baseBG,
			SuccessRate:  run.Streams[0].SuccessRate,
		}
		if baseStd > 0 {
			pt.FGStdNorm = run.Streams[0].Summary.Std / baseStd
		}
		out = append(out, pt)
	}
	return out, standalone, nil
}

// RenderTradeoff formats Fig. 15.
func RenderTradeoff(mix Mix, standalone float64, pts []TradeoffPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15: FG Throughput vs BG Performance Tradeoff (%s, standalone %.3fs)\n", mix.Name, standalone)
	fmt.Fprintf(&b, "%8s %12s %12s %14s %10s\n", "target", "FG mean", "FG std", "BG throughput", "success")
	for _, p := range pts {
		fmt.Fprintf(&b, "%7.2fx %12.3f %12.3f %14.3f %10.2f\n",
			p.TargetFactor, p.FGMeanNorm, p.FGStdNorm, p.BGThroughput, p.SuccessRate)
	}
	return b.String()
}

// ---------------------------------------------------------------- Headline

// Headline aggregates the paper's headline numbers over single-FG mixes:
// std reduction and BG cost for Dirigent and DirigentFreq, plus the BG
// advantage over the static schemes.
type Headline struct {
	DirigentStdReduction     float64 // paper: ~85%
	DirigentBGLoss           float64 // paper: ~9%
	DirigentFreqStdReduction float64 // paper: ~70%
	DirigentFreqBGLoss       float64 // paper: ~15%
	StaticBGLoss             float64 // paper: ~40% (best static scheme)
	DirigentVsStaticBGGain   float64 // paper: ~30%
	DirigentFGSuccess        float64 // paper: >99%
	BaselineFGSuccess        float64 // paper: ~60%
}

// ComputeHeadline derives the headline numbers from mix results.
func ComputeHeadline(results []*MixResult) (Headline, error) {
	rows, err := Summarize(results)
	if err != nil {
		return Headline{}, err
	}
	byName := map[config.Name]SummaryRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	staticBG := math.Max(byName[config.StaticFreq].BGThroughput, byName[config.StaticBoth].BGThroughput)
	h := Headline{
		DirigentStdReduction:     1 - byName[config.Dirigent].RelStd,
		DirigentBGLoss:           1 - byName[config.Dirigent].BGThroughput,
		DirigentFreqStdReduction: 1 - byName[config.DirigentFreq].RelStd,
		DirigentFreqBGLoss:       1 - byName[config.DirigentFreq].BGThroughput,
		StaticBGLoss:             1 - staticBG,
		DirigentFGSuccess:        byName[config.Dirigent].FGRatio,
		BaselineFGSuccess:        byName[config.Baseline].FGRatio,
	}
	if staticBG > 0 {
		h.DirigentVsStaticBGGain = byName[config.Dirigent].BGThroughput/staticBG - 1
	}
	return h, nil
}

// Render formats the headline numbers.
func (h Headline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline numbers (paper values in parentheses)\n")
	fmt.Fprintf(&b, "Baseline FG success rate:        %5.1f%%  (~60%%)\n", h.BaselineFGSuccess*100)
	fmt.Fprintf(&b, "Dirigent FG success rate:        %5.1f%%  (>99%%)\n", h.DirigentFGSuccess*100)
	fmt.Fprintf(&b, "Dirigent std reduction:          %5.1f%%  (85%%)\n", h.DirigentStdReduction*100)
	fmt.Fprintf(&b, "Dirigent BG loss:                %5.1f%%  (9%%)\n", h.DirigentBGLoss*100)
	fmt.Fprintf(&b, "DirigentFreq std reduction:      %5.1f%%  (70%%)\n", h.DirigentFreqStdReduction*100)
	fmt.Fprintf(&b, "DirigentFreq BG loss:            %5.1f%%  (15%%)\n", h.DirigentFreqBGLoss*100)
	fmt.Fprintf(&b, "Static schemes BG loss:          %5.1f%%  (~40%%)\n", h.StaticBGLoss*100)
	fmt.Fprintf(&b, "Dirigent BG gain over static:    %5.1f%%  (~30%%)\n", h.DirigentVsStaticBGGain*100)
	return b.String()
}

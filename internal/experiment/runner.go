package experiment

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/core"
	"dirigent/internal/fault"
	"dirigent/internal/machine"
	"dirigent/internal/sched"
	"dirigent/internal/sim"
	"dirigent/internal/stats"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// DeadlineSigma is the paper's deadline rule: µ_Baseline + 0.3·σ_Baseline
// (§5.4).
const DeadlineSigma = 0.3

// SuccessTarget is the completion-rate goal the paper evaluates against
// (95-percentile latency constraint, §2.1/§5.4).
const SuccessTarget = 0.95

// Runner executes workload mixes under the five configurations.
type Runner struct {
	// Executions per run (post-warmup executions are Executions−Warmup).
	Executions int
	// Warmup executions discarded from statistics.
	Warmup int
	// CalibExecutions per candidate during StaticBoth calibration.
	CalibExecutions int
	// ConvergenceWarmup is the extra warmup for partitioned Dirigent runs,
	// covering the coarse controller's convergence (~32 executions, §5.3).
	ConvergenceWarmup int
	// TimeLimit bounds each run in simulated time.
	TimeLimit time.Duration
	// MachineClass selects the hardware every run and profile of this
	// runner is built on (machine.ClassNames). Empty means the default
	// xeon-e5 evaluation platform, byte-identical to runners predating
	// machine classes.
	MachineClass string

	// CompatStepping drives every run's machine through the legacy
	// per-quantum engine instead of the skip-ahead fast path. Results are
	// bit-identical either way; the flag exists for differential testing
	// and for the benchreg speedup probe's baseline timing.
	CompatStepping bool

	// Recorder is an optional extra telemetry sink: every run's event
	// stream is teed into it (labelled "mix/config" via WithRun) in
	// addition to the per-run aggregator the runner consumes internally.
	// The sink must be safe for concurrent use when RunMixes parallelism
	// is in play (telemetry.JSONL is).
	Recorder telemetry.Recorder

	mu       sync.Mutex
	profiles map[string]*profileEntry
}

// profileEntry makes offline profiling single-flight: the first caller for
// a benchmark computes, concurrent callers for the same benchmark block on
// the same once instead of profiling redundantly.
type profileEntry struct {
	once sync.Once
	p    *core.Profile
	err  error
}

// NewRunner returns a runner with the defaults used throughout the
// reproduction: 60 executions, 5 warmup, 15 calibration executions.
func NewRunner() *Runner {
	return &Runner{
		Executions:        60,
		Warmup:            5,
		CalibExecutions:   30,
		ConvergenceWarmup: 32,
		TimeLimit:         time.Hour,
		profiles:          map[string]*profileEntry{},
	}
}

// Profile returns the offline profile for an FG benchmark on the runner's
// machine class, computing and caching it on first use. Profiles are
// immutable and safe to share. Concurrent calls for the same benchmark are
// single-flight: exactly one profiling run happens, the rest wait for its
// result.
func (r *Runner) Profile(name string) (*core.Profile, error) {
	// Profiles are machine-dependent (a little core's standalone time is
	// not a Xeon's), so the cache key carries the class. The default class
	// keeps the bare benchmark name and the zero profiler options the
	// pre-class code used.
	class := r.MachineClass
	if class == machine.DefaultClass {
		class = ""
	}
	key := name
	if class != "" {
		key = class + "/" + name
	}
	r.mu.Lock()
	e, ok := r.profiles[key]
	if !ok {
		e = &profileEntry{}
		r.profiles[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		b, err := workload.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		opts := core.ProfilerOptions{}
		if class != "" {
			mcfg, err := machine.ClassConfig(class)
			if err != nil {
				e.err = err
				return
			}
			opts.MachineConfig = mcfg
		}
		e.p, e.err = core.ProfileBenchmark(b, opts)
	})
	return e.p, e.err
}

// StreamResult holds per-FG-stream outcomes of one run.
type StreamResult struct {
	// Bench is the stream's benchmark name.
	Bench string
	// Durations are post-warmup execution times in seconds.
	Durations []float64
	// Summary describes Durations.
	Summary stats.Summary
	// MPKI is the stream's LLC misses per kilo-instruction over the whole
	// run (Fig. 4).
	MPKI float64
	// Deadline is the absolute per-execution deadline in seconds (0 when
	// not yet known, i.e. during the baseline pass).
	Deadline float64
	// SuccessRate is the fraction of executions meeting Deadline.
	SuccessRate float64
}

// RunResult holds the outcome of one mix under one configuration.
type RunResult struct {
	Mix    Mix
	Config config.Name
	// Policy is the registered name of the QoS policy that drove the run
	// ("" for non-runtime configurations).
	Policy string
	// Streams are per-FG-stream results.
	Streams []StreamResult
	// BGInstrRate is BG instructions per simulated second — the throughput
	// numerator; divide by Baseline's to get the paper's relative metric.
	BGInstrRate float64
	// Elapsed is the simulated duration of the run.
	Elapsed time.Duration
	// FGWays is the final FG partition (0 = unpartitioned).
	FGWays int
	// StaticBGLevel is the static BG frequency level (-1 = not static).
	StaticBGLevel int
	// ConvergedAtExecution is the FG execution count at the coarse
	// controller's final partition change (Fig. 8's convergence measure).
	ConvergedAtExecution int
	// BGFreqResidency sums time at each machine frequency level across BG
	// cores (Fig. 12).
	BGFreqResidency []time.Duration
	// Fine is the cumulative fine-controller telemetry, aggregated from
	// the run's event stream (zero for non-runtime runs).
	Fine telemetry.FineStats
	// TotalLLCMisses, FGLLCMisses and FGInstructions are machine-wide and
	// FG-side counters for the Fig. 5 interference metrics.
	TotalLLCMisses float64
	FGLLCMisses    float64
	FGInstructions float64
	// Faults counts injected faults observed in the run's event stream, by
	// class and in total; Reprofiles counts successful in-place re-profiling
	// episodes. All zero for fault-free runs.
	Faults        int
	FaultsByClass map[string]int
	Reprofiles    int
}

// TotalMPKFGI returns machine-wide LLC misses per thousand FG instructions
// (Fig. 5's blue bars).
func (rr *RunResult) TotalMPKFGI() float64 {
	if rr.FGInstructions <= 0 {
		return 0
	}
	return rr.TotalLLCMisses / rr.FGInstructions * 1000
}

// FGMissShare returns the fraction of machine-wide LLC misses generated by
// FG tasks (Fig. 5's red curve).
func (rr *RunResult) FGMissShare() float64 {
	if rr.TotalLLCMisses <= 0 {
		return 0
	}
	return rr.FGLLCMisses / rr.TotalLLCMisses
}

// MinSuccessRate returns the worst per-stream success rate.
func (rr *RunResult) MinSuccessRate() float64 {
	min := 1.0
	for _, s := range rr.Streams {
		if s.SuccessRate < min {
			min = s.SuccessRate
		}
	}
	return min
}

// MeanSuccessRate returns the average per-stream success rate.
func (rr *RunResult) MeanSuccessRate() float64 {
	if len(rr.Streams) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range rr.Streams {
		sum += s.SuccessRate
	}
	return sum / float64(len(rr.Streams))
}

// MeanStd returns the average per-stream standard deviation.
func (rr *RunResult) MeanStd() float64 {
	if len(rr.Streams) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range rr.Streams {
		sum += s.Summary.Std
	}
	return sum / float64(len(rr.Streams))
}

// MixResult bundles a mix's runs across configurations.
type MixResult struct {
	Mix Mix
	// Deadlines are the per-stream deadlines (seconds) derived from the
	// Baseline pass.
	Deadlines []float64
	// ByConfig maps configuration name to its run.
	ByConfig map[config.Name]*RunResult
}

// RelBGThroughput returns cfg's BG throughput relative to Baseline.
func (mr *MixResult) RelBGThroughput(cfg config.Name) float64 {
	base := mr.ByConfig[config.Baseline]
	run := mr.ByConfig[cfg]
	if base == nil || run == nil || base.BGInstrRate == 0 {
		return 0
	}
	return run.BGInstrRate / base.BGInstrRate
}

// RelStd returns cfg's mean FG standard deviation relative to Baseline
// (Fig. 14).
func (mr *MixResult) RelStd(cfg config.Name) float64 {
	base := mr.ByConfig[config.Baseline]
	run := mr.ByConfig[cfg]
	if base == nil || run == nil || base.MeanStd() == 0 {
		return 0
	}
	return run.MeanStd() / base.MeanStd()
}

// runSpec carries the resolved per-run parameters.
type runSpec struct {
	cfg       config.Config
	targets   []time.Duration // per stream; required when cfg.UseRuntime
	deadlines []float64       // per stream, seconds; for success accounting
	fgWays    int             // static partition (0 = none)
	bgLevel   int             // static BG frequency level (-1 = max)
	execs     int
	// seed overrides the mix-derived machine/scheduler seed (0 keeps
	// Mix.Seed(), which is what every batch entry point uses).
	seed uint64
	// extra is an additional per-run telemetry sink teed into the run's bus
	// (the server uses it for live subscriber streaming). Recording is
	// strictly observational, so results are identical with or without it.
	extra telemetry.Recorder
	// extraWarmup extends the discarded prefix: Dirigent's coarse
	// controller needs ~30 executions to converge its partition (§5.3);
	// results reflect converged behaviour, so those executions are run in
	// addition to `execs` and excluded from statistics.
	extraWarmup int
	// faults is the injected fault plan (zero = clean run). Runtime classes
	// flow through a seeded injector shared by the machine and the Dirigent
	// runtime; the ProfileScale/ProfileRephase fields degrade the offline
	// profiles before the runtime sees them.
	faults fault.Plan
	// reprofileDrift enables the runtime's chronic-mismatch detection
	// (core.RuntimeConfig.ReprofileAlphaDrift) when positive;
	// reprofileAfter overrides the drifting-execution streak length
	// (0 keeps the runtime default).
	reprofileDrift float64
	reprofileAfter int
}

// RunMix executes a mix under all five configurations, deriving deadlines
// from the Baseline pass and calibrating StaticBoth per the paper's
// methodology.
func (r *Runner) RunMix(mix Mix) (*MixResult, error) {
	return r.RunConfigs(mix, config.Names()...)
}

// RunConfigs executes a mix under a subset of the five configurations. The
// Baseline pass always runs first — it defines the per-stream deadlines —
// and is always present in the result, whether or not it was requested.
// When StaticBoth is requested without Dirigent, its static partition falls
// back to the default 10 ways instead of Dirigent's converged value.
//
// Lighter subsets are what the regression harness (internal/benchreg) runs
// in CI: Baseline + the Dirigent configurations give the QoS completion
// rates without paying for StaticBoth's offline calibration sweep.
func (r *Runner) RunConfigs(mix Mix, names ...config.Name) (*MixResult, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	want := map[config.Name]bool{}
	for _, n := range names {
		if _, err := config.ByName(n); err != nil {
			return nil, err
		}
		want[n] = true
	}
	res := &MixResult{Mix: mix, ByConfig: map[config.Name]*RunResult{}}

	// 1. Baseline: free contention; defines the deadlines.
	base, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions})
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", mix.Name, err)
	}
	deadlines, targets := deadlinesFromBaseline(base)
	applyDeadlines(base, deadlines)
	res.Deadlines = deadlines
	res.ByConfig[config.Baseline] = base

	// 2. StaticFreq: BG pinned to the slowest level.
	if want[config.StaticFreq] {
		sf, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.StaticFreq), deadlines: deadlines, bgLevel: 0, execs: r.Executions})
		if err != nil {
			return nil, fmt.Errorf("staticfreq %s: %w", mix.Name, err)
		}
		res.ByConfig[config.StaticFreq] = sf
	}

	// 3. DirigentFreq: fine control only.
	if want[config.DirigentFreq] {
		df, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.DirigentFreq), targets: targets, deadlines: deadlines, bgLevel: -1, execs: r.Executions})
		if err != nil {
			return nil, fmt.Errorf("dirigentfreq %s: %w", mix.Name, err)
		}
		res.ByConfig[config.DirigentFreq] = df
	}

	// 4. Dirigent: fine + coarse.
	ways := 0
	if want[config.Dirigent] {
		dir, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Dirigent), targets: targets, deadlines: deadlines, bgLevel: -1, execs: r.Executions, extraWarmup: r.ConvergenceWarmup})
		if err != nil {
			return nil, fmt.Errorf("dirigent %s: %w", mix.Name, err)
		}
		res.ByConfig[config.Dirigent] = dir
		ways = dir.FGWays
	}

	// 5. StaticBoth: static partition from Dirigent's converged heuristic
	// (the paper verified it near-optimal) + the best static BG frequency
	// found by offline search.
	if want[config.StaticBoth] {
		if ways == 0 {
			ways = 10
		}
		level, err := r.calibrateStaticBGLevel(mix, ways, deadlines)
		if err != nil {
			return nil, fmt.Errorf("staticboth calibration %s: %w", mix.Name, err)
		}
		sb, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.StaticBoth), deadlines: deadlines, fgWays: ways, bgLevel: level, execs: r.Executions})
		if err != nil {
			return nil, fmt.Errorf("staticboth %s: %w", mix.Name, err)
		}
		res.ByConfig[config.StaticBoth] = sb
	}
	return res, nil
}

// calibrateStaticBGLevel searches the five Dirigent grades from fastest to
// slowest for the highest static BG frequency whose calibration run meets
// the deadline on EVERY execution. A static configuration cannot adapt, so
// it must be provisioned for the worst case observed offline — this is
// precisely the over-provisioning the paper identifies as the cost of
// static schemes (§3.1): resources are reserved so that the tail fits, and
// are wasted whenever tasks finish early.
func (r *Runner) calibrateStaticBGLevel(mix Mix, fgWays int, deadlines []float64) (int, error) {
	grades := core.DefaultGrades()
	for gi := len(grades) - 1; gi >= 1; gi-- {
		run, err := r.runOne(mix, runSpec{
			cfg:       config.MustByName(config.StaticBoth),
			deadlines: deadlines,
			fgWays:    fgWays,
			bgLevel:   grades[gi],
			execs:     r.CalibExecutions,
		})
		if err != nil {
			return 0, err
		}
		if run.MinSuccessRate() >= 1 {
			return grades[gi], nil
		}
	}
	return grades[0], nil
}

// deadlinesFromBaseline derives the paper's per-stream deadlines
// (µ + 0.3·σ over the Baseline pass, §5.4) and the equivalent runtime
// targets.
func deadlinesFromBaseline(base *RunResult) ([]float64, []time.Duration) {
	deadlines := make([]float64, len(base.Streams))
	targets := make([]time.Duration, len(base.Streams))
	for i, s := range base.Streams {
		deadlines[i] = s.Summary.Mean + DeadlineSigma*s.Summary.Std
		targets[i] = time.Duration(deadlines[i] * float64(time.Second))
	}
	return deadlines, targets
}

func applyDeadlines(rr *RunResult, deadlines []float64) {
	for i := range rr.Streams {
		s := &rr.Streams[i]
		s.Deadline = deadlines[i]
		ok := 0
		for _, d := range s.Durations {
			if d <= deadlines[i] {
				ok++
			}
		}
		if len(s.Durations) > 0 {
			s.SuccessRate = float64(ok) / float64(len(s.Durations))
		}
	}
}

// runOne executes a mix once under a resolved spec: assemble a session,
// drive it to completion, and fold the event stream into a RunResult.
func (r *Runner) runOne(mix Mix, spec runSpec) (*RunResult, error) {
	s, err := r.startSession(mix, spec)
	if err != nil {
		return nil, err
	}
	if err := s.RunExecutions(spec.execs+spec.extraWarmup, sim.Time(r.TimeLimit)); err != nil {
		return nil, err
	}
	return s.Collect()
}

func (r *Runner) collect(mix Mix, spec runSpec, colo *sched.Colocation, rt *core.Runtime, agg *telemetry.Aggregator) (*RunResult, error) {
	m := colo.Machine()
	rr := &RunResult{
		Mix:           mix,
		Config:        spec.cfg.Name,
		Elapsed:       time.Duration(m.Now()),
		StaticBGLevel: spec.bgLevel,
		FGWays:        spec.fgWays,
	}
	if rt != nil {
		rr.Policy = rt.PolicyName()
		rr.Fine = agg.Fine()
		// Partition reporting keys off the policy's declared capability, not
		// the Dirigent-specific coarse controller: any LLC-way policy (e.g.
		// cordlike's static split) reports its partition the same way.
		if rt.Capabilities().LLCWays {
			rr.FGWays = agg.FGWays()
			rr.ConvergedAtExecution = agg.ConvergedAtExecution()
		}
	}
	rr.Faults = agg.Faults()
	rr.FaultsByClass = agg.FaultsByClass()
	rr.Reprofiles = agg.Reprofiles()
	warm := r.Warmup + spec.extraWarmup
	for i, f := range colo.FG() {
		// Durations come from the run's KindExecutionComplete events, not
		// the scheduler's private bookkeeping: the QoS statistics below are
		// derived from the same stream a JSONL trace (or the regression
		// gate) sees.
		durs := durationsSeconds(agg.StreamDurations(i))
		if len(durs) > warm {
			durs = durs[warm:]
		}
		// A stream removed mid-run (served tenants admit and evict streams
		// live) may have nothing after warmup; report an empty summary
		// instead of failing the whole collection.
		sum := stats.Summary{}
		if len(durs) > 0 || !f.Removed() {
			var err error
			sum, err = stats.Summarize(durs)
			if err != nil {
				return nil, err
			}
		}
		fgSample := m.Counters().Task(f.Task)
		rr.Streams = append(rr.Streams, StreamResult{
			Bench:     f.Bench.Name,
			Durations: durs,
			Summary:   sum,
			MPKI:      fgSample.MPKI(),
		})
		rr.FGLLCMisses += fgSample.LLCMisses
		rr.FGInstructions += fgSample.Instructions
	}
	rr.TotalLLCMisses = m.Counters().Total().LLCMisses
	if spec.deadlines != nil {
		applyDeadlines(rr, spec.deadlines)
	}
	if sec := time.Duration(m.Now()).Seconds(); sec > 0 {
		rr.BGInstrRate = colo.BGInstructions() / sec
	}
	// BG core frequency residency (Fig. 12), reconstructed from the event
	// stream: the aggregator replays quantum steps against DVFS transitions
	// and lands on exactly the machine's own accounting.
	levels := len(m.Config().FreqLevelsGHz)
	rr.BGFreqResidency = make([]time.Duration, levels)
	for _, w := range colo.BG() {
		res := agg.FreqResidency(w.Core)
		if res == nil {
			return nil, fmt.Errorf("experiment: no residency telemetry for core %d", w.Core)
		}
		for l, d := range res {
			rr.BGFreqResidency[l] += d
		}
	}
	return rr, nil
}

// durationsSeconds converts telemetry durations to the seconds the
// statistics layer works in.
func durationsSeconds(durs []time.Duration) []float64 {
	out := make([]float64, len(durs))
	for i, d := range durs {
		out[i] = d.Seconds()
	}
	return out
}

// RunMixes runs several mixes concurrently (each mix is an independent
// simulated machine; results are deterministic regardless of parallelism)
// and returns results in input order.
func (r *Runner) RunMixes(mixes []Mix) ([]*MixResult, error) {
	out := make([]*MixResult, len(mixes))
	errs := make([]error, len(mixes))
	fanOut(len(mixes), func(i int) {
		out[i], errs[i] = r.RunMix(mixes[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", mixes[i].Name, err)
		}
	}
	return out, nil
}

// fanOut runs fn(0), …, fn(n-1) on goroutines, at most MaxParallel at a
// time, and waits for all of them. It is the one bounded fan-out every
// concurrent sweep (mixes, policy sweeps, resilience jobs, prediction
// probes) goes through: each fn owns slot i of its caller's result/error
// slices, so no synchronization beyond the barrier is needed.
func fanOut(n int, fn func(i int)) {
	sem := make(chan struct{}, MaxParallel())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// warnMaxParallel limits the bad-DIRIGENT_MAX_PARALLEL warning to one line
// per process (MaxParallel is called once per sweep).
var warnMaxParallel sync.Once

// MaxParallel is the fan-out width: the DIRIGENT_MAX_PARALLEL environment
// variable when set, otherwise the host CPU count. Results are deterministic
// regardless of the width — the knob only trades wall-clock time against
// load (e.g. capping a shared CI box, or widening past GOMAXPROCS when runs
// block on nothing). Values below 1 are clamped to 1 — a zero-capacity
// fan-out semaphore would block every sweep goroutine forever — and
// unparsable values fall back to the CPU count; both warn once on stderr.
func MaxParallel() int {
	if s := os.Getenv("DIRIGENT_MAX_PARALLEL"); s != "" {
		n, err := strconv.Atoi(s)
		switch {
		case err != nil:
			warnMaxParallel.Do(func() {
				fmt.Fprintf(os.Stderr, "experiment: DIRIGENT_MAX_PARALLEL=%q is not an integer; using GOMAXPROCS\n", s)
			})
		case n < 1:
			warnMaxParallel.Do(func() {
				fmt.Fprintf(os.Stderr, "experiment: DIRIGENT_MAX_PARALLEL=%d clamped to 1\n", n)
			})
			return 1
		default:
			return n
		}
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

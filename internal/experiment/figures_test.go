package experiment

import (
	"strings"
	"testing"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/stats"
)

func TestTable1(t *testing.T) {
	out := Table1()
	for _, name := range []string{"bodytrack", "ferret", "fluidanimate", "raytrace", "streamcluster",
		"bwaves", "pca", "rs", "namd", "soplex", "libquantum", "lbm"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestFGOverview(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy figure")
	}
	r := smallRunner()
	rows, err := r.FGOverview()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Fig. 4 shape: contention slows execution and raises MPKI.
		if row.ContendSec <= row.AloneSec {
			t.Errorf("%s: contended %.3f <= alone %.3f", row.Bench, row.ContendSec, row.AloneSec)
		}
		if row.ContendMPKI <= row.AloneMPKI {
			t.Errorf("%s: contended MPKI %.2f <= alone %.2f", row.Bench, row.ContendMPKI, row.AloneMPKI)
		}
		if row.AloneSec < 0.3 || row.AloneSec > 2.2 {
			t.Errorf("%s: alone time %.3f outside the paper's 0.5-1.6s band (with slack)", row.Bench, row.AloneSec)
		}
	}
	if out := RenderFGOverview(rows); !strings.Contains(out, "Fig. 4") {
		t.Error("render missing title")
	}
}

func TestBGOverview(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy figure")
	}
	r := smallRunner()
	rows, err := r.BGOverview()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 BG workloads", len(rows))
	}
	for i, row := range rows {
		if row.TotalMPKFGI <= 0 {
			t.Errorf("%s: MPKFGI %g", row.Workload, row.TotalMPKFGI)
		}
		if row.FGShare <= 0 || row.FGShare > 1 {
			t.Errorf("%s: FG share %g", row.Workload, row.FGShare)
		}
		if i > 0 && rows[i-1].TotalMPKFGI > row.TotalMPKFGI {
			t.Error("rows should be sorted ascending")
		}
	}
	// Fig. 5 shape: the spectrum must be wide (max over min > 3).
	if rows[len(rows)-1].TotalMPKFGI < 3*rows[0].TotalMPKFGI {
		t.Errorf("BG spectrum too narrow: %g .. %g", rows[0].TotalMPKFGI, rows[len(rows)-1].TotalMPKFGI)
	}
	if out := RenderBGOverview(rows); !strings.Contains(out, "Fig. 5") {
		t.Error("render missing title")
	}
}

func TestPredictionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy figure")
	}
	r := smallRunner()
	mix := Mix{Name: "raytrace rs", FG: []string{"raytrace"}, BG: repeat("rs", 5)}
	res, err := r.PredictionProbe(mix, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 20 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Fig. 6/7 shape: midpoint predictions track actuals closely.
	if res.MeanError > 0.08 {
		t.Errorf("mean error = %.1f%%, want < 8%%", res.MeanError*100)
	}
	if res.NormalizedStd <= 0 {
		t.Error("normalized std should be positive under contention")
	}
	out := RenderPredictionTrace(res)
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "mean error") {
		t.Error("trace render incomplete")
	}
	// Errors should generally be far smaller than the execution-time
	// spread (the paper's Fig. 7 observation).
	if res.MeanError > res.NormalizedStd {
		t.Errorf("prediction error %.3f exceeds execution spread %.3f", res.MeanError, res.NormalizedStd)
	}
}

func TestPredictionProbeInvalid(t *testing.T) {
	r := smallRunner()
	if _, err := r.PredictionProbe(Mix{Name: "bad"}, 5, 0); err == nil {
		t.Error("invalid mix should error")
	}
}

func TestPartitionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy figure")
	}
	r := smallRunner()
	// The paper's Fig. 8 mix: streamcluster FG, PCA BG.
	mix := Mix{Name: "streamcluster pca", FG: []string{"streamcluster"}, BG: repeat("pca", 5)}
	res, err := r.PartitionSweep(mix, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ways) != 11 {
		t.Fatalf("sweep points = %d", len(res.Ways))
	}
	// Shape: more FG ways must not hurt much — the curve decreases then
	// flattens; the first point (2 ways) should be the worst.
	if res.MeanSec[0] < res.MeanSec[len(res.MeanSec)-1] {
		t.Errorf("2-way partition should be slowest: %v", res.MeanSec)
	}
	if res.Knee < 2 || res.Knee > 12 {
		t.Errorf("knee = %d", res.Knee)
	}
	// Dirigent converges to a nontrivial partition for this mix.
	if res.DirigentWays < 2 {
		t.Errorf("Dirigent ways = %d", res.DirigentWays)
	}
	out := RenderPartitionSweep(res)
	if !strings.Contains(out, "Fig. 8") || !strings.Contains(out, "knee") {
		t.Error("render incomplete")
	}
}

// fabricatedResults builds two MixResults with known numbers to test the
// aggregation math exactly.
func fabricatedResults() []*MixResult {
	mk := func(name string, base, dir float64) *MixResult {
		mkRun := func(cfg config.Name, succ, bgRate, std float64) *RunResult {
			return &RunResult{
				Mix:         Mix{Name: name},
				Config:      cfg,
				Streams:     []StreamResult{{SuccessRate: succ, Summary: stats.Summary{Std: std, Mean: 1}}},
				BGInstrRate: bgRate,
			}
		}
		return &MixResult{
			Mix:       Mix{Name: name},
			Deadlines: []float64{1},
			ByConfig: map[config.Name]*RunResult{
				config.Baseline:     mkRun(config.Baseline, 0.6, base, 0.10),
				config.StaticFreq:   mkRun(config.StaticFreq, 0.9, base*0.6, 0.08),
				config.StaticBoth:   mkRun(config.StaticBoth, 1.0, base*0.62, 0.04),
				config.DirigentFreq: mkRun(config.DirigentFreq, 0.95, base*0.85, 0.03),
				config.Dirigent:     mkRun(config.Dirigent, 1.0, base*dir, 0.015),
			},
		}
	}
	return []*MixResult{mk("a", 10, 0.92), mk("b", 20, 0.90)}
}

func TestSummarizeMath(t *testing.T) {
	rows, err := Summarize(fabricatedResults())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[config.Name]SummaryRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	if got := byName[config.Baseline].FGRatio; got != 0.6 {
		t.Errorf("baseline FG ratio = %g", got)
	}
	if got := byName[config.Baseline].BGThroughput; got != 1 {
		t.Errorf("baseline BG = %g", got)
	}
	// Harmonic mean of {0.92, 0.90}.
	want := 2 / (1/0.92 + 1/0.90)
	if got := byName[config.Dirigent].BGThroughput; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Dirigent BG = %g, want %g", got, want)
	}
	// Rel std of Dirigent: 0.015/0.10 = 0.15 in both mixes.
	if got := byName[config.Dirigent].RelStd; got < 0.1499 || got > 0.1501 {
		t.Errorf("Dirigent rel std = %g", got)
	}
	out := RenderSummary("Fig. 10", rows)
	if !strings.Contains(out, "Dirigent") {
		t.Error("summary render incomplete")
	}
}

func TestSummarizeMissingConfig(t *testing.T) {
	broken := fabricatedResults()
	delete(broken[0].ByConfig, config.Dirigent)
	if _, err := Summarize(broken); err == nil {
		t.Error("missing config should error")
	}
}

func TestComputeHeadline(t *testing.T) {
	h, err := ComputeHeadline(fabricatedResults())
	if err != nil {
		t.Fatal(err)
	}
	if h.BaselineFGSuccess != 0.6 || h.DirigentFGSuccess != 1.0 {
		t.Errorf("headline success: %+v", h)
	}
	if h.DirigentStdReduction < 0.84 || h.DirigentStdReduction > 0.86 {
		t.Errorf("std reduction = %g, want 0.85", h.DirigentStdReduction)
	}
	if h.DirigentVsStaticBGGain <= 0 {
		t.Errorf("BG gain over static = %g", h.DirigentVsStaticBGGain)
	}
	out := h.Render()
	if !strings.Contains(out, "Headline") || !strings.Contains(out, "85%") {
		t.Error("headline render incomplete")
	}
}

func TestRenderComparisonAndStd(t *testing.T) {
	res := fabricatedResults()
	out := RenderComparison("Fig. 9a", res)
	if !strings.Contains(out, "Fig. 9a") || !strings.Contains(out, "a") {
		t.Error("comparison render incomplete")
	}
	out = RenderNormalizedStd(res)
	if !strings.Contains(out, "Fig. 14") {
		t.Error("std render incomplete")
	}
}

func TestPDFCurves(t *testing.T) {
	res := fabricatedResults()[0]
	// Give each config a duration sample set.
	for _, c := range config.Names() {
		res.ByConfig[c].Streams[0].Durations = []float64{1.0, 1.1, 1.2, 1.05}
	}
	curves, err := PDFCurves(res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("curves = %d", len(curves))
	}
	for c, h := range curves {
		if h.Total() != 4 {
			t.Errorf("%s histogram total = %d", c, h.Total())
		}
	}
	out := RenderPDFCurves(res.Mix, curves)
	if !strings.Contains(out, "Fig. 11") {
		t.Error("pdf render incomplete")
	}
	// Missing config errors.
	delete(res.ByConfig, config.Dirigent)
	if _, err := PDFCurves(res, 8); err == nil {
		t.Error("missing config should error")
	}
}

func TestFreqDistribution(t *testing.T) {
	res := fabricatedResults()[0]
	levels := 9
	for _, c := range []config.Name{config.DirigentFreq, config.Dirigent} {
		resid := make([]time.Duration, levels)
		resid[0] = 2 * time.Second
		resid[8] = 6 * time.Second
		res.ByConfig[c].BGFreqResidency = resid
	}
	rows, err := FreqDistribution(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.GHz) != 5 {
			t.Errorf("grades = %d", len(r.GHz))
		}
		if r.Fraction[0] != 0.25 || r.Fraction[4] != 0.75 {
			t.Errorf("fractions = %v", r.Fraction)
		}
	}
	out := RenderFreqDistribution(res.Mix, rows)
	if !strings.Contains(out, "Fig. 12") {
		t.Error("freq render incomplete")
	}
	delete(res.ByConfig, config.Dirigent)
	if _, err := FreqDistribution(res); err == nil {
		t.Error("missing config should error")
	}
}

func TestTradeoffSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy figure")
	}
	r := smallRunner()
	// The paper's Fig. 15 mix: raytrace + 5 bwaves.
	mix := Mix{Name: "raytrace bwaves", FG: []string{"raytrace"}, BG: repeat("bwaves", 5)}
	pts, standalone, err := r.TradeoffSweep(mix, []float64{1.06, 1.18})
	if err != nil {
		t.Fatal(err)
	}
	if standalone <= 0 || len(pts) != 2 {
		t.Fatalf("standalone = %g, pts = %d", standalone, len(pts))
	}
	// Fig. 15 shape: looser targets stretch FG time and raise BG
	// throughput.
	if pts[1].FGMeanNorm <= pts[0].FGMeanNorm {
		t.Errorf("FG mean should stretch with target: %v", pts)
	}
	if pts[1].BGThroughput < pts[0].BGThroughput {
		t.Errorf("BG throughput should not drop with looser target: %v", pts)
	}
	for _, p := range pts {
		if p.FGMeanNorm > p.TargetFactor+0.05 {
			t.Errorf("FG mean %.3f overshoots target %.2f", p.FGMeanNorm, p.TargetFactor)
		}
	}
	out := RenderTradeoff(mix, standalone, pts)
	if !strings.Contains(out, "Fig. 15") {
		t.Error("tradeoff render incomplete")
	}
	if _, _, err := r.TradeoffSweep(Mix{Name: "bad"}, nil); err == nil {
		t.Error("invalid mix should error")
	}
}

package experiment

import (
	"strings"
	"testing"
)

func TestMixCatalogCounts(t *testing.T) {
	if got := SingleBGMixes(); len(got) != 15 {
		t.Errorf("SingleBGMixes = %d, want 15 (5 FG x 3 BG)", len(got))
	}
	if got := RotateBGMixes(); len(got) != 20 {
		t.Errorf("RotateBGMixes = %d, want 20 (5 FG x 4 pairs)", len(got))
	}
	if got := MultiFGMixes(); len(got) != 15 {
		t.Errorf("MultiFGMixes = %d, want 15 (5 pairs x 3 counts)", len(got))
	}
	if got := AllSingleFGMixes(); len(got) != 35 {
		t.Errorf("AllSingleFGMixes = %d, want 35", len(got))
	}
}

func TestMixCatalogValidates(t *testing.T) {
	var all []Mix
	all = append(all, AllSingleFGMixes()...)
	all = append(all, MultiFGMixes()...)
	names := map[string]bool{}
	for _, m := range all {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %s invalid: %v", m.Name, err)
		}
		if names[m.Name] {
			t.Errorf("duplicate mix name %s", m.Name)
		}
		names[m.Name] = true
		// Total tasks must fill the 6-core machine.
		if len(m.FG)+len(m.BG) != 6 {
			t.Errorf("mix %s has %d tasks, want 6", m.Name, len(m.FG)+len(m.BG))
		}
	}
}

func TestMultiFGMixShape(t *testing.T) {
	mixes := MultiFGMixes()
	// First pair group: bodytrack x1..x3.
	for i := 0; i < 3; i++ {
		m := mixes[i]
		if len(m.FG) != i+1 {
			t.Errorf("mix %s FG count = %d, want %d", m.Name, len(m.FG), i+1)
		}
		for _, fg := range m.FG {
			if fg != "bodytrack" {
				t.Errorf("mix %s FG = %s", m.Name, fg)
			}
		}
		if !strings.Contains(m.Name, "x"+string(rune('1'+i))) {
			t.Errorf("mix name %s should carry the copy count", m.Name)
		}
	}
}

func TestMixValidateErrors(t *testing.T) {
	cases := []Mix{
		{Name: "no fg"},
		{Name: "bad fg", FG: []string{"nope"}},
		{Name: "bg as fg", FG: []string{"bwaves"}},
		{Name: "bad bg", FG: []string{"ferret"}, BG: []string{"nope"}},
		{Name: "fg as bg", FG: []string{"ferret"}, BG: []string{"raytrace"}},
		{Name: "bad pair", FG: []string{"ferret"}, BG: []string{"lbm+nope"}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q should fail validation", m.Name)
		}
	}
}

func TestMixSeedStable(t *testing.T) {
	a := Mix{Name: "ferret rs"}
	b := Mix{Name: "ferret rs"}
	if a.Seed() != b.Seed() {
		t.Error("same name must give same seed")
	}
	c := Mix{Name: "ferret pca"}
	if a.Seed() == c.Seed() {
		t.Error("different names should give different seeds")
	}
}

func TestMixResolvers(t *testing.T) {
	m := Mix{Name: "x", FG: []string{"ferret", "raytrace"}, BG: []string{"bwaves", "lbm+namd"}}
	fg, err := m.FGBenchmarks()
	if err != nil || len(fg) != 2 || fg[0].Name != "ferret" {
		t.Errorf("FGBenchmarks = %v, %v", fg, err)
	}
	bg, err := m.BGSpecs()
	if err != nil || len(bg) != 2 {
		t.Fatalf("BGSpecs = %v, %v", bg, err)
	}
	if bg[0].IsRotate() || bg[0].Name() != "bwaves" {
		t.Errorf("spec 0 = %+v", bg[0])
	}
	if !bg[1].IsRotate() || bg[1].Name() != "lbm+namd" {
		t.Errorf("spec 1 = %+v", bg[1])
	}
	bad := Mix{Name: "x", FG: []string{"nope"}}
	if _, err := bad.FGBenchmarks(); err == nil {
		t.Error("bad FG should error")
	}
	bad2 := Mix{Name: "x", FG: []string{"ferret"}, BG: []string{"nope+namd"}}
	if _, err := bad2.BGSpecs(); err == nil {
		t.Error("bad pair member should error")
	}
	bad3 := Mix{Name: "x", FG: []string{"ferret"}, BG: []string{"lbm+nope"}}
	if _, err := bad3.BGSpecs(); err == nil {
		t.Error("bad second pair member should error")
	}
}

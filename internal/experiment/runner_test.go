package experiment

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"dirigent/internal/config"
)

// smallRunner keeps experiment tests fast: fewer executions, same defaults
// otherwise.
func smallRunner() *Runner {
	r := NewRunner()
	r.Executions = 24
	r.Warmup = 4
	r.CalibExecutions = 10
	return r
}

func TestRunnerProfileCache(t *testing.T) {
	r := smallRunner()
	p1, err := r.Profile("ferret")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Profile("ferret")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("profile should be cached")
	}
	if _, err := r.Profile("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := r.Profile("bwaves"); err == nil {
		t.Error("BG benchmark should error")
	}
}

func TestRunMixAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full mix run")
	}
	r := smallRunner()
	mix := Mix{Name: "bodytrack pca", FG: []string{"bodytrack"}, BG: repeat("pca", 5)}
	res, err := r.RunMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlines) != 1 || res.Deadlines[0] <= 0 {
		t.Fatalf("Deadlines = %v", res.Deadlines)
	}
	for _, c := range config.Names() {
		run := res.ByConfig[c]
		if run == nil {
			t.Fatalf("missing config %s", c)
		}
		if run.Config != c {
			t.Errorf("run config = %s, want %s", run.Config, c)
		}
		if len(run.Streams) != 1 {
			t.Fatalf("%s: %d streams", c, len(run.Streams))
		}
		s := run.Streams[0]
		if s.Summary.Mean <= 0 || len(s.Durations) == 0 {
			t.Errorf("%s: empty stream stats", c)
		}
		if s.Deadline != res.Deadlines[0] {
			t.Errorf("%s: stream deadline %g != %g", c, s.Deadline, res.Deadlines[0])
		}
		if s.SuccessRate < 0 || s.SuccessRate > 1 {
			t.Errorf("%s: success rate %g", c, s.SuccessRate)
		}
		if run.BGInstrRate <= 0 {
			t.Errorf("%s: BG rate %g", c, run.BGInstrRate)
		}
		if run.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", c, run.Elapsed)
		}
	}

	// Deadline math: µ + 0.3σ of baseline.
	base := res.ByConfig[config.Baseline].Streams[0]
	want := base.Summary.Mean + DeadlineSigma*base.Summary.Std
	if d := res.Deadlines[0]; d != want {
		t.Errorf("deadline = %g, want %g", d, want)
	}

	// Baseline is its own BG reference.
	if got := res.RelBGThroughput(config.Baseline); got != 1 {
		t.Errorf("baseline RelBGThroughput = %g", got)
	}
	if got := res.RelStd(config.Baseline); got != 1 {
		t.Errorf("baseline RelStd = %g", got)
	}

	// Shape expectations (the paper's headline directions).
	dir := res.ByConfig[config.Dirigent]
	if dir.MeanSuccessRate() < 0.9 {
		t.Errorf("Dirigent success = %g, want >= 0.9", dir.MeanSuccessRate())
	}
	if res.RelStd(config.Dirigent) > 0.7 {
		t.Errorf("Dirigent rel std = %g, want < 0.7", res.RelStd(config.Dirigent))
	}
	if dir.FGWays == 0 {
		t.Error("Dirigent run should record a partition")
	}
	sf := res.ByConfig[config.StaticFreq]
	if res.RelBGThroughput(config.StaticFreq) >= 1 {
		t.Errorf("StaticFreq should cost BG throughput: %g", res.RelBGThroughput(config.StaticFreq))
	}
	if sf.StaticBGLevel != 0 {
		t.Errorf("StaticFreq BG level = %d", sf.StaticBGLevel)
	}
	sb := res.ByConfig[config.StaticBoth]
	if sb.FGWays == 0 {
		t.Error("StaticBoth should record its partition")
	}
	if sb.StaticBGLevel < 0 {
		t.Error("StaticBoth should record its calibrated BG level")
	}
	if sb.MinSuccessRate() > sb.MeanSuccessRate() {
		t.Error("min success cannot exceed mean")
	}

	// Frequency residency recorded for the runtime configs.
	df := res.ByConfig[config.DirigentFreq]
	var total time.Duration
	for _, d := range df.BGFreqResidency {
		total += d
	}
	if total <= 0 {
		t.Error("DirigentFreq should record BG frequency residency")
	}
	if df.Fine.Decisions == 0 {
		t.Error("DirigentFreq should record fine controller decisions")
	}
}

func TestRunMixesParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel mix run")
	}
	r := smallRunner()
	mixes := []Mix{
		{Name: "fluidanimate namd x", FG: []string{"fluidanimate"}, BG: repeat("lbm+namd", 5)},
		{Name: "raytrace pca", FG: []string{"raytrace"}, BG: repeat("pca", 5)},
	}
	got, err := r.RunMixes(mixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("results = %d", len(got))
	}
	for i, res := range got {
		if res.Mix.Name != mixes[i].Name {
			t.Errorf("result %d order wrong: %s", i, res.Mix.Name)
		}
	}
	// Rerunning a mix alone reproduces the same numbers (determinism even
	// across parallel scheduling).
	again, err := r.RunMix(mixes[1])
	if err != nil {
		t.Fatal(err)
	}
	a := got[1].ByConfig[config.Dirigent].Streams[0].Summary
	b := again.ByConfig[config.Dirigent].Streams[0].Summary
	if a.Mean != b.Mean || a.Std != b.Std {
		t.Errorf("parallel vs solo mismatch: %+v vs %+v", a, b)
	}
}

func TestRunMixInvalid(t *testing.T) {
	r := smallRunner()
	if _, err := r.RunMix(Mix{Name: "bad"}); err == nil {
		t.Error("invalid mix should error")
	}
	if _, err := r.RunMixes([]Mix{{Name: "bad"}}); err == nil {
		t.Error("invalid mix in batch should error")
	}
}

func TestRunResultHelpers(t *testing.T) {
	rr := &RunResult{Streams: []StreamResult{{SuccessRate: 0.8}, {SuccessRate: 1.0}}}
	if got := rr.MinSuccessRate(); got != 0.8 {
		t.Errorf("MinSuccessRate = %g", got)
	}
	if got := rr.MeanSuccessRate(); got != 0.9 {
		t.Errorf("MeanSuccessRate = %g", got)
	}
	empty := &RunResult{}
	if empty.MeanSuccessRate() != 0 || empty.MeanStd() != 0 {
		t.Error("empty result helpers should be 0")
	}
	if empty.TotalMPKFGI() != 0 || empty.FGMissShare() != 0 {
		t.Error("empty counters should yield 0 metrics")
	}
	full := &RunResult{TotalLLCMisses: 200, FGLLCMisses: 50, FGInstructions: 1e6}
	if got := full.TotalMPKFGI(); got != 0.2 {
		t.Errorf("TotalMPKFGI = %g", got)
	}
	if got := full.FGMissShare(); got != 0.25 {
		t.Errorf("FGMissShare = %g", got)
	}
}

// TestRunConfigsSubset checks the reduced entry point the regression harness
// uses: only the requested configurations run (plus Baseline, which always
// runs because it defines the deadlines), and unknown names are rejected
// before any simulation starts.
func TestRunConfigsSubset(t *testing.T) {
	r := smallRunner()
	r.Executions = 8
	r.Warmup = 2
	r.ConvergenceWarmup = 10
	mix := Mix{Name: "subset", FG: []string{"ferret"}, BG: repeat("rs", 5)}

	res, err := r.RunConfigs(mix, config.DirigentFreq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByConfig) != 2 {
		t.Fatalf("ByConfig has %d entries, want Baseline + DirigentFreq", len(res.ByConfig))
	}
	for _, name := range []config.Name{config.Baseline, config.DirigentFreq} {
		rr := res.ByConfig[name]
		if rr == nil {
			t.Fatalf("missing %s result", name)
		}
		if sr := rr.MeanSuccessRate(); sr < 0 || sr > 1 {
			t.Errorf("%s success rate %g outside [0,1]", name, sr)
		}
	}
	if len(res.Deadlines) == 0 || res.Deadlines[0] <= 0 {
		t.Errorf("deadlines not derived from the baseline run: %v", res.Deadlines)
	}

	// Requesting only Baseline still works and yields exactly one entry.
	only, err := r.RunConfigs(mix, config.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(only.ByConfig) != 1 || only.ByConfig[config.Baseline] == nil {
		t.Fatalf("Baseline-only run has entries %v", len(only.ByConfig))
	}

	// The subset's results must be identical to the same configs from a full
	// RunMix: each configuration is an independently seeded run.
	if !testing.Short() {
		full, err := r.RunMix(mix)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(res.ByConfig[config.DirigentFreq])
		b, _ := json.Marshal(full.ByConfig[config.DirigentFreq])
		if string(a) != string(b) {
			t.Error("subset run differs from the same config inside a full RunMix")
		}
	}

	if _, err := r.RunConfigs(mix, config.Name("nonsense")); err == nil {
		t.Error("unknown config name must be rejected")
	}
}

// TestRunConfigsStaticBothFallback: StaticBoth's static partition normally
// reuses Dirigent's converged way count; when Dirigent is not part of the
// requested subset it must fall back to the default 10 ways rather than
// running Dirigent implicitly.
func TestRunConfigsStaticBothFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	r := smallRunner()
	r.Executions = 8
	r.Warmup = 2
	r.CalibExecutions = 6
	mix := Mix{Name: "sb fallback", FG: []string{"bodytrack"}, BG: repeat("pca", 5)}

	res, err := r.RunConfigs(mix, config.StaticBoth)
	if err != nil {
		t.Fatal(err)
	}
	sb := res.ByConfig[config.StaticBoth]
	if sb == nil {
		t.Fatal("missing StaticBoth result")
	}
	if sb.FGWays != 10 {
		t.Errorf("StaticBoth without Dirigent ran with %d FG ways, want the 10-way fallback", sb.FGWays)
	}
	if _, ok := res.ByConfig[config.Dirigent]; ok {
		t.Error("Dirigent ran although it was not requested")
	}
	// Baseline is always present — it defines the deadlines — even though
	// only StaticBoth was requested.
	if res.ByConfig[config.Baseline] == nil {
		t.Error("Baseline missing from result despite not being requested")
	}
	if sb.StaticBGLevel < 0 {
		t.Errorf("StaticBoth BG level = %d, want a calibrated static level", sb.StaticBGLevel)
	}
}

// TestMaxParallelEnv: DIRIGENT_MAX_PARALLEL overrides the mix-sweep worker
// count; non-positive values clamp to 1 (a zero-width fan-out would
// deadlock every sweep), unparsable values fall back to GOMAXPROCS.
func TestMaxParallelEnv(t *testing.T) {
	t.Setenv("DIRIGENT_MAX_PARALLEL", "3")
	if got := MaxParallel(); got != 3 {
		t.Errorf("MaxParallel with env 3 = %d", got)
	}
	for _, nonpos := range []string{"0", "-2"} {
		t.Setenv("DIRIGENT_MAX_PARALLEL", nonpos)
		if got := MaxParallel(); got != 1 {
			t.Errorf("MaxParallel with env %q = %d, want clamp to 1", nonpos, got)
		}
	}
	def := runtime.GOMAXPROCS(0)
	for _, bad := range []string{"", "many"} {
		t.Setenv("DIRIGENT_MAX_PARALLEL", bad)
		if got := MaxParallel(); got != def {
			t.Errorf("MaxParallel with env %q = %d, want GOMAXPROCS %d", bad, got, def)
		}
	}
	// The clamp must make the fan-out safe end-to-end: under the previously
	// deadlocking value, a bounded fan-out still completes.
	t.Setenv("DIRIGENT_MAX_PARALLEL", "0")
	ran := make([]bool, 4)
	fanOut(len(ran), func(i int) { ran[i] = true })
	for i, ok := range ran {
		if !ok {
			t.Errorf("fanOut skipped slot %d", i)
		}
	}
}

package experiment

import (
	"fmt"
	"strings"

	"dirigent/internal/config"
	"dirigent/internal/policy"
)

// PolicyMixResult bundles one mix's runs across QoS policies. Each policy
// runs under the full-runtime configuration (config.Dirigent) with the
// policy swapped behind the engine; Baseline runs once to define the
// deadlines and the throughput denominator, exactly as in RunConfigs.
type PolicyMixResult struct {
	Mix Mix
	// Deadlines are the per-stream deadlines (seconds) from the Baseline
	// pass.
	Deadlines []float64
	// Baseline is the unmanaged run the relative metrics divide by.
	Baseline *RunResult
	// ByPolicy maps policy name to its run.
	ByPolicy map[string]*RunResult
}

// RelBGThroughput returns the policy's BG throughput relative to Baseline.
func (pmr *PolicyMixResult) RelBGThroughput(p string) float64 {
	run := pmr.ByPolicy[p]
	if pmr.Baseline == nil || run == nil || pmr.Baseline.BGInstrRate == 0 {
		return 0
	}
	return run.BGInstrRate / pmr.Baseline.BGInstrRate
}

// PolicySweepResult holds a PolicySweep's outcome: the policy axis plus one
// PolicyMixResult per mix, in input order.
type PolicySweepResult struct {
	Policies []string
	Mixes    []*PolicyMixResult
}

// PolicySweep runs each mix once per QoS policy (plus one Baseline pass per
// mix) and reports FG success against relative BG throughput — the paper's
// Fig. 10 axes, with the policy engine as the dimension instead of the five
// system configurations. Policies default to every registered policy; mixes
// run concurrently like RunMixes. All policies get the runner's convergence
// warmup so adaptive and static controllers are scored on steady state
// alike.
func (r *Runner) PolicySweep(mixes []Mix, policies []string) (*PolicySweepResult, error) {
	if len(policies) == 0 {
		policies = policy.Names()
	}
	for _, p := range policies {
		if !policy.Valid(p) {
			return nil, fmt.Errorf("experiment: unknown policy %q (valid: %s)",
				p, strings.Join(policy.Names(), ", "))
		}
	}
	res := &PolicySweepResult{Policies: policies, Mixes: make([]*PolicyMixResult, len(mixes))}
	errs := make([]error, len(mixes))
	fanOut(len(mixes), func(i int) {
		res.Mixes[i], errs[i] = r.policySweepMix(mixes[i], policies)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", mixes[i].Name, err)
		}
	}
	return res, nil
}

// policySweepMix runs one mix's Baseline pass and per-policy runs.
func (r *Runner) policySweepMix(mix Mix, policies []string) (*PolicyMixResult, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	base, err := r.runOne(mix, runSpec{cfg: config.MustByName(config.Baseline), bgLevel: -1, execs: r.Executions})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	deadlines, targets := deadlinesFromBaseline(base)
	applyDeadlines(base, deadlines)
	pmr := &PolicyMixResult{Mix: mix, Deadlines: deadlines, Baseline: base, ByPolicy: map[string]*RunResult{}}
	for _, p := range policies {
		cfg := config.MustByName(config.Dirigent)
		cfg.Policy = p
		run, err := r.runOne(mix, runSpec{
			cfg:         cfg,
			targets:     targets,
			deadlines:   deadlines,
			bgLevel:     -1,
			execs:       r.Executions,
			extraWarmup: r.ConvergenceWarmup,
		})
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", p, err)
		}
		pmr.ByPolicy[p] = run
	}
	return pmr, nil
}

// RenderPolicySweep renders the sweep in the comparison-figure layout: one
// row per mix, one column per policy, each cell FG success / relative BG
// throughput.
func RenderPolicySweep(title string, res *PolicySweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-36s", "mix")
	for _, p := range res.Policies {
		fmt.Fprintf(&b, " %12s", p)
	}
	fmt.Fprintf(&b, "   (each cell: FG success / rel BG throughput)\n")
	for _, pmr := range res.Mixes {
		fmt.Fprintf(&b, "%-36s", pmr.Mix.Name)
		for _, p := range res.Policies {
			fmt.Fprintf(&b, "  %4.2f/%5.2f", pmr.ByPolicy[p].MeanSuccessRate(), pmr.RelBGThroughput(p))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

package telemetry

import (
	"time"

	"dirigent/internal/sim"
)

// FineStats aggregates fine time scale controller activity from decision
// and action events. It carries the counters the evaluation reports
// (Fig. 12-style analyses): each field counts events over the whole run,
// with the same increment semantics the controller's actions have — e.g.
// one BGThrottle per decision that stepped the BG cores down, one
// FGThrottle per individual FG core stepped down.
type FineStats struct {
	// Decisions counts fine decisions (KindFineDecision events).
	Decisions int
	// BGSuppressed counts decisions whose Suppressed flag was set: all BG
	// paused or the active mean grade in the lower 60% of the range.
	BGSuppressed int
	// PausesIssued counts BG pause actions.
	PausesIssued int
	// FGThrottles counts per-stream FG slow-down actions.
	FGThrottles int
	// BGThrottles counts decisions that stepped active BG cores down.
	BGThrottles int
	// BGSpeedups counts decisions that stepped active BG cores up.
	BGSpeedups int
	// Resumes counts decisions that resumed paused BG tasks.
	Resumes int
	// FGMaxBoosts counts per-stream boosts to the top grade.
	FGMaxBoosts int
	// LastDecisionAt is the simulated time of the latest decision.
	LastDecisionAt sim.Time
}

// Aggregator is the in-memory sink the evaluation harness consumes: it
// folds the event stream into exactly the cross-run statistics RunResult
// reports, so the figures are computed from the same events a user would
// see in a JSONL trace. Not safe for concurrent use — attach one aggregator
// per run (the runner does).
type Aggregator struct {
	started  bool
	cores    int
	levels   int
	topLevel int
	quantum  time.Duration

	curLevel  []int
	residency [][]time.Duration

	quanta       int64
	instructions float64
	llcMisses    float64

	fine FineStats

	fgWays          int
	partitionMoves  int
	convergedAtExec int

	executions int
	pauses     int
	resumes    int
	switches   int
	segments   int
	penaltySum time.Duration

	// faultsByClass counts injected faults (KindFault) keyed by class wire
	// name; reprofiles counts runtime re-profiling episodes (KindReprofile)
	// that succeeded.
	faultsByClass map[string]int
	faults        int
	reprofiles    int

	// streamDurations collects per-FG-stream execution durations in
	// completion order, keyed by stream index. This is the raw material of
	// every QoS statistic (success rates, execution-time variance): keeping
	// it here means the evaluation harness and the regression gate both
	// derive those numbers from the event stream rather than private
	// scheduler state.
	streamDurations map[int][]time.Duration
}

// NewAggregator returns an empty aggregator. Machine geometry is learned
// from the KindMachineStart event the machine emits when the recorder is
// attached.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Enabled reports true for every kind: the aggregator consumes the full
// stream.
func (a *Aggregator) Enabled(Kind) bool { return true }

// Record folds one event into the aggregate state.
func (a *Aggregator) Record(ev Event) {
	switch ev.Kind {
	case KindMachineStart:
		// First attach wins; a re-attach of the same recorder must not
		// reset mid-run state.
		if a.started {
			return
		}
		a.started = true
		a.cores = ev.Cores
		a.levels = ev.Levels
		a.topLevel = ev.TopLevel
		a.quantum = ev.Quantum
		a.curLevel = make([]int, a.cores)
		a.residency = make([][]time.Duration, a.cores)
		for c := range a.curLevel {
			a.curLevel[c] = ev.TopLevel
			a.residency[c] = make([]time.Duration, a.levels)
		}
	case KindQuantumStep:
		a.quanta++
		a.instructions += ev.Instructions
		a.llcMisses += ev.LLCMisses
		// Residency advances at each core's current level, mirroring the
		// machine's own accounting: levels only change between quanta, so
		// replaying transitions in stream order reproduces it exactly.
		for c := range a.curLevel {
			a.residency[c][a.curLevel[c]] += a.quantum
		}
	case KindDVFSTransition:
		if ev.Core >= 0 && ev.Core < len(a.curLevel) &&
			ev.ToLevel >= 0 && ev.ToLevel < a.levels {
			a.curLevel[ev.Core] = ev.ToLevel
		}
	case KindPartitionMove:
		a.fgWays = ev.FGWays
		if ev.Delta != 0 {
			a.partitionMoves++
			a.convergedAtExec = ev.ExecCount
		}
	case KindFineDecision:
		a.fine.Decisions++
		if ev.Suppressed {
			a.fine.BGSuppressed++
		}
		a.fine.LastDecisionAt = ev.At
	case KindFineAction:
		switch ev.Action {
		case ActionFGMaxBoost:
			a.fine.FGMaxBoosts++
		case ActionFGThrottle:
			a.fine.FGThrottles++
		case ActionBGThrottle:
			a.fine.BGThrottles++
		case ActionBGSpeedup:
			a.fine.BGSpeedups++
		case ActionBGPause:
			a.fine.PausesIssued++
		case ActionBGResume:
			a.fine.Resumes++
		}
	case KindTaskPause:
		a.pauses++
	case KindTaskResume:
		a.resumes++
	case KindTaskSwitch:
		a.switches++
	case KindSegmentPenalty:
		a.segments++
		a.penaltySum += ev.Penalty
	case KindExecutionComplete:
		a.executions++
		if a.streamDurations == nil {
			a.streamDurations = map[int][]time.Duration{}
		}
		a.streamDurations[ev.Stream] = append(a.streamDurations[ev.Stream], ev.Duration)
	case KindFault:
		a.faults++
		if a.faultsByClass == nil {
			a.faultsByClass = map[string]int{}
		}
		a.faultsByClass[string(ev.Reason)]++
	case KindReprofile:
		if !ev.Suppressed {
			a.reprofiles++
		}
	}
}

// RecordQuantumSteps folds a run of consecutive quantum-step events in one
// call — the machine's skip-ahead fast path. The per-event float
// accumulators are added in stream order (identical rounding to Record);
// the per-core residency advance is integer arithmetic and is folded to one
// multiply per core, which is exact because the machine flushes a batch
// before any DVFS transition can change a core's level mid-batch.
func (a *Aggregator) RecordQuantumSteps(evs []Event) {
	a.quanta += int64(len(evs))
	for i := range evs {
		a.instructions += evs[i].Instructions
		a.llcMisses += evs[i].LLCMisses
	}
	for c := range a.curLevel {
		a.residency[c][a.curLevel[c]] += a.quantum * time.Duration(len(evs))
	}
}

// Started reports whether a KindMachineStart event has been seen.
func (a *Aggregator) Started() bool { return a.started }

// Fine returns the accumulated fine-controller statistics.
func (a *Aggregator) Fine() FineStats { return a.fine }

// FGWays returns the FG partition size after the last partition move (0
// when no partition event was seen).
func (a *Aggregator) FGWays() int { return a.fgWays }

// PartitionMoves returns how many partition changes (Delta != 0) occurred.
func (a *Aggregator) PartitionMoves() int { return a.partitionMoves }

// ConvergedAtExecution returns the execution count at the last partition
// change — the paper's §5.3 convergence measure.
func (a *Aggregator) ConvergedAtExecution() int { return a.convergedAtExec }

// FreqResidency returns the cumulative time core has spent at each
// frequency level, reconstructed from quantum steps and DVFS transitions.
// It returns nil for out-of-range cores or before machine start.
func (a *Aggregator) FreqResidency(core int) []time.Duration {
	if core < 0 || core >= len(a.residency) {
		return nil
	}
	return append([]time.Duration(nil), a.residency[core]...)
}

// Quanta returns how many machine quanta were observed.
func (a *Aggregator) Quanta() int64 { return a.quanta }

// Instructions returns machine-wide instructions observed via quantum
// steps.
func (a *Aggregator) Instructions() float64 { return a.instructions }

// LLCMisses returns machine-wide LLC misses observed via quantum steps.
func (a *Aggregator) LLCMisses() float64 { return a.llcMisses }

// Executions returns the number of completed FG executions.
func (a *Aggregator) Executions() int { return a.executions }

// StreamDurations returns one FG stream's execution durations in completion
// order, reconstructed from KindExecutionComplete events (nil when the
// stream completed nothing).
func (a *Aggregator) StreamDurations(stream int) []time.Duration {
	d := a.streamDurations[stream]
	if d == nil {
		return nil
	}
	return append([]time.Duration(nil), d...)
}

// Pauses and Resumes return machine-level task pause/resume transitions
// (these can exceed the controller's action counts if other callers pause
// tasks, e.g. online profiling).
func (a *Aggregator) Pauses() int  { return a.pauses }
func (a *Aggregator) Resumes() int { return a.resumes }

// Switches returns rotate-BG program swaps observed.
func (a *Aggregator) Switches() int { return a.switches }

// Faults returns how many injected faults (KindFault events) were observed.
func (a *Aggregator) Faults() int { return a.faults }

// FaultsByClass returns injected-fault counts keyed by fault-class wire
// name (nil when no faults were observed).
func (a *Aggregator) FaultsByClass() map[string]int {
	if a.faultsByClass == nil {
		return nil
	}
	out := make(map[string]int, len(a.faultsByClass))
	//lint:ignore maprange pure map-to-map copy; order cannot reach results
	for k, v := range a.faultsByClass {
		out[k] = v
	}
	return out
}

// Reprofiles returns how many successful runtime re-profiling episodes were
// observed.
func (a *Aggregator) Reprofiles() int { return a.reprofiles }

// Segments returns how many per-segment penalty observations were made.
func (a *Aggregator) Segments() int { return a.segments }

// MeanPenalty returns the mean observed per-segment penalty.
func (a *Aggregator) MeanPenalty() time.Duration {
	if a.segments == 0 {
		return 0
	}
	return a.penaltySum / time.Duration(a.segments)
}

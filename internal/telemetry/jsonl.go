package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// jsonlRetainBytes caps the encode buffer retained between events: a
// pathologically large event (e.g. a huge run label) grows the buffer for
// one write, after which it is released rather than pinned for the rest of
// the sink's life.
const jsonlRetainBytes = 64 << 10

// jsonlInitialBytes is the encode buffer's starting capacity, comfortably
// above every ordinary event line.
const jsonlInitialBytes = 256

// JSONL writes one JSON object per event, newline-delimited — a trace
// suitable for offline replay, diffing, and external tooling. Encoding is
// hand-rolled so field order is stable and only the fields meaningful for
// the event's kind appear.
//
// By default every kind except KindQuantumStep is traced: quantum steps
// fire once per 250 µs of simulated time and dominate trace volume; opt in
// with Include(KindQuantumStep) when per-quantum data is wanted.
//
// JSONL is safe for concurrent use (one mutex around encode+write), so a
// single trace file can serve parallel runs when events are labelled via
// WithRun.
type JSONL struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	enabled [numKinds]bool
	err     error
	events  int64
}

// NewJSONL returns a JSONL recorder writing to w. The caller is
// responsible for buffering and closing w.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: w, buf: make([]byte, 0, jsonlInitialBytes)}
	for k := Kind(1); k < numKinds; k++ {
		j.enabled[k] = k != KindQuantumStep
	}
	return j
}

// Include enables tracing of the given kinds and returns j for chaining.
func (j *JSONL) Include(kinds ...Kind) *JSONL {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, k := range kinds {
		if k > 0 && k < numKinds {
			j.enabled[k] = true
		}
	}
	return j
}

// Exclude disables tracing of the given kinds and returns j for chaining.
func (j *JSONL) Exclude(kinds ...Kind) *JSONL {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, k := range kinds {
		if k > 0 && k < numKinds {
			j.enabled[k] = false
		}
	}
	return j
}

// Enabled reports whether events of kind k are written.
func (j *JSONL) Enabled(k Kind) bool {
	if k <= 0 || k >= numKinds {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enabled[k]
}

// Events returns how many events have been written.
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Err returns the first write error encountered, if any. Writes after an
// error are dropped.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Record encodes and writes one event.
func (j *JSONL) Record(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || ev.Kind <= 0 || ev.Kind >= numKinds || !j.enabled[ev.Kind] {
		return
	}
	j.buf = appendEvent(j.buf[:0], ev)
	j.writeBuf(1)
}

// RecordQuantumSteps encodes a run of consecutive quantum-step events into
// the reused buffer and writes them in one call — the machine's skip-ahead
// fast path amortizes the lock and the write syscall over the whole batch,
// with zero per-event allocation.
func (j *JSONL) RecordQuantumSteps(evs []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || !j.enabled[KindQuantumStep] {
		return
	}
	j.buf = j.buf[:0]
	for i := range evs {
		j.buf = appendEvent(j.buf, evs[i])
	}
	j.writeBuf(int64(len(evs)))
}

// writeBuf flushes the encode buffer to the writer, recording the sink's
// first error and shrinking the buffer after a pathologically large encode.
// Callers hold j.mu.
func (j *JSONL) writeBuf(events int64) {
	_, err := j.w.Write(j.buf)
	if cap(j.buf) > jsonlRetainBytes {
		j.buf = make([]byte, 0, jsonlInitialBytes)
	}
	if err != nil {
		j.err = fmt.Errorf("telemetry: jsonl write: %w", err)
		return
	}
	j.events += events
}

// Flush forwards to the underlying writer's Flush when it has one (e.g. a
// bufio.Writer) and returns the first error the sink has seen — either a
// prior dropped write error or the flush's own. Events recorded after an
// error are silently dropped, so call Flush (or Close) before trusting a
// trace to be complete.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if f, ok := j.w.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			j.err = fmt.Errorf("telemetry: jsonl flush: %w", err)
		}
	}
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
// Like Flush it surfaces the first error observed over the sink's lifetime;
// a close error is reported only when no earlier error is pending.
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		cerr := c.Close()
		if err == nil && cerr != nil {
			j.err = fmt.Errorf("telemetry: jsonl close: %w", cerr)
			err = j.err
		}
	}
	return err
}

// AppendJSON appends ev encoded exactly as one JSONL trace line (including
// the trailing newline) and returns the extended buffer. It is the encoding
// JSONL writes, exposed for sinks that frame events differently — e.g. the
// server's SSE subscribers, which wrap each line in an event-stream frame.
func AppendJSON(b []byte, ev Event) []byte { return appendEvent(b, ev) }

// appendEvent encodes ev as one JSON line. Common fields first (kind, time,
// run label), then the kind-specific payload.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","at_ns":`...)
	b = strconv.AppendInt(b, int64(ev.At), 10)
	if ev.Run != "" {
		b = appendStr(b, "run", ev.Run)
	}
	if ev.Policy != "" {
		b = appendStr(b, "policy", ev.Policy)
	}
	switch ev.Kind {
	case KindMachineStart:
		b = appendInt(b, "cores", ev.Cores)
		b = appendInt(b, "levels", ev.Levels)
		b = appendInt(b, "top_level", ev.TopLevel)
		b = appendInt(b, "quantum_ns", int(ev.Quantum))
	case KindQuantumStep:
		b = appendFloat(b, "utilization", ev.Utilization)
		b = appendFloat(b, "instructions", ev.Instructions)
		b = appendFloat(b, "llc_misses", ev.LLCMisses)
		b = appendInt(b, "completions", ev.Completions)
	case KindDVFSTransition:
		b = appendInt(b, "core", ev.Core)
		b = appendInt(b, "from", ev.FromLevel)
		b = appendInt(b, "to", ev.ToLevel)
	case KindPartitionMove:
		b = appendInt(b, "fg_ways", ev.FGWays)
		b = appendInt(b, "delta", ev.Delta)
		b = appendInt(b, "exec_count", ev.ExecCount)
		b = appendStr(b, "reason", string(ev.Reason))
	case KindTaskLaunch, KindTaskKill, KindTaskSwitch:
		b = appendInt(b, "task", ev.Task)
		b = appendInt(b, "core", ev.Core)
		b = appendStr(b, "name", ev.Name)
	case KindTaskPause, KindTaskResume:
		b = appendInt(b, "task", ev.Task)
		b = appendInt(b, "core", ev.Core)
	case KindSegmentPenalty:
		b = appendInt(b, "stream", ev.Stream)
		b = appendInt(b, "segment", ev.Segment)
		b = appendInt(b, "measured_ns", int(ev.Duration))
		b = appendInt(b, "penalty_ns", int(ev.Penalty))
		b = appendFloat(b, "alpha", ev.Alpha)
	case KindExecutionComplete:
		b = appendInt(b, "stream", ev.Stream)
		b = appendInt(b, "task", ev.Task)
		b = appendInt(b, "duration_ns", int(ev.Duration))
		b = appendFloat(b, "instructions", ev.Instructions)
		b = appendFloat(b, "llc_misses", ev.LLCMisses)
	case KindFineDecision:
		b = appendStr(b, "reason", string(ev.Reason))
		b = appendInt(b, "behind", ev.Behind)
		b = appendInt(b, "ahead", ev.Ahead)
		b = appendInt(b, "streams", ev.Streams)
		b = appendFloat(b, "worst_slack", ev.Slack)
		b = appendBool(b, "suppressed", ev.Suppressed)
	case KindFineAction:
		b = appendStr(b, "action", ev.Action.String())
		b = appendInt(b, "task", ev.Task)
		b = appendInt(b, "core", ev.Core)
		b = appendInt(b, "stream", ev.Stream)
	case KindCoarseDecision:
		b = appendStr(b, "reason", string(ev.Reason))
		b = appendInt(b, "delta", ev.Delta)
		b = appendInt(b, "fg_ways", ev.FGWays)
		b = appendInt(b, "exec_count", ev.ExecCount)
	case KindFault:
		b = appendStr(b, "class", string(ev.Reason))
		b = appendInt(b, "task", ev.Task)
		b = appendInt(b, "core", ev.Core)
		b = appendInt(b, "stream", ev.Stream)
		b = appendInt(b, "delay_ns", int(ev.Duration))
	case KindReprofile:
		b = appendInt(b, "stream", ev.Stream)
		b = appendFloat(b, "alpha_drift", ev.Alpha)
		b = appendInt(b, "duration_ns", int(ev.Duration))
		b = appendBool(b, "failed", ev.Suppressed)
	}
	b = append(b, '}', '\n')
	return b
}

func appendInt(b []byte, key string, v int) []byte {
	b = appendKey(b, key)
	return strconv.AppendInt(b, int64(v), 10)
}

func appendFloat(b []byte, key string, v float64) []byte {
	b = appendKey(b, key)
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = appendKey(b, key)
	return strconv.AppendBool(b, v)
}

func appendStr(b []byte, key, v string) []byte {
	b = appendKey(b, key)
	b = strconv.AppendQuote(b, v)
	return b
}

func appendKey(b []byte, key string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return b
}

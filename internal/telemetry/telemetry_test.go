package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"dirigent/internal/sim"
)

func TestKindNames(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no wire name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Error("out-of-range kinds must stringify as unknown")
	}
	if ActionBGPause.String() != "bg_pause" || Action(99).String() != "unknown" {
		t.Error("action wire names broken")
	}
}

func TestNopHelpers(t *testing.T) {
	if !IsNop(nil) || !IsNop(Nop()) {
		t.Error("nil and Nop() must both be nop")
	}
	if OrNop(nil) != Nop() {
		t.Error("OrNop(nil) must return the shared nop")
	}
	agg := NewAggregator()
	if IsNop(agg) {
		t.Error("a real sink is not nop")
	}
	if OrNop(agg) != Recorder(agg) {
		t.Error("OrNop must pass real sinks through")
	}
	if Nop().Enabled(KindQuantumStep) {
		t.Error("nop must disable every kind")
	}
}

// captureSink records every delivered event, optionally masking kinds.
type captureSink struct {
	events []Event
	deny   map[Kind]bool
}

func (c *captureSink) Enabled(k Kind) bool { return !c.deny[k] }
func (c *captureSink) Record(ev Event)     { c.events = append(c.events, ev) }

func TestTeeComposition(t *testing.T) {
	if Tee() != Nop() || Tee(nil, Nop()) != Nop() {
		t.Error("tee of no real sinks must collapse to nop")
	}
	solo := &captureSink{}
	if Tee(nil, solo, Nop()) != Recorder(solo) {
		t.Error("tee of one real sink must return it directly")
	}

	a := &captureSink{}
	b := &captureSink{deny: map[Kind]bool{KindQuantumStep: true}}
	tr := Tee(a, b)
	if !tr.Enabled(KindQuantumStep) {
		t.Error("tee is enabled when any sink is")
	}
	tr.Record(Event{Kind: KindQuantumStep})
	tr.Record(Event{Kind: KindTaskLaunch, Task: 3})
	if len(a.events) != 2 {
		t.Errorf("sink a saw %d events, want 2", len(a.events))
	}
	if len(b.events) != 1 || b.events[0].Kind != KindTaskLaunch {
		t.Errorf("sink b must only see enabled kinds: %+v", b.events)
	}
}

func TestWithRunStampsLabel(t *testing.T) {
	if WithRun(Nop(), "x") != Nop() {
		t.Error("WithRun over nop must stay nop")
	}
	c := &captureSink{}
	r := WithRun(c, "mixA/Dirigent")
	r.Record(Event{Kind: KindExecutionComplete, Stream: 1})
	if len(c.events) != 1 || c.events[0].Run != "mixA/Dirigent" {
		t.Errorf("run label not stamped: %+v", c.events)
	}
	if c.events[0].Stream != 1 {
		t.Error("payload must pass through unchanged")
	}
}

// playMachine feeds a minimal consistent machine history: 2 cores, 3 levels
// (top 2), 1 ms quantum; core 1 drops to level 0 after the first quantum.
func playMachine(r Recorder) {
	q := time.Millisecond
	r.Record(Event{Kind: KindMachineStart, Cores: 2, Levels: 3, TopLevel: 2, Quantum: q})
	r.Record(Event{Kind: KindQuantumStep, At: sim.Time(q), Instructions: 100, LLCMisses: 5})
	r.Record(Event{Kind: KindDVFSTransition, Core: 1, FromLevel: 2, ToLevel: 0})
	r.Record(Event{Kind: KindQuantumStep, At: sim.Time(2 * q), Instructions: 80, LLCMisses: 3})
	r.Record(Event{Kind: KindQuantumStep, At: sim.Time(3 * q), Instructions: 90, LLCMisses: 4})
}

func TestAggregatorResidencyReplay(t *testing.T) {
	a := NewAggregator()
	playMachine(a)
	if !a.Started() {
		t.Fatal("machine start not seen")
	}
	q := time.Millisecond
	// Core 0 never moved: all 3 quanta at top level.
	if res := a.FreqResidency(0); res[2] != 3*q || res[0] != 0 {
		t.Errorf("core 0 residency = %v", res)
	}
	// Core 1: first quantum at top, then two at level 0.
	if res := a.FreqResidency(1); res[2] != q || res[0] != 2*q {
		t.Errorf("core 1 residency = %v", res)
	}
	if a.FreqResidency(2) != nil || a.FreqResidency(-1) != nil {
		t.Error("out-of-range cores must return nil")
	}
	if a.Quanta() != 3 || a.Instructions() != 270 || a.LLCMisses() != 12 {
		t.Errorf("quantum aggregates wrong: %d %g %g", a.Quanta(), a.Instructions(), a.LLCMisses())
	}
	// A duplicate machine start must not reset state.
	a.Record(Event{Kind: KindMachineStart, Cores: 8, Levels: 9, TopLevel: 8})
	if res := a.FreqResidency(0); res[2] != 3*q {
		t.Error("re-attach reset aggregator state")
	}
}

func TestAggregatorControllerCounters(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Kind: KindFineDecision, At: 42, Reason: ReasonFGBehind, Suppressed: true})
	a.Record(Event{Kind: KindFineDecision, At: 43, Reason: ReasonSteady})
	for _, act := range []Action{ActionFGMaxBoost, ActionFGThrottle, ActionBGThrottle,
		ActionBGSpeedup, ActionBGPause, ActionBGResume, ActionBGPause} {
		a.Record(Event{Kind: KindFineAction, Action: act})
	}
	f := a.Fine()
	want := FineStats{Decisions: 2, BGSuppressed: 1, PausesIssued: 2, FGThrottles: 1,
		BGThrottles: 1, BGSpeedups: 1, Resumes: 1, FGMaxBoosts: 1, LastDecisionAt: 43}
	if f != want {
		t.Errorf("fine stats = %+v, want %+v", f, want)
	}

	a.Record(Event{Kind: KindPartitionMove, FGWays: 2, Delta: 0, Reason: ReasonInitialPartition})
	a.Record(Event{Kind: KindPartitionMove, FGWays: 3, Delta: 1, ExecCount: 12})
	a.Record(Event{Kind: KindPartitionMove, FGWays: 4, Delta: 1, ExecCount: 18})
	if a.FGWays() != 4 || a.PartitionMoves() != 2 || a.ConvergedAtExecution() != 18 {
		t.Errorf("partition state: ways=%d moves=%d converged=%d",
			a.FGWays(), a.PartitionMoves(), a.ConvergedAtExecution())
	}

	a.Record(Event{Kind: KindTaskPause})
	a.Record(Event{Kind: KindTaskResume})
	a.Record(Event{Kind: KindTaskSwitch})
	a.Record(Event{Kind: KindSegmentPenalty, Penalty: 10 * time.Millisecond})
	a.Record(Event{Kind: KindSegmentPenalty, Penalty: 30 * time.Millisecond})
	a.Record(Event{Kind: KindExecutionComplete})
	if a.Pauses() != 1 || a.Resumes() != 1 || a.Switches() != 1 || a.Executions() != 1 {
		t.Error("lifecycle counters wrong")
	}
	if a.Segments() != 2 || a.MeanPenalty() != 20*time.Millisecond {
		t.Errorf("segments=%d mean penalty=%v", a.Segments(), a.MeanPenalty())
	}
}

func TestJSONLParseableAndFiltered(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	if j.Enabled(KindQuantumStep) {
		t.Error("quantum steps must be excluded by default")
	}
	r := WithRun(Recorder(j), "m1/Baseline")
	playMachine(r)
	r.Record(Event{Kind: KindFineDecision, At: 5, Reason: ReasonAllAhead, Ahead: 1, Streams: 1, Slack: 0.2})
	r.Record(Event{Kind: KindFineAction, Action: ActionBGSpeedup, Task: -1, Core: -1, Stream: -1})
	r.Record(Event{Kind: KindCoarseDecision, Reason: ReasonNoChange, FGWays: 2})
	r.Record(Event{Kind: KindSegmentPenalty, Stream: 0, Segment: 3, Duration: time.Millisecond, Penalty: time.Microsecond, Alpha: 1.1})
	r.Record(Event{Kind: KindExecutionComplete, Stream: 0, Task: 1, Duration: time.Second})
	r.Record(Event{Kind: KindTaskLaunch, Task: 0, Core: 0, Name: "ferret"})
	r.Record(Event{Kind: KindPartitionMove, FGWays: 3, Delta: 1, Reason: ReasonCorrelation})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// playMachine emits 5 events of which 3 quantum steps are filtered.
	if wantLines := 9; len(lines) != wantLines {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), wantLines, buf.String())
	}
	kinds := map[string]int{}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, ln)
		}
		kind, _ := obj["kind"].(string)
		kinds[kind]++
		if run, _ := obj["run"].(string); run != "m1/Baseline" {
			t.Errorf("missing run label on %s", ln)
		}
		if _, ok := obj["at_ns"]; !ok {
			t.Errorf("missing at_ns on %s", ln)
		}
	}
	if kinds["quantum_step"] != 0 {
		t.Error("quantum steps leaked into default trace")
	}
	for _, want := range []string{"machine_start", "dvfs", "fine_decision", "fine_action",
		"coarse_decision", "segment", "execution", "launch", "partition"} {
		if kinds[want] != 1 {
			t.Errorf("kind %s appeared %d times, want 1", want, kinds[want])
		}
	}
	if j.Events() != 9 {
		t.Errorf("Events() = %d", j.Events())
	}
	if j.Err() != nil {
		t.Errorf("Err() = %v", j.Err())
	}
}

func TestJSONLIncludeQuantumSteps(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf).Include(KindQuantumStep).Exclude(KindDVFSTransition)
	playMachine(j)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // machine_start + 3 quantum steps, dvfs excluded
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["kind"] != "quantum_step" || obj["instructions"] != 100.0 {
		t.Errorf("quantum step payload wrong: %v", obj)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLWriteError(t *testing.T) {
	j := NewJSONL(&failWriter{n: 1})
	j.Record(Event{Kind: KindTaskLaunch})
	j.Record(Event{Kind: KindTaskLaunch})
	j.Record(Event{Kind: KindTaskLaunch})
	if j.Err() == nil {
		t.Fatal("write error must surface via Err")
	}
	if j.Events() != 1 {
		t.Errorf("Events() = %d, want 1 (writes after error dropped)", j.Events())
	}
}

// TestAggregatorStreamDurations replays completion events for interleaved FG
// streams and checks durations come back per stream, in completion order, as
// defensive copies.
func TestAggregatorStreamDurations(t *testing.T) {
	a := NewAggregator()
	ms := time.Millisecond
	for _, ev := range []Event{
		{Kind: KindExecutionComplete, Stream: 0, Duration: 480 * ms},
		{Kind: KindExecutionComplete, Stream: 1, Duration: 300 * ms},
		{Kind: KindExecutionComplete, Stream: 0, Duration: 510 * ms},
		{Kind: KindExecutionComplete, Stream: 0, Duration: 495 * ms},
		{Kind: KindQuantumStep}, // unrelated kinds must not contribute
	} {
		a.Record(ev)
	}
	want0 := []time.Duration{480 * ms, 510 * ms, 495 * ms}
	got0 := a.StreamDurations(0)
	if len(got0) != len(want0) {
		t.Fatalf("stream 0: %d durations, want %d", len(got0), len(want0))
	}
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Errorf("stream 0 execution %d: %v, want %v", i, got0[i], want0[i])
		}
	}
	if got1 := a.StreamDurations(1); len(got1) != 1 || got1[0] != 300*ms {
		t.Errorf("stream 1 durations = %v", got1)
	}
	if got := a.StreamDurations(7); got != nil {
		t.Errorf("unseen stream returned %v, want nil", got)
	}
	// Mutating the returned slice must not corrupt the aggregator's state.
	got0[0] = 0
	if again := a.StreamDurations(0); again[0] != 480*ms {
		t.Error("StreamDurations must return a copy")
	}
}

func TestWithPolicyStampsLabel(t *testing.T) {
	if WithPolicy(Nop(), "rtgang") != Nop() {
		t.Error("WithPolicy over nop must stay nop")
	}
	c := &captureSink{}
	r := WithPolicy(c, "rtgang")
	r.Record(Event{Kind: KindFineDecision, Streams: 2})
	if len(c.events) != 1 || c.events[0].Policy != "rtgang" {
		t.Errorf("policy label not stamped: %+v", c.events)
	}
	if c.events[0].Streams != 2 {
		t.Error("payload must pass through unchanged")
	}
	// Composition with WithRun: both labels land on the same event.
	c2 := &captureSink{}
	rr := WithPolicy(WithRun(c2, "mixA/Dirigent"), "dirigent")
	rr.Record(Event{Kind: KindFineAction, Action: ActionGangSwitch})
	if c2.events[0].Run != "mixA/Dirigent" || c2.events[0].Policy != "dirigent" {
		t.Errorf("labels must compose: %+v", c2.events)
	}
}

func TestJSONLPolicyField(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	r := WithPolicy(Recorder(j), "cordlike")
	r.Record(Event{Kind: KindFineDecision, At: 5, Reason: ReasonStaticDecomposition, Streams: 1})
	r.Record(Event{Kind: KindFineAction, Action: ActionGangSwitch, Task: 2, Core: 1, Stream: 1})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, ln)
		}
		if p, _ := obj["policy"].(string); p != "cordlike" {
			t.Errorf("policy field = %q, want %q in %s", p, "cordlike", ln)
		}
	}
	var act map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &act); err != nil {
		t.Fatal(err)
	}
	if a, _ := act["action"].(string); a != "gang_switch" {
		t.Errorf("action = %q, want gang_switch", a)
	}
	// Unlabelled events omit the field entirely.
	buf.Reset()
	j2 := NewJSONL(&buf)
	j2.Record(Event{Kind: KindFineDecision, Streams: 1})
	if strings.Contains(buf.String(), "policy") {
		t.Errorf("unlabelled event must omit the policy field: %s", buf.String())
	}
}

// flushCloseWriter is an in-memory writer with controllable Flush/Close
// behaviour, for exercising the JSONL lifecycle paths.
type flushCloseWriter struct {
	bytes.Buffer
	flushErr error
	closeErr error
	flushes  int
	closes   int
}

func (f *flushCloseWriter) Flush() error { f.flushes++; return f.flushErr }
func (f *flushCloseWriter) Close() error { f.closes++; return f.closeErr }

func TestJSONLFlushCloseSurfaceErrors(t *testing.T) {
	// A dropped write error is what Flush and Close return later.
	j := NewJSONL(&failWriter{n: 0})
	j.Record(Event{Kind: KindTaskLaunch})
	if err := j.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush must surface the first write error, got %v", err)
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close must surface the first write error")
	}

	// Flush forwards to the writer's own Flush and wraps its error; the
	// error is sticky, so later events are dropped.
	fw := &flushCloseWriter{flushErr: errors.New("pipe gone")}
	j2 := NewJSONL(fw)
	j2.Record(Event{Kind: KindTaskLaunch})
	if err := j2.Flush(); err == nil || !strings.Contains(err.Error(), "pipe gone") {
		t.Fatalf("Flush error = %v", err)
	}
	j2.Record(Event{Kind: KindTaskLaunch})
	if j2.Events() != 1 {
		t.Errorf("Events() = %d after flush error, want 1", j2.Events())
	}

	// Close flushes first, then closes; a close error is reported when no
	// earlier error is pending.
	fw3 := &flushCloseWriter{closeErr: errors.New("already closed")}
	j3 := NewJSONL(fw3)
	j3.Record(Event{Kind: KindTaskLaunch})
	if err := j3.Close(); err == nil || !strings.Contains(err.Error(), "already closed") {
		t.Fatalf("Close error = %v", err)
	}
	if fw3.flushes != 1 || fw3.closes != 1 {
		t.Errorf("flushes=%d closes=%d, want 1/1", fw3.flushes, fw3.closes)
	}

	// Fully clean sink: nil all the way through.
	fw4 := &flushCloseWriter{}
	j4 := NewJSONL(fw4)
	j4.Record(Event{Kind: KindTaskLaunch})
	if err := j4.Close(); err != nil {
		t.Fatalf("clean Close = %v", err)
	}
	if fw4.flushes != 1 || fw4.closes != 1 {
		t.Errorf("clean path: flushes=%d closes=%d, want 1/1", fw4.flushes, fw4.closes)
	}
}

func TestJSONLBufferShrinksAfterLargeEvent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	huge := strings.Repeat("x", 2*jsonlRetainBytes)
	j.Record(Event{Kind: KindTaskLaunch, Name: huge})
	if c := cap(j.buf); c > jsonlRetainBytes {
		t.Errorf("encode buffer retains %d bytes after pathological event, cap is %d",
			c, jsonlRetainBytes)
	}
	if !strings.Contains(buf.String(), huge) {
		t.Error("pathological event must still be written intact")
	}
	// The sink keeps working after the shrink.
	j.Record(Event{Kind: KindTaskLaunch, Name: "small"})
	if j.Events() != 2 || j.Err() != nil {
		t.Errorf("post-shrink: events=%d err=%v", j.Events(), j.Err())
	}
}

func TestJSONLBatchMatchesPerEvent(t *testing.T) {
	evs := []Event{
		{Kind: KindQuantumStep, At: 250000, Utilization: 0.5, Instructions: 1e6, LLCMisses: 42},
		{Kind: KindQuantumStep, At: 500000, Utilization: 0.75, Instructions: 2e6, LLCMisses: 7, Run: "m1/Baseline"},
		{Kind: KindQuantumStep, At: 750000, Instructions: 3e6, Completions: 1, Policy: "dirigent"},
	}
	var one, batch bytes.Buffer
	j1 := NewJSONL(&one).Include(KindQuantumStep)
	for _, ev := range evs {
		j1.Record(ev)
	}
	j2 := NewJSONL(&batch).Include(KindQuantumStep)
	j2.RecordQuantumSteps(evs)
	if !bytes.Equal(one.Bytes(), batch.Bytes()) {
		t.Errorf("batched encoding differs from per-event encoding:\n%s\nvs\n%s",
			one.String(), batch.String())
	}
	if j2.Events() != int64(len(evs)) {
		t.Errorf("batch Events() = %d, want %d", j2.Events(), len(evs))
	}

	// With quantum steps excluded (the default), the batch is a no-op.
	var none bytes.Buffer
	j3 := NewJSONL(&none)
	j3.RecordQuantumSteps(evs)
	if j3.Events() != 0 || none.Len() != 0 {
		t.Error("excluded-kind batch must write nothing")
	}

	// After a write error, batches are dropped like single events.
	j4 := NewJSONL(&failWriter{n: 0}).Include(KindQuantumStep)
	j4.Record(Event{Kind: KindQuantumStep})
	j4.RecordQuantumSteps(evs)
	if j4.Events() != 0 {
		t.Errorf("post-error batch recorded %d events", j4.Events())
	}
}

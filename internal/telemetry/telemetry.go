// Package telemetry is the structured event/metrics layer every other
// subsystem reports through. The machine, the fine and coarse controllers,
// the predictor, the scheduler, and the evaluation harness all emit typed
// events onto a single Recorder instead of hand-rolling private counters;
// every figure-level statistic the harness reports is derived from the same
// event stream a user can trace to disk.
//
// Three sinks cover the use cases:
//
//   - Nop: the default. Zero allocation, zero branches beyond one
//     interface call; hot paths additionally gate event construction on
//     Enabled so the per-quantum cost with telemetry off is negligible.
//   - Aggregator: in-memory accumulation of the cross-run statistics the
//     evaluation harness needs (frequency residency, partition history,
//     controller action counters, execution counts).
//   - JSONL: a line-delimited JSON trace writer for offline replay and
//     external tooling (dirigent-sim --trace / dirigent-bench --trace).
//
// Recorders compose: Tee fans one stream out to several sinks, WithRun
// stamps every event with a run label so traces from interleaved runs stay
// attributable.
package telemetry

import (
	"time"

	"dirigent/internal/sim"
)

// Kind identifies the type of an event and which Event fields are
// meaningful for it.
type Kind uint8

const (
	// KindMachineStart is emitted when a recorder is attached to a
	// machine; it carries the geometry (cores, frequency levels, quantum)
	// sinks need to interpret later events.
	// Fields: Cores, Levels, TopLevel, Quantum.
	KindMachineStart Kind = 1 + iota
	// KindQuantumStep is the machine hot-path event: one per simulation
	// quantum, with machine-wide aggregates for that quantum.
	// Fields: Utilization, Instructions, LLCMisses, Completions.
	KindQuantumStep
	// KindDVFSTransition reports a core frequency-level change.
	// Fields: Core, FromLevel, ToLevel.
	KindDVFSTransition
	// KindPartitionMove reports an applied LLC way-partition change (the
	// coarse controller's CAT action), including the initial partition
	// (Delta 0, Reason ReasonInitialPartition).
	// Fields: FGWays, Delta, ExecCount, Reason.
	KindPartitionMove
	// KindTaskLaunch / KindTaskKill report task placement and removal.
	// Fields: Task, Core, Name.
	KindTaskLaunch
	KindTaskKill
	// KindTaskPause / KindTaskResume report machine-level task state
	// transitions (emitted only on actual state changes).
	// Fields: Task, Core.
	KindTaskPause
	KindTaskResume
	// KindTaskSwitch reports a program swap on a live task (rotate-BG
	// context switches). Fields: Task, Core, Name (new benchmark).
	KindTaskSwitch
	// KindSegmentPenalty is emitted by the predictor at each milestone
	// crossing with the Eq. 1 quantities for the traversed segment.
	// Fields: Stream, Segment, Duration (measured), Penalty, Alpha.
	KindSegmentPenalty
	// KindExecutionComplete reports one finished FG execution.
	// Fields: Stream, Task, Duration, Instructions, LLCMisses.
	KindExecutionComplete
	// KindFineDecision is one fine time scale control decision with its
	// triggering predicate.
	// Fields: Reason, Behind, Ahead, Streams, Slack (worst), Suppressed.
	KindFineDecision
	// KindFineAction is one resource-shift action taken within a fine
	// decision. Fields: Action, and Task/Core/Stream when targeted.
	KindFineAction
	// KindCoarseDecision is one coarse time scale invocation (whether or
	// not it changed the partition).
	// Fields: Reason, Delta, FGWays, ExecCount.
	KindCoarseDecision
	// KindFault is one injected fault (internal/fault): Reason carries the
	// fault class wire name, Duration the injected latency for delayed
	// actuation classes, and Task/Core/Stream the identity the fault hit
	// (-1 where not applicable).
	KindFault
	// KindReprofile reports the runtime re-profiling a stream in place
	// after detecting chronic profile mismatch (sustained α drift).
	// Fields: Stream, Alpha (the drift that triggered), Duration (the
	// simulated time profiling took), Suppressed (true when profiling
	// failed and the stale profile was kept).
	KindReprofile

	numKinds
)

var kindNames = [numKinds]string{
	KindMachineStart:      "machine_start",
	KindQuantumStep:       "quantum_step",
	KindDVFSTransition:    "dvfs",
	KindPartitionMove:     "partition",
	KindTaskLaunch:        "launch",
	KindTaskKill:          "kill",
	KindTaskPause:         "pause",
	KindTaskResume:        "resume",
	KindTaskSwitch:        "switch",
	KindSegmentPenalty:    "segment",
	KindExecutionComplete: "execution",
	KindFineDecision:      "fine_decision",
	KindFineAction:        "fine_action",
	KindCoarseDecision:    "coarse_decision",
	KindFault:             "fault",
	KindReprofile:         "reprofile",
}

// String returns the stable wire name of the kind (used in JSONL traces).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds returns every defined event kind.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := Kind(1); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Action is a fine-controller resource-shift action.
type Action uint8

const (
	ActionNone Action = iota
	// ActionFGMaxBoost: a lagging FG core was raised to the top grade.
	ActionFGMaxBoost
	// ActionFGThrottle: an ahead FG core was stepped down one grade.
	ActionFGThrottle
	// ActionBGThrottle: the active BG cores were stepped down one grade.
	ActionBGThrottle
	// ActionBGSpeedup: the active BG cores were stepped up one grade.
	ActionBGSpeedup
	// ActionBGPause: the most intrusive BG task was paused.
	ActionBGPause
	// ActionBGResume: all paused BG tasks were resumed.
	ActionBGResume
	// ActionActuationFail: a DVFS/pause/resume actuation the controller
	// requested was dropped (injected fault); the controller retries on a
	// later decision.
	ActionActuationFail
	// ActionGangSwitch: the RT-Gang policy rotated the active FG gang; the
	// event's Task/Core/Stream identify the newly resumed gang.
	ActionGangSwitch
)

var actionNames = [...]string{
	ActionNone:          "none",
	ActionFGMaxBoost:    "fg_max_boost",
	ActionFGThrottle:    "fg_throttle",
	ActionBGThrottle:    "bg_throttle",
	ActionBGSpeedup:     "bg_speedup",
	ActionBGPause:       "bg_pause",
	ActionBGResume:      "bg_resume",
	ActionActuationFail: "actuation_fail",
	ActionGangSwitch:    "gang_switch",
}

// String returns the stable wire name of the action.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "unknown"
}

// Reason labels the predicate that triggered a controller decision.
type Reason string

// Fine time scale decision reasons (§4.3).
const (
	// ReasonFGBehind: at least one FG stream is predicted behind target.
	ReasonFGBehind Reason = "fg-behind"
	// ReasonAllAhead: every FG stream is predicted comfortably ahead.
	ReasonAllAhead Reason = "all-ahead"
	// ReasonSteady: no stream crossed either margin; no action.
	ReasonSteady Reason = "steady"
)

// Coarse time scale decision reasons (the three §4.3 heuristics).
const (
	// ReasonInitialPartition labels the partition applied at construction.
	ReasonInitialPartition Reason = "initial-partition"
	// ReasonCorrelation: heuristic 1 — execution time correlates with FG
	// LLC misses and a deadline was missed recently.
	ReasonCorrelation Reason = "h1-correlation"
	// ReasonRevertGrow: heuristic 2 — the previous grow did not reduce
	// misses and is undone.
	ReasonRevertGrow Reason = "h2-revert-grow"
	// ReasonBGSuppressed: heuristic 3 — the fine controller reports BG
	// tasks heavily suppressed.
	ReasonBGSuppressed Reason = "h3-bg-suppressed"
	// ReasonNoChange: no heuristic fired.
	ReasonNoChange Reason = "no-change"
)

// Rival-policy decision reasons (internal/policy).
const (
	// ReasonGangActive labels an RT-Gang invariant-enforcement decision.
	ReasonGangActive Reason = "gang-active"
	// ReasonStaticDecomposition labels the CORD-style policy's static
	// allocation: its initial partition move and its re-assert decisions.
	ReasonStaticDecomposition Reason = "static-decomposition"
)

// Event is one telemetry record. It is a flat value type — recording an
// event allocates nothing — with a Kind discriminant; only the field groups
// documented on each Kind are meaningful for that kind.
type Event struct {
	Kind Kind
	// At is the simulated time of the event.
	At sim.Time
	// Run is an optional run label stamped by WithRun.
	Run string
	// Policy is an optional QoS-policy label stamped by WithPolicy: the
	// runtime wraps each policy's recorder so its action/decision events
	// stay distinguishable when several policies share one stream.
	Policy string

	// Identity of the task/core/stream the event concerns (kind-dependent).
	Task   int
	Core   int
	Stream int
	// Name is a benchmark/task name where relevant.
	Name string

	// Machine geometry (KindMachineStart).
	Cores    int
	Levels   int
	TopLevel int
	Quantum  time.Duration

	// Per-quantum aggregates (KindQuantumStep).
	Utilization  float64
	Instructions float64
	LLCMisses    float64
	Completions  int

	// DVFS transition (KindDVFSTransition).
	FromLevel int
	ToLevel   int

	// Partition state (KindPartitionMove, KindCoarseDecision).
	FGWays    int
	Delta     int
	ExecCount int

	// Segment / execution quantities (KindSegmentPenalty,
	// KindExecutionComplete).
	Segment  int
	Duration time.Duration
	Penalty  time.Duration
	Alpha    float64

	// Controller decision payload (KindFineDecision, KindFineAction,
	// KindCoarseDecision).
	Action     Action
	Reason     Reason
	Slack      float64
	Behind     int
	Ahead      int
	Streams    int
	Suppressed bool
}

// Recorder is the event bus interface. Implementations must not mutate
// simulation state: recording is strictly observational, so a run's results
// are byte-identical with any recorder attached or none.
//
// Enabled lets hot paths skip event construction entirely when a kind is
// not consumed; Record may assume it is only called for enabled kinds but
// must tolerate others.
type Recorder interface {
	// Enabled reports whether events of kind k are consumed.
	Enabled(k Kind) bool
	// Record delivers one event. Events arrive in simulation order within
	// a run; implementations used across concurrent runs must lock.
	Record(ev Event)
}

// QuantumBatcher is an optional Recorder extension for the machine's
// skip-ahead fast path: a sink implementing it receives a run of
// consecutive KindQuantumStep events in one call instead of one Record per
// quantum. RecordQuantumSteps must be observationally identical to calling
// Record on each event in order. The machine guarantees no other event is
// emitted inside a batch (it flushes before e.g. a DVFS transition), so
// batch-aware sinks may fold per-batch state — the aggregator advances
// frequency residency once per batch — without changing results.
// Implementations must not retain or mutate evs: the slice is the
// machine's reused buffer.
type QuantumBatcher interface {
	RecordQuantumSteps(evs []Event)
}

// nop is the zero-cost default recorder.
type nop struct{}

func (nop) Enabled(Kind) bool { return false }
func (nop) Record(Event)      {}

var nopRecorder Recorder = nop{}

// Nop returns the shared no-op recorder.
func Nop() Recorder { return nopRecorder }

// OrNop returns r, or the no-op recorder when r is nil, so components can
// store a Recorder unconditionally and emit without nil checks.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return nopRecorder
	}
	return r
}

// IsNop reports whether r is the shared no-op recorder (or nil).
func IsNop(r Recorder) bool { return r == nil || r == nopRecorder }

// tee fans events out to several sinks.
type tee struct {
	sinks []Recorder
}

// Tee returns a recorder that forwards each event to every non-nil,
// non-noop sink that has its kind enabled. With zero real sinks it returns
// Nop; with one it returns that sink directly.
func Tee(sinks ...Recorder) Recorder {
	real := make([]Recorder, 0, len(sinks))
	for _, s := range sinks {
		if !IsNop(s) {
			real = append(real, s)
		}
	}
	switch len(real) {
	case 0:
		return nopRecorder
	case 1:
		return real[0]
	}
	return &tee{sinks: real}
}

func (t *tee) Enabled(k Kind) bool {
	for _, s := range t.sinks {
		if s.Enabled(k) {
			return true
		}
	}
	return false
}

func (t *tee) Record(ev Event) {
	for _, s := range t.sinks {
		if s.Enabled(ev.Kind) {
			s.Record(ev)
		}
	}
}

// RecordQuantumSteps forwards a batch to every sink, using each sink's own
// batch path when it has one.
func (t *tee) RecordQuantumSteps(evs []Event) {
	for _, s := range t.sinks {
		if !s.Enabled(KindQuantumStep) {
			continue
		}
		if qb, ok := s.(QuantumBatcher); ok {
			qb.RecordQuantumSteps(evs)
			continue
		}
		for i := range evs {
			s.Record(evs[i])
		}
	}
}

// runScope stamps a run label onto every event.
type runScope struct {
	r   Recorder
	run string

	// scratch holds the stamped copy of a quantum-step batch: the incoming
	// slice is the machine's reused buffer and must not be mutated.
	scratch []Event
}

// WithRun wraps r so every recorded event carries the given run label; use
// it to keep events attributable when several runs share one sink (the
// harness labels events "mix/config").
func WithRun(r Recorder, run string) Recorder {
	if IsNop(r) {
		return nopRecorder
	}
	return &runScope{r: r, run: run}
}

func (s *runScope) Enabled(k Kind) bool { return s.r.Enabled(k) }

func (s *runScope) Record(ev Event) {
	ev.Run = s.run
	s.r.Record(ev)
}

// RecordQuantumSteps stamps the run label onto a private copy of the batch
// and forwards it.
func (s *runScope) RecordQuantumSteps(evs []Event) {
	s.scratch = append(s.scratch[:0], evs...)
	for i := range s.scratch {
		s.scratch[i].Run = s.run
	}
	if qb, ok := s.r.(QuantumBatcher); ok {
		qb.RecordQuantumSteps(s.scratch)
		return
	}
	for i := range s.scratch {
		s.r.Record(s.scratch[i])
	}
}

// policyScope stamps a policy label onto every event.
type policyScope struct {
	r      Recorder
	policy string

	scratch []Event
}

// WithPolicy wraps r so every recorded event carries the given QoS-policy
// label; the runtime wraps the recorder it hands each policy, so the
// policy's decision/action events (and everything else it emits) stay
// attributable in mixed traces.
func WithPolicy(r Recorder, policy string) Recorder {
	if IsNop(r) {
		return nopRecorder
	}
	return &policyScope{r: r, policy: policy}
}

func (s *policyScope) Enabled(k Kind) bool { return s.r.Enabled(k) }

func (s *policyScope) Record(ev Event) {
	ev.Policy = s.policy
	s.r.Record(ev)
}

// RecordQuantumSteps stamps the policy label onto a private copy of the
// batch and forwards it.
func (s *policyScope) RecordQuantumSteps(evs []Event) {
	s.scratch = append(s.scratch[:0], evs...)
	for i := range s.scratch {
		s.scratch[i].Policy = s.policy
	}
	if qb, ok := s.r.(QuantumBatcher); ok {
		qb.RecordQuantumSteps(s.scratch)
		return
	}
	for i := range s.scratch {
		s.r.Record(s.scratch[i])
	}
}

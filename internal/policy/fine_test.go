package policy

import (
	"reflect"
	"testing"
	"time"

	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// fineFixture builds a machine with 1 FG (core 0) + 5 BG (cores 1-5) and a
// fine controller over them. Counters are observed through an aggregator on
// the controller's telemetry stream, exactly as the experiment harness does.
type fineFixture struct {
	m       *machine.Machine
	fc      *FineController
	agg     *telemetry.Aggregator
	fgTask  int
	bgTasks []int
}

// fine returns the aggregated fine-controller counters.
func (f *fineFixture) fine() telemetry.FineStats { return f.agg.Fine() }

func newFineFixture(t *testing.T, cfg FineConfig) *fineFixture {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig())
	fgProg := workload.MustProgram(workload.MustByName("ferret"))
	fgTask, err := m.Launch("ferret", fgProg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bgTasks []int
	for c := 1; c < 6; c++ {
		prog := workload.MustProgram(workload.MustByName("bwaves"))
		id, err := m.Launch("bwaves", prog, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		bgTasks = append(bgTasks, id)
	}
	agg := telemetry.NewAggregator()
	cfg.Recorder = agg
	fc, err := NewFineController(m, []int{fgTask}, []int{0}, bgTasks, []int{1, 2, 3, 4, 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fineFixture{m: m, fc: fc, agg: agg, fgTask: fgTask, bgTasks: bgTasks}
}

// status builds an FGStatus with the given normalized slack (positive =
// ahead) against a 1 s target.
func statusWithSlack(slack float64) FGStatus {
	target := time.Second
	deadline := sim.Time(2 * time.Second)
	predicted := deadline - sim.Time(float64(target)*slack)
	return FGStatus{Predicted: predicted, Deadline: deadline, Target: target}
}

func (f *fineFixture) bgGrades(t *testing.T) []int {
	t.Helper()
	out := make([]int, 5)
	for i, c := range []int{1, 2, 3, 4, 5} {
		l, err := f.m.FreqLevel(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l
	}
	return out
}

func TestNewFineControllerValidation(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	if _, err := NewFineController(nil, []int{1}, []int{0}, nil, nil, FineConfig{}); err == nil {
		t.Error("nil machine should error")
	}
	if _, err := NewFineController(m, nil, nil, nil, nil, FineConfig{}); err == nil {
		t.Error("no FG should error")
	}
	if _, err := NewFineController(m, []int{1}, []int{0, 1}, nil, nil, FineConfig{}); err == nil {
		t.Error("FG length mismatch should error")
	}
	if _, err := NewFineController(m, []int{1}, []int{0}, []int{2}, nil, FineConfig{}); err == nil {
		t.Error("BG length mismatch should error")
	}
	if _, err := NewFineController(m, []int{1}, []int{0}, nil, nil, FineConfig{Grades: []int{5, 3}}); err == nil {
		t.Error("descending grades should error")
	}
	if _, err := NewFineController(m, []int{1}, []int{0}, nil, nil, FineConfig{Grades: []int{0, 99}}); err == nil {
		t.Error("grade outside machine levels should error")
	}
}

func TestFineControllerInitialGrades(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	// All managed cores pinned to the top grade (level 8 = 2.0 GHz).
	for c := 0; c < 6; c++ {
		l, _ := f.m.FreqLevel(c)
		if l != 8 {
			t.Errorf("core %d level = %d, want 8", c, l)
		}
	}
}

func TestDecideStatusCountMismatch(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	if err := f.fc.Decide(0, nil); err == nil {
		t.Error("status count mismatch should error")
	}
}

func TestAheadThrottlesBGLastFGFirst(t *testing.T) {
	// Paper order when ahead: resume paused → speed up throttled BG →
	// throttle FG. Starting with everything at max, being ahead must
	// throttle the FG (nothing to resume or speed up).
	f := newFineFixture(t, FineConfig{})
	if err := f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)}); err != nil {
		t.Fatal(err)
	}
	l, _ := f.m.FreqLevel(0)
	if l != 6 { // one grade below 8 in {0,2,4,6,8}
		t.Errorf("FG level = %d, want 6 (one grade down)", l)
	}
	for _, g := range f.bgGrades(t) {
		if g != 8 {
			t.Errorf("BG should stay at max, got %d", g)
		}
	}
	if f.fine().FGThrottles == 0 {
		t.Error("FGThrottles should count")
	}
}

func TestBehindBoostsFGThenThrottlesBG(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	// First make FG throttled by being ahead twice.
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)})
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)})
	l, _ := f.m.FreqLevel(0)
	if l != 4 {
		t.Fatalf("setup: FG level = %d", l)
	}
	// Now behind: FG must jump straight to max; BG untouched this round.
	if err := f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)}); err != nil {
		t.Fatal(err)
	}
	l, _ = f.m.FreqLevel(0)
	if l != 8 {
		t.Errorf("FG level = %d, want boosted to 8", l)
	}
	for _, g := range f.bgGrades(t) {
		if g != 8 {
			t.Errorf("BG should be untouched while FG boosts, got %d", g)
		}
	}
	// Behind again with FG already at max: BG throttles one grade.
	if err := f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)}); err != nil {
		t.Fatal(err)
	}
	for _, g := range f.bgGrades(t) {
		if g != 6 {
			t.Errorf("BG level = %d, want 6", g)
		}
	}
	if f.fine().BGThrottles == 0 || f.fine().FGMaxBoosts == 0 {
		t.Errorf("stats not counted: %+v", f.fine())
	}
}

func TestPauseOnlyWhenBadlyBehindAndBGAtMin(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	// Drive BG to min grade: FG at max and behind → 4 throttle rounds.
	for i := 0; i < 4; i++ {
		_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)})
	}
	for _, g := range f.bgGrades(t) {
		if g != 0 {
			t.Fatalf("setup: BG level = %d, want 0", g)
		}
	}
	// Mildly behind (< 10%): no pause.
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)})
	for _, bt := range f.bgTasks {
		if p, _ := f.m.Paused(bt); p {
			t.Error("mildly-behind decision should not pause")
		}
	}
	// Badly behind: pause exactly one (the most intrusive).
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.2)})
	paused := 0
	for _, bt := range f.bgTasks {
		if p, _ := f.m.Paused(bt); p {
			paused++
		}
	}
	if paused != 1 {
		t.Errorf("paused = %d, want exactly 1", paused)
	}
	if f.fine().PausesIssued != 1 {
		t.Errorf("PausesIssued = %d", f.fine().PausesIssued)
	}
}

func TestPausesMostIntrusiveBG(t *testing.T) {
	// Mix of lbm (heavy) and namd (light): the paused task must be an lbm.
	m := machine.MustNew(machine.DefaultConfig())
	fgTask, _ := m.Launch("ferret", workload.MustProgram(workload.MustByName("ferret")), 0, 0)
	var bgTasks []int
	names := []string{"namd", "lbm", "namd", "lbm", "namd"}
	for i, n := range names {
		id, err := m.Launch(n, workload.MustProgram(workload.MustByName(n)), i+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		bgTasks = append(bgTasks, id)
	}
	fc, err := NewFineController(m, []int{fgTask}, []int{0}, bgTasks, []int{1, 2, 3, 4, 5}, FineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Let tasks run so miss counters accumulate.
	for i := 0; i < 200; i++ {
		m.Step()
	}
	// Drive BG to min, then force a pause.
	for i := 0; i < 4; i++ {
		_ = fc.Decide(m.Now(), []FGStatus{statusWithSlack(-0.05)})
		for j := 0; j < 50; j++ {
			m.Step()
		}
	}
	_ = fc.Decide(m.Now(), []FGStatus{statusWithSlack(-0.3)})
	for i, bt := range bgTasks {
		if p, _ := m.Paused(bt); p {
			if name, _ := m.TaskName(bt); name != "lbm" {
				t.Errorf("paused %s (task %d), want an lbm", name, i)
			}
			return
		}
	}
	t.Error("no BG task paused")
}

func TestAheadResumesPausedFirst(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	// Get one BG paused.
	for i := 0; i < 4; i++ {
		_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)})
	}
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.2)})
	// Releases are rate-limited: the hold-off count of consecutive ahead
	// decisions must elapse before the resume fires, and the first release
	// must be resuming, not speeding up.
	gradesBefore := f.bgGrades(t)
	for i := 0; i < DefaultSpeedupHoldoff-1; i++ {
		if err := f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)}); err != nil {
			t.Fatal(err)
		}
		for _, bt := range f.bgTasks {
			if p, _ := f.m.Paused(bt); p {
				goto stillPaused
			}
		}
		t.Fatal("resume fired before the hold-off elapsed")
	stillPaused:
	}
	if err := f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)}); err != nil {
		t.Fatal(err)
	}
	for _, bt := range f.bgTasks {
		if p, _ := f.m.Paused(bt); p {
			t.Error("hold-off elapsed: paused BG should resume")
		}
	}
	for i, g := range f.bgGrades(t) {
		if g != gradesBefore[i] {
			t.Error("resume round should not also change frequencies")
		}
	}
	if f.fine().Resumes != 1 {
		t.Errorf("Resumes = %d", f.fine().Resumes)
	}
	// Next full hold-off of ahead rounds: speed up BG one grade.
	for i := 0; i < DefaultSpeedupHoldoff; i++ {
		_ = f.fc.Decide(0, []FGStatus{statusWithSlack(0.2)})
	}
	for _, g := range f.bgGrades(t) {
		if g != 2 {
			t.Errorf("BG level = %d, want 2 (one grade up from 0)", g)
		}
	}
	if f.fine().BGSpeedups != 1 {
		t.Errorf("BGSpeedups = %d", f.fine().BGSpeedups)
	}
}

func TestNeutralZoneNoAction(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	// Slack within the hysteresis band (behind 1.5%, ahead 4%): no action.
	if err := f.fc.Decide(0, []FGStatus{statusWithSlack(0.03)}); err != nil {
		t.Fatal(err)
	}
	l, _ := f.m.FreqLevel(0)
	if l != 8 {
		t.Errorf("FG level = %d, want unchanged 8", l)
	}
	for _, g := range f.bgGrades(t) {
		if g != 8 {
			t.Errorf("BG level = %d, want unchanged 8", g)
		}
	}
}

func TestMultiFGMixedTendency(t *testing.T) {
	// Two FG streams: one behind, one ahead. BG throttles for the slowest;
	// the ahead FG throttles individually (§4.3 multi-FG policy).
	m := machine.MustNew(machine.DefaultConfig())
	fg1, _ := m.Launch("ferret", workload.MustProgram(workload.MustByName("ferret")), 0, 0)
	fg2, _ := m.Launch("raytrace", workload.MustProgram(workload.MustByName("raytrace")), 1, 0)
	var bgTasks []int
	for c := 2; c < 6; c++ {
		id, _ := m.Launch("bwaves", workload.MustProgram(workload.MustByName("bwaves")), c, 0)
		bgTasks = append(bgTasks, id)
	}
	fc, err := NewFineController(m, []int{fg1, fg2}, []int{0, 1}, bgTasks, []int{2, 3, 4, 5}, FineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// fg1 behind (already at max → BG throttles), fg2 ahead (throttles).
	if err := fc.Decide(0, []FGStatus{statusWithSlack(-0.05), statusWithSlack(0.15)}); err != nil {
		t.Fatal(err)
	}
	l1, _ := m.FreqLevel(0)
	if l1 != 8 {
		t.Errorf("behind FG level = %d, want 8", l1)
	}
	l2, _ := m.FreqLevel(1)
	if l2 != 6 {
		t.Errorf("ahead FG level = %d, want 6", l2)
	}
	for _, c := range []int{2, 3, 4, 5} {
		l, _ := m.FreqLevel(c)
		if l != 6 {
			t.Errorf("BG core %d level = %d, want 6", c, l)
		}
	}
}

func TestWindowAndAggregatedStats(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	_ = f.fc.Decide(sim.Time(time.Second), []FGStatus{statusWithSlack(0.2)})
	if w := f.fc.Window(); w.Decisions != 1 {
		t.Errorf("Window = %+v", w)
	}
	s := f.fine()
	if s.Decisions != 1 || s.LastDecisionAt != sim.Time(time.Second) {
		t.Errorf("aggregated stats = %+v", s)
	}
	f.fc.ResetWindow()
	if f.fc.Window().Decisions != 0 {
		t.Error("ResetWindow should clear the window")
	}
	// The window is control state for the coarse controller; the aggregated
	// stream is cumulative and must survive the reset.
	if f.fine().Decisions != 1 {
		t.Error("aggregated counters must survive a window reset")
	}
}

func TestBGSuppressedTelemetry(t *testing.T) {
	f := newFineFixture(t, FineConfig{})
	for i := 0; i < 4; i++ {
		_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)})
	}
	before := f.fine().BGSuppressed
	windowBefore := f.fc.Window().BGSuppressed
	_ = f.fc.Decide(0, []FGStatus{statusWithSlack(-0.05)})
	if f.fine().BGSuppressed != before+1 {
		t.Errorf("BGSuppressed should count decisions with BG at min: %+v", f.fine())
	}
	if f.fc.Window().BGSuppressed != windowBefore+1 {
		t.Errorf("window BGSuppressed should track too: %+v", f.fc.Window())
	}
}

func TestZeroTargetSlack(t *testing.T) {
	s := FGStatus{Predicted: 100, Deadline: 200, Target: 0}
	if s.slack() != 0 {
		t.Errorf("slack with zero target = %g, want 0", s.slack())
	}
}

func TestGradesForLevels(t *testing.T) {
	cases := []struct {
		levels int
		want   []int
	}{
		{9, []int{0, 2, 4, 6, 8}}, // the paper's ladder == DefaultGrades
		{5, []int{0, 1, 2, 3, 4}},
		{4, []int{0, 1, 2, 3}},
		{1, []int{0}},
		{7, []int{0, 1, 3, 4, 6}},
		{13, []int{0, 3, 6, 9, 12}},
		{0, nil},
	}
	for _, c := range cases {
		got := GradesForLevels(c.levels)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("GradesForLevels(%d) = %v, want %v", c.levels, got, c.want)
		}
		// Grades must be valid, strictly ascending level indices ending at
		// the top level so controllers can always boost to max.
		if c.levels > 0 {
			if got[len(got)-1] != c.levels-1 {
				t.Errorf("GradesForLevels(%d) top grade %d != top level", c.levels, got[len(got)-1])
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Errorf("GradesForLevels(%d) not strictly ascending: %v", c.levels, got)
				}
			}
		}
	}
	if !reflect.DeepEqual(GradesForLevels(9), DefaultGrades()) {
		t.Fatal("nine-level grades must reproduce DefaultGrades")
	}
}

// TestFineControllerShortLadder builds the fine controller on a 5-level
// ladder machine (the quad-low class shape) and checks default grades adapt
// instead of rejecting the machine.
func TestFineControllerShortLadder(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.FreqLevelsGHz = []float64{1.0, 1.2, 1.4, 1.6, 1.8}
	m := machine.MustNew(cfg)
	fg, err := m.Launch("fg", workload.MustProgram(workload.MustByName("ferret")), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := m.Launch("bg", workload.MustProgram(workload.MustByName("rs")), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFineController(m, []int{fg}, []int{0}, []int{bg}, []int{1}, FineConfig{})
	if err != nil {
		t.Fatalf("five-level ladder rejected: %v", err)
	}
	if got, want := fc.cfg.Grades, []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("grades = %v, want %v", got, want)
	}
}

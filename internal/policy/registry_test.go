package policy

import (
	"reflect"
	"strings"
	"testing"
)

func TestRegistryNamesSorted(t *testing.T) {
	want := []string{NameCORDLike, NameDirigent, NameRTGang}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		if !Valid(n) {
			t.Errorf("Valid(%q) = false, want true", n)
		}
	}
	if Valid("nope") {
		t.Error(`Valid("nope") = true, want false`)
	}
}

func TestNewEmptyNameDefaultsToDirigent(t *testing.T) {
	p, err := New("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != NameDirigent {
		t.Errorf("New(\"\").Name() = %q, want %q", p.Name(), NameDirigent)
	}
}

func TestNewUnknownListsValidNames(t *testing.T) {
	_, err := New("bogus", Options{})
	if err == nil {
		t.Fatal("New(bogus) must error")
	}
	msg := err.Error()
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q should list valid policy %q", msg, n)
		}
	}
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, _ := New(NameRTGang, Options{})
	b, _ := New(NameRTGang, Options{})
	if a == b {
		t.Error("New must build a fresh instance per call")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	Register(NameDirigent, func(o Options) Policy { return NewDirigent(o) })
}

func TestRegisterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register with empty name must panic")
		}
	}()
	Register("", nil)
}

// TestPolicyCapabilities pins each policy's declared actuator set — the
// runtime keys class setup and reporting off these.
func TestPolicyCapabilities(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want Capabilities
	}{
		{NameDirigent, Options{}, Capabilities{DVFS: true, Pause: true}},
		{NameDirigent, Options{Partitioning: true}, Capabilities{DVFS: true, Pause: true, LLCWays: true}},
		{NameRTGang, Options{Partitioning: true}, Capabilities{DVFS: true, Pause: true}},
		{NameCORDLike, Options{}, Capabilities{DVFS: true, LLCWays: true}},
	}
	for _, c := range cases {
		p, err := New(c.name, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Capabilities(); got != c.want {
			t.Errorf("%s%+v capabilities = %+v, want %+v", c.name, c.opts, got, c.want)
		}
	}
}

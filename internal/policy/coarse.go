package policy

import (
	"errors"
	"fmt"

	"dirigent/internal/cache"
	"dirigent/internal/sim"
	"dirigent/internal/stats"
	"dirigent/internal/telemetry"
)

// Default coarse-control parameters from §4.3 and §5.3.
const (
	// DefaultCorrThreshold is the correlation coefficient above which FG
	// execution time is considered strongly coupled to FG LLC misses.
	DefaultCorrThreshold = 0.75
	// DefaultHistory is the number of recent FG executions the controller
	// considers.
	DefaultHistory = 10
	// DefaultAdjustEvery is how many FG executions elapse between partition
	// adjustments. The paper's controller converges to the Fig. 8 knee
	// "after just 32 FG task executions (5 coarse time scale controller
	// invocations)" — ~6–7 executions per invocation.
	DefaultAdjustEvery = 6
	// DefaultSuppressedFrac is the fraction of fine decisions with BG fully
	// suppressed above which heuristic 3 grows the FG partition.
	DefaultSuppressedFrac = 0.5
)

// CoarseConfig configures the coarse time scale controller.
type CoarseConfig struct {
	// MinFGWays/MaxFGWays bound the FG partition (BG always keeps at least
	// the remainder). Zero values default to 2 and ways−2.
	MinFGWays, MaxFGWays int
	// History is the sliding window length in executions.
	History int
	// AdjustEvery is the invocation interval in executions.
	AdjustEvery int
	// CorrThreshold is heuristic 1's correlation bound.
	CorrThreshold float64
	// SuppressedFrac is heuristic 3's trigger.
	SuppressedFrac float64
	// InitialFGWays is the starting partition. Zero defaults to MinFGWays:
	// the controller starts with minimal isolation and grows the FG
	// partition one way at a time as the heuristics demand (§4.3 "add one
	// LLC way to the FG partition"), converging to the knee of the Fig. 8
	// curve rather than starting from an over-provisioned split.
	InitialFGWays int
	// Recorder receives partition-move and decision events. Nil means no
	// telemetry (the runtime injects its configured recorder here).
	Recorder telemetry.Recorder
}

func (c CoarseConfig) withDefaults(totalWays int) CoarseConfig {
	if c.MinFGWays == 0 {
		c.MinFGWays = 2
	}
	if c.MaxFGWays == 0 {
		c.MaxFGWays = totalWays - 2
	}
	if c.History == 0 {
		c.History = DefaultHistory
	}
	if c.AdjustEvery == 0 {
		c.AdjustEvery = DefaultAdjustEvery
	}
	if c.CorrThreshold == 0 {
		c.CorrThreshold = DefaultCorrThreshold
	}
	if c.SuppressedFrac == 0 {
		c.SuppressedFrac = DefaultSuppressedFrac
	}
	if c.InitialFGWays == 0 {
		c.InitialFGWays = c.MinFGWays
	}
	return c
}

// CoarseController implements Dirigent's coarse time scale QoS control
// (§4.3): it adjusts the CAT-style way partition between the FG and BG
// classes using statistics collected over multiple FG executions, because
// cache inertia makes partition changes too slow for per-segment control.
//
// Three heuristics:
//
//  1. If corr(FG execution time, FG LLC misses) over the window exceeds the
//     threshold AND a deadline was missed recently, grow the FG partition.
//  2. If the previous action was a grow and FG misses did not decrease,
//     shrink back (prevents unbounded growth from anomalous executions).
//  3. If the fine controller reports BG tasks heavily suppressed (low BG
//     core utilization), grow the FG partition even without correlation —
//     partitioning may relieve the contention that throttling is absorbing.
type CoarseController struct {
	llc     *cache.LLC
	fgClass cache.ClassID
	bgClass cache.ClassID
	cfg     CoarseConfig
	rec     telemetry.Recorder

	execTimes  *stats.Ring
	execMisses *stats.Ring
	missedDL   *stats.Ring // 1.0 = missed

	sinceAdjust int
	fgWays      int

	// Grow bookkeeping for heuristic 2.
	lastWasGrow      bool
	missesBeforeGrow float64

	adjustments      int
	execCount        int
	lastChangeAtExec int
}

// NewCoarseController builds the controller and applies the initial
// partition.
func NewCoarseController(llc *cache.LLC, fgClass, bgClass cache.ClassID, cfg CoarseConfig) (*CoarseController, error) {
	if llc == nil {
		return nil, errors.New("policy: nil LLC")
	}
	if fgClass == bgClass {
		return nil, errors.New("policy: FG and BG must use distinct partition classes")
	}
	cfg = cfg.withDefaults(llc.Ways())
	if cfg.MinFGWays < 1 || cfg.MaxFGWays > llc.Ways()-1 || cfg.MinFGWays > cfg.MaxFGWays {
		return nil, fmt.Errorf("policy: FG way bounds [%d,%d] invalid for %d-way cache",
			cfg.MinFGWays, cfg.MaxFGWays, llc.Ways())
	}
	if cfg.InitialFGWays < cfg.MinFGWays || cfg.InitialFGWays > cfg.MaxFGWays {
		return nil, fmt.Errorf("policy: initial FG ways %d outside [%d,%d]",
			cfg.InitialFGWays, cfg.MinFGWays, cfg.MaxFGWays)
	}
	cc := &CoarseController{
		llc:        llc,
		fgClass:    fgClass,
		bgClass:    bgClass,
		cfg:        cfg,
		rec:        telemetry.OrNop(cfg.Recorder),
		execTimes:  stats.MustRing(cfg.History),
		execMisses: stats.MustRing(cfg.History),
		missedDL:   stats.MustRing(cfg.History),
		fgWays:     cfg.InitialFGWays,
	}
	if err := cc.apply(); err != nil {
		return nil, err
	}
	cc.emitPartition(0, 0, telemetry.ReasonInitialPartition)
	return cc, nil
}

// emitPartition records the (possibly initial) partition state.
func (cc *CoarseController) emitPartition(now sim.Time, delta int, reason telemetry.Reason) {
	if cc.rec.Enabled(telemetry.KindPartitionMove) {
		cc.rec.Record(telemetry.Event{
			Kind: telemetry.KindPartitionMove, At: now,
			FGWays: cc.fgWays, Delta: delta,
			ExecCount: cc.execCount, Reason: reason,
		})
	}
}

func (cc *CoarseController) apply() error {
	return cc.llc.SetPartition(map[cache.ClassID]int{
		cc.fgClass: cc.fgWays,
		cc.bgClass: cc.llc.Ways() - cc.fgWays,
	})
}

// FGWays returns the current FG partition size.
func (cc *CoarseController) FGWays() int { return cc.fgWays }

// Adjustments returns how many partition changes have been applied.
func (cc *CoarseController) Adjustments() int { return cc.adjustments }

// RecordExecution feeds one completed FG execution: its duration in
// seconds, its LLC misses, and whether it missed its deadline. With
// multiple FG streams, the runtime records every stream's executions into
// the same window (they share the FG partition, §5.4).
func (cc *CoarseController) RecordExecution(durationSec, llcMisses float64, missedDeadline bool) {
	cc.execTimes.Push(durationSec)
	cc.execMisses.Push(llcMisses)
	if missedDeadline {
		cc.missedDL.Push(1)
	} else {
		cc.missedDL.Push(0)
	}
	cc.sinceAdjust++
	cc.execCount++
}

// Due reports whether enough executions have accumulated for an adjustment.
func (cc *CoarseController) Due() bool {
	return cc.sinceAdjust >= cc.cfg.AdjustEvery && cc.execTimes.Len() >= 2
}

// Adjust runs the three heuristics and applies any partition change. now
// is the simulated time of the triggering execution; window is the fine
// controller's decision window since the last adjustment (used by
// heuristic 3 — the caller should reset it afterwards). Returns the
// applied delta in ways (-1, 0, +1). Every invocation emits a
// KindCoarseDecision event carrying the heuristic that fired.
func (cc *CoarseController) Adjust(now sim.Time, window FineWindow) (int, error) {
	cc.sinceAdjust = 0

	times := cc.execTimes.Values()
	misses := cc.execMisses.Values()
	missedRecently := false
	for _, v := range cc.missedDL.Values() {
		if v > 0 {
			missedRecently = true
			break
		}
	}

	// Heuristic 2: a grow that did not reduce misses is undone. Checked
	// first so a bad grow cannot stick.
	if cc.lastWasGrow {
		cc.lastWasGrow = false
		if mean := stats.Mean(misses); mean >= cc.missesBeforeGrow*0.98 {
			return cc.step(-1, now, telemetry.ReasonRevertGrow)
		}
	}

	// Heuristic 1: strong time↔miss correlation plus recent misses.
	corr, err := stats.Correlation(times, misses)
	if err == nil && corr > cc.cfg.CorrThreshold && missedRecently {
		return cc.grow(misses, now, telemetry.ReasonCorrelation)
	}

	// Heuristic 3: BG heavily suppressed by the fine controller. Dropped
	// actuations count as suppression pressure: each one is a resource
	// shift the fine controller wanted for the FG and did not get, so
	// under actuation faults the coarse controller compensates with cache.
	if window.Decisions > 0 {
		frac := float64(window.BGSuppressed+window.ActuationFailures) / float64(window.Decisions)
		if frac > cc.cfg.SuppressedFrac {
			return cc.grow(misses, now, telemetry.ReasonBGSuppressed)
		}
	}
	cc.emitDecision(now, 0, telemetry.ReasonNoChange)
	return 0, nil
}

func (cc *CoarseController) emitDecision(now sim.Time, delta int, reason telemetry.Reason) {
	if cc.rec.Enabled(telemetry.KindCoarseDecision) {
		cc.rec.Record(telemetry.Event{
			Kind: telemetry.KindCoarseDecision, At: now,
			Reason: reason, Delta: delta,
			FGWays: cc.fgWays, ExecCount: cc.execCount,
		})
	}
}

func (cc *CoarseController) grow(missWindow []float64, now sim.Time, reason telemetry.Reason) (int, error) {
	cc.missesBeforeGrow = stats.Mean(missWindow)
	delta, err := cc.step(+1, now, reason)
	if err == nil && delta > 0 {
		cc.lastWasGrow = true
	}
	return delta, err
}

func (cc *CoarseController) step(delta int, now sim.Time, reason telemetry.Reason) (int, error) {
	next := cc.fgWays + delta
	if next < cc.cfg.MinFGWays || next > cc.cfg.MaxFGWays {
		cc.emitDecision(now, 0, reason)
		return 0, nil
	}
	cc.fgWays = next
	if err := cc.apply(); err != nil {
		cc.fgWays -= delta
		return 0, err
	}
	cc.adjustments++
	cc.lastChangeAtExec = cc.execCount
	cc.emitDecision(now, delta, reason)
	cc.emitPartition(now, delta, reason)
	return delta, nil
}

// ConvergedAt returns the execution count at which the partition last
// changed — the paper's convergence measure (§5.3: "converges ... after
// just 32 FG task executions").
func (cc *CoarseController) ConvergedAt() int { return cc.lastChangeAtExec }

// Package policy defines the pluggable QoS policy engine: the contract a
// shared-multicore QoS controller implements (Policy), the actuator
// capabilities it declares (Capabilities), and the resources the runtime
// hands it at attach time (Binding). The paper's own controller pair — the
// fine time scale DVFS/pause controller plus the coarse time scale LLC
// partitioner — lives here as the Dirigent policy; rival schemes from the
// literature (RTGang, CORDLike) implement the same interface, so the
// runtime, the experiment harness, and the server compare policies without
// special-casing any of them.
//
// A policy never owns placement: internal/sched pins tasks to cores and
// internal/core samples progress and predicts completions. The policy only
// decides how to shift resources — DVFS grades, pause/resume, LLC ways —
// between the FG and BG task sets it was bound to.
package policy

import (
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// Capabilities declares which actuators a policy drives. The runtime uses
// it to validate the assembly (a policy partitioning the LLC needs distinct
// FG/BG cache classes) and the harness uses it to decide which statistics
// (converged partition, pause residency) are meaningful for a run.
type Capabilities struct {
	// DVFS: the policy changes per-core frequency levels.
	DVFS bool
	// Pause: the policy pauses/resumes BG tasks.
	Pause bool
	// LLCWays: the policy repartitions LLC ways between the FG and BG
	// classes (requires distinct classes in the Binding).
	LLCWays bool
}

// StreamProfile is the per-FG-stream offline-profile summary a policy may
// consult at Init. Static policies (CORDLike) decompose deadlines against
// StandaloneDuration; adaptive policies typically ignore it.
type StreamProfile struct {
	// Benchmark names the profiled FG benchmark.
	Benchmark string
	// StandaloneDuration is the execution time recorded by the offline
	// profiler with the machine otherwise idle (zero when unknown).
	StandaloneDuration time.Duration
}

// Binding is everything the runtime hands a policy at Init: the machine,
// the FG/BG task sets (parallel slices), per-stream targets and profiles,
// and — when the assembly is partitioned — the LLC with the FG/BG class
// IDs. Slices are owned by the caller; policies must copy what they keep.
type Binding struct {
	// Machine is the actuation surface (DVFS, pause/resume).
	Machine *machine.Machine

	// FGTasks/FGCores/FGStreams identify the foreground set: task IDs,
	// their cores, and their stable stream indices (parallel slices).
	FGTasks   []int
	FGCores   []int
	FGStreams []int
	// BGTasks/BGCores identify the background set (parallel slices).
	BGTasks []int
	BGCores []int

	// Targets are the per-FG-stream relative latency targets, parallel to
	// FGStreams.
	Targets []time.Duration
	// Profiles are per-FG-stream offline-profile summaries, parallel to
	// FGStreams (zero-valued entries when no profile is available).
	Profiles []StreamProfile

	// LLC plus FGClass/BGClass describe the cache partition surface; LLC is
	// nil (and the classes zero) when the assembly is unpartitioned.
	LLC     *cache.LLC
	FGClass cache.ClassID
	BGClass cache.ClassID

	// Recorder receives the policy's decision/action events; never nil by
	// the time Init runs (the runtime passes a policy-labelled bus).
	Recorder telemetry.Recorder
}

// ExecutionSample is one completed FG execution as reported to
// Policy.OnExecution.
type ExecutionSample struct {
	// End is the simulated completion time.
	End sim.Time
	// Duration is the execution's wall time.
	Duration time.Duration
	// LLCMisses are the misses attributed to the execution.
	LLCMisses float64
	// Missed reports whether Duration exceeded the stream's target.
	Missed bool
}

// Policy is a pluggable QoS controller. The runtime drives the lifecycle:
// Init once at assembly, Tick at every decision point (every
// DecisionSegments progress samples), OnExecution at each FG execution
// boundary, and the Add/Remove hooks on mid-run admission changes.
//
// Implementations must be deterministic — no time, randomness, or I/O —
// and must tolerate dropped actuations (machine.ErrActuation) by retrying
// at a later Tick, exactly as the Dirigent controllers do.
type Policy interface {
	// Name returns the policy's registered name (e.g. "dirigent").
	Name() string
	// Capabilities declares the actuators the policy uses.
	Capabilities() Capabilities
	// Init attaches the policy to an assembled colocation. It applies the
	// policy's initial actuation state (core pinning, initial partition).
	Init(b Binding) error
	// Tick runs one decision. status carries the predicted completion,
	// absolute deadline, and relative target of every active FG stream, in
	// stream order (policies that do not use predictions may ignore it).
	Tick(now sim.Time, status []FGStatus) error
	// OnExecution reports one completed FG execution on the given stream.
	OnExecution(stream int, e ExecutionSample)
	// AddFG/RemoveFG and AddBG/RemoveBG track mid-run admission changes;
	// stream is the new FG task's stable stream index.
	AddFG(task, core, stream int) error
	RemoveFG(task int) error
	AddBG(task, core int) error
	RemoveBG(task int) error
	// Window returns the decision-window counters accumulated since the
	// last ResetWindow — the stats contract observers (and Dirigent's own
	// coarse controller) consume.
	Window() FineWindow
	// ResetWindow zeroes the window.
	ResetWindow()
}

package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Registered policy names.
const (
	// NameDirigent is the paper's controller pair (fine DVFS/pause +
	// coarse LLC partitioning) — the default everywhere.
	NameDirigent = "dirigent"
	// NameRTGang is the RT-Gang-style one-gang-at-a-time scheduler.
	NameRTGang = "rtgang"
	// NameCORDLike is the CORD-style static allocator from decomposed
	// deadlines.
	NameCORDLike = "cordlike"
)

// Options carries the constructor parameters shared by registered
// policies. Fine/Coarse configure the Dirigent controllers (zero values
// take the §4.3 defaults); Partitioning enables LLC-way control for
// policies that support it.
type Options struct {
	// Partitioning enables the LLC-way actuator (Dirigent's coarse
	// controller; CORDLike's static split). The binding must then carry
	// distinct FG/BG classes.
	Partitioning bool
	// Fine configures the fine time scale controller (Dirigent).
	Fine FineConfig
	// Coarse configures the coarse time scale controller (Dirigent with
	// Partitioning).
	Coarse CoarseConfig
}

// Factory builds a fresh, un-bound policy instance.
type Factory func(o Options) Policy

// registry maps policy names to factories. Mutated only by Register during
// package initialization; read-only afterwards, so lookups need no lock.
var registry = map[string]Factory{}

// Register adds a named policy factory. Registration happens in package
// init; a duplicate name is a programming error and panics.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("policy: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Valid reports whether name is a registered policy.
func Valid(name string) bool {
	_, ok := registry[name]
	return ok
}

// New builds the named policy. The empty name resolves to NameDirigent so
// callers can thread an optional policy field straight through. An unknown
// name errors with the valid values listed — the server surfaces this
// message verbatim in its 400 responses.
func New(name string, o Options) (Policy, error) {
	if name == "" {
		name = NameDirigent
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(o), nil
}

func init() {
	Register(NameDirigent, func(o Options) Policy { return NewDirigent(o) })
	Register(NameRTGang, func(o Options) Policy { return NewRTGang() })
	Register(NameCORDLike, func(o Options) Policy { return NewCORDLike() })
}

package policy

import (
	"testing"
	"time"

	"dirigent/internal/machine"
	"dirigent/internal/workload"
)

// rivalFixture builds a machine with 2 FG tasks (cores 0-1) and 2 BG tasks
// (cores 2-3) — the minimal mix where gang rotation and BG throttling are
// both observable.
type rivalFixture struct {
	m       *machine.Machine
	fgTasks []int
	bgTasks []int
}

func newRivalFixture(t *testing.T) *rivalFixture {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig())
	f := &rivalFixture{m: m}
	for c, name := range []string{"ferret", "bodytrack"} {
		id, err := m.Launch(name, workload.MustProgram(workload.MustByName(name)), c, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.fgTasks = append(f.fgTasks, id)
	}
	for c := 2; c < 4; c++ {
		id, err := m.Launch("bwaves", workload.MustProgram(workload.MustByName("bwaves")), c, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.bgTasks = append(f.bgTasks, id)
	}
	return f
}

func (f *rivalFixture) binding() Binding {
	return Binding{
		Machine:   f.m,
		FGTasks:   f.fgTasks,
		FGCores:   []int{0, 1},
		FGStreams: []int{0, 1},
		BGTasks:   f.bgTasks,
		BGCores:   []int{2, 3},
		Targets:   []time.Duration{time.Second, time.Second},
	}
}

func (f *rivalFixture) paused(t *testing.T, task int) bool {
	t.Helper()
	p, err := f.m.Paused(task)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *rivalFixture) level(t *testing.T, core int) int {
	t.Helper()
	l, err := f.m.FreqLevel(core)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRTGangInitRunsOneGang(t *testing.T) {
	f := newRivalFixture(t)
	g := NewRTGang()
	if err := g.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	if f.paused(t, f.fgTasks[0]) {
		t.Error("active gang must run unpaused")
	}
	if !f.paused(t, f.fgTasks[1]) {
		t.Error("non-gang FG must be paused")
	}
	top := f.m.MaxFreqLevel()
	for _, c := range []int{0, 1} {
		if f.level(t, c) != top {
			t.Errorf("FG core %d at level %d, want top %d", c, f.level(t, c), top)
		}
	}
	for _, c := range []int{2, 3} {
		if f.level(t, c) != 0 {
			t.Errorf("BG core %d at level %d, want floored 0", c, f.level(t, c))
		}
	}
}

func TestRTGangRotatesAtExecutionBoundary(t *testing.T) {
	f := newRivalFixture(t)
	g := NewRTGang()
	if err := g.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	// A non-gang stream completing must not rotate.
	g.OnExecution(1, ExecutionSample{End: f.m.Now()})
	if f.paused(t, f.fgTasks[0]) || !f.paused(t, f.fgTasks[1]) {
		t.Fatal("non-gang completion must not rotate the gang")
	}
	// The gang's own completion hands the machine to the next FG.
	g.OnExecution(0, ExecutionSample{End: f.m.Now()})
	if !f.paused(t, f.fgTasks[0]) {
		t.Error("finished gang must be paused")
	}
	if f.paused(t, f.fgTasks[1]) {
		t.Error("next gang must be resumed")
	}
	// Full rotation wraps back to stream 0.
	g.OnExecution(1, ExecutionSample{End: f.m.Now()})
	if f.paused(t, f.fgTasks[0]) || !f.paused(t, f.fgTasks[1]) {
		t.Error("rotation must wrap around to the first gang")
	}
}

func TestRTGangTickHealsDivergence(t *testing.T) {
	f := newRivalFixture(t)
	g := NewRTGang()
	if err := g.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	// Perturb the state the policy owns: resume the paused FG, speed a BG
	// core back up.
	if err := f.m.Resume(f.fgTasks[1]); err != nil {
		t.Fatal(err)
	}
	if err := f.m.SetFreqLevel(2, f.m.MaxFreqLevel()); err != nil {
		t.Fatal(err)
	}
	if err := g.Tick(f.m.Now(), make([]FGStatus, 2)); err != nil {
		t.Fatal(err)
	}
	if !f.paused(t, f.fgTasks[1]) {
		t.Error("Tick must re-pause a non-gang FG")
	}
	if f.level(t, 2) != 0 {
		t.Error("Tick must re-floor a BG core")
	}
	w := g.Window()
	if w.Decisions != 1 {
		t.Errorf("Decisions = %d, want 1", w.Decisions)
	}
	if w.BGSuppressed != 1 {
		t.Errorf("BGSuppressed = %d, want 1 (BG is always suppressed)", w.BGSuppressed)
	}
	g.ResetWindow()
	if g.Window() != (FineWindow{}) {
		t.Error("ResetWindow must clear all counters")
	}
}

func TestRTGangRemoveActiveGangPromotesNext(t *testing.T) {
	f := newRivalFixture(t)
	g := NewRTGang()
	if err := g.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveFG(f.fgTasks[0]); err != nil {
		t.Fatal(err)
	}
	if f.paused(t, f.fgTasks[1]) {
		t.Error("removing the active gang must resume the next FG")
	}
	if err := g.RemoveFG(f.fgTasks[0]); err == nil {
		t.Error("removing an unmanaged task must error")
	}
}

func TestRTGangBGLifecycle(t *testing.T) {
	f := newRivalFixture(t)
	g := NewRTGang()
	if err := g.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	task, err := f.m.Launch("bwaves", workload.MustProgram(workload.MustByName("bwaves")), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddBG(task, 4); err != nil {
		t.Fatal(err)
	}
	if f.level(t, 4) != 0 {
		t.Error("admitted BG core must be floored")
	}
	if err := g.RemoveBG(task); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveBG(f.fgTasks[0]); err == nil {
		t.Error("RemoveBG of a non-BG task must error")
	}
}

func TestRTGangRequiresMachineAndFG(t *testing.T) {
	if err := NewRTGang().Init(Binding{}); err == nil {
		t.Error("Init without a machine must error")
	}
	f := newRivalFixture(t)
	if err := NewRTGang().Init(Binding{Machine: f.m}); err == nil {
		t.Error("Init without FG tasks must error")
	}
}

package policy

import (
	"errors"
	"fmt"

	"dirigent/internal/sim"
)

// Dirigent is the paper's policy: the fine time scale controller (per-core
// DVFS grades and BG pausing, §4.3) coupled with the coarse time scale LLC
// way partitioner when Partitioning is enabled. It is the extracted form
// of the pre-policy-engine runtime wiring — construction order, decision
// cadence, and the coarse window handshake are preserved exactly, so runs
// are byte-identical to the original fine+coarse pair.
type Dirigent struct {
	opts   Options
	fine   *FineController
	coarse *CoarseController
}

// NewDirigent returns an un-bound Dirigent policy; the controllers are
// built at Init, once the machine and task sets exist.
func NewDirigent(o Options) *Dirigent { return &Dirigent{opts: o} }

// Name implements Policy.
func (d *Dirigent) Name() string { return NameDirigent }

// Capabilities implements Policy.
func (d *Dirigent) Capabilities() Capabilities {
	return Capabilities{DVFS: true, Pause: true, LLCWays: d.opts.Partitioning}
}

// Init builds the fine controller (pinning every managed core to the top
// grade) and, with Partitioning, the coarse controller (applying the
// initial partition) — in that order, matching the original runtime
// assembly.
func (d *Dirigent) Init(b Binding) error {
	fcfg := d.opts.Fine
	if fcfg.Recorder == nil {
		fcfg.Recorder = b.Recorder
	}
	fine, err := NewFineController(b.Machine, b.FGTasks, b.FGCores, b.BGTasks, b.BGCores, fcfg)
	if err != nil {
		return err
	}
	for i, s := range b.FGStreams {
		fine.fgStreams[i] = s
	}
	d.fine = fine

	if d.opts.Partitioning {
		if b.LLC == nil {
			return errors.New("policy: dirigent partitioning needs an LLC binding")
		}
		ccfg := d.opts.Coarse
		if ccfg.Recorder == nil {
			ccfg.Recorder = b.Recorder
		}
		coarse, err := NewCoarseController(b.LLC, b.FGClass, b.BGClass, ccfg)
		if err != nil {
			return err
		}
		d.coarse = coarse
	}
	return nil
}

// Tick implements Policy: one fine time scale decision.
func (d *Dirigent) Tick(now sim.Time, status []FGStatus) error {
	return d.fine.Decide(now, status)
}

// OnExecution feeds the coarse controller's execution window and runs a
// partition adjustment when one is due, consuming and resetting the fine
// controller's decision window (the §4.3 heuristic-3 handshake).
func (d *Dirigent) OnExecution(stream int, e ExecutionSample) {
	if d.coarse == nil {
		return
	}
	d.coarse.RecordExecution(e.Duration.Seconds(), e.LLCMisses, e.Missed)
	if d.coarse.Due() {
		if _, err := d.coarse.Adjust(e.End, d.fine.Window()); err != nil {
			panic(fmt.Sprintf("policy: coarse adjust: %v", err))
		}
		d.fine.ResetWindow()
	}
}

// AddFG implements Policy.
func (d *Dirigent) AddFG(task, core, stream int) error { return d.fine.AddFG(task, core, stream) }

// RemoveFG implements Policy.
func (d *Dirigent) RemoveFG(task int) error { return d.fine.RemoveFGByTask(task) }

// AddBG implements Policy.
func (d *Dirigent) AddBG(task, core int) error { return d.fine.AddBG(task, core) }

// RemoveBG implements Policy.
func (d *Dirigent) RemoveBG(task int) error { return d.fine.RemoveBG(task) }

// Window implements Policy.
func (d *Dirigent) Window() FineWindow { return d.fine.Window() }

// ResetWindow implements Policy.
func (d *Dirigent) ResetWindow() { d.fine.ResetWindow() }

// Fine exposes the fine controller (telemetry and test access).
func (d *Dirigent) Fine() *FineController { return d.fine }

// Coarse exposes the coarse controller, nil when partitioning is off.
func (d *Dirigent) Coarse() *CoarseController { return d.coarse }

package policy

import (
	"strings"
	"testing"

	"dirigent/internal/machine"
	"dirigent/internal/workload"
)

// admissionFixture builds a machine with 1 FG (core 0) + 2 BG (cores 1-2)
// under fine control, leaving cores 3-5 free for admission tests.
type admissionFixture struct {
	m       *machine.Machine
	fc      *FineController
	fgTask  int
	bgTasks []int
}

func newAdmissionFixture(t *testing.T) *admissionFixture {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig())
	fgTask, err := m.Launch("ferret", workload.MustProgram(workload.MustByName("ferret")), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bgTasks []int
	for c := 1; c < 3; c++ {
		id, err := m.Launch("bwaves", workload.MustProgram(workload.MustByName("bwaves")), c, 0)
		if err != nil {
			t.Fatal(err)
		}
		bgTasks = append(bgTasks, id)
	}
	fc, err := NewFineController(m, []int{fgTask}, []int{0}, bgTasks, []int{1, 2}, FineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &admissionFixture{m: m, fc: fc, fgTask: fgTask, bgTasks: bgTasks}
}

// launchOn launches a BG benchmark on the given free core, returning its task.
func (f *admissionFixture) launchOn(t *testing.T, core int) int {
	t.Helper()
	id, err := f.m.Launch("bwaves", workload.MustProgram(workload.MustByName("bwaves")), core, 0)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRemoveFGByTaskUnknownErrors(t *testing.T) {
	f := newAdmissionFixture(t)
	if err := f.fc.RemoveFGByTask(9999); err == nil {
		t.Fatal("RemoveFGByTask(unknown) must error, not succeed")
	} else if !strings.Contains(err.Error(), "not managed") {
		t.Errorf("error %q should identify the task as unmanaged", err)
	}
	// The managed set must be intact: removing the real FG still works.
	if err := f.fc.RemoveFGByTask(f.fgTask); err != nil {
		t.Fatalf("real FG removal after failed lookup: %v", err)
	}
}

func TestAddBGOnOccupiedCoreRejected(t *testing.T) {
	f := newAdmissionFixture(t)
	task := f.launchOn(t, 3)

	// Claiming the FG core or a managed BG core is rejected before any
	// actuation.
	if err := f.fc.AddBG(task, 0); err == nil {
		t.Error("AddBG on the FG core must be rejected")
	}
	if err := f.fc.AddBG(task, 1); err == nil {
		t.Error("AddBG on an occupied BG core must be rejected")
	} else if !strings.Contains(err.Error(), "core 1") {
		t.Errorf("error %q should name the contested core", err)
	}

	// The rejection must not have registered anything: the honest
	// admission on the free core still works, and exactly once.
	if err := f.fc.AddBG(task, 3); err != nil {
		t.Fatalf("AddBG on free core: %v", err)
	}
	if err := f.fc.AddBG(task, 4); err == nil {
		t.Error("re-admitting an already managed task must be rejected")
	}
}

func TestAddFGOnOccupiedCoreRejected(t *testing.T) {
	f := newAdmissionFixture(t)
	task := f.launchOn(t, 4)
	if err := f.fc.AddFG(task, 1, 1); err == nil {
		t.Error("AddFG on an occupied BG core must be rejected")
	}
	if err := f.fc.AddFG(f.fgTask, 4, 1); err == nil {
		t.Error("AddFG with an already managed task must be rejected")
	}
	if err := f.fc.AddFG(task, 4, 1); err != nil {
		t.Fatalf("AddFG on free core: %v", err)
	}
}

func TestDoubleRemoveErrorsCleanly(t *testing.T) {
	f := newAdmissionFixture(t)
	if err := f.fc.RemoveBG(f.bgTasks[0]); err != nil {
		t.Fatalf("first RemoveBG: %v", err)
	}
	if err := f.fc.RemoveBG(f.bgTasks[0]); err == nil {
		t.Fatal("second RemoveBG of the same task must error")
	}
	if err := f.fc.RemoveFGByTask(f.fgTask); err != nil {
		t.Fatalf("first RemoveFGByTask: %v", err)
	}
	if err := f.fc.RemoveFGByTask(f.fgTask); err == nil {
		t.Fatal("second RemoveFGByTask of the same task must error")
	}
	// The freed core is admissible again.
	task := f.launchOn(t, 5)
	if err := f.fc.AddBG(task, 1); err != nil {
		t.Fatalf("AddBG on freed core: %v", err)
	}
}

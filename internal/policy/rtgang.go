package policy

import (
	"errors"
	"fmt"

	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// RTGang implements RT-Gang-style scheduling: exactly one FG "gang" runs
// at a time at the machine's top frequency while every other FG task is
// paused, and BG tasks are throttled to the lowest frequency level for the
// whole run ("best-effort tasks on idle cycles"). Gangs rotate round-robin
// at execution boundaries, so each FG stream gets exclusive use of the
// machine's fast cycles for one full execution before yielding.
//
// The policy is deliberately prediction-free: it ignores Tick status and
// enforces its static gang invariant instead, retrying any actuation an
// injected fault dropped. Single-FG mixes degenerate to "FG at max, BG
// floored" (high QoS, low BG throughput); multi-FG mixes serialize the
// foregrounds, trading FG latency (≈ n× standalone) for strict isolation.
type RTGang struct {
	m   *machine.Machine
	rec telemetry.Recorder

	fgTasks   []int
	fgCores   []int
	fgStreams []int
	bgTasks   []int
	bgCores   []int

	// gang indexes fgTasks: the one FG task currently allowed to run.
	gang int

	windowDecisions   int
	windowSuppressed  int
	windowActFailures int
}

// NewRTGang returns an un-bound RT-Gang policy.
func NewRTGang() *RTGang { return &RTGang{} }

// Name implements Policy.
func (g *RTGang) Name() string { return NameRTGang }

// Capabilities implements Policy: DVFS pinning plus FG gang pausing; no
// cache partitioning.
func (g *RTGang) Capabilities() Capabilities {
	return Capabilities{DVFS: true, Pause: true}
}

// Init pins FG cores to the top level and BG cores to the bottom, then
// pauses every FG task except the first gang. Dropped actuations are
// tolerated — Tick re-asserts the invariant until it sticks.
func (g *RTGang) Init(b Binding) error {
	if b.Machine == nil {
		return errors.New("policy: rtgang needs a machine")
	}
	if len(b.FGTasks) == 0 {
		return errors.New("policy: rtgang needs at least one FG task")
	}
	g.m = b.Machine
	g.rec = telemetry.OrNop(b.Recorder)
	g.fgTasks = append([]int(nil), b.FGTasks...)
	g.fgCores = append([]int(nil), b.FGCores...)
	g.fgStreams = append([]int(nil), b.FGStreams...)
	g.bgTasks = append([]int(nil), b.BGTasks...)
	g.bgCores = append([]int(nil), b.BGCores...)
	g.gang = 0

	top := g.m.MaxFreqLevel()
	for _, c := range g.fgCores {
		if err := g.setLevel(c, top); err != nil {
			return err
		}
	}
	for _, c := range g.bgCores {
		if err := g.setLevel(c, 0); err != nil {
			return err
		}
	}
	for i, t := range g.fgTasks {
		if i == g.gang {
			continue
		}
		if err := g.m.Pause(t); err != nil && !errors.Is(err, machine.ErrActuation) {
			return err
		}
	}
	return nil
}

// setLevel requests a frequency level, tolerating a dropped actuation.
func (g *RTGang) setLevel(core, level int) error {
	if err := g.m.SetFreqLevel(core, level); err != nil && !errors.Is(err, machine.ErrActuation) {
		return err
	}
	return nil
}

// Tick enforces the gang invariant: the active gang runs unpaused at the
// top level, every other FG task is paused, and BG cores stay floored.
// Only divergent state is actuated, so a fault-free steady state issues no
// machine calls.
func (g *RTGang) Tick(now sim.Time, status []FGStatus) error {
	g.windowDecisions++
	// BG pinned to the bottom level counts as suppressed every decision —
	// that is the policy's entire bargain.
	if len(g.bgCores) > 0 {
		g.windowSuppressed++
	}
	top := g.m.MaxFreqLevel()
	for i, t := range g.fgTasks {
		wantPaused := i != g.gang
		paused, err := g.m.Paused(t)
		if err != nil {
			continue // task gone mid-tick; admission hooks will catch up
		}
		if paused != wantPaused {
			if wantPaused {
				err = g.m.Pause(t)
			} else {
				err = g.m.Resume(t)
			}
			if err != nil {
				if errors.Is(err, machine.ErrActuation) {
					g.windowActFailures++
					g.emitAction(now, telemetry.ActionActuationFail, t, g.fgCores[i], g.fgStreams[i])
					continue
				}
				return err
			}
		}
		if l, err := g.m.FreqLevel(g.fgCores[i]); err == nil && l != top && !g.setLevelCounted(now, g.fgCores[i], top) {
			continue
		}
	}
	for _, c := range g.bgCores {
		if l, err := g.m.FreqLevel(c); err == nil && l != 0 {
			g.setLevelCounted(now, c, 0)
		}
	}
	if g.rec.Enabled(telemetry.KindFineDecision) {
		g.rec.Record(telemetry.Event{
			Kind: telemetry.KindFineDecision, At: now,
			Reason: telemetry.ReasonGangActive, Streams: len(status),
			Suppressed: len(g.bgCores) > 0,
		})
	}
	return nil
}

// setLevelCounted is setLevel with fault accounting for the re-assert path.
func (g *RTGang) setLevelCounted(now sim.Time, core, level int) bool {
	if err := g.m.SetFreqLevel(core, level); err != nil {
		if errors.Is(err, machine.ErrActuation) {
			g.windowActFailures++
			g.emitAction(now, telemetry.ActionActuationFail, -1, core, -1)
			return false
		}
		panic(fmt.Sprintf("policy: rtgang set level: %v", err))
	}
	return true
}

func (g *RTGang) emitAction(now sim.Time, a telemetry.Action, task, core, stream int) {
	if g.rec.Enabled(telemetry.KindFineAction) {
		g.rec.Record(telemetry.Event{
			Kind: telemetry.KindFineAction, At: now,
			Action: a, Task: task, Core: core, Stream: stream,
		})
	}
}

// OnExecution rotates the gang when the active gang finishes an execution.
// Actuations are requested optimistically here; a dropped pause/resume is
// healed by the next Tick.
func (g *RTGang) OnExecution(stream int, e ExecutionSample) {
	if len(g.fgTasks) < 2 {
		return
	}
	if g.gang >= len(g.fgStreams) || g.fgStreams[g.gang] != stream {
		return
	}
	prev := g.gang
	g.gang = (g.gang + 1) % len(g.fgTasks)
	if err := g.m.Pause(g.fgTasks[prev]); err != nil && !errors.Is(err, machine.ErrActuation) {
		panic(fmt.Sprintf("policy: rtgang pause: %v", err))
	}
	if err := g.m.Resume(g.fgTasks[g.gang]); err != nil && !errors.Is(err, machine.ErrActuation) {
		panic(fmt.Sprintf("policy: rtgang resume: %v", err))
	}
	g.emitAction(e.End, telemetry.ActionGangSwitch, g.fgTasks[g.gang], g.fgCores[g.gang], g.fgStreams[g.gang])
}

// AddFG places a new FG task at the back of the rotation, paused; its core
// is pinned to the top level.
func (g *RTGang) AddFG(task, core, stream int) error {
	if err := g.setLevel(core, g.m.MaxFreqLevel()); err != nil {
		return err
	}
	g.fgTasks = append(g.fgTasks, task)
	g.fgCores = append(g.fgCores, core)
	g.fgStreams = append(g.fgStreams, stream)
	if err := g.m.Pause(task); err != nil && !errors.Is(err, machine.ErrActuation) {
		return err
	}
	return nil
}

// RemoveFG drops a task from the rotation; if it was the active gang the
// next task in line takes over.
func (g *RTGang) RemoveFG(task int) error {
	for i, t := range g.fgTasks {
		if t != task {
			continue
		}
		g.fgTasks = append(g.fgTasks[:i], g.fgTasks[i+1:]...)
		g.fgCores = append(g.fgCores[:i], g.fgCores[i+1:]...)
		g.fgStreams = append(g.fgStreams[:i], g.fgStreams[i+1:]...)
		switch {
		case len(g.fgTasks) == 0:
			g.gang = 0
		case i < g.gang:
			g.gang--
		case i == g.gang:
			g.gang %= len(g.fgTasks)
			if err := g.m.Resume(g.fgTasks[g.gang]); err != nil && !errors.Is(err, machine.ErrActuation) {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("policy: FG task %d not managed", task)
}

// AddBG floors the new worker's core; BG never runs fast under RT-Gang.
func (g *RTGang) AddBG(task, core int) error {
	if err := g.setLevel(core, 0); err != nil {
		return err
	}
	g.bgTasks = append(g.bgTasks, task)
	g.bgCores = append(g.bgCores, core)
	return nil
}

// RemoveBG forgets a BG core.
func (g *RTGang) RemoveBG(task int) error {
	for i, t := range g.bgTasks {
		if t == task {
			g.bgTasks = append(g.bgTasks[:i], g.bgTasks[i+1:]...)
			g.bgCores = append(g.bgCores[:i], g.bgCores[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("policy: BG task %d not managed", task)
}

// Window implements Policy.
func (g *RTGang) Window() FineWindow {
	return FineWindow{
		Decisions:         g.windowDecisions,
		BGSuppressed:      g.windowSuppressed,
		ActuationFailures: g.windowActFailures,
	}
}

// ResetWindow implements Policy.
func (g *RTGang) ResetWindow() {
	g.windowDecisions = 0
	g.windowSuppressed = 0
	g.windowActFailures = 0
}

package policy

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// CORDLike implements a CORD-style co-designed static allocation: at Init
// it decomposes each stream's end-to-end deadline against the offline
// profile's standalone execution time into a slack budget, and converts
// the tightest budget into a fixed BG frequency level and a fixed LLC way
// split. Nothing adapts afterwards — Tick only re-asserts the chosen
// operating point (so injected actuation faults heal) and OnExecution is
// bookkeeping-free. The comparison story against Dirigent is the paper's
// §3.1 static-scheme critique: the allocation must be provisioned for the
// decomposed worst case, so slack that Dirigent would hand back to BG
// tasks is permanently reserved.
type CORDLike struct {
	m   *machine.Machine
	rec telemetry.Recorder

	fgTasks []int
	fgCores []int
	bgTasks []int
	bgCores []int

	llc     *cache.LLC
	fgClass cache.ClassID
	bgClass cache.ClassID

	// bgLevel and fgWays are the decomposed operating point.
	bgLevel int
	fgWays  int

	windowDecisions   int
	windowSuppressed  int
	windowActFailures int
}

// NewCORDLike returns an un-bound CORD-style policy.
func NewCORDLike() *CORDLike { return &CORDLike{} }

// Name implements Policy.
func (c *CORDLike) Name() string { return NameCORDLike }

// Capabilities implements Policy: static DVFS pinning plus a static LLC
// split; pausing is never used.
func (c *CORDLike) Capabilities() Capabilities {
	return Capabilities{DVFS: true, LLCWays: true}
}

// slackBudget returns the tightest per-stream relative slack
// (target − standalone)/standalone across streams with usable profiles.
// Streams without a standalone duration are skipped; with no usable
// profile at all a moderate budget is assumed.
func slackBudget(targets []time.Duration, profiles []StreamProfile) float64 {
	const assumed = 0.15
	budget, found := 0.0, false
	for i, t := range targets {
		if i >= len(profiles) || profiles[i].StandaloneDuration <= 0 || t <= 0 {
			continue
		}
		phi := float64(t-profiles[i].StandaloneDuration) / float64(profiles[i].StandaloneDuration)
		if !found || phi < budget {
			budget, found = phi, true
		}
	}
	if !found {
		return assumed
	}
	return budget
}

// decompose maps the slack budget to the static operating point: generous
// slack admits fast BG and little isolation, tight slack floors BG and
// reserves a large FG partition.
func (c *CORDLike) decompose(budget float64) {
	// The grade set adapts to the machine's ladder (the paper's nine-level
	// ladder yields DefaultGrades); shorter ladders have fewer grades, so
	// clamp the chosen rung.
	grades := GradesForLevels(c.m.MaxFreqLevel() + 1)
	rung := func(i int) int {
		if i >= len(grades) {
			i = len(grades) - 1
		}
		return grades[i]
	}
	switch {
	case budget >= 0.35:
		c.bgLevel = rung(4)
	case budget >= 0.25:
		c.bgLevel = rung(3)
	case budget >= 0.15:
		c.bgLevel = rung(2)
	case budget >= 0.08:
		c.bgLevel = rung(1)
	default:
		c.bgLevel = rung(0)
	}
	if c.llc != nil {
		ways := c.llc.Ways()
		switch {
		case budget < 0.15:
			c.fgWays = ways / 2
		case budget < 0.30:
			c.fgWays = ways / 3
		default:
			c.fgWays = ways / 4
		}
		if c.fgWays < 2 {
			c.fgWays = 2
		}
		if c.fgWays > ways-2 {
			c.fgWays = ways - 2
		}
	}
}

// Init computes the decomposed allocation and applies it: FG cores at the
// top level, BG cores at the decomposed level, and — when an LLC binding
// exists — the static way split, reported as an initial partition move.
func (c *CORDLike) Init(b Binding) error {
	if b.Machine == nil {
		return errors.New("policy: cordlike needs a machine")
	}
	if len(b.FGTasks) == 0 {
		return errors.New("policy: cordlike needs at least one FG task")
	}
	c.m = b.Machine
	c.rec = telemetry.OrNop(b.Recorder)
	c.fgTasks = append([]int(nil), b.FGTasks...)
	c.fgCores = append([]int(nil), b.FGCores...)
	c.bgTasks = append([]int(nil), b.BGTasks...)
	c.bgCores = append([]int(nil), b.BGCores...)
	c.llc = b.LLC
	c.fgClass, c.bgClass = b.FGClass, b.BGClass
	if c.llc != nil && c.fgClass == c.bgClass {
		return errors.New("policy: cordlike partitioning needs distinct FG/BG classes")
	}

	c.decompose(slackBudget(b.Targets, b.Profiles))

	top := c.m.MaxFreqLevel()
	for _, core := range c.fgCores {
		if err := c.setLevel(core, top); err != nil {
			return err
		}
	}
	for _, core := range c.bgCores {
		if err := c.setLevel(core, c.bgLevel); err != nil {
			return err
		}
	}
	if c.llc != nil {
		if err := c.llc.SetPartition(map[cache.ClassID]int{
			c.fgClass: c.fgWays,
			c.bgClass: c.llc.Ways() - c.fgWays,
		}); err != nil {
			return err
		}
		if c.rec.Enabled(telemetry.KindPartitionMove) {
			c.rec.Record(telemetry.Event{
				Kind: telemetry.KindPartitionMove, At: c.m.Now(),
				FGWays: c.fgWays, Reason: telemetry.ReasonStaticDecomposition,
			})
		}
	}
	return nil
}

func (c *CORDLike) setLevel(core, level int) error {
	if err := c.m.SetFreqLevel(core, level); err != nil && !errors.Is(err, machine.ErrActuation) {
		return err
	}
	return nil
}

// Tick re-asserts the static operating point, actuating only divergent
// cores; a fault-free steady state issues no machine calls.
func (c *CORDLike) Tick(now sim.Time, status []FGStatus) error {
	c.windowDecisions++
	top := c.m.MaxFreqLevel()
	suppressed := c.bgLevel < (6*top)/10
	if suppressed && len(c.bgCores) > 0 {
		c.windowSuppressed++
	}
	for _, core := range c.fgCores {
		if l, err := c.m.FreqLevel(core); err == nil && l != top {
			c.reassert(now, core, top)
		}
	}
	for _, core := range c.bgCores {
		if l, err := c.m.FreqLevel(core); err == nil && l != c.bgLevel {
			c.reassert(now, core, c.bgLevel)
		}
	}
	if c.rec.Enabled(telemetry.KindFineDecision) {
		c.rec.Record(telemetry.Event{
			Kind: telemetry.KindFineDecision, At: now,
			Reason: telemetry.ReasonStaticDecomposition, Streams: len(status),
			Suppressed: suppressed && len(c.bgCores) > 0,
		})
	}
	return nil
}

func (c *CORDLike) reassert(now sim.Time, core, level int) {
	if err := c.m.SetFreqLevel(core, level); err != nil {
		if errors.Is(err, machine.ErrActuation) {
			c.windowActFailures++
			if c.rec.Enabled(telemetry.KindFineAction) {
				c.rec.Record(telemetry.Event{
					Kind: telemetry.KindFineAction, At: now,
					Action: telemetry.ActionActuationFail, Task: -1, Core: core, Stream: -1,
				})
			}
			return
		}
		panic(fmt.Sprintf("policy: cordlike set level: %v", err))
	}
}

// OnExecution implements Policy; a static allocation learns nothing from
// execution boundaries.
func (c *CORDLike) OnExecution(stream int, e ExecutionSample) {}

// AddFG pins the new stream's core to the top level. The allocation is not
// re-decomposed — CORD's split is fixed at admission-control time, which
// is exactly the rigidity the comparison surfaces.
func (c *CORDLike) AddFG(task, core, stream int) error {
	if err := c.setLevel(core, c.m.MaxFreqLevel()); err != nil {
		return err
	}
	c.fgTasks = append(c.fgTasks, task)
	c.fgCores = append(c.fgCores, core)
	return nil
}

// RemoveFG forgets the stream's core. Lookup is by the policy's own task
// bookkeeping — the runtime removes the stream from the scheduler (killing
// the task) before notifying the policy, so the machine can no longer
// resolve the task.
func (c *CORDLike) RemoveFG(task int) error {
	for i, t := range c.fgTasks {
		if t == task {
			c.fgTasks = append(c.fgTasks[:i], c.fgTasks[i+1:]...)
			c.fgCores = append(c.fgCores[:i], c.fgCores[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("policy: FG task %d not managed", task)
}

// AddBG pins the new worker's core to the decomposed BG level.
func (c *CORDLike) AddBG(task, core int) error {
	if err := c.setLevel(core, c.bgLevel); err != nil {
		return err
	}
	c.bgTasks = append(c.bgTasks, task)
	c.bgCores = append(c.bgCores, core)
	return nil
}

// RemoveBG forgets the worker's core.
func (c *CORDLike) RemoveBG(task int) error {
	for i, t := range c.bgTasks {
		if t == task {
			c.bgTasks = append(c.bgTasks[:i], c.bgTasks[i+1:]...)
			c.bgCores = append(c.bgCores[:i], c.bgCores[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("policy: BG task %d not managed", task)
}

// Window implements Policy.
func (c *CORDLike) Window() FineWindow {
	return FineWindow{
		Decisions:         c.windowDecisions,
		BGSuppressed:      c.windowSuppressed,
		ActuationFailures: c.windowActFailures,
	}
}

// ResetWindow implements Policy.
func (c *CORDLike) ResetWindow() {
	c.windowDecisions = 0
	c.windowSuppressed = 0
	c.windowActFailures = 0
}

// FGWays returns the decomposed static FG partition (0 unpartitioned).
func (c *CORDLike) FGWays() int {
	if c.llc == nil {
		return 0
	}
	return c.fgWays
}

// BGLevel returns the decomposed static BG frequency level.
func (c *CORDLike) BGLevel() int { return c.bgLevel }

package policy

import (
	"testing"

	"dirigent/internal/cache"
)

func newCoarseFixture(t *testing.T, cfg CoarseConfig) (*cache.LLC, *CoarseController, cache.ClassID, cache.ClassID) {
	t.Helper()
	llc := cache.MustNew(cache.DefaultConfig())
	fg := llc.DefineClass()
	bg := llc.DefineClass()
	if err := llc.SetPartition(map[cache.ClassID]int{0: 0}); err != nil {
		t.Fatal(err)
	}
	cc, err := NewCoarseController(llc, fg, bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return llc, cc, fg, bg
}

func TestNewCoarseControllerValidation(t *testing.T) {
	llc := cache.MustNew(cache.DefaultConfig())
	fg := llc.DefineClass()
	bg := llc.DefineClass()
	_ = llc.SetPartition(map[cache.ClassID]int{0: 0})
	if _, err := NewCoarseController(nil, fg, bg, CoarseConfig{}); err == nil {
		t.Error("nil LLC should error")
	}
	if _, err := NewCoarseController(llc, fg, fg, CoarseConfig{}); err == nil {
		t.Error("same class should error")
	}
	if _, err := NewCoarseController(llc, fg, bg, CoarseConfig{MinFGWays: 10, MaxFGWays: 5}); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := NewCoarseController(llc, fg, bg, CoarseConfig{MaxFGWays: 25}); err == nil {
		t.Error("bounds beyond cache should error")
	}
	if _, err := NewCoarseController(llc, fg, bg, CoarseConfig{InitialFGWays: 19}); err == nil {
		t.Error("initial outside bounds should error")
	}
}

func TestCoarseInitialPartition(t *testing.T) {
	llc, cc, fg, bg := newCoarseFixture(t, CoarseConfig{})
	if cc.FGWays() != 2 {
		t.Errorf("initial FG ways = %d, want MinFGWays 2", cc.FGWays())
	}
	w, _ := llc.ClassWays(fg)
	if w != 2 {
		t.Errorf("LLC FG partition = %d", w)
	}
	w, _ = llc.ClassWays(bg)
	if w != 18 {
		t.Errorf("LLC BG partition = %d", w)
	}
}

func TestCoarseDue(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 3})
	if cc.Due() {
		t.Error("fresh controller should not be due")
	}
	cc.RecordExecution(1.0, 100, false)
	cc.RecordExecution(1.1, 110, false)
	if cc.Due() {
		t.Error("2 executions < AdjustEvery 3")
	}
	cc.RecordExecution(1.2, 120, false)
	if !cc.Due() {
		t.Error("3 executions should be due")
	}
}

func TestHeuristic1GrowsOnCorrelationAndMisses(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	// Perfectly correlated times/misses, with deadline misses.
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 100+10*float64(i), i%2 == 0)
	}
	delta, err := cc.Adjust(0, FineWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 1 {
		t.Errorf("delta = %d, want +1 (heuristic 1)", delta)
	}
	if cc.FGWays() != 11 {
		t.Errorf("FGWays = %d", cc.FGWays())
	}
	if cc.Adjustments() != 1 {
		t.Errorf("Adjustments = %d", cc.Adjustments())
	}
}

func TestHeuristic1NeedsDeadlineMisses(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	// Correlated but no deadline misses: no growth.
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 100+10*float64(i), false)
	}
	delta, err := cc.Adjust(0, FineWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("delta = %d, want 0 without deadline misses", delta)
	}
}

func TestHeuristic1NeedsCorrelation(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	// Deadline misses but anti-correlated misses.
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 200-10*float64(i), true)
	}
	delta, err := cc.Adjust(0, FineWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("delta = %d, want 0 without correlation", delta)
	}
}

func TestHeuristic2UndoesUselessGrow(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 100+10*float64(i), true)
	}
	if d, _ := cc.Adjust(0, FineWindow{}); d != 1 {
		t.Fatal("setup: grow expected")
	}
	// Misses did NOT improve in the following window.
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0, 130, false)
	}
	delta, err := cc.Adjust(0, FineWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if delta != -1 {
		t.Errorf("delta = %d, want -1 (heuristic 2 shrink)", delta)
	}
	if cc.FGWays() != 10 {
		t.Errorf("FGWays = %d, want back to 10", cc.FGWays())
	}
}

func TestHeuristic2KeepsUsefulGrow(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	for i := 0; i < 6; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 100+10*float64(i), true)
	}
	if d, _ := cc.Adjust(0, FineWindow{}); d != 1 {
		t.Fatal("setup: grow expected")
	}
	// Misses clearly improved: the grow sticks (and no new trigger fires —
	// flush the whole 10-deep window with uncorrelated, deadline-met
	// records so heuristic 1 stays quiet).
	for i := 0; i < 10; i++ {
		cc.RecordExecution(1.0, 50+float64(i%2), false)
	}
	delta, err := cc.Adjust(0, FineWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("delta = %d, want 0 (grow retained)", delta)
	}
	if cc.FGWays() != 11 {
		t.Errorf("FGWays = %d, want 11", cc.FGWays())
	}
}

func TestHeuristic3GrowsOnBGSuppression(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 6, InitialFGWays: 10})
	// Uncorrelated executions, no deadline misses — but the fine controller
	// reports BG heavily suppressed.
	vals := []float64{100, 90, 110, 95, 105, 100}
	for i, v := range vals {
		cc.RecordExecution(1.0, v, i == 0)
	}
	delta, err := cc.Adjust(0, FineWindow{Decisions: 10, BGSuppressed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if delta != 1 {
		t.Errorf("delta = %d, want +1 (heuristic 3)", delta)
	}
	// Below the suppression threshold: nothing.
	for i, v := range vals {
		cc.RecordExecution(1.0, v, i == 0)
	}
	delta, _ = cc.Adjust(0, FineWindow{Decisions: 10, BGSuppressed: 2})
	// Heuristic 2 may shrink if the grow did not improve misses — accept -1
	// or 0 but never +1.
	if delta == 1 {
		t.Errorf("delta = %d, must not grow below suppression threshold", delta)
	}
}

func TestCoarseRespectsBounds(t *testing.T) {
	_, cc, _, _ := newCoarseFixture(t, CoarseConfig{AdjustEvery: 2, MinFGWays: 9, MaxFGWays: 11, InitialFGWays: 10})
	grow := func() int {
		for i := 0; i < 2; i++ {
			cc.RecordExecution(1.0+0.1*float64(i)+0.05*float64(i*i), 100+10*float64(i)+5*float64(i*i), true)
		}
		d, err := cc.Adjust(0, FineWindow{Decisions: 10, BGSuppressed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if d := grow(); d != 1 {
		t.Fatalf("first grow = %d", d)
	}
	// 11 = max: further grows must be clamped to 0. (Each Adjust may also
	// invoke heuristic 2; feed improving misses so the grow sticks.)
	cc.lastWasGrow = false
	for i := 0; i < 2; i++ {
		cc.RecordExecution(1.0+0.1*float64(i), 10+10*float64(i), true)
	}
	d, err := cc.Adjust(0, FineWindow{Decisions: 10, BGSuppressed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || cc.FGWays() != 11 {
		t.Errorf("at max: delta = %d, ways = %d", d, cc.FGWays())
	}
}

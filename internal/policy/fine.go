package policy

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// Default fine-control parameters from §4.3.
const (
	// DefaultAheadMargin: yield FG resources only when the FG is predicted
	// ahead of its target by more than this margin. The paper uses the
	// predictor's typical error (~2%) as the safety margin against
	// prematurely slowing an FG task; we widen it slightly to 4% so the
	// controller's steady state hovers a few percent ahead of the deadline
	// rather than exactly on it (see also DefaultBehindMargin).
	DefaultAheadMargin = 0.04
	// DefaultBehindMargin: prioritize the FG when its predicted slack falls
	// below this fraction of the target. A small positive margin makes the
	// steady state sit ahead of the deadline by at least the predictor's
	// typical error, which is what keeps the success rate above 95% instead
	// of ~50% (hovering exactly on the deadline loses every coin flip).
	DefaultBehindMargin = 0.015
	// DefaultPauseMargin: pause BG tasks only when the FG is predicted more
	// than 10% behind its target, because pausing is the most intrusive
	// action.
	DefaultPauseMargin = 0.10
	// DefaultDecisionSegments: make control decisions every 5 prediction
	// segments, because control actions are not instantaneous.
	DefaultDecisionSegments = 5
	// DefaultSpeedupHoldoff: consecutive "ahead" decisions required before
	// each one-grade BG speed-up. Throttling reacts immediately; releasing
	// is rate-limited. Without this asymmetry the controller enters a
	// limit cycle — a fast execution releases BG fully within one
	// execution, the next execution starts against unthrottled BG and
	// misses by a hair, BG is floored again, and the pattern repeats every
	// three executions.
	DefaultSpeedupHoldoff = 20
)

// DefaultGrades returns the five equi-spaced DVFS grades Dirigent uses out
// of the platform's nine levels (§5.1: "Dirigent uses just 5 equi-spaced
// frequencies", 1.2/1.4/1.6/1.8/2.0 GHz), as indices into the machine's
// level table.
func DefaultGrades() []int { return []int{0, 2, 4, 6, 8} }

// GradesForLevels generalizes DefaultGrades to an arbitrary DVFS ladder:
// up to five equi-spaced level indices spanning [0, levels-1]. Ladders
// with five or fewer levels use every level; the paper's nine-level ladder
// reproduces DefaultGrades exactly.
func GradesForLevels(levels int) []int {
	if levels <= 0 {
		return nil
	}
	if levels <= 5 {
		g := make([]int, levels)
		for i := range g {
			g[i] = i
		}
		return g
	}
	g := make([]int, 5)
	for i := range g {
		g[i] = i * (levels - 1) / 4
	}
	return g
}

// FGStatus is the fine controller's per-stream input at a decision point.
type FGStatus struct {
	// Predicted is the predicted completion time of the in-flight
	// execution.
	Predicted sim.Time
	// Deadline is the absolute completion target of the in-flight
	// execution.
	Deadline sim.Time
	// Target is the relative latency target (deadline − execution start),
	// used to normalize slack.
	Target time.Duration
}

// slack returns (deadline − predicted)/target: positive when ahead.
func (s FGStatus) slack() float64 {
	if s.Target <= 0 {
		return 0
	}
	return float64(s.Deadline-s.Predicted) / float64(s.Target)
}

// FineConfig configures the fine time scale controller.
type FineConfig struct {
	// Grades are machine frequency-level indices, ascending. Zero value
	// uses DefaultGrades.
	Grades []int
	// AheadMargin, BehindMargin and PauseMargin are the yield / prioritize /
	// pause thresholds on normalized slack.
	AheadMargin  float64
	BehindMargin float64
	PauseMargin  float64
	// SpeedupHoldoff is the number of consecutive ahead decisions required
	// before each BG speed-up (negative disables the hold-off).
	SpeedupHoldoff int
	// Recorder receives decision and action events. Nil means no
	// telemetry (the runtime injects its configured recorder here).
	Recorder telemetry.Recorder
}

func (c FineConfig) withDefaults() FineConfig {
	if len(c.Grades) == 0 {
		c.Grades = DefaultGrades()
	}
	if c.AheadMargin == 0 {
		c.AheadMargin = DefaultAheadMargin
	}
	if c.BehindMargin == 0 {
		c.BehindMargin = DefaultBehindMargin
	}
	if c.PauseMargin == 0 {
		c.PauseMargin = DefaultPauseMargin
	}
	if c.SpeedupHoldoff == 0 {
		c.SpeedupHoldoff = DefaultSpeedupHoldoff
	}
	if c.SpeedupHoldoff < 0 {
		c.SpeedupHoldoff = 1
	}
	return c
}

// FineController implements Dirigent's fine time scale policy (§4.3): at
// each decision point it compares predicted FG completion against the
// deadline and shifts resources between FG and BG tasks using per-core DVFS
// and task pausing.
type FineController struct {
	m   *machine.Machine
	cfg FineConfig

	fgTasks []int // task IDs, parallel to the runtime's active FG streams
	fgCores []int
	// fgStreams holds each managed FG task's stable stream index, used to
	// label telemetry: with mid-run admission/removal the controller's
	// compact task list no longer coincides with stream numbering.
	fgStreams []int
	bgTasks   []int
	bgCores   []int

	// missSnapshot holds each BG task's cumulative LLC misses at the last
	// decision, for the intrusiveness ranking ("the number of LLC load
	// misses a task generates", §4.3).
	missSnapshot map[int]float64

	// rec receives decision/action events; never nil. Richer decision
	// telemetry (Fig. 12-style analyses) lives entirely in the event
	// stream — aggregate with telemetry.Aggregator.
	rec telemetry.Recorder

	// The coarse controller's heuristic 3 consumes a windowed suppression
	// fraction (§4.3); these counters are control state, reset each coarse
	// window, not telemetry. windowActFailures counts actuation requests
	// (DVFS/pause/resume) the machine dropped — under fault injection those
	// are resource shifts the FG asked for and did not get, so heuristic 3
	// folds them into the suppression fraction.
	windowDecisions   int
	windowSuppressed  int
	windowActFailures int

	// aheadStreak counts consecutive all-ahead decisions, for the BG
	// speed-up hold-off.
	aheadStreak int
}

// NewFineController validates inputs and builds the controller. The
// machine's frequency levels must include every grade.
func NewFineController(m *machine.Machine, fgTasks, fgCores, bgTasks, bgCores []int, cfg FineConfig) (*FineController, error) {
	if m == nil {
		return nil, errors.New("policy: nil machine")
	}
	if len(fgTasks) == 0 || len(fgTasks) != len(fgCores) {
		return nil, fmt.Errorf("policy: FG task/core lists invalid (%d tasks, %d cores)", len(fgTasks), len(fgCores))
	}
	if len(bgTasks) != len(bgCores) {
		return nil, fmt.Errorf("policy: BG task/core lists invalid (%d tasks, %d cores)", len(bgTasks), len(bgCores))
	}
	// Default grades adapt to the machine's ladder here, where the ladder
	// is known (withDefaults has no machine and keeps the nine-level
	// default for compatibility). On the paper's platform both paths
	// produce {0,2,4,6,8}.
	if len(cfg.Grades) == 0 {
		cfg.Grades = GradesForLevels(m.MaxFreqLevel() + 1)
	}
	cfg = cfg.withDefaults()
	for i, g := range cfg.Grades {
		if g < 0 || g > m.MaxFreqLevel() {
			return nil, fmt.Errorf("policy: grade %d (level %d) outside machine levels", i, g)
		}
		if i > 0 && g <= cfg.Grades[i-1] {
			return nil, errors.New("policy: grades must be strictly ascending")
		}
	}
	fc := &FineController{
		m:            m,
		cfg:          cfg,
		fgTasks:      append([]int(nil), fgTasks...),
		fgCores:      append([]int(nil), fgCores...),
		fgStreams:    make([]int, len(fgTasks)),
		bgTasks:      append([]int(nil), bgTasks...),
		bgCores:      append([]int(nil), bgCores...),
		missSnapshot: map[int]float64{},
		rec:          telemetry.OrNop(cfg.Recorder),
	}
	for i := range fc.fgStreams {
		fc.fgStreams[i] = i
	}
	// Pin every managed core to a grade (the top one) so grade stepping is
	// well-defined. A dropped actuation (injected fault) is tolerated: the
	// core snaps to a grade at the first successful transition.
	top := cfg.Grades[len(cfg.Grades)-1]
	for _, c := range append(append([]int(nil), fgCores...), bgCores...) {
		if err := m.SetFreqLevel(c, top); err != nil && !errors.Is(err, machine.ErrActuation) {
			return nil, err
		}
	}
	return fc, nil
}

// gradeOf maps a core's current level to its grade index; levels between
// grades (not produced by this controller) snap down.
func (fc *FineController) gradeOf(core int) int {
	level, err := fc.m.FreqLevel(core)
	if err != nil {
		return 0
	}
	g := 0
	for i, l := range fc.cfg.Grades {
		if level >= l {
			g = i
		}
	}
	return g
}

// setGrade requests a core's DVFS grade and reports whether the actuation
// was accepted. A request dropped by an injected fault (machine.ErrActuation)
// is surfaced — counted in the coarse window and emitted as an
// ActionActuationFail event — and retried naturally at the next decision
// that still wants it. Any other error is a logic bug and panics.
func (fc *FineController) setGrade(now sim.Time, core, grade int) bool {
	if grade < 0 {
		grade = 0
	}
	if grade >= len(fc.cfg.Grades) {
		grade = len(fc.cfg.Grades) - 1
	}
	// The grade is validated against machine levels at construction.
	if err := fc.m.SetFreqLevel(core, fc.cfg.Grades[grade]); err != nil {
		if errors.Is(err, machine.ErrActuation) {
			fc.windowActFailures++
			fc.emitAction(now, telemetry.ActionActuationFail, -1, core, -1)
			return false
		}
		panic(fmt.Sprintf("policy: setGrade: %v", err))
	}
	return true
}

// emitAction records one resource-shift action on the telemetry bus. Group
// actions (BG throttle/speedup/resume, which affect every active BG core at
// once) pass -1 identities.
func (fc *FineController) emitAction(now sim.Time, a telemetry.Action, task, core, stream int) {
	if fc.rec.Enabled(telemetry.KindFineAction) {
		fc.rec.Record(telemetry.Event{
			Kind: telemetry.KindFineAction, At: now,
			Action: a, Task: task, Core: core, Stream: stream,
		})
	}
}

// Decide runs one fine time scale decision (§4.3). status must be parallel
// to the FG task list given at construction.
func (fc *FineController) Decide(now sim.Time, status []FGStatus) error {
	if len(status) != len(fc.fgTasks) {
		return fmt.Errorf("policy: %d statuses for %d FG tasks", len(status), len(fc.fgTasks))
	}
	if len(status) == 0 {
		return nil
	}
	fc.windowDecisions++

	topGrade := len(fc.cfg.Grades) - 1
	var behind, ahead []int
	worst := 0
	for i, st := range status {
		s := st.slack()
		if s < fc.cfg.BehindMargin {
			behind = append(behind, i)
		} else if s > fc.cfg.AheadMargin {
			ahead = append(ahead, i)
		}
		if st.slack() < status[worst].slack() {
			worst = i
		}
	}

	switch {
	case len(behind) > 0:
		fc.aheadStreak = 0
		// Lagging FG tasks: boost them to max frequency.
		allWereMax := true
		for _, i := range behind {
			if fc.gradeOf(fc.fgCores[i]) != topGrade {
				allWereMax = false
				if fc.setGrade(now, fc.fgCores[i], topGrade) {
					fc.emitAction(now, telemetry.ActionFGMaxBoost, fc.fgTasks[i], fc.fgCores[i], fc.fgStreams[i])
				}
			}
		}
		if allWereMax {
			// Already at max: throttle BG one grade.
			throttled := false
			for j, c := range fc.bgCores {
				if fc.paused(fc.bgTasks[j]) {
					continue
				}
				if g := fc.gradeOf(c); g > 0 && fc.setGrade(now, c, g-1) {
					throttled = true
				}
			}
			if throttled {
				fc.emitAction(now, telemetry.ActionBGThrottle, -1, -1, -1)
			} else if status[worst].slack() < -fc.cfg.PauseMargin {
				// BG already at minimum frequency and the FG is badly
				// behind: pause the most intrusive active BG.
				fc.pauseMostIntrusive(now)
			}
		}
		// Multi-FG rule: FG tasks expected to finish early are throttled
		// down individually even while others lag.
		for _, i := range ahead {
			if g := fc.gradeOf(fc.fgCores[i]); g > 0 && fc.setGrade(now, fc.fgCores[i], g-1) {
				fc.emitAction(now, telemetry.ActionFGThrottle, fc.fgTasks[i], fc.fgCores[i], fc.fgStreams[i])
			}
		}

	case len(ahead) == len(status):
		// Everyone comfortably ahead: give resources back to BG in the
		// paper's order — resume paused, then speed up throttled, then
		// throttle the FG itself. BG releases are rate-limited by the
		// hold-off (FG-protecting actions above never are): releasing as
		// fast as the 25 ms decision cadence lets a single fast execution
		// unthrottle all BG tasks, which dooms the next execution and
		// locks the controller into a miss/recover limit cycle. FG
		// self-throttling needs no hold-off — it is reversed instantly by
		// the boost path — and runs once nothing is left to release, which
		// is what converts the remaining slack into on-time completions.
		fc.aheadStreak++
		anyPaused := false
		for _, t := range fc.bgTasks {
			if fc.paused(t) {
				anyPaused = true
				break
			}
		}
		anyThrottled := false
		for j, c := range fc.bgCores {
			if fc.paused(fc.bgTasks[j]) {
				continue
			}
			if fc.gradeOf(c) < topGrade {
				anyThrottled = true
				break
			}
		}
		if anyPaused || anyThrottled {
			if fc.aheadStreak < fc.cfg.SpeedupHoldoff {
				break
			}
			fc.aheadStreak = 0
			resumed, resumeFailures := fc.resumeAllPaused(now)
			if resumeFailures > 0 {
				// A dropped resume leaves BG tasks stuck paused; retry at the
				// very next all-ahead decision instead of waiting out a full
				// hold-off.
				fc.aheadStreak = fc.cfg.SpeedupHoldoff
			}
			if resumed {
				fc.emitAction(now, telemetry.ActionBGResume, -1, -1, -1)
				break
			}
			if resumeFailures > 0 {
				break
			}
			sped := false
			for j, c := range fc.bgCores {
				if fc.paused(fc.bgTasks[j]) {
					continue
				}
				if g := fc.gradeOf(c); g < topGrade && fc.setGrade(now, c, g+1) {
					sped = true
				}
			}
			if sped {
				fc.emitAction(now, telemetry.ActionBGSpeedup, -1, -1, -1)
			}
			break
		}
		for _, i := range ahead {
			if g := fc.gradeOf(fc.fgCores[i]); g > 0 && fc.setGrade(now, fc.fgCores[i], g-1) {
				fc.emitAction(now, telemetry.ActionFGThrottle, fc.fgTasks[i], fc.fgCores[i], fc.fgStreams[i])
			}
		}
	}

	// Is BG heavily suppressed? The coarse controller's heuristic 3 (§4.3)
	// reads this as "BG tasks are heavily throttled and their utilization
	// of core resources is low": any task paused, or the active tasks'
	// mean DVFS grade in the lower 60% of the range.
	suppressed := false
	if len(fc.bgCores) > 0 {
		pausedAny := false
		gradeSum, active := 0, 0
		for j, c := range fc.bgCores {
			if fc.paused(fc.bgTasks[j]) {
				pausedAny = true
				continue
			}
			gradeSum += fc.gradeOf(c)
			active++
		}
		suppressed = pausedAny
		if !suppressed && active > 0 {
			suppressed = float64(gradeSum)/float64(active) < 0.6*float64(topGrade)
		}
		if suppressed {
			fc.windowSuppressed++
		}
	}

	// The decision event carries the triggering predicate: how many
	// streams were behind/ahead, the worst normalized slack, and whether
	// BG ended the decision suppressed.
	if fc.rec.Enabled(telemetry.KindFineDecision) {
		reason := telemetry.ReasonSteady
		switch {
		case len(behind) > 0:
			reason = telemetry.ReasonFGBehind
		case len(ahead) == len(status):
			reason = telemetry.ReasonAllAhead
		}
		fc.rec.Record(telemetry.Event{
			Kind: telemetry.KindFineDecision, At: now,
			Reason: reason, Behind: len(behind), Ahead: len(ahead),
			Streams: len(status), Slack: status[worst].slack(),
			Suppressed: suppressed,
		})
	}

	// Refresh the intrusiveness snapshot.
	for _, t := range fc.bgTasks {
		fc.missSnapshot[t] = fc.m.Counters().Task(t).LLCMisses
	}
	return nil
}

func (fc *FineController) paused(task int) bool {
	p, err := fc.m.Paused(task)
	return err == nil && p
}

// pauseMostIntrusive pauses the active BG task with the highest LLC miss
// count since the last decision.
func (fc *FineController) pauseMostIntrusive(now sim.Time) {
	bestIdx := -1
	bestMisses := -1.0
	for j, t := range fc.bgTasks {
		if fc.paused(t) {
			continue
		}
		delta := fc.m.Counters().Task(t).LLCMisses - fc.missSnapshot[t]
		if delta > bestMisses {
			bestMisses = delta
			bestIdx = j
		}
	}
	if bestIdx >= 0 {
		if err := fc.m.Pause(fc.bgTasks[bestIdx]); err != nil {
			if !errors.Is(err, machine.ErrActuation) {
				panic(fmt.Sprintf("policy: pauseMostIntrusive: %v", err))
			}
			// The pause was dropped: surface it instead of silently leaving
			// the FG unprotected, and let the next decision retry.
			fc.windowActFailures++
			fc.emitAction(now, telemetry.ActionActuationFail, fc.bgTasks[bestIdx], fc.bgCores[bestIdx], -1)
			return
		}
		fc.emitAction(now, telemetry.ActionBGPause, fc.bgTasks[bestIdx], fc.bgCores[bestIdx], -1)
	}
}

// resumeAllPaused resumes every paused BG task. It reports whether any task
// actually resumed, and how many resume requests the machine dropped
// (injected faults) — each dropped request is counted in the coarse window
// and emitted as an ActionActuationFail event.
func (fc *FineController) resumeAllPaused(now sim.Time) (resumed bool, failures int) {
	for j, t := range fc.bgTasks {
		if !fc.paused(t) {
			continue
		}
		if err := fc.m.Resume(t); err != nil {
			if !errors.Is(err, machine.ErrActuation) {
				panic(fmt.Sprintf("policy: resumeAllPaused: %v", err))
			}
			failures++
			fc.windowActFailures++
			fc.emitAction(now, telemetry.ActionActuationFail, t, fc.bgCores[j], -1)
			continue
		}
		resumed = true
	}
	return resumed, failures
}

// FineWindow is the fine controller's windowed control input to the coarse
// controller's heuristic 3 (§4.3): how many decisions occurred since the
// last coarse adjustment and how many of them left BG heavily suppressed.
// It is deliberately minimal — all richer decision telemetry flows through
// the event stream (telemetry.Aggregator reconstructs full counters).
type FineWindow struct {
	Decisions    int
	BGSuppressed int // decisions with all BG at min grade or paused
	// ActuationFailures counts DVFS/pause/resume requests the machine
	// dropped this window (injected faults) — resource shifts the controller
	// wanted and did not get, which heuristic 3 treats as suppression
	// pressure.
	ActuationFailures int
}

// Window returns the decision window accumulated since the last
// ResetWindow.
func (fc *FineController) Window() FineWindow {
	return FineWindow{
		Decisions:         fc.windowDecisions,
		BGSuppressed:      fc.windowSuppressed,
		ActuationFailures: fc.windowActFailures,
	}
}

// ResetWindow zeroes the window (the coarse controller reads and resets it
// each adjustment).
func (fc *FineController) ResetWindow() {
	fc.windowDecisions = 0
	fc.windowSuppressed = 0
	fc.windowActFailures = 0
}

// AddFG registers a newly admitted FG task with the controller; stream is
// its stable stream index for telemetry labels. The core is pinned to the
// top grade, like construction-time FG cores. Admission is validated
// before any actuation: an occupied core or a duplicate task is rejected
// with the machine untouched.
func (fc *FineController) AddFG(task, core, stream int) error {
	if err := fc.checkAdmission(task, core); err != nil {
		return err
	}
	if err := fc.pinTop(core); err != nil {
		return err
	}
	fc.fgTasks = append(fc.fgTasks, task)
	fc.fgCores = append(fc.fgCores, core)
	fc.fgStreams = append(fc.fgStreams, stream)
	return nil
}

// RemoveFGByTask drops an FG task from the controller's managed set
// (mid-run stream eviction). Remaining entries keep their relative order,
// so Decide's status slices stay parallel to the runtime's active streams.
func (fc *FineController) RemoveFGByTask(task int) error {
	for i, t := range fc.fgTasks {
		if t != task {
			continue
		}
		fc.fgTasks = append(fc.fgTasks[:i], fc.fgTasks[i+1:]...)
		fc.fgCores = append(fc.fgCores[:i], fc.fgCores[i+1:]...)
		fc.fgStreams = append(fc.fgStreams[:i], fc.fgStreams[i+1:]...)
		return nil
	}
	return fmt.Errorf("policy: FG task %d not managed", task)
}

// AddBG registers a newly admitted BG task; its core is pinned to the top
// grade so grade stepping is well-defined from the first decision. Like
// AddFG, occupied cores and duplicate tasks are rejected before any
// actuation.
func (fc *FineController) AddBG(task, core int) error {
	if err := fc.checkAdmission(task, core); err != nil {
		return err
	}
	if err := fc.pinTop(core); err != nil {
		return err
	}
	fc.bgTasks = append(fc.bgTasks, task)
	fc.bgCores = append(fc.bgCores, core)
	fc.missSnapshot[task] = fc.m.Counters().Task(task).LLCMisses
	return nil
}

// RemoveBG drops a BG task from the controller's managed set.
func (fc *FineController) RemoveBG(task int) error {
	for j, t := range fc.bgTasks {
		if t != task {
			continue
		}
		fc.bgTasks = append(fc.bgTasks[:j], fc.bgTasks[j+1:]...)
		fc.bgCores = append(fc.bgCores[:j], fc.bgCores[j+1:]...)
		delete(fc.missSnapshot, task)
		return nil
	}
	return fmt.Errorf("policy: BG task %d not managed", task)
}

// checkAdmission rejects an admission whose core is already managed or
// whose task ID is already registered, so a bad scheduler call can't make
// two controller entries fight over one core's grade.
func (fc *FineController) checkAdmission(task, core int) error {
	for _, c := range fc.fgCores {
		if c == core {
			return fmt.Errorf("policy: core %d already runs a managed FG task", core)
		}
	}
	for _, c := range fc.bgCores {
		if c == core {
			return fmt.Errorf("policy: core %d already runs a managed BG task", core)
		}
	}
	for _, t := range fc.fgTasks {
		if t == task {
			return fmt.Errorf("policy: task %d already managed as FG", task)
		}
	}
	for _, t := range fc.bgTasks {
		if t == task {
			return fmt.Errorf("policy: task %d already managed as BG", task)
		}
	}
	return nil
}

// pinTop pins a core to the controller's top grade, tolerating a dropped
// actuation exactly like the constructor does.
func (fc *FineController) pinTop(core int) error {
	top := fc.cfg.Grades[len(fc.cfg.Grades)-1]
	if err := fc.m.SetFreqLevel(core, top); err != nil && !errors.Is(err, machine.ErrActuation) {
		return err
	}
	return nil
}

package policy

import (
	"math"
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
)

func TestSlackBudget(t *testing.T) {
	profile := func(d time.Duration) StreamProfile {
		return StreamProfile{Benchmark: "x", StandaloneDuration: d}
	}
	cases := []struct {
		name     string
		targets  []time.Duration
		profiles []StreamProfile
		want     float64
	}{
		{"no profiles assumes moderate", []time.Duration{time.Second}, nil, 0.15},
		{"zero standalone skipped", []time.Duration{time.Second}, []StreamProfile{profile(0)}, 0.15},
		{"single stream", []time.Duration{1200 * time.Millisecond}, []StreamProfile{profile(time.Second)}, 0.2},
		{
			"tightest stream wins",
			[]time.Duration{1400 * time.Millisecond, 1100 * time.Millisecond},
			[]StreamProfile{profile(time.Second), profile(time.Second)},
			0.1,
		},
		{
			"negative slack carried through",
			[]time.Duration{900 * time.Millisecond},
			[]StreamProfile{profile(time.Second)},
			-0.1,
		},
	}
	for _, c := range cases {
		if got := slackBudget(c.targets, c.profiles); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: slackBudget = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCORDLikeDecomposeMapping(t *testing.T) {
	llc, err := cache.New(cache.DefaultConfig()) // 20 ways
	if err != nil {
		t.Fatal(err)
	}
	grades := DefaultGrades()
	cases := []struct {
		budget      float64
		wantBGLevel int
		wantFGWays  int
	}{
		{0.40, grades[4], 5},  // generous: fast BG, small FG reserve (20/4)
		{0.28, grades[3], 6},  // 20/3
		{0.20, grades[2], 6},  // 20/3
		{0.10, grades[1], 10}, // 20/2
		{0.05, grades[0], 10}, // tight: floored BG, half the cache
	}
	m := machine.MustNew(machine.DefaultConfig())
	for _, c := range cases {
		p := &CORDLike{llc: llc, m: m}
		p.decompose(c.budget)
		if p.bgLevel != c.wantBGLevel {
			t.Errorf("budget %.2f: bgLevel = %d, want %d", c.budget, p.bgLevel, c.wantBGLevel)
		}
		if p.fgWays != c.wantFGWays {
			t.Errorf("budget %.2f: fgWays = %d, want %d", c.budget, p.fgWays, c.wantFGWays)
		}
	}
}

func TestCORDLikeInitAppliesStaticSplit(t *testing.T) {
	f := newRivalFixture(t)
	llc := f.m.LLC()
	fgClass := llc.DefineClass()
	bgClass := llc.DefineClass()
	// Mirror the session's pre-provisioning: the default class gives up
	// its ways so the policy's split can claim them.
	if err := llc.SetPartition(map[cache.ClassID]int{0: 0}); err != nil {
		t.Fatal(err)
	}
	b := f.binding()
	b.LLC, b.FGClass, b.BGClass = llc, fgClass, bgClass
	// Tight 5% budget: BG floored, half the cache reserved for FG.
	b.Targets = []time.Duration{1050 * time.Millisecond, 1050 * time.Millisecond}
	b.Profiles = []StreamProfile{
		{Benchmark: "ferret", StandaloneDuration: time.Second},
		{Benchmark: "bodytrack", StandaloneDuration: time.Second},
	}
	p := NewCORDLike()
	if err := p.Init(b); err != nil {
		t.Fatal(err)
	}
	if p.BGLevel() != 0 {
		t.Errorf("BGLevel = %d, want floored 0", p.BGLevel())
	}
	wantFG := llc.Ways() / 2
	if p.FGWays() != wantFG {
		t.Errorf("FGWays = %d, want %d", p.FGWays(), wantFG)
	}
	if got, _ := llc.ClassWays(fgClass); got != wantFG {
		t.Errorf("applied FG partition = %d ways, want %d", got, wantFG)
	}
	if got, _ := llc.ClassWays(bgClass); got != llc.Ways()-wantFG {
		t.Errorf("applied BG partition = %d ways, want %d", got, llc.Ways()-wantFG)
	}
	for _, c := range []int{2, 3} {
		if f.level(t, c) != 0 {
			t.Errorf("BG core %d at level %d, want 0", c, f.level(t, c))
		}
	}
	top := f.m.MaxFreqLevel()
	for _, c := range []int{0, 1} {
		if f.level(t, c) != top {
			t.Errorf("FG core %d at level %d, want top %d", c, f.level(t, c), top)
		}
	}
}

func TestCORDLikeTickReassertsOperatingPoint(t *testing.T) {
	f := newRivalFixture(t)
	p := NewCORDLike()
	if err := p.Init(f.binding()); err != nil { // no LLC: DVFS-only static point
		t.Fatal(err)
	}
	// Assumed 0.15 budget → grades[2].
	if want := DefaultGrades()[2]; p.BGLevel() != want {
		t.Fatalf("BGLevel = %d, want %d", p.BGLevel(), want)
	}
	if err := f.m.SetFreqLevel(2, f.m.MaxFreqLevel()); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(f.m.Now(), make([]FGStatus, 2)); err != nil {
		t.Fatal(err)
	}
	if f.level(t, 2) != p.BGLevel() {
		t.Errorf("BG core 2 at level %d after Tick, want re-asserted %d", f.level(t, 2), p.BGLevel())
	}
	if w := p.Window(); w.Decisions != 1 {
		t.Errorf("Decisions = %d, want 1", w.Decisions)
	}
}

func TestCORDLikeRejectsSharedClasses(t *testing.T) {
	f := newRivalFixture(t)
	b := f.binding()
	b.LLC = f.m.LLC() // FGClass == BGClass == 0
	if err := NewCORDLike().Init(b); err == nil {
		t.Error("Init with shared FG/BG classes must error")
	}
}

func TestCORDLikeLifecycle(t *testing.T) {
	f := newRivalFixture(t)
	p := NewCORDLike()
	if err := p.Init(f.binding()); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveFG(f.fgTasks[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveFG(f.fgTasks[0]); err == nil {
		t.Error("double RemoveFG must error")
	}
	if err := p.RemoveBG(f.bgTasks[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveBG(f.bgTasks[0]); err == nil {
		t.Error("double RemoveBG must error")
	}
	// FGWays without an LLC binding reports unpartitioned.
	if p.FGWays() != 0 {
		t.Errorf("FGWays without LLC = %d, want 0", p.FGWays())
	}
}

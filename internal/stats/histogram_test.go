package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHistogramAddAndClamp(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)   // bin 0
	h.Add(9.9) // bin 4
	h.Add(-5)  // clamped to bin 0
	h.Add(50)  // clamped to bin 4
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if got := h.BinWidth(); got != 2 {
		t.Errorf("BinWidth = %g", got)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g", got)
	}
}

func TestHistogramOf(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	h, err := HistogramOf(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(xs) {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Lo >= 1 || h.Hi <= 5 {
		t.Errorf("range [%g,%g) should strictly contain data", h.Lo, h.Hi)
	}
	if _, err := HistogramOf(nil, 4); err == nil {
		t.Error("empty data should error")
	}
	// Degenerate constant data must not produce an empty range.
	h, err = HistogramOf([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + int(r.uint64()%200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.float64() * 10
		}
		h, err := HistogramOf(xs, 16)
		if err != nil {
			return false
		}
		integral := 0.0
		for _, d := range h.PDF() {
			integral += d * h.BinWidth()
		}
		return math.Abs(integral-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(x)
	}
	cdf := h.CDF()
	want := []float64{0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(cdf[i], want[i], 1e-12) {
			t.Errorf("CDF = %v, want %v", cdf, want)
		}
	}
	empty, _ := NewHistogram(0, 1, 2)
	for _, v := range empty.CDF() {
		if v != 0 {
			t.Error("empty CDF should be zeros")
		}
	}
	for _, v := range empty.PDF() {
		if v != 0 {
			t.Error("empty PDF should be zeros")
		}
	}
}

func TestFractionBelow(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5) // one sample per bin
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {5, 0.5}, {10, 1}, {11, 1}, {2.5, 0.25},
	}
	for _, c := range cases {
		if got := h.FractionBelow(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("FractionBelow(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	empty, _ := NewHistogram(0, 1, 2)
	if empty.FractionBelow(0.5) != 0 {
		t.Error("empty histogram FractionBelow should be 0")
	}
}

func TestFractionBelowMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		h, _ := NewHistogram(0, 100, 20)
		for i := 0; i < 50; i++ {
			h.Add(r.float64() * 100)
		}
		prev := -1.0
		for x := -10.0; x <= 110; x += 1.7 {
			v := h.FractionBelow(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("Render output missing bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("Render should emit one line per bin, got %d", lines)
	}
	// Zero/negative width falls back to default and must not panic.
	_ = h.Render(0)
	empty, _ := NewHistogram(0, 1, 3)
	_ = empty.Render(5)
}

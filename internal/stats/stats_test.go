package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
			}
		})
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := Std(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("Std = %g, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g, want 0", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(single) = %g, want 0", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	got, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 / (1 + 0.5 + 0.25)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("HarmonicMean = %g, want %g", got, want)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("HarmonicMean(nil) should error")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("HarmonicMean with zero should error")
	}
	if _, err := HarmonicMean([]float64{1, -1}); err == nil {
		t.Error("HarmonicMean with negative should error")
	}
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 4, 1e-9) {
		t.Errorf("GeometricMean = %g, want 4", got)
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("GeometricMean(nil) should error")
	}
	if _, err := GeometricMean([]float64{0}); err == nil {
		t.Error("GeometricMean(0) should error")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Errorf("Percentile(single) = %g, %v", got, err)
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got, err := Percentiles(xs, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("Percentiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Percentiles(xs, 50, 200); err == nil {
		t.Error("out-of-range percentile in batch should error")
	}
	if _, err := Percentiles(nil, 50); err == nil {
		t.Error("Percentiles(nil) should error")
	}
}

func TestCorrelation(t *testing.T) {
	// Perfect positive.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	got, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 1, 1e-12) {
		t.Errorf("Correlation = %g, want 1", got)
	}
	// Perfect negative.
	got, err = Correlation(xs, []float64{8, 6, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, -1, 1e-12) {
		t.Errorf("Correlation = %g, want -1", got)
	}
	// Constant series -> 0 by convention.
	got, err = Correlation(xs, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Correlation with constant = %g, want 0", got)
	}
	if _, err := Correlation(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestCorrelationBounds(t *testing.T) {
	// Property: |corr| <= 1 for arbitrary inputs of equal length >= 2.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 2 + int(r.uint64()%64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.float64()*100 - 50
			ys[i] = r.float64()*100 - 50
		}
		c, err := Correlation(xs, ys)
		if err != nil {
			return false
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEq(s.Mean, 5.5, 1e-12) {
		t.Errorf("Summary N/Mean wrong: %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary Min/Max wrong: %+v", s)
	}
	if !almostEq(s.P50, 5.5, 1e-12) {
		t.Errorf("P50 = %g", s.P50)
	}
	if s.P95 <= s.P50 || s.P99 < s.P95 {
		t.Errorf("percentile ordering violated: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSummaryCV(t *testing.T) {
	s := Summary{Mean: 2, Std: 1}
	if got := s.CV(); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CV = %g", got)
	}
	if got := (Summary{}).CV(); got != 0 {
		t.Errorf("CV of zero mean = %g, want 0", got)
	}
}

// testRand is a tiny deterministic generator for property tests, independent
// of math/rand so test behavior never shifts across Go releases.
type testRand struct{ s uint64 }

func newTestRand(seed int64) *testRand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &testRand{s: s}
}

func (r *testRand) uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRand) float64() float64 {
	return float64(r.uint64()>>11) / float64(1<<53)
}

// Package stats provides the small statistical toolkit used throughout the
// Dirigent simulator and runtime: summary statistics, online accumulators,
// exponential moving averages, Pearson correlation, percentiles, and
// histogram/PDF construction.
//
// Everything here is deterministic and allocation-conscious: the Dirigent
// runtime calls into this package on its 5 ms control path, so the hot
// entry points (EMA updates, Welford accumulators) do not allocate.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// or 0 if xs has fewer than one element. The paper reports population
// standard deviations over fixed execution sets, so population variance is
// the matching estimator.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// HarmonicMean returns the harmonic mean of xs. All samples must be
// positive; non-positive samples yield an error because the harmonic mean is
// undefined for them. The paper summarizes relative BG throughput with a
// harmonic mean (Fig. 10/13).
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	inv := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean of non-positive sample %g", x)
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, nil
}

// GeometricMean returns the geometric mean of xs; all samples must be
// positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean of non-positive sample %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally; use
// Percentiles for repeated queries against the same data.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// Percentiles returns the requested percentiles of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: percentile %g out of range [0,100]", p)
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// Both slices must have the same length and at least two elements. If either
// series is constant the correlation is undefined and 0 is returned: the
// coarse controller treats "no signal" and "no correlation" identically
// (§4.3, heuristic 1).
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: correlation length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, fmt.Errorf("stats: correlation requires >= 2 samples, got %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Summary bundles the descriptive statistics the experiment harness reports
// for a set of task execution times.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	ps, err := Percentiles(xs, 50, 95, 99)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  Std(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P50:  ps[0],
		P95:  ps[1],
		P99:  ps[2],
	}, nil
}

// CV returns the coefficient of variation (std/mean), the paper's
// "normalized standard deviation" (Fig. 7, Fig. 14). Returns 0 when the mean
// is zero.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
}

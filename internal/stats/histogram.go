package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are clamped into the first/last bin so that probability mass is
// conserved; the experiment harness sizes ranges from observed data so
// clamping only catches boundary rounding.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram bins %d must be positive", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%g,%g) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// HistogramOf builds a histogram sized to the data: range [min, max] padded
// by half a bin on each side so extreme samples land strictly inside.
func HistogramOf(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	lo, hi := Min(xs), Max(xs)
	//lint:ignore floateq exact degenerate-range guard; any nonzero width is a valid histogram range
	if lo == hi { // degenerate: all samples equal
		lo -= 0.5
		hi += 0.5
	}
	pad := (hi - lo) / float64(bins) / 2
	h, err := NewHistogram(lo-pad, hi+pad, bins)
	if err != nil {
		return nil, err
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// Add folds one sample into the histogram.
func (h *Histogram) Add(x float64) {
	i := h.binIndex(x)
	h.Counts[i]++
	h.total++
}

func (h *Histogram) binIndex(x float64) int {
	n := len(h.Counts)
	i := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(n)))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// PDF returns the empirical probability density per bin: fraction of samples
// in each bin divided by the bin width, so the curve integrates to ~1. Used
// to regenerate the execution-time PDF curves of Fig. 1 and Fig. 11.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total) / w
	}
	return out
}

// CDF returns the empirical cumulative distribution evaluated at the right
// edge of each bin.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	run := 0
	for i, c := range h.Counts {
		run += c
		out[i] = float64(run) / float64(h.total)
	}
	return out
}

// FractionBelow returns the fraction of samples strictly below x, resolving
// within-bin position linearly. It is the success-rate estimator used when a
// deadline falls inside a bin.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return 1
	}
	w := h.BinWidth()
	i := h.binIndex(x)
	below := 0
	for j := 0; j < i; j++ {
		below += h.Counts[j]
	}
	frac := (x - (h.Lo + float64(i)*w)) / w
	return (float64(below) + frac*float64(h.Counts[i])) / float64(h.total)
}

// Render draws a simple ASCII bar chart of the histogram, one row per bin.
// width is the maximum bar length in characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%10.4g |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

package stats

import (
	"fmt"
	"math"
)

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use. It is not safe for concurrent use; the
// simulator is single-threaded per machine by design.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (0 if fewer than one
// sample).
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// EMA is an exponential moving average with weight w on the newest sample:
// v' = w*x + (1-w)*v. Before the first sample the EMA is "empty" and the
// first Add seeds it directly, matching the paper's per-segment penalty
// average P̄_i = 0.2 P_i + 0.8 P̄_i (§4.2) which is seeded by the first
// contended execution.
type EMA struct {
	weight float64
	value  float64
	seeded bool
}

// NewEMA returns an EMA with the given weight in (0, 1].
func NewEMA(weight float64) (*EMA, error) {
	if weight <= 0 || weight > 1 {
		return nil, fmt.Errorf("stats: EMA weight %g outside (0,1]", weight)
	}
	return &EMA{weight: weight}, nil
}

// MustEMA is NewEMA that panics on an invalid weight; for package-internal
// construction with constant weights.
func MustEMA(weight float64) *EMA {
	e, err := NewEMA(weight)
	if err != nil {
		panic(err)
	}
	return e
}

// Add folds x into the average and returns the new value.
func (e *EMA) Add(x float64) float64 {
	if !e.seeded {
		e.value = x
		e.seeded = true
		return e.value
	}
	e.value = e.weight*x + (1-e.weight)*e.value
	return e.value
}

// Value returns the current average (0 if unseeded).
func (e *EMA) Value() float64 { return e.value }

// Seeded reports whether at least one sample has been added.
func (e *EMA) Seeded() bool { return e.seeded }

// Weight returns the configured weight.
func (e *EMA) Weight() float64 { return e.weight }

// Reset clears the average back to the unseeded state, keeping the weight.
func (e *EMA) Reset() { e.value, e.seeded = 0, false }

// Ring is a fixed-capacity ring buffer of float64 samples, used for the
// coarse controller's sliding windows (last 10 executions, §4.3).
type Ring struct {
	buf  []float64
	next int
	full bool
}

// NewRing returns a ring holding up to capacity samples. Capacity must be
// positive.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stats: ring capacity %d must be positive", capacity)
	}
	return &Ring{buf: make([]float64, capacity)}, nil
}

// MustRing is NewRing that panics on an invalid capacity.
func MustRing(capacity int) *Ring {
	r, err := NewRing(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Push appends x, evicting the oldest sample once full.
func (r *Ring) Push(x float64) {
	r.buf[r.next] = x
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of samples currently held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Values returns the samples in oldest-to-newest order as a fresh slice.
func (r *Ring) Values() []float64 {
	n := r.Len()
	out := make([]float64, 0, n)
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset empties the ring, keeping the capacity.
func (r *Ring) Reset() {
	r.next = 0
	r.full = false
}

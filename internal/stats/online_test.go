package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + int(r.uint64()%100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.float64()*1000 - 500
			w.Add(xs[i])
		}
		return w.N() == n &&
			almostEq(w.Mean(), Mean(xs), 1e-6) &&
			almostEq(w.Variance(), Variance(xs), 1e-5) &&
			almostEq(w.Std(), Std(xs), 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmptyAndReset(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("zero Welford should report zeros")
	}
	w.Add(5)
	w.Add(7)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestEMASeedAndUpdate(t *testing.T) {
	e := MustEMA(0.2)
	if e.Seeded() {
		t.Error("fresh EMA should not be seeded")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %g, want seed 10", got)
	}
	if !e.Seeded() {
		t.Error("EMA should be seeded after Add")
	}
	// v = 0.2*20 + 0.8*10 = 12
	if got := e.Add(20); !almostEq(got, 12, 1e-12) {
		t.Errorf("second Add = %g, want 12", got)
	}
	if e.Weight() != 0.2 {
		t.Errorf("Weight = %g", e.Weight())
	}
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Error("Reset should unseed")
	}
}

func TestEMAInvalidWeights(t *testing.T) {
	for _, w := range []float64{0, -0.1, 1.1} {
		if _, err := NewEMA(w); err == nil {
			t.Errorf("NewEMA(%g) should error", w)
		}
	}
	if _, err := NewEMA(1); err != nil {
		t.Errorf("NewEMA(1) should be valid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEMA(0) should panic")
		}
	}()
	MustEMA(0)
}

func TestEMAConvergence(t *testing.T) {
	// Feeding a constant must converge to that constant.
	e := MustEMA(0.3)
	e.Add(100)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Errorf("EMA did not converge: %g", e.Value())
	}
}

func TestEMABoundedByInputs(t *testing.T) {
	// Property: EMA value always lies within [min, max] of inputs seen.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		e := MustEMA(0.25)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := r.float64()*200 - 100
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			v := e.Add(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingBasics(t *testing.T) {
	r := MustRing(3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring len=%d cap=%d", r.Len(), r.Cap())
	}
	r.Push(1)
	r.Push(2)
	got := r.Values()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Values = %v", got)
	}
	r.Push(3)
	r.Push(4) // evicts 1
	got = r.Values()
	want := []float64{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Values = %v, want %v", got, want)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset should empty ring")
	}
}

func TestRingInvalid(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRing(-1) should panic")
		}
	}()
	MustRing(-1)
}

func TestRingOrderProperty(t *testing.T) {
	// Property: after pushing k samples into a ring of capacity c, Values
	// returns the last min(k, c) samples in order.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		c := 1 + int(r.uint64()%16)
		k := int(r.uint64() % 64)
		ring := MustRing(c)
		all := make([]float64, 0, k)
		for i := 0; i < k; i++ {
			x := r.float64()
			all = append(all, x)
			ring.Push(x)
		}
		want := all
		if len(all) > c {
			want = all[len(all)-c:]
		}
		got := ring.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

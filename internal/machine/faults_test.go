package machine

import (
	"errors"
	"testing"

	"dirigent/internal/fault"
)

func newFaultyMachine(t *testing.T, plan fault.Plan) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Faults = fault.NewInjector(plan, 17, nil)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetFreqLevelFaultFail(t *testing.T) {
	m := newFaultyMachine(t, fault.Plan{DVFSFail: 1})
	err := m.SetFreqLevel(0, 2)
	if !errors.Is(err, ErrActuation) {
		t.Fatalf("err = %v, want ErrActuation", err)
	}
	if l, _ := m.FreqLevel(0); l != m.MaxFreqLevel() {
		t.Errorf("failed transition must leave the level unchanged, got %d", l)
	}
	// Requesting the current level is a no-op, never an actuation: it must
	// succeed even under a plan that fails every transition.
	if err := m.SetFreqLevel(0, m.MaxFreqLevel()); err != nil {
		t.Errorf("no-op request drew a fault: %v", err)
	}
	if got := m.cfg.Faults.Count(fault.ClassDVFSFail); got != 1 {
		t.Errorf("DVFSFail count = %d, want 1", got)
	}
}

func TestSetFreqLevelFaultLatency(t *testing.T) {
	m := newFaultyMachine(t, fault.Plan{DVFSLate: 1})
	launch(t, m, "ferret", 0, 0)
	if err := m.SetFreqLevel(0, 3); err != nil {
		t.Fatal(err)
	}
	// The transition is accepted but pending: reads report the old level,
	// like a sysfs frequency mid-write.
	if l, _ := m.FreqLevel(0); l != m.MaxFreqLevel() {
		t.Fatalf("pending transition committed early: level %d", l)
	}
	// Re-requesting the pending level is a no-op (no second fault draw).
	if err := m.SetFreqLevel(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.cfg.Faults.Count(fault.ClassDVFSLate); got != 1 {
		t.Errorf("DVFSLate count = %d, want 1", got)
	}
	// Step past the 500 µs default latency (250 µs quanta): two quanta in
	// flight, committed at the start of the third.
	for i := 0; i < 3; i++ {
		m.Step()
	}
	if l, _ := m.FreqLevel(0); l != 3 {
		t.Errorf("transition did not commit after its latency: level %d", l)
	}
}

func TestPauseResumeFaults(t *testing.T) {
	m := newFaultyMachine(t, fault.Plan{PauseFail: 1})
	id := launch(t, m, "ferret", 0, 0)
	if err := m.Pause(id); !errors.Is(err, ErrActuation) {
		t.Fatalf("Pause err = %v, want ErrActuation", err)
	}
	if p, _ := m.Paused(id); p {
		t.Error("failed pause must leave the task running")
	}

	m2 := newFaultyMachine(t, fault.Plan{ResumeFail: 1})
	id2 := launch(t, m2, "ferret", 0, 0)
	if err := m2.Pause(id2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Resume(id2); !errors.Is(err, ErrActuation) {
		t.Fatalf("Resume err = %v, want ErrActuation", err)
	}
	if p, _ := m2.Paused(id2); !p {
		t.Error("failed resume must leave the task paused")
	}
	// Pausing an already-paused task is a no-op, not an actuation.
	if err := m2.Pause(id2); err != nil {
		t.Errorf("no-op pause drew a fault: %v", err)
	}
}

func TestFaultFreeMachineHasNoPendingState(t *testing.T) {
	m := newTestMachine(t)
	if m.pendingFreq != nil {
		t.Error("pendingFreq must stay nil without an injector (zero-cost opt-in)")
	}
	if err := m.SetFreqLevel(0, 1); err != nil {
		t.Fatal(err)
	}
	if l, _ := m.FreqLevel(0); l != 1 {
		t.Errorf("immediate commit expected, level %d", l)
	}
}

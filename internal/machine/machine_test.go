package machine

import (
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/sim"
	"dirigent/internal/workload"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func launch(t *testing.T, m *Machine, bench string, core int, class cache.ClassID) int {
	t.Helper()
	prog := workload.MustProgram(workload.MustByName(bench))
	id, err := m.Launch(bench, prog, core, class)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// runUntilCompletions steps until task has completed n executions, with a
// simulated-time safety limit, returning completion times.
func runUntilCompletions(t *testing.T, m *Machine, task, n int, limit time.Duration) []sim.Time {
	t.Helper()
	var times []sim.Time
	for len(times) < n {
		if m.Now() > sim.Time(limit) {
			t.Fatalf("task %d: only %d/%d completions within %v", task, len(times), n, limit)
		}
		for _, c := range m.Step() {
			if c.Task == task {
				times = append(times, c.At)
			}
		}
	}
	return times
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Cores: 6},
		{Cores: 6, FreqLevelsGHz: []float64{2.0, 1.2}, Quantum: time.Millisecond, Cache: cache.DefaultConfig()},
		{Cores: 6, FreqLevelsGHz: []float64{0}, Quantum: time.Millisecond, Cache: cache.DefaultConfig()},
		{Cores: 6, FreqLevelsGHz: []float64{1.2, 1.2}, Quantum: time.Millisecond, Cache: cache.DefaultConfig()},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	cfg := DefaultConfig()
	cfg.Quantum = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero quantum should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Cache.Ways = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad cache config should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Memory.PeakBandwidth = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad memory config should be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestLaunchAndTaskAccessors(t *testing.T) {
	m := newTestMachine(t)
	id := launch(t, m, "ferret", 0, 0)
	if core, err := m.TaskCore(id); err != nil || core != 0 {
		t.Errorf("TaskCore = %d, %v", core, err)
	}
	if name, err := m.TaskName(id); err != nil || name != "ferret" {
		t.Errorf("TaskName = %q, %v", name, err)
	}
	if p, err := m.Program(id); err != nil || p.Benchmark().Name != "ferret" {
		t.Errorf("Program = %v, %v", p, err)
	}
	if got := m.Tasks(); len(got) != 1 || got[0] != id {
		t.Errorf("Tasks = %v", got)
	}
	// Core busy.
	if _, err := m.Launch("x", workload.MustProgram(workload.MustByName("namd")), 0, 0); err == nil {
		t.Error("double-launch on core 0 should error")
	}
	// Bad core.
	if _, err := m.Launch("x", workload.MustProgram(workload.MustByName("namd")), 9, 0); err == nil {
		t.Error("bad core should error")
	}
	// Nil program.
	if _, err := m.Launch("x", nil, 1, 0); err == nil {
		t.Error("nil program should error")
	}
	// Bad class.
	if _, err := m.Launch("x", workload.MustProgram(workload.MustByName("namd")), 1, cache.ClassID(99)); err == nil {
		t.Error("bad class should error")
	}
	// Kill frees the core.
	if err := m.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(id); err == nil {
		t.Error("double kill should error")
	}
	if _, err := m.Launch("y", workload.MustProgram(workload.MustByName("namd")), 0, 0); err != nil {
		t.Errorf("core should be free after Kill: %v", err)
	}
}

func TestUnknownTaskErrors(t *testing.T) {
	m := newTestMachine(t)
	if err := m.Pause(42); err == nil {
		t.Error("Pause(unknown) should error")
	}
	if err := m.Resume(42); err == nil {
		t.Error("Resume(unknown) should error")
	}
	if _, err := m.Paused(42); err == nil {
		t.Error("Paused(unknown) should error")
	}
	if _, err := m.TaskCore(42); err == nil {
		t.Error("TaskCore(unknown) should error")
	}
	if _, err := m.TaskName(42); err == nil {
		t.Error("TaskName(unknown) should error")
	}
	if _, err := m.Program(42); err == nil {
		t.Error("Program(unknown) should error")
	}
	if err := m.SetProgram(42, nil); err == nil {
		t.Error("SetProgram(unknown) should error")
	}
	if err := m.SetClass(42, 0); err == nil {
		t.Error("SetClass(unknown) should error")
	}
}

func TestFreqControls(t *testing.T) {
	m := newTestMachine(t)
	if m.MaxFreqLevel() != 8 {
		t.Errorf("MaxFreqLevel = %d, want 8 (9 steps)", m.MaxFreqLevel())
	}
	if l, _ := m.FreqLevel(0); l != 8 {
		t.Errorf("cores should start at max level, got %d", l)
	}
	if f, _ := m.FreqGHz(0); f != 2.0 {
		t.Errorf("FreqGHz = %g", f)
	}
	if err := m.SetFreqLevel(0, 0); err != nil {
		t.Fatal(err)
	}
	if f, _ := m.FreqGHz(0); f != 1.2 {
		t.Errorf("FreqGHz after set = %g", f)
	}
	if err := m.SetFreqLevel(0, 99); err == nil {
		t.Error("bad level should error")
	}
	if err := m.SetFreqLevel(9, 0); err == nil {
		t.Error("bad core should error")
	}
	if _, err := m.FreqLevel(-1); err == nil {
		t.Error("bad core should error")
	}
	if _, err := m.FreqGHz(-1); err == nil {
		t.Error("bad core should error")
	}
}

func TestStandaloneFGExecutionTimes(t *testing.T) {
	// Calibration against Fig. 4: standalone times span ~0.5–1.6 s with
	// fluidanimate fastest and streamcluster slowest.
	want := map[string][2]float64{
		"fluidanimate":  {0.35, 0.75},
		"raytrace":      {0.40, 0.85},
		"bodytrack":     {0.55, 1.10},
		"ferret":        {0.85, 1.55},
		"streamcluster": {1.20, 2.10},
	}
	got := map[string]float64{}
	for name, bounds := range want {
		m := newTestMachine(t)
		id := launch(t, m, name, 0, 0)
		times := runUntilCompletions(t, m, id, 2, 10*time.Second)
		// Use the second execution: the first includes cache warmup.
		exec := (times[1] - times[0]).Seconds()
		got[name] = exec
		if exec < bounds[0] || exec > bounds[1] {
			t.Errorf("%s standalone exec = %.3fs, want within [%.2f, %.2f]", name, exec, bounds[0], bounds[1])
		}
	}
	if got["streamcluster"] <= got["ferret"] || got["ferret"] <= got["bodytrack"] ||
		got["bodytrack"] <= got["fluidanimate"] {
		t.Errorf("standalone ordering wrong: %v", got)
	}
}

func TestContentionSlowsFGAndRaisesMPKI(t *testing.T) {
	// Fig. 4's contended bars: running 5 bwaves alongside ferret must
	// increase both execution time and MPKI.
	alone := newTestMachine(t)
	idA := launch(t, alone, "ferret", 0, 0)
	timesA := runUntilCompletions(t, alone, idA, 3, 20*time.Second)
	execAlone := (timesA[2] - timesA[1]).Seconds()
	mpkiAlone := alone.Counters().Task(idA).MPKI()

	cont := newTestMachine(t)
	idC := launch(t, cont, "ferret", 0, 0)
	for c := 1; c < 6; c++ {
		prog := workload.MustProgram(workload.MustByName("bwaves"))
		if _, err := cont.Launch("bwaves", prog, c, 0); err != nil {
			t.Fatal(err)
		}
	}
	timesC := runUntilCompletions(t, cont, idC, 3, 30*time.Second)
	execCont := (timesC[2] - timesC[1]).Seconds()
	mpkiCont := cont.Counters().Task(idC).MPKI()

	if execCont < execAlone*1.15 {
		t.Errorf("contention barely slowed ferret: alone %.3fs, contended %.3fs", execAlone, execCont)
	}
	if execCont > execAlone*3.5 {
		t.Errorf("contention implausibly severe: alone %.3fs, contended %.3fs", execAlone, execCont)
	}
	if mpkiCont < mpkiAlone*1.3 {
		t.Errorf("contention should raise MPKI: alone %.3f, contended %.3f", mpkiAlone, mpkiCont)
	}
}

func TestDVFSThrottlingSlowsTask(t *testing.T) {
	fast := newTestMachine(t)
	idF := launch(t, fast, "fluidanimate", 0, 0)
	tF := runUntilCompletions(t, fast, idF, 2, 10*time.Second)
	execF := (tF[1] - tF[0]).Seconds()

	slow := newTestMachine(t)
	idS := launch(t, slow, "fluidanimate", 0, 0)
	if err := slow.SetFreqLevel(0, 0); err != nil { // 1.2 GHz
		t.Fatal(err)
	}
	tS := runUntilCompletions(t, slow, idS, 2, 10*time.Second)
	execS := (tS[1] - tS[0]).Seconds()

	// Compute-bound task: 2.0/1.2 = 1.67× slowdown expected, minus the
	// constant memory part.
	if execS < execF*1.3 || execS > execF*1.8 {
		t.Errorf("DVFS slowdown = %.2f×, want ~1.3–1.8×", execS/execF)
	}
}

func TestPauseStopsProgress(t *testing.T) {
	m := newTestMachine(t)
	id := launch(t, m, "ferret", 0, 0)
	m.Run(50*time.Millisecond, nil)
	prog, _ := m.Program(id)
	before := prog.Executed()
	if before == 0 {
		t.Fatal("task should have progressed")
	}
	if err := m.Pause(id); err != nil {
		t.Fatal(err)
	}
	if p, _ := m.Paused(id); !p {
		t.Error("Paused should report true")
	}
	m.Run(100*time.Millisecond, nil)
	if prog.Executed() != before {
		t.Error("paused task should not progress")
	}
	instrBefore := m.Counters().Task(id).Instructions
	if err := m.Resume(id); err != nil {
		t.Fatal(err)
	}
	m.Run(150*time.Millisecond, nil)
	if prog.Executed() <= before {
		t.Error("resumed task should progress")
	}
	if m.Counters().Task(id).Instructions <= instrBefore {
		t.Error("resumed task should accrue counters")
	}
}

func TestPausingBGRemovesInterference(t *testing.T) {
	m := newTestMachine(t)
	fg := launch(t, m, "streamcluster", 0, 0)
	var bgs []int
	for c := 1; c < 6; c++ {
		prog := workload.MustProgram(workload.MustByName("lbm"))
		id, err := m.Launch("lbm", prog, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		bgs = append(bgs, id)
	}
	t1 := runUntilCompletions(t, m, fg, 2, 30*time.Second)
	contended := (t1[1] - t1[0]).Seconds()
	for _, id := range bgs {
		if err := m.Pause(id); err != nil {
			t.Fatal(err)
		}
	}
	t2 := runUntilCompletions(t, m, fg, 2, time.Minute)
	relieved := (t2[1] - t2[0]).Seconds()
	if relieved > contended*0.85 {
		t.Errorf("pausing all BG should speed FG: contended %.3fs, relieved %.3fs", contended, relieved)
	}
}

func TestOverheadChargingStealsTime(t *testing.T) {
	base := newTestMachine(t)
	idB := launch(t, base, "namd", 0, 0)
	base.Run(200*time.Millisecond, nil)
	instrBase := base.Counters().Task(idB).Instructions

	loaded := newTestMachine(t)
	idL := launch(t, loaded, "namd", 0, 0)
	// Steal 100µs every 5ms ≈ 2% of the core.
	tick := sim.MustTicker(5 * time.Millisecond)
	for loaded.Now() < sim.Time(200*time.Millisecond) {
		loaded.Step()
		if tick.Fire(loaded.Now()) {
			if err := loaded.ChargeOverhead(0, 100*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	instrLoaded := loaded.Counters().Task(idL).Instructions
	ratio := instrLoaded / instrBase
	if ratio > 0.995 || ratio < 0.95 {
		t.Errorf("overhead theft ratio = %.4f, want ~0.98", ratio)
	}
	if err := loaded.ChargeOverhead(0, -time.Second); err == nil {
		t.Error("negative overhead should error")
	}
	if err := loaded.ChargeOverhead(99, time.Second); err == nil {
		t.Error("bad core should error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, float64) {
		m := newTestMachine(t)
		fg := launch(t, m, "ferret", 0, 0)
		for c := 1; c < 4; c++ {
			prog := workload.MustProgram(workload.MustByName("rs"))
			if _, err := m.Launch("rs", prog, c, 0); err != nil {
				t.Fatal(err)
			}
		}
		times := runUntilCompletions(t, m, fg, 3, 30*time.Second)
		return times[2], m.Counters().Total().Instructions
	}
	t1, i1 := run()
	t2, i2 := run()
	if t1 != t2 || i1 != i2 {
		t.Errorf("same seed must reproduce exactly: (%v,%g) vs (%v,%g)", t1, i1, t2, i2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) sim.Time {
		cfg := DefaultConfig()
		cfg.Seed = seed
		m := MustNew(cfg)
		prog := workload.MustProgram(workload.MustByName("ferret"))
		fg, err := m.Launch("ferret", prog, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg := workload.MustProgram(workload.MustByName("rs"))
		if _, err := m.Launch("rs", bg, 1, 0); err != nil {
			t.Fatal(err)
		}
		return runUntilCompletions(t, m, fg, 2, 30*time.Second)[1]
	}
	if run(1) == run(99) {
		t.Error("different seeds should perturb completion times")
	}
}

func TestFreqResidencyAccounting(t *testing.T) {
	m := newTestMachine(t)
	launch(t, m, "namd", 0, 0)
	m.Run(10*time.Millisecond, nil)
	if err := m.SetFreqLevel(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(30*time.Millisecond, nil)
	res, err := m.FreqResidency(0)
	if err != nil {
		t.Fatal(err)
	}
	if res[8] != 10*time.Millisecond {
		t.Errorf("residency at max = %v, want 10ms", res[8])
	}
	if res[0] != 20*time.Millisecond {
		t.Errorf("residency at min = %v, want 20ms", res[0])
	}
	if _, err := m.FreqResidency(-1); err == nil {
		t.Error("bad core should error")
	}
}

func TestSetProgramSwapsWorkload(t *testing.T) {
	m := newTestMachine(t)
	id := launch(t, m, "lbm", 0, 0)
	next := workload.MustProgram(workload.MustByName("namd"))
	if err := m.SetProgram(id, next); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Program(id)
	if p.Benchmark().Name != "namd" {
		t.Errorf("program after swap = %s", p.Benchmark().Name)
	}
	if err := m.SetProgram(id, nil); err == nil {
		t.Error("nil program should error")
	}
}

func TestMemoryUtilizationUnderLoad(t *testing.T) {
	m := newTestMachine(t)
	for c := 0; c < 6; c++ {
		prog := workload.MustProgram(workload.MustByName("lbm"))
		if _, err := m.Launch("lbm", prog, c, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(500*time.Millisecond, nil)
	u := m.LastUtilization()
	if u < 0.3 {
		t.Errorf("six lbm streamers should load memory: U = %.3f", u)
	}
	empty := newTestMachine(t)
	empty.Run(10*time.Millisecond, nil)
	if empty.LastUtilization() != 0 {
		t.Errorf("idle machine utilization = %g", empty.LastUtilization())
	}
}

func TestRunCallback(t *testing.T) {
	m := newTestMachine(t)
	launch(t, m, "fluidanimate", 0, 0)
	steps := 0
	m.Run(time.Millisecond, func(now sim.Time, done []Completion) { steps++ })
	want := int(time.Millisecond / m.Config().Quantum)
	if steps != want {
		t.Errorf("callback fired %d times over 1ms, want %d", steps, want)
	}
}

func TestSetClassMovesTask(t *testing.T) {
	m := newTestMachine(t)
	cl := m.LLC().DefineClass()
	if err := m.LLC().SetPartition(map[cache.ClassID]int{0: 10, cl: 10}); err != nil {
		t.Fatal(err)
	}
	id := launch(t, m, "ferret", 0, 0)
	// Warm in class 0.
	m.Run(200*time.Millisecond, nil)
	before := m.LLC().Occupancy(id)
	if before <= 0 {
		t.Fatal("no occupancy accrued")
	}
	if err := m.SetClass(id, cl); err != nil {
		t.Fatal(err)
	}
	// Occupancy persists across the class move (data does not vanish).
	if got := m.LLC().Occupancy(id); got != before {
		t.Errorf("occupancy changed on class move: %g -> %g", before, got)
	}
	if err := m.SetClass(id, cache.ClassID(77)); err == nil {
		t.Error("unknown class should error")
	}
}

package machine

import (
	"math"
	"reflect"
	"testing"

	"dirigent/internal/mem"
	"dirigent/internal/workload"
)

func TestClassRegistry(t *testing.T) {
	names := ClassNames()
	want := []string{"biglittle", "dual-socket", "quad-low", "xeon-e5"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ClassNames() = %v, want %v", names, want)
	}
	for _, n := range names {
		cl, err := LookupClass(n)
		if err != nil {
			t.Fatalf("LookupClass(%q): %v", n, err)
		}
		if cl.Name != n || cl.Description == "" || cl.Config == nil {
			t.Errorf("class %q incomplete: %+v", n, cl)
		}
		cfg, err := ClassConfig(n)
		if err != nil {
			t.Fatalf("ClassConfig(%q): %v", n, err)
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("class %q config does not build: %v", n, err)
		}
	}
	if _, err := ClassConfig("warehouse-42"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if !ValidClass("") || !ValidClass(DefaultClass) || ValidClass("nope") {
		t.Fatal("ValidClass wrong")
	}
}

func TestDefaultClassIsDefaultConfig(t *testing.T) {
	for _, name := range []string{"", DefaultClass} {
		cfg, err := ClassConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cfg, DefaultConfig()) {
			t.Fatalf("ClassConfig(%q) != DefaultConfig()", name)
		}
	}
}

func TestCoreSetValidation(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"count sum mismatch", func(c *Config) { c.CoreSets = []CoreSet{{Count: 4}} }},
		{"zero count", func(c *Config) { c.CoreSets = []CoreSet{{Count: 0}, {Count: 6}} }},
		{"negative freq scale", func(c *Config) { c.CoreSets = []CoreSet{{Count: 6, FreqScale: -1}} }},
		{"negative ipc scale", func(c *Config) { c.CoreSets = []CoreSet{{Count: 6, IPCScale: -0.5}} }},
		{"socket out of range", func(c *Config) { c.CoreSets = []CoreSet{{Count: 6, Socket: 1}} }},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: invalid core sets accepted", c.name)
		}
	}
}

// TestHomogeneousCoreSetByteIdentity pins the tentpole's compatibility
// contract at the machine level: an explicit all-default core set runs the
// exact same float operations as no core sets at all.
func TestHomogeneousCoreSetByteIdentity(t *testing.T) {
	build := func(sets []CoreSet) *Machine {
		cfg := DefaultConfig()
		cfg.CoreSets = sets
		m := MustNew(cfg)
		fg := workload.MustProgram(workload.MustByName("ferret"))
		bg := workload.MustProgram(workload.MustByName("rs"))
		if _, err := m.Launch("fg", fg, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Launch("bg", bg, 3, 0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build(nil)
	b := build([]CoreSet{{Count: 6, FreqScale: 1, IPCScale: 1, Socket: 0}})
	for i := 0; i < 5000; i++ {
		a.Step()
		b.Step()
		if ua, ub := a.LastUtilization(), b.LastUtilization(); ua != ub {
			t.Fatalf("step %d: utilization diverged: %v vs %v", i, ua, ub)
		}
	}
	ca, cb := a.Counters().Task(1), b.Counters().Task(1)
	if ca.Instructions != cb.Instructions || ca.LLCMisses != cb.LLCMisses {
		t.Fatalf("counters diverged: %+v vs %+v", ca, cb)
	}
}

func TestHeterogeneousFrequencyAndIPC(t *testing.T) {
	cfg, err := ClassConfig("biglittle")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg)
	top := m.MaxFreqLevel()

	big, err := m.CoreMaxFreqGHz(0)
	if err != nil {
		t.Fatal(err)
	}
	little, err := m.CoreMaxFreqGHz(2)
	if err != nil {
		t.Fatal(err)
	}
	if big != 2.0 {
		t.Fatalf("big core nominal = %v, want 2.0", big)
	}
	if math.Abs(little-1.5) > 1e-12 {
		t.Fatalf("little core nominal = %v, want 1.5", little)
	}
	// Level indices are shared: both report the same level but different
	// effective clocks.
	fb, _ := m.FreqGHz(0)
	fl, _ := m.FreqGHz(2)
	lb, _ := m.FreqLevel(0)
	ll, _ := m.FreqLevel(2)
	if lb != top || ll != top {
		t.Fatalf("cores not at top level: %d, %d", lb, ll)
	}
	if fb <= fl {
		t.Fatalf("big core (%v GHz) not faster than little (%v GHz)", fb, fl)
	}

	// A compute-bound benchmark on a little core retires fewer
	// instructions per quantum than on a big core: both slower clock and
	// scaled-down IPC.
	prog := func() *workload.Program { return workload.MustProgram(workload.MustByName("namd")) }
	if _, err := m.Launch("big", prog(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("little", prog(), 2, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m.Step()
	}
	bigInstr := m.Counters().Task(1).Instructions
	littleInstr := m.Counters().Task(2).Instructions
	// 0.75x clock * 0.6x IPC = 0.45x throughput for a purely core-bound
	// task; allow the memory-bound component some slack.
	ratio := littleInstr / bigInstr
	if ratio > 0.6 || ratio < 0.3 {
		t.Fatalf("little/big instruction ratio = %.3f, want ~0.45", ratio)
	}
}

func TestMultiSocketIsolation(t *testing.T) {
	cfg, err := ClassConfig("dual-socket")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg)
	if s, _ := m.CoreSocket(0); s != 0 {
		t.Fatalf("core 0 socket = %d, want 0", s)
	}
	if s, _ := m.CoreSocket(4); s != 1 {
		t.Fatalf("core 4 socket = %d, want 1", s)
	}
	// Saturate socket 0 with memory-bound tasks; socket 1 idles.
	for c := 0; c < 4; c++ {
		prog := workload.MustProgram(workload.MustByName("lbm"))
		if _, err := m.Launch("mem", prog, c, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		m.Step()
	}
	u0 := m.Memory().LastSocketUtilization(0)
	u1 := m.Memory().LastSocketUtilization(1)
	if u0 < 0.5 {
		t.Fatalf("socket 0 utilization %.3f, want saturated", u0)
	}
	if u1 != 0 {
		t.Fatalf("socket 1 utilization %.3f, want 0 (isolated)", u1)
	}
	if got := m.Memory().LastUtilization(); got != u0 {
		t.Fatalf("headline utilization %v != bottleneck socket %v", got, u0)
	}
}

// TestMultiSocketIsolationHelpsVictim runs a latency-sensitive task against
// memory hogs twice: hogs on the same socket, then hogs on the other
// socket. Cross-socket placement must remove the interference.
func TestMultiSocketIsolationHelpsVictim(t *testing.T) {
	run := func(hogCores []int) float64 {
		cfg, err := ClassConfig("dual-socket")
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(cfg)
		victim := workload.MustProgram(workload.MustByName("ferret"))
		id, err := m.Launch("victim", victim, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range hogCores {
			prog := workload.MustProgram(workload.MustByName("lbm"))
			if _, err := m.Launch("hog", prog, c, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3000; i++ {
			m.Step()
		}
		return m.Counters().Task(id).Instructions
	}
	same := run([]int{1, 2, 3})
	cross := run([]int{5, 6, 7})
	if cross <= same*1.02 {
		t.Fatalf("cross-socket victim progress %.0f not better than same-socket %.0f", cross, same)
	}
}

func TestMemSocketValidation(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.Sockets = []mem.Socket{{PeakBandwidth: 1e9}, {PeakBandwidth: 0}}
	if _, err := mem.New(cfg); err == nil {
		t.Fatal("zero-bandwidth socket accepted")
	}
}

func TestQuadLowLadder(t *testing.T) {
	cfg, err := ClassConfig("quad-low")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg)
	if m.NumCores() != 4 {
		t.Fatalf("cores = %d, want 4", m.NumCores())
	}
	if m.MaxFreqLevel() != 4 {
		t.Fatalf("max level = %d, want 4 (5-level ladder)", m.MaxFreqLevel())
	}
	if f, _ := m.CoreMaxFreqGHz(0); f != 1.8 {
		t.Fatalf("top frequency = %v, want 1.8", f)
	}
}

package machine

import (
	"bytes"
	"math"
	"testing"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// tinyFG is a jitter-free foreground benchmark whose single execution
// retires in the third 250 µs quantum at 2 GHz (500 k instructions per
// quantum at BaseCPI 1), giving tests precise control over completion
// timing.
func tinyFG() *workload.Benchmark {
	return &workload.Benchmark{
		Name: "tinyfg",
		Kind: workload.Foreground,
		Phases: []workload.Phase{
			{Name: "p", Instructions: 1.3e6, BaseCPI: 1},
		},
	}
}

// buildPair returns two identically-seeded, identically-loaded machines:
// one on the legacy per-quantum engine, one on the skip-ahead engine.
func buildPair(t *testing.T) (compat, fast *Machine, tasks []int) {
	t.Helper()
	mk := func(compatStepping bool) (*Machine, []int) {
		cfg := DefaultConfig()
		cfg.CompatStepping = compatStepping
		m := MustNew(cfg)
		bgClass := m.LLC().DefineClass()
		if err := m.LLC().SetPartition(map[cache.ClassID]int{0: 12, bgClass: 8}); err != nil {
			t.Fatal(err)
		}
		var ids []int
		for i, spec := range []struct {
			bench string
			core  int
			class cache.ClassID
		}{
			{"ferret", 0, 0},
			{"bwaves", 1, bgClass},
			{"rs", 2, bgClass},
			{"lbm", 3, bgClass},
		} {
			prog := workload.MustProgram(workload.MustByName(spec.bench))
			prog.SetOffset(float64(i) * 1e7)
			id, err := m.Launch(spec.bench, prog, spec.core, spec.class)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		return m, ids
	}
	compat, tasks = mk(true)
	fast, fastTasks := mk(false)
	for i := range tasks {
		if tasks[i] != fastTasks[i] {
			t.Fatalf("task handle mismatch: %v vs %v", tasks, fastTasks)
		}
	}
	return compat, fast, tasks
}

func f64Equal(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestStepEnginesEquivalent drives the same seeded scenario through the
// legacy engine quantum-by-quantum and through StepN with varying batch
// sizes — interleaving DVFS requests, pauses/resumes, and runtime-overhead
// charges at identical simulated instants — and requires bit-identical
// machine state, counters, completions, telemetry aggregates, and JSONL
// event streams. This is the contract the skip-ahead fast path must keep:
// an observational no-op.
func TestStepEnginesEquivalent(t *testing.T) {
	compat, fast, tasks := buildPair(t)

	var compatTrace, fastTrace bytes.Buffer
	compatJSONL := telemetry.NewJSONL(&compatTrace).Include(telemetry.KindQuantumStep)
	fastJSONL := telemetry.NewJSONL(&fastTrace).Include(telemetry.KindQuantumStep)
	compatAgg, fastAgg := telemetry.NewAggregator(), telemetry.NewAggregator()
	compat.SetRecorder(telemetry.Tee(compatAgg, compatJSONL))
	fast.SetRecorder(telemetry.Tee(fastAgg, fastJSONL))

	// actuate applies the same deterministic control schedule to one machine
	// at batch boundary i.
	actuate := func(m *Machine, i int) {
		if i%5 == 2 {
			if err := m.SetFreqLevel(1, i%9); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 3 {
			if err := m.Pause(tasks[2]); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 5 {
			if err := m.Resume(tasks[2]); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if err := m.ChargeOverhead(3, 40*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i := 0; i < 400; i++ {
		actuate(compat, i)
		actuate(fast, i)
		max := i%13 + 1
		fastDone, n := fast.StepN(max)
		if n < 1 || n > max {
			t.Fatalf("batch %d: StepN advanced %d quanta, want 1..%d", i, n, max)
		}
		var compatDone []Completion
		for q := 0; q < n; q++ {
			done := compat.Step()
			if len(done) > 0 && q != n-1 {
				t.Fatalf("batch %d: compat completed at quantum %d/%d but StepN did not stop there", i, q+1, n)
			}
			compatDone = append(compatDone, done...)
		}
		if compat.Now() != fast.Now() {
			t.Fatalf("batch %d: clocks diverged: %v vs %v", i, compat.Now(), fast.Now())
		}
		if len(compatDone) != len(fastDone) {
			t.Fatalf("batch %d: completions diverged: %v vs %v", i, compatDone, fastDone)
		}
		for j := range compatDone {
			if compatDone[j] != fastDone[j] {
				t.Fatalf("batch %d: completion %d diverged: %v vs %v", i, j, compatDone[j], fastDone[j])
			}
		}
	}

	if !f64Equal(compat.LastUtilization(), fast.LastUtilization()) {
		t.Errorf("memory utilization diverged: %g vs %g", compat.LastUtilization(), fast.LastUtilization())
	}
	for _, id := range tasks {
		cs := compat.Counters().Task(id)
		fs := fast.Counters().Task(id)
		if !f64Equal(cs.Instructions, fs.Instructions) || !f64Equal(cs.Cycles, fs.Cycles) ||
			!f64Equal(cs.LLCAccesses, fs.LLCAccesses) || !f64Equal(cs.LLCMisses, fs.LLCMisses) {
			t.Errorf("task %d counters diverged: %+v vs %+v", id, cs, fs)
		}
	}
	for c := 0; c < compat.NumCores(); c++ {
		cr, err := compat.FreqResidency(c)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fast.FreqResidency(c)
		if err != nil {
			t.Fatal(err)
		}
		for l := range cr {
			if cr[l] != fr[l] {
				t.Errorf("core %d level %d residency diverged: %v vs %v", c, l, cr[l], fr[l])
			}
		}
	}
	if compatAgg.Quanta() != fastAgg.Quanta() {
		t.Errorf("aggregated quanta diverged: %d vs %d", compatAgg.Quanta(), fastAgg.Quanta())
	}
	if !f64Equal(compatAgg.Instructions(), fastAgg.Instructions()) {
		t.Errorf("aggregated instructions diverged: %g vs %g", compatAgg.Instructions(), fastAgg.Instructions())
	}
	if !f64Equal(compatAgg.LLCMisses(), fastAgg.LLCMisses()) {
		t.Errorf("aggregated LLC misses diverged: %g vs %g", compatAgg.LLCMisses(), fastAgg.LLCMisses())
	}
	for c := 0; c < compat.NumCores(); c++ {
		cr, fr := compatAgg.FreqResidency(c), fastAgg.FreqResidency(c)
		for l := range cr {
			if cr[l] != fr[l] {
				t.Errorf("aggregated core %d level %d residency diverged: %v vs %v", c, l, cr[l], fr[l])
			}
		}
	}
	if !bytes.Equal(compatTrace.Bytes(), fastTrace.Bytes()) {
		t.Errorf("JSONL event streams diverged (%d vs %d bytes)", compatTrace.Len(), fastTrace.Len())
	}
	if compatTrace.Len() == 0 {
		t.Error("JSONL trace empty; equivalence vacuous")
	}
}

// TestStepNEarlyStop pins StepN's completion semantics: a batch stops at the
// quantum that produces a completion, reporting exactly how far it got.
func TestStepNEarlyStop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowJitterSigma = 0
	m := MustNew(cfg)
	id, err := m.Launch("tinyfg", workload.MustProgram(tinyFG()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done, n := m.StepN(10)
	if n != 3 {
		t.Fatalf("StepN advanced %d quanta, want 3 (completion in the third)", n)
	}
	if len(done) != 1 || done[0].Task != id {
		t.Fatalf("completions = %v, want one for task %d", done, id)
	}
	if want := sim.Time(3 * cfg.Quantum); done[0].At != want || m.Now() != want {
		t.Fatalf("completion at %v (now %v), want %v", done[0].At, m.Now(), want)
	}
}

// TestRunUnalignedUntil pins Run's ceil coverage: an until between quantum
// boundaries still runs the covering quantum in full, and completions that
// land in that final partial quantum are delivered, not dropped.
func TestRunUnalignedUntil(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowJitterSigma = 0
	m := MustNew(cfg)
	id, err := m.Launch("tinyfg", workload.MustProgram(tinyFG()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The completion lands in the third quantum (500–750 µs); until cuts
	// into that quantum.
	until := sim.Time(2*cfg.Quantum) + sim.Time(cfg.Quantum)/2
	var got []Completion
	steps := 0
	m.Run(until, func(now sim.Time, done []Completion) {
		steps++
		got = append(got, done...)
	})
	if want := sim.Time(3 * cfg.Quantum); m.Now() != want {
		t.Fatalf("Run stopped at %v, want quantum boundary %v", m.Now(), want)
	}
	if steps != 3 {
		t.Fatalf("Run stepped %d quanta, want 3", steps)
	}
	if len(got) != 1 || got[0].Task != id || got[0].At != sim.Time(3*cfg.Quantum) {
		t.Fatalf("final-quantum completions = %v, want one for task %d at %v", got, id, sim.Time(3*cfg.Quantum))
	}
}

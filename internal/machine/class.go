package machine

import (
	"fmt"
	"sort"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/mem"
)

// DefaultClass is the machine class every existing experiment runs on: the
// paper's 6-core Xeon E5-2618L v3, i.e. DefaultConfig.
const DefaultClass = "xeon-e5"

// Class is a named machine shape: a description plus a Config factory.
// Classes let scenarios and sweeps pick hardware declaratively while the
// machine itself stays a plain Config.
type Class struct {
	// Name is the registry key (lowercase, dash-separated).
	Name string
	// Description is a one-line summary for reports and docs.
	Description string
	// Config builds a fresh configuration for this class.
	Config func() Config
}

// classes is the built-in registry. Additions here automatically become
// valid scenario machine classes and ClassNames entries.
var classes = map[string]Class{
	DefaultClass: {
		Name:        DefaultClass,
		Description: "paper evaluation platform: 6 cores, 9 DVFS levels 1.2-2.0 GHz, 15 MB/20-way LLC, 22 GB/s",
		Config:      DefaultConfig,
	},
	"quad-low": {
		Name:        "quad-low",
		Description: "small 4-core part: 5 DVFS levels 1.0-1.8 GHz, 8 MB/16-way LLC, 12 GB/s",
		Config: func() Config {
			cfg := DefaultConfig()
			cfg.Cores = 4
			cfg.FreqLevelsGHz = []float64{1.0, 1.2, 1.4, 1.6, 1.8}
			cfg.Cache = cache.Config{Bytes: 8 << 20, Ways: 16}
			cfg.Memory = mem.Config{
				PeakBandwidth: 12e9,
				IdleLatency:   95 * time.Nanosecond,
				MaxStretch:    20,
			}
			return cfg
		},
	},
	"biglittle": {
		Name:        "biglittle",
		Description: "heterogeneous 2 big + 6 little cores (little at 0.75x clock, 0.6x IPC), 12 MB/16-way LLC, 18 GB/s",
		Config: func() Config {
			cfg := DefaultConfig()
			cfg.Cores = 8
			// Big cores first: the scheduler places FG streams on the
			// lowest cores, so latency-critical work lands on big cores
			// and the BG batch work shares the little cores.
			cfg.CoreSets = []CoreSet{
				{Count: 2},
				{Count: 6, FreqScale: 0.75, IPCScale: 0.6},
			}
			cfg.Cache = cache.Config{Bytes: 12 << 20, Ways: 16}
			cfg.Memory = mem.Config{
				PeakBandwidth: 18e9,
				IdleLatency:   90 * time.Nanosecond,
				MaxStretch:    20,
			}
			return cfg
		},
	},
	"dual-socket": {
		Name:        "dual-socket",
		Description: "2 sockets x 4 cores with per-socket 12 GB/s bandwidth pools, 20 MB/20-way LLC",
		Config: func() Config {
			cfg := DefaultConfig()
			cfg.Cores = 8
			cfg.CoreSets = []CoreSet{
				{Count: 4, Socket: 0},
				{Count: 4, Socket: 1},
			}
			cfg.Cache = cache.Config{Bytes: 20 << 20, Ways: 20}
			cfg.Memory = mem.Config{
				PeakBandwidth: 24e9, // aggregate, used only as the shared-pool fallback
				IdleLatency:   95 * time.Nanosecond,
				MaxStretch:    20,
				Sockets:       []mem.Socket{{PeakBandwidth: 12e9}, {PeakBandwidth: 12e9}},
			}
			return cfg
		},
	},
}

// ClassNames returns the registered class names, sorted.
func ClassNames() []string {
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupClass returns a class by name. The empty name means DefaultClass.
func LookupClass(name string) (Class, error) {
	if name == "" {
		name = DefaultClass
	}
	cl, ok := classes[name]
	if !ok {
		return Class{}, fmt.Errorf("machine: unknown class %q (valid: %v)", name, ClassNames())
	}
	return cl, nil
}

// ClassConfig returns a fresh Config for the named class ("" means the
// default xeon-e5). The default class is exactly DefaultConfig, so code
// that resolves "" through here behaves byte-identically to code that
// called DefaultConfig directly.
func ClassConfig(name string) (Config, error) {
	cl, err := LookupClass(name)
	if err != nil {
		return Config{}, err
	}
	return cl.Config(), nil
}

// ValidClass reports whether name resolves to a registered class ("" is
// valid: the default).
func ValidClass(name string) bool {
	if name == "" {
		return true
	}
	_, ok := classes[name]
	return ok
}

package machine

import (
	"testing"

	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// benchMachine builds a fully loaded default machine: one FG task and five
// BG tasks, one per core, matching the paper's standard collocation shape.
func benchMachine(b *testing.B) *Machine {
	b.Helper()
	m := MustNew(DefaultConfig())
	fg := workload.FG()[0]
	if _, err := m.Launch(fg.Name, workload.MustProgram(fg), 0, 0); err != nil {
		b.Fatal(err)
	}
	bg := workload.SingleBG()[0]
	for c := 1; c < m.NumCores(); c++ {
		if _, err := m.Launch(bg.Name, workload.MustProgram(bg), c, 0); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkMachineStep measures the per-quantum fixed-point solver on a
// fully loaded machine — the simulator's hot path. It is the reference
// against which telemetry overhead is judged: with the no-op recorder the
// cost per Step must stay within a few percent of this baseline.
func BenchmarkMachineStep(b *testing.B) {
	m := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkMachineStepAggregator measures the same hot path with the
// telemetry Aggregator attached — the configuration every experiment run
// uses, and the numerator of the benchreg suite's overhead-ratio metric.
func BenchmarkMachineStepAggregator(b *testing.B) {
	m := benchMachine(b)
	m.SetRecorder(telemetry.NewAggregator())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// Package machine assembles the simulated multicore: cores with per-core
// DVFS, the way-partitioned LLC, the contended memory system, and the
// performance-counter file. It mirrors the paper's evaluation platform — a
// 6-core Intel Xeon E5-2618L v3 at a nominal 2 GHz with nine frequency
// steps from 1.2 to 2.0 GHz, a 15 MB 20-way L3 with Intel CAT, and four
// DDR4-2133 channels (§5.1).
//
// The machine is an interval simulator. Each call to Step advances one
// quantum (100 µs by default) and resolves, for every running task, the
// coupled system
//
//	instructions ← cycles / CPI_eff
//	CPI_eff      ← BaseCPI·jitter + missPerInstr · memLatency(U)·f / MLP
//	U            ← Σ missBytes / (peakBandwidth · Δq)
//
// by damped fixed-point iteration, then commits the result: performance
// counters are charged, LLC occupancy advances (cache inertia), memory
// counters advance, and programs retire instructions. Foreground program
// completions are returned as events.
package machine

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/fault"
	"dirigent/internal/mem"
	"dirigent/internal/perf"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// ErrActuation marks an actuation request (DVFS transition, pause, resume)
// dropped by an injected fault (Config.Faults). Controllers distinguish it
// from programming errors: an actuation failure is counted, surfaced on the
// telemetry bus, and retried on a later decision rather than treated as a
// logic bug.
var ErrActuation = errors.New("actuation dropped by injected fault")

// BytesPerMiss is the memory traffic per LLC miss: a 64 B fill plus an
// amortized writeback/overfetch, matching measured DRAM traffic per miss on
// the platform class.
const BytesPerMiss = 2 * cache.LineSize

// solverIterations is the number of damped fixed-point iterations per
// quantum. Four is enough for <1% residual at the quantum scale.
const solverIterations = 4

// CoreSet describes a run of consecutive cores sharing one microarchitecture
// and memory socket, the building block of heterogeneous (big.LITTLE-style)
// and multi-socket machine classes. The zero value of every field except
// Count means "like the evaluation machine": unscaled frequency, unscaled
// IPC, socket 0.
type CoreSet struct {
	// Count is the number of consecutive cores in this set. Sets are laid
	// out in declaration order starting at core 0, so a class that lists
	// its big cores first gets foreground streams (which the scheduler
	// places on the lowest cores) on the big cores.
	Count int
	// FreqScale scales the shared DVFS level grid for these cores: level i
	// runs at FreqLevelsGHz[i]·FreqScale. Controllers keep addressing the
	// shared level indices; only the realized clock differs. Zero means 1.
	FreqScale float64
	// IPCScale scales per-cycle throughput: the effective base CPI is
	// BaseCPI/IPCScale, modelling a narrower (in-order, little) core.
	// The memory-bound CPI component is unscaled — stalls are latency,
	// not width. Zero means 1.
	IPCScale float64
	// Socket is the memory socket (index into mem.Config.Sockets) whose
	// bandwidth pool these cores' traffic contends on.
	Socket int
}

// Config describes a machine.
type Config struct {
	// Cores is the number of cores (6 on the evaluation machine).
	Cores int
	// FreqLevelsGHz are the per-core DVFS operating points, ascending. The
	// evaluation machine exposes 1.2–2.0 GHz in 0.1 GHz steps.
	FreqLevelsGHz []float64
	// CoreSets, when non-empty, partitions the Cores into heterogeneous
	// sets (big.LITTLE frequency/IPC scaling, multi-socket placement); the
	// set counts must sum to Cores. Empty (the default) means homogeneous
	// cores on socket 0, byte-identical to machines built before core sets
	// existed.
	CoreSets []CoreSet
	// Quantum is the simulation step.
	Quantum time.Duration
	// Cache configures the LLC.
	Cache cache.Config
	// Memory configures the memory system.
	Memory mem.Config
	// Seed drives all stochastic behaviour (OS-noise jitter).
	Seed uint64
	// SlowJitterSigma is the lognormal sigma of the slowly-varying
	// component of OS noise (interrupt pressure, scheduler placement,
	// thermal state). Unlike the per-quantum benchmark jitter, which
	// averages out over a full execution, this component is held for
	// SlowJitterPeriod at a time and therefore survives into per-execution
	// variance — the residual run-to-run noise every real system exhibits
	// even for compute-bound tasks.
	SlowJitterSigma float64
	// SlowJitterPeriod is how long each slow-noise draw is held.
	SlowJitterPeriod time.Duration
	// StepHook, when non-nil, is invoked once at the start of every Step.
	// It must not touch simulation state: the hook exists so the regression
	// harness (internal/benchreg) can inject an artificial wall-clock
	// slowdown and verify that its perf gate detects a slower Step. Always
	// nil in production configurations.
	StepHook func()
	// Faults, when non-nil, injects actuation faults: SetFreqLevel may fail
	// (ErrActuation) or commit only after a latency, and Pause/Resume may
	// fail. Strictly opt-in — nil (the default) leaves every code path
	// byte-identical to a machine without fault support.
	Faults *fault.Injector
	// CompatStepping drives every advance through the legacy per-quantum
	// engine (stepCompat) instead of the skip-ahead fast path. Both engines
	// produce bit-identical state and event streams — CompatStepping exists
	// as the reference for differential tests and as the baseline the
	// skip-ahead speedup gate measures against, not as a semantic switch.
	CompatStepping bool
}

// DefaultConfig mirrors the paper's platform.
func DefaultConfig() Config {
	return Config{
		Cores:            6,
		FreqLevelsGHz:    []float64{1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0},
		Quantum:          sim.DefaultQuantum,
		Cache:            cache.DefaultConfig(),
		Memory:           mem.DefaultConfig(),
		Seed:             1,
		SlowJitterSigma:  0.03,
		SlowJitterPeriod: 750 * time.Millisecond,
	}
}

// Completion reports that a foreground task finished one execution.
type Completion struct {
	// Task is the task handle.
	Task int
	// At is the simulated time at the end of the completing quantum.
	At sim.Time
}

// pendingTransition is a DVFS request accepted but not yet committed (the
// fault layer's actuation-latency model).
type pendingTransition struct {
	level int // target level; -1 = none pending
	at    sim.Time
}

// Task is the machine's view of a running process.
type task struct {
	id      int
	name    string
	program *workload.Program
	core    int
	paused  bool
	jitter  *sim.Rand

	// Slow OS-noise state: the current multiplier and when to redraw.
	slowJitter float64
	slowUntil  sim.Time

	// Resolved per-task handles the skip-ahead engine charges through,
	// skipping the LLC and counter map lookups every quantum. Both stay
	// valid for the task's lifetime: class moves mutate the cache state in
	// place, and nothing resets counters mid-run.
	cref   *cache.TaskRef
	sample *perf.Sample
}

// Machine is the simulated multicore system. Not safe for concurrent use.
type Machine struct {
	cfg      Config
	clock    *sim.Clock
	llc      *cache.LLC
	memory   *mem.Memory
	counters *perf.Counters

	coreFreq []int   // frequency level index per core
	coreTask []*task // nil when idle
	tasks    map[int]*task
	nextID   int

	// overheadOwed is per-core time stolen by runtime invocations (the
	// Dirigent runtime is pinned to a BG core and charges ~100 µs per
	// invocation, §4.2); it is consumed from that core's next quanta.
	overheadOwed []time.Duration

	// pendingFreq holds per-core frequency transitions delayed by an
	// injected DVFS-latency fault; Step commits them once due. Level -1
	// means none pending. Only ever populated when cfg.Faults is set.
	pendingFreq []pendingTransition

	// freqResidency accumulates time spent at each frequency level per
	// core, for Fig. 12.
	freqResidency [][]time.Duration

	// Per-core heterogeneity, expanded from Config.CoreSets. For
	// homogeneous machines every ladder entry aliases cfg.FreqLevelsGHz
	// and every cpiScale is exactly 1, so reads are bit-identical to the
	// pre-CoreSet code.
	ladder     [][]float64 // effective GHz per core per level index
	cpiScale   []float64   // BaseCPI multiplier per core (1/IPCScale)
	coreSocket []int       // memory socket per core

	// multiSocket selects the per-socket solver; scratchSockDemand,
	// scratchSockLat and scratchSockU are its reused buffers.
	multiSocket       bool
	scratchSockDemand []float64
	scratchSockLat    []float64
	scratchSockU      []float64

	lastUtilization float64
	rng             *sim.Rand

	// rec is the telemetry bus; never nil (the no-op recorder by
	// default). Hot-path emissions gate on rec.Enabled.
	rec telemetry.Recorder

	// scratch buffers reused across Step calls to avoid per-quantum
	// allocation.
	scratchTraffic []cache.Traffic
	scratchInstr   []float64
	scratchJitter  []float64

	// Skip-ahead engine state (stepFast/StepN). The scratch arrays hold the
	// per-core terms that are invariant within one quantum — phase pointer
	// (nil for idle or paused cores), effective compute seconds, clock,
	// hit rate, misses per instruction, jittered base CPI, and MLP — hoisted
	// once instead of recomputed on every solver iteration. batchQ
	// accumulates quantum-step events across a StepN batch; flushQuanta
	// hands them to recBatch (the recorder's batch interface, when it has
	// one) in a single call.
	scratchEff   []float64
	scratchPhase []*workload.Phase
	scratchF     []float64
	scratchHit   []float64
	scratchMPI   []float64
	scratchBJ    []float64
	scratchMLP   []float64
	batchQ       []telemetry.Event
	recBatch     telemetry.QuantumBatcher

	// quantumSec caches cfg.Quantum.Seconds() and coreGHz caches
	// ladder[c][coreFreq[c]] (maintained by commitFreq), so the fast engine
	// reads them instead of re-deriving both every quantum. Both are exactly
	// the values the compat engine computes inline.
	quantumSec float64
	coreGHz    []float64
}

// maxBatchQuanta bounds how many quanta one StepN call may advance, capping
// the batched-event buffer and keeping completion latency (the early-stop
// scan) bounded even when a caller passes a huge max.
const maxBatchQuanta = 1024

// New validates cfg and builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: core count %d must be positive", cfg.Cores)
	}
	if len(cfg.FreqLevelsGHz) == 0 {
		return nil, errors.New("machine: no frequency levels")
	}
	for i, f := range cfg.FreqLevelsGHz {
		if f <= 0 {
			return nil, fmt.Errorf("machine: frequency level %d (%g GHz) must be positive", i, f)
		}
		if i > 0 && f <= cfg.FreqLevelsGHz[i-1] {
			return nil, errors.New("machine: frequency levels must be strictly ascending")
		}
	}
	clock, err := sim.NewClock(cfg.Quantum)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	memory, err := mem.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	counters, err := perf.New(cfg.Cores)
	if err != nil {
		return nil, err
	}
	sockets := memory.NumSockets()
	if len(cfg.CoreSets) > 0 {
		total := 0
		for i, cs := range cfg.CoreSets {
			if cs.Count <= 0 {
				return nil, fmt.Errorf("machine: core set %d count %d must be positive", i, cs.Count)
			}
			if cs.FreqScale < 0 {
				return nil, fmt.Errorf("machine: core set %d frequency scale %g must be positive", i, cs.FreqScale)
			}
			if cs.IPCScale < 0 {
				return nil, fmt.Errorf("machine: core set %d IPC scale %g must be positive", i, cs.IPCScale)
			}
			if cs.Socket < 0 || cs.Socket >= sockets {
				return nil, fmt.Errorf("machine: core set %d socket %d out of range [0,%d)", i, cs.Socket, sockets)
			}
			total += cs.Count
		}
		if total != cfg.Cores {
			return nil, fmt.Errorf("machine: core sets cover %d cores, config has %d", total, cfg.Cores)
		}
	}
	m := &Machine{
		cfg:            cfg,
		clock:          clock,
		llc:            llc,
		memory:         memory,
		counters:       counters,
		coreFreq:       make([]int, cfg.Cores),
		coreTask:       make([]*task, cfg.Cores),
		tasks:          map[int]*task{},
		nextID:         1,
		overheadOwed:   make([]time.Duration, cfg.Cores),
		freqResidency:  make([][]time.Duration, cfg.Cores),
		ladder:         make([][]float64, cfg.Cores),
		cpiScale:       make([]float64, cfg.Cores),
		coreSocket:     make([]int, cfg.Cores),
		multiSocket:    sockets > 1,
		rng:            sim.NewRand(cfg.Seed),
		rec:            telemetry.Nop(),
		scratchTraffic: make([]cache.Traffic, 0, cfg.Cores),
		scratchInstr:   make([]float64, cfg.Cores),
		scratchJitter:  make([]float64, cfg.Cores),
		scratchEff:     make([]float64, cfg.Cores),
		scratchPhase:   make([]*workload.Phase, cfg.Cores),
		scratchF:       make([]float64, cfg.Cores),
		scratchHit:     make([]float64, cfg.Cores),
		scratchMPI:     make([]float64, cfg.Cores),
		scratchBJ:      make([]float64, cfg.Cores),
		scratchMLP:     make([]float64, cfg.Cores),
	}
	// Expand core sets into per-core ladders, CPI scaling, and socket
	// placement. The homogeneous default aliases the shared level grid so
	// the hot path loads exactly the configured floats.
	for c := 0; c < cfg.Cores; c++ {
		m.ladder[c] = cfg.FreqLevelsGHz
		m.cpiScale[c] = 1
	}
	core := 0
	for _, cs := range cfg.CoreSets {
		lad := cfg.FreqLevelsGHz
		if cs.FreqScale != 0 && cs.FreqScale != 1 {
			lad = make([]float64, len(cfg.FreqLevelsGHz))
			for i, f := range cfg.FreqLevelsGHz {
				lad[i] = f * cs.FreqScale
			}
		}
		scale := 1.0
		if cs.IPCScale != 0 {
			scale = 1 / cs.IPCScale
		}
		for k := 0; k < cs.Count; k++ {
			m.ladder[core] = lad
			m.cpiScale[core] = scale
			m.coreSocket[core] = cs.Socket
			core++
		}
	}
	if m.multiSocket {
		m.scratchSockDemand = make([]float64, sockets)
		m.scratchSockLat = make([]float64, sockets)
		m.scratchSockU = make([]float64, sockets)
	}
	// Cores start at maximum frequency.
	top := len(cfg.FreqLevelsGHz) - 1
	m.quantumSec = cfg.Quantum.Seconds()
	m.coreGHz = make([]float64, cfg.Cores)
	for c := range m.coreFreq {
		m.coreFreq[c] = top
		m.freqResidency[c] = make([]time.Duration, len(cfg.FreqLevelsGHz))
		m.coreGHz[c] = m.ladder[c][top]
	}
	if cfg.Faults != nil {
		m.pendingFreq = make([]pendingTransition, cfg.Cores)
		for c := range m.pendingFreq {
			m.pendingFreq[c].level = -1
		}
	}
	return m, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetRecorder attaches a telemetry recorder (nil restores the no-op
// default) and announces the machine geometry with a KindMachineStart
// event so sinks can interpret later DVFS/quantum events.
func (m *Machine) SetRecorder(rec telemetry.Recorder) {
	m.rec = telemetry.OrNop(rec)
	m.recBatch, _ = m.rec.(telemetry.QuantumBatcher)
	if m.rec.Enabled(telemetry.KindMachineStart) {
		m.rec.Record(telemetry.Event{
			Kind:     telemetry.KindMachineStart,
			At:       m.clock.Now(),
			Cores:    m.cfg.Cores,
			Levels:   len(m.cfg.FreqLevelsGHz),
			TopLevel: len(m.cfg.FreqLevelsGHz) - 1,
			Quantum:  m.cfg.Quantum,
		})
	}
}

// Recorder returns the attached telemetry recorder (the no-op recorder
// when none is attached); components driven by the machine (the scheduler)
// emit through it.
func (m *Machine) Recorder() telemetry.Recorder { return m.rec }

// Now returns the current simulated time.
func (m *Machine) Now() sim.Time { return m.clock.Now() }

// LLC exposes the cache for partition control (the coarse controller's
// CAT interface).
func (m *Machine) LLC() *cache.LLC { return m.llc }

// Memory exposes the memory system for observability.
func (m *Machine) Memory() *mem.Memory { return m.memory }

// Counters exposes the performance-counter file.
func (m *Machine) Counters() *perf.Counters { return m.counters }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return m.cfg.Cores }

// Launch places a program on an idle core, registers it with the LLC in the
// given partition class, and returns a task handle.
func (m *Machine) Launch(name string, prog *workload.Program, core int, class cache.ClassID) (int, error) {
	if err := m.checkCore(core); err != nil {
		return 0, err
	}
	if m.coreTask[core] != nil {
		return 0, fmt.Errorf("machine: core %d already runs task %d", core, m.coreTask[core].id)
	}
	if prog == nil {
		return 0, errors.New("machine: nil program")
	}
	id := m.nextID
	if err := m.llc.Register(id, class); err != nil {
		return 0, err
	}
	m.nextID++
	t := &task{id: id, name: name, program: prog, core: core, jitter: m.rng.Split(), slowJitter: 1,
		cref: m.llc.Ref(id), sample: m.counters.Handle(id)}
	m.tasks[id] = t
	m.coreTask[core] = t
	if m.rec.Enabled(telemetry.KindTaskLaunch) {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindTaskLaunch, At: m.clock.Now(),
			Task: id, Core: core, Name: name,
		})
	}
	return id, nil
}

// Kill removes a task from the machine and frees its cache footprint.
func (m *Machine) Kill(taskID int) error {
	t, ok := m.tasks[taskID]
	if !ok {
		return fmt.Errorf("machine: unknown task %d", taskID)
	}
	m.coreTask[t.core] = nil
	delete(m.tasks, taskID)
	m.llc.Unregister(taskID)
	if m.rec.Enabled(telemetry.KindTaskKill) {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindTaskKill, At: m.clock.Now(),
			Task: taskID, Core: t.core, Name: t.name,
		})
	}
	return nil
}

// SetProgram swaps the program a task runs (used by rotate-BG workloads
// when the collocated benchmark "context switches").
func (m *Machine) SetProgram(taskID int, prog *workload.Program) error {
	t, ok := m.tasks[taskID]
	if !ok {
		return fmt.Errorf("machine: unknown task %d", taskID)
	}
	if prog == nil {
		return errors.New("machine: nil program")
	}
	t.program = prog
	if m.rec.Enabled(telemetry.KindTaskSwitch) {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindTaskSwitch, At: m.clock.Now(),
			Task: taskID, Core: t.core, Name: prog.Benchmark().Name,
		})
	}
	return nil
}

// SetClass moves a task to a different LLC partition class.
func (m *Machine) SetClass(taskID int, class cache.ClassID) error {
	if _, ok := m.tasks[taskID]; !ok {
		return fmt.Errorf("machine: unknown task %d", taskID)
	}
	return m.llc.Register(taskID, class)
}

// Pause stops a task from executing; its core idles and its cache occupancy
// decays under pressure from active tasks.
func (m *Machine) Pause(taskID int) error {
	t, ok := m.tasks[taskID]
	if !ok {
		return fmt.Errorf("machine: unknown task %d", taskID)
	}
	if !t.paused {
		if m.cfg.Faults.PauseFails(m.clock.Now(), taskID, t.core) {
			return fmt.Errorf("machine: pause task %d: %w", taskID, ErrActuation)
		}
		t.paused = true
		if m.rec.Enabled(telemetry.KindTaskPause) {
			m.rec.Record(telemetry.Event{
				Kind: telemetry.KindTaskPause, At: m.clock.Now(),
				Task: taskID, Core: t.core,
			})
		}
	}
	return nil
}

// Resume restarts a paused task.
func (m *Machine) Resume(taskID int) error {
	t, ok := m.tasks[taskID]
	if !ok {
		return fmt.Errorf("machine: unknown task %d", taskID)
	}
	if t.paused {
		if m.cfg.Faults.ResumeFails(m.clock.Now(), taskID, t.core) {
			return fmt.Errorf("machine: resume task %d: %w", taskID, ErrActuation)
		}
		t.paused = false
		if m.rec.Enabled(telemetry.KindTaskResume) {
			m.rec.Record(telemetry.Event{
				Kind: telemetry.KindTaskResume, At: m.clock.Now(),
				Task: taskID, Core: t.core,
			})
		}
	}
	return nil
}

// Paused reports whether a task is paused.
func (m *Machine) Paused(taskID int) (bool, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return false, fmt.Errorf("machine: unknown task %d", taskID)
	}
	return t.paused, nil
}

// TaskCore returns the core a task is pinned to.
func (m *Machine) TaskCore(taskID int) (int, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return 0, fmt.Errorf("machine: unknown task %d", taskID)
	}
	return t.core, nil
}

// TaskName returns a task's name.
func (m *Machine) TaskName(taskID int) (string, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return "", fmt.Errorf("machine: unknown task %d", taskID)
	}
	return t.name, nil
}

// Program returns the program a task currently runs.
func (m *Machine) Program(taskID int) (*workload.Program, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("machine: unknown task %d", taskID)
	}
	return t.program, nil
}

// Tasks returns the IDs of all live tasks (in unspecified order).
func (m *Machine) Tasks() []int {
	out := make([]int, 0, len(m.tasks))
	for id := range m.tasks {
		out = append(out, id)
	}
	return out
}

func (m *Machine) checkCore(core int) error {
	if core < 0 || core >= m.cfg.Cores {
		return fmt.Errorf("machine: core %d out of range [0,%d)", core, m.cfg.Cores)
	}
	return nil
}

// SetFreqLevel requests a core's DVFS operating point by level index.
// Without fault injection the transition commits immediately. Under an
// injected fault plan the request may fail (ErrActuation) or be accepted
// but commit only after an actuation latency — FreqLevel keeps reporting
// the old level until then, exactly like reading back a sysfs frequency
// mid-transition.
func (m *Machine) SetFreqLevel(core, level int) error {
	if err := m.checkCore(core); err != nil {
		return err
	}
	if level < 0 || level >= len(m.cfg.FreqLevelsGHz) {
		return fmt.Errorf("machine: frequency level %d out of range [0,%d)", level, len(m.cfg.FreqLevelsGHz))
	}
	// The effective target is the pending transition if one is in flight;
	// re-requesting it (or the committed level) is a no-op, not a new
	// actuation.
	target := m.coreFreq[core]
	if m.pendingFreq != nil && m.pendingFreq[core].level >= 0 {
		target = m.pendingFreq[core].level
	}
	if level == target {
		return nil
	}
	if inj := m.cfg.Faults; inj != nil {
		fail, delay := inj.DVFSOutcome(m.clock.Now(), core)
		if fail {
			return fmt.Errorf("machine: set core %d frequency level %d: %w", core, level, ErrActuation)
		}
		if delay > 0 {
			m.pendingFreq[core] = pendingTransition{level: level, at: m.clock.Now() + sim.Time(delay)}
			return nil
		}
		m.pendingFreq[core].level = -1 // an immediate commit supersedes any pending one
	}
	m.commitFreq(core, level)
	return nil
}

// commitFreq applies a frequency transition and emits its event. Any
// batched quantum-step events are flushed first so the recorded stream keeps
// strict time order — and so batch-folding sinks (the aggregator's residency
// accounting) never see a level change inside a batch.
func (m *Machine) commitFreq(core, level int) {
	prev := m.coreFreq[core]
	if prev == level {
		return
	}
	m.flushQuanta()
	m.coreFreq[core] = level
	m.coreGHz[core] = m.ladder[core][level]
	if m.rec.Enabled(telemetry.KindDVFSTransition) {
		m.rec.Record(telemetry.Event{
			Kind: telemetry.KindDVFSTransition, At: m.clock.Now(),
			Core: core, FromLevel: prev, ToLevel: level,
		})
	}
}

// FreqLevel returns a core's current DVFS level index.
func (m *Machine) FreqLevel(core int) (int, error) {
	if err := m.checkCore(core); err != nil {
		return 0, err
	}
	return m.coreFreq[core], nil
}

// FreqGHz returns a core's current effective frequency in GHz (the shared
// level grid scaled by the core's set, for heterogeneous classes).
func (m *Machine) FreqGHz(core int) (float64, error) {
	l, err := m.FreqLevel(core)
	if err != nil {
		return 0, err
	}
	return m.ladder[core][l], nil
}

// MaxFreqLevel returns the index of the highest operating point. Level
// indices are shared across cores even on heterogeneous machines; only the
// realized clock differs per core set.
func (m *Machine) MaxFreqLevel() int { return len(m.cfg.FreqLevelsGHz) - 1 }

// CoreMaxFreqGHz returns the effective frequency of a core's top operating
// point — the per-core nominal clock controllers normalize against.
func (m *Machine) CoreMaxFreqGHz(core int) (float64, error) {
	if err := m.checkCore(core); err != nil {
		return 0, err
	}
	return m.ladder[core][len(m.cfg.FreqLevelsGHz)-1], nil
}

// CoreSocket returns the memory socket a core's traffic contends on.
func (m *Machine) CoreSocket(core int) (int, error) {
	if err := m.checkCore(core); err != nil {
		return 0, err
	}
	return m.coreSocket[core], nil
}

// FreqResidency returns the cumulative time core has spent at each
// frequency level (indexed by level), for Fig. 12.
func (m *Machine) FreqResidency(core int) ([]time.Duration, error) {
	if err := m.checkCore(core); err != nil {
		return nil, err
	}
	return append([]time.Duration(nil), m.freqResidency[core]...), nil
}

// ChargeOverhead steals d of CPU time from core, consumed from its next
// quanta. It models runtime work (predictor + throttler ≈ 100 µs per
// invocation) pinned to that core.
func (m *Machine) ChargeOverhead(core int, d time.Duration) error {
	if err := m.checkCore(core); err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("machine: negative overhead %v", d)
	}
	m.overheadOwed[core] += d
	return nil
}

// LastUtilization returns memory utilization of the last quantum.
func (m *Machine) LastUtilization() float64 { return m.lastUtilization }

// Step advances the machine by one quantum and returns any foreground
// completions that occurred in it.
func (m *Machine) Step() []Completion {
	if m.cfg.CompatStepping {
		return m.stepCompat()
	}
	done, _ := m.StepN(1)
	return done
}

// StepN advances the machine by up to max quanta in one batched call and
// returns the last advanced quantum's completions plus how many quanta were
// advanced. It stops early after any quantum that produced completions, so
// callers observe completions at exactly the quantum they occur in — the
// scheduler's completion processing, BG rotation, and policy callbacks all
// fire at the same simulated instants as quantum-by-quantum stepping.
// Quantum-step telemetry is accumulated across the batch and flushed in one
// recorder call on return (and before any mid-batch DVFS commit), keeping
// the event stream byte-identical to per-quantum emission. max is clamped
// to [1, maxBatchQuanta].
func (m *Machine) StepN(max int) ([]Completion, int) {
	if max < 1 {
		max = 1
	}
	if max > maxBatchQuanta {
		max = maxBatchQuanta
	}
	var done []Completion
	n := 0
	for n < max {
		done = m.stepFast()
		n++
		if len(done) > 0 {
			break
		}
	}
	m.flushQuanta()
	return done, n
}

// flushQuanta hands accumulated quantum-step events to the recorder — in
// one call when the recorder batches, else one Record per event. The buffer
// is reused; sinks must not retain it (telemetry.QuantumBatcher's contract).
func (m *Machine) flushQuanta() {
	if len(m.batchQ) == 0 {
		return
	}
	if m.recBatch != nil {
		m.recBatch.RecordQuantumSteps(m.batchQ)
	} else {
		for i := range m.batchQ {
			m.rec.Record(m.batchQ[i])
		}
	}
	m.batchQ = m.batchQ[:0]
}

// stepFast is the skip-ahead engine's quantum: the same physics as
// stepCompat with every quantum-invariant per-core term (phase, frequency,
// hit rate, miss rate, jittered base CPI, MLP) hoisted out of the solver
// loop, and the quantum-step event buffered instead of emitted inline.
// Every floating-point expression keeps stepCompat's exact form and
// evaluation order, so the two engines are bit-identical — pinned by
// TestStepEnginesEquivalent.
func (m *Machine) stepFast() []Completion {
	if m.cfg.StepHook != nil {
		m.cfg.StepHook()
	}
	dt := m.cfg.Quantum
	dtSec := m.quantumSec
	now := m.clock.Advance()

	// Commit DVFS transitions whose injected actuation latency has elapsed,
	// before this quantum's frequencies are read. commitFreq flushes the
	// event batch, so the transition lands in stream order.
	if m.pendingFreq != nil {
		for c := range m.pendingFreq {
			if p := m.pendingFreq[c]; p.level >= 0 && now >= p.at {
				m.pendingFreq[c].level = -1
				m.commitFreq(c, p.level)
			}
		}
	}

	// Hoist pass: one traversal computes everything the legacy engine
	// recomputes per solver iteration and again at commit. Within a quantum
	// these cannot change — occupancy only moves in llc.Apply below, programs
	// only advance at commit — and the jitter draws happen here in the same
	// ascending-core order as the legacy loop, so the RNG streams stay in
	// lockstep.
	for c := 0; c < m.cfg.Cores; c++ {
		m.scratchEff[c] = dtSec
		if owed := m.overheadOwed[c]; owed > 0 {
			steal := owed
			if steal > dt {
				steal = dt
			}
			m.overheadOwed[c] -= steal
			m.scratchEff[c] = (dt - steal).Seconds()
		}
		m.freqResidency[c][m.coreFreq[c]] += dt
		m.scratchJitter[c] = 1
		m.scratchPhase[c] = nil
		t := m.coreTask[c]
		if t == nil || t.paused {
			continue
		}
		if sigma := t.program.Benchmark().CPIJitter; sigma > 0 {
			m.scratchJitter[c] = t.jitter.LogNormal(0, sigma)
		}
		if m.cfg.SlowJitterSigma > 0 {
			if now >= t.slowUntil {
				t.slowJitter = t.jitter.LogNormal(0, m.cfg.SlowJitterSigma)
				t.slowUntil = now + sim.Time(m.cfg.SlowJitterPeriod)
			}
			m.scratchJitter[c] *= t.slowJitter
		}
		ph := t.program.Phase()
		m.scratchPhase[c] = ph
		m.scratchF[c] = m.coreGHz[c]
		hit := m.llc.HitRateRef(t.cref, ph.WSSBytes, ph.Locality)
		m.scratchHit[c] = hit
		m.scratchMPI[c] = ph.APKI / 1000 * (1 - hit)
		base := ph.BaseCPI
		if s := m.cpiScale[c]; s != 1 {
			base *= s
		}
		m.scratchBJ[c] = base * m.scratchJitter[c]
		m.scratchMLP[c] = ph.EffectiveMLP()
	}

	// Damped fixed point over memory utilization, reading the hoisted terms.
	if m.multiSocket {
		m.solveSocketsFast(dt)
	} else {
		u := m.lastUtilization
		latNs := 0.0
		for iter := 0; iter < solverIterations; iter++ {
			latNs = float64(m.memory.Latency(u).Nanoseconds())
			if latNs <= 0 {
				latNs = m.memory.LatencyStretch(u) * float64(m.memory.Config().IdleLatency) / float64(time.Nanosecond)
			}
			demand := 0.0
			for c := 0; c < m.cfg.Cores; c++ {
				m.scratchInstr[c] = 0
				if m.scratchPhase[c] == nil || m.scratchEff[c] <= 0 {
					continue
				}
				f := m.scratchF[c]
				missPerInstr := m.scratchMPI[c]
				cpi := m.scratchBJ[c] + missPerInstr*latNs*f/m.scratchMLP[c]
				instr := f * 1e9 * m.scratchEff[c] / cpi
				m.scratchInstr[c] = instr
				demand += instr * missPerInstr * BytesPerMiss
			}
			uNew := m.memory.Utilization(demand, dt)
			u = 0.5*u + 0.5*uNew
		}
	}

	// Commit: counters, cache occupancy, memory stats, program progress.
	trs := m.scratchTraffic[:cap(m.scratchTraffic)]
	nTr := 0
	if m.multiSocket {
		for s := range m.scratchSockDemand {
			m.scratchSockDemand[s] = 0
		}
	}
	demand := 0.0
	totInstr, totMisses := 0.0, 0.0
	var completions []Completion
	for c := 0; c < m.cfg.Cores; c++ {
		ph := m.scratchPhase[c]
		if ph == nil {
			continue
		}
		t := m.coreTask[c]
		instr := m.scratchInstr[c]
		f := m.scratchF[c]
		accesses := instr * ph.APKI / 1000
		missRate := 1 - m.scratchHit[c]
		misses := accesses * missRate
		demand += misses * BytesPerMiss
		if m.multiSocket {
			m.scratchSockDemand[m.coreSocket[c]] += misses * BytesPerMiss
		}
		totInstr += instr
		totMisses += misses

		// Counters: cycles reflect the full quantum at the core's clock
		// (free-running cycle counter), instructions reflect work done.
		m.counters.ChargeRef(t.sample, c, perf.Sample{
			Instructions: instr,
			Cycles:       f * 1e9 * dtSec,
			LLCAccesses:  accesses,
			LLCMisses:    misses,
		})
		tr := &trs[nTr]
		nTr++
		tr.Task = t.id
		tr.Accesses = accesses
		tr.MissRate = missRate
		tr.WSS = ph.WSSBytes
		tr.Ref = t.cref
		if t.program.Advance(instr) {
			completions = append(completions, Completion{Task: t.id, At: now})
		}
	}
	m.scratchTraffic = trs[:nTr]
	m.llc.ApplyFast(dt, m.scratchTraffic)
	if m.multiSocket {
		m.memory.ApplySockets(m.scratchSockDemand, dt)
	} else {
		m.memory.Apply(demand, dt)
	}
	m.lastUtilization = m.memory.LastUtilization()
	if m.rec.Enabled(telemetry.KindQuantumStep) {
		m.batchQ = append(m.batchQ, telemetry.Event{
			Kind:         telemetry.KindQuantumStep,
			At:           now,
			Utilization:  m.lastUtilization,
			Instructions: totInstr,
			LLCMisses:    totMisses,
			Completions:  len(completions),
		})
	}
	return completions
}

// solveSocketsFast is solveSockets reading the hoisted per-core terms, with
// identical expression forms per iteration.
func (m *Machine) solveSocketsFast(dt time.Duration) {
	us, lat, dem := m.scratchSockU, m.scratchSockLat, m.scratchSockDemand
	for s := range us {
		us[s] = m.memory.LastSocketUtilization(s)
	}
	for iter := 0; iter < solverIterations; iter++ {
		for s := range us {
			l := float64(m.memory.Latency(us[s]).Nanoseconds())
			if l <= 0 {
				l = m.memory.LatencyStretch(us[s]) * float64(m.memory.Config().IdleLatency) / float64(time.Nanosecond)
			}
			lat[s] = l
			dem[s] = 0
		}
		for c := 0; c < m.cfg.Cores; c++ {
			m.scratchInstr[c] = 0
			if m.scratchPhase[c] == nil || m.scratchEff[c] <= 0 {
				continue
			}
			f := m.scratchF[c]
			missPerInstr := m.scratchMPI[c]
			cpi := m.scratchBJ[c] + missPerInstr*lat[m.coreSocket[c]]*f/m.scratchMLP[c]
			instr := f * 1e9 * m.scratchEff[c] / cpi
			m.scratchInstr[c] = instr
			dem[m.coreSocket[c]] += instr * missPerInstr * BytesPerMiss
		}
		for s := range us {
			us[s] = 0.5*us[s] + 0.5*m.memory.UtilizationOn(s, dem[s], dt)
		}
	}
}

// stepCompat is the legacy quantum-by-quantum engine, preserved verbatim as
// the reference the skip-ahead engine is differenced against (and the
// baseline the speedup gate times). Selected by Config.CompatStepping. It
// keeps the original subsystem paths end to end: the uncached PhaseScan
// lookup, map-based LLC HitRate/Apply, and map-based counter charges — so
// the gate's baseline is the engine as it shipped, not one that silently
// borrows the fast path's caches.
func (m *Machine) stepCompat() []Completion {
	if m.cfg.StepHook != nil {
		m.cfg.StepHook()
	}
	dt := m.cfg.Quantum
	dtSec := dt.Seconds()
	now := m.clock.Advance()

	// Commit DVFS transitions whose injected actuation latency has elapsed,
	// before this quantum's frequencies are read.
	if m.pendingFreq != nil {
		for c := range m.pendingFreq {
			if p := m.pendingFreq[c]; p.level >= 0 && now >= p.at {
				m.pendingFreq[c].level = -1
				m.commitFreq(c, p.level)
			}
		}
	}

	// Per-core effective compute time after runtime-overhead theft, and
	// per-quantum jitter draws (one per running task, outside the solver
	// loop so iterations see stable values).
	effSec := make([]float64, m.cfg.Cores)
	for c := 0; c < m.cfg.Cores; c++ {
		eff := dt
		if owed := m.overheadOwed[c]; owed > 0 {
			steal := owed
			if steal > dt {
				steal = dt
			}
			m.overheadOwed[c] -= steal
			eff = dt - steal
		}
		effSec[c] = eff.Seconds()
		m.freqResidency[c][m.coreFreq[c]] += dt
		m.scratchJitter[c] = 1
		if t := m.coreTask[c]; t != nil && !t.paused {
			if sigma := t.program.Benchmark().CPIJitter; sigma > 0 {
				m.scratchJitter[c] = t.jitter.LogNormal(0, sigma)
			}
			if m.cfg.SlowJitterSigma > 0 {
				if now >= t.slowUntil {
					t.slowJitter = t.jitter.LogNormal(0, m.cfg.SlowJitterSigma)
					t.slowUntil = now + sim.Time(m.cfg.SlowJitterPeriod)
				}
				m.scratchJitter[c] *= t.slowJitter
			}
		}
	}

	// Damped fixed point over memory utilization. Multi-socket machines
	// solve one utilization per socket (each core sees its own socket's
	// latency); the single-pool branch below is the original solver,
	// untouched so homogeneous machines stay byte-identical.
	if m.multiSocket {
		m.solveSockets(effSec, dt)
	} else {
		u := m.lastUtilization
		latNs := 0.0
		for iter := 0; iter < solverIterations; iter++ {
			latNs = float64(m.memory.Latency(u).Nanoseconds())
			if latNs <= 0 {
				// Sub-nanosecond idle latency configs still need a positive
				// value; fall back to the float form.
				latNs = m.memory.LatencyStretch(u) * float64(m.memory.Config().IdleLatency) / float64(time.Nanosecond)
			}
			demand := 0.0
			for c := 0; c < m.cfg.Cores; c++ {
				t := m.coreTask[c]
				m.scratchInstr[c] = 0
				if t == nil || t.paused || effSec[c] <= 0 {
					continue
				}
				ph := t.program.PhaseScan()
				f := m.ladder[c][m.coreFreq[c]]
				hit := m.llc.HitRate(t.id, ph.WSSBytes, ph.Locality)
				missPerInstr := ph.APKI / 1000 * (1 - hit)
				base := ph.BaseCPI
				if s := m.cpiScale[c]; s != 1 {
					base *= s
				}
				cpi := base*m.scratchJitter[c] + missPerInstr*latNs*f/ph.EffectiveMLP()
				instr := f * 1e9 * effSec[c] / cpi
				m.scratchInstr[c] = instr
				demand += instr * missPerInstr * BytesPerMiss
			}
			uNew := m.memory.Utilization(demand, dt)
			u = 0.5*u + 0.5*uNew
		}
	}

	// Commit: counters, cache occupancy, memory stats, program progress.
	m.scratchTraffic = m.scratchTraffic[:0]
	if m.multiSocket {
		for s := range m.scratchSockDemand {
			m.scratchSockDemand[s] = 0
		}
	}
	demand := 0.0
	totInstr, totMisses := 0.0, 0.0
	var completions []Completion
	for c := 0; c < m.cfg.Cores; c++ {
		t := m.coreTask[c]
		if t == nil || t.paused {
			continue
		}
		instr := m.scratchInstr[c]
		ph := t.program.PhaseScan()
		f := m.ladder[c][m.coreFreq[c]]
		hit := m.llc.HitRate(t.id, ph.WSSBytes, ph.Locality)
		accesses := instr * ph.APKI / 1000
		missRate := 1 - hit
		misses := accesses * missRate
		demand += misses * BytesPerMiss
		if m.multiSocket {
			m.scratchSockDemand[m.coreSocket[c]] += misses * BytesPerMiss
		}
		totInstr += instr
		totMisses += misses

		// Counters: cycles reflect the full quantum at the core's clock
		// (free-running cycle counter), instructions reflect work done.
		_ = m.counters.Charge(t.id, c, perf.Sample{
			Instructions: instr,
			Cycles:       f * 1e9 * dtSec,
			LLCAccesses:  accesses,
			LLCMisses:    misses,
		})
		m.scratchTraffic = append(m.scratchTraffic, cache.Traffic{
			Task:     t.id,
			Accesses: accesses,
			MissRate: missRate,
			WSS:      ph.WSSBytes,
		})
		if t.program.Advance(instr) {
			completions = append(completions, Completion{Task: t.id, At: now})
		}
	}
	m.llc.Apply(dt, m.scratchTraffic)
	if m.multiSocket {
		m.memory.ApplySockets(m.scratchSockDemand, dt)
	} else {
		m.memory.Apply(demand, dt)
	}
	m.lastUtilization = m.memory.LastUtilization()
	if m.rec.Enabled(telemetry.KindQuantumStep) {
		m.rec.Record(telemetry.Event{
			Kind:         telemetry.KindQuantumStep,
			At:           now,
			Utilization:  m.lastUtilization,
			Instructions: totInstr,
			LLCMisses:    totMisses,
			Completions:  len(completions),
		})
	}
	return completions
}

// solveSockets is the multi-socket variant of Step's damped fixed point:
// one utilization per socket, each core charged its own socket's latency
// and its miss traffic accumulated against its own socket's pool.
func (m *Machine) solveSockets(effSec []float64, dt time.Duration) {
	us, lat, dem := m.scratchSockU, m.scratchSockLat, m.scratchSockDemand
	for s := range us {
		us[s] = m.memory.LastSocketUtilization(s)
	}
	for iter := 0; iter < solverIterations; iter++ {
		for s := range us {
			l := float64(m.memory.Latency(us[s]).Nanoseconds())
			if l <= 0 {
				l = m.memory.LatencyStretch(us[s]) * float64(m.memory.Config().IdleLatency) / float64(time.Nanosecond)
			}
			lat[s] = l
			dem[s] = 0
		}
		for c := 0; c < m.cfg.Cores; c++ {
			t := m.coreTask[c]
			m.scratchInstr[c] = 0
			if t == nil || t.paused || effSec[c] <= 0 {
				continue
			}
			ph := t.program.PhaseScan()
			f := m.ladder[c][m.coreFreq[c]]
			hit := m.llc.HitRate(t.id, ph.WSSBytes, ph.Locality)
			missPerInstr := ph.APKI / 1000 * (1 - hit)
			base := ph.BaseCPI
			if s := m.cpiScale[c]; s != 1 {
				base *= s
			}
			cpi := base*m.scratchJitter[c] + missPerInstr*lat[m.coreSocket[c]]*f/ph.EffectiveMLP()
			instr := f * 1e9 * effSec[c] / cpi
			m.scratchInstr[c] = instr
			dem[m.coreSocket[c]] += instr * missPerInstr * BytesPerMiss
		}
		for s := range us {
			us[s] = 0.5*us[s] + 0.5*m.memory.UtilizationOn(s, dem[s], dt)
		}
	}
}

// Run advances the machine until the given simulated time, invoking onStep
// (if non-nil) after every quantum with that quantum's completions. It is a
// convenience for tests and examples; the scheduler drives Step directly.
//
// Coverage is ceil-aligned with Step's clock advance: the loop keeps
// stepping while Now() < until, so when until is not quantum-aligned the
// final covering quantum still runs in full and its completions are
// delivered — the machine stops at the first quantum boundary at or after
// until, never short of it. Pinned by TestRunUnalignedUntil.
func (m *Machine) Run(until sim.Time, onStep func(now sim.Time, done []Completion)) {
	for m.clock.Now() < until {
		done := m.Step()
		if onStep != nil {
			onStep(m.clock.Now(), done)
		}
	}
}

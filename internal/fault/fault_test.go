package fault

import (
	"math"
	"testing"
	"time"

	"dirigent/internal/telemetry"
)

func TestPlanPredicates(t *testing.T) {
	var zero Plan
	if zero.Active() || !zero.IsZero() {
		t.Error("zero plan must be inactive and zero")
	}
	identityScale := Plan{ProfileScale: 1}
	if identityScale.Active() || !identityScale.IsZero() {
		t.Error("ProfileScale 1 is the identity")
	}
	stale := Plan{ProfileScale: 0.8}
	if stale.Active() {
		t.Error("staleness is setup-time, not run-time active")
	}
	if stale.IsZero() {
		t.Error("ProfileScale 0.8 is not the identity")
	}
	runtime := Plan{TickDrop: 0.1}
	if !runtime.Active() || runtime.IsZero() {
		t.Error("TickDrop 0.1 must be active")
	}
}

func TestClassNames(t *testing.T) {
	for _, c := range Classes() {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("class %d has no wire name", c)
		}
	}
	if Class(200).String() != "unknown" {
		t.Error("out-of-range class should be unknown")
	}
}

func TestNilInjectorIsNoFault(t *testing.T) {
	var in *Injector
	if d, ok := in.CounterRead(0, 0, 42); d != 42 || !ok {
		t.Error("nil CounterRead must pass through")
	}
	if drop, delay := in.TickOutcome(0); drop || delay != 0 {
		t.Error("nil TickOutcome must be on time")
	}
	if fail, delay := in.DVFSOutcome(0, 0); fail || delay != 0 {
		t.Error("nil DVFSOutcome must succeed")
	}
	if in.PauseFails(0, 1, 2) || in.ResumeFails(0, 1, 2) {
		t.Error("nil pause/resume must succeed")
	}
	if in.Active() || in.Total() != 0 || in.Count(ClassTickDrop) != 0 {
		t.Error("nil injector has no state")
	}
}

func TestZeroPlanNeverInjects(t *testing.T) {
	in := NewInjector(Plan{}, 7, nil)
	for i := 0; i < 1000; i++ {
		if d, ok := in.CounterRead(0, 0, 5); d != 5 || !ok {
			t.Fatal("zero plan perturbed a counter read")
		}
		if drop, delay := in.TickOutcome(0); drop || delay != 0 {
			t.Fatal("zero plan perturbed a tick")
		}
		if fail, delay := in.DVFSOutcome(0, 0); fail || delay != 0 {
			t.Fatal("zero plan perturbed a DVFS request")
		}
		if in.PauseFails(0, 0, 0) || in.ResumeFails(0, 0, 0) {
			t.Fatal("zero plan perturbed pause/resume")
		}
	}
	if in.Total() != 0 {
		t.Errorf("Total = %d, want 0", in.Total())
	}
}

func TestDeterminism(t *testing.T) {
	plan := Plan{CounterDropout: 0.3, TickDrop: 0.2, DVFSFail: 0.4, PauseFail: 0.5}
	a := NewInjector(plan, 42, nil)
	b := NewInjector(plan, 42, nil)
	other := NewInjector(plan, 43, nil)
	same, diff := true, true
	for i := 0; i < 500; i++ {
		_, oka := a.CounterRead(0, 0, 1)
		_, okb := b.CounterRead(0, 0, 1)
		_, oko := other.CounterRead(0, 0, 1)
		da, _ := a.TickOutcome(0)
		db, _ := b.TickOutcome(0)
		if oka != okb || da != db {
			same = false
		}
		if oka != oko {
			diff = false
		}
	}
	if !same {
		t.Error("same seed must reproduce the same fault sequence")
	}
	if diff {
		t.Error("different seeds should diverge")
	}
	if a.Total() != b.Total() {
		t.Errorf("counts diverged: %d vs %d", a.Total(), b.Total())
	}
}

func TestClassStreamsIndependent(t *testing.T) {
	// Enabling an extra class must not shift another class's outcomes:
	// each class draws from its own split stream.
	only := NewInjector(Plan{TickDrop: 0.3}, 99, nil)
	both := NewInjector(Plan{TickDrop: 0.3, DVFSFail: 0.5}, 99, nil)
	for i := 0; i < 500; i++ {
		both.DVFSOutcome(0, 1) // interleave draws on the other class
		d1, _ := only.TickOutcome(0)
		d2, _ := both.TickOutcome(0)
		if d1 != d2 {
			t.Fatalf("tick outcome %d shifted when DVFS faults were enabled", i)
		}
	}
}

func TestProbabilitiesAndCounts(t *testing.T) {
	const n = 20000
	in := NewInjector(Plan{CounterDropout: 0.25}, 5, nil)
	drops := 0
	for i := 0; i < n; i++ {
		if _, ok := in.CounterRead(0, 0, 1); !ok {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("dropout rate %.3f, want ~0.25", got)
	}
	if in.Count(ClassCounterDropout) != drops {
		t.Errorf("Count = %d, want %d", in.Count(ClassCounterDropout), drops)
	}
	if in.Total() != drops {
		t.Errorf("Total = %d, want %d", in.Total(), drops)
	}
}

func TestCounterNoiseIsUnbiasedMultiplicative(t *testing.T) {
	in := NewInjector(Plan{CounterNoise: 0.1}, 11, nil)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		d, ok := in.CounterRead(0, 0, 100)
		if !ok {
			t.Fatal("noise must not drop samples")
		}
		if d < 0 {
			t.Fatal("noised delta must stay non-negative")
		}
		sum += d
	}
	mean := sum / n
	// Lognormal(0, σ) has mean e^{σ²/2} ≈ 1.005 at σ=0.1.
	if mean < 95 || mean > 107 {
		t.Errorf("mean noised delta %.2f, want ≈100", mean)
	}
	if d, _ := in.CounterRead(0, 0, -5); d != 0 {
		t.Errorf("negative delta should clamp to 0 before noising, got %g", d)
	}
}

func TestLatencyDefaults(t *testing.T) {
	in := NewInjector(Plan{TickLate: 1, DVFSLate: 1}, 3, nil)
	if got := in.Plan().TickLatency; got != DefaultTickLatency {
		t.Errorf("TickLatency default = %v", got)
	}
	if got := in.Plan().DVFSLatency; got != DefaultDVFSLatency {
		t.Errorf("DVFSLatency default = %v", got)
	}
	if drop, delay := in.TickOutcome(0); drop || delay != DefaultTickLatency {
		t.Errorf("TickOutcome = %v, %v; want late by default latency", drop, delay)
	}
	if fail, delay := in.DVFSOutcome(0, 2); fail || delay != DefaultDVFSLatency {
		t.Errorf("DVFSOutcome = %v, %v; want late by default latency", fail, delay)
	}
	custom := NewInjector(Plan{TickLate: 1, TickLatency: 7 * time.Millisecond}, 3, nil)
	if _, delay := custom.TickOutcome(0); delay != 7*time.Millisecond {
		t.Errorf("custom TickLatency not honored, got %v", delay)
	}
}

func TestFaultTelemetry(t *testing.T) {
	agg := telemetry.NewAggregator()
	in := NewInjector(Plan{PauseFail: 1, ResumeFail: 1}, 21, agg)
	if !in.PauseFails(0, 4, 2) {
		t.Fatal("PauseFail 1 must always fail")
	}
	if !in.ResumeFails(0, 4, 2) {
		t.Fatal("ResumeFail 1 must always fail")
	}
	if agg.Faults() != 2 {
		t.Errorf("aggregator Faults = %d, want 2", agg.Faults())
	}
	by := agg.FaultsByClass()
	if by["pause-fail"] != 1 || by["resume-fail"] != 1 {
		t.Errorf("FaultsByClass = %v", by)
	}
	if in.Count(ClassPauseFail) != 1 || in.Count(ClassResumeFail) != 1 {
		t.Error("per-class counts wrong")
	}
}

// Package fault is the deterministic fault-injection layer of the
// reproduction. Dirigent's controllers (§4.2–4.3) assume clean inputs —
// fresh profiles, lossless counter samples, instant DVFS and pause
// actuation — but the shared machines the paper targets are noisy and
// drifting. This package perturbs those inputs through explicit,
// seeded hooks so the robustness of the control loop can be measured
// (experiment.ResilienceSweep) and pinned (internal/benchreg):
//
//   - counter-sample dropout and multiplicative noise, applied to the
//     runtime's per-ΔT progress reads;
//   - missed and late runtime ticks (the 5 ms invocation is a real process
//     that can be descheduled);
//   - DVFS actuation latency and failed transitions (sysfs writes are
//     neither instant nor infallible);
//   - pause/resume (SIGSTOP/SIGCONT) actuation failures;
//   - profile staleness — scaling or re-phasing a profiling record before
//     it is handed to the runtime (core.StaleProfile applies the Plan's
//     ProfileScale/ProfileRephase).
//
// Everything is strictly opt-in and deterministic: a zero Plan injects
// nothing and draws nothing, so runs without faults are byte-identical to
// runs built before this package existed; each fault class draws from its
// own seeded stream (sim.Rand.Split), so enabling one class never shifts
// the outcomes of another.
package fault

import (
	"time"

	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
)

// Class identifies a fault class. The wire names double as the Reason on
// KindFault telemetry events.
type Class uint8

const (
	// ClassCounterDropout: a runtime counter sample is lost entirely.
	ClassCounterDropout Class = iota
	// ClassCounterNoise: a counter sample's progress delta is scaled by
	// lognormal multiplicative noise.
	ClassCounterNoise
	// ClassTickDrop: a runtime invocation (ΔT tick) never happens.
	ClassTickDrop
	// ClassTickLate: a runtime invocation is postponed by TickLatency.
	ClassTickLate
	// ClassDVFSFail: a frequency transition request is dropped.
	ClassDVFSFail
	// ClassDVFSLate: a frequency transition lands after DVFSLatency.
	ClassDVFSLate
	// ClassPauseFail: a task pause request is dropped.
	ClassPauseFail
	// ClassResumeFail: a task resume request is dropped.
	ClassResumeFail

	numClasses
)

var classNames = [numClasses]string{
	ClassCounterDropout: "counter-dropout",
	ClassCounterNoise:   "counter-noise",
	ClassTickDrop:       "tick-drop",
	ClassTickLate:       "tick-late",
	ClassDVFSFail:       "dvfs-fail",
	ClassDVFSLate:       "dvfs-late",
	ClassPauseFail:      "pause-fail",
	ClassResumeFail:     "resume-fail",
}

// String returns the stable wire name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Classes returns every defined fault class.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Default latencies for the delayed-actuation classes when the plan enables
// them without choosing one. A late runtime tick is modelled as one ΔT of
// scheduling delay; a slow DVFS transition as the hundreds of microseconds
// a sysfs frequency write can take to settle.
const (
	DefaultTickLatency = 5 * time.Millisecond
	DefaultDVFSLatency = 500 * time.Microsecond
)

// Plan is a declarative fault schedule: per-class intensities, all
// probabilities per opportunity (per sample, per tick, per actuation). The
// zero value injects nothing.
type Plan struct {
	// CounterDropout is the probability a runtime counter sample is lost.
	CounterDropout float64
	// CounterNoise is the lognormal sigma of multiplicative noise applied
	// to each sample's progress delta.
	CounterNoise float64
	// TickDrop is the probability a runtime tick is missed entirely.
	TickDrop float64
	// TickLate is the probability a tick is postponed by TickLatency.
	TickLate float64
	// TickLatency is the postponement of late ticks (default 5 ms).
	TickLatency time.Duration
	// DVFSFail is the probability a frequency transition request fails.
	DVFSFail float64
	// DVFSLate is the probability a transition lands after DVFSLatency.
	DVFSLate float64
	// DVFSLatency is the delay of late transitions (default 500 µs).
	DVFSLatency time.Duration
	// PauseFail / ResumeFail are the probabilities that pause/resume
	// actuation requests are dropped.
	PauseFail  float64
	ResumeFail float64
	// ProfileScale multiplies every profiled segment duration before the
	// profile reaches the runtime (0 or 1 = identity; <1 models an
	// optimistic, stale record). Applied by core.StaleProfile, not by the
	// injector.
	ProfileScale float64
	// ProfileRephase rotates the profiled segment sequence by this fraction
	// of the execution (0 = identity), modelling phase misalignment.
	// Applied by core.StaleProfile.
	ProfileRephase float64
}

// Active reports whether the plan can inject anything at run time (the
// profile-staleness fields are applied at setup time and do not count).
func (p Plan) Active() bool {
	return p.CounterDropout > 0 || p.CounterNoise > 0 ||
		p.TickDrop > 0 || p.TickLate > 0 ||
		p.DVFSFail > 0 || p.DVFSLate > 0 ||
		p.PauseFail > 0 || p.ResumeFail > 0
}

// IsZero reports whether the plan is the identity: nothing injected at run
// time and no profile staleness.
func (p Plan) IsZero() bool {
	return !p.Active() &&
		(p.ProfileScale == 0 || p.ProfileScale == 1) && p.ProfileRephase == 0
}

func (p Plan) withDefaults() Plan {
	if p.TickLate > 0 && p.TickLatency == 0 {
		p.TickLatency = DefaultTickLatency
	}
	if p.DVFSLate > 0 && p.DVFSLatency == 0 {
		p.DVFSLatency = DefaultDVFSLatency
	}
	return p
}

// Injector executes a Plan deterministically. Each fault class owns an
// independent seeded stream, and classes with zero intensity never draw, so
// intensities can be varied per class without perturbing the others. Every
// injected fault is counted and emitted as a KindFault telemetry event
// (Reason = class name). Not safe for concurrent use — one injector per
// simulated run, shared between the machine and the runtime.
//
// All methods are nil-receiver safe and behave as "no fault", so call
// sites need no nil checks.
type Injector struct {
	plan   Plan
	rec    telemetry.Recorder
	rng    [numClasses]*sim.Rand
	counts [numClasses]int
}

// faultSeedSalt decorrelates the injector's streams from other users of the
// same experiment seed (the machine's jitter, the scheduler).
const faultSeedSalt = 0x6fa1bd5d3c2e9a71

// NewInjector builds an injector for plan, seeded so runs reproduce
// bit-for-bit. rec receives one KindFault event per injected fault (nil
// disables fault telemetry; injection itself is unaffected).
func NewInjector(plan Plan, seed uint64, rec telemetry.Recorder) *Injector {
	in := &Injector{plan: plan.withDefaults(), rec: telemetry.OrNop(rec)}
	root := sim.NewRand(seed ^ faultSeedSalt)
	for c := range in.rng {
		in.rng[c] = root.Split()
	}
	return in
}

// Plan returns the injector's plan (with latency defaults resolved).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Active reports whether the injector can inject run-time faults.
func (in *Injector) Active() bool { return in != nil && in.plan.Active() }

// Count returns how many faults of one class have been injected.
func (in *Injector) Count(c Class) int {
	if in == nil || c >= numClasses {
		return 0
	}
	return in.counts[c]
}

// Total returns how many faults have been injected across all classes.
func (in *Injector) Total() int {
	if in == nil {
		return 0
	}
	t := 0
	for _, n := range in.counts {
		t += n
	}
	return t
}

func (in *Injector) emit(now sim.Time, c Class, task, core, stream int, delay time.Duration) {
	in.counts[c]++
	if in.rec.Enabled(telemetry.KindFault) {
		in.rec.Record(telemetry.Event{
			Kind: telemetry.KindFault, At: now,
			Reason: telemetry.Reason(c.String()),
			Task:   task, Core: core, Stream: stream,
			Duration: delay,
		})
	}
}

// CounterRead perturbs one runtime counter sample: delta is the true
// progress since the previous delivered sample. It returns the possibly
// noised delta and whether the sample was delivered at all (false =
// dropout; the caller skips the observation and the predictor bridges the
// gap by interpolation at the next sample).
func (in *Injector) CounterRead(now sim.Time, stream int, delta float64) (float64, bool) {
	if in == nil {
		return delta, true
	}
	if p := in.plan.CounterDropout; p > 0 && in.rng[ClassCounterDropout].Float64() < p {
		in.emit(now, ClassCounterDropout, -1, -1, stream, 0)
		return 0, false
	}
	if sigma := in.plan.CounterNoise; sigma > 0 {
		factor := in.rng[ClassCounterNoise].LogNormal(0, sigma)
		in.emit(now, ClassCounterNoise, -1, -1, stream, 0)
		if delta < 0 {
			delta = 0
		}
		return delta * factor, true
	}
	return delta, true
}

// TickOutcome decides the fate of one runtime tick: dropped entirely, or
// postponed by delay (0 = on time).
func (in *Injector) TickOutcome(now sim.Time) (dropped bool, delay time.Duration) {
	if in == nil {
		return false, 0
	}
	if p := in.plan.TickDrop; p > 0 && in.rng[ClassTickDrop].Float64() < p {
		in.emit(now, ClassTickDrop, -1, -1, -1, 0)
		return true, 0
	}
	if p := in.plan.TickLate; p > 0 && in.rng[ClassTickLate].Float64() < p {
		in.emit(now, ClassTickLate, -1, -1, -1, in.plan.TickLatency)
		return false, in.plan.TickLatency
	}
	return false, 0
}

// DVFSOutcome decides the fate of one frequency-transition request on a
// core: failed outright, or committed after delay (0 = immediate).
func (in *Injector) DVFSOutcome(now sim.Time, core int) (fail bool, delay time.Duration) {
	if in == nil {
		return false, 0
	}
	if p := in.plan.DVFSFail; p > 0 && in.rng[ClassDVFSFail].Float64() < p {
		in.emit(now, ClassDVFSFail, -1, core, -1, 0)
		return true, 0
	}
	if p := in.plan.DVFSLate; p > 0 && in.rng[ClassDVFSLate].Float64() < p {
		in.emit(now, ClassDVFSLate, -1, core, -1, in.plan.DVFSLatency)
		return false, in.plan.DVFSLatency
	}
	return false, 0
}

// PauseFails reports whether one pause request is dropped.
func (in *Injector) PauseFails(now sim.Time, task, core int) bool {
	if in == nil {
		return false
	}
	if p := in.plan.PauseFail; p > 0 && in.rng[ClassPauseFail].Float64() < p {
		in.emit(now, ClassPauseFail, task, core, -1, 0)
		return true
	}
	return false
}

// ResumeFails reports whether one resume request is dropped.
func (in *Injector) ResumeFails(now sim.Time, task, core int) bool {
	if in == nil {
		return false
	}
	if p := in.plan.ResumeFail; p > 0 && in.rng[ClassResumeFail].Float64() < p {
		in.emit(now, ClassResumeFail, task, core, -1, 0)
		return true
	}
	return false
}

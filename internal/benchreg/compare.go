package benchreg

import (
	"fmt"
	"math"
	"strings"
)

// PerfMode controls how perf-metric regressions beyond the fail threshold
// are treated.
type PerfMode string

const (
	// PerfFail is the default: large perf regressions fail the gate. Use it
	// whenever baseline and check run on the same machine.
	PerfFail PerfMode = "fail"
	// PerfWarn demotes perf failures to warnings — for cloud CI runners
	// whose hardware differs from the machine the baseline was recorded on.
	// Exact (QoS) metrics still hard-fail.
	PerfWarn PerfMode = "warn"
	// PerfOff skips perf comparison entirely.
	PerfOff PerfMode = "off"
)

// ParsePerfMode validates a -perf flag value.
func ParsePerfMode(s string) (PerfMode, error) {
	switch PerfMode(s) {
	case PerfFail, PerfWarn, PerfOff:
		return PerfMode(s), nil
	}
	return "", fmt.Errorf("benchreg: perf mode %q (want fail, warn, or off)", s)
}

// Policy is the per-metric comparison tolerance.
type Policy struct {
	// WarnRatio and FailRatio bound the regression of a perf metric
	// relative to its baseline value: 1.08 warns beyond +8%, 1.30 fails
	// beyond +30%. Only used for Kind Perf.
	WarnRatio, FailRatio float64
	// Epsilon is the relative tolerance of an exact metric: deviations
	// beyond it fail. Only used for Kind Exact.
	Epsilon float64
}

// defaultPerfPolicy tolerates scheduler jitter on a shared machine but
// catches real slowdowns: the self-test's injected ~2x Step slowdown and
// any optimisation that rots by tens of percent both land far past
// FailRatio.
var defaultPerfPolicy = Policy{WarnRatio: 1.08, FailRatio: 1.30}

// defaultExactPolicy absorbs only float-printing noise; simulation results
// are seed-deterministic, so anything beyond it is a behaviour change.
var defaultExactPolicy = Policy{Epsilon: 1e-9}

// policyOverrides adjusts individual metrics. The telemetry overhead ratio
// gets a wider band: it is a quotient of two timings, so its noise is the
// sum of both.
var policyOverrides = map[string]Policy{
	"machine_step_telemetry_ratio": {WarnRatio: 1.12, FailRatio: 1.40},
	// Also a quotient of two timings — and the hard 2x floor lives in the
	// dirigent-ci -skipahead gate, so the band here only tracks drift.
	"step_skipahead_speedup": {WarnRatio: 1.12, FailRatio: 1.40},
}

func policyFor(m *Metric) Policy {
	if p, ok := policyOverrides[m.Name]; ok {
		return p
	}
	if m.Kind == Perf {
		return defaultPerfPolicy
	}
	return defaultExactPolicy
}

// Outcome classifies one metric comparison.
type Outcome string

const (
	OK      Outcome = "ok"
	Warn    Outcome = "warn"
	Fail    Outcome = "fail"
	New     Outcome = "new"
	Missing Outcome = "missing"
)

// Finding is one metric's comparison result.
type Finding struct {
	Metric  string     `json:"metric"`
	Unit    string     `json:"unit"`
	Kind    MetricKind `json:"kind"`
	Outcome Outcome    `json:"outcome"`
	// Base and Cur are the compared values (baseline and fresh run).
	Base float64 `json:"base"`
	Cur  float64 `json:"cur"`
	// Delta is the relative change (cur/base - 1); 0 when base is 0.
	Delta float64 `json:"delta"`
	// Msg explains non-OK outcomes.
	Msg string `json:"msg,omitempty"`
}

// Report is the outcome of holding a fresh run against a baseline.
type Report struct {
	BaselinePath string   `json:"baseline_path,omitempty"`
	Perf         PerfMode `json:"perf_mode"`
	// EnvComparable is false when the baseline was recorded on different
	// hardware; perf failures are demoted to warnings in that case.
	EnvComparable bool      `json:"env_comparable"`
	Findings      []Finding `json:"findings"`
	Warns         int       `json:"warns"`
	Fails         int       `json:"fails"`
}

// OK reports whether the gate passes (warnings allowed, failures not).
func (r *Report) OK() bool { return r.Fails == 0 }

// Compare holds a fresh suite run against a baseline. Perf metrics compare
// min-of-N within a tolerance band; exact metrics must match to within
// float noise. Metrics present on only one side are reported (a vanished
// metric fails — a silently dropped probe is itself a regression).
func Compare(base, cur *Baseline, mode PerfMode) *Report {
	r := &Report{Perf: mode, EnvComparable: base.Env.Comparable(cur.Env)}
	for i := range base.Metrics {
		bm := &base.Metrics[i]
		cm := cur.Metric(bm.Name)
		if cm == nil {
			r.add(Finding{Metric: bm.Name, Unit: bm.Unit, Kind: bm.Kind, Outcome: Fail,
				Base: bm.Value(),
				Msg:  "metric missing from this run; the probe was dropped or renamed"})
			continue
		}
		r.add(compareOne(bm, cm, mode, r.EnvComparable))
	}
	for i := range cur.Metrics {
		cm := &cur.Metrics[i]
		if base.Metric(cm.Name) == nil {
			r.add(Finding{Metric: cm.Name, Unit: cm.Unit, Kind: cm.Kind, Outcome: New,
				Cur: cm.Value(),
				Msg: "not in the baseline; re-record to start tracking it"})
		}
	}
	return r
}

func (r *Report) add(f Finding) {
	switch f.Outcome {
	case Warn:
		r.Warns++
	case Fail:
		r.Fails++
	}
	r.Findings = append(r.Findings, f)
}

func compareOne(bm, cm *Metric, mode PerfMode, envComparable bool) Finding {
	f := Finding{Metric: bm.Name, Unit: bm.Unit, Kind: bm.Kind, Base: bm.Value(), Cur: cm.Value(), Outcome: OK}
	if f.Base != 0 {
		f.Delta = f.Cur/f.Base - 1
	}
	pol := policyFor(bm)
	switch bm.Kind {
	case Perf:
		if mode == PerfOff {
			f.Msg = "perf comparison disabled"
			return f
		}
		// Perf metrics are lower-is-better except those flagged
		// HigherBetter (e.g. the skip-ahead speedup); the ratio is oriented
		// so > 1 is always a regression.
		ratio := math.Inf(1)
		if bm.HigherBetter {
			if f.Cur > 0 {
				ratio = f.Base / f.Cur
			}
		} else if f.Base > 0 {
			ratio = f.Cur / f.Base
		}
		worseWord := "slower"
		if bm.HigherBetter {
			worseWord = "worse"
		}
		switch {
		case ratio <= pol.WarnRatio:
			// Within the noise band (improvements land here too).
		case ratio <= pol.FailRatio:
			f.Outcome = Warn
			f.Msg = fmt.Sprintf("%.1f%% %s than baseline (warn above +%.0f%%)",
				(ratio-1)*100, worseWord, (pol.WarnRatio-1)*100)
		default:
			f.Outcome = Fail
			f.Msg = fmt.Sprintf("%.1f%% %s than baseline (fail above +%.0f%%)",
				(ratio-1)*100, worseWord, (pol.FailRatio-1)*100)
			if mode == PerfWarn {
				f.Outcome = Warn
				f.Msg += "; demoted to warning by -perf warn"
			} else if !envComparable {
				f.Outcome = Warn
				f.Msg += "; demoted to warning: baseline recorded on different hardware"
			}
		}
	case Exact:
		scale := math.Max(math.Abs(f.Base), math.Abs(f.Cur))
		if scale == 0 {
			return f // both zero: identical
		}
		if math.Abs(f.Cur-f.Base)/scale <= pol.Epsilon {
			return f
		}
		f.Outcome = Fail
		worse := f.Cur < f.Base == bm.HigherBetter
		if worse {
			f.Msg = fmt.Sprintf("deterministic QoS metric regressed from %g to %g", f.Base, f.Cur)
		} else {
			f.Msg = fmt.Sprintf("deterministic metric changed from %g to %g (an improvement? re-record the baseline to accept it)", f.Base, f.Cur)
		}
	default:
		f.Outcome = Fail
		f.Msg = fmt.Sprintf("unknown metric kind %q", bm.Kind)
	}
	return f
}

// Text renders the report for terminals.
func (r *Report) Text() string {
	var b strings.Builder
	if r.BaselinePath != "" {
		fmt.Fprintf(&b, "baseline: %s\n", r.BaselinePath)
	}
	if !r.EnvComparable {
		fmt.Fprintf(&b, "note: baseline recorded on different hardware; perf thresholds demoted to warnings\n")
	}
	fmt.Fprintf(&b, "%-44s %-8s %14s %14s %9s  %s\n", "metric", "outcome", "baseline", "current", "delta", "note")
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%-44s %-8s %14.6g %14.6g %+8.2f%%  %s\n",
			f.Metric, f.Outcome, f.Base, f.Cur, f.Delta*100, f.Msg)
	}
	fmt.Fprintf(&b, "%d metrics, %d warnings, %d failures\n", len(r.Findings), r.Warns, r.Fails)
	return b.String()
}

// Markdown renders the report as a GitHub-flavoured table (for CI job
// summaries).
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("### Perf/QoS regression gate\n\n")
	if r.BaselinePath != "" {
		fmt.Fprintf(&b, "Baseline: `%s`", r.BaselinePath)
		if !r.EnvComparable {
			b.WriteString(" _(different hardware — perf thresholds demoted to warnings)_")
		}
		b.WriteString("\n\n")
	}
	b.WriteString("| metric | outcome | baseline | current | delta | note |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, f := range r.Findings {
		icon := map[Outcome]string{OK: "✅", Warn: "⚠️", Fail: "❌", New: "🆕", Missing: "❌"}[f.Outcome]
		fmt.Fprintf(&b, "| `%s` | %s %s | %.6g | %.6g | %+.2f%% | %s |\n",
			f.Metric, icon, f.Outcome, f.Base, f.Cur, f.Delta*100, f.Msg)
	}
	fmt.Fprintf(&b, "\n**%d metrics, %d warnings, %d failures**\n", len(r.Findings), r.Warns, r.Fails)
	return b.String()
}

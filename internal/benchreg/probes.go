package benchreg

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dirigent/internal/config"
	"dirigent/internal/experiment"
	"dirigent/internal/machine"
	"dirigent/internal/policy"
	"dirigent/internal/scenario"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// Options sizes the suite. The defaults keep a full run in single-digit
// seconds so the gate is cheap enough for every push.
type Options struct {
	// PerfSamples is how many independent repetitions each wall-clock probe
	// gets; comparison uses the minimum (the noise floor).
	PerfSamples int
	// StepIters is the number of machine quanta timed per sample.
	StepIters int
	// EventIters is the number of telemetry events folded per sink sample.
	EventIters int
	// Executions is the post-warmup FG execution count of each QoS run.
	Executions int
	// PredictionExecutions is the per-mix execution count of the predictor
	// accuracy probes.
	PredictionExecutions int
	// ResilienceExecutions is the per-run FG execution count of the
	// fault-injection probes.
	ResilienceExecutions int
	// Quick trims the exact probes to one mix per family — for self-tests
	// and smoke runs, not for recorded baselines.
	Quick bool
	// StepHook is installed into every timed machine's configuration. The
	// self-test injects a busy-wait here to prove the perf gate catches a
	// machine.Step slowdown; it must stay nil otherwise.
	StepHook func()
}

// DefaultOptions sizes the suite for recorded baselines.
func DefaultOptions() Options {
	return Options{
		PerfSamples:          5,
		StepIters:            20000,
		EventIters:           200000,
		Executions:           12,
		PredictionExecutions: 16,
		ResilienceExecutions: 40,
	}
}

// QuickOptions sizes the suite for self-tests and smoke runs.
func QuickOptions() Options {
	return Options{
		PerfSamples:          3,
		StepIters:            4000,
		EventIters:           40000,
		Executions:           8,
		PredictionExecutions: 8,
		ResilienceExecutions: 24,
		Quick:                true,
	}
}

func (o Options) validate() error {
	if o.PerfSamples < 1 || o.StepIters < 1 || o.EventIters < 1 ||
		o.Executions < 4 || o.PredictionExecutions < 4 || o.ResilienceExecutions < 8 {
		return fmt.Errorf("benchreg: invalid options %+v", o)
	}
	return nil
}

// predictionMixes are the predictor-accuracy probe workloads: the paper's
// Fig. 6 mix plus one per remaining standalone BG benchmark, covering the
// bandwidth-heavy, cache-heavy, and mixed interference regimes.
func predictionMixes(quick bool) []experiment.Mix {
	mixes := []experiment.Mix{
		{Name: "raytrace rs", FG: []string{"raytrace"}, BG: fiveBG("rs")},
		{Name: "ferret bwaves", FG: []string{"ferret"}, BG: fiveBG("bwaves")},
		{Name: "streamcluster pca", FG: []string{"streamcluster"}, BG: fiveBG("pca")},
	}
	if quick {
		return mixes[:1]
	}
	return mixes
}

// qosMixes are the completion-rate probe workloads.
func qosMixes(quick bool) []experiment.Mix {
	mixes := []experiment.Mix{
		{Name: "ferret rs", FG: []string{"ferret"}, BG: fiveBG("rs")},
		{Name: "bodytrack pca", FG: []string{"bodytrack"}, BG: fiveBG("pca")},
	}
	if quick {
		return mixes[:1]
	}
	return mixes
}

func fiveBG(name string) []string {
	return []string{name, name, name, name, name}
}

// metricSlug turns a mix name into a metric-name component.
func metricSlug(mixName string) string {
	return strings.ReplaceAll(mixName, " ", "_")
}

// Run executes the full probe suite and returns an unstamped baseline
// (RecordedAt empty; the caller stamps it when recording).
func Run(o Options) (*Baseline, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	b := &Baseline{
		Schema: SchemaVersion,
		Tool:   "dirigent-ci",
		Env:    CurrentEnvironment(),
	}

	// --- Wall-clock probes (Kind Perf) -----------------------------------
	stepNop := make([]float64, 0, o.PerfSamples)
	stepRatio := make([]float64, 0, o.PerfSamples)
	aggNs := make([]float64, 0, o.PerfSamples)
	jsonlNs := make([]float64, 0, o.PerfSamples)
	for s := 0; s < o.PerfSamples; s++ {
		nop, err := stepSample(o, telemetry.Nop())
		if err != nil {
			return nil, err
		}
		traced, err := stepSample(o, telemetry.NewAggregator())
		if err != nil {
			return nil, err
		}
		stepNop = append(stepNop, nop)
		stepRatio = append(stepRatio, traced/nop)
		aggNs = append(aggNs, sinkSample(telemetry.NewAggregator(), o.EventIters))
		jsonlNs = append(jsonlNs, sinkSample(telemetry.NewJSONL(io.Discard).Include(telemetry.KindQuantumStep), o.EventIters))
	}
	b.Metrics = append(b.Metrics,
		newMetric("machine_step_wall_ns", "ns/op", StatMin, Perf, false, stepNop),
		newMetric("machine_step_telemetry_ratio", "ratio", StatMedian, Perf, false, stepRatio),
		newMetric("telemetry_aggregator_record_ns", "ns/event", StatMin, Perf, false, aggNs),
		newMetric("telemetry_jsonl_record_ns", "ns/event", StatMin, Perf, false, jsonlNs),
	)

	// Skip-ahead speedup (Kind Perf, higher is better): the wall-clock ratio
	// of the quantum-by-quantum compat engine to the batched StepN engine on
	// a short end-to-end QoS sweep. Tracked so an optimisation that quietly
	// degrades the fast path shows up as a falling speedup even while
	// absolute timings drift with the hardware.
	speedups, err := skipaheadSamples(o)
	if err != nil {
		return nil, err
	}
	b.Metrics = append(b.Metrics,
		newMetric("step_skipahead_speedup", "x", StatMedian, Perf, true, speedups))

	// --- Predictor accuracy (Kind Exact) ---------------------------------
	// A fresh runner per family keeps profile caches deterministic and
	// independent of probe ordering.
	pr := experiment.NewRunner()
	for _, mix := range predictionMixes(o.Quick) {
		res, err := pr.PredictionProbe(mix, o.PredictionExecutions, 3)
		if err != nil {
			return nil, fmt.Errorf("benchreg: prediction probe %s: %w", mix.Name, err)
		}
		slug := metricSlug(mix.Name)
		b.Metrics = append(b.Metrics,
			newMetric("predictor_mean_error_"+slug, "fraction", StatMedian, Exact, false, []float64{res.MeanError}),
		)
	}

	// --- Controller QoS (Kind Exact) -------------------------------------
	// Baseline + the two Dirigent configurations: completion rates of the
	// fine controller alone and of fine+coarse, the converged partition, and
	// the BG throughput retained — the paper's §5.4 quantities, derived from
	// each run's telemetry event stream by the experiment harness.
	qr := experiment.NewRunner()
	qr.Executions = o.Executions
	qr.Warmup = 2
	qr.ConvergenceWarmup = 10
	for _, mix := range qosMixes(o.Quick) {
		res, err := qr.RunConfigs(mix, config.Baseline, config.DirigentFreq, config.Dirigent)
		if err != nil {
			return nil, fmt.Errorf("benchreg: qos probe %s: %w", mix.Name, err)
		}
		slug := metricSlug(mix.Name)
		dir := res.ByConfig[config.Dirigent]
		b.Metrics = append(b.Metrics,
			newMetric("qos_baseline_success_"+slug, "fraction", StatMedian, Exact, true,
				[]float64{res.ByConfig[config.Baseline].MeanSuccessRate()}),
			newMetric("qos_dirigentfreq_success_"+slug, "fraction", StatMedian, Exact, true,
				[]float64{res.ByConfig[config.DirigentFreq].MeanSuccessRate()}),
			newMetric("qos_dirigent_success_"+slug, "fraction", StatMedian, Exact, true,
				[]float64{dir.MeanSuccessRate()}),
			newMetric("qos_dirigent_bg_throughput_"+slug, "ratio", StatMedian, Exact, true,
				[]float64{res.RelBGThroughput(config.Dirigent)}),
			newMetric("qos_dirigent_fg_ways_"+slug, "ways", StatMedian, Exact, false,
				[]float64{float64(dir.FGWays)}),
		)
	}

	// --- Rival policy QoS (Kind Exact) -----------------------------------
	// The competing controllers behind the policy engine (RT-Gang and the
	// CORD-style static decomposition), pinned on the detailed mix. They run
	// in their own runner so the dirigent metrics above stay byte-identical
	// to baselines recorded before the policy engine existed.
	sr := experiment.NewRunner()
	sr.Executions = o.Executions
	sr.Warmup = 2
	sr.ConvergenceWarmup = 10
	pmix := qosMixes(true)[0]
	sweep, err := sr.PolicySweep([]experiment.Mix{pmix},
		[]string{policy.NameRTGang, policy.NameCORDLike})
	if err != nil {
		return nil, fmt.Errorf("benchreg: policy probe %s: %w", pmix.Name, err)
	}
	pslug := metricSlug(pmix.Name)
	pmr := sweep.Mixes[0]
	b.Metrics = append(b.Metrics,
		newMetric("policy_rtgang_qos_"+pslug, "fraction", StatMedian, Exact, true,
			[]float64{pmr.ByPolicy[policy.NameRTGang].MeanSuccessRate()}),
		newMetric("policy_rtgang_bg_throughput_"+pslug, "ratio", StatMedian, Exact, true,
			[]float64{pmr.RelBGThroughput(policy.NameRTGang)}),
		newMetric("policy_cordlike_qos_"+pslug, "fraction", StatMedian, Exact, true,
			[]float64{pmr.ByPolicy[policy.NameCORDLike].MeanSuccessRate()}),
		newMetric("policy_cordlike_bg_throughput_"+pslug, "ratio", StatMedian, Exact, true,
			[]float64{pmr.RelBGThroughput(policy.NameCORDLike)}),
	)

	// --- Resilience (Kind Exact) -----------------------------------------
	// A shrunk fault-injection sweep (single moderate intensity) over the
	// detailed mix. The graceful-degradation contract is enforced here, not
	// just recorded: the worst per-class FG success at moderate intensity
	// must stay within 10 points of fault-free Dirigent, and re-profiling
	// must recover a stale profile to within 2 points of the fault-free
	// transient reference. The recorded values pin the exact
	// seed-deterministic outcomes on top of that.
	rr := experiment.NewRunner()
	rr.Executions = o.ResilienceExecutions
	rr.ConvergenceWarmup = 16
	rmix := qosMixes(true)[0]
	res, err := rr.ResilienceSweep(rmix, experiment.ResilienceOptions{Intensities: []float64{0.3}})
	if err != nil {
		return nil, fmt.Errorf("benchreg: resilience probe %s: %w", rmix.Name, err)
	}
	minSucc := res.MinSuccessAt(0.3)
	if res.CleanSuccess-minSucc > 0.10 {
		return nil, fmt.Errorf("benchreg: resilience probe %s: worst class success %.3f more than 10 points below fault-free %.3f",
			rmix.Name, minSucc, res.CleanSuccess)
	}
	if res.StaleCleanSuccess-res.RecoveredSuccess > 0.02 {
		return nil, fmt.Errorf("benchreg: resilience probe %s: re-profiled success %.3f more than 2 points below fault-free transient %.3f",
			rmix.Name, res.RecoveredSuccess, res.StaleCleanSuccess)
	}
	rslug := metricSlug(rmix.Name)
	b.Metrics = append(b.Metrics,
		newMetric("resilience_min_success_"+rslug, "fraction", StatMedian, Exact, true,
			[]float64{minSucc}),
		newMetric("resilience_reprofile_success_"+rslug, "fraction", StatMedian, Exact, true,
			[]float64{res.RecoveredSuccess}),
	)

	// --- Scenario suite (Kind Exact) ---------------------------------------
	// One pinned scenario per machine class, so a change to the class
	// configurations, the heterogeneous solver, or the scenario harness
	// shows up as metric drift even when no scenarios/*.json goal trips.
	for _, spec := range scenarioProbes(o.Quick) {
		sres, err := scenario.RunSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("benchreg: scenario probe %s: %w", spec.Name, err)
		}
		cslug := strings.ReplaceAll(spec.MachineClass, "-", "_")
		b.Metrics = append(b.Metrics,
			newMetric("scenario_qos_"+cslug, "fraction", StatMedian, Exact, true,
				[]float64{sres.QoSSuccess}),
			newMetric("scenario_bg_throughput_"+cslug, "ratio", StatMedian, Exact, true,
				[]float64{sres.BGThroughput}),
		)
	}

	// --- Load generator (Exact counts + Perf latency) ----------------------
	// Appended last, on an entirely fresh server/runner stack, so every
	// metric above stays byte-identical to baselines recorded before the
	// load probe existed.
	lm, err := loadProbe(o)
	if err != nil {
		return nil, err
	}
	b.Metrics = append(b.Metrics, lm...)
	return b, nil
}

// scenarioProbes pins one scenario per machine class. The goals are
// deliberately loose: the benchreg gate compares the exact recorded values,
// which is far stricter than any goal threshold.
func scenarioProbes(quick bool) []scenario.Spec {
	specs := []scenario.Spec{
		{
			Name:         "probe-xeon-e5",
			MachineClass: "xeon-e5",
			Mix:          scenario.MixSpec{FG: []string{"ferret"}, BG: []string{"rs", "lbm"}},
			Policy:       policy.NameDirigent,
			Executions:   10,
			Goals:        scenario.GoalSpec{MinQoSSuccess: 0.01},
		},
		{
			Name:         "probe-quad-low",
			MachineClass: "quad-low",
			Mix:          scenario.MixSpec{FG: []string{"ferret"}, BG: []string{"lbm", "rs"}},
			Policy:       policy.NameDirigent,
			Executions:   10,
			Goals:        scenario.GoalSpec{MinQoSSuccess: 0.01},
		},
		{
			Name:         "probe-biglittle",
			MachineClass: "biglittle",
			Mix:          scenario.MixSpec{FG: []string{"ferret", "raytrace"}, BG: []string{"lbm", "rs", "pca", "namd"}},
			Policy:       policy.NameDirigent,
			Executions:   10,
			Goals:        scenario.GoalSpec{MinQoSSuccess: 0.01},
		},
		{
			Name:         "probe-dual-socket",
			MachineClass: "dual-socket",
			Mix:          scenario.MixSpec{FG: []string{"ferret", "bodytrack"}, BG: []string{"lbm", "soplex", "bwaves", "pca"}},
			Policy:       policy.NameDirigent,
			Executions:   10,
			Goals:        scenario.GoalSpec{MinQoSSuccess: 0.01},
		},
	}
	if quick {
		return specs[:1]
	}
	return specs
}

// skipaheadSamples times a short QoS sweep (Baseline + both Dirigent
// configurations on the detailed mix) under the quantum-by-quantum compat
// engine and again under the default skip-ahead engine, returning
// compat/fast wall-clock ratios. Profiles are pre-warmed in each runner so
// the ratio reflects simulation stepping, not offline profiling; results of
// the two sweeps are guaranteed byte-identical by the equivalence tests, so
// this measures identical work.
func skipaheadSamples(o Options) ([]float64, error) {
	mix := qosMixes(true)[0]
	execs := o.Executions
	if execs > 8 {
		execs = 8
	}
	run := func(compat bool) (time.Duration, error) {
		r := experiment.NewRunner()
		r.Executions = execs
		r.Warmup = 2
		r.ConvergenceWarmup = 10
		r.CompatStepping = compat
		for _, name := range mix.FG {
			if _, err := r.Profile(name); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		if _, err := r.RunConfigs(mix, config.Baseline, config.DirigentFreq, config.Dirigent); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	n := o.PerfSamples
	if n > 3 {
		n = 3
	}
	if o.Quick {
		n = 1
	}
	out := make([]float64, 0, n)
	for s := 0; s < n; s++ {
		// Alternate which engine runs first: turbo and thermal drift on a
		// shared machine otherwise bias whichever engine consistently runs
		// while the clocks are high, and the median over mixed orders
		// cancels it.
		first, second := true, false
		if s%2 == 1 {
			first, second = second, first
		}
		dFirst, err := run(first)
		if err != nil {
			return nil, err
		}
		dSecond, err := run(second)
		if err != nil {
			return nil, err
		}
		compat, fast := dFirst, dSecond
		if s%2 == 1 {
			compat, fast = dSecond, dFirst
		}
		out = append(out, float64(compat)/float64(fast))
	}
	return out, nil
}

// SkipaheadSpeedup measures the skip-ahead engine's end-to-end speedup and
// returns the median across samples — the figure cmd/dirigent-ci's
// -skipahead gate holds against its hard floor.
func SkipaheadSpeedup(o Options) (float64, error) {
	if err := o.validate(); err != nil {
		return 0, err
	}
	samples, err := skipaheadSamples(o)
	if err != nil {
		return 0, err
	}
	m := newMetric("step_skipahead_speedup", "x", StatMedian, Perf, true, samples)
	return m.Value(), nil
}

// stepSample times o.StepIters machine quanta on the standard fully loaded
// colocation (one FG task, five BG tasks — the paper's collocation shape)
// with the given recorder attached, returning wall nanoseconds per Step.
func stepSample(o Options, rec telemetry.Recorder) (float64, error) {
	cfg := machine.DefaultConfig()
	cfg.StepHook = o.StepHook
	m, err := machine.New(cfg)
	if err != nil {
		return 0, err
	}
	m.SetRecorder(rec)
	fg := workload.FG()[0]
	if _, err := m.Launch(fg.Name, workload.MustProgram(fg), 0, 0); err != nil {
		return 0, err
	}
	bg := workload.SingleBG()[0]
	for c := 1; c < m.NumCores(); c++ {
		if _, err := m.Launch(bg.Name, workload.MustProgram(bg), c, 0); err != nil {
			return 0, err
		}
	}
	// Warm the solver state and caches before timing.
	warm := o.StepIters / 10
	if warm < 16 {
		warm = 16
	}
	for i := 0; i < warm; i++ {
		m.Step()
	}
	start := time.Now()
	for i := 0; i < o.StepIters; i++ {
		m.Step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(o.StepIters), nil
}

// sinkSample times folding a synthetic but representative event stream into
// a sink, returning wall nanoseconds per event.
func sinkSample(rec telemetry.Recorder, events int) float64 {
	stream := syntheticEvents()
	rec.Record(stream[0]) // machine start primes geometry-dependent sinks
	start := time.Now()
	for i := 0; i < events; i++ {
		rec.Record(stream[1+i%(len(stream)-1)])
	}
	return float64(time.Since(start).Nanoseconds()) / float64(events)
}

// syntheticEvents builds a fixed event mix that weights the hot kinds the
// way a real trace does: dominated by quantum steps, with periodic DVFS
// moves, controller decisions, and execution completions.
func syntheticEvents() []telemetry.Event {
	evs := []telemetry.Event{{
		Kind: telemetry.KindMachineStart, Cores: 6, Levels: 9, TopLevel: 8,
		Quantum: machine.DefaultConfig().Quantum,
	}}
	for i := 0; i < 16; i++ {
		evs = append(evs, telemetry.Event{
			Kind: telemetry.KindQuantumStep, At: sim.Time(i) * sim.DefaultQuantum,
			Utilization: 0.42, Instructions: 1.1e6, LLCMisses: 1.7e3,
		})
	}
	evs = append(evs,
		telemetry.Event{Kind: telemetry.KindDVFSTransition, Core: 3, FromLevel: 8, ToLevel: 5},
		telemetry.Event{Kind: telemetry.KindFineDecision, Reason: telemetry.ReasonFGBehind, Behind: 1, Streams: 1},
		telemetry.Event{Kind: telemetry.KindFineAction, Action: telemetry.ActionBGThrottle},
		telemetry.Event{Kind: telemetry.KindExecutionComplete, Stream: 0, Task: 1,
			Duration: 480 * time.Millisecond, Instructions: 2.4e9, LLCMisses: 3.1e6},
	)
	return evs
}

// Package benchreg is the perf/QoS regression harness: a curated suite of
// fast, seed-deterministic simulation probes plus wall-clock
// micro-benchmarks, serialized to versioned BENCH_<n>.json baselines and
// gated with noise-aware thresholds.
//
// The suite measures two very different things and treats them differently:
//
//   - Perf metrics (machine.Step ns/op, telemetry sink overhead) are wall
//     clock and therefore noisy. They are sampled N times, compared
//     min-against-min, and judged by a tolerance band: small drifts warn,
//     large ones fail — and only when baseline and check ran on comparable
//     hardware.
//   - Exact metrics (predictor accuracy, fine/coarse controller completion
//     rates, converged partition sizes) are outputs of the deterministic
//     simulator under fixed seeds. They must reproduce bit-for-bit; any
//     drift means the controllers' behaviour changed, and the gate fails
//     until the change is acknowledged by re-recording the baseline.
//
// cmd/dirigent-ci exposes the harness (-record / -check / -selftest), and
// scripts/ci.sh -bench wires it into CI.
package benchreg

import (
	"fmt"
	"time"
)

// SelfTest validates the gate end-to-end with quick options: a recorded
// baseline must pass against a fresh identical run, and an artificially
// injected machine.Step slowdown must make the check fail. It is the
// executable proof that the harness would catch a real regression.
func SelfTest(logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	o := QuickOptions()

	logf("selftest: recording reference run")
	base, err := Run(o)
	if err != nil {
		return fmt.Errorf("benchreg: selftest record: %w", err)
	}

	logf("selftest: verifying an unchanged tree passes")
	cur, err := Run(o)
	if err != nil {
		return fmt.Errorf("benchreg: selftest re-run: %w", err)
	}
	// PerfWarn: back-to-back wall-clock runs may jitter; determinism of the
	// exact metrics is the property under test here.
	if rep := Compare(base, cur, PerfWarn); !rep.OK() {
		return fmt.Errorf("benchreg: selftest: identical run failed the gate:\n%s", rep.Text())
	}

	logf("selftest: verifying an injected machine.Step slowdown fails")
	slow := o
	// Far above the +30% fail band even when the baseline Step itself is
	// inflated — by the race detector, or by the rest of the test suite
	// running in parallel — so the injected regression is always caught.
	slow.StepHook = busyWait(12 * time.Microsecond)
	slowed, err := Run(slow)
	if err != nil {
		return fmt.Errorf("benchreg: selftest slow run: %w", err)
	}
	rep := Compare(base, slowed, PerfFail)
	if rep.OK() {
		return fmt.Errorf("benchreg: selftest: injected slowdown was NOT caught:\n%s", rep.Text())
	}
	for _, f := range rep.Findings {
		if f.Metric == "machine_step_wall_ns" && f.Outcome == Fail {
			logf("selftest: gate caught the slowdown (%+.0f%% on machine_step_wall_ns)", f.Delta*100)
			return nil
		}
	}
	return fmt.Errorf("benchreg: selftest: gate failed but not on machine_step_wall_ns:\n%s", rep.Text())
}

// busyWait returns a hook that burns roughly d of wall-clock time.
func busyWait(d time.Duration) func() {
	return func() {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
	}
}

package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// SchemaVersion is bumped whenever the baseline file format changes
// incompatibly; Load refuses files written by a different major schema so a
// stale gate never silently compares apples to oranges.
const SchemaVersion = 1

// baselinePattern matches committed baseline files: BENCH_<n>.json.
var baselinePattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// MetricKind separates the two comparison regimes of the suite.
type MetricKind string

const (
	// Perf marks wall-clock measurements (ns/op, overhead ratios). They are
	// noisy, so comparison is min-of-N against min-of-N with a per-metric
	// tolerance band: small drifts warn, large ones fail.
	Perf MetricKind = "perf"
	// Exact marks seed-deterministic simulation outputs (QoS completion
	// rates, prediction error). Same seeds must reproduce them bit-for-bit,
	// so any deviation beyond float-printing noise fails the gate — a
	// behaviour change must be acknowledged by re-recording the baseline.
	Exact MetricKind = "exact"
)

// Metric is one measured quantity of a suite run.
type Metric struct {
	// Name identifies the metric; comparison is by name.
	Name string `json:"name"`
	// Unit is the human-readable unit ("ns/op", "ratio", "fraction", ...).
	Unit string `json:"unit"`
	// Kind selects the comparison regime.
	Kind MetricKind `json:"kind"`
	// HigherBetter orients regression detection (true for success rates and
	// throughput, false for latencies and error fractions).
	HigherBetter bool `json:"higher_better,omitempty"`
	// Stat names the sample statistic used for comparison: "min" for raw
	// timings (the noise floor of repeated runs — min-of-N), "median" for
	// ratios and deterministic values, where noise is two-sided.
	Stat string `json:"stat"`
	// Samples are the raw per-repetition values (one entry for Exact
	// metrics, PerfSamples entries for Perf metrics).
	Samples []float64 `json:"samples"`
	// Median and Min summarize Samples.
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
}

// Statistic names.
const (
	StatMin    = "min"
	StatMedian = "median"
)

// Value returns the number used for comparison, per Stat.
func (m *Metric) Value() float64 {
	if m.Stat == StatMin {
		return m.Min
	}
	return m.Median
}

// newMetric builds a metric from raw samples, computing the summary fields.
func newMetric(name, unit, stat string, kind MetricKind, higherBetter bool, samples []float64) Metric {
	met := Metric{Name: name, Unit: unit, Stat: stat, Kind: kind, HigherBetter: higherBetter, Samples: samples}
	if len(samples) == 0 {
		return met
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	met.Min = sorted[0]
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		met.Median = sorted[mid]
	} else {
		met.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return met
}

// Environment stamps where a baseline was recorded. Perf numbers only
// transfer between identical environments; the comparator demotes perf
// failures to warnings when the environment differs.
type Environment struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// CurrentEnvironment describes the running process.
func CurrentEnvironment() Environment {
	return Environment{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Comparable reports whether perf numbers recorded under e can be held
// against ones measured under o with hard thresholds.
func (e Environment) Comparable(o Environment) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH && e.NumCPU == o.NumCPU
}

// Baseline is one recorded suite run — the content of a BENCH_<n>.json file.
type Baseline struct {
	// Schema is the file format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Tool identifies the writer ("dirigent-ci").
	Tool string `json:"tool"`
	// RecordedAt is an RFC 3339 timestamp, stamped by the recording command
	// (the library itself never reads the wall clock for content).
	RecordedAt string `json:"recorded_at,omitempty"`
	// Env is the recording environment.
	Env Environment `json:"env"`
	// Metrics are the suite's measurements, in suite order.
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric, or nil.
func (b *Baseline) Metric(name string) *Metric {
	for i := range b.Metrics {
		if b.Metrics[i].Name == name {
			return &b.Metrics[i]
		}
	}
	return nil
}

// Save writes the baseline as indented JSON. The write goes through a
// temporary file in the same directory so a crash never leaves a truncated
// baseline behind.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreg: encode baseline: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return fmt.Errorf("benchreg: save baseline: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("benchreg: save baseline: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("benchreg: save baseline: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("benchreg: save baseline: %w", err)
	}
	return nil
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchreg: load baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchreg: parse %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchreg: %s has schema %d, this tool reads %d (re-record the baseline)",
			path, b.Schema, SchemaVersion)
	}
	if len(b.Metrics) == 0 {
		return nil, fmt.Errorf("benchreg: %s contains no metrics", path)
	}
	return &b, nil
}

// LatestPath returns the highest-numbered BENCH_<n>.json in dir, or an error
// when none exists yet.
func LatestPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("benchreg: scan %s: %w", dir, err)
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := baselinePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue // out-of-range index; not a usable baseline
		}
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if bestN < 0 {
		return "", fmt.Errorf("benchreg: no BENCH_<n>.json baseline in %s (run with -record first)", dir)
	}
	return filepath.Join(dir, best), nil
}

// NextPath returns the path the next recorded baseline should be written to:
// BENCH_<n+1>.json after the highest existing n, BENCH_1.json in a fresh
// repository.
func NextPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("benchreg: scan %s: %w", dir, err)
	}
	maxN := 0
	for _, e := range entries {
		m := baselinePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue // out-of-range index; not a usable baseline
		}
		if n > maxN {
			maxN = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", maxN+1)), nil
}

package benchreg

import (
	"fmt"

	"dirigent/internal/load"
	"dirigent/internal/server"
)

// loadProbeSpec is the pinned load-generator probe: a short bursty churn
// across a runtime and a non-runtime template. Synthesis counts are seeded
// and exact; the replay latency is wall-clock and therefore Perf-gated
// (warn on drift, never fail). Like the resilience probes, the structural
// invariants are enforced here, not just recorded: a probe replay that
// fails operations, leaks tenants, or loses creates is a hard error. The
// late-drop budget is disabled for the probe — how far the schedule slips
// is wall-clock (a -race run on a loaded single-core box slips past any
// fixed budget), and drop detection is already proven by load.SelfTest's
// strangled replay and gated at CI speed by the ci.sh smoke leg.
func loadProbeSpec() load.Spec {
	return load.Spec{
		Name:             "benchreg-load",
		Seed:             1789,
		DurationS:        3,
		Arrival:          load.ArrivalSpec{Model: load.ModelBursty, RatePerS: 3, BurstFactor: 2, OnS: 0.75, OffS: 0.75},
		Lifetime:         load.LifetimeSpec{MeanS: 1, MinS: 0.2},
		RetargetRatePerS: 0.5,
		MaxLive:          6,
		Tenants: []load.TenantTemplate{
			{
				Name: "rt", Weight: 3,
				Mix:        load.MixSpec{FG: []string{"ferret"}, BG: []string{"pca"}},
				TargetMS:   []float64{1500},
				Executions: 5,
			},
			{
				Name: "base", Weight: 1, Config: "Baseline",
				Mix:        load.MixSpec{FG: []string{"bodytrack"}, BG: []string{"pca"}},
				TargetMS:   []float64{2000},
				Executions: 5,
			},
		},
	}
}

// loadProbe synthesizes the pinned probe trace (gating byte-determinism and
// recording its exact event counts) and replays it against a fresh
// in-process server, recording API create latency as a Perf metric.
func loadProbe(o Options) ([]Metric, error) {
	spec := loadProbeSpec()
	if err := load.CheckDeterminism(spec, 0); err != nil {
		return nil, fmt.Errorf("benchreg: load probe: %w", err)
	}
	tr, err := load.Synthesize(spec, 0)
	if err != nil {
		return nil, fmt.Errorf("benchreg: load probe: %w", err)
	}
	creates, retargets, evicts := tr.Counts()

	samples := o.PerfSamples
	if samples > 2 || o.Quick {
		samples = 1
	}
	createP95 := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		base, stop, err := load.StartLocal(server.Config{})
		if err != nil {
			return nil, fmt.Errorf("benchreg: load probe: %w", err)
		}
		rep, rerr := load.Replay(tr, spec, load.Options{
			BaseURL: base, Speed: 4, LateBudget: load.LateBudget(-1),
		})
		serr := stop()
		if rerr != nil {
			return nil, fmt.Errorf("benchreg: load probe replay: %w", rerr)
		}
		if serr != nil {
			return nil, fmt.Errorf("benchreg: load probe shutdown: %w", serr)
		}
		if rep.FailedTotal > 0 {
			return nil, fmt.Errorf("benchreg: load probe: server rejected %d operations (first: %s)",
				rep.FailedTotal, rep.FailSample)
		}
		if rep.Leaked > 0 {
			return nil, fmt.Errorf("benchreg: load probe leaked %d tenants: %v", rep.Leaked, rep.LeakedIDs)
		}
		cs := rep.OpStat(load.OpCreate)
		if cs == nil || cs.N != creates {
			return nil, fmt.Errorf("benchreg: load probe: create count %v, want %d", cs, creates)
		}
		createP95 = append(createP95, cs.P95MS)
	}

	return []Metric{
		newMetric("load_trace_events", "events", StatMedian, Exact, false,
			[]float64{float64(len(tr.Events))}),
		newMetric("load_trace_creates", "tenants", StatMedian, Exact, false,
			[]float64{float64(creates)}),
		newMetric("load_trace_retargets", "ops", StatMedian, Exact, false,
			[]float64{float64(retargets)}),
		newMetric("load_trace_evicts", "ops", StatMedian, Exact, false,
			[]float64{float64(evicts)}),
		newMetric("load_replay_create_p95_ms", "ms", StatMin, Perf, false, createP95),
	}, nil
}

package benchreg

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// quickRun executes the reduced probe suite once and shares the result: the
// suite costs real wall time, and every consumer treats it as read-only or
// clones it first.
var quickRun = sync.OnceValues(func() (*Baseline, error) {
	return Run(QuickOptions())
})

func mustQuickRun(t *testing.T) *Baseline {
	t.Helper()
	b, err := quickRun()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// clone deep-copies a baseline via its JSON form — the same round trip a
// committed baseline file goes through.
func clone(t *testing.T, b *Baseline) *Baseline {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var c Baseline
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return &c
}

// TestBaselineRoundTrip is the recorder's core contract: record → save →
// load → check on an unchanged tree passes with zero warnings and failures.
// In particular the JSON encoding must round-trip every float64 exactly, or
// the Exact regime's 1e-9 epsilon would trip on serialization alone.
func TestBaselineRoundTrip(t *testing.T) {
	b := mustQuickRun(t)
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Metrics) != len(b.Metrics) {
		t.Fatalf("round trip changed metric count: %d != %d", len(loaded.Metrics), len(b.Metrics))
	}
	rep := Compare(loaded, b, PerfFail)
	if rep.Fails != 0 || rep.Warns != 0 {
		t.Fatalf("check against own recording not clean: %d fails, %d warns\n%s",
			rep.Fails, rep.Warns, rep.Text())
	}
	if !rep.EnvComparable {
		t.Fatal("environment must compare equal to itself")
	}
}

// TestInjectedQoSRegressionFails verifies the gate's reason for existing: a
// 20% drop in a deterministic QoS completion rate must fail the check, in
// every perf mode — exact metrics are never demoted.
func TestInjectedQoSRegressionFails(t *testing.T) {
	base := mustQuickRun(t)
	for _, mode := range []PerfMode{PerfFail, PerfWarn, PerfOff} {
		cur := clone(t, base)
		injected := ""
		for i := range cur.Metrics {
			m := &cur.Metrics[i]
			if m.Kind == Exact && m.HigherBetter {
				scaleMetric(m, 0.8)
				injected = m.Name
				break
			}
		}
		if injected == "" {
			t.Fatal("suite produced no higher-is-better exact metric to degrade")
		}
		rep := Compare(base, cur, mode)
		if rep.OK() {
			t.Fatalf("mode %s: 20%% drop in %s passed the gate\n%s", mode, injected, rep.Text())
		}
		assertOutcome(t, rep, injected, Fail)
	}
}

// TestInjectedPerfRegression verifies the perf band: a 50% slowdown fails
// under -perf fail but is demoted to a warning under -perf warn.
func TestInjectedPerfRegression(t *testing.T) {
	base := mustQuickRun(t)
	cur := clone(t, base)
	const name = "machine_step_wall_ns"
	m := cur.Metric(name)
	if m == nil {
		t.Fatalf("suite produced no %s metric", name)
	}
	scaleMetric(m, 1.5)

	rep := Compare(base, cur, PerfFail)
	if rep.OK() {
		t.Fatalf("50%% Step slowdown passed under PerfFail\n%s", rep.Text())
	}
	assertOutcome(t, rep, name, Fail)

	rep = Compare(base, cur, PerfWarn)
	if !rep.OK() {
		t.Fatalf("PerfWarn must demote perf failures to warnings\n%s", rep.Text())
	}
	assertOutcome(t, rep, name, Warn)
}

// scaleMetric multiplies every field a comparison might read.
func scaleMetric(m *Metric, factor float64) {
	for i := range m.Samples {
		m.Samples[i] *= factor
	}
	m.Median *= factor
	m.Min *= factor
}

func assertOutcome(t *testing.T, rep *Report, metric string, want Outcome) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Metric == metric {
			if f.Outcome != want {
				t.Fatalf("%s: outcome %s, want %s (%s)", metric, f.Outcome, want, f.Msg)
			}
			return
		}
	}
	t.Fatalf("no finding for %s", metric)
}

// TestSuiteDeterministic re-runs the suite and requires every exact metric
// to reproduce bit-for-bit: the simulation is seeded, so the probes must be
// too. Skipped in -short mode (it costs a second full quick run).
func TestSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second suite run is slow")
	}
	first := mustQuickRun(t)
	second, err := Run(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(first, second, PerfOff)
	for _, f := range rep.Findings {
		if f.Kind == Exact && f.Outcome != OK {
			t.Errorf("%s: %g != %g across identical runs (%s)", f.Metric, f.Base, f.Cur, f.Msg)
		}
	}
}

// TestSelfTest smoke-runs the end-to-end gate validation (record, clean
// re-check, injected Step slowdown must trip). Skipped in -short mode: it
// runs the quick suite three times.
func TestSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest runs the quick suite three times")
	}
	if err := SelfTest(t.Logf); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSyntheticOutcomes(t *testing.T) {
	env := CurrentEnvironment()
	mk := func(name string, kind MetricKind, stat string, v float64) Metric {
		return newMetric(name, "u", stat, kind, false, []float64{v})
	}
	base := &Baseline{Schema: SchemaVersion, Env: env, Metrics: []Metric{
		mk("p_ok", Perf, StatMin, 100),
		mk("p_warn", Perf, StatMin, 100),
		mk("p_fail", Perf, StatMin, 100),
		mk("e_same", Exact, StatMedian, 0.95),
		mk("gone", Exact, StatMedian, 1),
	}}
	cur := &Baseline{Schema: SchemaVersion, Env: env, Metrics: []Metric{
		mk("p_ok", Perf, StatMin, 104),   // +4%: inside the noise band
		mk("p_warn", Perf, StatMin, 115), // +15%: warn band
		mk("p_fail", Perf, StatMin, 150), // +50%: fail band
		mk("e_same", Exact, StatMedian, 0.95),
		mk("fresh", Exact, StatMedian, 2), // not in baseline
	}}
	rep := Compare(base, cur, PerfFail)
	assertOutcome(t, rep, "p_ok", OK)
	assertOutcome(t, rep, "p_warn", Warn)
	assertOutcome(t, rep, "p_fail", Fail)
	assertOutcome(t, rep, "e_same", OK)
	assertOutcome(t, rep, "gone", Fail) // a vanished probe is a regression
	assertOutcome(t, rep, "fresh", New)
	if rep.Fails != 2 || rep.Warns != 1 {
		t.Fatalf("fails=%d warns=%d, want 2 and 1\n%s", rep.Fails, rep.Warns, rep.Text())
	}

	// Different hardware demotes the perf failure but keeps exact failures.
	far := clone(t, cur)
	far.Env.NumCPU = env.NumCPU + 8
	far.Metric("e_same").Median = 0.5
	far.Metric("e_same").Samples[0] = 0.5
	rep = Compare(base, far, PerfFail)
	if rep.EnvComparable {
		t.Fatal("different NumCPU must not be comparable")
	}
	assertOutcome(t, rep, "p_fail", Warn)
	assertOutcome(t, rep, "e_same", Fail)
}

func TestExactEpsilon(t *testing.T) {
	env := CurrentEnvironment()
	mk := func(v float64) *Baseline {
		return &Baseline{Schema: SchemaVersion, Env: env,
			Metrics: []Metric{newMetric("m", "u", StatMedian, Exact, true, []float64{v})}}
	}
	v := 0.9583333333333334
	rep := Compare(mk(v), mk(v*(1+1e-12)), PerfFail)
	if !rep.OK() {
		t.Fatalf("sub-epsilon drift must pass\n%s", rep.Text())
	}
	rep = Compare(mk(v), mk(v*(1+1e-6)), PerfFail)
	if rep.OK() {
		t.Fatalf("super-epsilon drift must fail\n%s", rep.Text())
	}
}

func TestBaselineNumbering(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestPath(dir); err == nil {
		t.Fatal("LatestPath on an empty dir must error")
	}
	next, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(next) != "BENCH_1.json" {
		t.Fatalf("first baseline is %s, want BENCH_1.json", filepath.Base(next))
	}
	b := &Baseline{Schema: SchemaVersion, Tool: "test", Env: CurrentEnvironment(),
		Metrics: []Metric{newMetric("m", "u", StatMedian, Exact, false, []float64{1})}}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json"} {
		if err := b.Save(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := LatestPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != "BENCH_10.json" {
		t.Fatalf("latest is %s, want BENCH_10.json (numeric, not lexical, order)", filepath.Base(latest))
	}
	next, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(next) != "BENCH_11.json" {
		t.Fatalf("next is %s, want BENCH_11.json", filepath.Base(next))
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	wrongSchema := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema": 999, "metrics": [{"name":"m"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrongSchema); err == nil {
		t.Fatal("Load must reject a future schema version")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema": 1, "metrics": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("Load must reject a baseline with no metrics")
	}
}

func TestMetricStats(t *testing.T) {
	m := newMetric("m", "ns", StatMin, Perf, false, []float64{5, 3, 9, 4})
	if m.Min != 3 {
		t.Fatalf("min = %g, want 3", m.Min)
	}
	if m.Median != 4.5 {
		t.Fatalf("median = %g, want 4.5", m.Median)
	}
	if m.Value() != 3 {
		t.Fatalf("StatMin value = %g, want the min", m.Value())
	}
	m.Stat = StatMedian
	if m.Value() != 4.5 {
		t.Fatalf("StatMedian value = %g, want the median", m.Value())
	}
	odd := newMetric("m", "ns", StatMedian, Perf, false, []float64{2, 1, 3})
	if odd.Median != 2 {
		t.Fatalf("odd median = %g, want 2", odd.Median)
	}
}

// TestSuiteShape pins the metric families every recorded baseline must
// contain, so a probe cannot silently disappear from the suite itself.
func TestSuiteShape(t *testing.T) {
	b := mustQuickRun(t)
	for _, name := range []string{
		"machine_step_wall_ns",
		"machine_step_telemetry_ratio",
		"telemetry_aggregator_record_ns",
		"telemetry_jsonl_record_ns",
		"predictor_mean_error_raytrace_rs",
		"qos_baseline_success_ferret_rs",
		"qos_dirigentfreq_success_ferret_rs",
		"qos_dirigent_success_ferret_rs",
		"qos_dirigent_bg_throughput_ferret_rs",
		"qos_dirigent_fg_ways_ferret_rs",
	} {
		m := b.Metric(name)
		if m == nil {
			t.Errorf("quick suite missing metric %s", name)
			continue
		}
		if len(m.Samples) == 0 || math.IsNaN(m.Value()) {
			t.Errorf("%s has no usable value", name)
		}
	}
	for _, m := range b.Metrics {
		if m.Kind != Perf && m.Kind != Exact {
			t.Errorf("%s has unknown kind %q", m.Name, m.Kind)
		}
		if m.Stat != StatMin && m.Stat != StatMedian {
			t.Errorf("%s has unknown stat %q", m.Name, m.Stat)
		}
	}
}

package sim

import (
	"testing"
	"time"
)

func TestNewClockValidation(t *testing.T) {
	if _, err := NewClock(0); err == nil {
		t.Error("zero quantum should error")
	}
	if _, err := NewClock(-time.Millisecond); err == nil {
		t.Error("negative quantum should error")
	}
	c, err := NewClock(DefaultQuantum)
	if err != nil {
		t.Fatal(err)
	}
	if c.Quantum() != DefaultQuantum {
		t.Errorf("Quantum = %v", c.Quantum())
	}
}

func TestMustClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustClock(0) should panic")
		}
	}()
	MustClock(0)
}

func TestClockAdvance(t *testing.T) {
	c := MustClock(100 * time.Microsecond)
	if c.Now() != 0 {
		t.Errorf("fresh clock Now = %v", c.Now())
	}
	for i := 1; i <= 10; i++ {
		got := c.Advance()
		want := time.Duration(i) * 100 * time.Microsecond
		if got != want {
			t.Fatalf("Advance %d = %v, want %v", i, got, want)
		}
	}
	if _, err := c.AdvanceBy(50 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 1050*time.Microsecond {
		t.Errorf("Now = %v", c.Now())
	}
	if _, err := c.AdvanceBy(-time.Nanosecond); err == nil {
		t.Error("negative AdvanceBy should error")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset should zero the clock")
	}
}

func TestTickerFiresEveryPeriod(t *testing.T) {
	tk := MustTicker(5 * time.Millisecond)
	if tk.Period() != 5*time.Millisecond {
		t.Errorf("Period = %v", tk.Period())
	}
	fires := 0
	c := MustClock(100 * time.Microsecond)
	for c.Now() < 50*time.Millisecond {
		now := c.Advance()
		if tk.Fire(now) {
			fires++
		}
	}
	if fires != 10 {
		t.Errorf("fires = %d, want 10 over 50ms at 5ms period", fires)
	}
}

func TestTickerCatchesUpWithoutLosingTicks(t *testing.T) {
	tk := MustTicker(5 * time.Millisecond)
	// Jump straight to 20ms: ticks at 5,10,15,20 are all due; each Fire
	// call consumes exactly one.
	now := Time(20 * time.Millisecond)
	count := 0
	for tk.Fire(now) {
		count++
	}
	if count != 4 {
		t.Errorf("catch-up fires = %d, want 4", count)
	}
	if tk.Fire(now) {
		t.Error("ticker should be exhausted at t=20ms")
	}
}

func TestTickerReset(t *testing.T) {
	tk := MustTicker(5 * time.Millisecond)
	tk.Reset(100 * time.Millisecond)
	if tk.Fire(104 * time.Millisecond) {
		t.Error("should not fire before new deadline")
	}
	if !tk.Fire(105 * time.Millisecond) {
		t.Error("should fire at new deadline")
	}
}

func TestTickerValidation(t *testing.T) {
	if _, err := NewTicker(0); err == nil {
		t.Error("zero period should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTicker(0) should panic")
		}
	}()
	MustTicker(0)
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	// A zero xoshiro state would emit all zeros; SplitMix64 seeding must
	// prevent that.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRand(11)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %.3f, want ~0.1", i, frac)
		}
	}
}

func TestIntn(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(4)
		if v < 0 || v >= 4 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("Intn(4) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRand(5)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %g, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			if r.LogNormal(0, 0.1) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalMedian(t *testing.T) {
	// Median of LogNormal(mu, sigma) is exp(mu); check via sampling.
	r := NewRand(9)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(0.5, 0.3)
	}
	below := 0
	want := math.Exp(0.5)
	for _, x := range xs {
		if x < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %.3f, want ~0.5", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRand(1)
	child := parent.Split()
	// Child stream should differ from a fresh parent-seeded stream and from
	// the parent's continued stream.
	cont := make([]uint64, 50)
	for i := range cont {
		cont[i] = parent.Uint64()
	}
	match := 0
	for i := 0; i < 50; i++ {
		if child.Uint64() == cont[i] {
			match++
		}
	}
	if match > 2 {
		t.Errorf("child stream matches parent continuation %d/50 times", match)
	}
}

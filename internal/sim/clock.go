// Package sim provides the simulation backbone for the Dirigent
// reproduction: a discrete simulated clock advanced in fixed quanta, and a
// deterministic random source.
//
// Dirigent's real-system implementation samples wall-clock time with sleep()
// at a 5 ms period; inside the simulator the clock is purely logical, which
// removes scheduler and GC jitter from the control loop while preserving the
// cadence of every paper mechanism (5 ms sampling, 25 ms control decisions,
// 100 µs runtime overhead).
package sim

import (
	"fmt"
	"time"
)

// Time is an instant on the simulated timeline, measured as a duration since
// simulation start. Using time.Duration gives nanosecond granularity and
// familiar formatting for free.
type Time = time.Duration

// Clock tracks simulated time. It advances only through Advance, in
// increments chosen by the machine stepper, so all components observe an
// identical, reproducible timeline.
type Clock struct {
	now     Time
	quantum time.Duration
}

// DefaultQuantum is the simulation step: 250 µs. It is 20× finer than the
// 5 ms Dirigent sampling period, so progress within one sampling segment is
// resolved smoothly, and coarse enough that full paper sweeps finish in
// seconds of wall time.
const DefaultQuantum = 250 * time.Microsecond

// NewClock returns a clock starting at t=0 with the given quantum. A
// non-positive quantum is rejected.
func NewClock(quantum time.Duration) (*Clock, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("sim: quantum %v must be positive", quantum)
	}
	return &Clock{quantum: quantum}, nil
}

// MustClock is NewClock that panics on invalid input.
func MustClock(quantum time.Duration) *Clock {
	c, err := NewClock(quantum)
	if err != nil {
		panic(err)
	}
	return c
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Quantum returns the configured step size.
func (c *Clock) Quantum() time.Duration { return c.quantum }

// Advance moves simulated time forward by one quantum and returns the new
// time.
func (c *Clock) Advance() Time {
	c.now += c.quantum
	return c.now
}

// AdvanceBy moves simulated time forward by an arbitrary positive duration
// (used for charging runtime overhead that is finer than one quantum).
func (c *Clock) AdvanceBy(d time.Duration) (Time, error) {
	if d < 0 {
		return c.now, fmt.Errorf("sim: cannot advance clock by negative duration %v", d)
	}
	c.now += d
	return c.now, nil
}

// Reset returns the clock to t=0.
func (c *Clock) Reset() { c.now = 0 }

// Ticker fires a callback every period of simulated time, aligned to the
// first quantum boundary at or after each multiple of the period. Dirigent's
// 5 ms sampler and the experiment harness's metric snapshots are Tickers.
type Ticker struct {
	period time.Duration
	next   Time
}

// NewTicker returns a ticker with the given positive period, first firing at
// t = period.
func NewTicker(period time.Duration) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v must be positive", period)
	}
	return &Ticker{period: period, next: Time(period)}, nil
}

// MustTicker is NewTicker that panics on invalid input.
func MustTicker(period time.Duration) *Ticker {
	t, err := NewTicker(period)
	if err != nil {
		panic(err)
	}
	return t
}

// Period returns the ticker period.
func (t *Ticker) Period() time.Duration { return t.period }

// NextDue returns the next time Fire will report true — the deadline the
// skip-ahead stepper must not batch across.
func (t *Ticker) NextDue() Time { return t.next }

// Fire reports whether the ticker is due at time now, and if so advances the
// deadline. If the caller skipped past several periods, Fire catches up one
// period per call, so no tick is silently lost.
func (t *Ticker) Fire(now Time) bool {
	if now < t.next {
		return false
	}
	t.next += Time(t.period)
	return true
}

// Reset re-arms the ticker relative to the given time.
func (t *Ticker) Reset(now Time) { t.next = now + Time(t.period) }

package sim

import "math"

// Rand is a deterministic pseudo-random source (xoshiro256**). Every source
// of randomness in the simulator — OS-noise jitter, phase perturbation,
// rotate-BG selection — draws from one of these, derived from a single
// experiment seed, so full paper sweeps reproduce bit-for-bit. We do not use
// math/rand: its global state and version-dependent stream would break
// reproducibility guarantees across Go releases.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64, which maps
// any seed (including 0) to a well-mixed full state.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent child generator; use it to give each
// component its own stream so that adding draws in one component does not
// shift the stream of another.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample via the Box–Muller transform.
func (r *Rand) Norm() float64 {
	// Guard u1 away from 0 so Log is finite.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a sample of exp(N(mu, sigma)). The simulator's OS-noise
// model uses small lognormal CPI multipliers: noise is always positive and
// right-skewed, matching interference spikes (context switches, interrupts)
// better than symmetric noise.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

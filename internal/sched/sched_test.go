package sched

import (
	"testing"
	"time"

	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/workload"
)

func bench(t *testing.T, name string) *workload.Benchmark {
	t.Helper()
	return workload.MustByName(name)
}

func singleBG(t *testing.T, name string) BGSpec {
	t.Helper()
	return BGSpec{Bench: bench(t, name)}
}

func newColo(t *testing.T, fg []string, bg []BGSpec) *Colocation {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig())
	var fgb []*workload.Benchmark
	for _, n := range fg {
		fgb = append(fgb, bench(t, n))
	}
	c, err := New(m, fgb, bg, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fiveBG(t *testing.T, name string) []BGSpec {
	t.Helper()
	out := make([]BGSpec, 5)
	for i := range out {
		out[i] = singleBG(t, name)
	}
	return out
}

func TestBGSpec(t *testing.T) {
	s := singleBG(t, "bwaves")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.IsRotate() || s.Name() != "bwaves" {
		t.Errorf("spec = %+v", s)
	}
	p := BGSpec{Pair: [2]*workload.Benchmark{bench(t, "lbm"), bench(t, "namd")}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsRotate() || p.Name() != "lbm+namd" {
		t.Errorf("pair spec = %+v", p)
	}
	if err := (BGSpec{}).Validate(); err == nil {
		t.Error("empty spec should error")
	}
	if (BGSpec{}).Name() != "<empty>" {
		t.Error("empty spec name")
	}
	both := BGSpec{Bench: bench(t, "bwaves"), Pair: [2]*workload.Benchmark{bench(t, "lbm"), bench(t, "namd")}}
	if err := both.Validate(); err == nil {
		t.Error("spec with both should error")
	}
	half := BGSpec{Pair: [2]*workload.Benchmark{bench(t, "lbm"), nil}}
	if err := half.Validate(); err == nil {
		t.Error("half pair should error")
	}
}

func TestNewValidation(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	fg := []*workload.Benchmark{bench(t, "ferret")}
	bg5 := make([]BGSpec, 5)
	for i := range bg5 {
		bg5[i] = singleBG(t, "bwaves")
	}
	if _, err := New(nil, fg, bg5, Options{}); err == nil {
		t.Error("nil machine should error")
	}
	if _, err := New(m, nil, bg5, Options{}); err == nil {
		t.Error("no FG should error")
	}
	if _, err := New(m, fg, append(bg5, bg5[0]), Options{}); err == nil {
		t.Error("task count above core count should error")
	}
	// Fewer tasks than cores is allowed (standalone runs).
	m2 := machine.MustNew(machine.DefaultConfig())
	if _, err := New(m2, fg, nil, Options{}); err != nil {
		t.Errorf("standalone FG should be allowed: %v", err)
	}
	// BG benchmark in FG slot.
	badFG := []*workload.Benchmark{bench(t, "bwaves")}
	if _, err := New(m, badFG, bg5, Options{}); err == nil {
		t.Error("BG benchmark as FG should error")
	}
	// FG benchmark in BG slot.
	badBG := append([]BGSpec{}, bg5[:4]...)
	badBG = append(badBG, singleBG(t, "ferret"))
	if _, err := New(m, fg, badBG, Options{}); err == nil {
		t.Error("FG benchmark as BG should error")
	}
	// Invalid spec.
	badBG2 := append([]BGSpec{}, bg5[:4]...)
	badBG2 = append(badBG2, BGSpec{})
	if _, err := New(m, fg, badBG2, Options{}); err == nil {
		t.Error("empty BG spec should error")
	}
}

func TestPlacement(t *testing.T) {
	c := newColo(t, []string{"ferret"}, fiveBG(t, "bwaves"))
	if len(c.FG()) != 1 || len(c.BG()) != 5 {
		t.Fatalf("placement: %d FG, %d BG", len(c.FG()), len(c.BG()))
	}
	if c.FG()[0].Core != 0 {
		t.Errorf("FG core = %d", c.FG()[0].Core)
	}
	for i, w := range c.BG() {
		if w.Core != i+1 {
			t.Errorf("BG %d core = %d, want %d", i, w.Core, i+1)
		}
	}
	if c.RuntimeCore() != 1 {
		t.Errorf("RuntimeCore = %d, want first BG core", c.RuntimeCore())
	}
	if c.Machine() == nil {
		t.Error("Machine accessor nil")
	}
	if c.FGClass() != 0 || c.BGClass() != 0 {
		t.Error("default classes should be 0")
	}
}

func TestExecutionsRecorded(t *testing.T) {
	c := newColo(t, []string{"fluidanimate"}, fiveBG(t, "namd"))
	var events []Execution
	c.OnComplete(func(stream int, e Execution) {
		if stream != 0 {
			t.Errorf("stream index = %d", stream)
		}
		events = append(events, e)
	})
	if err := c.RunExecutions(3, sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	f := c.FG()[0]
	if f.Completed() < 3 {
		t.Fatalf("Completed = %d", f.Completed())
	}
	if len(events) != f.Completed() {
		t.Errorf("callback count %d != completions %d", len(events), f.Completed())
	}
	for i, e := range f.Executions() {
		if e.Duration <= 0 {
			t.Errorf("exec %d duration %v", i, e.Duration)
		}
		if e.End <= e.Start && i > 0 {
			t.Errorf("exec %d times inverted: %v..%v", i, e.Start, e.End)
		}
		if e.Instructions <= 0 {
			t.Errorf("exec %d instructions %g", i, e.Instructions)
		}
		if e.LLCMisses < 0 {
			t.Errorf("exec %d misses %g", i, e.LLCMisses)
		}
		// Each execution retires the benchmark's instruction budget
		// (within one quantum of slop).
		want := f.Bench.TotalInstructions()
		if e.Instructions < want*0.99 || e.Instructions > want*1.01 {
			t.Errorf("exec %d retired %g instructions, want ~%g", i, e.Instructions, want)
		}
	}
	if got := f.Durations(); len(got) != f.Completed() {
		t.Errorf("Durations len = %d", len(got))
	}
	if f.CurrentStart() != f.Executions()[f.Completed()-1].End {
		t.Error("CurrentStart should be the last completion time")
	}
}

func TestBGInstructionsGrow(t *testing.T) {
	c := newColo(t, []string{"ferret"}, fiveBG(t, "bwaves"))
	c.Run(sim.Time(100 * time.Millisecond))
	v1 := c.BGInstructions()
	if v1 <= 0 {
		t.Fatal("BG instructions should accrue")
	}
	c.Run(sim.Time(200 * time.Millisecond))
	if c.BGInstructions() <= v1 {
		t.Error("BG instructions should keep growing")
	}
}

func TestRotateOnFGCompletion(t *testing.T) {
	pair := BGSpec{Pair: [2]*workload.Benchmark{bench(t, "lbm"), bench(t, "namd")}}
	bg := []BGSpec{pair, pair, pair, pair, pair}
	c := newColo(t, []string{"fluidanimate"}, bg)
	if err := c.RunExecutions(10, sim.Time(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// After 10 completions every worker must have rotated 10 times, and
	// across 5 workers × 10 rotations both benchmarks should appear.
	seen := map[string]bool{}
	for _, w := range c.BG() {
		seen[w.CurrentBenchmark().Name] = true
	}
	names := map[string]int{}
	for _, w := range c.BG() {
		names[w.CurrentBenchmark().Name]++
	}
	if len(seen) == 0 {
		t.Fatal("no BG benchmarks observed")
	}
	// With 5 workers and fair coin flips the chance all 5 show the same
	// benchmark after 10 rotations is 2^-4 per trial; accept either but
	// verify rotation actually happened by checking the rotator counter.
	_ = names
	// (rotator internals validated in workload tests; here we check the
	// program installed on the machine matches the rotator's pick)
	for _, w := range c.BG() {
		prog, err := c.Machine().Program(w.Task)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Benchmark().Name != w.CurrentBenchmark().Name {
			t.Errorf("machine runs %s, rotator says %s", prog.Benchmark().Name, w.CurrentBenchmark().Name)
		}
	}
}

func TestRotationChangesInterference(t *testing.T) {
	// A rotate pair with wildly different members (lbm vs namd) must yield
	// higher FG execution-time variance than a plain namd BG.
	pair := BGSpec{Pair: [2]*workload.Benchmark{bench(t, "lbm"), bench(t, "namd")}}
	rotate := newColo(t, []string{"ferret"}, []BGSpec{pair, pair, pair, pair, pair})
	if err := rotate.RunExecutions(25, sim.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	plain := newColo(t, []string{"ferret"}, fiveBG(t, "namd"))
	if err := plain.RunExecutions(25, sim.Time(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	std := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		v := 0.0
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs))
	}
	sRot := std(rotate.FG()[0].Durations()[5:])
	sPlain := std(plain.FG()[0].Durations()[5:])
	if sRot < sPlain*4 {
		t.Errorf("rotate variance %g should dwarf plain-namd variance %g", sRot, sPlain)
	}
}

func TestMultipleFGStreams(t *testing.T) {
	c := newColo(t, []string{"fluidanimate", "raytrace", "bodytrack"}, fiveBG(t, "bwaves")[:3])
	if err := c.RunExecutions(2, sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	for i, f := range c.FG() {
		if f.Completed() < 2 {
			t.Errorf("stream %d completed %d", i, f.Completed())
		}
	}
}

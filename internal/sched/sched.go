// Package sched manages a collocation: a set of foreground task streams and
// background workers pinned to the cores of one simulated machine.
//
// It owns the task lifecycle the paper assumes around Dirigent: foreground
// benchmarks run as a stream of back-to-back executions (each execution is
// "a task" in the paper's sense — one unit of latency-critical work with a
// deadline); background benchmarks run forever; rotate-BG workers randomly
// switch between their paired benchmarks each time a foreground execution
// completes, mimicking collocated-job context switches (§5.1).
//
// Resource control (DVFS, pausing, cache partitions) is NOT here — that is
// the Dirigent runtime's job (internal/core) or a static configuration's.
// The scheduler only places tasks and tracks completions.
package sched

import (
	"errors"
	"fmt"
	"time"

	"dirigent/internal/cache"
	"dirigent/internal/machine"
	"dirigent/internal/sim"
	"dirigent/internal/telemetry"
	"dirigent/internal/workload"
)

// BGSpec describes one background worker: either a single benchmark or a
// rotate pair.
type BGSpec struct {
	// Bench is the benchmark for a plain worker. Nil if Pair is set.
	Bench *workload.Benchmark
	// Pair holds the two benchmarks of a rotate worker. Both nil if Bench
	// is set.
	Pair [2]*workload.Benchmark
}

// IsRotate reports whether the spec is a rotate pair.
func (s BGSpec) IsRotate() bool { return s.Pair[0] != nil || s.Pair[1] != nil }

// Name returns a human-readable name for the worker.
func (s BGSpec) Name() string {
	if s.IsRotate() {
		return s.Pair[0].Name + "+" + s.Pair[1].Name
	}
	if s.Bench != nil {
		return s.Bench.Name
	}
	return "<empty>"
}

// Validate checks that exactly one of Bench/Pair is populated.
func (s BGSpec) Validate() error {
	switch {
	case s.Bench != nil && s.IsRotate():
		return errors.New("sched: BG spec has both a benchmark and a pair")
	case s.Bench == nil && !s.IsRotate():
		return errors.New("sched: empty BG spec")
	case s.IsRotate() && (s.Pair[0] == nil || s.Pair[1] == nil):
		return errors.New("sched: rotate pair must name two benchmarks")
	}
	return nil
}

// Execution records one completed foreground execution.
type Execution struct {
	// Start and End are simulated timestamps; Duration = End - Start.
	Start, End sim.Time
	// Duration is the execution time — the quantity whose variance
	// Dirigent minimizes.
	Duration time.Duration
	// LLCMisses is the misses the FG task incurred during this execution
	// (input to the coarse controller's correlation heuristic).
	LLCMisses float64
	// Instructions retired during this execution.
	Instructions float64
}

// FGStream is a foreground benchmark running as a stream of executions on
// one core.
type FGStream struct {
	Bench *workload.Benchmark
	Task  int
	Core  int

	execs     []Execution
	lastStart sim.Time
	lastPerf  perfSnapshot
	removed   bool
}

// Removed reports whether the stream was evicted mid-run (RemoveFG). A
// removed stream keeps its slot — stream indices stay stable for telemetry
// and result collection — but its task is dead and it completes nothing
// further.
func (f *FGStream) Removed() bool { return f.removed }

type perfSnapshot struct {
	instructions float64
	llcMisses    float64
}

// Executions returns the completed executions so far (shared slice; do not
// modify).
func (f *FGStream) Executions() []Execution { return f.execs }

// Completed returns the number of completed executions.
func (f *FGStream) Completed() int { return len(f.execs) }

// CurrentStart returns the start time of the in-flight execution.
func (f *FGStream) CurrentStart() sim.Time { return f.lastStart }

// Durations returns all execution durations in seconds (a fresh slice).
func (f *FGStream) Durations() []float64 {
	out := make([]float64, len(f.execs))
	for i, e := range f.execs {
		out[i] = e.Duration.Seconds()
	}
	return out
}

// BGWorker is a background slot on one core: a plain benchmark or rotator.
type BGWorker struct {
	Spec BGSpec
	Task int
	Core int

	rotator *workload.Rotator
}

// CurrentBenchmark returns the benchmark the worker is currently running.
func (b *BGWorker) CurrentBenchmark() *workload.Benchmark {
	if b.rotator != nil {
		return b.rotator.Current()
	}
	return b.Spec.Bench
}

// Colocation is a full placement of FG streams and BG workers on a machine.
type Colocation struct {
	m   *machine.Machine
	fgs []*FGStream
	bgs []*BGWorker

	fgClass cache.ClassID
	bgClass cache.ClassID

	onComplete []func(stream int, e Execution)
	rng        *sim.Rand

	// compat mirrors the machine's CompatStepping flag: batched loops
	// degrade to quantum-by-quantum stepping when the legacy engine is
	// selected.
	compat bool
}

// Options configures a Colocation.
type Options struct {
	// FGClass and BGClass are the LLC partition classes for FG and BG
	// tasks. Both may be 0 (the default shared class) for unpartitioned
	// configurations.
	FGClass, BGClass cache.ClassID
	// Seed drives rotate-BG selection.
	Seed uint64
}

// New places fg benchmarks on cores 0..len(fg)-1 and bg specs on the
// cores after them. The combined task count must not exceed the core count;
// unused cores idle (standalone-FG runs leave 5 cores idle, exactly like
// the paper's alone measurements).
func New(m *machine.Machine, fg []*workload.Benchmark, bg []BGSpec, opts Options) (*Colocation, error) {
	if m == nil {
		return nil, errors.New("sched: nil machine")
	}
	if len(fg) == 0 {
		return nil, errors.New("sched: at least one FG benchmark required")
	}
	if len(fg)+len(bg) > m.NumCores() {
		return nil, fmt.Errorf("sched: %d FG + %d BG tasks exceed %d cores", len(fg), len(bg), m.NumCores())
	}
	c := &Colocation{
		m:       m,
		fgClass: opts.FGClass,
		bgClass: opts.BGClass,
		rng:     sim.NewRand(opts.Seed ^ 0xd161e47), // "dirigent" mix constant
		compat:  m.Config().CompatStepping,
	}
	for i, b := range fg {
		if b.Kind != workload.Foreground {
			return nil, fmt.Errorf("sched: %s is not a foreground benchmark", b.Name)
		}
		prog, err := workload.NewProgram(b)
		if err != nil {
			return nil, err
		}
		id, err := m.Launch(b.Name, prog, i, opts.FGClass)
		if err != nil {
			return nil, err
		}
		c.fgs = append(c.fgs, &FGStream{Bench: b, Task: id, Core: i})
	}
	for j, spec := range bg {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		core := len(fg) + j
		w := &BGWorker{Spec: spec, Core: core}
		var prog *workload.Program
		if spec.IsRotate() {
			rot, err := workload.NewRotator(spec.Pair[0], spec.Pair[1], c.rng.Split())
			if err != nil {
				return nil, err
			}
			w.rotator = rot
			prog = rot.Program()
		} else {
			if spec.Bench.Kind != workload.Background {
				return nil, fmt.Errorf("sched: %s is not a background benchmark", spec.Bench.Name)
			}
			var err error
			prog, err = workload.NewProgram(spec.Bench)
			if err != nil {
				return nil, err
			}
			// Independently-arriving batch jobs are not phase-aligned:
			// start each plain BG worker at a random point in its phase
			// cycle. The varying degree of overlap between their
			// memory-heavy phases is the slowly-varying interference
			// component that drives Baseline execution-time variance.
			prog.SetOffset(c.rng.Float64() * spec.Bench.TotalInstructions())
		}
		id, err := m.Launch(spec.Name(), prog, core, opts.BGClass)
		if err != nil {
			return nil, err
		}
		w.Task = id
		c.bgs = append(c.bgs, w)
	}
	return c, nil
}

// Machine returns the underlying machine.
func (c *Colocation) Machine() *machine.Machine { return c.m }

// FG returns the foreground streams.
func (c *Colocation) FG() []*FGStream { return c.fgs }

// BG returns the background workers.
func (c *Colocation) BG() []*BGWorker { return c.bgs }

// FGClass returns the LLC partition class of the FG tasks.
func (c *Colocation) FGClass() cache.ClassID { return c.fgClass }

// BGClass returns the LLC partition class of the BG tasks.
func (c *Colocation) BGClass() cache.ClassID { return c.bgClass }

// freeCore returns the lowest-numbered core with no live colocation task.
func (c *Colocation) freeCore() (int, error) {
	used := make([]bool, c.m.NumCores())
	for _, f := range c.fgs {
		if !f.removed {
			used[f.Core] = true
		}
	}
	for _, w := range c.bgs {
		used[w.Core] = true
	}
	for core, u := range used {
		if !u {
			return core, nil
		}
	}
	return 0, fmt.Errorf("sched: no free core (all %d occupied)", c.m.NumCores())
}

// AdmitFG launches a new foreground stream on a free core mid-run and
// returns its stream index. The stream joins the colocation's FG partition
// class and starts its first execution at the current simulated time.
// Admission is an online-arrival event — it changes subsequent machine
// state, so admitted runs are only reproducible against the same admission
// schedule.
func (c *Colocation) AdmitFG(b *workload.Benchmark) (int, error) {
	if b == nil {
		return 0, errors.New("sched: nil FG benchmark")
	}
	if b.Kind != workload.Foreground {
		return 0, fmt.Errorf("sched: %s is not a foreground benchmark", b.Name)
	}
	core, err := c.freeCore()
	if err != nil {
		return 0, err
	}
	prog, err := workload.NewProgram(b)
	if err != nil {
		return 0, err
	}
	id, err := c.m.Launch(b.Name, prog, core, c.fgClass)
	if err != nil {
		return 0, err
	}
	sample := c.m.Counters().Task(id)
	c.fgs = append(c.fgs, &FGStream{
		Bench: b, Task: id, Core: core,
		lastStart: c.m.Now(),
		lastPerf:  perfSnapshot{instructions: sample.Instructions, llcMisses: sample.LLCMisses},
	})
	return len(c.fgs) - 1, nil
}

// RemoveFG evicts a foreground stream mid-run: its task is killed and the
// stream marked removed. Completed-execution history and counters survive
// for result collection; the freed core becomes available for admission.
func (c *Colocation) RemoveFG(stream int) error {
	if stream < 0 || stream >= len(c.fgs) {
		return fmt.Errorf("sched: FG stream %d out of range", stream)
	}
	f := c.fgs[stream]
	if f.removed {
		return fmt.Errorf("sched: FG stream %d already removed", stream)
	}
	active := 0
	for _, s := range c.fgs {
		if !s.removed {
			active++
		}
	}
	if active == 1 {
		return errors.New("sched: cannot remove the last FG stream")
	}
	if err := c.m.Kill(f.Task); err != nil {
		return err
	}
	f.removed = true
	return nil
}

// AdmitBG launches a new background worker on a free core mid-run and
// returns it. Plain workers start at a random phase offset, exactly like
// construction-time workers; rotate pairs get their own seeded rotator.
func (c *Colocation) AdmitBG(spec BGSpec) (*BGWorker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	core, err := c.freeCore()
	if err != nil {
		return nil, err
	}
	w := &BGWorker{Spec: spec, Core: core}
	var prog *workload.Program
	if spec.IsRotate() {
		rot, err := workload.NewRotator(spec.Pair[0], spec.Pair[1], c.rng.Split())
		if err != nil {
			return nil, err
		}
		w.rotator = rot
		prog = rot.Program()
	} else {
		if spec.Bench.Kind != workload.Background {
			return nil, fmt.Errorf("sched: %s is not a background benchmark", spec.Bench.Name)
		}
		prog, err = workload.NewProgram(spec.Bench)
		if err != nil {
			return nil, err
		}
		prog.SetOffset(c.rng.Float64() * spec.Bench.TotalInstructions())
	}
	id, err := c.m.Launch(spec.Name(), prog, core, c.bgClass)
	if err != nil {
		return nil, err
	}
	w.Task = id
	c.bgs = append(c.bgs, w)
	return w, nil
}

// RemoveBG kills the background worker running as the given task and drops
// it from the colocation. Its retired instructions leave the BG-throughput
// accounting with it.
func (c *Colocation) RemoveBG(task int) error {
	for j, w := range c.bgs {
		if w.Task != task {
			continue
		}
		if err := c.m.Kill(task); err != nil {
			return err
		}
		c.bgs = append(c.bgs[:j], c.bgs[j+1:]...)
		return nil
	}
	return fmt.Errorf("sched: no BG worker runs task %d", task)
}

// RuntimeCore returns the core the Dirigent runtime should be pinned to: a
// core running a BG task (§4.2 pins the runtime thread to a BG core). With
// no BG workers it falls back to the last core.
func (c *Colocation) RuntimeCore() int {
	if len(c.bgs) > 0 {
		return c.bgs[0].Core
	}
	return c.m.NumCores() - 1
}

// OnComplete registers a callback fired after each FG execution completes.
func (c *Colocation) OnComplete(fn func(stream int, e Execution)) {
	c.onComplete = append(c.onComplete, fn)
}

// BGInstructions returns total instructions retired by all BG tasks — the
// paper's BG throughput numerator.
func (c *Colocation) BGInstructions() float64 {
	sum := 0.0
	for _, w := range c.bgs {
		sum += c.m.Counters().Task(w.Task).Instructions
	}
	return sum
}

// Step advances the machine one quantum and processes completions: records
// FG execution stats, restarts the stream (implicitly — programs wrap), and
// rotates rotate-BG workers.
func (c *Colocation) Step() {
	c.handleCompletions(c.m.Step())
}

// StepN advances the machine by up to max quanta in one skip-ahead batch
// (stopping early at the first quantum with FG completions, so completion
// processing happens at the same simulated instants as quantum-by-quantum
// stepping) and returns how many quanta were advanced.
func (c *Colocation) StepN(max int) int {
	done, n := c.m.StepN(max)
	c.handleCompletions(done)
	return n
}

// handleCompletions processes one quantum's completions exactly as Step
// always has: execution stats, telemetry, callbacks, BG rotation.
func (c *Colocation) handleCompletions(done []machine.Completion) {
	for _, comp := range done {
		for i, f := range c.fgs {
			if f.Task != comp.Task {
				continue
			}
			sample := c.m.Counters().Task(f.Task)
			e := Execution{
				Start:        f.lastStart,
				End:          comp.At,
				Duration:     time.Duration(comp.At - f.lastStart),
				LLCMisses:    sample.LLCMisses - f.lastPerf.llcMisses,
				Instructions: sample.Instructions - f.lastPerf.instructions,
			}
			f.execs = append(f.execs, e)
			f.lastStart = comp.At
			f.lastPerf = perfSnapshot{instructions: sample.Instructions, llcMisses: sample.LLCMisses}
			// The scheduler emits through the machine's bus: execution
			// boundaries are placement-level events, visible to any sink
			// attached to the machine even without a Dirigent runtime.
			if rec := c.m.Recorder(); rec.Enabled(telemetry.KindExecutionComplete) {
				rec.Record(telemetry.Event{
					Kind: telemetry.KindExecutionComplete, At: comp.At,
					Stream: i, Task: f.Task, Duration: e.Duration,
					Instructions: e.Instructions, LLCMisses: e.LLCMisses,
				})
			}
			for _, fn := range c.onComplete {
				fn(i, e)
			}
			// A completed FG task models a collocated-job context switch:
			// rotate-BG workers pick their next benchmark.
			c.rotateAll()
		}
	}
}

// Run advances until the given simulated time, batching quanta through the
// skip-ahead engine (interrupted only by FG completions, which need
// processing at their exact instants). Coverage is ceil-aligned exactly like
// machine.Run.
func (c *Colocation) Run(until sim.Time) {
	if c.compat {
		for c.m.Now() < until {
			c.Step()
		}
		return
	}
	for c.m.Now() < until {
		c.StepN(c.quantaUntil(until))
	}
}

// quantaUntil returns how many quanta remain until limit, ceil-aligned with
// the clock advance (at least 1 when Now() < limit).
func (c *Colocation) quantaUntil(limit sim.Time) int {
	q := sim.Time(c.m.Config().Quantum)
	return int((limit - c.m.Now() + q - 1) / q)
}

// RunExecutions advances until every FG stream has at least n completed
// executions or the simulated-time limit is reached; it returns an error on
// timeout (a task that cannot complete under the limit indicates a
// mis-configured experiment).
func (c *Colocation) RunExecutions(n int, limit sim.Time) error {
	for {
		minDone := -1
		for _, f := range c.fgs {
			if f.removed {
				continue
			}
			if minDone < 0 || f.Completed() < minDone {
				minDone = f.Completed()
			}
		}
		if minDone >= n {
			return nil
		}
		if c.m.Now() >= limit {
			return fmt.Errorf("sched: only %d/%d executions within %v", minDone, n, time.Duration(limit))
		}
		if c.compat {
			c.Step()
		} else {
			// Completion counts only change when a batch stops (at a
			// completion or at the limit), so checking between batches
			// observes exactly the states the per-quantum loop did.
			c.StepN(c.quantaUntil(limit))
		}
	}
}

func (c *Colocation) rotateAll() {
	for _, w := range c.bgs {
		if w.rotator == nil {
			continue
		}
		w.rotator.Rotate()
		// Install the fresh program; errors are impossible here because the
		// task is known and the program non-nil, but check anyway.
		if err := c.m.SetProgram(w.Task, w.rotator.Program()); err != nil {
			panic(fmt.Sprintf("sched: rotate failed: %v", err))
		}
	}
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math"
	"strings"
)

// errcheck: a call whose error result is silently discarded as a bare
// statement hides failures; check it or discard explicitly with `_ =`.
// The fmt print family and the never-failing bytes.Buffer /
// strings.Builder writers are excluded.
var errcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "silently discarded error returns (outside `_ =`)",
	Run: func(p *Pass) error {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				sig, ok := p.TypeOf(call.Fun).(*types.Signature)
				if !ok { // conversion or builtin
					return true
				}
				if !returnsError(sig) || errcheckExcluded(p, call) {
					return true
				}
				p.Reportf(call.Pos(), "error result of %s is silently discarded; check it or assign to _", calleeLabel(p, call))
				return true
			})
		}
		return nil
	},
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// errcheckExcluded holds the callees whose errors are conventionally
// ignored: fmt's print family (stdout/stderr writes) and the in-memory
// writers that document a nil error.
func errcheckExcluded(p *Pass, call *ast.CallExpr) bool {
	fn := p.Callee(call)
	if fn == nil {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		switch types.TypeString(recv.Type(), nil) {
		case "*bytes.Buffer", "*strings.Builder":
			return true
		}
	}
	return false
}

// calleeLabel renders the called expression for the message.
func calleeLabel(p *Pass, call *ast.CallExpr) string {
	if fn := p.Callee(call); fn != nil {
		return fn.Name()
	}
	return "call"
}

// floateq: == and != on floating-point operands are exact bit
// comparisons and almost never what a simulator wants. Comparing against
// an integer-valued constant is allowed — 0 and 1 are exactly
// representable and dominate the legitimate sentinel checks (unset
// fields, identity scale factors) — as is code inside approved
// comparator helpers (functions named *Approx*/*Almost*).
var floateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point operands outside approved comparators",
	Run: func(p *Pass) error {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && isComparatorFunc(fd.Name.Name) {
					return false // approved comparator helper: exact compares are its job
				}
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
					return true
				}
				if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
					return true
				}
				if isIntConst(p, be.X) || isIntConst(p, be.Y) {
					return true
				}
				p.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon comparator (or compare against an exact integer constant)", be.Op)
				return true
			})
		}
		return nil
	},
}

func isComparatorFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "approx") || strings.Contains(lower, "almost")
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isIntConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Float64Val(tv.Value)
	//lint:ignore floateq Trunc is exact, so equality is precisely the integrality test
	return exact && v == math.Trunc(v)
}

// syncLockNames are the sync types that must never be copied once used.
var syncLockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// copylocks: passing or assigning a sync type by value copies its
// internal state, silently forking the lock. Flags by-value parameters,
// results and receivers, and assignments whose right-hand side is an
// existing lock-carrying value (composite literals create fresh values
// and are fine).
var copylocksAnalyzer = &Analyzer{
	Name: "copylocks",
	Doc:  "sync types must not be passed or assigned by value",
	Run: func(p *Pass) error {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkLockFields(p, n.Recv, "receiver")
					if n.Type.Params != nil {
						checkLockFields(p, n.Type.Params, "parameter")
					}
					if n.Type.Results != nil {
						checkLockFields(p, n.Type.Results, "result")
					}
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, rhs := range n.Rhs {
						checkLockCopy(p, n.Lhs[i], rhs)
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i, rhs := range n.Values {
							checkLockCopy(p, n.Names[i], rhs)
						}
					}
				case *ast.RangeStmt:
					if n.Value != nil && containsLock(p.TypeOf(n.Value)) {
						p.Reportf(n.Value.Pos(), "range value copies a sync lock each iteration; range over indices or pointers")
					}
				}
				return true
			})
		}
		return nil
	},
}

func containsLock(t types.Type) bool {
	return t != nil && containsSyncType(t, syncLockNames, nil)
}

// checkLockFields flags by-value lock-carrying entries of a field list.
func checkLockFields(p *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(field.Type.Pos(), "%s passes %s by value, copying its lock; use a pointer", kind, types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
		}
	}
}

// checkLockCopy flags `dst = src` where src is an existing value whose
// type carries a lock.
func checkLockCopy(p *Pass, dst, src ast.Expr) {
	if id, ok := dst.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	switch ast.Unparen(src).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // fresh values (literals, calls, &x) don't copy a used lock
	}
	if containsLock(p.TypeOf(src)) {
		p.Reportf(src.Pos(), "assignment copies a value containing a sync lock; use a pointer")
	}
}

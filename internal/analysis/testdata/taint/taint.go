// Package taint reads the wall clock. It is not determinism-critical
// itself, so no finding lands here — but the walltime analyzer records a
// taint fact, and the deterministic fixture package importing it is
// flagged.
package taint

import "time"

// Stamp returns the current wall-clock time.
func Stamp() time.Time { return time.Now() }

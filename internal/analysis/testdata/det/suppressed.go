package det

import "time"

// Uptime reads the wall clock deliberately; the leading directive
// silences the finding (and bumps the run's suppressed count).
func Uptime() time.Time {
	//lint:ignore walltime fixture: sanctioned wall-clock read
	return time.Now()
}

// Trailing shows the same-line directive form.
func Trailing() time.Time {
	return time.Now() //lint:ignore walltime fixture: trailing directive
}

// Malformed's directive has no reason, so it suppresses nothing and the
// finding survives.
func Malformed() time.Time {
	//lint:ignore walltime
	return time.Now() // want walltime "time.Now"
}

// Mismatched's directive names a different check, so the walltime
// finding survives.
func Mismatched() time.Time {
	//lint:ignore maprange fixture: wrong check name
	return time.Now() // want walltime "time.Now"
}

// Package det is a determinism-critical fixture package: every seeded
// violation below carries a want comment the selftest matches against
// the engine's findings, and every unannotated line must stay quiet.
package det

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"fixture/taint" // want walltime "wall-clock-tainted"
)

// Clock violates the wall-clock ban.
func Clock() time.Time {
	return time.Now() // want walltime "time.Now"
}

// Roll violates the global math/rand ban.
func Roll() int {
	return rand.Intn(6) // want walltime "global math/rand"
}

// Seeded draws from a seeded source, which is fine.
func Seeded(r *rand.Rand) int {
	return r.Intn(6)
}

// Stamp launders a wall-clock read through an imported helper package;
// the taint fact propagated across the import graph flags the import
// declaration above.
func Stamp() time.Time {
	return taint.Stamp()
}

// Sum iterates a map in randomized order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want maprange "map iteration order"
		total += v
	}
	return total
}

// SortedKeys uses the canonical collect-then-sort idiom, which the
// analyzer recognizes.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Spawn schedules a goroutine in the deterministic core.
func Spawn(done chan struct{}) {
	go func() { done <- struct{}{} }() // want nondetsched "go statement"
}

// Wait picks a ready channel pseudo-randomly.
func Wait(a, b chan int) int {
	select { // want nondetsched "select"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

var registry sync.Map // want nondetsched "sync.Map"

// Equal compares floats exactly outside an approved comparator.
func Equal(a, b float64) bool {
	return a == b // want floateq "floating-point"
}

// approxEqual is an approved comparator helper; exact compares are its
// job.
func approxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// IsZero compares against an exact constant zero, which is allowed.
func IsZero(a float64) bool {
	return a == 0
}

// IsIdentity compares against an exact integer constant (sentinel scale
// factors), which is allowed.
func IsIdentity(scale float64) bool {
	return scale == 1
}

// IsHalf compares against a non-integer constant, which is not.
func IsHalf(a float64) bool {
	return a == 0.5 // want floateq "floating-point"
}

package nodoc // want pkgdoc "doc comment"

// V is a fixture value.
var V = 1

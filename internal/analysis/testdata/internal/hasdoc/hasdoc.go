// Package hasdoc carries the required doc comment, so pkgdoc stays
// quiet.
package hasdoc

// V is a fixture value.
var V = 1

// Package fanout is determinism-critical but sits on the nondetsched
// allowlist: its worker fan-out must not be reported.
package fanout

import "sync"

// Run fans work out over goroutines, joining before return.
func Run(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// Package locks exercises the copylocks analyzer.
package locks

import "sync"

// Guarded carries a mutex, so copying it forks the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// N locks through a pointer receiver, which is fine.
func (g *Guarded) N() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ByValue copies the lock into the parameter.
func ByValue(g Guarded) int { // want copylocks "parameter"
	return g.n
}

// ByPointer is the correct form.
func ByPointer(g *Guarded) int { return g.n }

// Fresh returns the lock-carrying struct by value.
func Fresh() Guarded { // want copylocks "result"
	return Guarded{}
}

// Snapshot copies an existing lock-carrying value.
func Snapshot(g *Guarded) int {
	snapshot := *g // want copylocks "assignment copies"
	return snapshot.n
}

// Each copies the lock on every iteration.
func Each(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want copylocks "range value"
		total += g.n
	}
	return total
}

// EachIndex ranges by index, which is fine.
func EachIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

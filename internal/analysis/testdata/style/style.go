// Package style exercises the style and error-handling analyzers, which
// apply module-wide (no determinism scope needed).
package style

import (
	"errors"
	"fmt"
	"os"
)

// Static should be errors.New.
func Static() error {
	return fmt.Errorf("static message") // want errorsnew "errors.New"
}

// Punct ends its error string with punctuation.
func Punct() error {
	return errors.New("ends badly.") // want errstyle "punctuation"
}

// Wrapped uses a real verb, which is fine.
func Wrapped(err error) error {
	return fmt.Errorf("context: %w", err)
}

// Drop discards os.Remove's error silently.
func Drop() {
	os.Remove("/tmp/fixture") // want errcheck "silently discarded"
}

// Checked shows the allowed forms: checking, explicit discard, and the
// excluded fmt print family.
func Checked() error {
	if err := os.Remove("/tmp/fixture"); err != nil {
		return err
	}
	_ = os.Remove("/tmp/fixture")
	fmt.Println("done")
	return nil
}

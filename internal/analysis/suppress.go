package analysis

import (
	"strings"
)

// A directive is one parsed "//lint:ignore <check> <reason>" comment. It
// suppresses findings of the named check on its own line (trailing
// comment) or on the line immediately below (leading comment). The
// reason is mandatory: a bare "//lint:ignore maprange" matches nothing,
// so the finding survives and flags the malformed directive.
type directive struct {
	check string
	line  int
}

// directiveSet indexes directives by file.
type directiveSet map[string][]directive

const ignorePrefix = "lint:ignore "

// collectDirectives scans every comment of the analyzed packages.
func collectDirectives(pkgs []*Package) directiveSet {
	set := directiveSet{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
					if !ok {
						continue
					}
					check, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					if check == "" || strings.TrimSpace(reason) == "" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					set[pkg.relFile(pos.Filename)] = append(set[pkg.relFile(pos.Filename)], directive{
						check: check,
						line:  pos.Line,
					})
				}
			}
		}
	}
	return set
}

// suppresses reports whether a matching directive covers the finding.
func (s directiveSet) suppresses(f Finding) bool {
	for _, d := range s[f.File] {
		if d.check == f.Check && (d.line == f.Line || d.line == f.Line-1) {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// factWallclock marks a package that reads the wall clock or the global
// math/rand source (directly or through a module import). walltime uses
// it to catch a deterministic package laundering non-determinism through
// a helper package.
const factWallclock = "walltime.tainted"

// globalRandFuncs are the top-level math/rand readers of the unseeded
// global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
}

// walltime: the simulator is seed-deterministic; time.Now and the global
// math/rand source are banned from determinism-critical packages, as are
// imports of wall-clock-tainted module packages.
var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "no wall clock or global math/rand in deterministic packages",
	Run: func(p *Pass) error {
		tainted := false
		flag := p.Config.inScope("walltime", p.Pkg.Dir)
		inspectCalls(p, func(call *ast.CallExpr) {
			fn := p.Callee(call)
			switch {
			case isFunc(fn, "time", "Now"):
				tainted = true
				if flag {
					p.Reportf(call.Pos(), "time.Now in a seed-deterministic package; derive time from the simulation clock")
				}
			case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && globalRandFuncs[fn.Name()]:
				// Only the package-level readers touch the global
				// source; methods on a seeded *rand.Rand have a
				// receiver and are fine.
				if fn.Type().(*types.Signature).Recv() == nil {
					tainted = true
					if flag {
						p.Reportf(call.Pos(), "global math/rand source in a seed-deterministic package; use a seeded *rand.Rand")
					}
				}
			}
		})
		// Fact propagation: importing a tainted module package taints the
		// importer (and is itself a finding in deterministic scope — a
		// wall-clock read hidden behind a helper is still a wall-clock
		// read).
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if _, ok := p.Fact(path, factWallclock); !ok {
					continue
				}
				tainted = true
				if flag {
					p.Reportf(imp.Pos(), "import of wall-clock-tainted package %s in a seed-deterministic package", path)
				}
			}
		}
		if tainted {
			p.SetFact(factWallclock, true)
		}
		return nil
	},
}

// maprange: Go randomizes map iteration order, so ranging over a map in
// a deterministic package must not feed results or telemetry directly.
// The canonical collect-keys-then-sort idiom (a body that only appends
// the key to a slice) is recognized and allowed; everything else needs
// sorted keys or an explicit lint:ignore with a reason.
var maprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration in deterministic packages must go through sorted keys",
	Run: func(p *Pass) error {
		if !p.Config.inScope("maprange", p.Pkg.Dir) {
			return nil
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyCollectLoop(rng) {
					return true
				}
				p.Reportf(rng.Pos(), "map iteration order is randomized; collect and sort the keys first (or lint:ignore with why order cannot reach results)")
				return true
			})
		}
		return nil
	},
}

// isKeyCollectLoop matches `for k := range m { keys = append(keys, k) }`,
// the first half of the sorted-iteration idiom.
func isKeyCollectLoop(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// nondetsched: goroutines, selects and sync.Map introduce scheduling
// non-determinism; they are banned from deterministic packages outside
// the explicit fan-out allowlist (experiment, scenario, server,
// telemetry, benchreg).
var nondetschedAnalyzer = &Analyzer{
	Name: "nondetsched",
	Doc:  "no goroutines, selects or sync.Map in deterministic packages",
	Run: func(p *Pass) error {
		if !p.Config.inScope("nondetsched", p.Pkg.Dir) {
			return nil
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					p.Reportf(n.Pos(), "go statement in a deterministic package; goroutine interleaving is not seed-reproducible")
				case *ast.SelectStmt:
					p.Reportf(n.Pos(), "select in a deterministic package; ready-case choice is randomized")
				}
				return true
			})
		}
		// sync.Map declarations (vars, fields, params): its iteration and
		// interleaving semantics are unordered by construction. The Defs
		// map iterates in random order, so collect and sort by position
		// before reporting.
		var ids []*ast.Ident
		//lint:ignore maprange ids are sorted by position before reporting
		for id, obj := range p.Pkg.Info.Defs {
			v, ok := obj.(*types.Var)
			if !ok || v.Pkg() != p.Pkg.Types {
				continue
			}
			if containsSyncType(v.Type(), map[string]bool{"Map": true}, nil) {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })
		for _, id := range ids {
			p.Reportf(id.Pos(), "sync.Map in a deterministic package; use an ordinary map with sorted iteration")
		}
		return nil
	},
}

// containsSyncType reports whether t is or (through structs and arrays)
// contains one of the named types from package sync.
func containsSyncType(t types.Type, names map[string]bool, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && names[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncType(u.Field(i).Type(), names, seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncType(u.Elem(), names, seen)
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// pkgdoc: every package under internal/ carries a "// Package <name>"
// doc comment.
var pkgdocAnalyzer = &Analyzer{
	Name: "pkgdoc",
	Doc:  "internal packages must carry a `// Package <name>` doc comment",
	Run: func(p *Pass) error {
		if !strings.HasPrefix(p.Pkg.Dir, "internal/") {
			return nil
		}
		for _, f := range p.Pkg.Files {
			if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package "+p.Pkg.Name+" ") {
				return nil
			}
		}
		p.ReportPackage("package %s has no %q doc comment", p.Pkg.Dir, "// Package "+p.Pkg.Name+" ...")
		return nil
	},
}

// errorsnew: fmt.Errorf with a constant format string and no verbs
// should be errors.New (staticcheck's S1028 family). Resolution goes
// through the type checker, so aliased imports and local shadowing are
// handled.
var errorsnewAnalyzer = &Analyzer{
	Name: "errorsnew",
	Doc:  "fmt.Errorf with no format verbs should be errors.New",
	Run: func(p *Pass) error {
		inspectCalls(p, func(call *ast.CallExpr) {
			if !isFunc(p.Callee(call), "fmt", "Errorf") || len(call.Args) != 1 {
				return
			}
			if _, s, ok := constString(call.Args[0]); ok && !strings.Contains(s, "%") {
				p.Reportf(call.Pos(), "fmt.Errorf with no format verbs; use errors.New")
			}
		})
		return nil
	},
}

// errstyle: error strings get wrapped and joined, so they must not end
// with punctuation or a newline (staticcheck ST1005).
var errstyleAnalyzer = &Analyzer{
	Name: "errstyle",
	Doc:  "error strings must not end with punctuation or a newline",
	Run: func(p *Pass) error {
		inspectCalls(p, func(call *ast.CallExpr) {
			fn := p.Callee(call)
			if !isFunc(fn, "fmt", "Errorf") && !isFunc(fn, "errors", "New") {
				return
			}
			if len(call.Args) == 0 {
				return
			}
			lit, s, ok := constString(call.Args[0])
			if !ok || s == "" {
				return
			}
			if strings.HasSuffix(s, "\n") || strings.ContainsAny(s[len(s)-1:], ".!?") {
				p.Reportf(lit.Pos(), "error string ends with punctuation or a newline")
			}
		})
		return nil
	},
}

// inspectCalls walks every call expression of the package.
func inspectCalls(p *Pass, fn func(*ast.CallExpr)) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fn(call)
			}
			return true
		})
	}
}

// isFunc reports whether fn is package pkg's function named name.
func isFunc(fn *types.Func, pkg, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}

// constString returns the literal and decoded value when the expression
// is a plain string literal.
func constString(e ast.Expr) (*ast.BasicLit, string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil, "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil, "", false
	}
	return lit, s, true
}

package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderText formats the result the way go vet does: one "pos: [check]
// msg" line per finding plus a one-line summary.
func RenderText(r *Result) string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: [%s] %s\n", f.Pos(), f.Check, f.Message)
	}
	if len(r.Findings) == 0 {
		fmt.Fprintf(&b, "dirigent-lint: clean (%d packages, %d checks, %d suppressed)\n",
			r.Packages, len(r.Checks), r.Suppressed)
	}
	return b.String()
}

// RenderJSON emits the full result as indented JSON.
func RenderJSON(r *Result) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// RenderMarkdown formats the result as a Markdown report for CI step
// summaries: a status line plus a findings table when dirty.
func RenderMarkdown(r *Result) string {
	var b strings.Builder
	b.WriteString("### dirigent-lint\n\n")
	fmt.Fprintf(&b, "%d packages · %d checks (%s) · %d finding(s) · %d suppressed\n\n",
		r.Packages, len(r.Checks), strings.Join(r.Checks, ", "), len(r.Findings), r.Suppressed)
	if len(r.Findings) == 0 {
		b.WriteString("✅ clean\n")
		return b.String()
	}
	b.WriteString("| Position | Check | Message |\n|---|---|---|\n")
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", f.Pos(), f.Check, mdEscape(f.Message))
	}
	return b.String()
}

func mdEscape(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}

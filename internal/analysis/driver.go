package analysis

import (
	"fmt"
	"sort"
)

// Options configures one engine run.
type Options struct {
	// Root is the module root to analyze (a directory containing go.mod).
	Root string
	// Checks selects analyzers; nil/empty runs the full registry.
	Checks []*Analyzer
	// Config scopes the determinism checks; nil uses DefaultConfig.
	Config *Config
}

// Result is one engine run's outcome.
type Result struct {
	// Findings are the unsuppressed diagnostics, sorted by position.
	Findings []Finding `json:"findings"`
	// Packages counts the module packages type-checked and analyzed.
	Packages int `json:"packages"`
	// Suppressed counts findings silenced by lint:ignore directives.
	Suppressed int `json:"suppressed"`
	// Checks names the analyzers that ran.
	Checks []string `json:"checks"`
}

// Run type-checks every package in the module under opts.Root and runs
// the selected analyzers over each, in import-dependency order so that
// facts recorded for a package are visible when its importers are
// analyzed. Findings carrying a matching "//lint:ignore <check> <reason>"
// directive on their own or the preceding line are suppressed.
func Run(opts Options) (*Result, error) {
	checks := opts.Checks
	if len(checks) == 0 {
		checks = Analyzers()
	}
	cfg := opts.Config
	if cfg == nil {
		cfg = DefaultConfig()
	}
	root := opts.Root
	if root == "" {
		root = "."
	}

	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	if _, err := l.loadModule(); err != nil {
		return nil, err
	}

	facts := newFactStore()
	var findings []Finding
	// l.order is a valid topological order: a package's module imports
	// finish type-checking (and thus analysis below) before it does.
	for _, pkg := range l.order {
		for _, a := range checks {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, facts: facts, findings: &findings}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Dir, err)
			}
		}
	}

	res := &Result{Packages: len(l.order)}
	for _, a := range checks {
		res.Checks = append(res.Checks, a.Name)
	}
	directives := collectDirectives(l.order)
	for _, f := range findings {
		if directives.suppresses(f) {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return res, nil
}

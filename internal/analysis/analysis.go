// Package analysis is the repo's static-analysis engine: a stdlib-only
// mini driver (go/parser + go/types + a recursive source importer) that
// type-checks every package in the module and runs a registry of
// analyzers with full type information. It exists because the regression
// story — benchreg's seed-deterministic gates, TestServedDeterminism, the
// scenario suite — rests on invariants (no wall clock, no unseeded
// randomness, no order-dependent map iteration, no goroutine scheduling
// in the Step path) that conventions alone cannot enforce.
//
// The engine supports per-package fact passing between analyzers (used to
// propagate wall-clock taint across the import graph), line-level
// suppression via "//lint:ignore <check> <reason>" directives, and text,
// JSON and Markdown reporters. cmd/dirigent-lint is a thin CLI over it.
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one analyzer diagnostic. File is module-root-relative and
// slash-separated; package-level findings (pkgdoc) carry Line 0.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Check   string `json:"check"`
	Package string `json:"package"`
	Message string `json:"msg"`
}

// Pos renders the finding position the way go tools do: file:line:col,
// dropping the zero parts.
func (f Finding) Pos() string {
	switch {
	case f.Line == 0:
		return f.File
	case f.Col == 0:
		return fmt.Sprintf("%s:%d", f.File, f.Line)
	default:
		return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
	}
}

// An Analyzer is one registered check. Run inspects a single type-checked
// package through its Pass and reports findings; it may also record facts
// for packages that import this one.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax, the type
// information, the engine config, and the fact store shared with the
// analyzers that ran on this package's imports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config

	facts    *factStore
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:    p.Pkg.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Package: p.Pkg.Dir,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportPackage records a package-level finding (no line), e.g. a missing
// package doc comment.
func (p *Pass) ReportPackage(format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		File:    p.Pkg.Dir,
		Check:   p.Analyzer.Name,
		Package: p.Pkg.Dir,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Callee resolves the called package-level function or method of a call
// expression via type information, or nil for conversions, builtins,
// function-typed variables and indirect calls. Unlike the old AST-only
// heuristic this survives import aliasing and local shadowing.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// SetFact records a fact about the package under analysis, visible to
// analyzers running later on packages that import it.
func (p *Pass) SetFact(key string, v any) {
	p.facts.set(p.Pkg.Path, key, v)
}

// Fact reads a fact previously recorded for pkgPath (typically one of
// this package's imports, which the driver has already analyzed).
func (p *Pass) Fact(pkgPath, key string) (any, bool) {
	return p.facts.get(pkgPath, key)
}

// factStore holds per-package facts keyed by import path. The driver
// analyzes packages in dependency order, so a pass can rely on facts from
// everything it imports.
type factStore struct {
	byPkg map[string]map[string]any
}

func newFactStore() *factStore {
	return &factStore{byPkg: map[string]map[string]any{}}
}

func (s *factStore) set(pkg, key string, v any) {
	m := s.byPkg[pkg]
	if m == nil {
		m = map[string]any{}
		s.byPkg[pkg] = m
	}
	m[key] = v
}

func (s *factStore) get(pkg, key string) (any, bool) {
	v, ok := s.byPkg[pkg][key]
	return v, ok
}

// Config scopes the determinism checks. Package sets are lists of
// module-root-relative directory patterns: an entry matches the directory
// itself and, unless it is ".", everything below it.
type Config struct {
	// Deterministic lists the determinism-critical package directories:
	// walltime, maprange and nondetsched apply inside this set.
	Deterministic []string
	// Allow exempts directories from a single check, keyed by check
	// name — e.g. internal/benchreg measures wall-clock time by design,
	// so it sits on the walltime allowlist.
	Allow map[string][]string
}

// DefaultConfig is the repo's policy: everything under internal/, the
// root facade, and the deterministic CLIs (dirigent-sim, dirigent-bench)
// are determinism-critical. benchreg and the serving layer read the wall
// clock by design; the experiment/scenario/server/telemetry fan-out paths
// may use goroutines and selects.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			".",
			"internal",
			"cmd/dirigent-sim",
			"cmd/dirigent-bench",
		},
		Allow: map[string][]string{
			"walltime": {
				"internal/benchreg", // wall-clock benchmark harness
				"internal/load",     // open-loop replay schedules in wall time
				"internal/server",   // serving deadlines are real time
			},
			"nondetsched": {
				"internal/benchreg",   // parallel probe sampling
				"internal/experiment", // sweep fan-out (DIRIGENT_MAX_PARALLEL)
				"internal/load",       // concurrent open-loop dispatch
				"internal/scenario",   // suite fan-out over seeded sessions
				"internal/server",     // request handling is concurrent
				"internal/telemetry",  // sink fan-out
			},
			"maprange": {
				"internal/server", // non-deterministic layer by design
			},
		},
	}
}

// matchDir reports whether dir (slash-separated, "." for the module root)
// is covered by pattern.
func matchDir(dir, pattern string) bool {
	if pattern == "." {
		return dir == "."
	}
	return dir == pattern || strings.HasPrefix(dir, pattern+"/")
}

func matchAny(dir string, patterns []string) bool {
	for _, p := range patterns {
		if matchDir(dir, p) {
			return true
		}
	}
	return false
}

// Deterministic reports whether the package directory is in the
// determinism-critical set.
func (c *Config) deterministic(dir string) bool {
	return matchAny(dir, c.Deterministic)
}

// inScope reports whether check applies to dir: the directory must be
// determinism-critical and not on the check's allowlist.
func (c *Config) inScope(check, dir string) bool {
	return c.deterministic(dir) && !matchAny(dir, c.Allow[check])
}

// Analyzers returns the full registry in its stable run order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		pkgdocAnalyzer,
		errorsnewAnalyzer,
		errstyleAnalyzer,
		walltimeAnalyzer,
		maprangeAnalyzer,
		nondetschedAnalyzer,
		errcheckAnalyzer,
		floateqAnalyzer,
		copylocksAnalyzer,
	}
}

// ByName resolves a comma-separated -checks list against the registry.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, errors.New("empty -checks list")
	}
	return out, nil
}

// Names lists the registered analyzer names in run order.
func Names() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

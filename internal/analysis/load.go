package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked module package: syntax, type information
// and resolved module-internal imports.
type Package struct {
	Dir   string // module-root-relative, slash-separated; "." for the root
	Path  string // import path
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Imports holds the module-internal imports, in source order per
	// file, for fact propagation across the module graph.
	Imports []*Package

	root string // absolute module root, for position trimming
}

// relFile turns an absolute position filename into the module-root
// relative slash path findings use.
func (p *Package) relFile(abs string) string {
	if rel, err := filepath.Rel(p.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// loader type-checks the module under root. Imports resolve recursively
// from source: module-internal paths against the module tree, everything
// else against GOROOT/src (with the GOROOT vendor fallback), so the
// engine needs no compiled export data and no toolchain invocation.
type loader struct {
	root    string // absolute module root
	module  string // module path from go.mod
	fset    *token.FileSet
	ctxt    build.Context
	pkgs    map[string]*types.Package // import path -> checked package
	loading map[string]bool           // cycle guard
	modPkgs map[string]*Package       // module dir -> full package
	order   []*Package                // module packages in completion order
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Cgo files reference the fake "C" package; with cgo off the pure-Go
	// fallbacks (netgo et al.) are selected instead, which type-check
	// from source.
	ctxt.CgoEnabled = false
	if ctxt.GOROOT == "" {
		ctxt.GOROOT = runtime.GOROOT()
	}
	return &loader{
		root:    abs,
		module:  module,
		fset:    token.NewFileSet(),
		ctxt:    ctxt,
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
		modPkgs: map[string]*Package{},
	}, nil
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// loadModule walks the module tree and type-checks every package found,
// returning them sorted by directory. Test files are excluded: the
// analyzers cover shipped code only.
func (l *loader) loadModule() ([]*Package, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// packageDirs lists module-root-relative directories containing .go
// files, skipping hidden, vendor and testdata trees.
func (l *loader) packageDirs() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(l.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != l.root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			rel, err := filepath.Rel(l.root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dirs []string
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps a module-relative directory to its import path.
func (l *loader) importPath(dir string) string {
	if dir == "." {
		return l.module
	}
	return l.module + "/" + dir
}

// loadDir type-checks the module package in the given relative directory
// (or returns nil when the directory holds only test files).
func (l *loader) loadDir(dir string) (*Package, error) {
	if pkg, ok := l.modPkgs[dir]; ok {
		return pkg, nil
	}
	abs := filepath.Join(l.root, filepath.FromSlash(dir))
	files, err := l.buildableFiles(abs)
	if err != nil || len(files) == 0 {
		return nil, err
	}

	path := l.importPath(dir)
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var syntax []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, parsed)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{
		Dir:   dir,
		Path:  path,
		Fset:  l.fset,
		Files: syntax,
		Info:  info,
		root:  l.root,
	}
	conf := types.Config{Importer: (*moduleImporter)(l), FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	pkg.Name = tpkg.Name()
	pkg.Types = tpkg
	l.pkgs[path] = tpkg
	l.modPkgs[dir] = pkg
	l.order = append(l.order, pkg)

	for _, f := range syntax {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if rel, ok := l.moduleRel(ipath); ok {
				if dep := l.modPkgs[rel]; dep != nil {
					pkg.Imports = append(pkg.Imports, dep)
				}
			}
		}
	}
	return pkg, nil
}

// moduleRel maps an import path inside the module to its relative
// directory.
func (l *loader) moduleRel(path string) (string, bool) {
	if path == l.module {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return rel, true
	}
	return "", false
}

// buildableFiles selects the non-test .go files of a directory honoring
// build constraints; a directory with no buildable files yields nil.
func (l *loader) buildableFiles(abs string) ([]string, error) {
	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var out []string
	for _, name := range bp.GoFiles {
		out = append(out, filepath.Join(abs, name))
	}
	sort.Strings(out)
	return out, nil
}

// moduleImporter resolves imports recursively from source. Module-internal
// paths load through loadDir (strict: type errors fail the run); standard
// library paths type-check from GOROOT/src leniently, since the goal is
// type information for the module, not a stdlib audit.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(m)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no buildable Go files for %s", path)
		}
		return pkg.Types, nil
	}
	return l.loadStdlib(path)
}

// loadStdlib type-checks one GOROOT package from source, recursing
// through its imports.
func (l *loader) loadStdlib(path string) (*types.Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		// GOROOT vendors golang.org/x dependencies of net/http et al.
		vdir := filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path))
		if _, verr := os.Stat(vdir); verr != nil {
			return nil, fmt.Errorf("cannot find package %s in GOROOT", path)
		}
		dir = vdir
	}
	files, err := l.buildableFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files for %s", path)
	}
	var syntax []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(l.fset, f, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, parsed)
	}
	conf := types.Config{
		Importer:    (*moduleImporter)(l),
		FakeImportC: true,
		// The stdlib is trusted: tolerate residual errors (e.g. around
		// compiler intrinsics) as long as a usable package comes back.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, syntax, nil)
	if pkg == nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg, nil
}

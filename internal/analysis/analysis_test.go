package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSelfTest runs the full want-comment selftest over the fixture
// module: every analyzer must fire on its seeded violation and stay
// quiet on the negative cases.
func TestSelfTest(t *testing.T) {
	if err := SelfTest("testdata"); err != nil {
		t.Fatal(err)
	}
}

// TestFixtureSuppression pins the suppression accounting: the fixture
// has exactly two honored directives (leading and trailing form), and
// the malformed/mismatched ones must not suppress.
func TestFixtureSuppression(t *testing.T) {
	res, err := Run(Options{Root: "testdata", Config: fixtureConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (leading + trailing directive)", res.Suppressed)
	}
	malformed := 0
	for _, f := range res.Findings {
		if f.File == "det/suppressed.go" && f.Check == "walltime" {
			malformed++
		}
	}
	if malformed != 2 {
		t.Errorf("surviving findings in det/suppressed.go = %d, want 2 (malformed + mismatched directives)", malformed)
	}
}

// TestChecksFilter proves -checks style selection: running only pkgdoc
// over the fixture yields exactly the nodoc finding.
func TestChecksFilter(t *testing.T) {
	checks, err := ByName("pkgdoc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Root: "testdata", Checks: checks, Config: fixtureConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 || res.Findings[0].Check != "pkgdoc" || res.Findings[0].Package != "internal/nodoc" {
		t.Errorf("pkgdoc-only run = %+v, want exactly the internal/nodoc finding", res.Findings)
	}
}

// TestDeterministicFindings runs the engine twice and requires
// byte-identical results: the gate itself must be seed-deterministic.
func TestDeterministicFindings(t *testing.T) {
	a, err := Run(Options{Root: "testdata", Config: fixtureConfig()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Root: "testdata", Config: fixtureConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs differ:\n%+v\n%+v", a, b)
	}
}

// TestByName covers subset selection and the unknown-check error.
func TestByName(t *testing.T) {
	got, err := ByName("walltime, errcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "walltime" || got[1].Name != "errcheck" {
		t.Errorf("ByName = %v", got)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Error("unknown check accepted")
	}
	if _, err := ByName(" , "); err == nil {
		t.Error("empty list accepted")
	}
	if all, err := ByName(""); err != nil || len(all) != 9 {
		t.Errorf("default registry = %d analyzers, err %v; want 9", len(all), err)
	}
}

// TestBrokenFileFailsCleanly pins the old crash class: the parse-only
// linter panicked on a zero-argument fmt.Errorf (it indexed Args[0]
// unconditionally). The type-checking engine instead reports a load
// error — exit 2 territory, never a panic.
func TestBrokenFileFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module broken\n\ngo 1.22\n")
	write("broken.go", "package broken\n\nimport \"fmt\"\n\nfunc f() error { return fmt.Errorf() }\n")
	_, err := Run(Options{Root: dir})
	if err == nil {
		t.Fatal("type-broken module loaded without error")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not name the type-checking stage", err)
	}
}

// TestReporters sanity-checks the three output formats over the fixture
// result.
func TestReporters(t *testing.T) {
	res, err := Run(Options{Root: "testdata", Config: fixtureConfig()})
	if err != nil {
		t.Fatal(err)
	}

	text := RenderText(res)
	if !strings.Contains(text, "[walltime]") || !strings.Contains(text, "det/det.go:") {
		t.Errorf("text report missing expected lines:\n%s", text)
	}

	js, err := RenderJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if len(decoded.Findings) != len(res.Findings) || decoded.Suppressed != res.Suppressed {
		t.Errorf("JSON round-trip lost findings: %d/%d", len(decoded.Findings), len(res.Findings))
	}

	md := RenderMarkdown(res)
	if !strings.Contains(md, "| Position | Check | Message |") {
		t.Errorf("markdown report missing findings table:\n%s", md)
	}

	clean := &Result{Packages: 3, Checks: Names()}
	if md := RenderMarkdown(clean); !strings.Contains(md, "✅ clean") {
		t.Errorf("clean markdown report missing status:\n%s", md)
	}
}

// TestMatchDir pins the config pattern semantics.
func TestMatchDir(t *testing.T) {
	cases := []struct {
		dir, pattern string
		want         bool
	}{
		{".", ".", true},
		{"internal/machine", ".", false},
		{"internal", "internal", true},
		{"internal/machine", "internal", true},
		{"internalx", "internal", false},
		{"cmd/dirigent-sim", "cmd/dirigent-sim", true},
		{"cmd/dirigent-simx", "cmd/dirigent-sim", false},
	}
	for _, c := range cases {
		if got := matchDir(c.dir, c.pattern); got != c.want {
			t.Errorf("matchDir(%q, %q) = %v, want %v", c.dir, c.pattern, got, c.want)
		}
	}
}

// TestDefaultConfigScope pins the repo policy: the deterministic core is
// covered, the sanctioned wall-clock readers are allowed, and the
// non-deterministic serving layer is out of maprange scope.
func TestDefaultConfigScope(t *testing.T) {
	cfg := DefaultConfig()
	for _, dir := range []string{"internal/machine", "internal/sched", "cmd/dirigent-sim", "cmd/dirigent-bench", "."} {
		if !cfg.deterministic(dir) {
			t.Errorf("%s should be determinism-critical", dir)
		}
	}
	if cfg.deterministic("cmd/dirigent-serve") {
		t.Error("cmd/dirigent-serve should not be determinism-critical")
	}
	if cfg.inScope("walltime", "internal/benchreg") {
		t.Error("benchreg should be on the walltime allowlist")
	}
	if cfg.inScope("walltime", "internal/server") {
		t.Error("server should be on the walltime allowlist")
	}
	if !cfg.inScope("walltime", "cmd/dirigent-bench") {
		t.Error("cmd/dirigent-bench must be in walltime scope (satellite: the sim/bench CLIs are scanned)")
	}
	if cfg.inScope("nondetsched", "internal/experiment") {
		t.Error("experiment fan-out should be on the nondetsched allowlist")
	}
	if !cfg.inScope("nondetsched", "internal/machine") {
		t.Error("machine must be in nondetsched scope")
	}
}

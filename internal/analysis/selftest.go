package analysis

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A want is one expectation comment in a fixture file:
//
//	return time.Now() // want walltime "time.Now"
//
// The analyzer named must report a finding on that line whose message
// contains the quoted substring. pkgdoc wants match the package-level
// finding of the file's package. Fixture lines without a want comment
// must stay quiet, so the selftest proves each analyzer both fires on
// its seeded violation and holds its silence on the negative cases.
type want struct {
	file   string // fixture-root-relative
	line   int
	check  string
	substr string
}

var wantRE = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

// fixtureConfig scopes the determinism checks for the fixture module:
// det and fanout are determinism-critical, and fanout sits on the
// nondetsched allowlist (its goroutine must not be reported).
func fixtureConfig() *Config {
	return &Config{
		Deterministic: []string{"det", "fanout"},
		Allow: map[string][]string{
			"nondetsched": {"fanout"},
		},
	}
}

// SelfTest proves the analysis gate end to end: it runs the full
// registry over the fixture module and checks the findings against the
// fixtures' want comments, both directions — every seeded violation must
// be caught (so an analyzer that stops firing fails the selftest) and
// nothing else may be reported (so a noisy analyzer fails it too).
func SelfTest(fixtureRoot string) error {
	res, err := Run(Options{Root: fixtureRoot, Config: fixtureConfig()})
	if err != nil {
		return fmt.Errorf("analysis selftest: %w", err)
	}
	wants, err := collectWants(fixtureRoot)
	if err != nil {
		return fmt.Errorf("analysis selftest: %w", err)
	}
	if len(wants) == 0 {
		return errors.New("analysis selftest: no want comments found in fixtures")
	}
	if len(res.Findings) == 0 {
		return errors.New("analysis selftest: zero findings over seeded fixture violations; the gate cannot fail")
	}
	if res.Suppressed == 0 {
		return errors.New("analysis selftest: no suppressed findings; lint:ignore directives are not honored")
	}

	matchedWant := make([]bool, len(wants))
	var problems []string
	for _, f := range res.Findings {
		matched := false
		for i, w := range wants {
			if matchedWant[i] || w.check != f.Check || !strings.Contains(f.Message, w.substr) {
				continue
			}
			if f.Line == 0 { // package-level finding: match by package dir
				if filepath.ToSlash(filepath.Dir(w.file)) != f.Package {
					continue
				}
			} else if w.file != f.File || w.line != f.Line {
				continue
			}
			matchedWant[i] = true
			matched = true
			break
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding %s: [%s] %s", f.Pos(), f.Check, f.Message))
		}
	}
	for i, w := range wants {
		if !matchedWant[i] {
			problems = append(problems, fmt.Sprintf("%s:%d: analyzer %s did not report the seeded violation (want %q)", w.file, w.line, w.check, w.substr))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("analysis selftest: %d problem(s):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}

// collectWants scans the fixture tree for want comments.
func collectWants(root string) ([]want, error) {
	var out []want
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				out = append(out, want{
					file:   filepath.ToSlash(rel),
					line:   i + 1,
					check:  m[1],
					substr: m[2],
				})
			}
		}
		return nil
	})
	return out, err
}

package mem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{PeakBandwidth: 0, IdleLatency: time.Nanosecond, MaxStretch: 2}); err == nil {
		t.Error("zero bandwidth should error")
	}
	if _, err := New(Config{PeakBandwidth: 1e9, IdleLatency: 0, MaxStretch: 2}); err == nil {
		t.Error("zero latency should error")
	}
	if _, err := New(Config{PeakBandwidth: 1e9, IdleLatency: time.Nanosecond, MaxStretch: 0.5}); err == nil {
		t.Error("stretch < 1 should error")
	}
	m := MustNew(DefaultConfig())
	if m.Config().PeakBandwidth != 22e9 {
		t.Errorf("Config = %+v", m.Config())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestUtilization(t *testing.T) {
	m := MustNew(Config{PeakBandwidth: 1e9, IdleLatency: 100 * time.Nanosecond, MaxStretch: 10})
	dt := time.Millisecond
	// 1e9 B/s over 1ms = 1e6 bytes capacity.
	if got := m.Utilization(5e5, dt); got != 0.5 {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
	if got := m.Utilization(2e6, dt); got != 2 {
		t.Errorf("over-demand Utilization = %g, want 2 (unclamped)", got)
	}
	if got := m.Utilization(100, 0); got != 0 {
		t.Errorf("zero-dt Utilization = %g, want 0", got)
	}
}

func TestLatencyStretchCurve(t *testing.T) {
	m := MustNew(DefaultConfig())
	cases := []struct {
		u    float64
		want float64
	}{
		{0, 1},
		{0.5, 2},
		{0.9, 10},
		{-1, 1}, // clamped
	}
	for _, c := range cases {
		if got := m.LatencyStretch(c.u); abs(got-c.want) > 1e-9 {
			t.Errorf("LatencyStretch(%g) = %g, want %g", c.u, got, c.want)
		}
	}
	// Above cap.
	if got := m.LatencyStretch(0.999); got != m.Config().MaxStretch {
		t.Errorf("saturated stretch = %g, want cap %g", got, m.Config().MaxStretch)
	}
}

func TestLatencyStretchMonotone(t *testing.T) {
	m := MustNew(DefaultConfig())
	f := func(a, b float64) bool {
		// Map arbitrary floats into [0, 2].
		ua := abs(a) - float64(int(abs(a)/2))*2
		ub := abs(b) - float64(int(abs(b)/2))*2
		if ua > ub {
			ua, ub = ub, ua
		}
		return m.LatencyStretch(ua) <= m.LatencyStretch(ub)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLatency(t *testing.T) {
	m := MustNew(Config{PeakBandwidth: 1e9, IdleLatency: 100 * time.Nanosecond, MaxStretch: 10})
	if got := m.Latency(0); got != 100*time.Nanosecond {
		t.Errorf("idle Latency = %v", got)
	}
	if got := m.Latency(0.5); got != 200*time.Nanosecond {
		t.Errorf("loaded Latency = %v", got)
	}
}

func TestApplyAndCounters(t *testing.T) {
	m := MustNew(Config{PeakBandwidth: 1e9, IdleLatency: 100 * time.Nanosecond, MaxStretch: 10})
	if m.LastStretch() != 1 {
		t.Errorf("fresh LastStretch = %g", m.LastStretch())
	}
	m.Apply(5e5, time.Millisecond)
	if m.LastUtilization() != 0.5 {
		t.Errorf("LastUtilization = %g", m.LastUtilization())
	}
	if m.LastStretch() != 2 {
		t.Errorf("LastStretch = %g", m.LastStretch())
	}
	m.Apply(5e5, time.Millisecond)
	if m.TotalBytes() != 1e6 {
		t.Errorf("TotalBytes = %g", m.TotalBytes())
	}
	m.Reset()
	if m.TotalBytes() != 0 || m.LastUtilization() != 0 || m.LastStretch() != 1 {
		t.Error("Reset should clear observability state")
	}
}

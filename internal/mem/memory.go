// Package mem models the main-memory system of the simulated machine: a
// fixed peak bandwidth shared by all cores, with access latency that
// stretches as utilization approaches saturation.
//
// This is the coupling channel through which background tasks hurt
// foreground tasks even with a partitioned cache: every LLC miss becomes a
// memory transaction, aggregate demand raises utilization, and queueing
// delay inflates per-miss latency for everyone. The latency curve is the
// standard M/M/1-flavoured stretch factor 1/(1-U) capped at a maximum,
// which reproduces the sharp knee near saturation that makes memory-bound
// phases (bwaves, lbm, RS scans) so intrusive in the paper's Fig. 5.
package mem

import (
	"fmt"
	"time"
)

// Config describes the memory system.
type Config struct {
	// PeakBandwidth is the sustainable bandwidth in bytes/second. The
	// evaluation machine has 4 channels of DDR4-2133;
	// we use the sustainable random-access (miss-stream) bandwidth, well below
	// peak streaming copy bandwidth, matching measured behaviour under mixed miss traffic.
	PeakBandwidth float64
	// IdleLatency is the unloaded memory access latency.
	IdleLatency time.Duration
	// MaxStretch caps the queueing multiplier so a saturated quantum
	// degrades throughput smoothly instead of dividing by zero.
	MaxStretch float64
}

// DefaultConfig mirrors the paper's platform: 4×DDR4-2133 with ~22 GB/s
// sustainable bandwidth, ~85 ns idle latency, stretch capped at 20×.
func DefaultConfig() Config {
	return Config{
		PeakBandwidth: 22e9,
		IdleLatency:   85 * time.Nanosecond,
		MaxStretch:    20,
	}
}

// Memory is the shared memory system. Not safe for concurrent use.
type Memory struct {
	cfg Config

	// utilization of the last applied quantum, for observability.
	lastUtilization float64
	lastStretch     float64
	totalBytes      float64 // lifetime traffic, for counters
}

// New validates cfg and returns a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.PeakBandwidth <= 0 {
		return nil, fmt.Errorf("mem: peak bandwidth %g must be positive", cfg.PeakBandwidth)
	}
	if cfg.IdleLatency <= 0 {
		return nil, fmt.Errorf("mem: idle latency %v must be positive", cfg.IdleLatency)
	}
	if cfg.MaxStretch < 1 {
		return nil, fmt.Errorf("mem: max stretch %g must be >= 1", cfg.MaxStretch)
	}
	return &Memory{cfg: cfg, lastStretch: 1}, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Utilization converts a demand in bytes over a quantum dt into a
// utilization fraction of peak bandwidth. Values above 1 are meaningful to
// the solver (demand exceeding supply) and are not clamped here.
func (m *Memory) Utilization(demandBytes float64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return demandBytes / (m.cfg.PeakBandwidth * dt.Seconds())
}

// LatencyStretch returns the queueing multiplier for a given utilization:
// 1/(1-U) clamped to [1, MaxStretch]. U is clamped to [0, 0.99] before the
// division so the curve is defined everywhere.
func (m *Memory) LatencyStretch(utilization float64) float64 {
	u := utilization
	if u < 0 {
		u = 0
	}
	if u > 0.99 {
		u = 0.99
	}
	s := 1 / (1 - u)
	if s > m.cfg.MaxStretch {
		s = m.cfg.MaxStretch
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Latency returns the effective per-access latency at the given utilization.
func (m *Memory) Latency(utilization float64) time.Duration {
	return time.Duration(float64(m.cfg.IdleLatency) * m.LatencyStretch(utilization))
}

// Apply records the final traffic of a quantum (after the machine's fixed
// point converged) for observability counters.
func (m *Memory) Apply(demandBytes float64, dt time.Duration) {
	u := m.Utilization(demandBytes, dt)
	m.lastUtilization = u
	m.lastStretch = m.LatencyStretch(u)
	m.totalBytes += demandBytes
}

// LastUtilization returns the utilization of the most recent quantum.
func (m *Memory) LastUtilization() float64 { return m.lastUtilization }

// LastStretch returns the latency stretch of the most recent quantum.
func (m *Memory) LastStretch() float64 { return m.lastStretch }

// TotalBytes returns lifetime traffic through the memory system.
func (m *Memory) TotalBytes() float64 { return m.totalBytes }

// Reset clears observability state (not the configuration).
func (m *Memory) Reset() {
	m.lastUtilization = 0
	m.lastStretch = 1
	m.totalBytes = 0
}

// Package mem models the main-memory system of the simulated machine: a
// fixed peak bandwidth shared by all cores — or, for multi-socket machine
// classes, one bandwidth pool per socket — with access latency that
// stretches as utilization approaches saturation.
//
// This is the coupling channel through which background tasks hurt
// foreground tasks even with a partitioned cache: every LLC miss becomes a
// memory transaction, aggregate demand raises utilization, and queueing
// delay inflates per-miss latency for everyone. The latency curve is the
// standard M/M/1-flavoured stretch factor 1/(1-U) capped at a maximum,
// which reproduces the sharp knee near saturation that makes memory-bound
// phases (bwaves, lbm, RS scans) so intrusive in the paper's Fig. 5.
package mem

import (
	"fmt"
	"time"
)

// Socket describes one memory controller of a multi-socket machine: a
// bandwidth pool contended only by the cores attached to that socket.
type Socket struct {
	// PeakBandwidth is the socket's sustainable bandwidth in bytes/second.
	PeakBandwidth float64
}

// Config describes the memory system.
type Config struct {
	// PeakBandwidth is the sustainable bandwidth in bytes/second. The
	// evaluation machine has 4 channels of DDR4-2133;
	// we use the sustainable random-access (miss-stream) bandwidth, well below
	// peak streaming copy bandwidth, matching measured behaviour under mixed miss traffic.
	PeakBandwidth float64
	// IdleLatency is the unloaded memory access latency.
	IdleLatency time.Duration
	// MaxStretch caps the queueing multiplier so a saturated quantum
	// degrades throughput smoothly instead of dividing by zero.
	MaxStretch float64
	// Sockets, when non-empty, splits the machine into per-socket bandwidth
	// pools: traffic from a socket's cores contends only against that
	// socket's PeakBandwidth (IdleLatency and MaxStretch stay shared).
	// Empty (the default) keeps the single shared pool above, byte-identical
	// to machines built before multi-socket support existed.
	Sockets []Socket
}

// DefaultConfig mirrors the paper's platform: 4×DDR4-2133 with ~22 GB/s
// sustainable bandwidth, ~85 ns idle latency, stretch capped at 20×.
func DefaultConfig() Config {
	return Config{
		PeakBandwidth: 22e9,
		IdleLatency:   85 * time.Nanosecond,
		MaxStretch:    20,
	}
}

// Memory is the shared memory system. Not safe for concurrent use.
type Memory struct {
	cfg Config

	// utilization of the last applied quantum, for observability. With
	// multiple sockets lastUtilization tracks the bottleneck (max) socket
	// and lastSocketUtil holds the per-socket values.
	lastUtilization float64
	lastStretch     float64
	lastSocketUtil  []float64
	totalBytes      float64 // lifetime traffic, for counters
}

// New validates cfg and returns a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.PeakBandwidth <= 0 {
		return nil, fmt.Errorf("mem: peak bandwidth %g must be positive", cfg.PeakBandwidth)
	}
	if cfg.IdleLatency <= 0 {
		return nil, fmt.Errorf("mem: idle latency %v must be positive", cfg.IdleLatency)
	}
	if cfg.MaxStretch < 1 {
		return nil, fmt.Errorf("mem: max stretch %g must be >= 1", cfg.MaxStretch)
	}
	for i, s := range cfg.Sockets {
		if s.PeakBandwidth <= 0 {
			return nil, fmt.Errorf("mem: socket %d peak bandwidth %g must be positive", i, s.PeakBandwidth)
		}
	}
	m := &Memory{cfg: cfg, lastStretch: 1}
	if len(cfg.Sockets) > 0 {
		m.lastSocketUtil = make([]float64, len(cfg.Sockets))
	}
	return m, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Utilization converts a demand in bytes over a quantum dt into a
// utilization fraction of peak bandwidth. Values above 1 are meaningful to
// the solver (demand exceeding supply) and are not clamped here.
func (m *Memory) Utilization(demandBytes float64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return demandBytes / (m.cfg.PeakBandwidth * dt.Seconds())
}

// LatencyStretch returns the queueing multiplier for a given utilization:
// 1/(1-U) clamped to [1, MaxStretch]. U is clamped to [0, 0.99] before the
// division so the curve is defined everywhere.
func (m *Memory) LatencyStretch(utilization float64) float64 {
	u := utilization
	if u < 0 {
		u = 0
	}
	if u > 0.99 {
		u = 0.99
	}
	s := 1 / (1 - u)
	if s > m.cfg.MaxStretch {
		s = m.cfg.MaxStretch
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Latency returns the effective per-access latency at the given utilization.
func (m *Memory) Latency(utilization float64) time.Duration {
	return time.Duration(float64(m.cfg.IdleLatency) * m.LatencyStretch(utilization))
}

// Apply records the final traffic of a quantum (after the machine's fixed
// point converged) for observability counters.
func (m *Memory) Apply(demandBytes float64, dt time.Duration) {
	u := m.Utilization(demandBytes, dt)
	m.lastUtilization = u
	m.lastStretch = m.LatencyStretch(u)
	m.totalBytes += demandBytes
}

// NumSockets returns the number of independent bandwidth pools: 1 for the
// classic shared-pool configuration, len(Sockets) otherwise.
func (m *Memory) NumSockets() int {
	if len(m.cfg.Sockets) == 0 {
		return 1
	}
	return len(m.cfg.Sockets)
}

// SocketPeakBandwidth returns socket i's bandwidth pool in bytes/second.
// For the shared-pool configuration socket 0 is the shared pool.
func (m *Memory) SocketPeakBandwidth(i int) float64 {
	if len(m.cfg.Sockets) == 0 {
		return m.cfg.PeakBandwidth
	}
	return m.cfg.Sockets[i].PeakBandwidth
}

// UtilizationOn converts a demand in bytes over a quantum dt on socket i
// into a utilization fraction of that socket's bandwidth. Like Utilization,
// values above 1 are meaningful to the solver and not clamped.
func (m *Memory) UtilizationOn(socket int, demandBytes float64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return demandBytes / (m.SocketPeakBandwidth(socket) * dt.Seconds())
}

// ApplySockets records the final per-socket traffic of a quantum (after the
// machine's fixed point converged). demands must have NumSockets entries.
// The headline LastUtilization/LastStretch track the bottleneck socket.
func (m *Memory) ApplySockets(demands []float64, dt time.Duration) {
	maxU, total := 0.0, 0.0
	for s, d := range demands {
		u := m.UtilizationOn(s, d, dt)
		if m.lastSocketUtil != nil {
			m.lastSocketUtil[s] = u
		}
		if u > maxU {
			maxU = u
		}
		total += d
	}
	m.lastUtilization = maxU
	m.lastStretch = m.LatencyStretch(maxU)
	m.totalBytes += total
}

// LastSocketUtilization returns socket i's utilization of the most recent
// quantum (equal to LastUtilization for the shared-pool configuration).
func (m *Memory) LastSocketUtilization(i int) float64 {
	if m.lastSocketUtil == nil {
		return m.lastUtilization
	}
	return m.lastSocketUtil[i]
}

// LastUtilization returns the utilization of the most recent quantum.
func (m *Memory) LastUtilization() float64 { return m.lastUtilization }

// LastStretch returns the latency stretch of the most recent quantum.
func (m *Memory) LastStretch() float64 { return m.lastStretch }

// TotalBytes returns lifetime traffic through the memory system.
func (m *Memory) TotalBytes() float64 { return m.totalBytes }

// Reset clears observability state (not the configuration).
func (m *Memory) Reset() {
	m.lastUtilization = 0
	m.lastStretch = 1
	m.totalBytes = 0
	for i := range m.lastSocketUtil {
		m.lastSocketUtil[i] = 0
	}
}

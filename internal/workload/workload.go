// Package workload defines the synthetic benchmark models that stand in for
// the paper's PARSEC foreground tasks and SPEC2006/MLPack background tasks
// (Table 1).
//
// A benchmark is a sequence of *phases*; each phase is a block of
// instructions with its own compute intensity (base CPI), LLC access rate
// (accesses per kilo-instruction), working-set size, and locality. Phase
// structure is the property that matters to Dirigent: the paper selects BG
// benchmarks precisely because they exhibit strong phase changes (bwaves,
// PCA, RS) or are rotated to mimic context switches (lbm/libquantum ×
// namd/soplex), and the predictor must track progress through FG phases
// whose rates differ (§4.1: "progress can significantly differ between
// segments").
//
// The concrete parameter values are calibrated so the simulated machine
// reproduces the shapes of the paper's Fig. 4 (FG execution times 0.5–1.6 s
// standalone, MPKI rising under contention) and Fig. 5 (a wide spectrum of
// BG intrusiveness).
package workload

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes latency-critical foreground benchmarks from
// throughput-oriented background benchmarks.
type Kind int

const (
	// Foreground tasks are latency-critical: they run as a stream of
	// fixed-work executions, each with a deadline.
	Foreground Kind = iota
	// Background tasks are batch: they run forever, cycling their phases.
	Background
)

func (k Kind) String() string {
	switch k {
	case Foreground:
		return "FG"
	case Background:
		return "BG"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Phase is a block of instructions with homogeneous behaviour.
type Phase struct {
	// Name identifies the phase in traces.
	Name string
	// Instructions is the phase length in retired instructions.
	Instructions float64
	// BaseCPI is cycles per instruction when every LLC access hits.
	BaseCPI float64
	// APKI is LLC accesses per kilo-instruction.
	APKI float64
	// WSSBytes is the working-set size in bytes.
	WSSBytes float64
	// Locality is the hit rate the phase achieves with its full working set
	// resident (compulsory/streaming misses keep it below 1).
	Locality float64
	// MLP is the memory-level parallelism: how many misses the phase
	// overlaps on average. Effective stall per miss is latency/MLP.
	// Streaming phases (prefetch-friendly) have high MLP; pointer-chasing
	// phases have MLP near 1. Zero is treated as 1.
	MLP float64
}

// EffectiveMLP returns MLP with the zero value defaulted to 1.
func (p Phase) EffectiveMLP() float64 {
	if p.MLP < 1 {
		return 1
	}
	return p.MLP
}

// Validate checks phase parameters.
func (p Phase) Validate() error {
	if p.Instructions <= 0 {
		return fmt.Errorf("workload: phase %q instructions %g must be positive", p.Name, p.Instructions)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("workload: phase %q base CPI %g must be positive", p.Name, p.BaseCPI)
	}
	if p.APKI < 0 {
		return fmt.Errorf("workload: phase %q APKI %g must be non-negative", p.Name, p.APKI)
	}
	if p.WSSBytes < 0 {
		return fmt.Errorf("workload: phase %q working set %g must be non-negative", p.Name, p.WSSBytes)
	}
	if p.Locality < 0 || p.Locality > 1 {
		return fmt.Errorf("workload: phase %q locality %g outside [0,1]", p.Name, p.Locality)
	}
	if p.MLP < 0 {
		return fmt.Errorf("workload: phase %q MLP %g must be non-negative", p.Name, p.MLP)
	}
	return nil
}

// Benchmark is a named workload model.
type Benchmark struct {
	// Name matches the paper's benchmark name (Table 1).
	Name string
	// Kind is Foreground or Background.
	Kind Kind
	// Phases execute in order; Foreground benchmarks complete after the
	// last phase, Background benchmarks wrap around forever.
	Phases []Phase
	// CPIJitter is the sigma of the per-quantum lognormal CPI noise
	// multiplier, modelling OS noise, interrupts and micro-architectural
	// variation (§4.2 lists these as the sources the EMA smooths).
	CPIJitter float64
}

// Validate checks the benchmark definition.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return errors.New("workload: benchmark must have a name")
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload: benchmark %q has no phases", b.Name)
	}
	for _, p := range b.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("benchmark %q: %w", b.Name, err)
		}
	}
	if b.CPIJitter < 0 {
		return fmt.Errorf("workload: benchmark %q jitter %g must be non-negative", b.Name, b.CPIJitter)
	}
	return nil
}

// TotalInstructions returns the instruction budget of one pass over the
// phases (one execution for Foreground benchmarks).
func (b *Benchmark) TotalInstructions() float64 {
	sum := 0.0
	for _, p := range b.Phases {
		sum += p.Instructions
	}
	return sum
}

// Program is a running instance of a benchmark: a position in its phase
// sequence. Not safe for concurrent use.
type Program struct {
	bench    *Benchmark
	executed float64 // instructions completed in the current pass
	total    float64

	// Cached phase lookup: phases[phase] covers executed positions in
	// [phaseStart, phaseEnd). The machine's solver asks for the current
	// phase several times per quantum while a phase spans thousands of
	// quanta, so Phase would otherwise rescan the cumulative sums on every
	// call. The guard range makes the cache self-invalidating under
	// Advance/Reset/SetOffset — any position outside it rescans.
	phase      int
	phaseStart float64
	phaseEnd   float64
}

// NewProgram validates the benchmark and returns a program positioned at
// its start.
func NewProgram(b *Benchmark) (*Program, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Program{bench: b, total: b.TotalInstructions()}, nil
}

// MustProgram is NewProgram that panics on an invalid benchmark.
func MustProgram(b *Benchmark) *Program {
	p, err := NewProgram(b)
	if err != nil {
		panic(err)
	}
	return p
}

// Benchmark returns the underlying benchmark definition.
func (p *Program) Benchmark() *Benchmark { return p.bench }

// Executed returns instructions retired in the current pass — the progress
// counter Dirigent's profiler reads (§4.1).
func (p *Program) Executed() float64 { return p.executed }

// Remaining returns instructions left in the current pass.
func (p *Program) Remaining() float64 { return p.total - p.executed }

// Phase returns the phase the program is currently executing.
func (p *Program) Phase() *Phase {
	if p.executed >= p.phaseStart && p.executed < p.phaseEnd {
		return &p.bench.Phases[p.phase]
	}
	cum := 0.0
	for i := range p.bench.Phases {
		start := cum
		cum += p.bench.Phases[i].Instructions
		if p.executed < cum {
			p.phase, p.phaseStart, p.phaseEnd = i, start, cum
			return &p.bench.Phases[i]
		}
	}
	// At or past the end (only transiently visible for FG right at
	// completion): report the last phase, uncached so the position after the
	// wrap rescans.
	return &p.bench.Phases[len(p.bench.Phases)-1]
}

// PhaseScan is Phase without the cache: it rescans the cumulative phase sums
// on every call, exactly as Phase did before the window cache existed. The
// compat step engine calls it so the skip-ahead speedup gate times the
// engine as it originally shipped; both return the same *Phase for every
// position (pinned by TestProgramPhaseCache's sweep).
func (p *Program) PhaseScan() *Phase {
	cum := 0.0
	for i := range p.bench.Phases {
		cum += p.bench.Phases[i].Instructions
		if p.executed < cum {
			return &p.bench.Phases[i]
		}
	}
	return &p.bench.Phases[len(p.bench.Phases)-1]
}

// Advance retires instr instructions. For Foreground benchmarks it returns
// true when the pass completes (the program then resets to the start,
// modelling the next task in the stream). Background benchmarks wrap
// silently and always return false.
func (p *Program) Advance(instr float64) bool {
	if instr < 0 {
		instr = 0
	}
	p.executed += instr
	if p.executed < p.total {
		return false
	}
	// Wrap. Quanta are far smaller than phases, so at most one wrap occurs.
	p.executed -= p.total
	return p.bench.Kind == Foreground
}

// Reset rewinds to the start of the pass.
func (p *Program) Reset() { p.executed = 0 }

// SetOffset positions the program offset instructions into its pass,
// wrapping modulo the pass length. Background programs in a collocation
// start at random offsets: independently-arriving batch jobs are not
// phase-synchronized, and the degree of overlap between their memory-heavy
// phases is exactly the slowly-varying interference component the paper's
// predictor must track.
func (p *Program) SetOffset(offset float64) {
	if offset < 0 {
		offset = 0
	}
	p.executed = math.Mod(offset, p.total)
}

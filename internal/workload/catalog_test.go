package workload

import (
	"testing"

	"dirigent/internal/sim"
)

func TestCatalogValidates(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("catalog benchmark %s invalid: %v", b.Name, err)
		}
	}
}

func TestCatalogComposition(t *testing.T) {
	fg := FG()
	if len(fg) != 5 {
		t.Fatalf("FG count = %d, want 5 (Table 1)", len(fg))
	}
	wantFG := map[string]bool{"bodytrack": true, "ferret": true, "fluidanimate": true, "raytrace": true, "streamcluster": true}
	for _, b := range fg {
		if !wantFG[b.Name] {
			t.Errorf("unexpected FG benchmark %s", b.Name)
		}
		if b.Kind != Foreground {
			t.Errorf("%s should be Foreground", b.Name)
		}
	}
	sbg := SingleBG()
	if len(sbg) != 3 {
		t.Fatalf("SingleBG count = %d, want 3", len(sbg))
	}
	for _, b := range sbg {
		if b.Kind != Background {
			t.Errorf("%s should be Background", b.Name)
		}
	}
	rot := RotateBenchmarks()
	if len(rot) != 4 {
		t.Fatalf("RotateBenchmarks count = %d, want 4", len(rot))
	}
	pairs := RotatePairs()
	if len(pairs) != 4 {
		t.Fatalf("RotatePairs count = %d, want 4", len(pairs))
	}
	for _, p := range pairs {
		if _, err := ByName(p[0]); err != nil {
			t.Errorf("pair member %s not in catalog", p[0])
		}
		if _, err := ByName(p[1]); err != nil {
			t.Errorf("pair member %s not in catalog", p[1])
		}
	}
	if len(Names()) != 12 {
		t.Errorf("Names count = %d, want 12", len(Names()))
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("ferret")
	if err != nil || b.Name != "ferret" {
		t.Fatalf("ByName(ferret) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName(unknown) should panic")
		}
	}()
	MustByName("nope")
}

func TestCatalogReturnsCopies(t *testing.T) {
	a := MustByName("ferret")
	a.Phases[0].APKI = 999
	b := MustByName("ferret")
	if b.Phases[0].APKI == 999 {
		t.Error("catalog must return independent copies")
	}
}

func TestFGInstructionBudgetsSpanPaperRange(t *testing.T) {
	// Standalone times in Fig. 4 span 0.5–1.6 s at 2 GHz. A crude bound:
	// budget/2e9 (IPC ~1-2) must be within [0.3, 4] seconds equivalent.
	for _, b := range FG() {
		secs := b.TotalInstructions() / 2e9
		if secs < 0.3 || secs > 4 {
			t.Errorf("%s instruction budget %g implausible (%g s at 1 IPC)", b.Name, b.TotalInstructions(), secs)
		}
	}
	// streamcluster must be the longest FG (paper: ~1.6 s).
	var sc, maxOther float64
	for _, b := range FG() {
		if b.Name == "streamcluster" {
			sc = b.TotalInstructions()
		} else if b.TotalInstructions() > maxOther {
			maxOther = b.TotalInstructions()
		}
	}
	if sc <= maxOther {
		t.Error("streamcluster should have the largest instruction budget")
	}
}

func TestBGIntrusivenessSpectrum(t *testing.T) {
	// lbm must stream harder than namd by an order of magnitude (Fig. 5's
	// spectrum from lib+soplex to lbm+namd).
	apki := func(name string) float64 {
		b := MustByName(name)
		var sum, instr float64
		for _, p := range b.Phases {
			sum += p.APKI * p.Instructions
			instr += p.Instructions
		}
		return sum / instr
	}
	if apki("lbm") < 5*apki("namd") {
		t.Errorf("lbm APKI %g should dwarf namd APKI %g", apki("lbm"), apki("namd"))
	}
	if apki("rs") < apki("pca") {
		t.Errorf("rs (%g) should be at least as intrusive as pca (%g)", apki("rs"), apki("pca"))
	}
}

func TestRotator(t *testing.T) {
	rng := sim.NewRand(1)
	a := MustByName("lbm")
	b := MustByName("namd")
	r := MustRotator(a, b, rng)
	if r.Name() != "lbm+namd" {
		t.Errorf("Name = %s", r.Name())
	}
	if r.Current().Name != "lbm" {
		t.Errorf("initial benchmark = %s", r.Current().Name)
	}
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		next := r.Rotate()
		seen[next.Name]++
		if r.Program().Benchmark() != next {
			t.Fatal("Program should run the rotated benchmark")
		}
		if r.Program().Executed() != 0 {
			t.Fatal("rotation should install a fresh program")
		}
	}
	if r.Rotations() != 200 {
		t.Errorf("Rotations = %d", r.Rotations())
	}
	// Both benchmarks selected a plausible number of times.
	if seen["lbm"] < 60 || seen["namd"] < 60 {
		t.Errorf("rotation skewed: %v", seen)
	}
}

func TestRotatorValidation(t *testing.T) {
	rng := sim.NewRand(1)
	fg := MustByName("ferret")
	bg := MustByName("namd")
	if _, err := NewRotator(fg, bg, rng); err == nil {
		t.Error("FG benchmark in rotator should error")
	}
	if _, err := NewRotator(bg, fg, rng); err == nil {
		t.Error("FG benchmark in rotator should error")
	}
	if _, err := NewRotator(bg, bg, nil); err == nil {
		t.Error("nil rng should error")
	}
	invalid := &Benchmark{Name: "bad", Kind: Background}
	if _, err := NewRotator(invalid, bg, rng); err == nil {
		t.Error("invalid first benchmark should error")
	}
	if _, err := NewRotator(bg, invalid, rng); err == nil {
		t.Error("invalid second benchmark should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRotator should panic on error")
		}
	}()
	MustRotator(fg, bg, rng)
}

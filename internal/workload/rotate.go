package workload

import (
	"errors"
	"fmt"

	"dirigent/internal/sim"
)

// Rotator implements the paper's rotate-BG workloads (§5.1): a pair of
// benchmarks that randomly switch each time a foreground task completes,
// mimicking the interference changes caused by context switches of
// collocated jobs.
type Rotator struct {
	a, b    *Benchmark
	current *Program
	name    string
	rng     *sim.Rand
	// rotations counts how many switches occurred, for traces.
	rotations int
}

// NewRotator builds a rotator over two background benchmarks. The initial
// program runs benchmark a.
func NewRotator(a, b *Benchmark, rng *sim.Rand) (*Rotator, error) {
	if rng == nil {
		return nil, errors.New("workload: rotator requires a random source")
	}
	if a.Kind != Background || b.Kind != Background {
		return nil, fmt.Errorf("workload: rotator benchmarks must be background (%s is %s, %s is %s)",
			a.Name, a.Kind, b.Name, b.Kind)
	}
	prog, err := NewProgram(a)
	if err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Rotator{
		a: a, b: b,
		current: prog,
		name:    a.Name + "+" + b.Name,
		rng:     rng,
	}, nil
}

// MustRotator is NewRotator that panics on error.
func MustRotator(a, b *Benchmark, rng *sim.Rand) *Rotator {
	r, err := NewRotator(a, b, rng)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns "a+b".
func (r *Rotator) Name() string { return r.name }

// Program returns the currently-installed program. The caller must re-fetch
// it after each Rotate.
func (r *Rotator) Program() *Program { return r.current }

// Current returns the benchmark currently running.
func (r *Rotator) Current() *Benchmark { return r.current.Benchmark() }

// Rotations returns how many times Rotate has been called.
func (r *Rotator) Rotations() int { return r.rotations }

// Rotate randomly selects one of the two paired benchmarks (each with
// probability 1/2, per the paper's "randomly switch between the two paired
// benchmarks each time a FG task completes") and installs a fresh program
// for it. It returns the newly selected benchmark.
func (r *Rotator) Rotate() *Benchmark {
	next := r.a
	if r.rng.Intn(2) == 1 {
		next = r.b
	}
	r.current = MustProgram(next)
	r.rotations++
	return next
}

package workload

import (
	"testing"

	"dirigent/internal/sim"
)

func TestNewRotatorValidation(t *testing.T) {
	a := MustByName("lbm")
	b := MustByName("namd")
	fg := MustByName("ferret")
	if _, err := NewRotator(a, b, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := NewRotator(fg, b, sim.NewRand(1)); err == nil {
		t.Error("foreground first benchmark should error")
	}
	if _, err := NewRotator(a, fg, sim.NewRand(1)); err == nil {
		t.Error("foreground second benchmark should error")
	}
}

func TestRotatorInitialState(t *testing.T) {
	a, b := MustByName("lbm"), MustByName("namd")
	r := MustRotator(a, b, sim.NewRand(7))
	if r.Name() != "lbm+namd" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Current() != a {
		t.Errorf("initial benchmark = %s, want %s", r.Current().Name, a.Name)
	}
	if r.Rotations() != 0 {
		t.Errorf("Rotations = %d before any rotate", r.Rotations())
	}
	if r.Program() == nil || r.Program().Benchmark() != a {
		t.Error("initial program must run the first benchmark")
	}
}

func TestRotateSwitchesAndCounts(t *testing.T) {
	a, b := MustByName("lbm"), MustByName("namd")
	r := MustRotator(a, b, sim.NewRand(42))
	counts := map[string]int{}
	const n = 400
	for i := 0; i < n; i++ {
		prev := r.Program()
		next := r.Rotate()
		if next != a && next != b {
			t.Fatalf("rotate returned foreign benchmark %v", next)
		}
		if r.Current() != next {
			t.Fatal("Current must track the rotated-to benchmark")
		}
		if r.Program() == prev {
			t.Fatal("each rotate must install a fresh program")
		}
		if r.Program().Benchmark() != next {
			t.Fatal("installed program must run the selected benchmark")
		}
		counts[next.Name]++
	}
	if r.Rotations() != n {
		t.Errorf("Rotations = %d, want %d", r.Rotations(), n)
	}
	// Each side is picked with probability 1/2; a 1/4 floor on 400 draws is
	// ~16 sigma from fair, so this never flakes on a working rotator.
	if counts[a.Name] < n/4 || counts[b.Name] < n/4 {
		t.Errorf("selection badly unbalanced: %v", counts)
	}
}

func TestRotateDeterministicBySeed(t *testing.T) {
	seq := func(seed uint64) []string {
		r := MustRotator(MustByName("lbm"), MustByName("namd"), sim.NewRand(seed))
		out := make([]string, 64)
		for i := range out {
			out[i] = r.Rotate().Name
		}
		return out
	}
	s1, s2 := seq(9), seq(9)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at rotation %d: %s vs %s", i, s1[i], s2[i])
		}
	}
	s3 := seq(10)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 64-rotation sequence")
	}
}

package workload

import (
	"testing"
	"testing/quick"
)

func validPhase() Phase {
	return Phase{Name: "p", Instructions: 1e8, BaseCPI: 0.6, APKI: 5, WSSBytes: 1 << 20, Locality: 0.8}
}

func TestPhaseValidate(t *testing.T) {
	p := validPhase()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Phase){
		func(p *Phase) { p.Instructions = 0 },
		func(p *Phase) { p.Instructions = -1 },
		func(p *Phase) { p.BaseCPI = 0 },
		func(p *Phase) { p.APKI = -1 },
		func(p *Phase) { p.WSSBytes = -1 },
		func(p *Phase) { p.Locality = -0.1 },
		func(p *Phase) { p.Locality = 1.1 },
	}
	for i, mutate := range bad {
		q := validPhase()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBenchmarkValidate(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Foreground, Phases: []Phase{validPhase()}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Benchmark{Kind: Foreground, Phases: []Phase{validPhase()}}).Validate(); err == nil {
		t.Error("missing name should error")
	}
	if err := (&Benchmark{Name: "x"}).Validate(); err == nil {
		t.Error("no phases should error")
	}
	bad := &Benchmark{Name: "x", Phases: []Phase{{Name: "p"}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid phase should propagate")
	}
	neg := &Benchmark{Name: "x", Phases: []Phase{validPhase()}, CPIJitter: -0.1}
	if err := neg.Validate(); err == nil {
		t.Error("negative jitter should error")
	}
}

func TestKindString(t *testing.T) {
	if Foreground.String() != "FG" || Background.String() != "BG" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestTotalInstructions(t *testing.T) {
	b := &Benchmark{Name: "x", Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, Locality: 0.5},
		{Name: "b", Instructions: 200, BaseCPI: 1, Locality: 0.5},
	}}
	if got := b.TotalInstructions(); got != 300 {
		t.Errorf("TotalInstructions = %g", got)
	}
}

func TestProgramPhaseTransitions(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Foreground, Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, Locality: 0.5},
		{Name: "b", Instructions: 200, BaseCPI: 1, Locality: 0.5},
	}}
	p := MustProgram(b)
	if p.Phase().Name != "a" {
		t.Errorf("initial phase = %s", p.Phase().Name)
	}
	if done := p.Advance(99); done {
		t.Error("should not complete at 99/300")
	}
	if p.Phase().Name != "a" {
		t.Errorf("phase at 99 = %s", p.Phase().Name)
	}
	p.Advance(1)
	if p.Phase().Name != "b" {
		t.Errorf("phase at 100 = %s", p.Phase().Name)
	}
	if p.Executed() != 100 || p.Remaining() != 200 {
		t.Errorf("Executed=%g Remaining=%g", p.Executed(), p.Remaining())
	}
	if done := p.Advance(200); !done {
		t.Error("FG should complete at 300/300")
	}
	if p.Executed() != 0 {
		t.Errorf("after completion Executed = %g, want wrap to 0", p.Executed())
	}
}

func TestProgramOvershootCarries(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Foreground, Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, Locality: 0.5},
	}}
	p := MustProgram(b)
	if done := p.Advance(130); !done {
		t.Fatal("should complete")
	}
	if p.Executed() != 30 {
		t.Errorf("overshoot should carry: Executed = %g, want 30", p.Executed())
	}
}

func TestBackgroundProgramWraps(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Background, Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, Locality: 0.5},
	}}
	p := MustProgram(b)
	for i := 0; i < 10; i++ {
		if done := p.Advance(60); done {
			t.Fatal("BG must never report completion")
		}
	}
	if p.Executed() >= 100 {
		t.Errorf("BG executed should stay within pass: %g", p.Executed())
	}
}

func TestProgramNegativeAdvance(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Foreground, Phases: []Phase{validPhase()}}
	p := MustProgram(b)
	p.Advance(-50)
	if p.Executed() != 0 {
		t.Errorf("negative advance should be ignored: %g", p.Executed())
	}
}

func TestProgramReset(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Foreground, Phases: []Phase{validPhase()}}
	p := MustProgram(b)
	p.Advance(1e7)
	p.Reset()
	if p.Executed() != 0 {
		t.Error("Reset should rewind")
	}
}

func TestNewProgramRejectsInvalid(t *testing.T) {
	if _, err := NewProgram(&Benchmark{Name: "x"}); err == nil {
		t.Error("invalid benchmark should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustProgram should panic on invalid benchmark")
		}
	}()
	MustProgram(&Benchmark{})
}

func TestProgramExecutedNeverExceedsTotal(t *testing.T) {
	f := func(seed uint64) bool {
		b := &Benchmark{Name: "x", Kind: Background, Phases: []Phase{
			{Name: "a", Instructions: 500, BaseCPI: 1, Locality: 0.5},
			{Name: "b", Instructions: 300, BaseCPI: 1, Locality: 0.5},
		}}
		p := MustProgram(b)
		s := seed | 1
		for i := 0; i < 200; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			p.Advance(float64(s % 400))
			if p.Executed() < 0 || p.Executed() >= 800 {
				return false
			}
			// Phase must always be resolvable.
			if p.Phase() == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOffset(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Background, Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, Locality: 0.5},
		{Name: "b", Instructions: 200, BaseCPI: 1, Locality: 0.5},
	}}
	p := MustProgram(b)
	p.SetOffset(150)
	if p.Executed() != 150 {
		t.Errorf("Executed = %g", p.Executed())
	}
	if p.Phase().Name != "b" {
		t.Errorf("phase = %s", p.Phase().Name)
	}
	// Wraps modulo total.
	p.SetOffset(650)
	if p.Executed() != 50 {
		t.Errorf("Executed after wrap = %g", p.Executed())
	}
	// Negative clamps to 0.
	p.SetOffset(-10)
	if p.Executed() != 0 {
		t.Errorf("Executed after negative = %g", p.Executed())
	}
}

func TestSetOffsetStaysInRange(t *testing.T) {
	f := func(seed uint64) bool {
		b := &Benchmark{Name: "x", Kind: Background, Phases: []Phase{
			{Name: "a", Instructions: 777, BaseCPI: 1, Locality: 0.5},
		}}
		p := MustProgram(b)
		s := seed | 1
		for i := 0; i < 50; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			p.SetOffset(float64(s % 10000))
			if p.Executed() < 0 || p.Executed() >= 777 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProgramPhaseCache pins the cached phase lookup: repeated calls inside
// one phase return the same phase without a rescan moving the cache window,
// and Advance/Reset/SetOffset each invalidate the window so the next call
// rescans to the right phase.
func TestProgramPhaseCache(t *testing.T) {
	b := &Benchmark{Name: "x", Kind: Background, Phases: []Phase{
		{Name: "a", Instructions: 100, BaseCPI: 1, APKI: 1, WSSBytes: 1 << 20, Locality: 0.5},
		{Name: "b", Instructions: 200, BaseCPI: 1, APKI: 1, WSSBytes: 1 << 20, Locality: 0.5},
		{Name: "c", Instructions: 300, BaseCPI: 1, APKI: 1, WSSBytes: 1 << 20, Locality: 0.5},
	}}
	p := MustProgram(b)

	// First call populates the cache for phase a: window [0, 100).
	if ph := p.Phase(); ph.Name != "a" {
		t.Fatalf("at 0: phase %s, want a", ph.Name)
	}
	if p.phaseStart != 0 || p.phaseEnd != 100 {
		t.Fatalf("cache window [%g, %g), want [0, 100)", p.phaseStart, p.phaseEnd)
	}
	// Calls within the window hit the cache (window unchanged, same phase).
	p.Advance(50)
	if ph := p.Phase(); ph.Name != "a" || p.phase != 0 {
		t.Fatalf("at 50: phase %s", ph.Name)
	}

	// Crossing into phase b invalidates and rescans.
	p.Advance(75) // executed = 125
	if ph := p.Phase(); ph.Name != "b" {
		t.Fatalf("at 125: phase %s, want b", ph.Name)
	}
	if p.phaseStart != 100 || p.phaseEnd != 300 {
		t.Fatalf("cache window [%g, %g), want [100, 300)", p.phaseStart, p.phaseEnd)
	}

	// SetOffset far ahead: stale window must not satisfy the lookup.
	p.SetOffset(450)
	if ph := p.Phase(); ph.Name != "c" {
		t.Fatalf("after SetOffset(450): phase %s, want c", ph.Name)
	}

	// Reset rewinds; the c-window cache cannot claim position 0.
	p.Reset()
	if ph := p.Phase(); ph.Name != "a" {
		t.Fatalf("after Reset: phase %s, want a", ph.Name)
	}

	// Background wrap: executed returns below the window start.
	p.SetOffset(550)
	if ph := p.Phase(); ph.Name != "c" {
		t.Fatalf("at 550: phase %s, want c", ph.Name)
	}
	p.Advance(100) // wraps to 50
	if ph := p.Phase(); ph.Name != "a" {
		t.Fatalf("after wrap to 50: phase %s, want a", ph.Name)
	}

	// Result must always match an uncached rescan at every position — both
	// the forced-rescan form and PhaseScan, the compat step engine's lookup.
	// Phase and PhaseScan must also return the same *Phase pointer, since
	// both engines hand it to the same solver.
	fresh := MustProgram(b)
	for pos := 0.0; pos < 600; pos += 37 {
		p.SetOffset(pos)
		fresh.SetOffset(pos)
		fresh.phaseStart, fresh.phaseEnd = 0, 0 // force rescan
		if got, want := p.Phase().Name, fresh.Phase().Name; got != want {
			t.Errorf("at %g: cached %s, rescan %s", pos, got, want)
		}
		if got, want := p.PhaseScan(), p.Phase(); got != want {
			t.Errorf("at %g: PhaseScan %s != Phase %s", pos, got.Name, want.Name)
		}
	}
}

package workload

import (
	"fmt"
	"sort"
)

// This file is the benchmark catalog: synthetic stand-ins for the paper's
// Table 1 workloads. Instruction budgets are calibrated so that standalone
// FG execution times on the default simulated machine (2 GHz, 15 MB LLC)
// span the paper's 0.5–1.6 s range (Fig. 4) with standalone MPKI below ~1
// and contended MPKI up to ~2, and BG models span the paper's intrusiveness
// spectrum (Fig. 5): namd is nearly cache-resident compute, lbm is a heavy
// streaming hog, and bwaves/PCA/RS alternate compute and memory phases
// strongly enough to exercise the predictor.

const mib = 1 << 20

// fgDefs returns the five PARSEC-like foreground benchmarks.
func fgDefs() []*Benchmark {
	return []*Benchmark{
		{
			// Body tracking of a person: per-frame pipeline alternating
			// particle-weight computation (compute) with image processing
			// over larger buffers.
			Name: "bodytrack", Kind: Foreground, CPIJitter: 0.012,
			Phases: []Phase{
				{Name: "edge-maps", Instructions: 0.55e9, BaseCPI: 0.70, APKI: 2.6, WSSBytes: 5 * mib, Locality: 0.88, MLP: 5},
				{Name: "particle-weights", Instructions: 0.95e9, BaseCPI: 0.62, APKI: 1.5, WSSBytes: 3 * mib, Locality: 0.93, MLP: 4},
				{Name: "annealing", Instructions: 0.60e9, BaseCPI: 0.68, APKI: 2.1, WSSBytes: 4 * mib, Locality: 0.90, MLP: 5},
				{Name: "pose-update", Instructions: 0.30e9, BaseCPI: 0.72, APKI: 2.8, WSSBytes: 5 * mib, Locality: 0.86, MLP: 5},
			},
		},
		{
			// Content similarity search: stages of the ferret pipeline.
			Name: "ferret", Kind: Foreground, CPIJitter: 0.013,
			Phases: []Phase{
				{Name: "segment", Instructions: 0.60e9, BaseCPI: 0.66, APKI: 2.0, WSSBytes: 4 * mib, Locality: 0.90, MLP: 5},
				{Name: "extract", Instructions: 0.80e9, BaseCPI: 0.74, APKI: 2.4, WSSBytes: 5 * mib, Locality: 0.88, MLP: 5},
				{Name: "index-probe", Instructions: 1.00e9, BaseCPI: 0.70, APKI: 3.4, WSSBytes: 8 * mib, Locality: 0.84, MLP: 4},
				{Name: "rank", Instructions: 0.85e9, BaseCPI: 0.72, APKI: 2.6, WSSBytes: 6 * mib, Locality: 0.87, MLP: 5},
			},
		},
		{
			// Fluid dynamics for animation: tight stencil kernels over a
			// modest grid; the most cache-friendly FG.
			Name: "fluidanimate", Kind: Foreground, CPIJitter: 0.011,
			Phases: []Phase{
				{Name: "rebuild-grid", Instructions: 0.30e9, BaseCPI: 0.64, APKI: 2.2, WSSBytes: 3 * mib, Locality: 0.89, MLP: 5},
				{Name: "densities", Instructions: 0.70e9, BaseCPI: 0.58, APKI: 1.6, WSSBytes: 3 * mib, Locality: 0.92, MLP: 5},
				{Name: "forces", Instructions: 0.55e9, BaseCPI: 0.60, APKI: 1.9, WSSBytes: 3 * mib, Locality: 0.91, MLP: 5},
				{Name: "advance", Instructions: 0.18e9, BaseCPI: 0.66, APKI: 2.1, WSSBytes: 2 * mib, Locality: 0.90, MLP: 5},
			},
		},
		{
			// Real-time raytracing: BVH traversal with good locality but a
			// larger footprint; pointer-chasing lowers its MLP.
			Name: "raytrace", Kind: Foreground, CPIJitter: 0.012,
			Phases: []Phase{
				{Name: "bvh-refit", Instructions: 0.25e9, BaseCPI: 0.68, APKI: 1.8, WSSBytes: 7 * mib, Locality: 0.86, MLP: 3.5},
				{Name: "primary-rays", Instructions: 0.80e9, BaseCPI: 0.60, APKI: 1.1, WSSBytes: 8 * mib, Locality: 0.90, MLP: 3.5},
				{Name: "shadow-rays", Instructions: 0.55e9, BaseCPI: 0.63, APKI: 1.4, WSSBytes: 8 * mib, Locality: 0.88, MLP: 3.5},
				{Name: "shading", Instructions: 0.35e9, BaseCPI: 0.65, APKI: 1.2, WSSBytes: 5 * mib, Locality: 0.90, MLP: 4},
			},
		},
		{
			// Online clustering of an input stream: the memory-bound FG and
			// the paper's hardest predictor case (Fig. 7).
			Name: "streamcluster", Kind: Foreground, CPIJitter: 0.020,
			Phases: []Phase{
				{Name: "stream-in", Instructions: 0.90e9, BaseCPI: 0.50, APKI: 3.6, WSSBytes: 6 * mib, Locality: 0.72, MLP: 5},
				{Name: "pgain", Instructions: 2.60e9, BaseCPI: 0.48, APKI: 3.1, WSSBytes: 5 * mib, Locality: 0.78, MLP: 5},
				{Name: "pselect", Instructions: 1.30e9, BaseCPI: 0.52, APKI: 3.4, WSSBytes: 5 * mib, Locality: 0.75, MLP: 5},
				{Name: "contract", Instructions: 0.80e9, BaseCPI: 0.55, APKI: 2.6, WSSBytes: 4 * mib, Locality: 0.80, MLP: 5},
			},
		},
	}
}

// singleBGDefs returns the three standalone BG benchmarks with strong phase
// behaviour (§5.1: bwaves from SPEC 2006, PCA and RS from MLPack).
func singleBGDefs() []*Benchmark {
	return []*Benchmark{
		{
			// Blast-wave simulation: alternating compute-dense stencil and
			// memory-hungry linear solve.
			Name: "bwaves", Kind: Background, CPIJitter: 0.022,
			Phases: []Phase{
				{Name: "stencil", Instructions: 40e8, BaseCPI: 0.80, APKI: 3.5, WSSBytes: 18 * mib, Locality: 0.45, MLP: 5},
				{Name: "solve", Instructions: 30e8, BaseCPI: 0.55, APKI: 18.0, WSSBytes: 24 * mib, Locality: 0.35, MLP: 6},
				{Name: "boundary", Instructions: 15e8, BaseCPI: 0.70, APKI: 7.0, WSSBytes: 20 * mib, Locality: 0.40, MLP: 5},
			},
		},
		{
			// Principal component analysis: covariance scans of a large
			// matrix alternate with cache-resident eigen iterations.
			Name: "pca", Kind: Background, CPIJitter: 0.020,
			Phases: []Phase{
				{Name: "covariance-scan", Instructions: 35e8, BaseCPI: 0.50, APKI: 18.0, WSSBytes: 28 * mib, Locality: 0.30, MLP: 6},
				{Name: "eigen-iterate", Instructions: 45e8, BaseCPI: 0.90, APKI: 3.5, WSSBytes: 4 * mib, Locality: 0.82, MLP: 2},
				{Name: "project", Instructions: 15e8, BaseCPI: 0.60, APKI: 8.0, WSSBytes: 20 * mib, Locality: 0.40, MLP: 5},
			},
		},
		{
			// Range search: bursty query scans over a large kd-tree; the
			// most intrusive single BG and the predictor's worst partner.
			Name: "rs", Kind: Background, CPIJitter: 0.028,
			Phases: []Phase{
				{Name: "tree-build", Instructions: 15e8, BaseCPI: 0.70, APKI: 5.0, WSSBytes: 8 * mib, Locality: 0.70, MLP: 4},
				{Name: "query-burst", Instructions: 26e8, BaseCPI: 0.45, APKI: 21.0, WSSBytes: 40 * mib, Locality: 0.25, MLP: 8},
				{Name: "collect", Instructions: 9e8, BaseCPI: 0.60, APKI: 6.0, WSSBytes: 6 * mib, Locality: 0.75, MLP: 4},
			},
		},
	}
}

// rotateDefs returns the four SPEC 2006 benchmarks used to build rotate-BG
// pairs. They have mild internal phase behaviour; interference variation
// comes from rotation between the paired benchmarks.
func rotateDefs() []*Benchmark {
	return []*Benchmark{
		{
			// Biomolecular simulation: nearly cache-resident compute.
			Name: "namd", Kind: Background, CPIJitter: 0.015,
			Phases: []Phase{
				{Name: "forces", Instructions: 50e8, BaseCPI: 0.72, APKI: 1.8, WSSBytes: 2 * mib, Locality: 0.92, MLP: 2},
				{Name: "integrate", Instructions: 20e8, BaseCPI: 0.78, APKI: 2.4, WSSBytes: 3 * mib, Locality: 0.90, MLP: 2},
			},
		},
		{
			// Linear program solver: moderate memory pressure with pivots.
			Name: "soplex", Kind: Background, CPIJitter: 0.020,
			Phases: []Phase{
				{Name: "price", Instructions: 25e8, BaseCPI: 0.62, APKI: 6.0, WSSBytes: 12 * mib, Locality: 0.55, MLP: 4},
				{Name: "pivot", Instructions: 15e8, BaseCPI: 0.58, APKI: 14.0, WSSBytes: 16 * mib, Locality: 0.45, MLP: 5},
			},
		},
		{
			// Quantum computer simulation: long streaming sweeps whose
			// perfectly sequential accesses are almost fully covered by the
			// hardware prefetcher — few *demand* LLC misses reach memory,
			// which is why lib+soplex is the paper's least intrusive rotate
			// workload (Fig. 5) despite libquantum's streaming nature.
			Name: "libquantum", Kind: Background, CPIJitter: 0.018,
			Phases: []Phase{
				{Name: "toffoli-sweep", Instructions: 40e8, BaseCPI: 0.50, APKI: 3.5, WSSBytes: 32 * mib, Locality: 0.10, MLP: 8},
				{Name: "measure", Instructions: 10e8, BaseCPI: 0.55, APKI: 3.0, WSSBytes: 32 * mib, Locality: 0.12, MLP: 7},
			},
		},
		{
			// Lattice-Boltzmann fluid simulation: the heaviest streamer.
			Name: "lbm", Kind: Background, CPIJitter: 0.020,
			Phases: []Phase{
				{Name: "stream-collide", Instructions: 45e8, BaseCPI: 0.45, APKI: 17.0, WSSBytes: 48 * mib, Locality: 0.15, MLP: 8},
				{Name: "swap", Instructions: 10e8, BaseCPI: 0.50, APKI: 13.0, WSSBytes: 48 * mib, Locality: 0.18, MLP: 8},
			},
		},
	}
}

// FG returns fresh copies of the five foreground benchmarks, in the
// paper's Table 1 order.
func FG() []*Benchmark { return copyAll(fgDefs()) }

// SingleBG returns fresh copies of the three standalone background
// benchmarks (bwaves, pca, rs).
func SingleBG() []*Benchmark { return copyAll(singleBGDefs()) }

// RotateBenchmarks returns fresh copies of the four benchmarks used in
// rotate pairs (namd, soplex, libquantum, lbm).
func RotateBenchmarks() []*Benchmark { return copyAll(rotateDefs()) }

// RotatePairs returns the paper's four rotate-BG pairings (§5.1):
// (lbm,namd), (libquantum,namd), (lbm,soplex), (libquantum,soplex).
func RotatePairs() [][2]string {
	return [][2]string{
		{"lbm", "namd"},
		{"libquantum", "namd"},
		{"lbm", "soplex"},
		{"libquantum", "soplex"},
	}
}

// All returns every benchmark in the catalog.
func All() []*Benchmark {
	var out []*Benchmark
	out = append(out, FG()...)
	out = append(out, SingleBG()...)
	out = append(out, RotateBenchmarks()...)
	return out
}

// Names returns the sorted names of every catalog benchmark.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}

// ByName returns a fresh copy of the named benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MustByName is ByName that panics on an unknown name.
func MustByName(name string) *Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

func copyAll(in []*Benchmark) []*Benchmark {
	out := make([]*Benchmark, len(in))
	for i, b := range in {
		cp := *b
		cp.Phases = append([]Phase(nil), b.Phases...)
		out[i] = &cp
	}
	return out
}

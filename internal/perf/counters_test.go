package perf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleArithmetic(t *testing.T) {
	a := Sample{Instructions: 100, Cycles: 200, LLCAccesses: 10, LLCMisses: 5}
	b := Sample{Instructions: 40, Cycles: 50, LLCAccesses: 4, LLCMisses: 1}
	d := a.Sub(b)
	if d.Instructions != 60 || d.Cycles != 150 || d.LLCAccesses != 6 || d.LLCMisses != 4 {
		t.Errorf("Sub = %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Errorf("Add(Sub) != original: %+v vs %+v", s, a)
	}
}

func TestSampleAddSubRoundTrip(t *testing.T) {
	f := func(i1, c1, a1, m1, i2, c2, a2, m2 float64) bool {
		a := Sample{i1, c1, a1, m1}
		b := Sample{i2, c2, a2, m2}
		rt := a.Add(b).Sub(b)
		const tol = 1e-6
		near := func(x, y float64) bool {
			d := x - y
			if d < 0 {
				d = -d
			}
			scale := 1.0
			if x > scale {
				scale = x
			}
			if -x > scale {
				scale = -x
			}
			return d <= tol*scale
		}
		return near(rt.Instructions, a.Instructions) && near(rt.Cycles, a.Cycles) &&
			near(rt.LLCAccesses, a.LLCAccesses) && near(rt.LLCMisses, a.LLCMisses)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPKIAndIPC(t *testing.T) {
	s := Sample{Instructions: 2000, Cycles: 4000, LLCMisses: 3}
	if got := s.MPKI(); got != 1.5 {
		t.Errorf("MPKI = %g, want 1.5", got)
	}
	if got := s.IPC(); got != 0.5 {
		t.Errorf("IPC = %g, want 0.5", got)
	}
	var zero Sample
	if zero.MPKI() != 0 || zero.IPC() != 0 {
		t.Error("zero sample should have zero MPKI/IPC")
	}
	if !strings.Contains(s.String(), "mpki") {
		t.Error("String should mention mpki")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero cores should error")
	}
	c := MustNew(6)
	if c.NumCores() != 6 {
		t.Errorf("NumCores = %d", c.NumCores())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestChargeAccumulates(t *testing.T) {
	c := MustNew(2)
	d := Sample{Instructions: 10, Cycles: 20, LLCAccesses: 2, LLCMisses: 1}
	if err := c.Charge(1, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Charge(1, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Charge(2, 1, d); err != nil {
		t.Fatal(err)
	}
	if got := c.Task(1); got.Instructions != 20 {
		t.Errorf("Task(1) = %+v", got)
	}
	if got := c.Task(2); got.Instructions != 10 {
		t.Errorf("Task(2) = %+v", got)
	}
	if got := c.Task(99); got != (Sample{}) {
		t.Errorf("unknown task = %+v", got)
	}
	core0, err := c.Core(0)
	if err != nil || core0.Instructions != 20 {
		t.Errorf("Core(0) = %+v, %v", core0, err)
	}
	if got := c.Total(); got.Instructions != 30 {
		t.Errorf("Total = %+v", got)
	}
}

func TestChargeInvalidCore(t *testing.T) {
	c := MustNew(2)
	if err := c.Charge(1, -1, Sample{}); err == nil {
		t.Error("negative core should error")
	}
	if err := c.Charge(1, 2, Sample{}); err == nil {
		t.Error("out-of-range core should error")
	}
	if _, err := c.Core(5); err == nil {
		t.Error("Core(5) should error")
	}
	if _, err := c.Core(-1); err == nil {
		t.Error("Core(-1) should error")
	}
}

func TestResets(t *testing.T) {
	c := MustNew(1)
	d := Sample{Instructions: 5}
	_ = c.Charge(1, 0, d)
	_ = c.Charge(2, 0, d)
	c.ResetTask(1)
	if got := c.Task(1); got != (Sample{}) {
		t.Error("ResetTask should zero task counters")
	}
	// Core counters are free-running: ResetTask must not touch them.
	core0, _ := c.Core(0)
	if core0.Instructions != 10 {
		t.Errorf("core counters after ResetTask = %+v", core0)
	}
	c.Reset()
	core0, _ = c.Core(0)
	if core0 != (Sample{}) || c.Task(2) != (Sample{}) {
		t.Error("Reset should zero everything")
	}
}

// TestChargeRefMatchesCharge pins the handle-based charging path (what the
// machine's skip-ahead engine uses) to Charge: the same sequence of deltas
// through either API must leave identical task, core, and total counters.
func TestChargeRefMatchesCharge(t *testing.T) {
	a := MustNew(3)
	b := MustNew(3)
	h1, h2 := b.Handle(1), b.Handle(2)

	// Handle creates the task like a first Charge would; it must still read
	// as zero until charged.
	if got := b.Task(1); got != (Sample{}) {
		t.Errorf("fresh Handle task reads %+v, want zero", got)
	}

	deltas := []struct {
		task, core int
		d          Sample
	}{
		{1, 0, Sample{Instructions: 100, Cycles: 250, LLCAccesses: 10, LLCMisses: 4}},
		{2, 1, Sample{Instructions: 70, Cycles: 300, LLCAccesses: 25, LLCMisses: 19}},
		{1, 0, Sample{Instructions: 55.5, Cycles: 125.25, LLCAccesses: 3.125, LLCMisses: 0.5}},
		{1, 2, Sample{Instructions: 1e9, Cycles: 2e9, LLCAccesses: 1e7, LLCMisses: 3e6}},
		{2, 1, Sample{}},
	}
	for _, ch := range deltas {
		if err := a.Charge(ch.task, ch.core, ch.d); err != nil {
			t.Fatal(err)
		}
		h := h1
		if ch.task == 2 {
			h = h2
		}
		b.ChargeRef(h, ch.core, ch.d)
	}
	for task := 1; task <= 2; task++ {
		if av, bv := a.Task(task), b.Task(task); av != bv {
			t.Errorf("task %d: Charge %+v, ChargeRef %+v", task, av, bv)
		}
	}
	for core := 0; core < 3; core++ {
		av, err := a.Core(core)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.Core(core)
		if err != nil {
			t.Fatal(err)
		}
		if av != bv {
			t.Errorf("core %d: Charge %+v, ChargeRef %+v", core, av, bv)
		}
	}
	if at, bt := a.Total(), b.Total(); at != bt {
		t.Errorf("totals diverged: %+v vs %+v", at, bt)
	}

	// A Handle resolved after charges sees the accumulated state, and is the
	// same pointer Charge has been feeding.
	if got := *b.Handle(1); got != b.Task(1) {
		t.Errorf("re-resolved handle reads %+v, want %+v", got, b.Task(1))
	}
}

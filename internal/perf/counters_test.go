package perf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleArithmetic(t *testing.T) {
	a := Sample{Instructions: 100, Cycles: 200, LLCAccesses: 10, LLCMisses: 5}
	b := Sample{Instructions: 40, Cycles: 50, LLCAccesses: 4, LLCMisses: 1}
	d := a.Sub(b)
	if d.Instructions != 60 || d.Cycles != 150 || d.LLCAccesses != 6 || d.LLCMisses != 4 {
		t.Errorf("Sub = %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Errorf("Add(Sub) != original: %+v vs %+v", s, a)
	}
}

func TestSampleAddSubRoundTrip(t *testing.T) {
	f := func(i1, c1, a1, m1, i2, c2, a2, m2 float64) bool {
		a := Sample{i1, c1, a1, m1}
		b := Sample{i2, c2, a2, m2}
		rt := a.Add(b).Sub(b)
		const tol = 1e-6
		near := func(x, y float64) bool {
			d := x - y
			if d < 0 {
				d = -d
			}
			scale := 1.0
			if x > scale {
				scale = x
			}
			if -x > scale {
				scale = -x
			}
			return d <= tol*scale
		}
		return near(rt.Instructions, a.Instructions) && near(rt.Cycles, a.Cycles) &&
			near(rt.LLCAccesses, a.LLCAccesses) && near(rt.LLCMisses, a.LLCMisses)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPKIAndIPC(t *testing.T) {
	s := Sample{Instructions: 2000, Cycles: 4000, LLCMisses: 3}
	if got := s.MPKI(); got != 1.5 {
		t.Errorf("MPKI = %g, want 1.5", got)
	}
	if got := s.IPC(); got != 0.5 {
		t.Errorf("IPC = %g, want 0.5", got)
	}
	var zero Sample
	if zero.MPKI() != 0 || zero.IPC() != 0 {
		t.Error("zero sample should have zero MPKI/IPC")
	}
	if !strings.Contains(s.String(), "mpki") {
		t.Error("String should mention mpki")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero cores should error")
	}
	c := MustNew(6)
	if c.NumCores() != 6 {
		t.Errorf("NumCores = %d", c.NumCores())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestChargeAccumulates(t *testing.T) {
	c := MustNew(2)
	d := Sample{Instructions: 10, Cycles: 20, LLCAccesses: 2, LLCMisses: 1}
	if err := c.Charge(1, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Charge(1, 0, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Charge(2, 1, d); err != nil {
		t.Fatal(err)
	}
	if got := c.Task(1); got.Instructions != 20 {
		t.Errorf("Task(1) = %+v", got)
	}
	if got := c.Task(2); got.Instructions != 10 {
		t.Errorf("Task(2) = %+v", got)
	}
	if got := c.Task(99); got != (Sample{}) {
		t.Errorf("unknown task = %+v", got)
	}
	core0, err := c.Core(0)
	if err != nil || core0.Instructions != 20 {
		t.Errorf("Core(0) = %+v, %v", core0, err)
	}
	if got := c.Total(); got.Instructions != 30 {
		t.Errorf("Total = %+v", got)
	}
}

func TestChargeInvalidCore(t *testing.T) {
	c := MustNew(2)
	if err := c.Charge(1, -1, Sample{}); err == nil {
		t.Error("negative core should error")
	}
	if err := c.Charge(1, 2, Sample{}); err == nil {
		t.Error("out-of-range core should error")
	}
	if _, err := c.Core(5); err == nil {
		t.Error("Core(5) should error")
	}
	if _, err := c.Core(-1); err == nil {
		t.Error("Core(-1) should error")
	}
}

func TestResets(t *testing.T) {
	c := MustNew(1)
	d := Sample{Instructions: 5}
	_ = c.Charge(1, 0, d)
	_ = c.Charge(2, 0, d)
	c.ResetTask(1)
	if got := c.Task(1); got != (Sample{}) {
		t.Error("ResetTask should zero task counters")
	}
	// Core counters are free-running: ResetTask must not touch them.
	core0, _ := c.Core(0)
	if core0.Instructions != 10 {
		t.Errorf("core counters after ResetTask = %+v", core0)
	}
	c.Reset()
	core0, _ = c.Core(0)
	if core0 != (Sample{}) || c.Task(2) != (Sample{}) {
		t.Error("Reset should zero everything")
	}
}

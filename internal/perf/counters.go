// Package perf is the simulated machine's performance-counter file. It
// mirrors the counters Dirigent reads on real hardware through rdpmc
// (§4.1): retired instructions, cycles, LLC accesses, and LLC load misses,
// tracked per task and per core.
//
// Consumers (the Dirigent profiler, predictor, and coarse controller) read
// the counters exactly like software reads MSRs: take a snapshot, do work,
// take another snapshot, and subtract. Delta helpers are provided so that
// interval bookkeeping lives in one place.
package perf

import "fmt"

// Sample is one counter vector. All values are cumulative since counter
// reset, matching free-running hardware counters.
type Sample struct {
	Instructions float64
	Cycles       float64
	LLCAccesses  float64
	LLCMisses    float64
}

// Sub returns s - other, the interval delta between two snapshots.
func (s Sample) Sub(other Sample) Sample {
	return Sample{
		Instructions: s.Instructions - other.Instructions,
		Cycles:       s.Cycles - other.Cycles,
		LLCAccesses:  s.LLCAccesses - other.LLCAccesses,
		LLCMisses:    s.LLCMisses - other.LLCMisses,
	}
}

// Add returns s + other.
func (s Sample) Add(other Sample) Sample {
	return Sample{
		Instructions: s.Instructions + other.Instructions,
		Cycles:       s.Cycles + other.Cycles,
		LLCAccesses:  s.LLCAccesses + other.LLCAccesses,
		LLCMisses:    s.LLCMisses + other.LLCMisses,
	}
}

// MPKI returns LLC misses per kilo-instruction, the paper's interference
// metric (Fig. 4, Fig. 5). Zero instructions yields zero.
func (s Sample) MPKI() float64 {
	if s.Instructions <= 0 {
		return 0
	}
	return s.LLCMisses / s.Instructions * 1000
}

// IPC returns instructions per cycle. Zero cycles yields zero.
func (s Sample) IPC() float64 {
	if s.Cycles <= 0 {
		return 0
	}
	return s.Instructions / s.Cycles
}

func (s Sample) String() string {
	return fmt.Sprintf("instr=%.3g cycles=%.3g llcAcc=%.3g llcMiss=%.3g mpki=%.3g",
		s.Instructions, s.Cycles, s.LLCAccesses, s.LLCMisses, s.MPKI())
}

// Counters is the counter file for one machine: a Sample per task and per
// core. Not safe for concurrent use.
type Counters struct {
	tasks map[int]*Sample
	cores []Sample
}

// New creates a counter file for a machine with the given number of cores.
func New(cores int) (*Counters, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("perf: core count %d must be positive", cores)
	}
	return &Counters{
		tasks: map[int]*Sample{},
		cores: make([]Sample, cores),
	}, nil
}

// MustNew is New that panics on invalid input.
func MustNew(cores int) *Counters {
	c, err := New(cores)
	if err != nil {
		panic(err)
	}
	return c
}

// NumCores returns the number of per-core counter sets.
func (c *Counters) NumCores() int { return len(c.cores) }

// Charge accumulates a delta for task running on core. Unknown tasks are
// created on first charge; an out-of-range core is an error.
func (c *Counters) Charge(task, core int, delta Sample) error {
	if core < 0 || core >= len(c.cores) {
		return fmt.Errorf("perf: core %d out of range [0,%d)", core, len(c.cores))
	}
	t, ok := c.tasks[task]
	if !ok {
		t = &Sample{}
		c.tasks[task] = t
	}
	*t = t.Add(delta)
	c.cores[core] = c.cores[core].Add(delta)
	return nil
}

// Handle returns a stable pointer to a task's cumulative Sample, creating
// the task on first use exactly like Charge. The machine's skip-ahead engine
// resolves it once per task and charges through it, skipping the per-quantum
// map lookup. The handle detaches (keeps accumulating invisibly) if the task
// is later ResetTask'd or the file Reset.
func (c *Counters) Handle(task int) *Sample {
	t, ok := c.tasks[task]
	if !ok {
		t = &Sample{}
		c.tasks[task] = t
	}
	return t
}

// ChargeRef is Charge through a resolved Handle: the identical accumulation
// arithmetic with no map lookup or core-range check (the machine charges
// cores it validated at construction).
func (c *Counters) ChargeRef(t *Sample, core int, delta Sample) {
	*t = t.Add(delta)
	c.cores[core] = c.cores[core].Add(delta)
}

// Task returns the cumulative counters of a task (zero Sample if the task
// never ran).
func (c *Counters) Task(task int) Sample {
	if t, ok := c.tasks[task]; ok {
		return *t
	}
	return Sample{}
}

// Core returns the cumulative counters of a core.
func (c *Counters) Core(core int) (Sample, error) {
	if core < 0 || core >= len(c.cores) {
		return Sample{}, fmt.Errorf("perf: core %d out of range [0,%d)", core, len(c.cores))
	}
	return c.cores[core], nil
}

// Total returns the machine-wide cumulative counters.
func (c *Counters) Total() Sample {
	var sum Sample
	for _, s := range c.cores {
		sum = sum.Add(s)
	}
	return sum
}

// ResetTask zeroes a task's counters (used when an FG task restarts: each
// execution is a fresh task in the paper's sense).
func (c *Counters) ResetTask(task int) {
	delete(c.tasks, task)
}

// Reset zeroes everything.
func (c *Counters) Reset() {
	c.tasks = map[int]*Sample{}
	for i := range c.cores {
		c.cores[i] = Sample{}
	}
}
